// Tests for the eNodeB cell: queueing, token buckets, delivery accounting,
// the RB & Rate Trace windows, and QoS updates at runtime.
#include <gtest/gtest.h>

#include <map>

#include "lte/cell.h"
#include "lte/pf_scheduler.h"
#include "lte/gbr_scheduler.h"
#include "lte/stats_reporter.h"
#include "lte/tbs_table.h"
#include "sim/simulator.h"

namespace flare {
namespace {

struct CellFixture {
  Simulator sim;
  Cell cell;
  explicit CellFixture(std::unique_ptr<Scheduler> sched,
                       CellConfig config = CellConfig{})
      : cell(sim, std::move(sched), config, Rng(1)) {}
};

TEST(Cell, EnqueueRespectsQueueLimit) {
  CellConfig config;
  config.queue_limit_bytes = 1000;
  CellFixture f(std::make_unique<PfScheduler>(), config);
  const UeId ue = f.cell.AddUe(std::make_unique<StaticItbsChannel>(7));
  const FlowId flow = f.cell.AddFlow(ue, FlowType::kData);

  std::uint64_t dropped = 0;
  f.cell.SetDropCallback(
      [&](FlowId, std::uint64_t bytes) { dropped += bytes; });

  EXPECT_EQ(f.cell.Enqueue(flow, 600), 600u);
  EXPECT_EQ(f.cell.Enqueue(flow, 600), 400u);  // only 400 fit
  EXPECT_EQ(dropped, 200u);
  EXPECT_EQ(f.cell.flow(flow).queued_bytes, 1000u);
}

TEST(Cell, SingleFlowDrainsAtChannelRate) {
  CellFixture f(std::make_unique<PfScheduler>());
  const UeId ue = f.cell.AddUe(std::make_unique<StaticItbsChannel>(7));
  const FlowId flow = f.cell.AddFlow(ue, FlowType::kData);

  std::uint64_t delivered = 0;
  f.cell.SetDeliveryCallback(
      [&](FlowId, std::uint64_t bytes, SimTime) { delivered += bytes; });

  // iTbs 7: 104 bits * 50 RBs = 5200 bits = 650 bytes per TTI.
  f.cell.Enqueue(flow, 6500);
  f.cell.Start();
  f.sim.RunUntil(10 * kTti);
  EXPECT_EQ(delivered, 6500u);
  EXPECT_EQ(f.cell.flow(flow).queued_bytes, 0u);
}

TEST(Cell, ThroughputMatchesTbs) {
  CellFixture f(std::make_unique<PfScheduler>());
  const UeId ue = f.cell.AddUe(std::make_unique<StaticItbsChannel>(7));
  const FlowId flow = f.cell.AddFlow(ue, FlowType::kData);
  f.cell.Enqueue(flow, 10'000'000);
  f.cell.Start();
  f.sim.RunUntil(FromSeconds(1.0));
  // 5.2 Mbit/s -> 650 000 bytes/s.
  EXPECT_NEAR(static_cast<double>(f.cell.total_tx_bytes(flow)), 650'000.0,
              1000.0);
}

TEST(Cell, TraceWindowCountsBytesAndRbs) {
  CellFixture f(std::make_unique<PfScheduler>());
  const UeId ue = f.cell.AddUe(std::make_unique<StaticItbsChannel>(7));
  const FlowId flow = f.cell.AddFlow(ue, FlowType::kData);
  f.cell.Enqueue(flow, 65'000);  // 100 TTIs worth
  f.cell.Start();
  f.sim.RunUntil(FromSeconds(0.2));

  const RbRateWindow window = f.cell.TakeWindow(flow);
  EXPECT_EQ(window.tx_bytes, 65'000u);
  EXPECT_EQ(window.rbs, 5000u);  // 100 TTIs * 50 RBs
  EXPECT_EQ(window.duration, FromSeconds(0.2));
  // Window resets.
  const RbRateWindow empty = f.cell.PeekWindow(flow);
  EXPECT_EQ(empty.tx_bytes, 0u);
  EXPECT_EQ(empty.rbs, 0u);
}

TEST(Cell, BitsPerRbMatchesChannel) {
  CellFixture f(std::make_unique<PfScheduler>());
  const UeId ue = f.cell.AddUe(std::make_unique<StaticItbsChannel>(9));
  const FlowId flow = f.cell.AddFlow(ue, FlowType::kData);
  f.cell.Enqueue(flow, 200'000);
  f.cell.Start();
  f.sim.RunUntil(FromSeconds(0.1));
  const RbRateWindow w = f.cell.TakeWindow(flow);
  const double bits_per_rb = static_cast<double>(w.tx_bytes) * 8.0 /
                             static_cast<double>(w.rbs);
  // iTbs 9 = 136 bits/RB; final partially-filled RB rounds down a little.
  EXPECT_NEAR(bits_per_rb, 136.0, 8.0 + 1.0);
}

TEST(Cell, TwoFlowsShareCapacityFairly) {
  CellFixture f(std::make_unique<PfScheduler>());
  const UeId ue1 = f.cell.AddUe(std::make_unique<StaticItbsChannel>(7));
  const UeId ue2 = f.cell.AddUe(std::make_unique<StaticItbsChannel>(7));
  const FlowId f1 = f.cell.AddFlow(ue1, FlowType::kData);
  const FlowId f2 = f.cell.AddFlow(ue2, FlowType::kData);
  f.cell.Enqueue(f1, 10'000'000);
  f.cell.Enqueue(f2, 10'000'000);
  f.cell.Start();
  f.sim.RunUntil(FromSeconds(2.0));
  const double a = static_cast<double>(f.cell.total_tx_bytes(f1));
  const double b = static_cast<double>(f.cell.total_tx_bytes(f2));
  EXPECT_NEAR(a / b, 1.0, 0.05);
  EXPECT_NEAR(a + b, 1'300'000.0, 15'000.0);  // full cell utilized
}

TEST(Cell, GbrFlowProtectedUnderLoad) {
  CellFixture f(std::make_unique<TwoPhaseGbrScheduler>());
  const UeId ue1 = f.cell.AddUe(std::make_unique<StaticItbsChannel>(7));
  const UeId ue2 = f.cell.AddUe(std::make_unique<StaticItbsChannel>(7));
  const FlowId video = f.cell.AddFlow(ue1, FlowType::kVideo);
  const FlowId data = f.cell.AddFlow(ue2, FlowType::kData);
  f.cell.SetGbr(video, 2e6);  // 2 Mbit/s guaranteed
  f.cell.Enqueue(video, 10'000'000);
  f.cell.Enqueue(data, 10'000'000);
  f.cell.Start();
  f.sim.RunUntil(FromSeconds(2.0));
  const double video_bps =
      static_cast<double>(f.cell.total_tx_bytes(video)) * 8.0 / 2.0;
  // GBR met (within token-bucket slack) despite the competing data flow.
  EXPECT_GT(video_bps, 1.9e6);
}

TEST(Cell, MbrCapsThroughput) {
  CellFixture f(std::make_unique<PfScheduler>());
  const UeId ue = f.cell.AddUe(std::make_unique<StaticItbsChannel>(7));
  const FlowId flow = f.cell.AddFlow(ue, FlowType::kData);
  f.cell.SetMbr(flow, 1e6);  // cap well below the 5.2 Mbit/s channel
  f.cell.Enqueue(flow, 10'000'000);
  f.cell.Start();
  f.sim.RunUntil(FromSeconds(2.0));
  const double bps =
      static_cast<double>(f.cell.total_tx_bytes(flow)) * 8.0 / 2.0;
  EXPECT_NEAR(bps, 1e6, 0.15e6);
}

TEST(Cell, ContinuousGbrUpdateTakesEffect) {
  CellConfig config;
  config.queue_limit_bytes = 100'000'000;  // keep both flows backlogged
  CellFixture f(std::make_unique<TwoPhaseGbrScheduler>(), config);
  const UeId ue1 = f.cell.AddUe(std::make_unique<StaticItbsChannel>(7));
  const UeId ue2 = f.cell.AddUe(std::make_unique<StaticItbsChannel>(7));
  const FlowId video = f.cell.AddFlow(ue1, FlowType::kVideo);
  const FlowId data = f.cell.AddFlow(ue2, FlowType::kData);
  f.cell.SetGbr(video, 0.2e6);
  f.cell.Enqueue(video, 20'000'000);
  f.cell.Enqueue(data, 20'000'000);
  // Raise the GBR mid-run (the Continuous GBR Updater path).
  f.sim.At(FromSeconds(1.0), [&] { f.cell.SetGbr(video, 4.5e6); });
  f.cell.Start();

  f.sim.RunUntil(FromSeconds(1.0));
  const std::uint64_t at_1s = f.cell.total_tx_bytes(video);
  f.sim.RunUntil(FromSeconds(2.0));
  const std::uint64_t at_2s = f.cell.total_tx_bytes(video);

  // Phase 1 GBR + PF split of the remainder: ~0.2 + 2.5 Mbit/s before the
  // update, ~4.5 + 0.35 Mbit/s after.
  const double rate_first = static_cast<double>(at_1s) * 8.0;
  const double rate_second = static_cast<double>(at_2s - at_1s) * 8.0;
  EXPECT_GT(rate_second, 4.4e6);
  EXPECT_GT(rate_second, rate_first * 1.4);
}

TEST(Cell, UeItbsTracksChannel) {
  CellFixture f(std::make_unique<PfScheduler>());
  const auto schedule = TriangleItbsSchedule(1, 12, FromSeconds(240), 0);
  const UeId ue =
      f.cell.AddUe(std::make_unique<ItbsOverrideChannel>(schedule));
  f.cell.Start();
  f.sim.RunUntil(FromSeconds(120.0));  // peak of the triangle
  EXPECT_EQ(f.cell.UeItbs(ue), 12);
  EXPECT_DOUBLE_EQ(f.cell.UeFullCellRateBps(ue),
                   ItbsToCellRateBps(12, 50));
}

TEST(Cell, RemoveFlowStopsService) {
  CellFixture f(std::make_unique<PfScheduler>());
  const UeId ue = f.cell.AddUe(std::make_unique<StaticItbsChannel>(7));
  const FlowId flow = f.cell.AddFlow(ue, FlowType::kData);
  f.cell.Enqueue(flow, 1'000'000);
  f.cell.Start();
  f.sim.RunUntil(FromSeconds(0.1));
  f.cell.RemoveFlow(flow);
  EXPECT_FALSE(f.cell.HasFlow(flow));
  EXPECT_NO_THROW(f.sim.RunUntil(FromSeconds(0.2)));
}

TEST(Cell, UnknownFlowThrows) {
  CellFixture f(std::make_unique<PfScheduler>());
  EXPECT_THROW(f.cell.flow(999), std::out_of_range);
  EXPECT_THROW(f.cell.Enqueue(999, 10), std::out_of_range);
  EXPECT_THROW(f.cell.SetGbr(999, 1.0), std::out_of_range);
}

TEST(Cell, FlowsOfTypeFilters) {
  CellFixture f(std::make_unique<PfScheduler>());
  const UeId ue = f.cell.AddUe(std::make_unique<StaticItbsChannel>(7));
  f.cell.AddFlow(ue, FlowType::kVideo);
  f.cell.AddFlow(ue, FlowType::kData);
  f.cell.AddFlow(ue, FlowType::kVideo);
  EXPECT_EQ(f.cell.FlowsOfType(FlowType::kVideo).size(), 2u);
  EXPECT_EQ(f.cell.FlowsOfType(FlowType::kData).size(), 1u);
  EXPECT_EQ(f.cell.Flows().size(), 3u);
}

TEST(StatsReporter, PeriodicReportsCarryThroughput) {
  CellConfig config;
  config.queue_limit_bytes = 10'000'000;  // enough backlog for the run
  CellFixture f(std::make_unique<PfScheduler>(), config);
  const UeId ue = f.cell.AddUe(std::make_unique<StaticItbsChannel>(7));
  const FlowId flow = f.cell.AddFlow(ue, FlowType::kVideo);
  f.cell.Enqueue(flow, 10'000'000);

  std::vector<std::vector<FlowStatsReport>> reports;
  StatsReporter reporter(f.cell, FromSeconds(0.5),
                         [&](SimTime, const std::vector<FlowStatsReport>& r) {
                           reports.push_back(r);
                         });
  f.cell.Start();
  f.sim.RunUntil(FromSeconds(2.0));

  ASSERT_EQ(reports.size(), 4u);
  for (const auto& batch : reports) {
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch[0].flow, flow);
    EXPECT_EQ(batch[0].type, FlowType::kVideo);
    EXPECT_NEAR(batch[0].throughput_bps, 5.2e6, 0.1e6);
    EXPECT_NEAR(batch[0].rb_utilization, 1.0, 0.05);
  }
}

TEST(Cell, BlerScalesThroughputAndTriggersHarq) {
  CellConfig config;
  config.queue_limit_bytes = 10'000'000;
  config.target_bler = 0.1;
  CellFixture f(std::make_unique<PfScheduler>(), config);
  const UeId ue = f.cell.AddUe(std::make_unique<StaticItbsChannel>(7));
  const FlowId flow = f.cell.AddFlow(ue, FlowType::kData);
  f.cell.Enqueue(flow, 10'000'000);
  f.cell.Start();
  f.sim.RunUntil(FromSeconds(4.0));
  // Ideal link carries 650 KB/s; 10% BLER leaves ~90%.
  const double delivered =
      static_cast<double>(f.cell.total_tx_bytes(flow)) / 4.0;
  EXPECT_NEAR(delivered, 0.9 * 650'000.0, 0.03 * 650'000.0);
  // Roughly one in ten TTIs retransmits.
  EXPECT_NEAR(static_cast<double>(f.cell.harq_retransmissions()) /
                  static_cast<double>(f.cell.ttis_elapsed()),
              0.1, 0.03);
}

TEST(Cell, ZeroBlerIsLossless) {
  CellFixture f(std::make_unique<PfScheduler>());
  const UeId ue = f.cell.AddUe(std::make_unique<StaticItbsChannel>(7));
  const FlowId flow = f.cell.AddFlow(ue, FlowType::kData);
  f.cell.Enqueue(flow, 65'000);
  f.cell.Start();
  f.sim.RunUntil(FromSeconds(1.0));
  EXPECT_EQ(f.cell.harq_retransmissions(), 0u);
  EXPECT_EQ(f.cell.total_tx_bytes(flow), 65'000u);
}

TEST(Cell, RbConservationAcrossBusyRun) {
  CellFixture f(std::make_unique<TwoPhaseGbrScheduler>());
  for (int i = 0; i < 4; ++i) {
    const UeId ue = f.cell.AddUe(std::make_unique<StaticItbsChannel>(5));
    const FlowId flow = f.cell.AddFlow(
        ue, i % 2 == 0 ? FlowType::kVideo : FlowType::kData);
    if (i % 2 == 0) f.cell.SetGbr(flow, 1e6);
    f.cell.Enqueue(flow, 50'000'000);
  }
  f.cell.Start();
  f.sim.RunUntil(FromSeconds(1.0));
  EXPECT_LE(f.cell.total_rbs_used(), f.cell.ttis_elapsed() * 50u);
  EXPECT_GT(f.cell.total_rbs_used(), f.cell.ttis_elapsed() * 45u);
}

}  // namespace
}  // namespace flare
