// Property-based sweeps: system-wide invariants that must hold for every
// scheme, channel model and seed — conservation laws, metric sanity, and
// capacity bounds, checked on full end-to-end runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <tuple>
#include <vector>

#include "core/rate_controller.h"
#include "lte/tbs_table.h"
#include "scenario/scenario.h"
#include "util/rng.h"

namespace flare {
namespace {

using Param = std::tuple<Scheme, ChannelKind, std::uint64_t>;

class ScenarioInvariants : public ::testing::TestWithParam<Param> {};

TEST_P(ScenarioInvariants, HoldOnFullRuns) {
  const auto [scheme, channel, seed] = GetParam();
  ScenarioConfig config;
  config.scheme = scheme;
  config.channel = channel;
  config.seed = seed;
  config.duration_s = 120.0;
  config.n_video = 3;
  config.n_data = 1;
  if (channel == ChannelKind::kPlacedStatic ||
      channel == ChannelKind::kMobile) {
    config.testbed = false;
    config.num_rbs = 25;
    config.ladder_kbps = SimulationLadderKbps();
    config.segment_duration_s = 10.0;
  } else {
    config.testbed = true;
    config.ladder_kbps = TestbedLadderKbps();
    config.segment_duration_s = 2.0;
  }

  const ScenarioResult r = RunScenario(config);

  // --- Per-client metric sanity.
  ASSERT_EQ(r.video.size(), 3u);
  const double top_bps = config.ladder_kbps.back() * 1000.0;
  for (const ClientMetrics& m : r.video) {
    EXPECT_GE(m.segments, 0);
    EXPECT_GE(m.avg_bitrate_bps, 0.0);
    EXPECT_LE(m.avg_bitrate_bps, top_bps + 1.0);
    EXPECT_GE(m.bitrate_changes, 0);
    if (m.segments > 0) {
      EXPECT_LT(m.bitrate_changes, m.segments);
      EXPECT_GE(m.avg_bitrate_bps, config.ladder_kbps.front() * 1000.0);
    }
    EXPECT_GE(m.rebuffer_time_s, 0.0);
    EXPECT_LE(m.rebuffer_time_s, config.duration_s);
    EXPECT_GE(m.rebuffer_events, 0);
  }

  // --- Fairness index well-formed.
  EXPECT_GE(r.jain_avg_bitrate, 1.0 / 3.0 - 1e-9);
  EXPECT_LE(r.jain_avg_bitrate, 1.0 + 1e-9);

  // --- Throughput bounded by the best possible cell rate.
  const double max_cell_bps = ItbsToCellRateBps(kMaxItbs, config.num_rbs);
  double total_bps = r.avg_data_throughput_bps *
                     static_cast<double>(r.data_throughput_bps.size());
  for (const ClientMetrics& m : r.video) total_bps += m.avg_bitrate_bps;
  EXPECT_LE(total_bps, max_cell_bps * 1.05);

  // --- FLARE-only: solver outputs well-formed.
  for (double ms : r.solve_times_ms) {
    EXPECT_GE(ms, 0.0);
    EXPECT_LT(ms, 1000.0);
  }
  for (double frac : r.video_fractions) {
    EXPECT_GE(frac, 0.0);
    EXPECT_LE(frac, 1.0 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemesAndChannels, ScenarioInvariants,
    ::testing::Combine(
        ::testing::Values(Scheme::kFlare, Scheme::kFlareRelaxed,
                          Scheme::kFestive, Scheme::kGoogle, Scheme::kAvis,
                          Scheme::kFlareNetworkOnly, Scheme::kPanda,
                          Scheme::kMpc, Scheme::kBba),
        ::testing::Values(ChannelKind::kStaticItbs,
                          ChannelKind::kItbsTriangle,
                          ChannelKind::kPlacedStatic, ChannelKind::kMobile),
        ::testing::Values(1u, 17u)));

// Determinism across the whole matrix: same config, same result.
class ScenarioDeterminism
    : public ::testing::TestWithParam<std::tuple<Scheme, ChannelKind>> {};

TEST_P(ScenarioDeterminism, RunsAreReproducible) {
  const auto [scheme, channel] = GetParam();
  ScenarioConfig config;
  config.scheme = scheme;
  config.channel = channel;
  config.duration_s = 60.0;
  config.seed = 5;
  config.testbed = channel == ChannelKind::kStaticItbs ||
                   channel == ChannelKind::kItbsTriangle;
  if (!config.testbed) {
    config.num_rbs = 25;
    config.ladder_kbps = SimulationLadderKbps();
    config.segment_duration_s = 10.0;
  }
  const ScenarioResult a = RunScenario(config);
  const ScenarioResult b = RunScenario(config);
  ASSERT_EQ(a.video.size(), b.video.size());
  for (std::size_t i = 0; i < a.video.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.video[i].avg_bitrate_bps,
                     b.video[i].avg_bitrate_bps);
    EXPECT_EQ(a.video[i].bitrate_changes, b.video[i].bitrate_changes);
    EXPECT_DOUBLE_EQ(a.video[i].rebuffer_time_s,
                     b.video[i].rebuffer_time_s);
  }
  EXPECT_EQ(a.data_throughput_bps, b.data_throughput_bps);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ScenarioDeterminism,
    ::testing::Combine(::testing::Values(Scheme::kFlare, Scheme::kFestive,
                                         Scheme::kAvis, Scheme::kMpc),
                       ::testing::Values(ChannelKind::kStaticItbs,
                                         ChannelKind::kMobile)));

// Property: Algorithm 1's per-BAI decisions, under randomized ladders and
// channel efficiencies, always (a) respect the capacity constraint — the
// video RB fraction stays within max_video_fraction whenever the solver
// reports the problem feasible — and (b) respect the stability cap: no
// flow's enforced rung ever rises by more than one per BAI, and the first
// assignment is always the lowest rung.
class DecideBaiProperty
    : public ::testing::TestWithParam<std::tuple<SolverMode, std::uint64_t>> {
};

TEST_P(DecideBaiProperty, CapacityAndStabilityInvariants) {
  const auto [solver, seed] = GetParam();
  Rng rng(seed);

  FlareParams params;
  params.solver = solver;
  params.delta = static_cast<int>(rng.Uniform(0.0, 4.0));
  FlareRateController controller(params);

  // Randomized population with per-flow randomized increasing ladders.
  const int n_flows = 2 + static_cast<int>(rng.Uniform(0.0, 7.0));
  for (FlowId id = 1; id <= static_cast<FlowId>(n_flows); ++id) {
    const int rungs = 2 + static_cast<int>(rng.Uniform(0.0, 8.0));
    std::vector<double> ladder;
    double rate = rng.Uniform(50e3, 400e3);
    for (int r = 0; r < rungs; ++r) {
      ladder.push_back(rate);
      rate *= rng.Uniform(1.3, 2.2);
    }
    controller.AddFlow(id, ladder);
  }

  std::vector<double> bits_per_rb(static_cast<std::size_t>(n_flows));
  for (double& e : bits_per_rb) e = rng.Uniform(16.0, 712.0);
  const double rb_rate = rng.Uniform(500.0, 4000.0) * n_flows;

  std::map<FlowId, int> last_level;
  for (int bai = 0; bai < 60; ++bai) {
    std::vector<FlowObservation> observations;
    for (int i = 0; i < n_flows; ++i) {
      auto& e = bits_per_rb[static_cast<std::size_t>(i)];
      e = std::clamp(e * rng.Uniform(0.8, 1.25), 16.0, 712.0);
      FlowObservation obs;
      obs.id = static_cast<FlowId>(i + 1);
      obs.bits_per_rb = e;
      observations.push_back(obs);
    }
    const int n_data = static_cast<int>(rng.Uniform(0.0, 4.0));
    const BaiDecision decision =
        controller.DecideBai(observations, n_data, rb_rate);
    ASSERT_EQ(decision.assignments.size(),
              static_cast<std::size_t>(n_flows));

    if (decision.feasible) {
      EXPECT_LE(decision.video_fraction,
                params.max_video_fraction + 1e-9)
          << "capacity violated at BAI " << bai;
    }
    for (const RateAssignment& a : decision.assignments) {
      const auto prev = last_level.find(a.id);
      if (prev == last_level.end()) {
        EXPECT_EQ(a.level, 0) << "new flow must start at the lowest rung";
      } else {
        EXPECT_LE(a.level, prev->second + 1)
            << "flow " << a.id << " jumped more than one rung at BAI "
            << bai;
      }
      EXPECT_GE(a.level, 0);
      EXPECT_GE(a.recommended_level, 0);
      EXPECT_GE(a.consecutive_up, 0);
      last_level[a.id] = a.level;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomizedLadders, DecideBaiProperty,
    ::testing::Combine(::testing::Values(SolverMode::kGreedyDiscrete,
                                         SolverMode::kContinuousRelaxation),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u)));

}  // namespace
}  // namespace flare
