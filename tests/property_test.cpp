// Property-based sweeps: system-wide invariants that must hold for every
// scheme, channel model and seed — conservation laws, metric sanity, and
// capacity bounds, checked on full end-to-end runs.
#include <gtest/gtest.h>

#include <tuple>

#include "lte/tbs_table.h"
#include "scenario/scenario.h"

namespace flare {
namespace {

using Param = std::tuple<Scheme, ChannelKind, std::uint64_t>;

class ScenarioInvariants : public ::testing::TestWithParam<Param> {};

TEST_P(ScenarioInvariants, HoldOnFullRuns) {
  const auto [scheme, channel, seed] = GetParam();
  ScenarioConfig config;
  config.scheme = scheme;
  config.channel = channel;
  config.seed = seed;
  config.duration_s = 120.0;
  config.n_video = 3;
  config.n_data = 1;
  if (channel == ChannelKind::kPlacedStatic ||
      channel == ChannelKind::kMobile) {
    config.testbed = false;
    config.num_rbs = 25;
    config.ladder_kbps = SimulationLadderKbps();
    config.segment_duration_s = 10.0;
  } else {
    config.testbed = true;
    config.ladder_kbps = TestbedLadderKbps();
    config.segment_duration_s = 2.0;
  }

  const ScenarioResult r = RunScenario(config);

  // --- Per-client metric sanity.
  ASSERT_EQ(r.video.size(), 3u);
  const double top_bps = config.ladder_kbps.back() * 1000.0;
  for (const ClientMetrics& m : r.video) {
    EXPECT_GE(m.segments, 0);
    EXPECT_GE(m.avg_bitrate_bps, 0.0);
    EXPECT_LE(m.avg_bitrate_bps, top_bps + 1.0);
    EXPECT_GE(m.bitrate_changes, 0);
    if (m.segments > 0) {
      EXPECT_LT(m.bitrate_changes, m.segments);
      EXPECT_GE(m.avg_bitrate_bps, config.ladder_kbps.front() * 1000.0);
    }
    EXPECT_GE(m.rebuffer_time_s, 0.0);
    EXPECT_LE(m.rebuffer_time_s, config.duration_s);
    EXPECT_GE(m.rebuffer_events, 0);
  }

  // --- Fairness index well-formed.
  EXPECT_GE(r.jain_avg_bitrate, 1.0 / 3.0 - 1e-9);
  EXPECT_LE(r.jain_avg_bitrate, 1.0 + 1e-9);

  // --- Throughput bounded by the best possible cell rate.
  const double max_cell_bps = ItbsToCellRateBps(kMaxItbs, config.num_rbs);
  double total_bps = r.avg_data_throughput_bps *
                     static_cast<double>(r.data_throughput_bps.size());
  for (const ClientMetrics& m : r.video) total_bps += m.avg_bitrate_bps;
  EXPECT_LE(total_bps, max_cell_bps * 1.05);

  // --- FLARE-only: solver outputs well-formed.
  for (double ms : r.solve_times_ms) {
    EXPECT_GE(ms, 0.0);
    EXPECT_LT(ms, 1000.0);
  }
  for (double frac : r.video_fractions) {
    EXPECT_GE(frac, 0.0);
    EXPECT_LE(frac, 1.0 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemesAndChannels, ScenarioInvariants,
    ::testing::Combine(
        ::testing::Values(Scheme::kFlare, Scheme::kFlareRelaxed,
                          Scheme::kFestive, Scheme::kGoogle, Scheme::kAvis,
                          Scheme::kFlareNetworkOnly, Scheme::kPanda,
                          Scheme::kMpc, Scheme::kBba),
        ::testing::Values(ChannelKind::kStaticItbs,
                          ChannelKind::kItbsTriangle,
                          ChannelKind::kPlacedStatic, ChannelKind::kMobile),
        ::testing::Values(1u, 17u)));

// Determinism across the whole matrix: same config, same result.
class ScenarioDeterminism
    : public ::testing::TestWithParam<std::tuple<Scheme, ChannelKind>> {};

TEST_P(ScenarioDeterminism, RunsAreReproducible) {
  const auto [scheme, channel] = GetParam();
  ScenarioConfig config;
  config.scheme = scheme;
  config.channel = channel;
  config.duration_s = 60.0;
  config.seed = 5;
  config.testbed = channel == ChannelKind::kStaticItbs ||
                   channel == ChannelKind::kItbsTriangle;
  if (!config.testbed) {
    config.num_rbs = 25;
    config.ladder_kbps = SimulationLadderKbps();
    config.segment_duration_s = 10.0;
  }
  const ScenarioResult a = RunScenario(config);
  const ScenarioResult b = RunScenario(config);
  ASSERT_EQ(a.video.size(), b.video.size());
  for (std::size_t i = 0; i < a.video.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.video[i].avg_bitrate_bps,
                     b.video[i].avg_bitrate_bps);
    EXPECT_EQ(a.video[i].bitrate_changes, b.video[i].bitrate_changes);
    EXPECT_DOUBLE_EQ(a.video[i].rebuffer_time_s,
                     b.video[i].rebuffer_time_s);
  }
  EXPECT_EQ(a.data_throughput_bps, b.data_throughput_bps);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ScenarioDeterminism,
    ::testing::Combine(::testing::Values(Scheme::kFlare, Scheme::kFestive,
                                         Scheme::kAvis, Scheme::kMpc),
                       ::testing::Values(ChannelKind::kStaticItbs,
                                         ChannelKind::kMobile)));

}  // namespace
}  // namespace flare
