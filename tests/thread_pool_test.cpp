// ThreadPool contract tests (FIFO dispatch, batch reuse, exception
// safety, clean teardown) plus runtime-cost smoke checks for the
// persistent-worker parallel runner: message pooling must not change
// delivery semantics, and running 8 workers on the 8-cell determinism
// scenario must stay within 15% of the serial wall clock even on a
// single-core machine — the "parallel mode is never pure overhead"
// guarantee that bench_fig9_scaling gates in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "scenario/multi_cell.h"
#include "sim/parallel_runner.h"
#include "util/thread_pool.h"

namespace flare {
namespace {

TEST(ThreadPool, RunsEveryJobExactlyOnce) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::function<void()>> jobs;
  for (int i = 0; i < 100; ++i) {
    jobs.push_back([&count] { count.fetch_add(1); });
  }
  pool.RunAll(std::move(jobs));
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, DispatchesJobsInSubmissionOrder) {
  // With a single worker, execution order == dispatch order, so a LIFO
  // queue (the old pending_.back() bug) reverses this sequence.
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::function<void()>> jobs;
  for (int i = 0; i < 16; ++i) {
    jobs.push_back([&order, i] { order.push_back(i); });
  }
  pool.RunAll(std::move(jobs));
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ThreadPool, IsReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 5; ++batch) {
    std::vector<std::function<void()>> jobs;
    for (int i = 0; i < 10; ++i) {
      jobs.push_back([&count] { count.fetch_add(1); });
    }
    pool.RunAll(std::move(jobs));
    EXPECT_EQ(count.load(), (batch + 1) * 10);
  }
}

TEST(ThreadPool, ThrowingJobDoesNotDeadlockAndPropagates) {
  // Regression: WorkerLoop used to skip the in_flight_ decrement when a
  // job threw, so RunAll waited forever. Now the batch completes, the
  // first exception is rethrown to the caller, and the pool stays usable.
  ThreadPool pool(2);
  std::atomic<int> survivors{0};
  std::vector<std::function<void()>> jobs;
  jobs.push_back([] { throw std::runtime_error("job failed"); });
  for (int i = 0; i < 8; ++i) {
    jobs.push_back([&survivors] { survivors.fetch_add(1); });
  }
  EXPECT_THROW(pool.RunAll(std::move(jobs)), std::runtime_error);
  // Every non-throwing job of the batch still ran exactly once.
  EXPECT_EQ(survivors.load(), 8);
  // The pool survives the failed batch.
  std::vector<std::function<void()>> again;
  again.push_back([&survivors] { survivors.fetch_add(1); });
  pool.RunAll(std::move(again));
  EXPECT_EQ(survivors.load(), 9);
}

TEST(ThreadPool, DestructsCleanlyWithIdleWorkers) {
  // No jobs ever submitted: destruction must wake and join all workers.
  ThreadPool pool(8);
  EXPECT_EQ(pool.size(), 8);
}

TEST(ParallelRunner, PooledMailboxesPreserveDeliverySemantics) {
  // Two domains ping-pong payloads across epochs. Recycled message
  // buffers must not corrupt content, ordering, or follow-up rounds
  // (handlers posting from inside the barrier drain).
  ParallelRunner::Options options;
  options.workers = 2;
  options.epoch = kSecond;
  ParallelRunner runner(options);
  EventDomain& a = runner.AddDomain();
  EventDomain& b = runner.AddDomain();

  std::vector<std::string> b_got;
  std::vector<std::string> coord_got;
  b.SetHandler([&](const DomainMessage& msg) {
    b_got.push_back(msg.payload);
    // Follow-up from inside the drain: must be delivered in the same
    // barrier's next round.
    b.StartPost(kCoordinatorDomain).append("ack " + msg.payload);
  });
  runner.SetCoordinatorHandler(
      [&](const DomainMessage& msg) { coord_got.push_back(msg.payload); });

  // Each epoch, domain A posts two messages built in pooled buffers
  // (mid-epoch ticks at 0.5s, 1.5s, 2.5s — one per 1 s epoch).
  int tick = 0;
  a.sim().Every(kSecond / 2, kSecond, [&] {
    const std::string n = std::to_string(tick++);
    a.StartPost(b.id()).append("hello " + n);
    a.StartPost(b.id()).append("world " + n);
  });
  runner.RunUntil(3 * kSecond);

  ASSERT_EQ(b_got.size(), 6u);
  ASSERT_EQ(coord_got.size(), 6u);
  for (int epoch = 0; epoch < 3; ++epoch) {
    const std::string n = std::to_string(epoch);
    EXPECT_EQ(b_got[static_cast<size_t>(epoch * 2)], "hello " + n);
    EXPECT_EQ(b_got[static_cast<size_t>(epoch * 2 + 1)], "world " + n);
    EXPECT_EQ(coord_got[static_cast<size_t>(epoch * 2)], "ack hello " + n);
    EXPECT_EQ(coord_got[static_cast<size_t>(epoch * 2 + 1)],
              "ack world " + n);
  }
  EXPECT_EQ(runner.messages_delivered(), 12u);
  EXPECT_EQ(runner.epochs(), 3u);
}

TEST(ParallelRunner, AddingDomainsBetweenRunsRepartitionsWorkers) {
  // The static partitions are rebuilt (and extra workers spawned, seeded
  // at the current barrier generation) when domains are added between
  // RunUntil calls.
  ParallelRunner::Options options;
  options.workers = 3;
  ParallelRunner runner(options);
  std::atomic<int> ticks{0};
  const auto add_domain = [&] {
    EventDomain& d = runner.AddDomain();
    d.sim().Every(kSecond / 2, kSecond, [&ticks] { ticks.fetch_add(1); });
  };
  add_domain();
  add_domain();
  runner.RunUntil(2 * kSecond);  // 2 domains x ticks at 0.5s, 1.5s
  EXPECT_EQ(ticks.load(), 4);
  add_domain();
  add_domain();
  add_domain();
  // The second run re-covers [0, 4s): the old domains' clocks are at 2s
  // already (+2 ticks each), the new ones replay from 0 (+4 ticks each).
  runner.RunUntil(4 * kSecond);
  EXPECT_EQ(ticks.load(), 4 + 2 * 2 + 3 * 4);
}

TEST(ParallelRunner, ThrowingDomainEventPropagatesWithoutHanging) {
  ParallelRunner::Options options;
  options.workers = 2;
  ParallelRunner runner(options);
  EventDomain& a = runner.AddDomain();
  runner.AddDomain();
  a.sim().At(kSecond / 2,
             [] { throw std::runtime_error("domain event failed"); });
  EXPECT_THROW(runner.RunUntil(2 * kSecond), std::runtime_error);
}

/// The 8-cell determinism scenario (the churn harness of
/// tests/determinism_test.cpp, shortened): 8 worker threads must cost at
/// most 15% wall clock over serial, regardless of how many hardware
/// threads this machine has. Min-of-3 on both sides filters scheduler
/// noise; results are bit-identical either way, so only time differs.
MultiCellConfig OverheadConfig(int workers) {
  MultiCellConfig multi;
  multi.cell = TestbedPreset(Scheme::kFlare);
  multi.cell.duration_s = 10.0;
  multi.cell.seed = 7;
  multi.cell.oneapi.deterministic_timing = true;
  multi.cell.n_video = 2;
  multi.cell.churn.enabled = true;
  multi.cell.churn.arrival_rate_per_s = 0.4;
  multi.cell.churn.mean_hold_s = 8.0;
  multi.n_cells = 8;
  multi.workers = workers;
  return multi;
}

double MinWallMs(int workers, int reps) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const MultiCellResult result = RunMultiCellScenario(OverheadConfig(workers));
    if (r == 0 || result.wall_ms < best) best = result.wall_ms;
  }
  return best;
}

#if defined(__SANITIZE_THREAD__)
#define FLARE_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define FLARE_TSAN 1
#endif
#endif

TEST(ParallelRunner, EightWorkerOverheadStaysUnderFifteenPercent) {
#ifdef FLARE_TSAN
  GTEST_SKIP() << "wall-clock bound is meaningless under TSan "
                  "instrumentation; the suite still runs the runner's "
                  "synchronization under TSan via the other tests";
#endif
  const double serial_ms = MinWallMs(/*workers=*/0, /*reps=*/3);
  const double parallel_ms = MinWallMs(/*workers=*/8, /*reps=*/3);
  ASSERT_GT(serial_ms, 0.0);
  EXPECT_LE(parallel_ms, serial_ms * 1.15)
      << "workers=8 wall " << parallel_ms << " ms vs serial " << serial_ms
      << " ms on " << std::thread::hardware_concurrency()
      << " hardware thread(s)";
}

}  // namespace
}  // namespace flare
