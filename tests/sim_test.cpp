// Tests for the discrete-event simulation core.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "obs/metrics.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace flare {
namespace {

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> order;
  q.Push(30, [&] { order.push_back(3); });
  q.Push(10, [&] { order.push_back(1); });
  q.Push(20, [&] { order.push_back(2); });
  while (!q.Empty()) q.RunNext();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakInSchedulingOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.Push(5, [&order, i] { order.push_back(i); });
  }
  while (!q.Empty()) q.RunNext();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, EventsMayScheduleEvents) {
  EventQueue q;
  int fired = 0;
  q.Push(1, [&] {
    ++fired;
    q.Push(2, [&] { ++fired; });
  });
  while (!q.Empty()) q.RunNext();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, ClearEmptiesQueue) {
  EventQueue q;
  q.Push(1, [] {});
  q.Push(2, [] {});
  q.Clear();
  EXPECT_TRUE(q.Empty());
}

TEST(Simulator, ClockAdvancesToEventTimes) {
  Simulator sim;
  std::vector<SimTime> seen;
  sim.At(100, [&] { seen.push_back(sim.Now()); });
  sim.At(250, [&] { seen.push_back(sim.Now()); });
  sim.RunUntil(1000);
  EXPECT_EQ(seen, (std::vector<SimTime>{100, 250}));
  EXPECT_EQ(sim.Now(), 1000);  // horizon reached even with queue drained
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator sim;
  int fired = 0;
  sim.At(100, [&] { ++fired; });
  sim.At(200, [&] { ++fired; });
  sim.RunUntil(150);
  EXPECT_EQ(fired, 1);
  sim.RunUntil(250);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventExactlyAtHorizonRuns) {
  Simulator sim;
  bool fired = false;
  sim.At(100, [&] { fired = true; });
  sim.RunUntil(100);
  EXPECT_TRUE(fired);
}

TEST(Simulator, SchedulingInThePastClampsToNow) {
  Simulator sim;
  SimTime fired_at = -1;
  sim.At(100, [&] {
    sim.At(50, [&] { fired_at = sim.Now(); });  // "past" event
  });
  sim.RunUntil(200);
  EXPECT_EQ(fired_at, 100);
}

TEST(Simulator, AfterIsRelative) {
  Simulator sim;
  SimTime fired_at = -1;
  sim.At(100, [&] {
    sim.After(25, [&] { fired_at = sim.Now(); });
  });
  sim.RunUntil(200);
  EXPECT_EQ(fired_at, 125);
}

TEST(Simulator, EveryRepeats) {
  Simulator sim;
  int count = 0;
  sim.Every(10, 10, [&] { ++count; });
  sim.RunUntil(100);
  EXPECT_EQ(count, 10);  // t = 10, 20, ..., 100
}

TEST(Simulator, StopHaltsRun) {
  Simulator sim;
  int count = 0;
  sim.Every(10, 10, [&] {
    if (++count == 3) sim.Stop();
  });
  sim.RunUntil(1000);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sim.Now(), 30);
}

TEST(Simulator, CountsProcessedEvents) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.At(i, [] {});
  sim.RunUntil(10);
  EXPECT_EQ(sim.events_processed(), 5u);
}

// Regression: Every() used to store its repeating callable in a
// shared_ptr whose lambda captured that same shared_ptr — a reference
// cycle that leaked the callable (and everything it captured) after the
// simulator was destroyed.
TEST(Simulator, EveryCallableIsReleasedWithSimulator) {
  auto payload = std::make_shared<int>(0);
  std::weak_ptr<int> watch = payload;
  {
    Simulator sim;
    sim.Every(10, 10, [payload] { ++*payload; });
    payload.reset();
    sim.RunUntil(50);
    EXPECT_FALSE(watch.expired());  // still scheduled, still alive
  }
  // Destroying the simulator (draining its queue) must free the callable.
  EXPECT_TRUE(watch.expired());
}

TEST(Simulator, MetricsCountEventsAndQueueDepth) {
  MetricsRegistry registry;
  Simulator sim;
  sim.SetMetrics(&registry);
  for (int i = 0; i < 4; ++i) sim.At(i + 1, [] {});
  sim.RunUntil(10);
  EXPECT_EQ(registry.GetCounter("sim.events").value(), 4u);
  EXPECT_EQ(registry.GetGauge("sim.queue_depth").value(), 0.0);
}

}  // namespace
}  // namespace flare
