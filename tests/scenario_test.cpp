// Integration tests: full scenarios through the scenario harness,
// asserting the qualitative results the paper reports (who wins, who
// oscillates, who rebuffers).
#include <gtest/gtest.h>

#include "scenario/experiment.h"
#include "scenario/scenario.h"

namespace flare {
namespace {

ScenarioConfig BaseTestbed(Scheme scheme, double duration_s = 180.0) {
  ScenarioConfig config;
  config.scheme = scheme;
  config.duration_s = duration_s;
  config.n_video = 3;
  config.n_data = 1;
  config.channel = ChannelKind::kStaticItbs;
  config.static_itbs = 7;
  config.testbed = true;
  config.seed = 11;
  return config;
}

TEST(ScenarioIntegration, FlareStaticConvergesAndHolds) {
  const ScenarioResult r = RunScenario(BaseTestbed(Scheme::kFlare));
  ASSERT_EQ(r.video.size(), 3u);
  for (const ClientMetrics& m : r.video) {
    EXPECT_LE(m.bitrate_changes, 6);      // ramp + hold
    EXPECT_EQ(m.rebuffer_events, 0);      // zero underflow
    EXPECT_GT(m.avg_bitrate_bps, 400e3);  // converges near 790 Kbps
  }
  EXPECT_GT(r.jain_avg_bitrate, 0.98);
  EXPECT_GT(r.avg_data_throughput_bps, 0.5e6);  // data not starved
  EXPECT_FALSE(r.solve_times_ms.empty());
}

TEST(ScenarioIntegration, FestiveOscillatesMoreThanFlare) {
  const ScenarioResult flare = RunScenario(BaseTestbed(Scheme::kFlare));
  const ScenarioResult festive =
      RunScenario(BaseTestbed(Scheme::kFestive));
  EXPECT_GT(festive.avg_bitrate_changes, flare.avg_bitrate_changes);
  // FESTIVE is conservative: data flow does well (paper Table I).
  EXPECT_GT(festive.avg_data_throughput_bps,
            0.8 * flare.avg_data_throughput_bps);
}

TEST(ScenarioIntegration, GoogleGrabsBandwidthFromData) {
  const ScenarioResult google = RunScenario(BaseTestbed(Scheme::kGoogle));
  const ScenarioResult festive =
      RunScenario(BaseTestbed(Scheme::kFestive));
  // GOOGLE's aggressive selection yields higher video bitrate and lower
  // data throughput than FESTIVE (paper Table I ordering).
  EXPECT_GT(google.avg_video_bitrate_bps, festive.avg_video_bitrate_bps);
  EXPECT_LT(google.avg_data_throughput_bps,
            festive.avg_data_throughput_bps);
}

TEST(ScenarioIntegration, DynamicScenarioFlareTracksWithoutUnderflow) {
  ScenarioConfig config = BaseTestbed(Scheme::kFlare, 300.0);
  config.channel = ChannelKind::kItbsTriangle;
  const ScenarioResult r = RunScenario(config);
  for (const ClientMetrics& m : r.video) {
    EXPECT_EQ(m.rebuffer_events, 0);  // paper: FLARE never underflows
    EXPECT_GT(m.bitrate_changes, 0);  // but it does adapt
  }
}

TEST(ScenarioIntegration, SimStaticFlareBeatsFestiveOnStability) {
  // Full Table III preset (1200 s, 8 clients); averaged over 2 seeds.
  ScenarioConfig flare_config = SimStaticPreset(Scheme::kFlare);
  ScenarioConfig festive_config = SimStaticPreset(Scheme::kFestive);
  flare_config.seed = festive_config.seed = 100;
  const PooledMetrics flare = Pool(RunMany(flare_config, 2));
  const PooledMetrics festive = Pool(RunMany(festive_config, 2));
  EXPECT_LT(flare.MeanChanges(), festive.MeanChanges());
  // Paper Fig. 6a ordering: FLARE's average bitrate at least on par.
  EXPECT_GT(flare.MeanBitrateKbps(), 0.9 * festive.MeanBitrateKbps());
}

TEST(ScenarioIntegration, AvisClientNetworkMismatchHurtsAvis) {
  ScenarioConfig avis_config = SimStaticPreset(Scheme::kAvis);
  ScenarioConfig flare_config = SimStaticPreset(Scheme::kFlare);
  avis_config.seed = flare_config.seed = 100;
  const PooledMetrics avis = Pool(RunMany(avis_config, 2));
  const PooledMetrics flare = Pool(RunMany(flare_config, 2));
  // Paper Fig. 6: FLARE's average bitrate exceeds AVIS's and FLARE
  // switches less.
  EXPECT_GT(flare.MeanBitrateKbps(), avis.MeanBitrateKbps());
  EXPECT_LE(flare.MeanChanges(), avis.MeanChanges() + 1.0);
}

TEST(ScenarioIntegration, MobileScenarioRuns) {
  ScenarioConfig config;
  config.testbed = false;
  config.channel = ChannelKind::kMobile;
  config.ladder_kbps = SimulationLadderKbps();
  config.segment_duration_s = 10.0;
  config.duration_s = 200.0;
  config.n_video = 4;
  config.n_data = 1;
  config.scheme = Scheme::kFlare;
  config.seed = 17;
  const ScenarioResult r = RunScenario(config);
  ASSERT_EQ(r.video.size(), 4u);
  for (const ClientMetrics& m : r.video) EXPECT_GT(m.segments, 5);
}

TEST(ScenarioIntegration, RelaxedSolverCloseToExact) {
  ScenarioConfig config;
  config.testbed = false;
  config.channel = ChannelKind::kPlacedStatic;
  config.ladder_kbps = DenseLadderKbps();
  config.segment_duration_s = 10.0;
  config.duration_s = 300.0;
  config.n_video = 4;
  config.n_data = 1;
  config.seed = 9;

  config.scheme = Scheme::kFlare;
  const ScenarioResult exact = RunScenario(config);
  config.scheme = Scheme::kFlareRelaxed;
  const ScenarioResult relaxed = RunScenario(config);
  // Paper Fig. 8: the relaxation costs <~15% average bitrate.
  EXPECT_GT(relaxed.avg_video_bitrate_bps,
            0.7 * exact.avg_video_bitrate_bps);
}

TEST(ScenarioIntegration, SeriesSamplerProducesConsistentSeries) {
  ScenarioConfig config = BaseTestbed(Scheme::kFlare, 60.0);
  config.sample_series = true;
  const ScenarioResult r = RunScenario(config);
  ASSERT_EQ(r.series.size(), 60u);
  for (const SeriesSample& s : r.series) {
    EXPECT_EQ(s.video_bitrate_bps.size(), 3u);
    EXPECT_EQ(s.video_buffer_s.size(), 3u);
    EXPECT_EQ(s.data_throughput_bps.size(), 1u);
    for (double b : s.video_buffer_s) {
      EXPECT_GE(b, 0.0);
      EXPECT_LE(b, config.max_buffer_s + config.segment_duration_s);
    }
  }
  // Time axis is 1 Hz.
  EXPECT_DOUBLE_EQ(r.series[0].t_s, 1.0);
  EXPECT_DOUBLE_EQ(r.series.back().t_s, 60.0);
}

TEST(ScenarioIntegration, DeterministicForFixedSeed) {
  const ScenarioResult a = RunScenario(BaseTestbed(Scheme::kFestive, 90.0));
  const ScenarioResult b = RunScenario(BaseTestbed(Scheme::kFestive, 90.0));
  ASSERT_EQ(a.video.size(), b.video.size());
  for (std::size_t i = 0; i < a.video.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.video[i].avg_bitrate_bps,
                     b.video[i].avg_bitrate_bps);
    EXPECT_EQ(a.video[i].bitrate_changes, b.video[i].bitrate_changes);
  }
  EXPECT_EQ(a.data_throughput_bps, b.data_throughput_bps);
}

TEST(ScenarioIntegration, DifferentSeedsDiffer) {
  // A seed-dependent channel (random placement + fading): different seeds
  // must lead to different realized metrics. (A static-iTbs testbed run
  // legitimately converges to identical numbers across seeds.)
  ScenarioConfig config = SimStaticPreset(Scheme::kFestive);
  config.duration_s = 300.0;
  config.seed = 1;
  const ScenarioResult a = RunScenario(config);
  config.seed = 99;
  const ScenarioResult b = RunScenario(config);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.video.size(); ++i) {
    if (a.video[i].avg_bitrate_bps != b.video[i].avg_bitrate_bps ||
        a.video[i].bitrate_changes != b.video[i].bitrate_changes) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(ScenarioIntegration, RunManyIncrementsSeeds) {
  ScenarioConfig config = BaseTestbed(Scheme::kFlare, 60.0);
  const auto runs = RunMany(config, 3);
  ASSERT_EQ(runs.size(), 3u);
  const PooledMetrics pooled = Pool(runs);
  EXPECT_EQ(pooled.avg_bitrate_kbps.count(), 9u);  // 3 runs x 3 clients
  EXPECT_EQ(pooled.data_throughput_kbps.count(), 3u);
  EXPECT_EQ(pooled.jain_per_run.size(), 3u);
}

TEST(ScenarioIntegration, DisclosedScreenSizesShapeAssignments) {
  // Two clients disclose screens (one tiny, one large); under tight
  // capacity the large screen ends with the higher average bitrate.
  ScenarioConfig config = SimStaticPreset(Scheme::kFlare);
  config.duration_s = 400.0;
  config.n_video = 4;
  config.client_theta_bps = {0.02e6, 0.8e6};  // client 0 tiny, 1 large
  config.oneapi.params.delta = 2;
  config.seed = 100;
  const ScenarioResult r = RunScenario(config);
  ASSERT_EQ(r.video.size(), 4u);
  EXPECT_GT(r.video[1].avg_bitrate_bps, r.video[0].avg_bitrate_bps);
}

TEST(ScenarioIntegration, ClientMaxLevelCapsScenarioClient) {
  ScenarioConfig config = SimStaticPreset(Scheme::kFlare);
  config.duration_s = 300.0;
  config.n_video = 3;
  config.client_max_level = {1, -1, -1};  // client 0 capped at 250 Kbps
  config.oneapi.params.delta = 1;
  config.seed = 100;
  const ScenarioResult r = RunScenario(config);
  ASSERT_EQ(r.video.size(), 3u);
  EXPECT_LE(r.video[0].avg_bitrate_bps, 250e3 + 1.0);
  EXPECT_GT(r.video[1].avg_bitrate_bps, 250e3);
}

TEST(ScenarioIntegration, ConventionalPlayersCoexistWithoutGuarantees) {
  // Section V: non-FLARE players are serviced like data traffic; FLARE
  // clients keep their GBR-grade service next to them.
  ScenarioConfig config = SimStaticPreset(Scheme::kFlare);
  config.duration_s = 300.0;
  config.n_video = 4;
  config.n_conventional = 4;
  config.seed = 100;
  const ScenarioResult r = RunScenario(config);
  ASSERT_EQ(r.video.size(), 4u);
  ASSERT_EQ(r.conventional.size(), 4u);
  for (const ClientMetrics& m : r.video) {
    EXPECT_EQ(m.rebuffer_events, 0);  // GBR protection holds
    EXPECT_GT(m.segments, 0);
  }
  for (const ClientMetrics& m : r.conventional) {
    EXPECT_GT(m.segments, 0);  // best-effort service, but served
  }
}

TEST(ScenarioIntegration, AlphaTradesDataForVideo) {
  ScenarioConfig config;
  config.testbed = false;
  config.channel = ChannelKind::kPlacedStatic;
  config.ladder_kbps = DenseLadderKbps();
  config.segment_duration_s = 10.0;
  // Long enough to clear the delta-ramp (delta=2 => ~180 s to the top
  // rung) and observe the alpha-controlled steady state.
  config.duration_s = 600.0;
  config.n_video = 4;
  config.n_data = 4;
  config.scheme = Scheme::kFlare;
  config.seed = 23;
  config.oneapi.params.delta = 2;

  config.oneapi.params.alpha = 0.25;
  const ScenarioResult low = RunScenario(config);
  config.oneapi.params.alpha = 4.0;
  const ScenarioResult high = RunScenario(config);
  // Paper Fig. 11: higher alpha -> more data throughput, less video.
  EXPECT_GT(high.avg_data_throughput_bps, low.avg_data_throughput_bps);
  EXPECT_LE(high.avg_video_bitrate_bps, low.avg_video_bitrate_bps);
}

}  // namespace
}  // namespace flare
