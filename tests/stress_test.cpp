// Stress and kitchen-sink tests: fuzzed scheduler inputs, large optimizer
// instances, and feature-combination scenarios (VBR + BLER + live +
// conventional players at once).
#include <gtest/gtest.h>

#include <map>

#include "core/optimizer.h"
#include "has/uplink_session.h"
#include "lte/gbr_scheduler.h"
#include "lte/pf_scheduler.h"
#include "lte/pss_scheduler.h"
#include "net/flare_plugin.h"
#include "net/oneapi_server.h"
#include "scenario/scenario.h"
#include "transport/transport_host.h"
#include "util/rng.h"

namespace flare {
namespace {

TEST(SchedulerFuzz, RandomInputsNeverViolateInvariants) {
  Rng rng(77);
  PfScheduler pf;
  PssScheduler pss;
  TwoPhaseGbrScheduler two_phase;
  RoundRobinScheduler rr;
  Scheduler* schedulers[] = {&pf, &pss, &two_phase, &rr};

  for (int trial = 0; trial < 400; ++trial) {
    const int n = static_cast<int>(rng.UniformInt(0, 24));
    std::vector<FlowState> states(static_cast<std::size_t>(n));
    std::vector<SchedCandidate> candidates;
    for (int i = 0; i < n; ++i) {
      FlowState& s = states[static_cast<std::size_t>(i)];
      s.id = static_cast<FlowId>(i + 1);
      s.type = rng.Uniform() < 0.5 ? FlowType::kVideo : FlowType::kData;
      s.gbr_bps = rng.Uniform() < 0.4 ? rng.Uniform(1e5, 5e6) : 0.0;
      s.gbr_credit_bytes = rng.Uniform(0.0, 50'000.0);
      s.pf_avg_bps = rng.Uniform(1.0, 1e7);
      SchedCandidate c;
      c.flow = &s;
      c.bytes_per_rb = static_cast<std::uint32_t>(rng.UniformInt(0, 90));
      c.max_bytes = static_cast<std::uint64_t>(rng.UniformInt(0, 100'000));
      candidates.push_back(c);
    }
    const int n_rbs = static_cast<int>(rng.UniformInt(0, 110));

    for (Scheduler* sched : schedulers) {
      auto cands = candidates;  // schedulers may reorder their copy
      const auto grants = sched->Allocate(cands, n_rbs, rng);
      int rbs = 0;
      std::map<FlowId, std::uint64_t> bytes;
      for (const SchedGrant& g : grants) {
        ASSERT_NE(g.flow, nullptr);
        EXPECT_GT(g.rbs, 0);
        rbs += g.rbs;
        bytes[g.flow->id] += g.bytes;
      }
      EXPECT_LE(rbs, n_rbs) << sched->Name() << " trial " << trial;
      for (const SchedCandidate& c : candidates) {
        EXPECT_LE(bytes[c.flow->id], c.max_bytes)
            << sched->Name() << " trial " << trial;
      }
    }
  }
}

TEST(OptimizerStress, LargeInstancesStayConsistent) {
  Rng rng(88);
  for (int trial = 0; trial < 5; ++trial) {
    OptProblem p;
    p.n_data_flows = static_cast<int>(rng.UniformInt(0, 10));
    p.alpha = rng.Uniform(0.25, 4.0);
    p.rb_rate = 3'125.0 * 128.0;
    for (int i = 0; i < 128; ++i) {
      OptFlow f;
      for (double kbps : DenseLadderKbps()) {
        f.ladder_bps.push_back(kbps * 1000.0);
      }
      f.max_level = static_cast<int>(f.ladder_bps.size()) - 1;
      f.bits_per_rb = rng.Uniform(30.0, 700.0);
      p.flows.push_back(std::move(f));
    }
    const OptResult greedy = SolveGreedy(p);
    const OptResult cont = SolveContinuous(p);
    ASSERT_TRUE(greedy.feasible);
    ASSERT_TRUE(cont.feasible);
    EXPECT_LE(RbRateCost(p, greedy.rates_bps),
              p.rb_rate * p.max_video_fraction + 1e-6);
    // Relaxation upper-bounds the discrete solution.
    EXPECT_GE(cont.objective, greedy.objective - 1e-6);
    // Greedy must be close to its own relaxation bound on big instances.
    EXPECT_GE(greedy.objective, cont.objective - 0.05 *
                                   std::abs(cont.objective) - 1.0);
  }
}

TEST(KitchenSink, AllFeaturesCombinedStillBehave) {
  // VBR encoding + 10% BLER + conventional players + data flows + FLARE,
  // all at once — the configuration matrix's far corner.
  ScenarioConfig config = SimStaticPreset(Scheme::kFlare);
  config.duration_s = 300.0;
  config.n_video = 4;
  config.n_data = 2;
  config.n_conventional = 2;
  config.vbr_sigma = 0.2;
  config.target_bler = 0.1;
  config.seed = 42;
  const ScenarioResult r = RunScenario(config);

  ASSERT_EQ(r.video.size(), 4u);
  ASSERT_EQ(r.conventional.size(), 2u);
  ASSERT_EQ(r.data_throughput_bps.size(), 2u);
  for (const ClientMetrics& m : r.video) {
    EXPECT_GT(m.segments, 10);
    EXPECT_LT(m.rebuffer_time_s, 30.0);
    EXPECT_GE(m.qoe, -2.0);
  }
  EXPECT_GT(r.avg_data_throughput_bps, 0.0);
  EXPECT_GT(r.jain_avg_bitrate, 0.5);
}

TEST(KitchenSink, QoeOrderingFlareVsAvisMobile) {
  // FLARE's composite QoE beats AVIS's in the mobile preset (stable
  // selection + no stalls outweigh AVIS's flapping).
  ScenarioConfig flare_config = SimMobilePreset(Scheme::kFlare);
  ScenarioConfig avis_config = SimMobilePreset(Scheme::kAvis);
  flare_config.duration_s = avis_config.duration_s = 600.0;
  flare_config.seed = avis_config.seed = 100;
  const ScenarioResult flare = RunScenario(flare_config);
  const ScenarioResult avis = RunScenario(avis_config);
  double flare_qoe = 0.0;
  double avis_qoe = 0.0;
  for (const ClientMetrics& m : flare.video) flare_qoe += m.qoe;
  for (const ClientMetrics& m : avis.video) avis_qoe += m.qoe;
  EXPECT_GT(flare_qoe, avis_qoe);
}

TEST(KitchenSink, LiveUplinkAndDownlinkShareOneCell) {
  // A broadcaster uploads live while two viewers stream down — all three
  // FLARE-managed in one cell (uplink/downlink share the modelled
  // resource; the point is the control plane handles both kinds).
  Simulator sim;
  Cell cell(sim, std::make_unique<TwoPhaseGbrScheduler>(), CellConfig{},
            Rng(1));
  TransportHost host(sim, cell);
  Pcrf pcrf;
  Pcef pcef(sim, cell, 10 * kMillisecond);
  OneApiConfig oneapi_config;
  oneapi_config.bai = FromSeconds(1.0);
  oneapi_config.params.delta = 2;
  OneApiServer server(sim, cell, pcrf, pcef, oneapi_config);
  const Mpd mpd = MakeMpd(SimulationLadderKbps(), 2.0);

  const UeId up_ue = cell.AddUe(std::make_unique<StaticItbsChannel>(9));
  TcpFlow& up_flow = host.CreateFlow(up_ue, FlowType::kVideo);
  auto up_plugin = std::make_unique<FlarePlugin>(up_flow.id());
  FlarePlugin* up_ptr = up_plugin.get();
  UplinkBroadcastSession broadcast(sim, up_flow, mpd,
                                   std::move(up_plugin),
                                   UplinkSessionConfig{});
  server.ConnectVideoClient(up_ptr, mpd);

  std::vector<std::unique_ptr<HttpClient>> https;
  std::vector<std::unique_ptr<VideoSession>> viewers;
  std::vector<std::unique_ptr<FlarePlugin>> keep;
  for (int i = 0; i < 2; ++i) {
    const UeId ue = cell.AddUe(std::make_unique<StaticItbsChannel>(9));
    TcpFlow& flow = host.CreateFlow(ue, FlowType::kVideo);
    https.push_back(std::make_unique<HttpClient>(sim, flow));
    auto plugin = std::make_unique<FlarePlugin>(flow.id());
    FlarePlugin* ptr = plugin.get();
    viewers.push_back(std::make_unique<VideoSession>(
        sim, *https.back(), mpd, std::move(plugin),
        VideoSessionConfig{}));
    server.ConnectVideoClient(ptr, mpd);
    viewers.back()->Start(FromSeconds(0.5 * i));
  }

  server.Start();
  broadcast.Start(0);
  cell.Start();
  sim.RunUntil(FromSeconds(120.0));

  EXPECT_GT(broadcast.segments_uploaded(), 40);
  EXPECT_LE(broadcast.backlog(), 3);
  for (const auto& viewer : viewers) {
    EXPECT_GT(viewer->segments_completed(), 30);
    viewer->player().AdvanceTo(sim.Now());
    EXPECT_LT(viewer->player().rebuffer_time_s(), 10.0);
  }
}

}  // namespace
}  // namespace flare
