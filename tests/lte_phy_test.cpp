// Tests for the LTE PHY-abstraction pieces: TBS table, AMC mappings,
// channel models and mobility.
#include <gtest/gtest.h>

#include <set>

#include "lte/amc.h"
#include "lte/channel.h"
#include "lte/mobility.h"
#include "lte/tbs_table.h"
#include "util/rng.h"

namespace flare {
namespace {

TEST(TbsTable, KnownCornerValues) {
  // 36.213 Table 7.1.7.2.1-1, n_PRB = 1 column.
  EXPECT_EQ(TbsBitsPerPrb(0), 16);
  EXPECT_EQ(TbsBitsPerPrb(10), 144);
  EXPECT_EQ(TbsBitsPerPrb(26), 712);
}

TEST(TbsTable, MonotoneInItbs) {
  for (int i = kMinItbs; i < kMaxItbs; ++i) {
    EXPECT_LT(TbsBitsPerPrb(i), TbsBitsPerPrb(i + 1)) << "itbs " << i;
  }
}

TEST(TbsTable, LinearInPrbs) {
  EXPECT_EQ(TbsBits(5, 10), 10 * TbsBitsPerPrb(5));
  EXPECT_EQ(TbsBits(5, 0), 0);
  EXPECT_EQ(TbsBits(5, -3), 0);
}

TEST(TbsTable, ClampsOutOfRangeItbs) {
  EXPECT_EQ(TbsBitsPerPrb(-5), TbsBitsPerPrb(kMinItbs));
  EXPECT_EQ(TbsBitsPerPrb(100), TbsBitsPerPrb(kMaxItbs));
}

TEST(TbsTable, CellRate) {
  // 50 PRBs every 1 ms at iTbs 7 (104 bits/PRB) = 5.2 Mbit/s.
  EXPECT_DOUBLE_EQ(ItbsToCellRateBps(7, 50), 5.2e6);
}

TEST(Amc, CqiRangeCovered) {
  EXPECT_EQ(SinrDbToCqi(-100.0), kMinCqi);  // stays attached at CQI 1
  EXPECT_EQ(SinrDbToCqi(100.0), kMaxCqi);
}

TEST(Amc, MonotoneSinrToCqi) {
  int prev = 0;
  for (double sinr = -10.0; sinr <= 25.0; sinr += 0.5) {
    const int cqi = SinrDbToCqi(sinr);
    EXPECT_GE(cqi, prev);
    prev = cqi;
  }
}

TEST(Amc, MonotoneCqiToItbs) {
  int prev = -1;
  for (int cqi = kMinCqi; cqi <= kMaxCqi; ++cqi) {
    const int itbs = CqiToItbs(cqi);
    EXPECT_GE(itbs, prev);
    EXPECT_GE(itbs, kMinItbs);
    EXPECT_LE(itbs, kMaxItbs);
    prev = itbs;
  }
}

TEST(Amc, TopCqiReachesTopItbs) { EXPECT_EQ(CqiToItbs(15), kMaxItbs); }

TEST(Channel, StaticItbsIsConstant) {
  StaticItbsChannel channel(9);
  EXPECT_EQ(channel.ItbsAt(0), 9);
  EXPECT_EQ(channel.ItbsAt(FromSeconds(1000)), 9);
}

TEST(Channel, TriangleSweepsFullRange) {
  const auto schedule =
      TriangleItbsSchedule(1, 12, FromSeconds(240), 0);
  std::set<int> seen;
  for (double t = 0.0; t < 240.0; t += 1.0) {
    const int itbs = schedule(FromSeconds(t));
    EXPECT_GE(itbs, 1);
    EXPECT_LE(itbs, 12);
    seen.insert(itbs);
  }
  EXPECT_EQ(static_cast<int>(seen.size()), 12);
}

TEST(Channel, TriangleRisesThenFalls) {
  const auto schedule =
      TriangleItbsSchedule(1, 12, FromSeconds(240), 0);
  EXPECT_EQ(schedule(0), 1);
  EXPECT_EQ(schedule(FromSeconds(120)), 12);  // peak at half period
  EXPECT_EQ(schedule(FromSeconds(240)), 1);   // back to start
  EXPECT_LT(schedule(FromSeconds(30)), schedule(FromSeconds(60)));
  EXPECT_GT(schedule(FromSeconds(150)), schedule(FromSeconds(200)));
}

TEST(Channel, TriangleOffsetShiftsPhase) {
  const SimTime period = FromSeconds(240);
  const auto base = TriangleItbsSchedule(1, 12, period, 0);
  const auto shifted = TriangleItbsSchedule(1, 12, period, period / 2);
  EXPECT_EQ(shifted(0), base(period / 2));
}

TEST(Channel, PathlossGrowsWithDistance) {
  EXPECT_LT(PathlossDb(100.0), PathlossDb(500.0));
  EXPECT_LT(PathlossDb(500.0), PathlossDb(1400.0));
  // 3GPP macro at 1 km: 128.1 dB.
  EXPECT_NEAR(PathlossDb(1000.0), 128.1, 1e-9);
}

TEST(Channel, FadedMobilityNearVsFar) {
  RadioConfig radio;
  Rng rng(5);
  FadedMobilityChannel near_channel(
      std::make_shared<StaticMobility>(Position{50.0, 0.0}), radio,
      rng.Fork(1));
  FadedMobilityChannel far_channel(
      std::make_shared<StaticMobility>(Position{1300.0, 0.0}), radio,
      rng.Fork(2));
  // Average over fading: near should beat far decisively.
  double near_sum = 0.0;
  double far_sum = 0.0;
  for (int i = 0; i < 100; ++i) {
    near_sum += near_channel.ItbsAt(FromSeconds(i * 0.1));
    far_sum += far_channel.ItbsAt(FromSeconds(i * 0.1));
  }
  EXPECT_GT(near_sum, far_sum);
  EXPECT_GE(far_sum / 100.0, kMinItbs);
}

TEST(Channel, FadingVariesOverTime) {
  RadioConfig radio;
  Rng rng(6);
  FadedMobilityChannel channel(
      std::make_shared<StaticMobility>(Position{400.0, 0.0}), radio,
      rng.Fork(3));
  std::set<double> sinrs;
  for (int i = 0; i < 200; ++i) {
    sinrs.insert(channel.SinrDbAt(FromSeconds(i * 0.05)));
  }
  EXPECT_GT(sinrs.size(), 10u);  // trace-based fading moves the SINR
}

TEST(Mobility, StaticStaysPut) {
  StaticMobility m(Position{3.0, 4.0});
  const Position p = m.At(FromSeconds(100));
  EXPECT_EQ(p.x, 3.0);
  EXPECT_EQ(p.y, 4.0);
}

TEST(Mobility, RandomWaypointStaysInArea) {
  RandomWaypointConfig config;
  config.area_m = 1000.0;
  RandomWaypointMobility m(config, Rng(11));
  for (double t = 0.0; t < 600.0; t += 1.0) {
    const Position p = m.At(FromSeconds(t));
    EXPECT_GE(p.x, -500.0);
    EXPECT_LE(p.x, 500.0);
    EXPECT_GE(p.y, -500.0);
    EXPECT_LE(p.y, 500.0);
  }
}

TEST(Mobility, RandomWaypointActuallyMoves) {
  RandomWaypointConfig config;
  RandomWaypointMobility m(config, Rng(12));
  const Position a = m.At(0);
  const Position b = m.At(FromSeconds(30));
  const double dist = std::hypot(a.x - b.x, a.y - b.y);
  EXPECT_GT(dist, 10.0);  // vehicular speeds cover >10 m in 30 s
}

TEST(Mobility, SpeedIsBounded) {
  RandomWaypointConfig config;
  config.min_speed_mps = 10.0;
  config.max_speed_mps = 30.0;
  RandomWaypointMobility m(config, Rng(13));
  Position prev = m.At(0);
  for (double t = 1.0; t < 300.0; t += 1.0) {
    const Position p = m.At(FromSeconds(t));
    const double speed = std::hypot(p.x - prev.x, p.y - prev.y);
    EXPECT_LE(speed, 30.0 * 1.42 + 1e-6);  // diagonal waypoint switches
    prev = p;
  }
}

TEST(Mobility, RandomPlacementInSquare) {
  Rng rng(14);
  for (int i = 0; i < 100; ++i) {
    const Position p = RandomPositionInSquare(2000.0, rng);
    EXPECT_GE(p.x, -1000.0);
    EXPECT_LE(p.x, 1000.0);
    EXPECT_GE(p.y, -1000.0);
    EXPECT_LE(p.y, 1000.0);
  }
}

}  // namespace
}  // namespace flare
