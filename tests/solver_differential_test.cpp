// Differential test harness for the three concave-envelope sweep solvers:
//
//     BatchSolver (SoA)  ==  SolveSweep (cold)  ==  IncrementalSolver
//
// A seeded random OptProblem generator covers the shapes that historically
// break solver rewrites — empty problems, single flows, duplicated flows
// (exactly tied rho step keys), near-equal-utility rung ladders, pinned
// GBR-style level boxes, zero-capacity cells and infeasible floor mixes —
// and every result is byte-compared through one canonical serialization
// (hexfloat, so a single ULP of drift in any rate, fraction or objective
// is a string diff), the same byte-compare discipline determinism_test
// applies to run artifacts. This suite is the license for any future
// data-layout or vectorization change to the batch path: if the bytes
// still match, the rewrite is exact.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/batch_solver.h"
#include "core/optimizer.h"
#include "util/rng.h"

namespace flare {
namespace {

// One canonical byte representation of an OptResult. Hexfloat round-trips
// doubles exactly, so string equality == bitwise equality of every field.
std::string CanonicalBytes(const OptResult& r) {
  std::ostringstream out;
  out << "feasible=" << (r.feasible ? 1 : 0) << "\nlevels=";
  for (int level : r.levels) out << level << ",";
  out << std::hexfloat;
  out << "\nrates=";
  for (double rate : r.rates_bps) out << rate << ",";
  out << "\nvideo_fraction=" << r.video_fraction;
  out << "\nobjective=" << r.objective << "\n";
  return out.str();
}

OptFlow RandomFlow(Rng& rng) {
  OptFlow f;
  switch (rng.UniformInt(0, 2)) {
    case 0:  // testbed ladder
      for (double kbps : {200, 310, 450, 790, 1100, 1320, 2280, 2750}) {
        f.ladder_bps.push_back(kbps * 1000.0);
      }
      break;
    case 1: {  // geometric ladder, random shape
      const int rungs = static_cast<int>(rng.UniformInt(1, 12));
      double rate = rng.Uniform(50e3, 400e3);
      const double ratio = rng.Uniform(1.15, 1.8);
      for (int l = 0; l < rungs; ++l) {
        f.ladder_bps.push_back(rate);
        rate *= ratio;
      }
      break;
    }
    default: {  // tightly packed rungs: near-equal utility per step, so
                // dutil/dcost is tiny and hull pops are frequent
      const int rungs = static_cast<int>(rng.UniformInt(2, 10));
      double rate = rng.Uniform(200e3, 2e6);
      for (int l = 0; l < rungs; ++l) {
        f.ladder_bps.push_back(rate);
        rate += rng.Uniform(100.0, 2000.0);
      }
      break;
    }
  }
  const int top = static_cast<int>(f.ladder_bps.size()) - 1;
  f.bits_per_rb = rng.Uniform(16.0, 712.0);
  if (rng.UniformInt(0, 3) == 0) {
    // Level box: GBR-style floor and/or cap, occasionally pinned.
    f.min_level = static_cast<int>(rng.UniformInt(0, top));
    f.max_level = static_cast<int>(rng.UniformInt(f.min_level, top));
  } else {
    f.min_level = 0;
    f.max_level = top;
  }
  if (rng.UniformInt(0, 1) == 0) {
    f.utility.beta = rng.Uniform(1.0, 20.0);
    f.utility.theta_bps = rng.Uniform(0.05e6, 1.0e6);
  }
  return f;
}

/// Seeded generator over the degenerate-shape corpus. `n_flows` fixes the
/// population; everything else (ladders, boxes, ties, capacity regime,
/// data mix) is drawn from `rng`.
OptProblem RandomProblem(Rng& rng, int n_flows) {
  OptProblem p;
  p.n_data_flows = static_cast<int>(rng.UniformInt(0, 8));
  p.alpha = rng.Uniform(0.25, 4.0);
  switch (rng.UniformInt(0, 3)) {
    case 0:
      p.max_video_fraction = 1.0;
      break;
    case 1:
      p.max_video_fraction = rng.Uniform(0.3, 0.9);
      break;
    default:
      p.max_video_fraction = 0.999;
      break;
  }
  for (int i = 0; i < n_flows; ++i) {
    if (i > 0 && rng.UniformInt(0, 3) == 0) {
      // Verbatim duplicate of an earlier flow: every envelope step of the
      // pair carries an exactly tied rho, so only the (flow, to_level)
      // tie-break orders the sweep.
      p.flows.push_back(
          p.flows[static_cast<std::size_t>(rng.UniformInt(0, i - 1))]);
    } else {
      p.flows.push_back(RandomFlow(rng));
    }
  }
  // Capacity regime relative to the floor cost: ample, binding, infeasible
  // or an (almost) zero-capacity cell.
  double floor_cost = 0.0;
  double top_cost = 0.0;
  for (const OptFlow& f : p.flows) {
    floor_cost +=
        f.ladder_bps[static_cast<std::size_t>(f.min_level)] / f.bits_per_rb;
    top_cost +=
        f.ladder_bps[static_cast<std::size_t>(f.max_level)] / f.bits_per_rb;
  }
  switch (rng.UniformInt(0, 3)) {
    case 0:
      p.rb_rate = std::max(top_cost * rng.Uniform(1.2, 3.0), 1.0);
      break;
    case 1:
      p.rb_rate = std::max(floor_cost * rng.Uniform(1.01, 2.0), 1.0);
      break;
    case 2:
      p.rb_rate = std::max(floor_cost * rng.Uniform(0.2, 0.99), 1e-3);
      break;
    default:
      p.rb_rate = 1e-3;  // zero-capacity cell (rb_rate must stay > 0)
      break;
  }
  return p;
}

/// IncrementalSolver replay of a cold problem: flows keyed 1..n as
/// SolveSweep keys them, but Upserted in a shuffled order — the warm
/// solver's contract is that insertion history never shows in the result.
OptResult IncrementalReplay(const OptProblem& p, Rng& rng) {
  IncrementalSolver solver;
  std::vector<FlowId> order;
  order.reserve(p.flows.size());
  for (std::size_t u = 0; u < p.flows.size(); ++u) {
    order.push_back(static_cast<FlowId>(u + 1));
  }
  std::vector<FlowId> insertion = order;
  for (std::size_t i = insertion.size(); i > 1; --i) {
    std::swap(insertion[i - 1],
              insertion[static_cast<std::size_t>(
                  rng.UniformInt(0, static_cast<std::int64_t>(i) - 1))]);
  }
  for (const FlowId id : insertion) {
    solver.Upsert(id, p.flows[static_cast<std::size_t>(id - 1)]);
  }
  return solver.Solve(order, p.n_data_flows, p.rb_rate, p.alpha,
                      p.max_video_fraction);
}

int SizeForCase(int index) {
  if (index % 50 == 49) return 500;
  constexpr int kSizes[] = {0, 1, 2, 3, 5, 8, 16, 64};
  return kSizes[index % (sizeof(kSizes) / sizeof(kSizes[0]))];
}

// --- The differential corpus: >= 1000 seeded problems across the shape
// matrix, every one byte-compared across all three solvers.
TEST(SolverDifferential, CorpusIsBitExactAcrossAllThreeSolvers) {
  BatchSolver batch;  // one instance: scratch reuse is inside the contract
  int feasible_count = 0;
  int infeasible_count = 0;
  int empty_count = 0;
  constexpr int kCases = 1000;
  for (int c = 0; c < kCases; ++c) {
    Rng rng(0xD1FF0000ULL + static_cast<std::uint64_t>(c));
    const OptProblem p = RandomProblem(rng, SizeForCase(c));
    const OptResult cold = SolveSweep(p);
    const std::string cold_bytes = CanonicalBytes(cold);
    EXPECT_EQ(CanonicalBytes(batch.Solve(p)), cold_bytes) << "case " << c;
    EXPECT_EQ(CanonicalBytes(IncrementalReplay(p, rng)), cold_bytes)
        << "case " << c;
    if (cold.feasible) {
      ++feasible_count;
    } else {
      ++infeasible_count;
    }
    if (p.flows.empty()) ++empty_count;
  }
  // The corpus genuinely covered both capacity regimes and the empty shape
  // (a generator regression would silently hollow the suite out).
  EXPECT_GT(feasible_count, kCases / 4);
  EXPECT_GT(infeasible_count, kCases / 10);
  EXPECT_GT(empty_count, 0);
}

TEST(SolverDifferential, FiveThousandFlowProblemIsBitExact) {
  Rng rng(0x5000);
  const OptProblem p = RandomProblem(rng, 5000);
  BatchSolver batch;
  const std::string cold_bytes = CanonicalBytes(SolveSweep(p));
  EXPECT_EQ(CanonicalBytes(batch.Solve(p)), cold_bytes);
  EXPECT_EQ(CanonicalBytes(IncrementalReplay(p, rng)), cold_bytes);
}

// Warm-path differential: after an Upsert delta and its exact revert, the
// warm solver must land back on the cold bytes (the churn-path contract
// the batch solver is benchmarked against).
TEST(SolverDifferential, WarmPerturbAndRevertMatchesBatch) {
  BatchSolver batch;
  for (int c = 0; c < 100; ++c) {
    Rng rng(0x3A23 + static_cast<std::uint64_t>(c));
    const int n_flows = 1 + static_cast<int>(rng.UniformInt(0, 63));
    const OptProblem p = RandomProblem(rng, n_flows);
    const std::string cold_bytes = CanonicalBytes(batch.Solve(p));

    IncrementalSolver solver;
    std::vector<FlowId> order;
    for (std::size_t u = 0; u < p.flows.size(); ++u) {
      const FlowId id = static_cast<FlowId>(u + 1);
      solver.Upsert(id, p.flows[u]);
      order.push_back(id);
    }
    EXPECT_EQ(CanonicalBytes(solver.Solve(order, p.n_data_flows, p.rb_rate,
                                          p.alpha, p.max_video_fraction)),
              cold_bytes)
        << "case " << c;
    const std::size_t victim =
        static_cast<std::size_t>(rng.UniformInt(0, n_flows - 1));
    OptFlow perturbed = p.flows[victim];
    perturbed.bits_per_rb = rng.Uniform(16.0, 712.0);
    solver.Upsert(order[victim], perturbed);
    solver.Solve(order, p.n_data_flows, p.rb_rate, p.alpha,
                 p.max_video_fraction);
    solver.Upsert(order[victim], p.flows[victim]);  // exact revert
    EXPECT_EQ(CanonicalBytes(solver.Solve(order, p.n_data_flows, p.rb_rate,
                                          p.alpha, p.max_video_fraction)),
              cold_bytes)
        << "case " << c;
  }
}

// --- SolveMany: the batched multi-cell API is defined as exactly N
// independent solves, bit for bit, scratch reuse and size mixing included.
TEST(SolverBatchApi, SolveManyMatchesIndependentSolves) {
  std::vector<OptProblem> cells;
  for (int c = 0; c < 64; ++c) {
    Rng rng(0xCE11 + static_cast<std::uint64_t>(c));
    cells.push_back(RandomProblem(rng, SizeForCase(c)));
  }
  BatchSolver batched;
  const std::vector<OptResult> many = batched.SolveMany(cells);
  ASSERT_EQ(many.size(), cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    BatchSolver fresh;
    EXPECT_EQ(CanonicalBytes(many[c]),
              CanonicalBytes(fresh.Solve(cells[c])))
        << "cell " << c;
  }
}

TEST(SolverBatchApi, ScratchSurvivesShrinkingAndGrowingProblems) {
  // Big -> small -> big on one solver: stale scratch from a larger solve
  // must never leak into a smaller one (and vice versa).
  Rng rng(0x51Ce);
  const OptProblem big = RandomProblem(rng, 500);
  const OptProblem small = RandomProblem(rng, 2);
  BatchSolver reused;
  reused.Solve(big);
  EXPECT_EQ(CanonicalBytes(reused.Solve(small)),
            CanonicalBytes(SolveSweep(small)));
  EXPECT_EQ(CanonicalBytes(reused.Solve(big)),
            CanonicalBytes(SolveSweep(big)));
}

// --- Solver invariants on randomized problems.
TEST(SolverInvariants, CapacityLevelBoxAndLadderMembership) {
  BatchSolver batch;
  for (int c = 0; c < 300; ++c) {
    Rng rng(0x1AB5 + static_cast<std::uint64_t>(c));
    const OptProblem p = RandomProblem(rng, SizeForCase(c));
    const OptResult r = batch.Solve(p);
    ASSERT_EQ(r.levels.size(), p.flows.size());
    ASSERT_EQ(r.rates_bps.size(), p.flows.size());
    for (std::size_t u = 0; u < p.flows.size(); ++u) {
      const OptFlow& f = p.flows[u];
      // Every per-flow result sits on its own rung ladder, inside its box.
      EXPECT_GE(r.levels[u], f.min_level) << "case " << c << " flow " << u;
      EXPECT_LE(r.levels[u], f.max_level) << "case " << c << " flow " << u;
      EXPECT_EQ(r.rates_bps[u],
                f.ladder_bps[static_cast<std::size_t>(r.levels[u])])
          << "case " << c << " flow " << u;
      if (!r.feasible) {
        EXPECT_EQ(r.levels[u], f.min_level)
            << "infeasible case " << c << " flow " << u;
      }
    }
    if (r.feasible) {
      // Total allocation within capacity (tolerance: the sweep tracks cost
      // via envelope deltas; the recomputation here re-sums from scratch).
      const double budget = p.rb_rate * p.max_video_fraction;
      EXPECT_LE(RbRateCost(p, r.rates_bps),
                budget * (1.0 + 1e-9) + 1e-9)
          << "case " << c;
    }
  }
}

TEST(SolverInvariants, ObjectiveMonotoneInCapacity) {
  BatchSolver batch;
  for (int c = 0; c < 200; ++c) {
    Rng rng(0xCAB0 + static_cast<std::uint64_t>(c));
    OptProblem p = RandomProblem(rng, 1 + static_cast<int>(
                                           rng.UniformInt(0, 31)));
    double previous_objective = 0.0;
    bool have_previous = false;
    for (const double scale : {1.0, 1.5, 2.5, 6.0}) {
      OptProblem scaled = p;
      scaled.rb_rate = p.rb_rate * scale;
      const OptResult r = batch.Solve(scaled);
      if (!r.feasible) continue;  // floor still over budget at this scale
      if (have_previous) {
        EXPECT_GE(r.objective,
                  previous_objective -
                      1e-9 * std::max(1.0, std::abs(previous_objective)))
            << "case " << c << " scale " << scale;
      }
      previous_objective = r.objective;
      have_previous = true;
    }
  }
}

// --- ValidateProblem edge-case audit: empty, single-flow and
// duplicate-rho inputs must produce defined, identical results in all
// three sweep solvers (optimizer_test.cpp pins only the cold sweep's
// cousins); these are the regression pins for the shapes that disagree
// first when a rewrite cuts corners.
OptProblem TestbedLikeProblem(int n_flows, int n_data, double rb_rate) {
  OptProblem p;
  p.n_data_flows = n_data;
  p.rb_rate = rb_rate;
  for (int i = 0; i < n_flows; ++i) {
    OptFlow f;
    for (double kbps : {200, 310, 450, 790, 1100, 1320, 2280, 2750}) {
      f.ladder_bps.push_back(kbps * 1000.0);
    }
    f.max_level = static_cast<int>(f.ladder_bps.size()) - 1;
    f.bits_per_rb = 104.0;
    p.flows.push_back(std::move(f));
  }
  return p;
}

TEST(SolverEdgeCases, EmptyProblemIsDefinedInAllSolvers) {
  const OptProblem p = TestbedLikeProblem(0, 3, 50'000.0);
  BatchSolver batch;
  Rng rng(1);
  for (const OptResult& r :
       {SolveSweep(p), batch.Solve(p), IncrementalReplay(p, rng)}) {
    EXPECT_TRUE(r.feasible);
    EXPECT_TRUE(r.levels.empty());
    EXPECT_TRUE(r.rates_bps.empty());
    EXPECT_DOUBLE_EQ(r.video_fraction, 0.0);
    EXPECT_DOUBLE_EQ(r.objective, 0.0);  // n*alpha*log(1 - 0)
  }
  // The greedy reference solver agrees on the empty shape too.
  const OptResult greedy = SolveGreedy(p);
  EXPECT_TRUE(greedy.feasible);
  EXPECT_TRUE(greedy.levels.empty());
  EXPECT_DOUBLE_EQ(greedy.objective, 0.0);
}

TEST(SolverEdgeCases, SingleFlowAmpleCapacityTakesTopRung) {
  const OptProblem p = TestbedLikeProblem(1, 0, 1e9);
  BatchSolver batch;
  Rng rng(2);
  const std::string bytes = CanonicalBytes(SolveSweep(p));
  EXPECT_EQ(CanonicalBytes(batch.Solve(p)), bytes);
  EXPECT_EQ(CanonicalBytes(IncrementalReplay(p, rng)), bytes);
  const OptResult r = batch.Solve(p);
  ASSERT_EQ(r.levels.size(), 1u);
  EXPECT_EQ(r.levels[0], 7);
  EXPECT_EQ(r.levels, SolveGreedy(p).levels);
}

TEST(SolverEdgeCases, DuplicateRhoTieBreaksByFlowIndex) {
  // Two identical flows, capacity for exactly one first upgrade
  // (200 -> 310 kbps costs (310-200)*1000/104 ≈ 1058 RB/s): the strict
  // step order (rho desc, flow asc, to_level asc) must hand it to flow 0
  // in every solver, every time.
  OptProblem p = TestbedLikeProblem(2, 0, 0.0);
  const double floor_cost = 2.0 * 200e3 / 104.0;
  const double upgrade_cost = (310e3 - 200e3) / 104.0;
  p.rb_rate = (floor_cost + upgrade_cost * 1.5) / p.max_video_fraction;
  BatchSolver batch;
  Rng rng(3);
  const OptResult cold = SolveSweep(p);
  ASSERT_EQ(cold.levels.size(), 2u);
  EXPECT_EQ(cold.levels[0], 1);
  EXPECT_EQ(cold.levels[1], 0);
  const std::string bytes = CanonicalBytes(cold);
  EXPECT_EQ(CanonicalBytes(batch.Solve(p)), bytes);
  EXPECT_EQ(CanonicalBytes(IncrementalReplay(p, rng)), bytes);
}

TEST(SolverEdgeCases, ZeroCapacityCellIsInfeasibleFloorEverywhere) {
  const OptProblem p = TestbedLikeProblem(4, 2, 1e-3);
  BatchSolver batch;
  Rng rng(4);
  const OptResult cold = SolveSweep(p);
  EXPECT_FALSE(cold.feasible);
  for (int level : cold.levels) EXPECT_EQ(level, 0);
  const std::string bytes = CanonicalBytes(cold);
  EXPECT_EQ(CanonicalBytes(batch.Solve(p)), bytes);
  EXPECT_EQ(CanonicalBytes(IncrementalReplay(p, rng)), bytes);
}

TEST(SolverEdgeCases, BatchSolverValidatesLikeSolveSweep) {
  BatchSolver batch;
  OptProblem p = TestbedLikeProblem(1, 0, 50'000.0);
  p.rb_rate = 0.0;
  EXPECT_THROW(batch.Solve(p), std::invalid_argument);
  p = TestbedLikeProblem(1, 0, 50'000.0);
  p.flows[0].ladder_bps = {2e5, 1e5};  // descending
  EXPECT_THROW(batch.Solve(p), std::invalid_argument);
  p = TestbedLikeProblem(1, 0, 50'000.0);
  p.max_video_fraction = 0.0;
  EXPECT_THROW(batch.Solve(p), std::invalid_argument);
}

}  // namespace
}  // namespace flare
