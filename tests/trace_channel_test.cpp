// Tests for trace recording and playback channels.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "lte/trace_channel.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace flare {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(TraceChannel, StepFunctionSemantics) {
  TraceFileChannel channel({{0.0, 3}, {10.0, 7}, {20.0, 5}});
  EXPECT_EQ(channel.ItbsAt(FromSeconds(0.0)), 3);
  EXPECT_EQ(channel.ItbsAt(FromSeconds(9.99)), 3);
  EXPECT_EQ(channel.ItbsAt(FromSeconds(10.0)), 7);
  EXPECT_EQ(channel.ItbsAt(FromSeconds(19.0)), 7);
  EXPECT_EQ(channel.ItbsAt(FromSeconds(25.0)), 5);
  EXPECT_EQ(channel.ItbsAt(FromSeconds(9999.0)), 5);  // holds forever
}

TEST(TraceChannel, LoopRepeatsWithTracePeriod) {
  TraceFileChannel channel({{0.0, 3}, {10.0, 7}, {20.0, 5}},
                           /*loop=*/true);
  // Period = 20 s: t = 25 wraps to t = 5.
  EXPECT_EQ(channel.ItbsAt(FromSeconds(25.0)), 3);
  EXPECT_EQ(channel.ItbsAt(FromSeconds(35.0)), 7);
  EXPECT_EQ(channel.ItbsAt(FromSeconds(45.0)), 3);
}

TEST(TraceChannel, FirstValueAppliesBeforeTraceStart) {
  TraceFileChannel channel({{5.0, 9}, {10.0, 2}});
  EXPECT_EQ(channel.ItbsAt(FromSeconds(1.0)), 9);
}

TEST(TraceChannel, EmptyTraceRejected) {
  EXPECT_THROW(TraceFileChannel({}), std::invalid_argument);
}

TEST(TraceChannel, SaveLoadRoundTrip) {
  const std::string path = TempPath("flare_trace_roundtrip.csv");
  const ItbsTrace original{{0.0, 1}, {2.5, 12}, {7.75, 4}};
  ASSERT_TRUE(SaveItbsTrace(path, original));
  const auto loaded = LoadItbsTrace(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_DOUBLE_EQ((*loaded)[i].first, original[i].first);
    EXPECT_EQ((*loaded)[i].second, original[i].second);
  }
  std::remove(path.c_str());
}

TEST(TraceChannel, LoadRejectsMalformedFiles) {
  const std::string path = TempPath("flare_trace_bad.csv");
  const auto write = [&](const char* content) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs(content, f);
    std::fclose(f);
  };
  write("");  // empty
  EXPECT_FALSE(LoadItbsTrace(path).has_value());
  write("t_s,itbs\n");  // header only
  EXPECT_FALSE(LoadItbsTrace(path).has_value());
  write("abc,3\n");
  EXPECT_FALSE(LoadItbsTrace(path).has_value());
  write("1.0,xyz\n");
  EXPECT_FALSE(LoadItbsTrace(path).has_value());
  write("1.0\n");  // missing column
  EXPECT_FALSE(LoadItbsTrace(path).has_value());
  write("5.0,3\n1.0,4\n");  // non-increasing time
  EXPECT_FALSE(LoadItbsTrace(path).has_value());
  EXPECT_FALSE(LoadItbsTrace("/nonexistent/dir/nope.csv").has_value());
  std::remove(path.c_str());
}

TEST(TraceChannel, RecorderCapturesSourceFaithfully) {
  Simulator sim;
  const auto schedule = TriangleItbsSchedule(1, 12, FromSeconds(40.0), 0);
  ItbsOverrideChannel source(schedule);
  ChannelRecorder recorder(sim, source, FromSeconds(1.0));
  recorder.Start();
  sim.RunUntil(FromSeconds(40.0));
  ASSERT_EQ(recorder.trace().size(), 41u);

  // Playback reproduces the source at the sample instants.
  TraceFileChannel playback(recorder.trace());
  ItbsOverrideChannel reference(schedule);
  for (double t = 0.0; t <= 40.0; t += 1.0) {
    EXPECT_EQ(playback.ItbsAt(FromSeconds(t)),
              reference.ItbsAt(FromSeconds(t)))
        << "t=" << t;
  }
}

TEST(TraceChannel, RecordSaveLoadPlayback) {
  // Full workflow: record a fading channel, persist, reload, replay.
  Simulator sim;
  RadioConfig radio;
  FadedMobilityChannel source(
      std::make_shared<StaticMobility>(Position{700.0, 0.0}), radio,
      Rng(9));
  ChannelRecorder recorder(sim, source, FromSeconds(0.5));
  recorder.Start();
  sim.RunUntil(FromSeconds(30.0));

  const std::string path = TempPath("flare_trace_workflow.csv");
  ASSERT_TRUE(recorder.Save(path));
  const auto loaded = LoadItbsTrace(path);
  ASSERT_TRUE(loaded.has_value());
  TraceFileChannel playback(*loaded);
  for (const auto& [t, itbs] : recorder.trace()) {
    EXPECT_EQ(playback.ItbsAt(FromSeconds(t)), itbs);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace flare
