// Tests for the ABR baselines: FESTIVE, GOOGLE and the AVIS client +
// gateway.
#include <gtest/gtest.h>

#include "abr/avis.h"
#include "abr/festive.h"
#include "abr/google.h"
#include "has/mpd.h"
#include "lte/cell.h"
#include "lte/pss_scheduler.h"
#include "sim/simulator.h"

namespace flare {
namespace {

Mpd TestMpd() { return MakeMpd(SimulationLadderKbps(), 10.0); }

AbrContext Ctx(const Mpd& mpd, std::vector<double> history,
               int last_index = -1, double buffer_s = 20.0) {
  AbrContext c;
  c.mpd = &mpd;
  c.throughput_history_bps = std::move(history);
  c.last_index = last_index;
  c.buffer_s = buffer_s;
  return c;
}

void Complete(AbrAlgorithm& abr, const Mpd& mpd, int chosen,
              double throughput_bps) {
  AbrContext c;
  c.mpd = &mpd;
  c.last_index = chosen;
  c.throughput_history_bps = {throughput_bps};
  abr.OnSegmentComplete(c, throughput_bps);
}

// ------------------------------ GOOGLE -----------------------------------

TEST(Google, StartsAtLowestWithoutHistory) {
  const Mpd mpd = TestMpd();
  GoogleAbr abr;
  EXPECT_EQ(abr.NextRepresentation(Ctx(mpd, {})), 0);
}

TEST(Google, Selects85PercentOfMinEstimate) {
  const Mpd mpd = TestMpd();
  GoogleAbr abr;
  // Long mean = short mean = 1.3 Mbit/s: usable 1.105 -> 1000 Kbps rung.
  EXPECT_EQ(abr.NextRepresentation(Ctx(mpd, {1.3e6, 1.3e6, 1.3e6})), 3);
  // 0.85 * 1.1 Mbit/s = 935 Kbit/s -> 500 Kbps rung.
  EXPECT_EQ(abr.NextRepresentation(Ctx(mpd, {1.1e6, 1.1e6, 1.1e6})), 2);
}

TEST(Google, ShortWindowDragsEstimateDown) {
  const Mpd mpd = TestMpd();
  GoogleAbrConfig config;
  config.long_window = 10;
  config.short_window = 3;
  GoogleAbr abr(config);
  // History mostly high but the last 3 samples collapsed.
  std::vector<double> history(7, 3.0e6);
  history.insert(history.end(), {0.3e6, 0.3e6, 0.3e6});
  // min(b_long, b_short) = b_short = 0.3 -> 0.255 usable -> 250 Kbps rung.
  EXPECT_EQ(abr.NextRepresentation(Ctx(mpd, history)), 1);
}

TEST(Google, DefaultWindowsReactSlowerThanBuffer) {
  // The demo player's estimator memory exceeds its 15 s request buffer —
  // the property behind its rebuffering in the paper's testbed.
  const GoogleAbrConfig config;
  EXPECT_GE(config.short_window, 8);
  EXPECT_GT(config.long_window, config.short_window);
}

TEST(Google, ChasesPeaksAggressively) {
  const Mpd mpd = TestMpd();
  GoogleAbr abr;
  // A short burst lifts both windows -> jumps straight to the top rung
  // (no gradual switching): this is the paper's overshooting behaviour.
  // 0.85 * 3.8 = 3.23 Mbit/s >= 3000 Kbps.
  EXPECT_EQ(abr.NextRepresentation(Ctx(mpd, {3.8e6, 3.8e6, 3.8e6}, 0)), 5);
}

// ------------------------------ FESTIVE ----------------------------------

TEST(Festive, StartsAtLowestRung) {
  FestiveAbr abr(FestiveConfig{}, Rng(1));
  const Mpd mpd = TestMpd();
  EXPECT_EQ(abr.NextRepresentation(Ctx(mpd, {})), 0);
}

TEST(Festive, HarmonicMeanEstimator) {
  FestiveAbr abr(FestiveConfig{}, Rng(1));
  const Mpd mpd = TestMpd();
  Complete(abr, mpd, 0, 1.0e6);
  Complete(abr, mpd, 0, 2.0e6);
  Complete(abr, mpd, 0, 4.0e6);
  EXPECT_NEAR(abr.BandwidthEstimate(), 12.0e6 / 7.0, 1.0);
}

TEST(Festive, UpSwitchesGraduallyWithPatience) {
  FestiveConfig config;
  config.k = 2;
  FestiveAbr abr(config, Rng(1));
  const Mpd mpd = TestMpd();
  // Huge bandwidth, but FESTIVE may only climb one rung after k*(L+1)
  // segments at the current rung.
  int level = 0;
  std::vector<int> history;
  for (int seg = 0; seg < 60; ++seg) {
    const int next =
        abr.NextRepresentation(Ctx(mpd, {4e6, 4e6}, level));
    EXPECT_LE(next - level, 1) << "jumped more than one rung";
    level = next;
    history.push_back(level);
    Complete(abr, mpd, level, 4.0e6);
  }
  EXPECT_EQ(level, 5);  // p * 4 Mbit/s = 3.4 >= 3000: top rung reachable
  EXPECT_EQ(history.front(), 0);
}

TEST(Festive, DropsWhenEstimateCollapses) {
  FestiveConfig config;
  config.k = 1;
  FestiveAbr abr(config, Rng(2));
  const Mpd mpd = TestMpd();
  int level = 0;
  for (int seg = 0; seg < 40; ++seg) {
    level = abr.NextRepresentation(Ctx(mpd, {3e6}, level));
    Complete(abr, mpd, level, 3.0e6);
  }
  const int high = level;
  EXPECT_GE(high, 3);
  // Bandwidth collapses; the estimator (harmonic, window 5) follows.
  for (int seg = 0; seg < 10; ++seg) {
    const int next = abr.NextRepresentation(Ctx(mpd, {0.2e6}, level));
    EXPECT_GE(level - next, 0);
    EXPECT_LE(level - next, 1);  // gradual down too
    level = next;
    Complete(abr, mpd, level, 0.2e6);
  }
  EXPECT_LT(level, high);
}

TEST(Festive, DelayedUpdateResistsMarginalSwitches) {
  // Estimate sits barely above the next rung: efficiency gain is tiny, so
  // the stability term should veto the switch.
  FestiveConfig config;
  config.k = 1;
  config.alpha = 12.0;
  FestiveAbr abr(config, Rng(3));
  const Mpd mpd = TestMpd();
  // Train at rung 2 (500 Kbps) with estimate 0.62 Mbit/s: candidate rung
  // 500; p*w = 0.53 ~ rung 2 itself. Switching up to 1000 would be
  // inefficient; FESTIVE must hold.
  int level = 2;
  for (int seg = 0; seg < 20; ++seg) {
    Complete(abr, mpd, level, 0.62e6);
    const int next = abr.NextRepresentation(Ctx(mpd, {0.62e6}, level));
    EXPECT_EQ(next, 2);
    level = next;
  }
}

TEST(Festive, RandomizedSchedulingOnlyWhenBufferHealthy) {
  FestiveAbr abr(FestiveConfig{}, Rng(4));
  const Mpd mpd = TestMpd();
  EXPECT_EQ(abr.RequestDelay(Ctx(mpd, {}, 0, /*buffer_s=*/5.0)), 0);
  bool saw_positive = false;
  for (int i = 0; i < 10; ++i) {
    if (abr.RequestDelay(Ctx(mpd, {}, 0, /*buffer_s=*/30.0)) > 0) {
      saw_positive = true;
    }
  }
  EXPECT_TRUE(saw_positive);
}

TEST(Festive, RequestDelayBounded) {
  FestiveAbr abr(FestiveConfig{}, Rng(5));
  const Mpd mpd = TestMpd();
  for (int i = 0; i < 100; ++i) {
    const SimTime d = abr.RequestDelay(Ctx(mpd, {}, 0, 30.0));
    EXPECT_GE(d, 0);
    EXPECT_LE(d, FromSeconds(0.5 * mpd.segment_duration_s));
  }
}

// ------------------------------ AVIS -------------------------------------

TEST(AvisClient, GreedyHighestBelowEstimate) {
  const Mpd mpd = TestMpd();
  AvisClientAbr abr;
  EXPECT_EQ(abr.NextRepresentation(Ctx(mpd, {})), 0);
  EXPECT_EQ(abr.NextRepresentation(Ctx(mpd, {2.2e6, 2.2e6, 2.2e6})), 4);
  // No safety factor: 1.05 Mbit/s estimate -> requests the 1000 rung.
  EXPECT_EQ(abr.NextRepresentation(Ctx(mpd, {1.05e6})), 3);
}

struct GatewayNet {
  Simulator sim;
  Cell cell;
  GatewayNet()
      : cell(sim, std::make_unique<PssScheduler>(), CellConfig{}, Rng(1)) {}
};

TEST(AvisGateway, AssignsLadderRatesAndSetsGbr) {
  GatewayNet net;
  const UeId ue = net.cell.AddUe(std::make_unique<StaticItbsChannel>(7));
  const FlowId flow = net.cell.AddFlow(ue, FlowType::kVideo);
  const Mpd mpd = TestMpd();

  AvisConfig config;
  AvisGateway gateway(net.sim, net.cell, config);
  gateway.RegisterVideoFlow(flow, &mpd);
  gateway.RunEpoch();

  // 5.2 Mbit/s full-cell rate, one flow, 70% slice = 3.64 -> 3000 rung.
  EXPECT_DOUBLE_EQ(gateway.AssignedRate(flow), 3.0e6);
  EXPECT_DOUBLE_EQ(net.cell.flow(flow).gbr_bps, 3.0e6);
  EXPECT_NEAR(net.cell.flow(flow).mbr_bps, 3.0e6 * config.mbr_headroom,
              1.0);
}

TEST(AvisGateway, SharesVideoSliceAcrossFlows) {
  GatewayNet net;
  const Mpd mpd = TestMpd();
  AvisConfig config;
  AvisGateway gateway(net.sim, net.cell, config);
  std::vector<FlowId> flows;
  for (int i = 0; i < 4; ++i) {
    const UeId ue = net.cell.AddUe(std::make_unique<StaticItbsChannel>(7));
    const FlowId f = net.cell.AddFlow(ue, FlowType::kVideo);
    gateway.RegisterVideoFlow(f, &mpd);
    flows.push_back(f);
  }
  gateway.RunEpoch();
  // 0.7 * 5.2 / 4 = 0.91 Mbit/s -> 500 rung each.
  for (FlowId f : flows) {
    EXPECT_DOUBLE_EQ(gateway.AssignedRate(f), 0.5e6);
  }
}

TEST(AvisGateway, PerTtiAlphaTracksChannelAcrossEpochs) {
  // Table IV's alpha = 0.01 is a per-TTI weight: compounded over a 150-TTI
  // epoch the estimate follows the channel almost immediately, which is
  // what makes AVIS's assignment flap across rung boundaries.
  GatewayNet net;
  const Mpd mpd = TestMpd();
  AvisConfig config;
  config.alpha = 0.01;
  AvisGateway gateway(net.sim, net.cell, config);
  const auto schedule = TriangleItbsSchedule(1, 12, FromSeconds(240), 0);
  const UeId ue =
      net.cell.AddUe(std::make_unique<ItbsOverrideChannel>(schedule));
  const FlowId flow = net.cell.AddFlow(ue, FlowType::kVideo);
  gateway.RegisterVideoFlow(flow, &mpd);

  gateway.RunEpoch();
  const double initial = gateway.AssignedRate(flow);
  net.cell.Start();
  net.sim.RunUntil(FromSeconds(120.0));  // channel now at the peak
  gateway.RunEpoch();
  gateway.RunEpoch();
  EXPECT_GT(gateway.AssignedRate(flow), initial);
}

TEST(AvisGateway, StaticPartitionCapsDataFlows) {
  GatewayNet net;
  const Mpd mpd = TestMpd();
  AvisConfig config;
  config.video_rb_fraction = 0.7;
  AvisGateway gateway(net.sim, net.cell, config);
  const UeId ue1 = net.cell.AddUe(std::make_unique<StaticItbsChannel>(7));
  const UeId ue2 = net.cell.AddUe(std::make_unique<StaticItbsChannel>(7));
  const FlowId video = net.cell.AddFlow(ue1, FlowType::kVideo);
  const FlowId data = net.cell.AddFlow(ue2, FlowType::kData);
  gateway.RegisterVideoFlow(video, &mpd);
  gateway.RegisterDataFlow(data);
  gateway.RunEpoch();
  // Data slice: 30% of 5.2 Mbit/s for one flow.
  EXPECT_NEAR(net.cell.flow(data).mbr_bps, 0.3 * 5.2e6, 1e3);
  // The cap persists even if the video flow goes idle — the static
  // partition the FLARE paper criticizes.
  gateway.RunEpoch();
  EXPECT_NEAR(net.cell.flow(data).mbr_bps, 0.3 * 5.2e6, 1e3);
}

TEST(AvisGateway, DeregisterStopsManagement) {
  GatewayNet net;
  const Mpd mpd = TestMpd();
  AvisGateway gateway(net.sim, net.cell, AvisConfig{});
  const UeId ue = net.cell.AddUe(std::make_unique<StaticItbsChannel>(7));
  const FlowId flow = net.cell.AddFlow(ue, FlowType::kVideo);
  gateway.RegisterVideoFlow(flow, &mpd);
  gateway.Deregister(flow);
  gateway.RunEpoch();
  EXPECT_DOUBLE_EQ(gateway.AssignedRate(flow), 0.0);
  EXPECT_DOUBLE_EQ(net.cell.flow(flow).gbr_bps, 0.0);
}

TEST(AvisGateway, SurvivesRemovedCellFlows) {
  GatewayNet net;
  const Mpd mpd = TestMpd();
  AvisGateway gateway(net.sim, net.cell, AvisConfig{});
  const UeId ue = net.cell.AddUe(std::make_unique<StaticItbsChannel>(7));
  const FlowId flow = net.cell.AddFlow(ue, FlowType::kVideo);
  gateway.RegisterVideoFlow(flow, &mpd);
  net.cell.RemoveFlow(flow);
  EXPECT_NO_THROW(gateway.RunEpoch());
}

}  // namespace
}  // namespace flare
