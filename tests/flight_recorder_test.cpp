// Black-box flight recorder: ring semantics, watchdog-latched snapshots,
// post-mortem dumps, and the shard-merge determinism contract.
#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>

#include "obs/watchdog.h"
#include "util/json.h"

namespace flare {
namespace {

TEST(FlightRecorder, RingKeepsLastCapacityEventsOldestFirst) {
  FlightRecorder recorder(4);
  for (int i = 0; i < 10; ++i) {
    recorder.Record(static_cast<double>(i), "rung_change",
                    static_cast<FlowId>(i), i, static_cast<double>(i * 10));
  }
  EXPECT_EQ(recorder.recorded(), 10u);
  EXPECT_EQ(recorder.dropped(), 6u);
  const std::vector<FlightEvent> events = recorder.RecentEvents();
  ASSERT_EQ(events.size(), 4u);
  // Events 6..9 survive, oldest first, with monotone seq.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_DOUBLE_EQ(events[i].t_s, static_cast<double>(i + 6));
    EXPECT_EQ(events[i].seq, i + 6);
    EXPECT_EQ(events[i].flow, static_cast<FlowId>(i + 6));
  }
}

TEST(FlightRecorder, UnderCapacityRingIsStable) {
  FlightRecorder recorder(8);
  recorder.Record(1.0, "gbr_push");
  recorder.Record(2.0, "admission_admit");
  EXPECT_EQ(recorder.dropped(), 0u);
  const std::vector<FlightEvent> events = recorder.RecentEvents();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].kind, "gbr_push");
  EXPECT_STREQ(events[1].kind, "admission_admit");
}

TEST(FlightRecorder, TriggerSnapshotLatchesFirstReasonOnly) {
  FlightRecorder recorder(4);
  recorder.Record(1.0, "stall_begin", kInvalidFlow, 0);
  recorder.TriggerSnapshot("first", 1.5);
  recorder.Record(2.0, "stall_end", kInvalidFlow, 0);
  recorder.TriggerSnapshot("second", 2.5);
  EXPECT_TRUE(recorder.triggered());
  EXPECT_EQ(recorder.trigger_reason(), "first");
  EXPECT_DOUBLE_EQ(recorder.trigger_t_s(), 1.5);
  // The snapshot is the ring as of the *first* alarm: the later stall_end
  // is in the live ring but not the latched context.
  ASSERT_EQ(recorder.snapshot().size(), 1u);
  EXPECT_STREQ(recorder.snapshot()[0].kind, "stall_begin");
  EXPECT_EQ(recorder.RecentEvents().size(), 2u);
}

TEST(FlightRecorder, WatchdogAlarmRecordsEventAndLatchesSnapshot) {
  FlightRecorder recorder(16);
  recorder.Record(0.1, "rung_change", 3, 0, 2.0, "{\"from\":1,\"to\":2}");

  RunHealthMonitor monitor;  // infeasible_streak = 3
  monitor.SetObservers(nullptr, nullptr, &recorder);
  monitor.OnSolverResult(1.0, false);
  monitor.OnSolverResult(2.0, false);
  EXPECT_FALSE(recorder.triggered());  // streak not yet reached
  monitor.OnSolverResult(3.0, false);

  ASSERT_FALSE(monitor.healthy());
  EXPECT_TRUE(recorder.triggered());
  EXPECT_EQ(recorder.trigger_reason(), "infeasible_streak");
  // The snapshot holds the pre-alarm context plus the watchdog event.
  const std::vector<FlightEvent>& snap = recorder.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_STREQ(snap[0].kind, "rung_change");
  EXPECT_STREQ(snap[1].kind, "watchdog");
  EXPECT_DOUBLE_EQ(snap[1].t_s, 3.0);
}

TEST(FlightRecorder, DumpPostmortemWritesParseableJson) {
  FlightRecorder recorder(8);
  recorder.set_cell(2);
  recorder.Record(0.5, "admission_reject", 9, -1, 1.0,
                  "{\"util\":0.93}");
  recorder.Record(0.75, "stall_begin", kInvalidFlow, 4);
  recorder.TriggerSnapshot("fail_on_unhealthy", 0.8);

  const std::string path =
      ::testing::TempDir() + "/flight_recorder_test_pm.json";
  ASSERT_TRUE(recorder.DumpPostmortem(path, "fail_on_unhealthy"));

  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJsonFile(path, &doc, &error)) << error;
  EXPECT_EQ(doc.FindPath({"reason"})->AsString(), "fail_on_unhealthy");
  EXPECT_EQ(doc.FindPath({"trigger", "reason"})->AsString(),
            "fail_on_unhealthy");
  EXPECT_DOUBLE_EQ(doc.FindPath({"trigger", "t_s"})->AsNumber(), 0.8);
  const JsonValue* recent = doc.Find("recent");
  ASSERT_NE(recent, nullptr);
  ASSERT_EQ(recent->items().size(), 2u);
  EXPECT_EQ(recent->items()[0].Find("kind")->AsString(), "admission_reject");
  EXPECT_DOUBLE_EQ(recent->items()[0].Find("t_s")->AsNumber(), 0.5);
  EXPECT_EQ(recent->items()[0].Find("cell")->AsNumber(), 2.0);
  // args round-trips as a nested object, not a quoted blob.
  EXPECT_DOUBLE_EQ(
      recent->items()[0].FindPath({"args", "util"})->AsNumber(), 0.93);
  const JsonValue* snapshot = doc.Find("snapshot");
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->items().size(), 2u);
  std::remove(path.c_str());
}

TEST(FlightRecorder, DumpPostmortemFailsOnUnwritablePath) {
  FlightRecorder recorder(4);
  EXPECT_FALSE(recorder.DumpPostmortem("/nonexistent/dir/pm.json", "x"));
}

TEST(FlightRecorder, AbsorbShardMergesAndSortsDeterministically) {
  FlightRecorder shard_a(4);
  shard_a.Record(1.0, "rung_change", 1);
  shard_a.Record(3.0, "gbr_push", 1);
  FlightRecorder shard_b(4);
  shard_b.Record(2.0, "rung_change", 2);
  shard_b.Record(3.0, "admission_admit", 2);

  // Merge in both cell orders; sorted output must be byte-identical.
  std::string forward;
  {
    FlightRecorder merged(4);
    merged.AbsorbShard(shard_a, 0);
    merged.AbsorbShard(shard_b, 1);
    merged.SortMergedEvents();
    std::ostringstream out;
    merged.WriteJson(out);
    forward = out.str();
  }
  std::string reverse;
  {
    FlightRecorder merged(4);
    merged.AbsorbShard(shard_b, 1);
    merged.AbsorbShard(shard_a, 0);
    merged.SortMergedEvents();
    std::ostringstream out;
    merged.WriteJson(out);
    reverse = out.str();
  }
  EXPECT_EQ(forward, reverse);

  // The merged recorder is a sink: it keeps all four events, restamped.
  FlightRecorder merged(4);
  merged.AbsorbShard(shard_a, 0);
  merged.AbsorbShard(shard_b, 1);
  merged.SortMergedEvents();
  const std::vector<FlightEvent> events = merged.RecentEvents();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_DOUBLE_EQ(events[0].t_s, 1.0);
  EXPECT_EQ(events[0].cell, 0);
  EXPECT_DOUBLE_EQ(events[1].t_s, 2.0);
  EXPECT_EQ(events[1].cell, 1);
  // (t_s, cell, seq) tie at t=3.0: cell 0 before cell 1.
  EXPECT_DOUBLE_EQ(events[2].t_s, 3.0);
  EXPECT_EQ(events[2].cell, 0);
  EXPECT_DOUBLE_EQ(events[3].t_s, 3.0);
  EXPECT_EQ(events[3].cell, 1);
}

TEST(FlightRecorder, EarliestTriggerWinsAcrossShards) {
  FlightRecorder shard_a(4);
  shard_a.TriggerSnapshot("late_alarm", 5.0);
  FlightRecorder shard_b(4);
  shard_b.TriggerSnapshot("early_alarm", 2.0);

  FlightRecorder merged(4);
  merged.AbsorbShard(shard_a, 0);
  merged.AbsorbShard(shard_b, 1);
  EXPECT_TRUE(merged.triggered());
  EXPECT_EQ(merged.trigger_reason(), "early_alarm");
  EXPECT_DOUBLE_EQ(merged.trigger_t_s(), 2.0);
}

}  // namespace
}  // namespace flare
