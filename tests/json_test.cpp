// util/json parser: the reader half of the observability layer's
// hand-written JSON. Exercised against the exact shapes the repo emits
// (registry exports, QoE sections, google-benchmark output) plus the
// grammar corners a hand-rolled parser usually gets wrong.
#include "util/json.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace flare {
namespace {

JsonValue Parse(const std::string& text) {
  JsonValue value;
  std::string error;
  EXPECT_TRUE(ParseJson(text, &value, &error)) << error;
  return value;
}

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(Parse("null").is_null());
  EXPECT_TRUE(Parse("true").AsBool());
  EXPECT_FALSE(Parse("false").AsBool(true));
  EXPECT_DOUBLE_EQ(Parse("42").AsNumber(), 42.0);
  EXPECT_DOUBLE_EQ(Parse("-1.5e3").AsNumber(), -1500.0);
  EXPECT_EQ(Parse("\"hi\"").AsString(), "hi");
}

TEST(Json, ParsesNestedContainersAndPreservesMemberOrder) {
  const JsonValue doc = Parse(
      R"({"b": [1, 2, {"c": true}], "a": {"x": null}, "z": 3})");
  ASSERT_TRUE(doc.is_object());
  ASSERT_EQ(doc.members().size(), 3u);
  // Source order, not sorted: diffs over exported files stay stable.
  EXPECT_EQ(doc.members()[0].first, "b");
  EXPECT_EQ(doc.members()[1].first, "a");
  EXPECT_EQ(doc.members()[2].first, "z");
  const JsonValue* b = doc.Find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(b->items().size(), 3u);
  EXPECT_TRUE(b->items()[2].Find("c")->AsBool());
  EXPECT_EQ(doc.FindPath({"a", "x"})->kind(), JsonValue::Kind::kNull);
  EXPECT_EQ(doc.FindPath({"a", "missing"}), nullptr);
}

TEST(Json, ParsesStringEscapes) {
  const JsonValue doc = Parse(R"("a\"b\\c\n\tAé")");
  EXPECT_EQ(doc.AsString(), "a\"b\\c\n\tA\xc3\xa9");
}

TEST(Json, RejectsMalformedDocuments) {
  JsonValue value;
  std::string error;
  EXPECT_FALSE(ParseJson("", &value, &error));
  EXPECT_FALSE(ParseJson("{", &value, &error));
  EXPECT_FALSE(ParseJson("{\"a\": 1,}", &value, &error));  // trailing comma
  EXPECT_FALSE(ParseJson("[1, 2] trailing", &value, &error));
  EXPECT_FALSE(ParseJson("nan", &value, &error));
  EXPECT_FALSE(ParseJson("'single'", &value, &error));
  // The error carries a byte offset for debugging exports.
  ParseJson("{\"a\": !}", &value, &error);
  EXPECT_NE(error.find("at byte"), std::string::npos) << error;
}

TEST(Json, RejectsRunawayNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  JsonValue value;
  EXPECT_FALSE(ParseJson(deep, &value));
}

TEST(Json, RoundTripsARegistryStyleExport) {
  const std::string text = R"({
    "counters": {"player.stalls": 3},
    "gauges": {"churn.sessions_active": 2.5},
    "histograms": {"h": {"count": 0, "sum": 0, "mean": null,
                         "p50": null, "p95": null, "p99": null}}
  })";
  const JsonValue doc = Parse(text);
  EXPECT_DOUBLE_EQ(doc.FindPath({"counters", "player.stalls"})->AsNumber(),
                   3.0);
  EXPECT_TRUE(doc.FindPath({"histograms", "h", "p50"})->is_null());
  // Null aggregates (empty histogram) read back as fallback, not NaN.
  EXPECT_DOUBLE_EQ(doc.FindPath({"histograms", "h", "mean"})->AsNumber(-1.0),
                   -1.0);
}

TEST(Json, ParseJsonFileReportsIoVsSyntax) {
  JsonValue value;
  std::string error;
  EXPECT_FALSE(ParseJsonFile("/nonexistent/p.json", &value, &error));
  EXPECT_NE(error.find("/nonexistent/p.json"), std::string::npos);

  const std::string path =
      ::testing::TempDir() + "/json_test_roundtrip.json";
  {
    std::ofstream out(path);
    out << R"({"k": [1, 2.5, "three"]})";
  }
  ASSERT_TRUE(ParseJsonFile(path, &value, &error)) << error;
  EXPECT_DOUBLE_EQ(value.Find("k")->items()[1].AsNumber(), 2.5);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace flare
