// Tests for the HAS substrate: MPD model + parser, playout buffer, video
// session loop, and QoE metrics.
#include <gtest/gtest.h>

#include "has/metrics.h"
#include "has/mpd.h"
#include "has/player.h"
#include "has/video_session.h"
#include "lte/cell.h"
#include "lte/pf_scheduler.h"
#include "sim/simulator.h"
#include "transport/transport_host.h"

namespace flare {
namespace {

TEST(Mpd, MakeMpdSortsAndIndexes) {
  const Mpd mpd = MakeMpd({500, 100, 250}, 2.0);
  ASSERT_EQ(mpd.NumRepresentations(), 3);
  EXPECT_DOUBLE_EQ(mpd.BitrateOf(0), 100'000.0);
  EXPECT_DOUBLE_EQ(mpd.BitrateOf(2), 500'000.0);
  EXPECT_TRUE(mpd.Valid());
}

TEST(Mpd, SegmentBytes) {
  const Mpd mpd = MakeMpd({800}, 10.0);
  // 800 Kbit/s * 10 s = 8 Mbit = 1 MB.
  EXPECT_EQ(mpd.SegmentBytes(0), 1'000'000u);
}

TEST(Mpd, HighestIndexBelow) {
  const Mpd mpd = MakeMpd({100, 250, 500}, 2.0);
  EXPECT_EQ(mpd.HighestIndexBelow(99e3), -1);
  EXPECT_EQ(mpd.HighestIndexBelow(100e3), 0);
  EXPECT_EQ(mpd.HighestIndexBelow(300e3), 1);
  EXPECT_EQ(mpd.HighestIndexBelow(1e9), 2);
}

TEST(Mpd, IndexOfBitrate) {
  const Mpd mpd = MakeMpd({100, 250}, 2.0);
  EXPECT_EQ(mpd.IndexOfBitrate(250'000.0), 1);
  EXPECT_EQ(mpd.IndexOfBitrate(123'000.0), -1);
}

TEST(Mpd, SerializeParseRoundTrip) {
  const Mpd original = MakeMpd(TestbedLadderKbps(), 2.0, 600.0, "demo");
  const std::string xml = SerializeMpd(original);
  const auto parsed = ParseMpd(xml);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->title, "demo");
  EXPECT_DOUBLE_EQ(parsed->segment_duration_s, 2.0);
  EXPECT_DOUBLE_EQ(parsed->media_duration_s, 600.0);
  ASSERT_EQ(parsed->NumRepresentations(), original.NumRepresentations());
  for (int i = 0; i < original.NumRepresentations(); ++i) {
    EXPECT_DOUBLE_EQ(parsed->BitrateOf(i), original.BitrateOf(i));
  }
}

TEST(Mpd, ParseToleratesUnsortedRepresentations) {
  const auto parsed = ParseMpd(
      "<MPD segmentDuration=\"4\">"
      "<Representation bandwidth=\"500000\"/>"
      "<Representation bandwidth=\"100000\"/>"
      "</MPD>");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_DOUBLE_EQ(parsed->BitrateOf(0), 100'000.0);
  EXPECT_DOUBLE_EQ(parsed->BitrateOf(1), 500'000.0);
}

TEST(Mpd, ParseRejectsMalformedInput) {
  EXPECT_FALSE(ParseMpd("").has_value());
  EXPECT_FALSE(ParseMpd("<NotMpd/>").has_value());
  EXPECT_FALSE(ParseMpd("<MPD>").has_value());  // no segmentDuration
  EXPECT_FALSE(
      ParseMpd("<MPD segmentDuration=\"2\"></MPD>").has_value());  // no reps
  EXPECT_FALSE(ParseMpd("<MPD segmentDuration=\"2\">"
                        "<Representation bandwidth=\"abc\"/></MPD>")
                   .has_value());
  // Duplicate bitrates violate strict ascent.
  EXPECT_FALSE(ParseMpd("<MPD segmentDuration=\"2\">"
                        "<Representation bandwidth=\"100\"/>"
                        "<Representation bandwidth=\"100\"/></MPD>")
                   .has_value());
}

TEST(Mpd, VbrSegmentSizesVaryDeterministically) {
  Mpd mpd = MakeMpd({800}, 10.0);
  mpd.vbr_sigma = 0.2;
  const std::uint64_t nominal = mpd.SegmentBytes(0);
  bool varied = false;
  double sum = 0.0;
  const int n = 200;
  for (int seg = 0; seg < n; ++seg) {
    const std::uint64_t a = mpd.SegmentBytesAt(0, seg);
    EXPECT_EQ(a, mpd.SegmentBytesAt(0, seg));  // deterministic
    // Bounded at +-2.5 sigma.
    EXPECT_GE(a, static_cast<std::uint64_t>(0.5 * nominal));
    EXPECT_LE(a, static_cast<std::uint64_t>(1.5 * nominal));
    if (a != nominal) varied = true;
    sum += static_cast<double>(a);
  }
  EXPECT_TRUE(varied);
  // Mean stays near the nominal bitrate.
  EXPECT_NEAR(sum / n / static_cast<double>(nominal), 1.0, 0.08);
}

TEST(Mpd, CbrSegmentsAreExact) {
  const Mpd mpd = MakeMpd({800}, 10.0);
  for (int seg = 0; seg < 10; ++seg) {
    EXPECT_EQ(mpd.SegmentBytesAt(0, seg), mpd.SegmentBytes(0));
  }
}

TEST(Mpd, VbrSigmaSurvivesSerialization) {
  Mpd mpd = MakeMpd({100, 200}, 4.0);
  mpd.vbr_sigma = 0.15;
  const auto parsed = ParseMpd(SerializeMpd(mpd));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_DOUBLE_EQ(parsed->vbr_sigma, 0.15);
}

TEST(Mpd, PaperLadders) {
  EXPECT_EQ(TestbedLadderKbps().size(), 8u);
  EXPECT_EQ(SimulationLadderKbps().size(), 6u);
  EXPECT_EQ(DenseLadderKbps().size(), 12u);
  EXPECT_DOUBLE_EQ(TestbedLadderKbps().back(), 2750.0);
  EXPECT_DOUBLE_EQ(SimulationLadderKbps().back(), 3000.0);
}

TEST(Player, StartupThresholdGatesPlayout) {
  PlayerConfig config;
  config.startup_threshold_s = 4.0;
  VideoPlayer player(config);
  EXPECT_FALSE(player.playing());
  player.OnSegment(2.0, 1e6, FromSeconds(1.0));
  EXPECT_FALSE(player.playing());  // 2 s < 4 s threshold
  player.OnSegment(2.0, 1e6, FromSeconds(2.0));
  EXPECT_TRUE(player.playing());
}

TEST(Player, BufferDrainsInRealTime) {
  PlayerConfig config;
  config.startup_threshold_s = 2.0;
  VideoPlayer player(config);
  player.OnSegment(10.0, 1e6, FromSeconds(0.0));
  player.AdvanceTo(FromSeconds(4.0));
  EXPECT_NEAR(player.buffer_s(), 6.0, 1e-9);
  EXPECT_NEAR(player.played_s(), 4.0, 1e-9);
}

TEST(Player, StallAccountsRebufferTime) {
  PlayerConfig config;
  config.startup_threshold_s = 1.0;
  config.resume_threshold_s = 1.0;
  VideoPlayer player(config);
  player.OnSegment(2.0, 1e6, FromSeconds(0.0));
  // Drain past empty: 2 s of media, 5 s of wall clock -> 3 s stall.
  player.AdvanceTo(FromSeconds(5.0));
  EXPECT_TRUE(player.stalled());
  EXPECT_NEAR(player.rebuffer_time_s(), 3.0, 1e-9);
  EXPECT_EQ(player.rebuffer_events(), 1);
  // Stall continues until a segment arrives.
  player.AdvanceTo(FromSeconds(6.0));
  EXPECT_NEAR(player.rebuffer_time_s(), 4.0, 1e-9);
  player.OnSegment(2.0, 1e6, FromSeconds(6.0));
  EXPECT_TRUE(player.playing());
}

TEST(Player, ResumeThresholdHoldsPlayback) {
  PlayerConfig config;
  config.startup_threshold_s = 1.0;
  config.resume_threshold_s = 3.0;
  VideoPlayer player(config);
  player.OnSegment(1.0, 1e6, FromSeconds(0.0));
  player.AdvanceTo(FromSeconds(2.0));  // stall at t=1
  EXPECT_TRUE(player.stalled());
  player.OnSegment(1.0, 1e6, FromSeconds(2.0));  // only 1 s < resume 3 s
  EXPECT_TRUE(player.stalled());
  player.OnSegment(2.0, 1e6, FromSeconds(2.5));  // 3 s buffered
  EXPECT_TRUE(player.playing());
}

TEST(Player, WantsMoreSegmentsBelowCap) {
  PlayerConfig config;
  config.max_buffer_s = 5.0;
  VideoPlayer player(config);
  EXPECT_TRUE(player.WantsMoreSegments());
  player.OnSegment(6.0, 1e6, 0);
  EXPECT_FALSE(player.WantsMoreSegments());
}

TEST(Player, AdvanceToIsIdempotentForPastTimes) {
  VideoPlayer player(PlayerConfig{});
  player.OnSegment(5.0, 1e6, FromSeconds(0.0));
  player.AdvanceTo(FromSeconds(2.0));
  const double buffer = player.buffer_s();
  player.AdvanceTo(FromSeconds(1.0));  // earlier: no-op
  EXPECT_DOUBLE_EQ(player.buffer_s(), buffer);
}

TEST(Metrics, QoeScoreComponents) {
  // Pure quality: constant 2 Mbps, no stalls -> QoE = 2.0.
  EXPECT_DOUBLE_EQ(QoeScore({2e6, 2e6, 2e6}, 0.0, 30.0), 2.0);
  // Switching penalty: 1->2->1 Mbps = 2 Mbps of |diff| over 3 segments.
  EXPECT_NEAR(QoeScore({1e6, 2e6, 1e6}, 0.0, 30.0),
              (4.0 - 1.0 * 2.0) / 3.0, 1e-12);
  // Rebuffer penalty: 3 s of stall over 30 s at mu=8 costs 0.8.
  EXPECT_NEAR(QoeScore({2e6, 2e6}, 3.0, 30.0), 2.0 - 0.8, 1e-12);
  // Custom weights.
  QoeWeights weights;
  weights.lambda_switch = 0.0;
  weights.mu_rebuffer = 0.0;
  EXPECT_DOUBLE_EQ(QoeScore({1e6, 3e6}, 10.0, 30.0, weights), 2.0);
  // Degenerate inputs.
  EXPECT_DOUBLE_EQ(QoeScore({}, 5.0, 30.0), 0.0);
}

TEST(Metrics, QoeOrdersObviousCases) {
  // Higher stable bitrate beats lower; stalls hurt.
  const double high = QoeScore({3e6, 3e6, 3e6}, 0.0, 30.0);
  const double low = QoeScore({1e6, 1e6, 1e6}, 0.0, 30.0);
  const double stalled = QoeScore({3e6, 3e6, 3e6}, 10.0, 30.0);
  EXPECT_GT(high, low);
  EXPECT_GT(high, stalled);
}

TEST(Metrics, CountBitrateChanges) {
  EXPECT_EQ(CountBitrateChanges({}), 0);
  EXPECT_EQ(CountBitrateChanges({1.0}), 0);
  EXPECT_EQ(CountBitrateChanges({1.0, 1.0, 1.0}), 0);
  EXPECT_EQ(CountBitrateChanges({1.0, 2.0, 2.0, 1.0}), 2);
  EXPECT_EQ(CountBitrateChanges({1.0, 2.0, 1.0, 2.0}), 3);
}

// A fixed-rate ABR for session-loop tests.
class FixedAbr final : public AbrAlgorithm {
 public:
  explicit FixedAbr(int index) : index_(index) {}
  int NextRepresentation(const AbrContext&) override { return index_; }
  std::string Name() const override { return "fixed"; }

 private:
  int index_;
};

struct SessionNet {
  Simulator sim;
  Cell cell;
  TransportHost host;
  SessionNet()
      : cell(sim, std::make_unique<PfScheduler>(), CellConfig{}, Rng(1)),
        host(sim, cell) {}
};

TEST(VideoSession, StreamsSegmentsAndFillsBuffer) {
  SessionNet net;
  const UeId ue = net.cell.AddUe(std::make_unique<StaticItbsChannel>(7));
  TcpFlow& flow = net.host.CreateFlow(ue, FlowType::kVideo);
  HttpClient http(net.sim, flow);

  VideoSessionConfig config;
  config.player.max_buffer_s = 30.0;
  // 500 Kbps on a 5.2 Mbit/s link: downloads are ~10x real time.
  VideoSession session(net.sim, http, MakeMpd({500}, 2.0),
                       std::make_unique<FixedAbr>(0), config);
  session.Start(0);
  net.cell.Start();
  net.sim.RunUntil(FromSeconds(60.0));

  EXPECT_GT(session.segments_completed(), 20);
  EXPECT_NEAR(session.player().buffer_s(), 30.0, 3.0);  // parked at cap
  EXPECT_EQ(session.player().rebuffer_events(), 0);
  const ClientMetrics m = ComputeClientMetrics(session);
  EXPECT_DOUBLE_EQ(m.avg_bitrate_bps, 500'000.0);
  EXPECT_EQ(m.bitrate_changes, 0);
}

TEST(VideoSession, OverdrivenSessionRebuffers) {
  SessionNet net;
  const UeId ue = net.cell.AddUe(std::make_unique<StaticItbsChannel>(2));
  // iTbs 2: 32 bits * 50 RBs = 1.6 Mbit/s link; force 2.75 Mbit/s video.
  TcpFlow& flow = net.host.CreateFlow(ue, FlowType::kVideo);
  HttpClient http(net.sim, flow);
  VideoSessionConfig config;
  VideoSession session(net.sim, http, MakeMpd({2750}, 2.0),
                       std::make_unique<FixedAbr>(0), config);
  session.Start(0);
  net.cell.Start();
  net.sim.RunUntil(FromSeconds(120.0));
  session.player().AdvanceTo(net.sim.Now());
  EXPECT_GT(session.player().rebuffer_time_s(), 10.0);
}

TEST(VideoSession, FiniteMediaStops) {
  SessionNet net;
  const UeId ue = net.cell.AddUe(std::make_unique<StaticItbsChannel>(7));
  TcpFlow& flow = net.host.CreateFlow(ue, FlowType::kVideo);
  HttpClient http(net.sim, flow);
  VideoSessionConfig config;
  // 10 segments of 2 s.
  VideoSession session(net.sim, http, MakeMpd({500}, 2.0, 20.0),
                       std::make_unique<FixedAbr>(0), config);
  session.Start(0);
  net.cell.Start();
  net.sim.RunUntil(FromSeconds(120.0));
  EXPECT_EQ(session.segments_completed(), 10);
}

TEST(VideoSession, SelectionHistoryMatchesSegments) {
  SessionNet net;
  const UeId ue = net.cell.AddUe(std::make_unique<StaticItbsChannel>(7));
  TcpFlow& flow = net.host.CreateFlow(ue, FlowType::kVideo);
  HttpClient http(net.sim, flow);
  VideoSession session(net.sim, http, MakeMpd({200, 400}, 2.0),
                       std::make_unique<FixedAbr>(1),
                       VideoSessionConfig{});
  session.Start(FromSeconds(1.0));
  net.cell.Start();
  net.sim.RunUntil(FromSeconds(30.0));
  EXPECT_GE(static_cast<int>(session.selection_history().size()),
            session.segments_completed());
  for (int index : session.selection_history()) EXPECT_EQ(index, 1);
}

TEST(VideoSession, LiveModeTracksTheEncoderEdge) {
  SessionNet net;
  const UeId ue = net.cell.AddUe(std::make_unique<StaticItbsChannel>(7));
  TcpFlow& flow = net.host.CreateFlow(ue, FlowType::kVideo);
  HttpClient http(net.sim, flow);
  VideoSessionConfig config;
  config.live = true;
  config.player.max_buffer_s = 60.0;  // not the binding limit in live
  // 500 Kbps on a 5.2 Mbit/s link: downloads are ~10x real time, so the
  // session would buffer 60 s in VoD mode; live must hold it at the edge.
  VideoSession session(net.sim, http, MakeMpd({500}, 2.0),
                       std::make_unique<FixedAbr>(0), config);
  session.Start(0);
  net.cell.Start();
  net.sim.RunUntil(FromSeconds(120.0));
  session.player().AdvanceTo(net.sim.Now());

  // One segment becomes available per 2 s: ~60 segments in 120 s.
  EXPECT_GE(session.segments_completed(), 55);
  EXPECT_LE(session.segments_completed(), 60);
  // Buffer bounded near the live edge, far below the 60 s VoD cap.
  EXPECT_LE(session.player().buffer_s(), 6.0);
}

TEST(VideoSession, VodModeBuffersAheadUnlikeLive) {
  SessionNet net;
  const UeId ue = net.cell.AddUe(std::make_unique<StaticItbsChannel>(7));
  TcpFlow& flow = net.host.CreateFlow(ue, FlowType::kVideo);
  HttpClient http(net.sim, flow);
  VideoSessionConfig config;
  config.player.max_buffer_s = 40.0;
  VideoSession session(net.sim, http, MakeMpd({500}, 2.0),
                       std::make_unique<FixedAbr>(0), config);
  session.Start(0);
  net.cell.Start();
  net.sim.RunUntil(FromSeconds(120.0));
  session.player().AdvanceTo(net.sim.Now());
  EXPECT_GT(session.player().buffer_s(), 30.0);
}

TEST(VideoSession, RejectsInvalidConstruction) {
  SessionNet net;
  const UeId ue = net.cell.AddUe(std::make_unique<StaticItbsChannel>(7));
  TcpFlow& flow = net.host.CreateFlow(ue, FlowType::kVideo);
  HttpClient http(net.sim, flow);
  Mpd bad;  // invalid: no representations
  EXPECT_THROW(VideoSession(net.sim, http, bad,
                            std::make_unique<FixedAbr>(0),
                            VideoSessionConfig{}),
               std::invalid_argument);
  EXPECT_THROW(VideoSession(net.sim, http, MakeMpd({100}, 2.0), nullptr,
                            VideoSessionConfig{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace flare
