// Failure-injection tests: components vanish, channels collapse, queues
// overflow, control messages race teardown — the system must degrade
// gracefully, never crash, and recover when conditions return.
#include <gtest/gtest.h>

#include "abr/avis.h"
#include "has/video_session.h"
#include "lte/cell.h"
#include "lte/gbr_scheduler.h"
#include "lte/pss_scheduler.h"
#include "net/oneapi_server.h"
#include "scenario/scenario.h"
#include "sim/simulator.h"
#include "transport/transport_host.h"

namespace flare {
namespace {

TEST(FailureInjection, VideoFlowTornDownMidSegment) {
  Simulator sim;
  Cell cell(sim, std::make_unique<PssScheduler>(), CellConfig{}, Rng(1));
  TransportHost host(sim, cell);
  const UeId ue = cell.AddUe(std::make_unique<StaticItbsChannel>(7));
  TcpFlow& tcp = host.CreateFlow(ue, FlowType::kVideo);
  const FlowId id = tcp.id();
  HttpClient http(sim, tcp);
  bool completed = false;
  http.Get(500'000, [&](const HttpResult&) { completed = true; });
  cell.Start();
  sim.RunUntil(FromSeconds(0.2));  // mid-download
  host.DestroyFlow(id);
  EXPECT_NO_THROW(sim.RunUntil(FromSeconds(5.0)));
  EXPECT_FALSE(completed);
}

TEST(FailureInjection, ChannelCollapseToFloorAndRecovery) {
  // iTbs drops to the minimum mid-run, then recovers: the FLARE pipeline
  // must drop rates without crashing and climb back afterwards.
  Simulator sim;
  Cell cell(sim, std::make_unique<TwoPhaseGbrScheduler>(), CellConfig{},
            Rng(1));
  Pcrf pcrf;
  Pcef pcef(sim, cell, 10 * kMillisecond);
  OneApiConfig config;
  config.bai = FromSeconds(1.0);
  config.params.delta = 1;
  OneApiServer server(sim, cell, pcrf, pcef, config);

  // Channel: good for 40 s, floor for 20 s, good again.
  const auto schedule = [](SimTime now) {
    const double t = ToSeconds(now);
    return (t >= 40.0 && t < 60.0) ? 0 : 10;
  };
  const UeId ue =
      cell.AddUe(std::make_unique<ItbsOverrideChannel>(schedule));
  const FlowId flow = cell.AddFlow(ue, FlowType::kVideo);
  FlarePlugin plugin(flow);
  server.ConnectVideoClient(&plugin, MakeMpd(SimulationLadderKbps(), 10.0));
  server.Start();
  cell.Start();
  sim.Every(FromSeconds(0.1), FromSeconds(0.1),
            [&] { cell.Enqueue(flow, 15'000); });

  sim.RunUntil(FromSeconds(40.0));
  const int before = server.controller().CurrentLevel(flow);
  EXPECT_GE(before, 3);
  sim.RunUntil(FromSeconds(60.0));
  const int during = server.controller().CurrentLevel(flow);
  EXPECT_LT(during, before);  // large drop applied
  sim.RunUntil(FromSeconds(120.0));
  EXPECT_GT(server.controller().CurrentLevel(flow), during);  // recovery
}

TEST(FailureInjection, AllClientsDisconnectMidRun) {
  Simulator sim;
  Cell cell(sim, std::make_unique<TwoPhaseGbrScheduler>(), CellConfig{},
            Rng(1));
  Pcrf pcrf;
  Pcef pcef(sim, cell, 10 * kMillisecond);
  OneApiConfig config;
  config.bai = FromSeconds(1.0);
  OneApiServer server(sim, cell, pcrf, pcef, config);
  const Mpd mpd = MakeMpd(SimulationLadderKbps(), 10.0);

  std::vector<std::unique_ptr<FlarePlugin>> plugins;
  std::vector<FlowId> flows;
  for (int i = 0; i < 4; ++i) {
    const UeId ue = cell.AddUe(std::make_unique<StaticItbsChannel>(7));
    const FlowId flow = cell.AddFlow(ue, FlowType::kVideo);
    plugins.push_back(std::make_unique<FlarePlugin>(flow));
    flows.push_back(flow);
    server.ConnectVideoClient(plugins.back().get(), mpd);
  }
  server.Start();
  cell.Start();
  sim.At(FromSeconds(5.0), [&] {
    for (FlowId f : flows) {
      server.DisconnectVideoClient(f);
      cell.RemoveFlow(f);
    }
  });
  EXPECT_NO_THROW(sim.RunUntil(FromSeconds(20.0)));
  EXPECT_EQ(server.controller().NumFlows(), 0u);
  EXPECT_EQ(pcrf.CountFlows(FlowType::kVideo), 0);
}

TEST(FailureInjection, QueueOverflowStormDoesNotWedgeTcp) {
  // A tiny RLC queue under a greedy flow: continuous tail drops must
  // leave the flow live and making progress.
  Simulator sim;
  CellConfig cell_config;
  cell_config.queue_limit_bytes = 5'000;
  Cell cell(sim, std::make_unique<PssScheduler>(), cell_config, Rng(1));
  TransportHost host(sim, cell);
  const UeId ue = cell.AddUe(std::make_unique<StaticItbsChannel>(7));
  TcpFlow& tcp = host.CreateFlow(ue, FlowType::kData);
  host.MakeGreedy(tcp.id());
  cell.Start();
  sim.RunUntil(FromSeconds(10.0));
  const std::uint64_t at_10s = tcp.bytes_delivered();
  EXPECT_GT(at_10s, 500'000u);  // still moving despite the storm
  sim.RunUntil(FromSeconds(20.0));
  EXPECT_GT(tcp.bytes_delivered(), at_10s + 500'000u);
}

TEST(FailureInjection, ZeroCapacityChannelStallsButDoesNotCrash) {
  // A UE whose iTbs maps to 16 bits/RB on a 1-RB cell: 16 Kbit/s. The
  // session must keep running (stalled) without tripping any invariant.
  Simulator sim;
  CellConfig cell_config;
  cell_config.num_rbs = 1;
  Cell cell(sim, std::make_unique<PssScheduler>(), cell_config, Rng(1));
  TransportHost host(sim, cell);
  const UeId ue = cell.AddUe(std::make_unique<StaticItbsChannel>(0));
  TcpFlow& tcp = host.CreateFlow(ue, FlowType::kVideo);
  HttpClient http(sim, tcp);
  VideoSessionConfig vs_config;
  VideoSession session(sim, http, MakeMpd({200, 400}, 2.0),
                       std::make_unique<GoogleAbr>(), vs_config);
  session.Start(0);
  cell.Start();
  EXPECT_NO_THROW(sim.RunUntil(FromSeconds(60.0)));
  session.player().AdvanceTo(sim.Now());
  // 200 Kbit/s segments on a 16 Kbit/s link: hopeless, but alive.
  EXPECT_LE(session.segments_completed(), 3);
}

TEST(FailureInjection, AvisGatewayOutlivesItsFlows) {
  Simulator sim;
  Cell cell(sim, std::make_unique<PssScheduler>(), CellConfig{}, Rng(1));
  AvisGateway gateway(sim, cell, AvisConfig{});
  const Mpd mpd = MakeMpd(SimulationLadderKbps(), 10.0);
  const UeId ue = cell.AddUe(std::make_unique<StaticItbsChannel>(7));
  const FlowId flow = cell.AddFlow(ue, FlowType::kVideo);
  gateway.RegisterVideoFlow(flow, &mpd);
  gateway.Start();
  cell.Start();
  sim.At(FromSeconds(2.0), [&] { cell.RemoveFlow(flow); });
  EXPECT_NO_THROW(sim.RunUntil(FromSeconds(10.0)));
}

TEST(FailureInjection, FlareDegradesGracefullyUnderBler) {
  // A lossy PHY (10% TB errors + HARQ) must cost throughput, not
  // correctness: FLARE still streams with no crash and bounded damage.
  ScenarioConfig clean = TestbedPreset(Scheme::kFlare);
  clean.duration_s = 120.0;
  ScenarioConfig lossy = clean;
  lossy.target_bler = 0.1;
  const ScenarioResult a = RunScenario(clean);
  const ScenarioResult b = RunScenario(lossy);
  ASSERT_EQ(b.video.size(), 3u);
  for (const ClientMetrics& m : b.video) {
    EXPECT_GT(m.segments, 10);
    EXPECT_LT(m.rebuffer_time_s, 10.0);
  }
  // The lossy run cannot deliver more video than the clean one.
  EXPECT_LE(b.avg_video_bitrate_bps, a.avg_video_bitrate_bps * 1.02);
}

TEST(FailureInjection, ScenarioWithZeroVideoClients) {
  ScenarioConfig config = SimStaticPreset(Scheme::kFlare);
  config.duration_s = 30.0;
  config.n_video = 0;
  config.n_data = 2;
  const ScenarioResult result = RunScenario(config);
  EXPECT_TRUE(result.video.empty());
  EXPECT_EQ(result.data_throughput_bps.size(), 2u);
  EXPECT_GT(result.avg_data_throughput_bps, 0.0);
}

TEST(FailureInjection, ScenarioWithZeroDataClients) {
  ScenarioConfig config = TestbedPreset(Scheme::kFlare);
  config.duration_s = 30.0;
  config.n_data = 0;
  EXPECT_NO_THROW({
    const ScenarioResult result = RunScenario(config);
    EXPECT_EQ(result.video.size(), 3u);
  });
}

TEST(FailureInjection, PluginAssignmentAfterSessionStops) {
  // The OneAPI server pushes an assignment after the session stopped
  // requesting: the plugin accepts it harmlessly.
  FlarePlugin plugin(1);
  plugin.SetAssignedLevel(3);
  plugin.SetAssignedLevel(-5);  // garbage from a confused server
  const Mpd mpd = MakeMpd(SimulationLadderKbps(), 10.0);
  AbrContext context;
  context.mpd = &mpd;
  EXPECT_GE(plugin.NextRepresentation(context), 0);
  EXPECT_LT(plugin.NextRepresentation(context),
            mpd.NumRepresentations());
}

}  // namespace
}  // namespace flare
