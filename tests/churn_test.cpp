// Tests for the session-churn subsystem: engine lifecycle/determinism,
// admission policies, warm-started sweep exactness under flow-set deltas,
// churn-enabled scenarios, and regression tests for the teardown paths
// (greedy timers, UE slot release, connect bookkeeping, mid-run session
// destruction) that used to leak per-flow state.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "abr/bba.h"
#include "churn/admission.h"
#include "churn/session_churn.h"
#include "core/optimizer.h"
#include "has/video_session.h"
#include "lte/gbr_scheduler.h"
#include "lte/pf_scheduler.h"
#include "net/oneapi_multi.h"
#include "obs/metrics.h"
#include "scenario/scenario.h"
#include "sim/simulator.h"
#include "transport/http.h"
#include "transport/transport_host.h"
#include "util/rng.h"

namespace flare {
namespace {

// ---------------------------------------------------------------- engine

/// Records every spawn/destroy with its timestamp; sessions get ids 0..n.
struct ScriptedHost {
  explicit ScriptedHost(Simulator& sim) : sim(sim) {}
  Simulator& sim;
  std::vector<std::string> events;
  int next_id = 0;
  int spawn_result_override = 1;  // < 0 => fail every spawn

  SessionChurnEngine::Host Hooks() {
    SessionChurnEngine::Host host;
    host.spawn = [this](SessionKind kind) {
      std::ostringstream line;
      line << ToSeconds(sim.Now()) << " spawn "
           << (kind == SessionKind::kVideoSession ? 'v' : 'd');
      events.push_back(line.str());
      if (spawn_result_override < 0) return -1;
      return next_id++;
    };
    host.destroy = [this](int id) {
      std::ostringstream line;
      line << ToSeconds(sim.Now()) << " destroy " << id;
      events.push_back(line.str());
    };
    return host;
  }
};

ChurnConfig EngineConfig() {
  ChurnConfig config;
  config.enabled = true;
  config.arrival_rate_per_s = 0.5;
  config.mean_hold_s = 5.0;
  config.data_fraction = 0.3;
  return config;
}

TEST(ChurnEngine, ScheduleIsDeterministicAcrossReruns) {
  std::vector<std::string> first;
  for (int run = 0; run < 2; ++run) {
    Simulator sim;
    ScriptedHost host(sim);
    SessionChurnEngine engine(sim, EngineConfig(), host.Hooks(), Rng(42));
    engine.Start();
    sim.RunUntil(FromSeconds(120.0));
    ASSERT_GT(host.events.size(), 10u);
    if (run == 0) {
      first = host.events;
    } else {
      EXPECT_EQ(first, host.events);
    }
  }
}

TEST(ChurnEngine, LifecycleInvariantsHold) {
  Simulator sim;
  ScriptedHost host(sim);
  SessionChurnEngine engine(sim, EngineConfig(), host.Hooks(), Rng(7));
  engine.Start();
  sim.RunUntil(FromSeconds(200.0));
  EXPECT_GT(engine.arrivals(), 0u);
  EXPECT_GT(engine.departures(), 0u);
  EXPECT_EQ(engine.blocked(), 0u);
  EXPECT_EQ(engine.arrivals(),
            engine.departures() + engine.active());
  EXPECT_EQ(engine.blocking_probability(), 0.0);
  // Both kinds showed up (data_fraction = 0.3).
  bool saw_video = false;
  bool saw_data = false;
  for (const std::string& e : host.events) {
    if (e.find("spawn v") != std::string::npos) saw_video = true;
    if (e.find("spawn d") != std::string::npos) saw_data = true;
  }
  EXPECT_TRUE(saw_video);
  EXPECT_TRUE(saw_data);
}

TEST(ChurnEngine, SynchronousSpawnFailureCountsAsBlocked) {
  Simulator sim;
  ScriptedHost host(sim);
  host.spawn_result_override = -1;
  SessionChurnEngine engine(sim, EngineConfig(), host.Hooks(), Rng(9));
  engine.Start();
  sim.RunUntil(FromSeconds(60.0));
  EXPECT_GT(engine.arrivals(), 0u);
  EXPECT_EQ(engine.blocked(), engine.arrivals());
  EXPECT_EQ(engine.active(), 0u);
  EXPECT_EQ(engine.departures(), 0u);
  EXPECT_EQ(engine.blocking_probability(), 1.0);
  for (const std::string& e : host.events) {
    EXPECT_EQ(e.find("destroy"), std::string::npos) << e;
  }
}

TEST(ChurnEngine, NotifyBlockedForgetsTheSession) {
  Simulator sim;
  ScriptedHost host(sim);
  ChurnConfig config = EngineConfig();
  config.data_fraction = 0.0;
  SessionChurnEngine engine(sim, config, host.Hooks(), Rng(11));
  engine.Start();
  // Step in small increments to catch session 0 right at its arrival,
  // then refuse it post-hoc (the admission path: the connect lands and is
  // rejected shortly after the spawn).
  while (engine.arrivals() == 0 && ToSeconds(sim.Now()) < 60.0) {
    sim.RunUntil(sim.Now() + FromSeconds(0.01));
  }
  ASSERT_GT(engine.active(), 0u);
  engine.NotifyBlocked(0);
  EXPECT_EQ(engine.blocked(), 1u);
  engine.NotifyBlocked(0);  // idempotent
  EXPECT_EQ(engine.blocked(), 1u);
  sim.RunUntil(FromSeconds(120.0));
  // Session 0 was forgotten: its queued departure must not destroy it.
  for (const std::string& e : host.events) {
    EXPECT_EQ(e.find("destroy 0"), std::string::npos) << e;
  }
  EXPECT_EQ(engine.arrivals(),
            engine.departures() + engine.blocked() + engine.active());
}

TEST(ChurnEngine, MaxArrivalsCapsTheRun) {
  Simulator sim;
  ScriptedHost host(sim);
  ChurnConfig config = EngineConfig();
  config.max_arrivals = 5;
  SessionChurnEngine engine(sim, config, host.Hooks(), Rng(3));
  engine.Start();
  sim.RunUntil(FromSeconds(600.0));
  EXPECT_EQ(engine.arrivals(), 5u);
}

TEST(ChurnEngine, LognormalProcessesStayDeterministic) {
  ChurnConfig config = EngineConfig();
  config.arrival_process = ChurnProcess::kLognormal;
  config.hold_process = ChurnProcess::kLognormal;
  config.lognormal_sigma = 1.5;
  std::vector<std::string> first;
  for (int run = 0; run < 2; ++run) {
    Simulator sim;
    ScriptedHost host(sim);
    SessionChurnEngine engine(sim, config, host.Hooks(), Rng(21));
    engine.Start();
    sim.RunUntil(FromSeconds(300.0));
    ASSERT_GT(engine.arrivals(), 0u);
    if (run == 0) {
      first = host.events;
    } else {
      EXPECT_EQ(first, host.events);
    }
  }
}

// ------------------------------------------------------------- admission

OptFlow MakeAdmissionFlow(double bits_per_rb) {
  OptFlow flow;
  flow.ladder_bps = {500'000.0, 1'000'000.0, 2'000'000.0};
  flow.bits_per_rb = bits_per_rb;
  flow.min_level = 0;
  flow.max_level = 2;
  return flow;
}

AdmissionRequest MakeRequest(FlowId id, double rb_rate = 50'000.0) {
  AdmissionRequest request;
  request.flow = id;
  request.candidate = MakeAdmissionFlow(200.0);
  request.n_data_flows = 1;
  request.rb_rate = rb_rate;
  return request;
}

TEST(Admission, AdmitAllAdmitsEverything) {
  AdmissionController controller;
  for (FlowId id = 1; id <= 20; ++id) {
    const AdmissionDecision decision = controller.Decide(MakeRequest(id));
    EXPECT_TRUE(decision.admit);
    controller.OnAdmitted(id, MakeAdmissionFlow(200.0));
  }
  EXPECT_EQ(controller.admitted(), 20u);
  EXPECT_EQ(controller.rejected(), 0u);
  EXPECT_EQ(controller.blocking_probability(), 0.0);
}

TEST(Admission, CapacityThresholdRejectsAtTheKnee) {
  // Floor cost per flow: 500 Kbit/s at 200 bits/RB = 2500 RB/s, which is
  // 5% of the 50k RB/s budget. Threshold 0.2 admits exactly 4 flows.
  AdmissionConfig config;
  config.policy = AdmissionPolicy::kCapacityThreshold;
  config.capacity_threshold = 0.2;
  AdmissionController controller(config);

  for (FlowId id = 1; id <= 4; ++id) {
    const AdmissionDecision decision = controller.Decide(MakeRequest(id));
    EXPECT_TRUE(decision.admit) << "flow " << id;
    controller.OnAdmitted(id, MakeAdmissionFlow(200.0));
  }
  const AdmissionDecision fifth = controller.Decide(MakeRequest(5));
  EXPECT_FALSE(fifth.admit);
  EXPECT_GT(fifth.value, 0.2);
  EXPECT_EQ(controller.rejected(), 1u);
  EXPECT_DOUBLE_EQ(controller.blocking_probability(), 1.0 / 5.0);

  // A departure frees capacity for the next arrival.
  controller.OnDeparted(2);
  EXPECT_TRUE(controller.Decide(MakeRequest(6)).admit);
}

TEST(Admission, DecideIsPureUntilOnAdmitted) {
  AdmissionConfig config;
  config.policy = AdmissionPolicy::kCapacityThreshold;
  config.capacity_threshold = 0.2;
  AdmissionController controller(config);
  const AdmissionDecision a = controller.Decide(MakeRequest(1));
  const AdmissionDecision b = controller.Decide(MakeRequest(1));
  EXPECT_EQ(a.admit, b.admit);
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(controller.admitted_flows(), 0u);
}

TEST(Admission, UtilityDropSolvesWithTheCandidatePinned) {
  AdmissionConfig config;
  config.policy = AdmissionPolicy::kUtilityDrop;
  config.objective_floor = -1e18;  // any feasible solution passes
  AdmissionController controller(config);

  const AdmissionDecision ok = controller.Decide(MakeRequest(1));
  EXPECT_TRUE(ok.admit);
  controller.OnAdmitted(1, MakeAdmissionFlow(200.0));

  // Infeasible budget: even the all-floor assignment does not fit.
  const AdmissionDecision broke = controller.Decide(MakeRequest(2, 100.0));
  EXPECT_FALSE(broke.admit);

  // Feasible but below a demanding floor: rejected on objective.
  AdmissionConfig strict = config;
  strict.objective_floor = 1e18;
  AdmissionController strict_controller(strict);
  EXPECT_FALSE(strict_controller.Decide(MakeRequest(3)).admit);
}

TEST(Admission, EstimateRefreshChangesTheDecision) {
  AdmissionConfig config;
  config.policy = AdmissionPolicy::kCapacityThreshold;
  config.capacity_threshold = 0.2;
  AdmissionController controller(config);
  for (FlowId id = 1; id <= 4; ++id) {
    controller.OnAdmitted(id, MakeAdmissionFlow(200.0));
  }
  EXPECT_FALSE(controller.Decide(MakeRequest(9)).admit);
  // Channels improved: the same set now costs a quarter of the budget it
  // did, so the candidate fits.
  for (FlowId id = 1; id <= 4; ++id) controller.OnEstimate(id, 800.0);
  EXPECT_TRUE(controller.Decide(MakeRequest(9)).admit);
}

// --------------------------------------------- warm-started sweep solver

OptFlow RandomOptFlow(Rng& rng) {
  OptFlow flow;
  const int rungs = rng.UniformInt(2, 7);
  double rate = rng.Uniform(200'000.0, 600'000.0);
  for (int i = 0; i < rungs; ++i) {
    flow.ladder_bps.push_back(rate);
    rate += rng.Uniform(100'000.0, 1'000'000.0);
  }
  flow.bits_per_rb = rng.Uniform(50.0, 600.0);
  flow.min_level = 0;
  flow.max_level = rungs - 1;
  return flow;
}

TEST(IncrementalSweep, WarmEqualsColdAcrossRandomDeltas) {
  Rng rng(123);
  IncrementalSolver solver;
  std::map<FlowId, OptFlow> flows;
  FlowId next_id = 1;
  const double rb_rate = 60'000.0;

  for (int i = 0; i < 30; ++i) {
    flows.emplace(next_id, RandomOptFlow(rng));
    solver.Upsert(next_id, flows.at(next_id));
    ++next_id;
  }

  for (int round = 0; round < 60; ++round) {
    // Random one-flow delta: arrival, departure, or estimate refresh.
    const double move = rng.Uniform();
    if (move < 0.4 || flows.empty()) {
      flows.emplace(next_id, RandomOptFlow(rng));
      solver.Upsert(next_id, flows.at(next_id));
      ++next_id;
    } else if (move < 0.7) {
      auto victim = flows.begin();
      std::advance(victim,
                   rng.UniformInt(0, static_cast<int>(flows.size()) - 1));
      solver.Remove(victim->first);
      flows.erase(victim);
    } else {
      auto target = flows.begin();
      std::advance(target,
                   rng.UniformInt(0, static_cast<int>(flows.size()) - 1));
      target->second.bits_per_rb = rng.Uniform(50.0, 600.0);
      solver.Upsert(target->first, target->second);
    }

    std::vector<FlowId> order;
    OptProblem problem;
    problem.n_data_flows = 2;
    problem.rb_rate = rb_rate;
    for (const auto& [id, flow] : flows) {
      order.push_back(id);
      problem.flows.push_back(flow);
    }
    const OptResult warm = solver.Solve(order, 2, rb_rate);
    const OptResult cold = SolveSweep(problem);
    ASSERT_EQ(warm.levels, cold.levels) << "round " << round;
    ASSERT_EQ(warm.objective, cold.objective) << "round " << round;
    ASSERT_EQ(warm.video_fraction, cold.video_fraction)
        << "round " << round;
    ASSERT_EQ(warm.feasible, cold.feasible) << "round " << round;
  }
}

// ------------------------------------------------------- churn scenarios

TEST(ChurnScenario, FlareChurnReproducesExactly) {
  ScenarioConfig config = TestbedPreset(Scheme::kFlare);
  config.duration_s = 60.0;
  config.n_video = 2;
  config.n_data = 1;
  config.churn.enabled = true;
  config.churn.arrival_rate_per_s = 0.3;
  config.churn.mean_hold_s = 10.0;

  const ScenarioResult a = RunScenario(config);
  const ScenarioResult b = RunScenario(config);
  EXPECT_GT(a.sessions_arrived, 0u);
  EXPECT_GT(a.sessions_departed, 0u);
  EXPECT_FALSE(a.churned.empty());
  EXPECT_LE(a.sessions_departed + a.sessions_blocked, a.sessions_arrived);
  EXPECT_EQ(a.sessions_arrived, b.sessions_arrived);
  EXPECT_EQ(a.sessions_departed, b.sessions_departed);
  EXPECT_EQ(a.sessions_blocked, b.sessions_blocked);
  EXPECT_EQ(a.blocking_probability, b.blocking_probability);
  EXPECT_EQ(a.churned.size(), b.churned.size());
  EXPECT_EQ(a.avg_admitted_qoe, b.avg_admitted_qoe);
  EXPECT_EQ(a.avg_video_bitrate_bps, b.avg_video_bitrate_bps);
}

TEST(ChurnScenario, TightAdmissionBlocksEveryArrival) {
  ScenarioConfig config = TestbedPreset(Scheme::kFlare);
  config.duration_s = 40.0;
  config.n_video = 1;
  config.n_data = 1;
  config.churn.enabled = true;
  config.churn.arrival_rate_per_s = 0.5;
  config.churn.mean_hold_s = 20.0;
  config.churn.admission.policy = AdmissionPolicy::kCapacityThreshold;
  // Far below one session's floor-rung share: nothing can be admitted.
  config.churn.admission.capacity_threshold = 1e-6;

  const ScenarioResult result = RunScenario(config);
  EXPECT_GT(result.sessions_arrived, 0u);
  EXPECT_EQ(result.sessions_blocked, result.sessions_arrived);
  EXPECT_EQ(result.blocking_probability, 1.0);
  EXPECT_TRUE(result.churned.empty());
}

TEST(ChurnScenario, ClientSideSchemeChurnsWithoutAdmission) {
  ScenarioConfig config = TestbedPreset(Scheme::kFestive);
  config.duration_s = 60.0;
  config.n_video = 2;
  config.n_data = 0;
  config.churn.enabled = true;
  config.churn.arrival_rate_per_s = 0.3;
  config.churn.mean_hold_s = 10.0;
  config.churn.data_fraction = 0.25;

  const ScenarioResult result = RunScenario(config);
  EXPECT_GT(result.sessions_arrived, 0u);
  EXPECT_GT(result.sessions_departed, 0u);
  EXPECT_EQ(result.sessions_blocked, 0u);
  EXPECT_FALSE(result.churned.empty());
  // The static population's results are still reported in full.
  EXPECT_EQ(result.video.size(), 2u);
}

TEST(ChurnScenario, WarmSolverMatchesGreedyRungsWithoutChurn) {
  // The solver swap (greedy -> incremental sweep) must not change what a
  // churn-free run decides: with zero arrivals the flow set never
  // changes, and both solvers pick envelope-optimal rungs for the static
  // population.
  ScenarioConfig greedy = TestbedPreset(Scheme::kFlare);
  greedy.duration_s = 30.0;
  ScenarioConfig sweep = greedy;
  sweep.churn.enabled = true;
  sweep.churn.arrival_rate_per_s = 1e-9;  // effectively no arrivals
  sweep.churn.mean_hold_s = 1.0;

  const ScenarioResult a = RunScenario(greedy);
  const ScenarioResult b = RunScenario(sweep);
  ASSERT_EQ(a.video.size(), b.video.size());
  for (std::size_t i = 0; i < a.video.size(); ++i) {
    EXPECT_NEAR(a.video[i].avg_bitrate_bps, b.video[i].avg_bitrate_bps,
                0.05 * a.video[i].avg_bitrate_bps + 1.0)
        << "client " << i;
  }
}

// ------------------------------------------------- teardown regressions

TEST(TeardownRegression, GreedyTimerStopsAfterDestroyFlow) {
  Simulator sim;
  MetricsRegistry registry;
  sim.SetMetrics(&registry);
  Cell cell(sim, std::make_unique<PfScheduler>(), CellConfig{}, Rng(1));
  TransportHost transport(sim, cell);
  const UeId ue = cell.AddUe(std::make_unique<StaticItbsChannel>(7));
  TcpFlow& tcp = transport.CreateFlow(ue, FlowType::kData);
  transport.MakeGreedy(tcp.id());

  sim.RunUntil(FromSeconds(1.0));
  transport.DestroyFlow(tcp.id());
  // Drain the last self-check tick plus any in-flight transport events.
  sim.RunUntil(FromSeconds(3.0));
  const std::uint64_t settled = registry.GetCounter("sim.events").value();
  // A leaked periodic timer would keep firing forever; the fixed chain
  // stops at the first tick that finds the flow gone.
  sim.RunUntil(FromSeconds(60.0));
  EXPECT_EQ(registry.GetCounter("sim.events").value(), settled);
}

TEST(TeardownRegression, PendingConnectBookkeepingStaysBounded) {
  Simulator sim;
  Pcrf pcrf;
  Cell cell(sim, std::make_unique<TwoPhaseGbrScheduler>(), CellConfig{},
            Rng(2));
  const UeId ue = cell.AddUe(std::make_unique<StaticItbsChannel>(7));
  const FlowId flow = cell.AddFlow(ue, FlowType::kVideo);
  OneApiConfig config;
  Pcef pcef(sim, cell, config.downlink_latency);
  OneApiServer server(sim, cell, pcrf, pcef, config);
  const Mpd mpd = MakeMpd(TestbedLadderKbps(), 2.0);
  FlarePlugin plugin(flow);

  // Repeated connect/disconnect churn: the in-flight map never grows.
  for (int i = 0; i < 5; ++i) {
    server.ConnectVideoClient(&plugin, mpd);
    EXPECT_EQ(server.pending_connects(), 1u);
    server.DisconnectVideoClient(flow);
    EXPECT_EQ(server.pending_connects(), 0u);
  }
  sim.RunUntil(FromSeconds(1.0));
  // Every cancelled connect's delayed callback was a no-op.
  EXPECT_FALSE(pcrf.Knows(flow));
  EXPECT_EQ(server.pending_connects(), 0u);

  // A connect left alone lands and clears its own entry.
  server.ConnectVideoClient(&plugin, mpd);
  EXPECT_EQ(server.pending_connects(), 1u);
  sim.RunUntil(sim.Now() + FromSeconds(1.0));
  EXPECT_EQ(server.pending_connects(), 0u);
  EXPECT_TRUE(pcrf.Knows(flow));
}

TEST(TeardownRegression, ReleaseUeGuardsAndReusesSlots) {
  Simulator sim;
  Cell cell(sim, std::make_unique<PfScheduler>(), CellConfig{}, Rng(3));
  const UeId a = cell.AddUe(std::make_unique<StaticItbsChannel>(7));
  const UeId b = cell.AddUe(std::make_unique<StaticItbsChannel>(7));
  ASSERT_NE(a, b);
  EXPECT_EQ(cell.NumActiveUes(), 2u);

  const FlowId flow = cell.AddFlow(a, FlowType::kVideo);
  // A UE with flows attached must not be released out from under them.
  EXPECT_THROW(cell.ReleaseUe(a), std::invalid_argument);
  cell.RemoveFlow(flow);
  cell.ReleaseUe(a);
  EXPECT_EQ(cell.NumActiveUes(), 1u);
  // The released slot is fenced off...
  EXPECT_THROW(cell.AddFlow(a, FlowType::kVideo), std::out_of_range);
  EXPECT_THROW(cell.UeItbs(a), std::out_of_range);
  EXPECT_THROW(cell.ReleaseUe(a), std::invalid_argument);
  // ...until AddUe recycles it instead of growing the table.
  const UeId c = cell.AddUe(std::make_unique<StaticItbsChannel>(9));
  EXPECT_EQ(c, a);
  EXPECT_EQ(cell.NumActiveUes(), 2u);
  cell.Start();
  sim.RunUntil(FromSeconds(0.1));  // TTI loop skips released slots
}

TEST(TeardownRegression, VideoSessionSafeToDestroyMidDownload) {
  Simulator sim;
  Cell cell(sim, std::make_unique<PfScheduler>(), CellConfig{}, Rng(4));
  TransportHost transport(sim, cell);
  const UeId ue = cell.AddUe(std::make_unique<StaticItbsChannel>(7));
  TcpFlow& tcp = transport.CreateFlow(ue, FlowType::kVideo);
  const FlowId flow = tcp.id();
  auto http = std::make_unique<HttpClient>(sim, tcp);
  const Mpd mpd = MakeMpd(TestbedLadderKbps(), 2.0);
  auto session = std::make_unique<VideoSession>(
      sim, *http, mpd, std::make_unique<BbaAbr>(), VideoSessionConfig{});

  cell.Start();
  session->Start(FromSeconds(0.1));
  sim.RunUntil(FromSeconds(2.5));  // mid-download, events in flight

  // Teardown in dependency order while pump/uplink/completion callbacks
  // are still queued; the liveness guards must turn them into no-ops
  // (ASan verifies nothing dangles).
  session.reset();
  http.reset();
  transport.DestroyFlow(flow);
  cell.ReleaseUe(ue);
  sim.RunUntil(FromSeconds(10.0));
  EXPECT_FALSE(transport.Has(flow));
}

TEST(ChurnMultiCell, ArrivalDuringHandoverIsAdmitted) {
  Simulator sim;
  Pcrf pcrf;
  OneApiConfig config;
  config.bai = FromSeconds(1.0);
  OneApiMultiServer server(sim, pcrf, config);

  auto make_cell = [&sim](std::uint64_t seed) {
    auto cell = std::make_unique<Cell>(
        sim, std::make_unique<TwoPhaseGbrScheduler>(), CellConfig{},
        Rng(seed));
    cell->AddUe(std::make_unique<StaticItbsChannel>(10));
    return cell;
  };
  auto cell_a = make_cell(1);
  auto cell_b = make_cell(2);
  const CellId a = server.AddCell(*cell_a);
  const CellId b = server.AddCell(*cell_b);

  AdmissionController admission;  // admit-all
  server.SetAdmissionController(b, &admission);
  std::vector<std::pair<FlowId, bool>> outcomes;
  server.SetAdmissionCallback([&outcomes](FlowId flow, bool admitted) {
    outcomes.emplace_back(flow, admitted);
  });

  const Mpd mpd = MakeMpd(SimulationLadderKbps(), 10.0);
  // Session 1 streams through cell A...
  const FlowId flow1 = cell_a->AddFlow(0, FlowType::kVideo);
  FlarePlugin plugin1(flow1);
  server.ConnectVideoClient(a, &plugin1, mpd);
  sim.RunUntil(FromSeconds(0.5));
  ASSERT_EQ(server.OwnerCell(flow1), a);

  // ...starts a handover into cell B, and while that connect is still in
  // flight a brand-new session arrives in B.
  const FlowId flow1_b = cell_b->AddFlow(0, FlowType::kVideo);
  FlarePlugin plugin1_b(flow1_b);
  server.ConnectVideoClient(b, &plugin1_b, mpd);
  const FlowId flow2 = cell_b->AddFlow(0, FlowType::kVideo);
  FlarePlugin plugin2(flow2);
  server.ConnectVideoClient(b, &plugin2, mpd);
  EXPECT_EQ(server.cell_server(b).pending_connects(), 2u);

  sim.RunUntil(FromSeconds(1.0));
  EXPECT_EQ(server.cell_server(b).pending_connects(), 0u);
  // Both the migrating session and the mid-handover arrival were admitted
  // into B's admission set.
  EXPECT_EQ(admission.admitted_flows(), 2u);
  EXPECT_EQ(server.OwnerCell(flow2), b);
  bool saw_flow2 = false;
  for (const auto& [flow, admitted] : outcomes) {
    EXPECT_TRUE(admitted);
    if (flow == flow2) saw_flow2 = true;
  }
  EXPECT_TRUE(saw_flow2);
}

}  // namespace
}  // namespace flare
