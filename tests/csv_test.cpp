// Tests for the CSV writer used by every bench binary.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/csv.h"
#include "util/logging.h"

namespace flare {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(CsvWriter, WritesHeaderAndRows) {
  const std::string path = TempPath("flare_csv_basic.csv");
  {
    CsvWriter csv(path, {"a", "b", "c"});
    ASSERT_TRUE(csv.ok());
    csv.Row({1.0, 2.5, 3.0});
    csv.Row({4.0, 5.0, 6.0});
  }
  EXPECT_EQ(ReadAll(path), "a,b,c\n1,2.5,3\n4,5,6\n");
  std::remove(path.c_str());
}

TEST(CsvWriter, RawRowsMixWithNumericRows) {
  const std::string path = TempPath("flare_csv_raw.csv");
  {
    CsvWriter csv(path, {"scheme", "value"});
    csv.RawRow({"FLARE", "1.5"});
    csv.Row({2.0, 3.0});
  }
  EXPECT_EQ(ReadAll(path), "scheme,value\nFLARE,1.5\n2,3\n");
  std::remove(path.c_str());
}

TEST(CsvWriter, UnopenablePathDisarmsQuietly) {
  // Capture the warning instead of spamming stderr.
  Logger& logger = Logger::Instance();
  LogSink old_sink = logger.SetSink([](LogLevel, const std::string&) {});
  CsvWriter csv("/nonexistent_dir_xyz/out.csv", {"a"});
  EXPECT_FALSE(csv.ok());
  EXPECT_NO_THROW(csv.Row({1.0}));
  EXPECT_NO_THROW(csv.RawRow({"x"}));
  logger.SetSink(std::move(old_sink));
}

TEST(CsvWriter, WidthMismatchWarnsButWrites) {
  Logger& logger = Logger::Instance();
  const LogLevel previous = logger.level();
  logger.set_level(LogLevel::kWarn);
  int warnings = 0;
  LogSink old_sink = logger.SetSink(
      [&warnings](LogLevel, const std::string&) { ++warnings; });
  const std::string path = TempPath("flare_csv_width.csv");
  {
    CsvWriter csv(path, {"a", "b"});
    csv.Row({1.0});  // too narrow
  }
  EXPECT_EQ(warnings, 1);
  EXPECT_EQ(ReadAll(path), "a,b\n1\n");
  logger.SetSink(std::move(old_sink));
  logger.set_level(previous);
  std::remove(path.c_str());
}

TEST(FormatNumber, SignificantDigits) {
  EXPECT_EQ(FormatNumber(1234567.0), "1.23457e+06");
  EXPECT_EQ(FormatNumber(0.000125), "0.000125");
  EXPECT_EQ(FormatNumber(-3.5), "-3.5");
  EXPECT_EQ(FormatNumber(0.0), "0");
}

}  // namespace
}  // namespace flare
