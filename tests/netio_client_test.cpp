// Hardening tests for the blocking HTTP client (src/netio/http_client):
// hung and dribbling peers must fail within the caller's deadline, and
// a server that resets the connection after the final byte must not
// fail a response we already hold. Each test stands up a raw loopback
// socket so the misbehaviour is exact — no HTTP server in the loop.
#include "netio/http_client.h"

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

namespace flare {
namespace {

using Clock = std::chrono::steady_clock;

double ElapsedMs(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// GoogleTest ASSERT_* only works in void functions; setup code in
// constructors needs hard aborts, so use a check that works anywhere.
void CheckOrAbort(bool ok, const char* expr) {
  if (!ok) {
    std::fprintf(stderr, "RawServer setup failed: %s\n", expr);
    std::abort();
  }
}
#define CHECK_OR_ABORT(expr) CheckOrAbort((expr), #expr)

/// A loopback listener that accepts connections but speaks no HTTP —
/// each test decides what (if anything) the accepted socket does.
class RawServer {
 public:
  RawServer() {
    listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    CHECK_OR_ABORT(listen_fd_ >= 0);
    const int one = 1;
    setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;  // ephemeral
    CHECK_OR_ABORT(bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)) == 0);
    CHECK_OR_ABORT(listen(listen_fd_, 4) == 0);
    socklen_t len = sizeof(addr);
    CHECK_OR_ABORT(getsockname(listen_fd_,
                               reinterpret_cast<sockaddr*>(&addr),
                               &len) == 0);
    port_ = ntohs(addr.sin_port);
  }
  ~RawServer() {
    CloseAccepted();
    if (listen_fd_ >= 0) close(listen_fd_);
  }

  std::uint16_t port() const { return port_; }
  int accepted_fd() const { return accepted_fd_; }

  /// Block until a client connects; keeps the socket open and silent.
  int Accept() {
    accepted_fd_ = accept(listen_fd_, nullptr, nullptr);
    return accepted_fd_;
  }

  void CloseAccepted() {
    if (accepted_fd_ >= 0) close(accepted_fd_);
    accepted_fd_ = -1;
  }

  /// Close the accepted socket with an RST (SO_LINGER timeout 0) rather
  /// than an orderly FIN — the client sees ECONNRESET, not EOF.
  void ResetAccepted() {
    if (accepted_fd_ < 0) return;
    linger lg{};
    lg.l_onoff = 1;
    lg.l_linger = 0;
    setsockopt(accepted_fd_, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
    close(accepted_fd_);
    accepted_fd_ = -1;
  }

  void Send(const std::string& data) {
    CHECK_OR_ABORT(send(accepted_fd_, data.data(), data.size(),
                        MSG_NOSIGNAL) ==
                   static_cast<ssize_t>(data.size()));
  }

  /// Send that tolerates the client having hung up (returns false) —
  /// for peers deliberately outliving the client's deadline.
  bool TrySend(const std::string& data) {
    return send(accepted_fd_, data.data(), data.size(), MSG_NOSIGNAL) ==
           static_cast<ssize_t>(data.size());
  }

 private:
  int listen_fd_ = -1;
  int accepted_fd_ = -1;
  std::uint16_t port_ = 0;
};

TEST(NetioClientTest, HungServerFailsWithinDeadline) {
  RawServer server;
  std::thread accepter([&] { server.Accept(); });
  HttpResponse response;
  const auto start = Clock::now();
  // The server accepts but never sends a byte: HttpGet must give up at
  // its deadline, not hang on recv.
  EXPECT_FALSE(
      HttpGet("127.0.0.1", server.port(), "/metrics", &response, 200));
  const double elapsed = ElapsedMs(start);
  EXPECT_GE(elapsed, 150.0);
  EXPECT_LT(elapsed, 5000.0);  // far below the old indefinite block
  accepter.join();
}

TEST(NetioClientTest, HungServerBoundsHttpTailOpen) {
  RawServer server;
  std::thread accepter([&] { server.Accept(); });
  HttpTail tail;
  const auto start = Clock::now();
  EXPECT_FALSE(tail.Open("127.0.0.1", server.port(), "/events", 200));
  EXPECT_LT(ElapsedMs(start), 5000.0);
  accepter.join();
}

TEST(NetioClientTest, DribblingServerSharesOneDeadline) {
  RawServer server;
  std::thread dribbler([&] {
    server.Accept();
    // One byte per poll wakeup: under the old per-read timeout this
    // stream could stall Open() forever; with a single deadline per
    // call it must fail once the budget is spent.
    const std::string head = "HTTP/1.1 200 OK\r\n";
    for (char c : head) {
      // The client is expected to give up mid-dribble; a failed send
      // just means it already hung up.
      if (!server.TrySend(std::string(1, c))) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    // Never send the blank line terminating the header block.
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    server.CloseAccepted();
  });
  HttpTail tail;
  const auto start = Clock::now();
  EXPECT_FALSE(tail.Open("127.0.0.1", server.port(), "/events", 250));
  EXPECT_LT(ElapsedMs(start), 2000.0);
  dribbler.join();
}

TEST(NetioClientTest, ResetAfterFullResponseStillParses) {
  RawServer server;
  std::thread responder([&] {
    server.Accept();
    // Drain the request so the RST cannot clobber unread inbound data.
    char buf[1024];
    (void)recv(server.accepted_fd(), buf, sizeof(buf), 0);
    server.Send(
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\n"
        "Content-Length: 2\r\n\r\nok");
    // Give the client a beat to pull the bytes off loopback before the
    // reset lands.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    server.ResetAccepted();
  });
  HttpResponse response;
  EXPECT_TRUE(
      HttpGet("127.0.0.1", server.port(), "/healthz", &response, 2000));
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "ok");
  responder.join();
}

TEST(NetioClientTest, ConnectionRefusedFailsFast) {
  // Port 1 on loopback refuses immediately — the non-blocking connect
  // must surface the error, not report a live fd.
  HttpResponse response;
  const auto start = Clock::now();
  EXPECT_FALSE(HttpGet("127.0.0.1", 1, "/metrics", &response, 1000));
  EXPECT_LT(ElapsedMs(start), 1000.0);
}

}  // namespace
}  // namespace flare
