// Golden-trace regression harness: short, fully deterministic reference
// scenarios whose BAI trace CSVs are checked in under tests/golden/. A
// fresh run must reproduce the stored bytes exactly; any drift in the
// scheduler, solver, transport or trace formatting fails with a diff-able
// artifact instead of a silent behaviour change.
//
// When a change *intentionally* alters the traces, regenerate with
//   FLARE_REGEN_GOLDEN=1 ./build/tests/golden_trace_test
// and commit the updated CSVs after reviewing the diff.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/bai_trace.h"
#include "scenario/scenario.h"

#ifndef FLARE_GOLDEN_DIR
#error "FLARE_GOLDEN_DIR must point at tests/golden (set by CMake)"
#endif

namespace flare {
namespace {

bool RegenRequested() {
  const char* env = std::getenv("FLARE_REGEN_GOLDEN");
  return env != nullptr && env[0] != '\0' && std::string(env) != "0";
}

std::string GoldenPath(const std::string& name) {
  return std::string(FLARE_GOLDEN_DIR) + "/" + name;
}

/// Run `config` with a trace sink attached and return the trace CSV.
std::string TraceCsv(ScenarioConfig config) {
  BaiTraceSink trace;
  config.bai_trace = &trace;
  // Golden bytes must not depend on solver wall clock.
  config.oneapi.deterministic_timing = true;
  RunScenario(config);
  std::ostringstream out;
  trace.WriteCsv(out);
  return out.str();
}

void CheckAgainstGolden(const std::string& name, const std::string& fresh) {
  const std::string path = GoldenPath(name);
  if (RegenRequested()) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << fresh;
    ASSERT_TRUE(out.good()) << "short write to " << path;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good())
      << path << " missing — run with FLARE_REGEN_GOLDEN=1 to create it";
  std::ostringstream stored;
  stored << in.rdbuf();
  // One EXPECT_EQ over the whole file: gtest prints the first differing
  // line, which names the BAI where behaviour drifted.
  EXPECT_EQ(stored.str(), fresh)
      << "trace drift vs " << path
      << " (regenerate with FLARE_REGEN_GOLDEN=1 if intentional)";
}

// Figure 6 shape: the static testbed scenario, FLARE scheme — 3 FLARE
// players + 1 greedy data flow on the two-phase GBR scheduler, shortened
// to 30 s (enough BAIs to cover ramp-up, hysteresis adoption and steady
// state).
TEST(GoldenTrace, TestbedStaticFlare) {
  ScenarioConfig config = TestbedPreset(Scheme::kFlare);
  config.duration_s = 30.0;
  config.seed = 1;
  CheckAgainstGolden("fig6_testbed_flare.csv", TraceCsv(config));
}

// Figure 10 shape: coexistence — FLARE players sharing the cell with
// conventional (FESTIVE) players serviced as plain data traffic.
TEST(GoldenTrace, TestbedCoexistenceConventional) {
  ScenarioConfig config = TestbedPreset(Scheme::kFlare);
  config.duration_s = 30.0;
  config.seed = 1;
  config.n_conventional = 2;
  CheckAgainstGolden("fig10_coexistence.csv", TraceCsv(config));
}

// The relaxed-solver variant exercises the continuous-relaxation path
// (Figure 8's subject) through the same golden mechanism. A richer cell
// than the default testbed knob: at iTbs 6 the cell pins every flow at
// the floor rung and the two solvers coincide; at iTbs 15 the rungs climb
// and the relaxation's round-down behaviour is actually on the record.
TEST(GoldenTrace, TestbedStaticFlareRelaxed) {
  ScenarioConfig config = TestbedPreset(Scheme::kFlareRelaxed);
  config.duration_s = 30.0;
  config.seed = 1;
  config.static_itbs = 15;
  CheckAgainstGolden("fig8_testbed_flare_relaxed.csv", TraceCsv(config));
}

}  // namespace
}  // namespace flare
