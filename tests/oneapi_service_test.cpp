// Tests for the networked OneAPI control plane (src/svc): the frame
// layer's incremental parser, the live OneApiService against real
// loopback sockets — including the acceptance bar that assignments seen
// on the wire are byte-identical to an in-process OneApiServer run over
// the same schedule — typed overload rejects, bounded-outbox drops for
// slow clients, and the deterministic load generator.
#include <gtest/gtest.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <atomic>
#include <cstdio>

#include "churn/admission.h"
#include "has/mpd.h"
#include "obs/flight_recorder.h"
#include "util/json.h"
#include "lte/cell.h"
#include "lte/gbr_scheduler.h"
#include "lte/tbs_table.h"
#include "net/flare_plugin.h"
#include "net/messages.h"
#include "net/oneapi_server.h"
#include "net/pcef.h"
#include "net/pcrf.h"
#include "netio/http_client.h"
#include "obs/bai_trace.h"
#include "sim/simulator.h"
#include "svc/frame.h"
#include "svc/loadgen.h"
#include "svc/oneapi_service.h"
#include "util/rng.h"

namespace flare {
namespace {

using Clock = std::chrono::steady_clock;

// ---------------------------------------------------------------------
// Frame layer
// ---------------------------------------------------------------------

TEST(Frame, RoundTripsCoalescedFrames) {
  std::string buffer;
  AppendFrame(FrameType::kClientInfo, "type=client_info;flow=1", &buffer);
  AppendFrame(FrameType::kBye, "", &buffer);
  AppendFrame(FrameType::kAssignment, "payload", &buffer);
  Frame frame;
  ASSERT_EQ(ParseFrame(&buffer, &frame), FrameParseStatus::kFrame);
  EXPECT_EQ(frame.type, FrameType::kClientInfo);
  EXPECT_EQ(frame.payload, "type=client_info;flow=1");
  ASSERT_EQ(ParseFrame(&buffer, &frame), FrameParseStatus::kFrame);
  EXPECT_EQ(frame.type, FrameType::kBye);
  EXPECT_TRUE(frame.payload.empty());
  ASSERT_EQ(ParseFrame(&buffer, &frame), FrameParseStatus::kFrame);
  EXPECT_EQ(frame.type, FrameType::kAssignment);
  EXPECT_EQ(frame.payload, "payload");
  EXPECT_EQ(ParseFrame(&buffer, &frame), FrameParseStatus::kNeedMore);
  EXPECT_TRUE(buffer.empty());
}

TEST(Frame, ParsesByteByByteArrival) {
  const std::string wire =
      EncodeFrame(FrameType::kStatsReport, "type=stats_report;flow=2");
  std::string buffer;
  Frame frame;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    buffer.push_back(wire[i]);
    ASSERT_EQ(ParseFrame(&buffer, &frame), FrameParseStatus::kNeedMore)
        << "premature frame after " << (i + 1) << " bytes";
  }
  buffer.push_back(wire.back());
  ASSERT_EQ(ParseFrame(&buffer, &frame), FrameParseStatus::kFrame);
  EXPECT_EQ(frame.type, FrameType::kStatsReport);
  EXPECT_EQ(frame.payload, "type=stats_report;flow=2");
}

TEST(Frame, RejectsMalformedStreams) {
  Frame frame;
  // Zero length: a frame always carries at least the type byte.
  std::string zero("\x00\x00\x00\x00", 4);
  EXPECT_EQ(ParseFrame(&zero, &frame), FrameParseStatus::kError);
  // Oversized length.
  std::string big;
  const std::uint32_t huge = kMaxFramePayload + 2;
  for (int i = 0; i < 4; ++i) {
    big.push_back(static_cast<char>((huge >> (8 * i)) & 0xff));
  }
  EXPECT_EQ(ParseFrame(&big, &frame), FrameParseStatus::kError);
  // Unknown type byte.
  std::string bad_type("\x01\x00\x00\x00\x7f", 5);
  EXPECT_EQ(ParseFrame(&bad_type, &frame), FrameParseStatus::kError);
  // kError must leave the buffer untouched (caller drops the peer).
  EXPECT_EQ(bad_type.size(), 5u);
}

TEST(Frame, GarbageNeverCrashesParser) {
  Rng rng(99);
  for (int trial = 0; trial < 300; ++trial) {
    std::string buffer;
    const int len = static_cast<int>(rng.UniformInt(0, 64));
    for (int i = 0; i < len; ++i) {
      buffer.push_back(static_cast<char>(rng.UniformInt(0, 255)));
    }
    Frame frame;
    // Drain until the parser wants more bytes or poisons the stream.
    for (int steps = 0; steps < 100; ++steps) {
      const FrameParseStatus status = ParseFrame(&buffer, &frame);
      if (status != FrameParseStatus::kFrame) break;
    }
  }
}

TEST(Frame, WelcomeAndOverloadPayloadsRoundTrip) {
  EXPECT_EQ(DecodeWelcome(EncodeWelcome(77)).value_or(0), 77u);
  EXPECT_FALSE(DecodeWelcome("flow=abc").has_value());
  OverloadInfo info;
  info.reason = "admission";
  info.policy = "capacity-threshold";
  info.value = 0.95;
  const auto decoded = DecodeOverload(EncodeOverload(info));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->reason, "admission");
  EXPECT_EQ(decoded->policy, "capacity-threshold");
  EXPECT_DOUBLE_EQ(decoded->value, 0.95);
  EXPECT_FALSE(DecodeOverload("").has_value());
}

// ---------------------------------------------------------------------
// A minimal blocking protocol client for driving the live service.
// ---------------------------------------------------------------------

class TestClient {
 public:
  ~TestClient() { Close(); }

  bool Connect(std::uint16_t port, int timeout_ms = 2000) {
    fd_ = BlockingConnect("127.0.0.1", port, timeout_ms);
    return fd_ >= 0;
  }

  bool SendFrame(FrameType type, const std::string& payload,
                 const TraceContext* trace = nullptr) {
    return SendRaw(EncodeFrame(type, payload, trace));
  }

  /// Send pre-built wire bytes (lets tests hand-craft extension frames).
  bool SendRaw(const std::string& wire) {
    std::size_t off = 0;
    const auto deadline = Clock::now() + std::chrono::seconds(2);
    while (off < wire.size()) {
      pollfd pfd{fd_, POLLOUT, 0};
      if (poll(&pfd, 1, RemainingMs(deadline)) <= 0) return false;
      const ssize_t n =
          send(fd_, wire.data() + off, wire.size() - off, MSG_NOSIGNAL);
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK ||
                    errno == EINTR)) {
        continue;
      }
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  std::optional<Frame> ReadFrame(int timeout_ms = 2000) {
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(timeout_ms);
    Frame frame;
    for (;;) {
      const FrameParseStatus status = ParseFrame(&buffer_, &frame);
      if (status == FrameParseStatus::kFrame) return frame;
      if (status == FrameParseStatus::kError) return std::nullopt;
      pollfd pfd{fd_, POLLIN, 0};
      if (poll(&pfd, 1, RemainingMs(deadline)) <= 0) return std::nullopt;
      char buf[4096];
      const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK ||
                    errno == EINTR)) {
        continue;
      }
      if (n <= 0) return std::nullopt;
      buffer_.append(buf, static_cast<std::size_t>(n));
    }
  }

  void Close() {
    if (fd_ >= 0) close(fd_);
    fd_ = -1;
  }

 private:
  static int RemainingMs(Clock::time_point deadline) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          deadline - Clock::now())
                          .count();
    return left > 0 ? static_cast<int>(left) : 0;
  }

  int fd_ = -1;
  std::string buffer_;
};

/// Spin until `predicate` holds (the IO thread owns the state) or the
/// timeout expires; returns the final predicate value.
template <typename Pred>
bool WaitFor(Pred predicate, int timeout_ms = 2000) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (!predicate()) {
    if (Clock::now() >= deadline) return predicate();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

// ---------------------------------------------------------------------
// Wire vs in-process equivalence (the acceptance bar)
// ---------------------------------------------------------------------

TEST(OneApiService, WireAssignmentsMatchInProcessServer) {
  // Reference: the in-simulator OneApiServer over three video flows with
  // distinct static channels. The cell is never started, so every BAI
  // observes the idle-flow fallback — the channel's nominal bits-per-RB —
  // which the wire clients below reproduce exactly as stats reports
  // (tx_bytes = e, rbs = 8 => e_u = e).
  constexpr int kBais = 6;
  const std::vector<int> kItbs = {6, 9, 12};
  const Mpd mpd = MakeMpd(SimulationLadderKbps(), 10.0);

  Simulator sim;
  Cell cell(sim, std::make_unique<TwoPhaseGbrScheduler>(), CellConfig{},
            Rng(1));
  Pcrf pcrf;
  Pcef pcef(sim, cell, 0);
  OneApiConfig config;
  config.uplink_latency = 0;
  config.downlink_latency = 0;
  config.deterministic_timing = true;
  config.params = OneApiServiceOptions::BatchedParams();
  OneApiServer server(sim, cell, pcrf, pcef, config);
  BaiTraceSink sink;
  server.SetObservers(nullptr, &sink);

  std::vector<FlowId> flows;
  std::vector<std::unique_ptr<FlarePlugin>> plugins;
  std::vector<std::string> info_wires;
  for (int itbs : kItbs) {
    const UeId ue = cell.AddUe(std::make_unique<StaticItbsChannel>(itbs));
    const FlowId flow = cell.AddFlow(ue, FlowType::kVideo);
    flows.push_back(flow);
    plugins.push_back(std::make_unique<FlarePlugin>(flow));
    info_wires.push_back(
        EncodeClientInfo(plugins.back()->BuildClientInfo(mpd)));
    server.ConnectVideoClient(plugins.back().get(), mpd);
  }
  sim.RunUntil(kMillisecond);  // land the zero-latency registrations
  for (int i = 0; i < kBais; ++i) server.RunBai();
  ASSERT_EQ(sink.bai_rows().size(),
            static_cast<std::size_t>(kBais) * flows.size());

  // Wire: the standalone service with the identical controller
  // parameters, driven tick by tick. Every client sends the exact
  // ClientInfo bytes the reference plugins sent.
  OneApiServiceOptions options;
  options.bai_ms = 0;  // ticks only via TriggerTick
  options.num_rbs = cell.num_rbs();
  options.deterministic_timing = true;
  OneApiService service(options);
  ASSERT_TRUE(service.Start());

  std::vector<std::unique_ptr<TestClient>> clients;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    clients.push_back(std::make_unique<TestClient>());
    ASSERT_TRUE(clients.back()->Connect(service.port()));
    ASSERT_TRUE(
        clients.back()->SendFrame(FrameType::kClientInfo, info_wires[i]));
    const auto welcome = clients.back()->ReadFrame();
    ASSERT_TRUE(welcome.has_value());
    ASSERT_EQ(welcome->type, FrameType::kWelcome);
    EXPECT_EQ(DecodeWelcome(welcome->payload).value_or(0), flows[i]);
  }

  // One reference BAI at a time: stats in, tick, one assignment out per
  // flow, compared byte-for-byte against the re-encoded trace row.
  for (int bai = 0; bai < kBais; ++bai) {
    for (std::size_t i = 0; i < flows.size(); ++i) {
      FlowStatsReport report;
      report.flow = flows[i];
      report.type = FlowType::kVideo;
      report.tx_bytes =
          static_cast<std::uint64_t>(TbsBitsPerPrb(kItbs[i]));
      report.rbs = 8;
      ASSERT_TRUE(clients[i]->SendFrame(FrameType::kStatsReport,
                                        EncodeStatsReport(report)));
    }
    const std::uint64_t want =
        static_cast<std::uint64_t>(flows.size()) *
        static_cast<std::uint64_t>(bai + 1);
    ASSERT_TRUE(WaitFor([&] { return service.stats_received() >= want; }))
        << "stats did not land before tick " << bai;
    service.TriggerTick();
    for (std::size_t i = 0; i < flows.size(); ++i) {
      const auto frame = clients[i]->ReadFrame();
      ASSERT_TRUE(frame.has_value()) << "no assignment, bai " << bai;
      ASSERT_EQ(frame->type, FrameType::kAssignment);
      const BaiTraceRow& row =
          sink.bai_rows()[static_cast<std::size_t>(bai) * flows.size() + i];
      ASSERT_EQ(row.flow, flows[i]);
      RateAssignmentMsg msg;
      msg.flow = row.flow;
      msg.level = row.enforced_level;
      msg.rate_bps = row.rate_bps;
      msg.gbr_bps = row.gbr_bps;
      EXPECT_EQ(frame->payload, EncodeRateAssignment(msg))
          << "wire assignment diverged from in-process run at bai " << bai
          << " flow " << flows[i];
    }
  }

  for (auto& client : clients) {
    EXPECT_TRUE(client->SendFrame(FrameType::kBye, ""));
  }
  EXPECT_TRUE(WaitFor([&] { return service.sessions() == 0; }));
  EXPECT_EQ(service.assignments_dropped(), 0u);
  service.Stop();
}

// ---------------------------------------------------------------------
// Overload behaviour
// ---------------------------------------------------------------------

ClientInfo BasicInfo(FlowId flow) {
  ClientInfo info;
  info.flow = flow;
  info.ladder_bps = {100e3, 250e3, 500e3};
  return info;
}

TEST(OneApiService, SessionLimitSendsTypedOverload) {
  OneApiServiceOptions options;
  options.bai_ms = 0;
  options.max_sessions = 1;
  OneApiService service(options);
  ASSERT_TRUE(service.Start());

  TestClient first;
  ASSERT_TRUE(first.Connect(service.port()));
  ASSERT_TRUE(first.SendFrame(FrameType::kClientInfo,
                              EncodeClientInfo(BasicInfo(1))));
  const auto welcome = first.ReadFrame();
  ASSERT_TRUE(welcome.has_value());
  EXPECT_EQ(welcome->type, FrameType::kWelcome);

  TestClient second;
  ASSERT_TRUE(second.Connect(service.port()));
  ASSERT_TRUE(second.SendFrame(FrameType::kClientInfo,
                               EncodeClientInfo(BasicInfo(2))));
  const auto reject = second.ReadFrame();
  ASSERT_TRUE(reject.has_value());
  ASSERT_EQ(reject->type, FrameType::kOverload);
  const auto info = DecodeOverload(reject->payload);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->reason, "session_limit");
  EXPECT_DOUBLE_EQ(info->value, 1.0);
  // The rejected stream then closes server-side.
  EXPECT_FALSE(second.ReadFrame(500).has_value());

  EXPECT_TRUE(WaitFor([&] { return service.overload_rejects() == 1; }));
  EXPECT_EQ(service.sessions(), 1u);
  const MetricsSnapshot snapshot = service.SnapshotMetrics();
  EXPECT_EQ(snapshot.counters.at("svc.oneapi.overload_rejects"), 1u);
  EXPECT_GT(snapshot.gauges.at("svc.oneapi.blocking_rate"), 0.0);
  service.Stop();
}

TEST(OneApiService, AdmissionRejectNamesPolicyOnWire) {
  OneApiServiceOptions options;
  options.bai_ms = 0;
  options.admission.policy = AdmissionPolicy::kCapacityThreshold;
  // One floor-rung flow at the default 100 bits-per-RB estimate projects
  // an RB fraction of 100e3/100/50000 = 0.02, above this threshold: every
  // arrival is rejected by policy, never by the hard session cap.
  options.admission.capacity_threshold = 0.01;
  OneApiService service(options);
  ASSERT_TRUE(service.Start());

  TestClient client;
  ASSERT_TRUE(client.Connect(service.port()));
  ASSERT_TRUE(client.SendFrame(FrameType::kClientInfo,
                               EncodeClientInfo(BasicInfo(5))));
  const auto reject = client.ReadFrame();
  ASSERT_TRUE(reject.has_value());
  ASSERT_EQ(reject->type, FrameType::kOverload);
  const auto info = DecodeOverload(reject->payload);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->reason, "admission");
  EXPECT_EQ(info->policy, "capacity-threshold");
  EXPECT_GT(info->value, 0.0);  // the offending projected RB fraction

  EXPECT_TRUE(WaitFor([&] { return service.admission_rejects() == 1; }));
  EXPECT_EQ(service.sessions(), 0u);
  service.Stop();
}

TEST(OneApiService, MalformedFrameGetsTypedRejectAndClose) {
  OneApiServiceOptions options;
  options.bai_ms = 0;
  OneApiService service(options);
  ASSERT_TRUE(service.Start());

  TestClient client;
  ASSERT_TRUE(client.Connect(service.port()));
  ASSERT_TRUE(client.SendFrame(FrameType::kClientInfo, "not a message"));
  const auto reject = client.ReadFrame();
  ASSERT_TRUE(reject.has_value());
  ASSERT_EQ(reject->type, FrameType::kOverload);
  const auto info = DecodeOverload(reject->payload);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->reason, "malformed");
  EXPECT_FALSE(client.ReadFrame(500).has_value());  // closed
  service.Stop();
}

// ---------------------------------------------------------------------
// Slow clients lose frames, not the tick
// ---------------------------------------------------------------------

TEST(OneApiService, SlowClientDropsAssignmentsInsteadOfStallingTick) {
  OneApiServiceOptions options;
  options.bai_ms = 0;
  // Tiny kernel send buffer + tiny outbox cap: a non-reading client
  // saturates quickly and further assignment frames must be dropped.
  options.send_buffer_bytes = 2048;
  options.connection_buffer_limit = 2048;
  OneApiService service(options);
  ASSERT_TRUE(service.Start());

  TestClient slow;
  ASSERT_TRUE(slow.Connect(service.port()));
  ASSERT_TRUE(slow.SendFrame(FrameType::kClientInfo,
                             EncodeClientInfo(BasicInfo(3))));
  ASSERT_TRUE(slow.ReadFrame().has_value());  // welcome
  FlowStatsReport report;
  report.flow = 3;
  report.type = FlowType::kVideo;
  report.tx_bytes = 160;
  report.rbs = 8;
  ASSERT_TRUE(slow.SendFrame(FrameType::kStatsReport,
                             EncodeStatsReport(report)));
  ASSERT_TRUE(WaitFor([&] { return service.stats_received() >= 1; }));

  // The client now stops reading. Ticks keep producing assignments; once
  // the kernel buffer and the bounded outbox fill, drops must start —
  // and each TriggerTick still completes promptly (it round-trips the IO
  // thread, so a stalled tick would hang this very loop).
  bool dropped = false;
  for (int tick = 0; tick < 5000 && !dropped; ++tick) {
    service.TriggerTick();
    dropped = service.assignments_dropped() > 0;
  }
  EXPECT_TRUE(dropped);
  EXPECT_GT(service.assignments_sent(), 0u);
  // The session itself survives — load shedding, not eviction.
  EXPECT_EQ(service.sessions(), 1u);
  service.Stop();
}

// ---------------------------------------------------------------------
// Request tracing (PR 10)
// ---------------------------------------------------------------------

std::string SendStats(TestClient* client, FlowId flow,
                      const TraceContext* ctx) {
  FlowStatsReport report;
  report.flow = flow;
  report.type = FlowType::kVideo;
  report.tx_bytes = 160;
  report.rbs = 8;
  const std::string payload = EncodeStatsReport(report);
  EXPECT_TRUE(client->SendFrame(FrameType::kStatsReport, payload, ctx));
  return payload;
}

TEST(OneApiService, TracedRunEchoesEachContextOnceAndExportsSpans) {
  const std::string trace_path =
      testing::TempDir() + "/oneapid_trace_test.json";
  OneApiServiceOptions options;
  options.bai_ms = 0;
  options.trace_json = trace_path;
  options.trace.exemplar_k = 2;
  options.trace.exemplar_window_ticks = 2;
  FlightRecorder flight;
  options.flight_recorder = &flight;
  OneApiService service(options);
  ASSERT_TRUE(service.Start());

  TestClient client;
  ASSERT_TRUE(client.Connect(service.port()));
  ASSERT_TRUE(client.SendFrame(FrameType::kClientInfo,
                               EncodeClientInfo(BasicInfo(21))));
  ASSERT_TRUE(client.ReadFrame().has_value());  // welcome

  constexpr int kRounds = 5;
  std::vector<std::uint64_t> sent_ids;
  for (int round = 0; round < kRounds; ++round) {
    TraceContext ctx;
    ctx.trace_id = 0xabc0u + static_cast<std::uint64_t>(round);
    ctx.client_send_us = 1000 + round;
    sent_ids.push_back(ctx.trace_id);
    SendStats(&client, 21, &ctx);
    ASSERT_TRUE(WaitFor(
        [&] { return service.stats_received() >= static_cast<std::uint64_t>(
                         round + 1); }));
    service.TriggerTick();
    const auto frame = client.ReadFrame();
    ASSERT_TRUE(frame.has_value()) << "no assignment, round " << round;
    ASSERT_EQ(frame->type, FrameType::kAssignment);
    // The assignment answering a traced report carries the echo with the
    // server stamps in receive->transmit order.
    ASSERT_TRUE(frame->trace.has_value());
    EXPECT_EQ(frame->trace->trace_id, ctx.trace_id);
    EXPECT_EQ(frame->trace->client_send_us, ctx.client_send_us);
    EXPECT_GT(frame->trace->server_recv_us, 0);
    EXPECT_GE(frame->trace->server_send_us, frame->trace->server_recv_us);
  }

  // A tick with no fresh traced report produces a legacy assignment: the
  // context was consumed by the frame that answered it.
  service.TriggerTick();
  const auto untraced = client.ReadFrame();
  ASSERT_TRUE(untraced.has_value());
  ASSERT_EQ(untraced->type, FrameType::kAssignment);
  EXPECT_FALSE(untraced->trace.has_value());

  ASSERT_TRUE(WaitFor([&] {
    return service.traced_requests() >= static_cast<std::uint64_t>(kRounds);
  }));
  EXPECT_TRUE(client.SendFrame(FrameType::kBye, ""));
  EXPECT_TRUE(WaitFor([&] { return service.sessions() == 0; }));
  service.Stop();

  const MetricsSnapshot snapshot = service.SnapshotMetrics();
  EXPECT_EQ(snapshot.counters.at("svc.oneapi.trace.requests"),
            static_cast<std::uint64_t>(kRounds));
  EXPECT_EQ(snapshot.counters.count("svc.oneapi.trace.superseded"), 0u);
  // Stage quantile gauges refreshed at tick edges.
  EXPECT_GT(snapshot.gauges.at("svc.oneapi.stage.solve.p99_us"), 0.0);
  EXPECT_TRUE(snapshot.gauges.count("svc.oneapi.stage.queue_wait.p99_us"));
  EXPECT_TRUE(snapshot.gauges.count("svc.oneapi.stage.outbox_drain.p50_us"));

  // The exported Perfetto JSON: every sent trace id appears on exactly
  // one request span, and each request's stage spans are in pipeline
  // order (events are ts-sorted at export).
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJsonFile(trace_path, &doc, &error)) << error;
  const JsonValue* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::map<std::string, int> request_ids;
  int stage_rank = -1;
  static const std::map<std::string, int> kStageRank = {
      {"recv", 0},  {"parse", 1},  {"queue_wait", 2},
      {"solve", 3}, {"encode", 4}, {"outbox_drain", 5}};
  for (const JsonValue& event : events->items()) {
    const JsonValue* ph = event.Find("ph");
    if (ph == nullptr || ph->AsString() != "X") continue;
    const std::string name = event.Find("name")->AsString();
    const std::string cat = event.Find("cat")->AsString();
    if (name == "request" && cat == "svc") {
      const JsonValue* args = event.Find("args");
      ASSERT_NE(args, nullptr);
      request_ids[args->Find("trace")->AsString()]++;
      for (const char* phase :
           {"recv_us", "parse_us", "queue_wait_us", "solve_us", "encode_us",
            "outbox_drain_us", "total_us"}) {
        EXPECT_GE(args->Find(phase)->AsNumber(), 0.0) << phase;
      }
      EXPECT_FALSE(args->Find("cause")->AsString().empty());
    } else if (cat == "svc.stage") {
      // Stage spans are ts-ordered; within one request (which starts at
      // "recv" — the protocol is ping-pong, so requests never overlap)
      // the rank must strictly advance through the pipeline.
      const int rank = kStageRank.at(name);
      if (rank == 0) {
        stage_rank = 0;
      } else {
        EXPECT_EQ(rank, stage_rank + 1) << "out-of-order stage " << name;
        stage_rank = rank;
      }
    }
  }
  EXPECT_EQ(request_ids.size(), static_cast<std::size_t>(kRounds));
  for (std::uint64_t id : sent_ids) {
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(id));
    EXPECT_EQ(request_ids[hex], 1) << "trace id " << hex;
  }
  std::remove(trace_path.c_str());
}

TEST(OneApiService, UnknownExtBytesCountedAndEchoWorksWithoutTracer) {
  // Server-side tracing OFF: a traced client still gets its context
  // echoed (the echo lives in the session, not the tracer), and unknown
  // ext keys are tolerated + counted rather than poisoning the stream.
  OneApiServiceOptions options;
  options.bai_ms = 0;
  OneApiService service(options);
  ASSERT_TRUE(service.Start());

  TestClient client;
  ASSERT_TRUE(client.Connect(service.port()));
  ASSERT_TRUE(client.SendFrame(FrameType::kClientInfo,
                               EncodeClientInfo(BasicInfo(9))));
  ASSERT_TRUE(client.ReadFrame().has_value());  // welcome

  // Hand-built extension frame with an unknown future key riding along.
  FlowStatsReport report;
  report.flow = 9;
  report.type = FlowType::kVideo;
  report.tx_bytes = 160;
  report.rbs = 8;
  std::string body = EncodeStatsReport(report);
  body.push_back('\0');
  body += "trace=00000000000000a9;ts=777;future=42";
  std::string wire;
  const std::uint32_t length = static_cast<std::uint32_t>(body.size()) + 1;
  for (int i = 0; i < 4; ++i) {
    wire.push_back(static_cast<char>((length >> (8 * i)) & 0xff));
  }
  wire.push_back(static_cast<char>(
      static_cast<std::uint8_t>(FrameType::kStatsReport) | kFrameTraceExtBit));
  wire += body;
  ASSERT_TRUE(client.SendRaw(wire));
  ASSERT_TRUE(WaitFor([&] { return service.stats_received() >= 1; }));

  service.TriggerTick();
  const auto frame = client.ReadFrame();
  ASSERT_TRUE(frame.has_value());
  ASSERT_EQ(frame->type, FrameType::kAssignment);
  ASSERT_TRUE(frame->trace.has_value());
  EXPECT_EQ(frame->trace->trace_id, 0xa9u);
  EXPECT_EQ(frame->trace->client_send_us, 777);
  EXPECT_GT(frame->trace->server_recv_us, 0);
  EXPECT_GE(frame->trace->server_send_us, frame->trace->server_recv_us);

  const MetricsSnapshot snapshot = service.SnapshotMetrics();
  EXPECT_EQ(snapshot.counters.at("svc.oneapi.frames_with_unknown_ext"), 1u);
  EXPECT_EQ(service.traced_requests(), 0u);  // tracing off
  service.Stop();
}

TEST(OneApiService, ConcurrentScrapeWhileTracingIsClean) {
  // TSan target: the metrics plane (SnapshotMetrics) and the atomic
  // traced_requests counter are read from this thread while the IO
  // thread traces requests.
  const std::string trace_path =
      testing::TempDir() + "/oneapid_trace_scrape.json";
  OneApiServiceOptions options;
  options.bai_ms = 0;
  options.trace_json = trace_path;
  OneApiService service(options);
  ASSERT_TRUE(service.Start());

  TestClient client;
  ASSERT_TRUE(client.Connect(service.port()));
  ASSERT_TRUE(client.SendFrame(FrameType::kClientInfo,
                               EncodeClientInfo(BasicInfo(4))));
  ASSERT_TRUE(client.ReadFrame().has_value());  // welcome

  std::atomic<bool> done{false};
  std::thread scraper([&] {
    std::uint64_t scrapes = 0;
    while (!done.load(std::memory_order_relaxed)) {
      const MetricsSnapshot snapshot = service.SnapshotMetrics();
      (void)snapshot.counters.size();
      (void)service.traced_requests();
      ++scrapes;
    }
    EXPECT_GT(scrapes, 0u);
  });

  for (int round = 0; round < 50; ++round) {
    TraceContext ctx;
    ctx.trace_id = 0x5000u + static_cast<std::uint64_t>(round);
    ctx.client_send_us = round;
    SendStats(&client, 4, &ctx);
    ASSERT_TRUE(WaitFor(
        [&] { return service.stats_received() > static_cast<std::uint64_t>(
                         round); }));
    service.TriggerTick();
    const auto frame = client.ReadFrame();
    ASSERT_TRUE(frame.has_value());
    ASSERT_EQ(frame->type, FrameType::kAssignment);
  }
  done.store(true, std::memory_order_relaxed);
  scraper.join();

  EXPECT_TRUE(WaitFor([&] { return service.traced_requests() >= 50; }));
  service.Stop();
  std::remove(trace_path.c_str());
}

// ---------------------------------------------------------------------
// Load generator
// ---------------------------------------------------------------------

TEST(LoadGen, ScheduleIsDeterministicPerSeed) {
  LoadGenOptions options;
  options.sessions = 40;
  options.seed = 7;
  const LoadGenerator a(options);
  const LoadGenerator b(options);
  const auto schedule_a = a.BuildSchedule();
  const auto schedule_b = b.BuildSchedule();
  ASSERT_EQ(schedule_a.size(), schedule_b.size());
  EXPECT_EQ(schedule_a.size(), 2u * options.sessions);  // arrival + departure
  for (std::size_t i = 0; i < schedule_a.size(); ++i) {
    EXPECT_DOUBLE_EQ(schedule_a[i].t_s, schedule_b[i].t_s);
    EXPECT_EQ(schedule_a[i].arrival, schedule_b[i].arrival);
    EXPECT_EQ(schedule_a[i].session, schedule_b[i].session);
  }
  options.seed = 8;
  const auto schedule_c = LoadGenerator(options).BuildSchedule();
  bool differs = schedule_c.size() != schedule_a.size();
  for (std::size_t i = 0; !differs && i < schedule_a.size(); ++i) {
    differs = schedule_a[i].t_s != schedule_c[i].t_s;
  }
  EXPECT_TRUE(differs);
}

TEST(LoadGen, ChurnedRunAgainstLiveServiceCompletes) {
  OneApiServiceOptions service_options;
  service_options.bai_ms = 20;
  OneApiService service(service_options);
  ASSERT_TRUE(service.Start());

  LoadGenOptions options;
  options.port = service.port();
  options.sessions = 12;
  options.arrival_rate_per_s = 40.0;
  options.mean_hold_s = 0.3;
  options.seed = 3;
  options.time_scale = 2.0;
  options.max_wall_s = 30.0;
  LoadGenerator generator(options);
  const LoadGenResult result = generator.Run();

  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.attempted, options.sessions);
  EXPECT_EQ(result.admitted + result.blocked, options.sessions);
  EXPECT_EQ(result.blocked, 0u);  // admit-all default
  EXPECT_EQ(result.connect_failures, 0u);
  EXPECT_EQ(result.protocol_errors, 0u);
  EXPECT_EQ(result.departed, result.admitted);

  // The SLO gauges flare_report watches must be present in the export.
  MetricsRegistry registry;
  result.ExportTo(&registry);
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_TRUE(snapshot.gauges.count("svc.oneapi.assign_turnaround.p99_us"));
  EXPECT_TRUE(snapshot.gauges.count("svc.oneapi.blocking_rate"));
  if (result.assignments > 0) {
    EXPECT_GT(
        snapshot.gauges.at("svc.oneapi.assign_turnaround.p99_us"), 0.0);
    EXPECT_GE(result.turnaround_p99_us, result.turnaround_p50_us);
  }
  service.Stop();
  EXPECT_GT(service.bais(), 0u);
}

TEST(LoadGen, TracedRunProducesMergeableClientSpans) {
  const std::string server_trace =
      testing::TempDir() + "/loadgen_server_trace.json";
  const std::string client_trace =
      testing::TempDir() + "/loadgen_client_trace.json";
  OneApiServiceOptions service_options;
  service_options.bai_ms = 20;
  service_options.trace_json = server_trace;
  OneApiService service(service_options);
  ASSERT_TRUE(service.Start());

  LoadGenOptions options;
  options.port = service.port();
  options.sessions = 8;
  options.arrival_rate_per_s = 40.0;
  options.mean_hold_s = 0.3;
  options.seed = 5;
  options.time_scale = 2.0;
  options.max_wall_s = 30.0;
  options.trace = true;
  options.trace_json = client_trace;
  LoadGenerator generator(options);
  const LoadGenResult result = generator.Run();
  service.Stop();

  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.trace_mismatches, 0u);
  if (result.assignments > 0) {
    EXPECT_GT(result.traced, 0u);
    EXPECT_LE(result.traced, result.assignments);
  }
  // Both span files parse; client request spans carry the echoed server
  // stamps a merger needs for clock alignment.
  for (const std::string& path : {server_trace, client_trace}) {
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(ParseJsonFile(path, &doc, &error)) << path << ": " << error;
    ASSERT_NE(doc.Find("traceEvents"), nullptr) << path;
  }
  JsonValue client_doc;
  ASSERT_TRUE(ParseJsonFile(client_trace, &client_doc, nullptr));
  int echoed = 0;
  for (const JsonValue& event : client_doc.Find("traceEvents")->items()) {
    const JsonValue* cat = event.Find("cat");
    if (cat == nullptr || cat->AsString() != "client") continue;
    const JsonValue* args = event.Find("args");
    ASSERT_NE(args, nullptr);
    if (args->Find("srx_us")->AsNumber() > 0.0) {
      ++echoed;
      EXPECT_GE(args->Find("stx_us")->AsNumber(),
                args->Find("srx_us")->AsNumber());
      EXPECT_GT(args->Find("turnaround_us")->AsNumber(), 0.0);
    }
  }
  EXPECT_EQ(echoed, static_cast<int>(result.traced));
  std::remove(server_trace.c_str());
  std::remove(client_trace.c_str());
}

}  // namespace
}  // namespace flare
