// Tests for src/util: statistics, CSV formatting, config, logging, RNG.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "util/config.h"
#include "util/csv.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/time.h"

namespace flare {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squares = 32.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.Add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Cdf, QuantilesInterpolate) {
  Cdf cdf;
  for (int i = 1; i <= 100; ++i) cdf.Add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(1.0), 100.0);
  EXPECT_NEAR(cdf.Quantile(0.5), 50.5, 1e-9);
}

TEST(Cdf, FractionBelow) {
  Cdf cdf;
  cdf.AddAll({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.FractionBelow(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.FractionBelow(2.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.FractionBelow(10.0), 1.0);
}

TEST(Cdf, CurveIsMonotone) {
  Cdf cdf;
  for (int i = 0; i < 50; ++i) cdf.Add(std::sin(i) * 10.0);
  const auto curve = cdf.Curve(11);
  ASSERT_EQ(curve.size(), 11u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].first, curve[i - 1].first);
    EXPECT_GT(curve[i].second, curve[i - 1].second);
  }
}

TEST(Cdf, EmptyCdfIsSafe) {
  Cdf cdf;
  EXPECT_EQ(cdf.Quantile(0.5), 0.0);
  EXPECT_EQ(cdf.Mean(), 0.0);
  EXPECT_TRUE(cdf.Curve(5).empty());
}

TEST(JainIndex, EqualSharesGiveOne) {
  EXPECT_DOUBLE_EQ(JainIndex({5.0, 5.0, 5.0, 5.0}), 1.0);
}

TEST(JainIndex, SingleUserHogging) {
  // One of n users with everything: index = 1/n.
  EXPECT_NEAR(JainIndex({1.0, 0.0, 0.0, 0.0}), 0.25, 1e-12);
}

TEST(JainIndex, EmptyAndZeroAreOne) {
  EXPECT_DOUBLE_EQ(JainIndex({}), 1.0);
  EXPECT_DOUBLE_EQ(JainIndex({0.0, 0.0}), 1.0);
}

TEST(HarmonicMean, MatchesHandComputation) {
  // HM(1, 2, 4) = 3 / (1 + 0.5 + 0.25) = 12/7.
  EXPECT_NEAR(HarmonicMean({1.0, 2.0, 4.0}), 12.0 / 7.0, 1e-12);
}

TEST(HarmonicMean, IgnoresNonPositive) {
  EXPECT_NEAR(HarmonicMean({0.0, -3.0, 2.0, 2.0}), 2.0, 1e-12);
  EXPECT_EQ(HarmonicMean({0.0, -1.0}), 0.0);
  EXPECT_EQ(HarmonicMean({}), 0.0);
}

TEST(Rng, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(Rng, ForkedStreamsDiffer) {
  Rng parent(7);
  Rng a = parent.Fork(1);
  Rng b = parent.Fork(2);
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.Uniform() == b.Uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(99);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.UniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == 0;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(TimeHelpers, RoundTrip) {
  EXPECT_EQ(FromSeconds(1.5), 1'500'000);
  EXPECT_DOUBLE_EQ(ToSeconds(FromSeconds(2.25)), 2.25);
  EXPECT_EQ(FromMilliseconds(3.0), 3 * kMillisecond);
  EXPECT_EQ(kTti, kMillisecond);
}

TEST(FormatNumber, CompactOutput) {
  EXPECT_EQ(FormatNumber(1.0), "1");
  EXPECT_EQ(FormatNumber(0.5), "0.5");
  EXPECT_EQ(FormatNumber(123456), "123456");
}

TEST(Config, ParsesKeyValueArgs) {
  const char* argv_c[] = {"prog", "runs=5", "duration_s=12.5",
                          "flag=true"};
  Config config = Config::FromArgs(4, const_cast<char**>(argv_c));
  EXPECT_EQ(config.GetInt("runs", 0), 5);
  EXPECT_DOUBLE_EQ(config.GetDouble("duration_s", 0.0), 12.5);
  EXPECT_TRUE(config.GetBool("flag", false));
  EXPECT_EQ(config.GetInt("missing", 42), 42);
}

TEST(Config, EnvironmentFallback) {
  ::setenv("FLARE_TESTKEY", "17", 1);
  Config config;
  EXPECT_EQ(config.GetInt("testkey", 0), 17);
  ::unsetenv("FLARE_TESTKEY");
  EXPECT_EQ(config.GetInt("testkey", 3), 3);
}

TEST(Config, ExplicitValueBeatsEnvironment) {
  ::setenv("FLARE_TESTKEY2", "17", 1);
  Config config;
  config.Set("testkey2", "4");
  EXPECT_EQ(config.GetInt("testkey2", 0), 4);
  ::unsetenv("FLARE_TESTKEY2");
}

TEST(Logging, RespectsLevel) {
  Logger& logger = Logger::Instance();
  const LogLevel previous = logger.level();
  int hits = 0;
  LogSink old_sink = logger.SetSink(
      [&hits](LogLevel, const std::string&) { ++hits; });
  logger.set_level(LogLevel::kWarn);
  FLOG_DEBUG << "hidden";
  FLOG_WARN << "visible";
  FLOG_ERROR << "visible too";
  EXPECT_EQ(hits, 2);
  logger.SetSink(std::move(old_sink));
  logger.set_level(previous);
}

}  // namespace
}  // namespace flare
