// Tests for the coordination layer: PCRF, PCEF, FLARE plugin, and the
// OneAPI server's BAI loop over a live cell.
#include <gtest/gtest.h>

#include "lte/cell.h"
#include "lte/gbr_scheduler.h"
#include "net/flare_plugin.h"
#include "net/oneapi_server.h"
#include "net/pcef.h"
#include "net/pcrf.h"
#include "sim/simulator.h"

namespace flare {
namespace {

TEST(Pcrf, RegistryCountsByType) {
  Pcrf pcrf;
  pcrf.RegisterFlow(1, FlowType::kVideo);
  pcrf.RegisterFlow(2, FlowType::kData);
  pcrf.RegisterFlow(3, FlowType::kData);
  EXPECT_EQ(pcrf.CountFlows(FlowType::kVideo), 1);
  EXPECT_EQ(pcrf.CountFlows(FlowType::kData), 2);
  EXPECT_TRUE(pcrf.Knows(2));
  pcrf.DeregisterFlow(2);
  EXPECT_EQ(pcrf.CountFlows(FlowType::kData), 1);
  EXPECT_FALSE(pcrf.Knows(2));
}

TEST(Pcrf, ReRegisteringChangesType) {
  Pcrf pcrf;
  pcrf.RegisterFlow(1, FlowType::kVideo);
  pcrf.RegisterFlow(1, FlowType::kData);
  EXPECT_EQ(pcrf.CountFlows(FlowType::kVideo), 0);
  EXPECT_EQ(pcrf.CountFlows(FlowType::kData), 1);
}

TEST(Pcrf, CellScopedCounts) {
  Pcrf pcrf;
  pcrf.RegisterFlow(1, FlowType::kData, /*cell=*/0);
  pcrf.RegisterFlow(1, FlowType::kVideo, /*cell=*/1);  // same id, new cell
  pcrf.RegisterFlow(2, FlowType::kData, /*cell=*/1);
  EXPECT_EQ(pcrf.CountFlows(FlowType::kData, 0), 1);
  EXPECT_EQ(pcrf.CountFlows(FlowType::kData, 1), 1);
  EXPECT_EQ(pcrf.CountFlows(FlowType::kVideo, 1), 1);
  EXPECT_EQ(pcrf.CountFlowsAllCells(FlowType::kData), 2);
  EXPECT_TRUE(pcrf.Knows(1, 1));
  EXPECT_FALSE(pcrf.Knows(2, 0));
  pcrf.DeregisterFlow(1, 1);
  EXPECT_EQ(pcrf.CountFlows(FlowType::kVideo, 1), 0);
  EXPECT_EQ(pcrf.CountFlows(FlowType::kData, 0), 1);  // untouched
}

struct ControlNet {
  Simulator sim;
  Cell cell;
  ControlNet()
      : cell(sim, std::make_unique<TwoPhaseGbrScheduler>(), CellConfig{},
             Rng(1)) {}
};

TEST(Pcef, EnforcesGbrAfterLatency) {
  ControlNet net;
  const UeId ue = net.cell.AddUe(std::make_unique<StaticItbsChannel>(7));
  const FlowId flow = net.cell.AddFlow(ue, FlowType::kVideo);
  Pcef pcef(net.sim, net.cell, 20 * kMillisecond);
  pcef.EnforceGbr(flow, 1.5e6);
  EXPECT_DOUBLE_EQ(net.cell.flow(flow).gbr_bps, 0.0);  // not yet
  net.sim.RunUntil(30 * kMillisecond);
  EXPECT_DOUBLE_EQ(net.cell.flow(flow).gbr_bps, 1.5e6);
}

TEST(Pcef, SkipsRemovedFlows) {
  ControlNet net;
  const UeId ue = net.cell.AddUe(std::make_unique<StaticItbsChannel>(7));
  const FlowId flow = net.cell.AddFlow(ue, FlowType::kVideo);
  Pcef pcef(net.sim, net.cell, 20 * kMillisecond);
  pcef.EnforceGbr(flow, 1.5e6);
  net.cell.RemoveFlow(flow);
  EXPECT_NO_THROW(net.sim.RunUntil(50 * kMillisecond));
}

TEST(FlarePlugin, RequestsAssignedLevel) {
  const Mpd mpd = MakeMpd(SimulationLadderKbps(), 10.0);
  FlarePlugin plugin(7);
  AbrContext c;
  c.mpd = &mpd;
  EXPECT_EQ(plugin.NextRepresentation(c), 0);  // pre-assignment default
  plugin.SetAssignedLevel(4);
  EXPECT_EQ(plugin.NextRepresentation(c), 4);
  plugin.SetAssignedLevel(99);
  EXPECT_EQ(plugin.NextRepresentation(c), 5);  // clamped to ladder top
}

TEST(FlarePlugin, ClientCapBindsLocally) {
  const Mpd mpd = MakeMpd(SimulationLadderKbps(), 10.0);
  FlarePlugin plugin(7);
  plugin.SetMaxLevel(2);
  plugin.SetAssignedLevel(5);
  AbrContext c;
  c.mpd = &mpd;
  EXPECT_EQ(plugin.NextRepresentation(c), 2);
}

TEST(FlarePlugin, ClientInfoStripsIdentity) {
  const Mpd mpd = MakeMpd({100, 200}, 4.0, 600.0, "top-secret-title");
  FlarePlugin plugin(3);
  plugin.SetMaxLevel(1);
  const ClientInfo info = plugin.BuildClientInfo(mpd);
  EXPECT_EQ(info.flow, 3u);
  EXPECT_EQ(info.ladder_bps.size(), 2u);
  EXPECT_EQ(info.max_level, 1);
  // ClientInfo deliberately has no title/duration fields; the assertion
  // here is structural: only bitrates and opt-in constraints cross.
  EXPECT_FALSE(info.utility.has_value());
}

struct ServerFixture {
  Simulator sim;
  Cell cell;
  Pcrf pcrf;
  Pcef pcef;
  OneApiConfig config;
  ServerFixture()
      : cell(sim, std::make_unique<TwoPhaseGbrScheduler>(), CellConfig{},
             Rng(1)),
        pcef(sim, cell, 10 * kMillisecond) {}
  OneApiServer MakeServer() {
    return OneApiServer(sim, cell, pcrf, pcef, config);
  }
};

TEST(OneApiServer, RegistersClientAfterUplinkLatency) {
  ServerFixture f;
  OneApiServer server = f.MakeServer();
  const UeId ue = f.cell.AddUe(std::make_unique<StaticItbsChannel>(7));
  const FlowId flow = f.cell.AddFlow(ue, FlowType::kVideo);
  FlarePlugin plugin(flow);
  const Mpd mpd = MakeMpd(SimulationLadderKbps(), 10.0);
  server.ConnectVideoClient(&plugin, mpd);
  EXPECT_FALSE(server.controller().HasFlow(flow));
  f.sim.RunUntil(50 * kMillisecond);
  EXPECT_TRUE(server.controller().HasFlow(flow));
  EXPECT_EQ(f.pcrf.CountFlows(FlowType::kVideo), 1);
}

TEST(OneApiServer, BaiAssignsRatesAndEnforcesBothSides) {
  ServerFixture f;
  f.config.bai = FromSeconds(1.0);
  OneApiServer server = f.MakeServer();
  const UeId ue = f.cell.AddUe(std::make_unique<StaticItbsChannel>(7));
  const FlowId flow = f.cell.AddFlow(ue, FlowType::kVideo);
  FlarePlugin plugin(flow);
  const Mpd mpd = MakeMpd(SimulationLadderKbps(), 10.0);
  server.ConnectVideoClient(&plugin, mpd);
  server.Start();
  f.cell.Start();
  f.sim.RunUntil(FromSeconds(1.2));

  // First BAI at t=1 s: lowest rung assigned, GBR set with headroom.
  ASSERT_TRUE(plugin.assigned_level().has_value());
  EXPECT_EQ(*plugin.assigned_level(), 0);
  EXPECT_NEAR(f.cell.flow(flow).gbr_bps, 100e3 * f.config.gbr_headroom,
              1.0);
  EXPECT_EQ(server.solve_times_ms().size(), 1u);
}

TEST(OneApiServer, LevelsClimbOverBais) {
  ServerFixture f;
  f.config.bai = FromSeconds(1.0);
  f.config.params.delta = 1;
  OneApiServer server = f.MakeServer();
  const UeId ue = f.cell.AddUe(std::make_unique<StaticItbsChannel>(7));
  const FlowId flow = f.cell.AddFlow(ue, FlowType::kVideo);
  FlarePlugin plugin(flow);
  const Mpd mpd = MakeMpd(SimulationLadderKbps(), 10.0);
  server.ConnectVideoClient(&plugin, mpd);
  server.Start();
  f.cell.Start();
  // Keep the flow busy so the trace window has realistic e_u samples.
  f.sim.Every(FromSeconds(0.1), FromSeconds(0.1),
              [&] { f.cell.Enqueue(flow, 20'000); });
  f.sim.RunUntil(FromSeconds(30.0));
  EXPECT_GE(server.controller().CurrentLevel(flow), 3);
  EXPECT_EQ(server.solve_times_ms().size(), 30u);
  EXPECT_EQ(server.video_fractions().size(), 30u);
}

TEST(OneApiServer, DisconnectRemovesFlow) {
  ServerFixture f;
  OneApiServer server = f.MakeServer();
  const UeId ue = f.cell.AddUe(std::make_unique<StaticItbsChannel>(7));
  const FlowId flow = f.cell.AddFlow(ue, FlowType::kVideo);
  FlarePlugin plugin(flow);
  server.ConnectVideoClient(&plugin,
                            MakeMpd(SimulationLadderKbps(), 10.0));
  f.sim.RunUntil(FromSeconds(0.1));
  server.DisconnectVideoClient(flow);
  EXPECT_FALSE(server.controller().HasFlow(flow));
  EXPECT_EQ(f.pcrf.CountFlows(FlowType::kVideo), 0);
  EXPECT_NO_THROW(server.RunBai());
}

// Regression: a disconnect issued while the delayed connect callback was
// still in flight used to be overwritten — the callback re-registered the
// flow with the controller and PCRF, leaving a ghost entry pointing at a
// possibly-destroyed plugin.
TEST(OneApiServer, DisconnectDuringConnectLatencyWins) {
  ServerFixture f;
  OneApiServer server = f.MakeServer();
  const UeId ue = f.cell.AddUe(std::make_unique<StaticItbsChannel>(7));
  const FlowId flow = f.cell.AddFlow(ue, FlowType::kVideo);
  FlarePlugin plugin(flow);
  server.ConnectVideoClient(&plugin,
                            MakeMpd(SimulationLadderKbps(), 10.0));
  // Disconnect inside the 20 ms uplink-latency window, before the delayed
  // registration callback has fired.
  f.sim.RunUntil(5 * kMillisecond);
  server.DisconnectVideoClient(flow);
  f.sim.RunUntil(FromSeconds(1.0));
  EXPECT_FALSE(server.controller().HasFlow(flow));
  EXPECT_EQ(f.pcrf.CountFlows(FlowType::kVideo), 0);
  EXPECT_NO_THROW(server.RunBai());
}

// A reconnect issued after a same-window disconnect must still land: only
// the stale in-flight registration is cancelled, not the newer one.
TEST(OneApiServer, ReconnectAfterRacedDisconnectStillRegisters) {
  ServerFixture f;
  OneApiServer server = f.MakeServer();
  const UeId ue = f.cell.AddUe(std::make_unique<StaticItbsChannel>(7));
  const FlowId flow = f.cell.AddFlow(ue, FlowType::kVideo);
  FlarePlugin plugin(flow);
  const Mpd mpd = MakeMpd(SimulationLadderKbps(), 10.0);
  server.ConnectVideoClient(&plugin, mpd);
  f.sim.RunUntil(5 * kMillisecond);
  server.DisconnectVideoClient(flow);
  server.ConnectVideoClient(&plugin, mpd);
  f.sim.RunUntil(FromSeconds(1.0));
  EXPECT_TRUE(server.controller().HasFlow(flow));
  EXPECT_EQ(f.pcrf.CountFlows(FlowType::kVideo), 1);
}

TEST(OneApiServer, DataFlowCountReachesOptimizer) {
  // With many data flows the first assignments should stay low even after
  // several BAIs (log term holds video back on a small cell).
  ServerFixture f;
  f.config.bai = FromSeconds(1.0);
  f.config.params.delta = 1;
  f.config.params.alpha = 4.0;
  OneApiServer server = f.MakeServer();
  const UeId ue = f.cell.AddUe(std::make_unique<StaticItbsChannel>(2));
  const FlowId flow = f.cell.AddFlow(ue, FlowType::kVideo);
  FlarePlugin plugin(flow);
  server.ConnectVideoClient(&plugin,
                            MakeMpd(SimulationLadderKbps(), 10.0));
  for (FlowId d = 100; d < 108; ++d) {
    f.pcrf.RegisterFlow(d, FlowType::kData);
  }
  server.Start();
  f.cell.Start();
  f.sim.RunUntil(FromSeconds(20.0));
  // 1.6 Mbit/s cell, 8 data flows, alpha 4: video must sit near the floor.
  EXPECT_LE(server.controller().CurrentLevel(flow), 1);
}

TEST(OneApiServer, SkimmingClientPinnedToMinimumBitrate) {
  ServerFixture f;
  f.config.bai = FromSeconds(1.0);
  f.config.params.delta = 1;
  OneApiServer server = f.MakeServer();
  const UeId ue = f.cell.AddUe(std::make_unique<StaticItbsChannel>(7));
  const FlowId flow = f.cell.AddFlow(ue, FlowType::kVideo);
  FlarePlugin plugin(flow);
  const Mpd mpd = MakeMpd(SimulationLadderKbps(), 10.0);
  server.ConnectVideoClient(&plugin, mpd);
  server.Start();
  f.cell.Start();
  f.sim.Every(FromSeconds(0.1), FromSeconds(0.1),
              [&] { f.cell.Enqueue(flow, 20'000); });
  f.sim.RunUntil(FromSeconds(15.0));
  const int before = server.controller().CurrentLevel(flow);
  EXPECT_GE(before, 2);  // climbed while watching normally

  // The viewer starts skimming (frequent seeks); the client shares its
  // clickstream state and the server pins the flow to the lowest rung.
  plugin.SetSkimming(true);
  server.UpdateClientInfo(flow, plugin.BuildClientInfo(mpd));
  f.sim.RunUntil(FromSeconds(18.0));
  EXPECT_EQ(server.controller().CurrentLevel(flow), 0);

  // Normal viewing resumes: the flow climbs again.
  plugin.SetSkimming(false);
  server.UpdateClientInfo(flow, plugin.BuildClientInfo(mpd));
  f.sim.RunUntil(FromSeconds(40.0));
  EXPECT_GE(server.controller().CurrentLevel(flow), 2);
}

TEST(OneApiServer, MidSessionCostCapApplies) {
  ServerFixture f;
  f.config.bai = FromSeconds(1.0);
  f.config.params.delta = 1;
  OneApiServer server = f.MakeServer();
  const UeId ue = f.cell.AddUe(std::make_unique<StaticItbsChannel>(7));
  const FlowId flow = f.cell.AddFlow(ue, FlowType::kVideo);
  FlarePlugin plugin(flow);
  const Mpd mpd = MakeMpd(SimulationLadderKbps(), 10.0);
  server.ConnectVideoClient(&plugin, mpd);
  server.Start();
  f.cell.Start();
  f.sim.Every(FromSeconds(0.1), FromSeconds(0.1),
              [&] { f.cell.Enqueue(flow, 20'000); });
  f.sim.RunUntil(FromSeconds(20.0));
  EXPECT_GT(server.controller().CurrentLevel(flow), 1);

  // Mobile-data cost cap kicks in: client limits itself to rung 1.
  plugin.SetMaxLevel(1);
  server.UpdateClientInfo(flow, plugin.BuildClientInfo(mpd));
  f.sim.RunUntil(FromSeconds(25.0));
  EXPECT_LE(server.controller().CurrentLevel(flow), 1);
}

TEST(OneApiServer, UpdateForUnknownFlowIsIgnored) {
  ServerFixture f;
  OneApiServer server = f.MakeServer();
  ClientInfo info;
  info.flow = 42;
  EXPECT_NO_THROW(server.UpdateClientInfo(42, info));
  EXPECT_NO_THROW(f.sim.RunUntil(FromSeconds(1.0)));
}

TEST(OneApiServer, HandlesVanishedCellFlow) {
  ServerFixture f;
  OneApiServer server = f.MakeServer();
  const UeId ue = f.cell.AddUe(std::make_unique<StaticItbsChannel>(7));
  const FlowId flow = f.cell.AddFlow(ue, FlowType::kVideo);
  FlarePlugin plugin(flow);
  server.ConnectVideoClient(&plugin,
                            MakeMpd(SimulationLadderKbps(), 10.0));
  f.sim.RunUntil(FromSeconds(0.1));
  f.cell.RemoveFlow(flow);  // bearer torn down, server not yet told
  EXPECT_NO_THROW(server.RunBai());
}

}  // namespace
}  // namespace flare
