// Scheduler conformance suite: one parameterized set of invariants that
// every MAC scheduler implementation must satisfy, run against PF, PSS,
// two-phase GBR and round-robin. Complements tests/stress_test.cpp's fuzz
// (which hammers one hard-coded scheduler list) by making the contract a
// first-class, per-implementation test: a new scheduler joins the suite
// by adding one factory line.
//
// Contract under test (lte/scheduler.h):
//  * total granted RBs never exceed the TTI's n_rbs;
//  * every flow appears in at most one grant (two-phase schedulers must
//    coalesce), with positive RB count;
//  * granted bytes respect max_bytes (modulo the final partially filled
//    RB) and the RB count is consistent with bytes_per_rb;
//  * phase stats account for exactly the granted RBs;
//  * bytes_per_rb values drawn from the 36.213 TBS table (the values a
//    real cell feeds in) behave the same as synthetic ones.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "lte/gbr_scheduler.h"
#include "lte/pf_scheduler.h"
#include "lte/pss_scheduler.h"
#include "lte/tbs_table.h"
#include "util/rng.h"

namespace flare {
namespace {

struct SchedulerCase {
  const char* name;
  std::unique_ptr<Scheduler> (*make)();
};

const SchedulerCase kCases[] = {
    {"PfScheduler",
     [] { return std::unique_ptr<Scheduler>(new PfScheduler()); }},
    {"PssScheduler",
     [] { return std::unique_ptr<Scheduler>(new PssScheduler()); }},
    {"TwoPhaseGbrScheduler",
     [] { return std::unique_ptr<Scheduler>(new TwoPhaseGbrScheduler()); }},
    {"RoundRobinScheduler",
     [] { return std::unique_ptr<Scheduler>(new RoundRobinScheduler()); }},
};

class SchedulerConformanceTest
    : public ::testing::TestWithParam<SchedulerCase> {
 protected:
  /// Check every contract clause for one Allocate call.
  static void CheckInvariants(Scheduler& sched,
                              std::vector<SchedCandidate> candidates,
                              int n_rbs, Rng& rng,
                              const std::string& context) {
    const auto grants = sched.Allocate(candidates, n_rbs, rng);

    int total_rbs = 0;
    std::map<FlowId, int> appearances;
    for (const SchedGrant& g : grants) {
      ASSERT_NE(g.flow, nullptr) << context;
      EXPECT_GT(g.rbs, 0) << sched.Name() << " " << context;
      total_rbs += g.rbs;
      appearances[g.flow->id] += 1;

      // Find this flow's candidate for the byte-level clauses.
      const SchedCandidate* cand = nullptr;
      for (const SchedCandidate& c : candidates) {
        if (c.flow == g.flow) {
          cand = &c;
          break;
        }
      }
      ASSERT_NE(cand, nullptr) << context << ": grant for non-candidate";
      // Bytes fit in the granted RBs...
      EXPECT_LE(g.bytes,
                static_cast<std::uint64_t>(g.rbs) * cand->bytes_per_rb)
          << sched.Name() << " " << context;
      // ...and respect the per-TTI cap except the last partial RB.
      EXPECT_LT(g.bytes, cand->max_bytes + cand->bytes_per_rb)
          << sched.Name() << " " << context;
      // No more RBs than the bytes justify (ceiling division).
      EXPECT_LE(g.rbs, RbsForBytes(g.bytes, cand->bytes_per_rb))
          << sched.Name() << " " << context;
    }
    EXPECT_LE(total_rbs, n_rbs) << sched.Name() << " " << context;
    for (const auto& [flow, count] : appearances) {
      EXPECT_EQ(count, 1) << sched.Name() << " " << context << ": flow "
                          << flow << " granted " << count << " times";
    }
    // Phase accounting covers exactly what was granted.
    const SchedTtiStats& stats = sched.tti_stats();
    EXPECT_EQ(stats.rbs_priority + stats.rbs_shared, total_rbs)
        << sched.Name() << " " << context;
  }
};

/// Candidates with bytes_per_rb straight from the 36.213 TBS table across
/// the I_TBS range, mixed GBR/non-GBR, on the standard 50-RB testbed cell.
TEST_P(SchedulerConformanceTest, TbsTableDrivenTti) {
  const SchedulerCase& param = GetParam();
  auto sched = param.make();
  Rng rng(11);

  for (int trial = 0; trial < 100; ++trial) {
    const int n = static_cast<int>(rng.UniformInt(1, 12));
    std::vector<FlowState> states(static_cast<std::size_t>(n));
    std::vector<SchedCandidate> candidates;
    for (int i = 0; i < n; ++i) {
      FlowState& s = states[static_cast<std::size_t>(i)];
      s.id = static_cast<FlowId>(i + 1);
      s.type = i % 2 == 0 ? FlowType::kVideo : FlowType::kData;
      s.gbr_bps = i % 2 == 0 ? rng.Uniform(2e5, 2e6) : 0.0;
      s.gbr_credit_bytes = rng.Uniform(0.0, 20'000.0);
      s.pf_avg_bps = rng.Uniform(1.0, 1e7);

      const int itbs =
          static_cast<int>(rng.UniformInt(kMinItbs, kMaxItbs));
      SchedCandidate c;
      c.flow = &s;
      c.bytes_per_rb =
          static_cast<std::uint32_t>(TbsBitsPerPrb(itbs) / 8);
      c.max_bytes = static_cast<std::uint64_t>(rng.UniformInt(1, 60'000));
      candidates.push_back(c);
    }
    CheckInvariants(*sched, candidates, /*n_rbs=*/50, rng,
                    "trial " + std::to_string(trial));
  }
}

/// Degenerate inputs every implementation must tolerate: no candidates,
/// zero RBs, zero-capacity candidates, single-flow saturation.
TEST_P(SchedulerConformanceTest, DegenerateInputs) {
  const SchedulerCase& param = GetParam();
  auto sched = param.make();
  Rng rng(5);

  std::vector<SchedCandidate> empty;
  EXPECT_TRUE(sched->Allocate(empty, 50, rng).empty());

  FlowState s;
  s.id = 1;
  s.type = FlowType::kVideo;
  s.pf_avg_bps = 1.0;

  SchedCandidate c;
  c.flow = &s;
  c.bytes_per_rb = static_cast<std::uint32_t>(TbsBitsPerPrb(6) / 8);
  c.max_bytes = 10'000;

  std::vector<SchedCandidate> one{c};
  EXPECT_TRUE(sched->Allocate(one, /*n_rbs=*/0, rng).empty());

  // A flow with nothing to send must not receive RBs.
  one[0].max_bytes = 0;
  CheckInvariants(*sched, one, 50, rng, "zero max_bytes");

  // Saturation: far more demand than the TTI carries.
  one[0].max_bytes = 10'000'000;
  CheckInvariants(*sched, one, 50, rng, "saturated single flow");
}

/// GBR flows with outstanding credit must be served before the shared
/// phase exhausts the TTI on the two-phase scheduler; on single-phase
/// schedulers this degenerates to the plain invariants.
TEST_P(SchedulerConformanceTest, GbrBackloggedFlowIsServed) {
  const SchedulerCase& param = GetParam();
  auto sched = param.make();
  Rng rng(23);

  FlowState gbr;
  gbr.id = 1;
  gbr.type = FlowType::kVideo;
  gbr.gbr_bps = 1e6;
  gbr.gbr_credit_bytes = 5'000.0;
  gbr.pf_avg_bps = 1e6;

  FlowState best_effort;
  best_effort.id = 2;
  best_effort.type = FlowType::kData;
  best_effort.pf_avg_bps = 1.0;  // PF favourite

  const auto bytes_per_rb =
      static_cast<std::uint32_t>(TbsBitsPerPrb(10) / 8);
  std::vector<SchedCandidate> candidates;
  for (FlowState* f : {&gbr, &best_effort}) {
    SchedCandidate c;
    c.flow = f;
    c.bytes_per_rb = bytes_per_rb;
    c.max_bytes = 100'000;
    candidates.push_back(c);
  }

  auto copy = candidates;
  const auto grants = sched->Allocate(copy, 50, rng);
  if (param.make()->Name() == "two-phase-gbr") {
    bool gbr_served = false;
    for (const SchedGrant& g : grants) {
      if (g.flow->id == 1 && g.bytes > 0) gbr_served = true;
    }
    EXPECT_TRUE(gbr_served) << "backlogged GBR flow starved";
  }
  CheckInvariants(*sched, candidates, 50, rng, "gbr vs best-effort");
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, SchedulerConformanceTest, ::testing::ValuesIn(kCases),
    [](const ::testing::TestParamInfo<SchedulerCase>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace flare
