// Tests for the observability layer: metrics registry, handles, and the
// structured BAI trace sink — plus an end-to-end check that a scenario run
// with observers attached produces per-BAI rows for every video flow.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "obs/bai_trace.h"
#include "obs/metrics.h"
#include "scenario/scenario.h"
#include "util/time.h"

namespace flare {
namespace {

TEST(MetricsRegistry, CountersGaugesHistogramsRoundTrip) {
  MetricsRegistry registry;
  registry.GetCounter("a").Add(3);
  registry.GetCounter("a").Add();
  registry.GetGauge("g").Set(2.5);
  Histogram& h = registry.GetHistogram("h", {1.0, 10.0});
  h.Observe(0.5);
  h.Observe(5.0);
  h.Observe(100.0);
  EXPECT_EQ(registry.GetCounter("a").value(), 4u);
  EXPECT_DOUBLE_EQ(registry.GetGauge("g").value(), 2.5);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 105.5);
  const auto cumulative = h.CumulativeCounts();
  ASSERT_EQ(cumulative.size(), 3u);  // <=1, <=10, +inf
  EXPECT_EQ(cumulative[0], 1u);
  EXPECT_EQ(cumulative[1], 2u);
  EXPECT_EQ(cumulative[2], 3u);
}

TEST(MetricsRegistry, SameNameSharesInstrument) {
  MetricsRegistry registry;
  registry.GetCounter("shared").Add(1);
  registry.GetCounter("shared").Add(1);
  EXPECT_EQ(registry.GetCounter("shared").value(), 2u);
  // Histogram bounds are fixed on first creation.
  registry.GetHistogram("h", {1.0});
  EXPECT_EQ(registry.GetHistogram("h", {5.0, 6.0}).bounds().size(), 1u);
}

TEST(MetricsHandles, NullHandlesAreInertAndCheap) {
  CounterHandle counter;
  GaugeHandle gauge;
  HistogramHandle histogram;
  EXPECT_FALSE(counter.enabled());
  EXPECT_FALSE(gauge.enabled());
  EXPECT_FALSE(histogram.enabled());
  // No registry attached: these must be safe no-ops.
  counter.Add(7);
  gauge.Set(1.0);
  histogram.Observe(1.0);
  // Null-registry factory also yields inert handles.
  EXPECT_FALSE(MakeCounterHandle(nullptr, "x").enabled());
  EXPECT_FALSE(MakeGaugeHandle(nullptr, "x").enabled());
  EXPECT_FALSE(MakeHistogramHandle(nullptr, "x", {1.0}).enabled());
}

TEST(MetricsHandles, ResolvedHandlesWriteThrough) {
  MetricsRegistry registry;
  CounterHandle counter = MakeCounterHandle(&registry, "c");
  GaugeHandle gauge = MakeGaugeHandle(&registry, "g");
  HistogramHandle histogram = MakeHistogramHandle(&registry, "h", {1.0});
  counter.Add(2);
  gauge.Set(9.0);
  histogram.Observe(0.5);
  EXPECT_EQ(registry.GetCounter("c").value(), 2u);
  EXPECT_DOUBLE_EQ(registry.GetGauge("g").value(), 9.0);
  EXPECT_EQ(registry.GetHistogram("h", {}).count(), 1u);
}

TEST(MetricsRegistry, JsonContainsAllSections) {
  MetricsRegistry registry;
  registry.GetCounter("cell.ttis").Add(10);
  registry.GetGauge("oneapi.video_fraction").Set(0.5);
  registry.GetHistogram("oneapi.solve_ms", {1.0}).Observe(0.2);
  std::ostringstream out;
  registry.WriteJson(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"cell.ttis\": 10"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"le\""), std::string::npos);
}

TEST(BaiTraceSink, AggregatesTtisPerFlushPeriod) {
  BaiTraceSink sink(kSecond);
  // 2.5 s of TTIs at 1 ms: expect 2 full aggregate rows + 1 on Flush.
  for (SimTime t = 0; t < FromSeconds(2.5); t += kTti) {
    sink.RecordTti(t, 3, 47, 100.0);
  }
  sink.Flush(FromSeconds(2.5));
  ASSERT_EQ(sink.tti_rows().size(), 3u);
  const TtiAggregateRow& first = sink.tti_rows()[0];
  EXPECT_EQ(first.ttis, 1000u);
  EXPECT_EQ(first.rbs_priority, 3000u);
  EXPECT_EQ(first.rbs_shared, 47000u);
  EXPECT_DOUBLE_EQ(first.mean_gbr_shortfall_bytes, 100.0);
}

TEST(BaiTraceSink, JsonAndCsvExportsContainRows) {
  BaiTraceSink sink;
  BaiTraceRow row;
  row.t_s = 1.0;
  row.flow = 7;
  row.enforced_level = 2;
  row.rate_bps = 600e3;
  sink.RecordBai(row);
  PlayerSummary player;
  player.client = 0;
  player.flow = 7;
  player.stalls = 1;
  sink.RecordPlayer(player);

  std::ostringstream out;
  sink.WriteJson(out, nullptr);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"bai_trace\""), std::string::npos);
  EXPECT_NE(json.find("\"flow\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"players\""), std::string::npos);
  EXPECT_NE(json.find("\"stalls\": 1"), std::string::npos);

  const std::string path = "obs_test_trace.csv";
  ASSERT_TRUE(sink.ExportCsv(path));
  std::ifstream in(path);
  std::string header;
  std::string line;
  ASSERT_TRUE(std::getline(in, header));
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(header.find("enforced_level"), std::string::npos);
  EXPECT_NE(line.find("7"), std::string::npos);
  in.close();
  std::remove(path.c_str());
}

// End-to-end: a FLARE scenario with observers attached produces per-BAI
// rows for every video flow, per-player summaries, and populated cell /
// server metrics — the acceptance criterion for the observability layer.
TEST(Observability, ScenarioRunEmitsRowsForEveryVideoFlow) {
  MetricsRegistry registry;
  BaiTraceSink trace;
  ScenarioConfig config = TestbedPreset(Scheme::kFlare);
  config.duration_s = 30.0;
  config.n_video = 3;
  config.metrics = &registry;
  config.bai_trace = &trace;
  const ScenarioResult result = RunScenario(config);

  // One row per video flow per BAI (registration takes ~1 BAI).
  std::set<FlowId> flows_seen;
  for (const BaiTraceRow& row : trace.bai_rows()) {
    flows_seen.insert(row.flow);
    EXPECT_GE(row.enforced_level, 0);
    EXPECT_LE(row.enforced_level, row.recommended_level);
    EXPECT_GT(row.rate_bps, 0.0);
    EXPECT_GE(row.gbr_bps, row.rate_bps);  // headroom >= 1
    EXPECT_GT(row.smoothed_bits_per_rb, 0.0);
  }
  EXPECT_EQ(flows_seen.size(), 3u);
  EXPECT_GE(trace.bai_rows().size(), 3u * 25u);  // ~29 BAIs x 3 flows

  // Player summaries: one per video client, matching the result metrics.
  ASSERT_EQ(trace.players().size(), 3u);
  for (std::size_t i = 0; i < trace.players().size(); ++i) {
    EXPECT_EQ(trace.players()[i].client, static_cast<int>(i));
    EXPECT_DOUBLE_EQ(trace.players()[i].avg_bitrate_bps,
                     result.video[i].avg_bitrate_bps);
    EXPECT_EQ(trace.players()[i].switches, result.video[i].bitrate_changes);
  }

  // Cell / server / sim metrics populated.
  EXPECT_GE(registry.GetCounter("cell.ttis").value(), 29'000u);
  EXPECT_GT(registry.GetCounter("cell.rbs_used").value(), 0u);
  EXPECT_EQ(registry.GetCounter("oneapi.bais").value(),
            result.solve_times_ms.size());
  EXPECT_GT(registry.GetCounter("sim.events").value(), 0u);
  EXPECT_EQ(registry.GetHistogram("oneapi.solve_ms", {}).count(),
            result.solve_times_ms.size());

  // TTI aggregates cover the run at ~1 row/s.
  EXPECT_GE(trace.tti_rows().size(), 25u);
}

TEST(Observability, DisabledRunMatchesEnabledRunResults) {
  // Attaching observers must not perturb simulation results.
  ScenarioConfig config = TestbedPreset(Scheme::kFlare);
  config.duration_s = 20.0;
  const ScenarioResult plain = RunScenario(config);

  MetricsRegistry registry;
  BaiTraceSink trace;
  config.metrics = &registry;
  config.bai_trace = &trace;
  const ScenarioResult observed = RunScenario(config);

  ASSERT_EQ(plain.video.size(), observed.video.size());
  for (std::size_t i = 0; i < plain.video.size(); ++i) {
    EXPECT_DOUBLE_EQ(plain.video[i].avg_bitrate_bps,
                     observed.video[i].avg_bitrate_bps);
    EXPECT_EQ(plain.video[i].bitrate_changes,
              observed.video[i].bitrate_changes);
  }
  EXPECT_EQ(plain.data_throughput_bps, observed.data_throughput_bps);
}

}  // namespace
}  // namespace flare
