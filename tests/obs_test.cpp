// Tests for the observability layer: metrics registry, handles, the
// structured BAI trace sink, the causal span tracer and the run-health
// watchdogs — plus end-to-end checks that a scenario run with observers
// attached produces per-BAI rows for every video flow and a well-formed
// span-trace JSON, without perturbing the experiment.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "obs/bai_trace.h"
#include "obs/metrics.h"
#include "obs/span_trace.h"
#include "obs/watchdog.h"
#include "scenario/multi_cell.h"
#include "scenario/scenario.h"
#include "util/csv.h"
#include "util/time.h"

namespace flare {
namespace {

// Minimal recursive-descent JSON syntax validator — enough to prove an
// emitted trace file is loadable, with no parser dependency.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}
  bool Parse() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return i_ == s_.size();
  }

 private:
  bool Peek(char c) const { return i_ < s_.size() && s_[i_] == c; }
  bool Expect(char c) {
    SkipWs();
    if (!Peek(c)) return false;
    ++i_;
    return true;
  }
  void SkipWs() {
    while (i_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[i_]))) {
      ++i_;
    }
  }
  bool Value() {
    SkipWs();
    if (i_ >= s_.size()) return false;
    switch (s_[i_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }
  bool Object() {
    ++i_;
    if (Expect('}')) return true;
    for (;;) {
      SkipWs();
      if (!String() || !Expect(':') || !Value()) return false;
      if (Expect(',')) continue;
      return Expect('}');
    }
  }
  bool Array() {
    ++i_;
    if (Expect(']')) return true;
    for (;;) {
      if (!Value()) return false;
      if (Expect(',')) continue;
      return Expect(']');
    }
  }
  bool String() {
    SkipWs();
    if (!Peek('"')) return false;
    ++i_;
    while (i_ < s_.size() && s_[i_] != '"') {
      if (s_[i_] == '\\') ++i_;
      ++i_;
    }
    if (!Peek('"')) return false;
    ++i_;
    return true;
  }
  bool Literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p, ++i_) {
      if (i_ >= s_.size() || s_[i_] != *p) return false;
    }
    return true;
  }
  bool Number() {
    const std::size_t start = i_;
    if (Peek('-')) ++i_;
    while (i_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[i_])) ||
            s_[i_] == '.' || s_[i_] == 'e' || s_[i_] == 'E' ||
            s_[i_] == '+' || s_[i_] == '-')) {
      ++i_;
    }
    return i_ > start;
  }

  const std::string& s_;
  std::size_t i_ = 0;
};

TEST(MetricsRegistry, CountersGaugesHistogramsRoundTrip) {
  MetricsRegistry registry;
  registry.GetCounter("a").Add(3);
  registry.GetCounter("a").Add();
  registry.GetGauge("g").Set(2.5);
  Histogram& h = registry.GetHistogram("h", {1.0, 10.0});
  h.Observe(0.5);
  h.Observe(5.0);
  h.Observe(100.0);
  EXPECT_EQ(registry.GetCounter("a").value(), 4u);
  EXPECT_DOUBLE_EQ(registry.GetGauge("g").value(), 2.5);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 105.5);
  const auto cumulative = h.CumulativeCounts();
  ASSERT_EQ(cumulative.size(), 3u);  // <=1, <=10, +inf
  EXPECT_EQ(cumulative[0], 1u);
  EXPECT_EQ(cumulative[1], 2u);
  EXPECT_EQ(cumulative[2], 3u);
}

TEST(MetricsRegistry, SameNameSharesInstrument) {
  MetricsRegistry registry;
  registry.GetCounter("shared").Add(1);
  registry.GetCounter("shared").Add(1);
  EXPECT_EQ(registry.GetCounter("shared").value(), 2u);
  // Histogram bounds are fixed on first creation.
  registry.GetHistogram("h", {1.0});
  EXPECT_EQ(registry.GetHistogram("h", {5.0, 6.0}).bounds().size(), 1u);
}

TEST(MetricsHandles, NullHandlesAreInertAndCheap) {
  CounterHandle counter;
  GaugeHandle gauge;
  HistogramHandle histogram;
  EXPECT_FALSE(counter.enabled());
  EXPECT_FALSE(gauge.enabled());
  EXPECT_FALSE(histogram.enabled());
  // No registry attached: these must be safe no-ops.
  counter.Add(7);
  gauge.Set(1.0);
  histogram.Observe(1.0);
  // Null-registry factory also yields inert handles.
  EXPECT_FALSE(MakeCounterHandle(nullptr, "x").enabled());
  EXPECT_FALSE(MakeGaugeHandle(nullptr, "x").enabled());
  EXPECT_FALSE(MakeHistogramHandle(nullptr, "x", {1.0}).enabled());
}

TEST(MetricsHandles, ResolvedHandlesWriteThrough) {
  MetricsRegistry registry;
  CounterHandle counter = MakeCounterHandle(&registry, "c");
  GaugeHandle gauge = MakeGaugeHandle(&registry, "g");
  HistogramHandle histogram = MakeHistogramHandle(&registry, "h", {1.0});
  counter.Add(2);
  gauge.Set(9.0);
  histogram.Observe(0.5);
  EXPECT_EQ(registry.GetCounter("c").value(), 2u);
  EXPECT_DOUBLE_EQ(registry.GetGauge("g").value(), 9.0);
  EXPECT_EQ(registry.GetHistogram("h", {}).count(), 1u);
}

TEST(MetricsRegistry, JsonContainsAllSections) {
  MetricsRegistry registry;
  registry.GetCounter("cell.ttis").Add(10);
  registry.GetGauge("oneapi.video_fraction").Set(0.5);
  registry.GetHistogram("oneapi.solve_ms", {1.0}).Observe(0.2);
  std::ostringstream out;
  registry.WriteJson(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"cell.ttis\": 10"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"le\""), std::string::npos);
}

TEST(BaiTraceSink, AggregatesTtisPerFlushPeriod) {
  BaiTraceSink sink(kSecond);
  // 2.5 s of TTIs at 1 ms: expect 2 full aggregate rows + 1 on Flush.
  for (SimTime t = 0; t < FromSeconds(2.5); t += kTti) {
    sink.RecordTti(t, 3, 47, 100.0);
  }
  sink.Flush(FromSeconds(2.5));
  ASSERT_EQ(sink.tti_rows().size(), 3u);
  const TtiAggregateRow& first = sink.tti_rows()[0];
  EXPECT_EQ(first.ttis, 1000u);
  EXPECT_EQ(first.rbs_priority, 3000u);
  EXPECT_EQ(first.rbs_shared, 47000u);
  EXPECT_DOUBLE_EQ(first.mean_gbr_shortfall_bytes, 100.0);
}

TEST(BaiTraceSink, JsonAndCsvExportsContainRows) {
  BaiTraceSink sink;
  BaiTraceRow row;
  row.t_s = 1.0;
  row.flow = 7;
  row.enforced_level = 2;
  row.rate_bps = 600e3;
  sink.RecordBai(row);
  PlayerSummary player;
  player.client = 0;
  player.flow = 7;
  player.stalls = 1;
  sink.RecordPlayer(player);

  std::ostringstream out;
  sink.WriteJson(out, nullptr);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"bai_trace\""), std::string::npos);
  EXPECT_NE(json.find("\"flow\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"players\""), std::string::npos);
  EXPECT_NE(json.find("\"stalls\": 1"), std::string::npos);

  const std::string path = "obs_test_trace.csv";
  ASSERT_TRUE(sink.ExportCsv(path));
  std::ifstream in(path);
  std::string header;
  std::string line;
  ASSERT_TRUE(std::getline(in, header));
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(header.find("enforced_level"), std::string::npos);
  EXPECT_NE(line.find("7"), std::string::npos);
  in.close();
  std::remove(path.c_str());
}

// End-to-end: a FLARE scenario with observers attached produces per-BAI
// rows for every video flow, per-player summaries, and populated cell /
// server metrics — the acceptance criterion for the observability layer.
TEST(Observability, ScenarioRunEmitsRowsForEveryVideoFlow) {
  MetricsRegistry registry;
  BaiTraceSink trace;
  ScenarioConfig config = TestbedPreset(Scheme::kFlare);
  config.duration_s = 30.0;
  config.n_video = 3;
  config.metrics = &registry;
  config.bai_trace = &trace;
  const ScenarioResult result = RunScenario(config);

  // One row per video flow per BAI (registration takes ~1 BAI).
  std::set<FlowId> flows_seen;
  for (const BaiTraceRow& row : trace.bai_rows()) {
    flows_seen.insert(row.flow);
    EXPECT_GE(row.enforced_level, 0);
    EXPECT_LE(row.enforced_level, row.recommended_level);
    EXPECT_GT(row.rate_bps, 0.0);
    EXPECT_GE(row.gbr_bps, row.rate_bps);  // headroom >= 1
    EXPECT_GT(row.smoothed_bits_per_rb, 0.0);
  }
  EXPECT_EQ(flows_seen.size(), 3u);
  EXPECT_GE(trace.bai_rows().size(), 3u * 25u);  // ~29 BAIs x 3 flows

  // Player summaries: one per video client, matching the result metrics.
  ASSERT_EQ(trace.players().size(), 3u);
  for (std::size_t i = 0; i < trace.players().size(); ++i) {
    EXPECT_EQ(trace.players()[i].client, static_cast<int>(i));
    EXPECT_DOUBLE_EQ(trace.players()[i].avg_bitrate_bps,
                     result.video[i].avg_bitrate_bps);
    EXPECT_EQ(trace.players()[i].switches, result.video[i].bitrate_changes);
  }

  // Cell / server / sim metrics populated.
  EXPECT_GE(registry.GetCounter("cell.ttis").value(), 29'000u);
  EXPECT_GT(registry.GetCounter("cell.rbs_used").value(), 0u);
  EXPECT_EQ(registry.GetCounter("oneapi.bais").value(),
            result.solve_times_ms.size());
  EXPECT_GT(registry.GetCounter("sim.events").value(), 0u);
  EXPECT_EQ(registry.GetHistogram("oneapi.solve_ms", {}).count(),
            result.solve_times_ms.size());

  // TTI aggregates cover the run at ~1 row/s.
  EXPECT_GE(trace.tti_rows().size(), 25u);
}

TEST(Observability, DisabledRunMatchesEnabledRunResults) {
  // Attaching observers must not perturb simulation results.
  ScenarioConfig config = TestbedPreset(Scheme::kFlare);
  config.duration_s = 20.0;
  const ScenarioResult plain = RunScenario(config);

  MetricsRegistry registry;
  BaiTraceSink trace;
  config.metrics = &registry;
  config.bai_trace = &trace;
  const ScenarioResult observed = RunScenario(config);

  ASSERT_EQ(plain.video.size(), observed.video.size());
  for (std::size_t i = 0; i < plain.video.size(); ++i) {
    EXPECT_DOUBLE_EQ(plain.video[i].avg_bitrate_bps,
                     observed.video[i].avg_bitrate_bps);
    EXPECT_EQ(plain.video[i].bitrate_changes,
              observed.video[i].bitrate_changes);
  }
  EXPECT_EQ(plain.data_throughput_bps, observed.data_throughput_bps);
}

// --- Histogram quantiles ----------------------------------------------------

TEST(Histogram, QuantileInterpolatesWithinBuckets) {
  Histogram h({10.0, 20.0, 40.0});
  for (int i = 0; i < 5; ++i) h.Observe(5.0);    // bucket (0, 10]
  for (int i = 0; i < 3; ++i) h.Observe(15.0);   // bucket (10, 20]
  for (int i = 0; i < 2; ++i) h.Observe(30.0);   // bucket (20, 40]
  // target = q * 10 observations, linear within the containing bucket.
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 10.0);   // 5th obs tops bucket 0
  EXPECT_DOUBLE_EQ(h.Quantile(0.65), 15.0);  // 1.5/3 into (10, 20]
  EXPECT_DOUBLE_EQ(h.Quantile(0.9), 30.0);   // 1/2 into (20, 40]
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 40.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 0.0);
  // Out-of-range q clamps.
  EXPECT_DOUBLE_EQ(h.Quantile(2.0), h.Quantile(1.0));
  EXPECT_DOUBLE_EQ(h.Quantile(-1.0), h.Quantile(0.0));
}

TEST(Histogram, QuantileEdgeCases) {
  // Empty histogram: NaN, never a fake 0 — downstream JSON renders null.
  Histogram empty({1.0, 2.0});
  EXPECT_TRUE(std::isnan(empty.Quantile(0.5)));
  EXPECT_TRUE(std::isnan(empty.Quantile(0.0)));
  EXPECT_TRUE(std::isnan(empty.Quantile(1.0)));

  // Every observation in the overflow bucket: clamp to the largest
  // finite bound rather than inventing a value for (+inf).
  Histogram overflow({1.0});
  overflow.Observe(5.0);
  overflow.Observe(7.0);
  overflow.Observe(9.0);
  EXPECT_DOUBLE_EQ(overflow.Quantile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(overflow.Quantile(1.0), 1.0);

  // No finite bounds at all: fall back to the mean.
  Histogram unbounded({});
  unbounded.Observe(3.0);
  unbounded.Observe(5.0);
  EXPECT_DOUBLE_EQ(unbounded.Quantile(0.5), 4.0);
}

TEST(Histogram, MergeFromMismatchedBoundsIsIgnored) {
  Histogram a({1.0, 2.0});
  Histogram b({5.0});
  b.Observe(0.5);
  a.MergeFrom(b);  // shards are created from one config; mismatch = bug
  EXPECT_EQ(a.count(), 0u);
  Histogram c({1.0, 2.0});
  c.Observe(1.5);
  a.MergeFrom(c);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.sum(), 1.5);
}

TEST(MetricsRegistry, JsonHistogramsIncludeQuantiles) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("h", {1.0, 10.0});
  for (int i = 0; i < 10; ++i) h.Observe(0.5);
  std::ostringstream out;
  registry.WriteJson(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(MetricsRegistry, JsonEmptyHistogramExportsNullNotNaN) {
  MetricsRegistry registry;
  registry.GetHistogram("empty", {1.0, 10.0});
  std::ostringstream out;
  registry.WriteJson(out);
  const std::string json = out.str();
  // A bare `nan` token is invalid JSON; empty aggregates must be null.
  EXPECT_EQ(json.find("nan"), std::string::npos) << json;
  EXPECT_NE(json.find("\"mean\": null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p50\": null"), std::string::npos) << json;
}

// --- CSV escaping -----------------------------------------------------------

TEST(BaiTraceSink, CsvExportEscapesEmbeddedDelimiters) {
  BaiTraceSink sink;
  BaiTraceRow row;
  row.t_s = 1.0;
  row.flow = 7;
  row.cause = "a,\"b\"\nc";  // no cause string contains these today;
                             // the exporter must stay correct if one does
  sink.RecordBai(row);
  std::ostringstream out;
  sink.WriteCsv(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("\"a,\"\"b\"\"\nc\""), std::string::npos);
  // An unremarkable cause stays unquoted.
  EXPECT_EQ(CsvField("solver-up"), "solver-up");
}

// --- Span tracer ------------------------------------------------------------

TEST(SpanTrace, NullTracerSitesAreInert) {
  SpanScope span(nullptr, kLaneControl, "cat", "name");
  EXPECT_FALSE(span.enabled());
  span.set_args("{\"k\":1}");
  span.Close();  // must be a safe no-op
}

TEST(SpanTrace, JsonQuoteEscapes) {
  EXPECT_EQ(JsonQuote("plain"), "\"plain\"");
  EXPECT_EQ(JsonQuote("a\"b\\c"), "\"a\\\"b\\\\c\"");
  EXPECT_EQ(JsonQuote("a\nb\tc"), "\"a\\nb\\tc\"");
  EXPECT_EQ(JsonQuote(std::string("a\x01z", 3)), "\"a\\u0001z\"");
}

TEST(SpanTrace, DeterministicModeZeroesDurations) {
  SpanTracer tracer;
  double now_us = 1000.0;
  tracer.SetClock([&now_us] { return now_us; });
  tracer.set_deterministic(true);
  {
    SpanScope span(&tracer, kLaneControl, "test", "work");
    now_us = 2000.0;
  }
  ASSERT_EQ(tracer.size(), 1u);
  EXPECT_DOUBLE_EQ(tracer.events()[0].ts_us, 1000.0);
  EXPECT_DOUBLE_EQ(tracer.events()[0].dur_us, 0.0);
}

TEST(SpanTrace, AbsorbAndSortIsDeterministic) {
  SpanTracer merged;
  SpanTracer shard_a;
  shard_a.set_default_pid(1);
  shard_a.Instant(kLaneControl, "t", "late", 200.0);
  shard_a.Instant(kLaneControl, "t", "early", 100.0);
  SpanTracer shard_b;
  shard_b.set_default_pid(2);
  shard_b.Instant(kLaneControl, "t", "mid", 150.0);
  merged.AbsorbShard(shard_a);
  merged.AbsorbShard(shard_b);
  merged.SortMergedEvents();
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_STREQ(merged.events()[0].name, "early");
  EXPECT_STREQ(merged.events()[1].name, "mid");
  EXPECT_STREQ(merged.events()[2].name, "late");

  std::ostringstream out;
  merged.WriteJson(out);
  EXPECT_TRUE(JsonParser(out.str()).Parse()) << out.str();
}

// --- Run-health watchdogs ---------------------------------------------------

TEST(Watchdog, InfeasibleStreakFiresOnceAndRearms) {
  WatchdogConfig config;
  config.infeasible_streak = 3;
  RunHealthMonitor monitor(config);
  EXPECT_TRUE(monitor.healthy());
  monitor.OnSolverResult(1.0, false);
  monitor.OnSolverResult(2.0, false);
  EXPECT_TRUE(monitor.healthy());  // below threshold
  monitor.OnSolverResult(3.0, false);
  ASSERT_EQ(monitor.warnings().size(), 1u);
  EXPECT_EQ(monitor.warnings()[0].kind, "infeasible_streak");
  EXPECT_DOUBLE_EQ(monitor.warnings()[0].t_s, 3.0);
  // Staying bad must not re-fire...
  monitor.OnSolverResult(4.0, false);
  monitor.OnSolverResult(5.0, false);
  EXPECT_EQ(monitor.warnings().size(), 1u);
  // ...until the signal recovers and goes bad for a full streak again.
  monitor.OnSolverResult(6.0, true);
  monitor.OnSolverResult(7.0, false);
  monitor.OnSolverResult(8.0, false);
  monitor.OnSolverResult(9.0, false);
  EXPECT_EQ(monitor.warnings().size(), 2u);
}

TEST(Watchdog, StallStreakIsPerClient) {
  WatchdogConfig config;
  config.stall_streak = 2;
  RunHealthMonitor monitor(config);
  monitor.OnPlayerScan(1.0, 0, 0.5);
  monitor.OnPlayerScan(1.0, 1, 0.0);  // client 1 is healthy
  monitor.OnPlayerScan(2.0, 0, 0.5);
  monitor.OnPlayerScan(2.0, 1, 0.0);
  ASSERT_EQ(monitor.warnings().size(), 1u);
  EXPECT_EQ(monitor.warnings()[0].kind, "stall_streak");
  EXPECT_EQ(monitor.warnings()[0].client, 0);
}

TEST(Watchdog, GbrShortfallNeedsFractionAndStreak) {
  WatchdogConfig config;
  config.gbr_shortfall_streak = 2;
  config.gbr_shortfall_fraction = 0.5;
  RunHealthMonitor monitor(config);
  monitor.OnGbrScan(1.0, /*shortfall=*/400.0, /*bai_gbr=*/1000.0);  // 40%
  monitor.OnGbrScan(2.0, 400.0, 1000.0);
  EXPECT_TRUE(monitor.healthy());  // under the fraction
  monitor.OnGbrScan(3.0, 600.0, 1000.0);
  monitor.OnGbrScan(4.0, 600.0, 1000.0);
  ASSERT_EQ(monitor.warnings().size(), 1u);
  EXPECT_EQ(monitor.warnings()[0].kind, "gbr_shortfall");
  // A cell with no GBR promised can never be short.
  RunHealthMonitor no_gbr(config);
  for (int i = 0; i < 10; ++i) no_gbr.OnGbrScan(i, 100.0, 0.0);
  EXPECT_TRUE(no_gbr.healthy());
}

TEST(Watchdog, StarvedFlowRequiresBacklog) {
  WatchdogConfig config;
  config.starved_flow_streak = 2;
  RunHealthMonitor monitor(config);
  // Backlogged but served: fine. Idle and unserved: fine.
  monitor.OnFlowScan(1.0, 9, /*backlogged=*/true, /*tx=*/100);
  monitor.OnFlowScan(2.0, 9, false, 0);
  EXPECT_TRUE(monitor.healthy());
  // Backlogged and served nothing, twice: starved.
  monitor.OnFlowScan(3.0, 9, true, 0);
  monitor.OnFlowScan(4.0, 9, true, 0);
  ASSERT_EQ(monitor.warnings().size(), 1u);
  EXPECT_EQ(monitor.warnings()[0].kind, "starved_flow");
  EXPECT_EQ(monitor.warnings()[0].flow, 9u);
}

TEST(Watchdog, AbsorbShardRestampsCellAndWritesJson) {
  WatchdogConfig config;
  config.stall_streak = 1;
  RunHealthMonitor shard(config);
  shard.OnPlayerScan(1.0, 0, 0.5);
  RunHealthMonitor merged;
  merged.AbsorbShard(shard, /*cell=*/3);
  merged.SortMergedWarnings();
  ASSERT_EQ(merged.warnings().size(), 1u);
  EXPECT_EQ(merged.warnings()[0].cell, 3);
  EXPECT_FALSE(merged.healthy());

  std::ostringstream out;
  merged.WriteJson(out);
  const std::string json = out.str();
  EXPECT_TRUE(JsonParser(json).Parse()) << json;
  EXPECT_NE(json.find("\"healthy\": false"), std::string::npos);
  EXPECT_NE(json.find("stall_streak"), std::string::npos);
}

// --- End-to-end span tracing ------------------------------------------------

TEST(SpanTrace, MultiCellTraceJsonIsWellFormedAndCausal) {
  MultiCellConfig multi;
  multi.cell = TestbedPreset(Scheme::kFlare);
  multi.cell.duration_s = 10.0;
  multi.cell.seed = 3;
  multi.cell.oneapi.deterministic_timing = true;
  multi.n_cells = 2;
  multi.workers = 2;
  SpanTracer spans;
  RunHealthMonitor health;
  multi.span_trace = &spans;
  multi.health = &health;
  RunMultiCellScenario(multi);

  std::ostringstream out;
  spans.WriteJson(out);
  const std::string json = out.str();
  ASSERT_TRUE(JsonParser(json).Parse()) << json.substr(0, 400);

  // Runner, control-loop and MAC spans all present, plus rung-change
  // instants carrying a machine-readable cause.
  for (const char* needle :
       {"\"traceEvents\"", "\"epoch\"", "\"advance\"", "\"bai\"", "\"solve\"",
        "\"tti.window\"", "\"rung_change\"", "\"cause\":\"init\""}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }

  // Events from the runner (pid 0) and both cells (pids 1, 2).
  std::set<int> pids;
  for (const TraceEvent& e : spans.events()) pids.insert(e.pid);
  EXPECT_EQ(pids, (std::set<int>{0, 1, 2}));

  // Deterministic timing: every recorded duration is exactly 0.
  for (const TraceEvent& e : spans.events()) {
    EXPECT_DOUBLE_EQ(e.dur_us, 0.0);
  }
}

TEST(SpanTrace, TracingDoesNotPerturbTheBaiTrace) {
  ScenarioConfig config = TestbedPreset(Scheme::kFlare);
  config.duration_s = 15.0;
  config.oneapi.deterministic_timing = true;

  const auto run = [&config](bool traced) {
    BaiTraceSink trace;
    SpanTracer spans;
    RunHealthMonitor health;
    ScenarioConfig c = config;
    c.bai_trace = &trace;
    if (traced) {
      c.span_trace = &spans;
      c.health = &health;
    }
    RunScenario(c);
    std::ostringstream csv;
    trace.WriteCsv(csv);
    return csv.str();
  };

  const std::string off = run(false);
  const std::string on = run(true);
  ASSERT_FALSE(off.empty());
  EXPECT_EQ(off, on);
}

}  // namespace
}  // namespace flare
