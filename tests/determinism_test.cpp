// Determinism harness for the sharded parallel runtime: the same
// multi-cell scenario must produce byte-identical observability output —
// BAI trace CSV and full metrics JSON — no matter how many worker threads
// execute the event domains (serial reference included), and repeated
// serial runs of one seed must reproduce themselves exactly. This is the
// contract sim/parallel_runner.h advertises; any scheduling-order,
// FP-reassociation or shared-state leak between domains shows up here as
// a one-character diff.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/bai_trace.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/qoe_analytics.h"
#include "obs/span_trace.h"
#include "obs/watchdog.h"
#include "scenario/multi_cell.h"
#include "util/rng.h"

namespace flare {
namespace {

MultiCellConfig HarnessConfig(int workers) {
  MultiCellConfig multi;
  multi.cell = TestbedPreset(Scheme::kFlare);
  multi.cell.duration_s = 15.0;
  multi.cell.seed = 7;
  // Wall-clock solver timings are the one legitimately nondeterministic
  // output; record them as 0 so the comparison is over everything else.
  multi.cell.oneapi.deterministic_timing = true;
  multi.n_cells = 4;
  multi.workers = workers;
  return multi;
}

/// Churn variant: 8 cells with Poisson arrivals, lognormal holds and
/// capacity-threshold admission, so dynamic session creation/teardown and
/// the warm-started sweep solver are all inside the determinism contract.
MultiCellConfig ChurnHarnessConfig(int workers) {
  MultiCellConfig multi = HarnessConfig(workers);
  multi.n_cells = 8;
  multi.cell.duration_s = 20.0;
  multi.cell.n_video = 2;
  multi.cell.churn.enabled = true;
  multi.cell.churn.arrival_rate_per_s = 0.4;
  multi.cell.churn.mean_hold_s = 8.0;
  multi.cell.churn.data_fraction = 0.2;
  multi.cell.churn.admission.policy = AdmissionPolicy::kCapacityThreshold;
  multi.cell.churn.admission.capacity_threshold = 0.5;
  return multi;
}

/// Batched-solver variant: the same 8-cell churn harness forced onto
/// SolverMode::kBatchedSweep, so the SoA solver's per-BAI rebuild path is
/// inside the byte-identity contract (serial == parallel, qoe and flight
/// bytes included).
MultiCellConfig BatchedChurnHarnessConfig(int workers) {
  MultiCellConfig multi = ChurnHarnessConfig(workers);
  multi.cell.solver_override = SolverMode::kBatchedSweep;
  return multi;
}

struct RunOutput {
  std::string csv;
  std::string json;
  std::string spans;
  std::string health;
  std::string qoe;
  std::string flight;
  MultiCellResult result;
};

RunOutput RunMulti(MultiCellConfig multi) {
  MetricsRegistry registry;
  BaiTraceSink trace;
  SpanTracer spans;
  RunHealthMonitor health;
  QoeAnalytics qoe;
  FlightRecorder flight(64);
  multi.metrics = &registry;
  multi.bai_trace = &trace;
  multi.span_trace = &spans;
  multi.health = &health;
  multi.qoe = &qoe;
  multi.flight = &flight;

  RunOutput out;
  out.result = RunMultiCellScenario(multi);

  std::ostringstream csv;
  trace.WriteCsv(csv);
  out.csv = csv.str();
  std::ostringstream json;
  trace.WriteJson(json, &registry, nullptr, &qoe);
  out.json = json.str();
  // The merged span trace, run-health report, QoE section and flight
  // recorder ring are part of the determinism contract too: with
  // deterministic timing their bytes must not depend on scheduling or
  // worker count.
  std::ostringstream span_json;
  spans.WriteJson(span_json);
  out.spans = span_json.str();
  std::ostringstream health_json;
  health.WriteJson(health_json);
  out.health = health_json.str();
  std::ostringstream qoe_json;
  qoe.WriteJson(qoe_json);
  out.qoe = qoe_json.str();
  std::ostringstream flight_json;
  flight.WriteJson(flight_json);
  out.flight = flight_json.str();
  return out;
}

RunOutput RunOnce(int workers) { return RunMulti(HarnessConfig(workers)); }

TEST(Determinism, SerialRunRepeatsItselfExactly) {
  const RunOutput a = RunOnce(/*workers=*/0);
  const RunOutput b = RunOnce(/*workers=*/0);
  EXPECT_EQ(a.csv, b.csv);
  EXPECT_EQ(a.json, b.json);
  EXPECT_EQ(a.spans, b.spans);
  EXPECT_EQ(a.health, b.health);
  EXPECT_EQ(a.qoe, b.qoe);
  EXPECT_EQ(a.flight, b.flight);
}

TEST(Determinism, ParallelIsBitIdenticalToSerial) {
  const RunOutput serial = RunOnce(/*workers=*/0);
  ASSERT_FALSE(serial.csv.empty());
  ASSERT_FALSE(serial.spans.empty());
  // The QoE engine saw the static sessions (the json already embeds the
  // qoe section, but the standalone export must agree byte-for-byte too).
  ASSERT_NE(serial.qoe.find("\"sessions\""), std::string::npos);
  for (const int workers : {2, 8}) {
    const RunOutput parallel = RunOnce(workers);
    EXPECT_EQ(serial.csv, parallel.csv) << "workers=" << workers;
    EXPECT_EQ(serial.json, parallel.json) << "workers=" << workers;
    EXPECT_EQ(serial.spans, parallel.spans) << "workers=" << workers;
    EXPECT_EQ(serial.health, parallel.health) << "workers=" << workers;
    EXPECT_EQ(serial.qoe, parallel.qoe) << "workers=" << workers;
    EXPECT_EQ(serial.flight, parallel.flight) << "workers=" << workers;
  }
}

TEST(Determinism, ChurnSerialVsParallelBitIdentical) {
  const RunOutput serial = RunMulti(ChurnHarnessConfig(/*workers=*/0));
  ASSERT_FALSE(serial.csv.empty());
  // Churn actually ran: every cell's engine saw arrivals.
  std::uint64_t arrived = 0;
  for (const ScenarioResult& cell : serial.result.cells) {
    arrived += cell.sessions_arrived;
  }
  ASSERT_GT(arrived, 0u);
  for (const int workers : {2, 8}) {
    const RunOutput parallel = RunMulti(ChurnHarnessConfig(workers));
    EXPECT_EQ(serial.csv, parallel.csv) << "workers=" << workers;
    EXPECT_EQ(serial.json, parallel.json) << "workers=" << workers;
    EXPECT_EQ(serial.spans, parallel.spans) << "workers=" << workers;
    EXPECT_EQ(serial.health, parallel.health) << "workers=" << workers;
    // The acceptance bar for the QoE engine: byte-identical serial vs
    // parallel(8) under churn, admission verdicts included.
    EXPECT_EQ(serial.qoe, parallel.qoe) << "workers=" << workers;
    EXPECT_EQ(serial.flight, parallel.flight) << "workers=" << workers;
    for (std::size_t c = 0; c < serial.result.cells.size(); ++c) {
      EXPECT_EQ(serial.result.cells[c].sessions_arrived,
                parallel.result.cells[c].sessions_arrived)
          << "workers=" << workers << " cell=" << c;
      EXPECT_EQ(serial.result.cells[c].sessions_blocked,
                parallel.result.cells[c].sessions_blocked)
          << "workers=" << workers << " cell=" << c;
    }
  }
}

TEST(Determinism, BatchedSweepChurnSerialVsParallelBitIdentical) {
  const RunOutput serial = RunMulti(BatchedChurnHarnessConfig(/*workers=*/0));
  ASSERT_FALSE(serial.csv.empty());
  std::uint64_t arrived = 0;
  for (const ScenarioResult& cell : serial.result.cells) {
    arrived += cell.sessions_arrived;
  }
  ASSERT_GT(arrived, 0u);
  for (const int workers : {2, 8}) {
    const RunOutput parallel =
        RunMulti(BatchedChurnHarnessConfig(workers));
    EXPECT_EQ(serial.csv, parallel.csv) << "workers=" << workers;
    EXPECT_EQ(serial.json, parallel.json) << "workers=" << workers;
    EXPECT_EQ(serial.spans, parallel.spans) << "workers=" << workers;
    EXPECT_EQ(serial.health, parallel.health) << "workers=" << workers;
    EXPECT_EQ(serial.qoe, parallel.qoe) << "workers=" << workers;
    EXPECT_EQ(serial.flight, parallel.flight) << "workers=" << workers;
  }
  // End-to-end differential: every per-BAI solve of the batched run is
  // bit-exact vs the warm incremental sweep the churn harness normally
  // uses, so the two runs' controllers walk identical hysteresis
  // trajectories and the full run artifacts must agree byte for byte —
  // the run-level extension of solver_differential_test's contract.
  const RunOutput incremental = RunMulti(ChurnHarnessConfig(/*workers=*/0));
  EXPECT_EQ(serial.csv, incremental.csv);
  EXPECT_EQ(serial.json, incremental.json);
  EXPECT_EQ(serial.qoe, incremental.qoe);
  EXPECT_EQ(serial.flight, incremental.flight);
}

TEST(Determinism, CellsAreDifferentiatedBySplitStreams) {
  const RunOutput out = RunOnce(/*workers=*/0);
  // Every cell contributed rows (the trace merge preserved all shards)...
  bool saw_cell[4] = {false, false, false, false};
  std::istringstream in(out.csv);
  std::string line;
  std::getline(in, line);  // header
  ASSERT_NE(line.find("t_s,cell,flow"), std::string::npos);
  while (std::getline(in, line)) {
    const auto first_comma = line.find(',');
    ASSERT_NE(first_comma, std::string::npos);
    const int cell = std::stoi(line.substr(first_comma + 1));
    ASSERT_GE(cell, 0);
    ASSERT_LT(cell, 4);
    saw_cell[cell] = true;
  }
  for (int c = 0; c < 4; ++c) EXPECT_TRUE(saw_cell[c]) << "cell " << c;
  ASSERT_EQ(out.result.cells.size(), 4u);

  // ...and the per-cell Rng streams are genuinely distinct: SplitStream
  // is a pure function of (seed, stream), independent of draw position,
  // and different streams must decorrelate immediately.
  const Rng master(7);
  Rng s0 = master.SplitStream(0);
  Rng s1 = master.SplitStream(1);
  EXPECT_NE(s0.Uniform(), s1.Uniform());
  // Position independence: forking the master first must not change what
  // a split stream yields.
  Rng drained(7);
  drained.Uniform();
  Rng s0_again = drained.SplitStream(0);
  EXPECT_EQ(master.SplitStream(0).Uniform(), s0_again.Uniform());
}

TEST(Determinism, SharedPcrfSeesEveryCellsFlows) {
  const RunOutput out = RunOnce(/*workers=*/2);
  const MultiCellConfig multi = HarnessConfig(2);
  // Testbed preset: 3 FLARE video + 1 data flow per cell, mirrored into
  // the shared core registry via mailbox ops at epoch barriers.
  EXPECT_EQ(out.result.global_video_flows, 4 * multi.cell.n_video);
  EXPECT_EQ(out.result.global_data_flows, 4 * multi.cell.n_data);
  EXPECT_GT(out.result.barrier_epochs, 0u);
  EXPECT_GE(out.result.mailbox_messages,
            static_cast<std::uint64_t>(4 * (multi.cell.n_video +
                                            multi.cell.n_data)));
}

}  // namespace
}  // namespace flare
