// Tests for the TCP model, the transport host and the HTTP layer.
#include <gtest/gtest.h>

#include "lte/cell.h"
#include "lte/pf_scheduler.h"
#include "sim/simulator.h"
#include "transport/http.h"
#include "transport/transport_host.h"

namespace flare {
namespace {

struct Net {
  Simulator sim;
  Cell cell;
  TransportHost host;
  explicit Net(int itbs = 7, CellConfig config = CellConfig{})
      : cell(sim, std::make_unique<PfScheduler>(), config, Rng(1)),
        host(sim, cell) {
    ue = cell.AddUe(std::make_unique<StaticItbsChannel>(itbs));
  }
  UeId ue = 0;
};

TEST(TcpFlow, DeliversExactByteCount) {
  Net net;
  TcpFlow& flow = net.host.CreateFlow(net.ue, FlowType::kData);
  std::uint64_t received = 0;
  flow.SetOnReceive(
      [&](std::uint64_t bytes, SimTime) { received += bytes; });
  flow.Send(100'000);
  net.cell.Start();
  net.sim.RunUntil(FromSeconds(5.0));
  EXPECT_EQ(received, 100'000u);
  EXPECT_EQ(flow.bytes_delivered(), 100'000u);
  EXPECT_TRUE(flow.Idle());
}

TEST(TcpFlow, SlowStartRampsUp) {
  Net net;
  TcpFlow& flow = net.host.CreateFlow(net.ue, FlowType::kData);
  const double initial_cwnd = flow.cwnd_bytes();
  flow.Send(2'000'000);
  net.cell.Start();
  net.sim.RunUntil(FromSeconds(1.0));
  EXPECT_GT(flow.cwnd_bytes(), initial_cwnd * 4.0);
}

TEST(TcpFlow, ThroughputApproachesLinkRate) {
  Net net;  // 5.2 Mbit/s link
  TcpFlow& flow = net.host.CreateFlow(net.ue, FlowType::kData);
  net.host.MakeGreedy(flow.id());
  net.cell.Start();
  net.sim.RunUntil(FromSeconds(10.0));
  const double bps =
      static_cast<double>(flow.bytes_delivered()) * 8.0 / 10.0;
  EXPECT_GT(bps, 0.85 * 5.2e6);  // >85% utilization after ramp-up
  EXPECT_LE(bps, 5.2e6 * 1.01);
}

TEST(TcpFlow, BandwidthEstimateConverges) {
  Net net;
  TcpFlow& flow = net.host.CreateFlow(net.ue, FlowType::kData);
  net.host.MakeGreedy(flow.id());
  net.cell.Start();
  net.sim.RunUntil(FromSeconds(10.0));
  EXPECT_NEAR(flow.bandwidth_estimate_bps(), 5.2e6, 1.5e6);
}

TEST(TcpFlow, BacksOffOnQueueOverflowButRecovers) {
  CellConfig config;
  config.queue_limit_bytes = 50'000;  // small queue forces drops
  Net net(7, config);
  TcpFlow& flow = net.host.CreateFlow(net.ue, FlowType::kData);
  net.host.MakeGreedy(flow.id());
  net.cell.Start();
  net.sim.RunUntil(FromSeconds(10.0));
  // Westwood keeps utilization high even with a shallow buffer.
  const double bps =
      static_cast<double>(flow.bytes_delivered()) * 8.0 / 10.0;
  EXPECT_GT(bps, 0.6 * 5.2e6);
}

TEST(TcpFlow, TwoGreedyFlowsShareFairly) {
  Net net;
  const UeId ue2 =
      net.cell.AddUe(std::make_unique<StaticItbsChannel>(7));
  TcpFlow& f1 = net.host.CreateFlow(net.ue, FlowType::kData);
  TcpFlow& f2 = net.host.CreateFlow(ue2, FlowType::kData);
  net.host.MakeGreedy(f1.id());
  net.host.MakeGreedy(f2.id());
  net.cell.Start();
  net.sim.RunUntil(FromSeconds(20.0));
  const double a = static_cast<double>(f1.bytes_delivered());
  const double b = static_cast<double>(f2.bytes_delivered());
  EXPECT_NEAR(a / b, 1.0, 0.2);
}

TEST(TransportHost, DestroyFlowStopsDelivery) {
  Net net;
  TcpFlow& flow = net.host.CreateFlow(net.ue, FlowType::kData);
  const FlowId id = flow.id();
  flow.Send(1'000'000);
  net.cell.Start();
  net.sim.RunUntil(FromSeconds(0.2));
  net.host.DestroyFlow(id);
  EXPECT_FALSE(net.host.Has(id));
  EXPECT_FALSE(net.cell.HasFlow(id));
  EXPECT_NO_THROW(net.sim.RunUntil(FromSeconds(1.0)));
}

TEST(TransportHost, FlowLookupThrowsOnUnknown) {
  Net net;
  EXPECT_THROW(net.host.flow(12345), std::out_of_range);
}

TEST(HttpClient, CompletesRequestWithTiming) {
  Net net;
  TcpFlow& flow = net.host.CreateFlow(net.ue, FlowType::kVideo);
  HttpClient http(net.sim, flow);
  std::optional<HttpResult> result;
  http.Get(65'000, [&](const HttpResult& r) { result = r; });
  net.cell.Start();
  net.sim.RunUntil(FromSeconds(5.0));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->bytes, 65'000u);
  EXPECT_GT(result->completed_at, result->first_byte_at);
  EXPECT_GT(result->first_byte_at, result->requested_at);
  EXPECT_GT(result->throughput_bps, 0.0);
  // 65 KB over a 5.2 Mbit/s link: >=0.1 s, so throughput <= link rate.
  EXPECT_LE(result->throughput_bps, 5.2e6);
}

TEST(HttpClient, ZeroByteRequestCompletesImmediately) {
  Net net;
  TcpFlow& flow = net.host.CreateFlow(net.ue, FlowType::kVideo);
  HttpClient http(net.sim, flow);
  bool zero_done = false;
  bool next_done = false;
  http.Get(0, [&](const HttpResult& r) {
    zero_done = true;
    EXPECT_EQ(r.bytes, 0u);
  });
  EXPECT_TRUE(zero_done);  // synchronous completion
  http.Get(10'000, [&](const HttpResult&) { next_done = true; });
  net.cell.Start();
  net.sim.RunUntil(FromSeconds(5.0));
  EXPECT_TRUE(next_done);  // the queue was not wedged
}

TEST(HttpClient, StarvedLinkNeverCompletesButNeverCrashes) {
  // Zero-RB cell: the response can never arrive; the request just stays
  // in flight for the whole run.
  Simulator sim;
  CellConfig config;
  config.num_rbs = 1;
  Cell cell(sim, std::make_unique<PfScheduler>(), config, Rng(1));
  TransportHost host(sim, cell);
  const UeId ue = cell.AddUe(std::make_unique<StaticItbsChannel>(0));
  TcpFlow& flow = host.CreateFlow(ue, FlowType::kVideo);
  HttpClient http(sim, flow);
  bool done = false;
  http.Get(50'000'000, [&](const HttpResult&) { done = true; });
  cell.Start();
  EXPECT_NO_THROW(sim.RunUntil(FromSeconds(30.0)));
  EXPECT_FALSE(done);
  EXPECT_TRUE(http.busy());
}

TEST(HttpClient, RequestsQueueFifo) {
  Net net;
  TcpFlow& flow = net.host.CreateFlow(net.ue, FlowType::kVideo);
  HttpClient http(net.sim, flow);
  std::vector<int> done;
  http.Get(10'000, [&](const HttpResult&) { done.push_back(1); });
  http.Get(10'000, [&](const HttpResult&) { done.push_back(2); });
  http.Get(10'000, [&](const HttpResult&) { done.push_back(3); });
  EXPECT_TRUE(http.busy());
  net.cell.Start();
  net.sim.RunUntil(FromSeconds(5.0));
  EXPECT_EQ(done, (std::vector<int>{1, 2, 3}));
  EXPECT_FALSE(http.busy());
}

TEST(HttpClient, ProgressCallbackMonotone) {
  Net net;
  TcpFlow& flow = net.host.CreateFlow(net.ue, FlowType::kVideo);
  HttpClient http(net.sim, flow);
  std::vector<std::uint64_t> progress;
  http.SetProgressCallback(
      [&](std::uint64_t bytes, SimTime) { progress.push_back(bytes); });
  bool done = false;
  http.Get(50'000, [&](const HttpResult&) { done = true; });
  net.cell.Start();
  net.sim.RunUntil(FromSeconds(5.0));
  ASSERT_TRUE(done);
  ASSERT_FALSE(progress.empty());
  for (std::size_t i = 1; i < progress.size(); ++i) {
    EXPECT_GT(progress[i], progress[i - 1]);
  }
  EXPECT_EQ(progress.back(), 50'000u);
}

TEST(HttpClient, ChainedGetFromCallback) {
  Net net;
  TcpFlow& flow = net.host.CreateFlow(net.ue, FlowType::kVideo);
  HttpClient http(net.sim, flow);
  int completed = 0;
  std::function<void(const HttpResult&)> chain =
      [&](const HttpResult&) {
        if (++completed < 3) http.Get(5'000, chain);
      };
  http.Get(5'000, chain);
  net.cell.Start();
  net.sim.RunUntil(FromSeconds(5.0));
  EXPECT_EQ(completed, 3);
}

TEST(HttpClient, DownloadRateReflectsSharedLink) {
  // Two video clients on one cell should each measure roughly half the
  // link in their HTTP throughput samples.
  Net net;
  const UeId ue2 =
      net.cell.AddUe(std::make_unique<StaticItbsChannel>(7));
  TcpFlow& f1 = net.host.CreateFlow(net.ue, FlowType::kVideo);
  TcpFlow& f2 = net.host.CreateFlow(ue2, FlowType::kVideo);
  HttpClient h1(net.sim, f1);
  HttpClient h2(net.sim, f2);
  std::vector<double> rates;
  // Large objects so slow-start is amortized.
  h1.Get(1'500'000,
         [&](const HttpResult& r) { rates.push_back(r.throughput_bps); });
  h2.Get(1'500'000,
         [&](const HttpResult& r) { rates.push_back(r.throughput_bps); });
  net.cell.Start();
  net.sim.RunUntil(FromSeconds(30.0));
  ASSERT_EQ(rates.size(), 2u);
  for (double r : rates) EXPECT_NEAR(r, 2.6e6, 0.8e6);
}

}  // namespace
}  // namespace flare
