// Tests for FLARE's bitrate optimization (problem (3)-(4)): the utility
// model, the closed-form continuous solver (Proposition 1), the greedy
// discrete solver, and cross-validation against exhaustive search.
#include <gtest/gtest.h>

#include <cmath>

#include "core/optimizer.h"
#include "util/rng.h"

namespace flare {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

OptFlow MakeFlow(std::vector<double> ladder_kbps, double bits_per_rb = 104,
                 int min_level = 0, int max_level = -1) {
  OptFlow f;
  for (double kbps : ladder_kbps) f.ladder_bps.push_back(kbps * 1000.0);
  f.bits_per_rb = bits_per_rb;
  f.min_level = min_level;
  f.max_level =
      max_level < 0 ? static_cast<int>(f.ladder_bps.size()) - 1 : max_level;
  return f;
}

OptProblem TestbedProblem(int n_flows, int n_data, double alpha = 1.0) {
  OptProblem p;
  p.n_data_flows = n_data;
  p.alpha = alpha;
  p.rb_rate = 50'000.0;
  for (int i = 0; i < n_flows; ++i) {
    p.flows.push_back(MakeFlow({200, 310, 450, 790, 1100, 1320, 2280,
                                2750}));
  }
  return p;
}

TEST(Utility, VideoUtilitySaturatesAtOne) {
  VideoUtilityParams params;  // beta = 10, theta = 0.2 Mbps
  EXPECT_NEAR(VideoUtility(0.2e6, params), 0.0, 1e-12);  // R = theta -> 0
  EXPECT_LT(VideoUtility(1e12, params), params.beta);    // asymptote
  EXPECT_GT(VideoUtility(1e12, params), params.beta * 0.999);
}

TEST(Utility, VideoUtilityMonotoneConcave) {
  VideoUtilityParams params;
  double prev = -kInf;
  double prev_gain = kInf;
  for (double r = 0.1e6; r <= 3.0e6; r += 0.1e6) {
    const double u = VideoUtility(r, params);
    EXPECT_GT(u, prev);
    const double gain = u - (prev == -kInf ? u : prev);
    if (prev != -kInf) {
      EXPECT_LE(gain, prev_gain + 1e-12);  // decreasing marginal utility
      prev_gain = gain;
    }
    prev = u;
  }
}

TEST(Utility, DerivativeMatchesFiniteDifference) {
  VideoUtilityParams params;
  const double r = 0.8e6;
  const double h = 1.0;
  const double fd =
      (VideoUtility(r + h, params) - VideoUtility(r - h, params)) / (2 * h);
  EXPECT_NEAR(VideoUtilityDerivative(r, params), fd, 1e-12);
}

TEST(Utility, DataUtilityShapes) {
  EXPECT_DOUBLE_EQ(DataUtility(0, 1.0, 0.5), 0.0);  // no data flows
  EXPECT_DOUBLE_EQ(DataUtility(3, 1.0, 0.0), 0.0);  // r = 0 -> log 1
  EXPECT_LT(DataUtility(3, 1.0, 0.5), 0.0);
  EXPECT_EQ(DataUtility(3, 1.0, 1.0), -kInf);
  // Scales linearly in n and alpha.
  EXPECT_DOUBLE_EQ(DataUtility(4, 2.0, 0.5), 8.0 * std::log(0.5));
}

TEST(Validate, RejectsBadProblems) {
  OptProblem p = TestbedProblem(1, 0);
  p.rb_rate = 0.0;
  EXPECT_THROW(ValidateProblem(p), std::invalid_argument);

  p = TestbedProblem(1, 0);
  p.flows[0].ladder_bps = {2e5, 1e5};  // descending
  EXPECT_THROW(ValidateProblem(p), std::invalid_argument);

  p = TestbedProblem(1, 0);
  p.flows[0].max_level = 99;
  EXPECT_THROW(ValidateProblem(p), std::invalid_argument);

  p = TestbedProblem(1, 0);
  p.flows[0].bits_per_rb = 0.0;
  EXPECT_THROW(ValidateProblem(p), std::invalid_argument);

  p = TestbedProblem(1, 0);
  p.flows[0].ladder_bps.clear();
  EXPECT_THROW(ValidateProblem(p), std::invalid_argument);
}

TEST(Continuous, SingleFlowNoDataTakesCeiling) {
  // Plenty of capacity, no data flows: the flow should get its top rate.
  OptProblem p = TestbedProblem(1, 0);
  const OptResult r = SolveContinuous(p);
  ASSERT_EQ(r.rates_bps.size(), 1u);
  EXPECT_NEAR(r.rates_bps[0], 2.75e6, 1.0);
  EXPECT_TRUE(r.feasible);
}

TEST(Continuous, CapacityBindsWithoutData) {
  // 3 flows, tiny cell: sum R/e <= rb_rate must bind.
  OptProblem p = TestbedProblem(3, 0);
  p.rb_rate = 10'000.0;  // capacity 10k RB/s * 104 bits = 1.04 Mbit/s
  const OptResult r = SolveContinuous(p);
  const double cost = RbRateCost(p, r.rates_bps);
  EXPECT_LE(cost, p.rb_rate * p.max_video_fraction * 1.001);
  EXPECT_GT(cost, p.rb_rate * 0.95);  // fully used
  // Symmetric flows get symmetric rates.
  EXPECT_NEAR(r.rates_bps[0], r.rates_bps[1], 1.0);
  EXPECT_NEAR(r.rates_bps[1], r.rates_bps[2], 1.0);
}

TEST(Continuous, DataFlowsHoldVideoBack) {
  OptProblem with_data = TestbedProblem(2, 4);
  OptProblem without = TestbedProblem(2, 0);
  with_data.rb_rate = without.rb_rate = 30'000.0;
  const OptResult a = SolveContinuous(with_data);
  const OptResult b = SolveContinuous(without);
  EXPECT_LT(a.rates_bps[0], b.rates_bps[0]);
  EXPECT_LT(a.video_fraction, b.video_fraction);
}

TEST(Continuous, AlphaShiftsBalanceTowardData) {
  OptProblem low = TestbedProblem(2, 2, /*alpha=*/0.25);
  OptProblem high = TestbedProblem(2, 2, /*alpha=*/4.0);
  low.rb_rate = high.rb_rate = 30'000.0;
  const OptResult a = SolveContinuous(low);
  const OptResult b = SolveContinuous(high);
  EXPECT_GT(a.video_fraction, b.video_fraction);
  EXPECT_GT(a.rates_bps[0], b.rates_bps[0]);
}

TEST(Continuous, BetterChannelGetsHigherRate) {
  OptProblem p = TestbedProblem(2, 2);
  p.rb_rate = 20'000.0;
  p.flows[0].bits_per_rb = 208.0;  // 2x spectral efficiency
  p.flows[1].bits_per_rb = 104.0;
  const OptResult r = SolveContinuous(p);
  EXPECT_GT(r.rates_bps[0], r.rates_bps[1]);
}

TEST(Continuous, KktStationarityHolds) {
  // For interior rates with data flows: beta*theta/R^2 == n*alpha*c/(N-S).
  OptProblem p = TestbedProblem(3, 5);
  p.rb_rate = 40'000.0;
  const OptResult r = SolveContinuous(p);
  const double s = RbRateCost(p, r.rates_bps);
  const double lambda =
      static_cast<double>(p.n_data_flows) * p.alpha / (p.rb_rate - s);
  for (std::size_t u = 0; u < p.flows.size(); ++u) {
    const double rate = r.rates_bps[u];
    const double lo = p.flows[u].ladder_bps.front();
    const double hi = p.flows[u].ladder_bps.back();
    if (rate > lo * 1.001 && rate < hi * 0.999) {  // interior
      const double marginal =
          VideoUtilityDerivative(rate, p.flows[u].utility) *
          p.flows[u].bits_per_rb;
      EXPECT_NEAR(marginal / lambda, 1.0, 1e-3);
    }
  }
}

TEST(Continuous, RespectsBoxConstraints) {
  OptProblem p = TestbedProblem(4, 1);
  p.flows[1].max_level = 2;  // cap at 450 Kbps
  p.flows[2].min_level = 3;  // floor at 790 Kbps
  const OptResult r = SolveContinuous(p);
  for (std::size_t u = 0; u < p.flows.size(); ++u) {
    const OptFlow& f = p.flows[u];
    EXPECT_GE(r.rates_bps[u],
              f.ladder_bps[static_cast<std::size_t>(f.min_level)] - 1.0);
    EXPECT_LE(r.rates_bps[u],
              f.ladder_bps[static_cast<std::size_t>(f.max_level)] + 1.0);
  }
}

TEST(Continuous, InfeasibleFloorIsFlagged) {
  OptProblem p = TestbedProblem(4, 0);
  p.rb_rate = 1'000.0;  // 104 Kbit/s cell cannot carry 4 x 200 Kbit/s
  const OptResult r = SolveContinuous(p);
  EXPECT_FALSE(r.feasible);
  for (std::size_t u = 0; u < p.flows.size(); ++u) {
    EXPECT_NEAR(r.rates_bps[u], 200'000.0, 1.0);  // pinned to the floor
  }
}

TEST(Continuous, EmptyVideoSetIsFine) {
  OptProblem p;
  p.n_data_flows = 3;
  p.rb_rate = 50'000.0;
  const OptResult r = SolveContinuous(p);
  EXPECT_TRUE(r.rates_bps.empty());
  EXPECT_DOUBLE_EQ(r.video_fraction, 0.0);
}

TEST(Continuous, BeatsEveryDiscretePoint) {
  // The relaxation's optimum upper-bounds the discrete optimum.
  Rng rng(21);
  for (int trial = 0; trial < 20; ++trial) {
    OptProblem p = TestbedProblem(3, static_cast<int>(
                                         rng.UniformInt(0, 4)));
    p.rb_rate = rng.Uniform(5'000.0, 60'000.0);
    for (OptFlow& f : p.flows) {
      f.bits_per_rb = rng.Uniform(30.0, 500.0);
    }
    const OptResult relaxed = SolveContinuous(p);
    const OptResult discrete = SolveExhaustive(p);
    if (relaxed.feasible && discrete.feasible &&
        discrete.objective > -kInf) {
      EXPECT_GE(relaxed.objective, discrete.objective - 1e-6)
          << "trial " << trial;
    }
  }
}

TEST(Greedy, MatchesExhaustiveOnSmallInstances) {
  Rng rng(7);
  int exact_matches = 0;
  constexpr int kTrials = 40;
  for (int trial = 0; trial < kTrials; ++trial) {
    OptProblem p;
    p.n_data_flows = static_cast<int>(rng.UniformInt(0, 3));
    p.alpha = rng.Uniform(0.25, 4.0);
    p.rb_rate = rng.Uniform(3'000.0, 40'000.0);
    const int n_flows = static_cast<int>(rng.UniformInt(1, 3));
    for (int i = 0; i < n_flows; ++i) {
      OptFlow f = MakeFlow({100, 250, 500, 1000, 2000, 3000},
                           rng.Uniform(30.0, 400.0));
      p.flows.push_back(f);
    }
    const OptResult greedy = SolveGreedy(p);
    const OptResult best = SolveExhaustive(p);
    ASSERT_EQ(greedy.feasible, best.feasible) << "trial " << trial;
    if (!best.feasible) continue;
    // Greedy must be within a whisker of the optimum (and usually equal).
    EXPECT_GE(greedy.objective, best.objective - 0.05 *
                                   std::abs(best.objective) - 1e-9)
        << "trial " << trial;
    if (std::abs(greedy.objective - best.objective) < 1e-9) {
      ++exact_matches;
    }
  }
  EXPECT_GE(exact_matches, kTrials * 3 / 4);
}

TEST(Greedy, RespectsCapacity) {
  OptProblem p = TestbedProblem(5, 2);
  p.rb_rate = 25'000.0;
  const OptResult r = SolveGreedy(p);
  EXPECT_LE(RbRateCost(p, r.rates_bps),
            p.rb_rate * p.max_video_fraction + 1e-6);
  for (std::size_t u = 0; u < p.flows.size(); ++u) {
    EXPECT_GE(r.levels[u], p.flows[u].min_level);
    EXPECT_LE(r.levels[u], p.flows[u].max_level);
  }
}

TEST(Greedy, InfeasibleFloorReportsMinLevels) {
  OptProblem p = TestbedProblem(4, 1);
  p.rb_rate = 1'000.0;
  const OptResult r = SolveGreedy(p);
  EXPECT_FALSE(r.feasible);
  for (int level : r.levels) EXPECT_EQ(level, 0);
}

TEST(Greedy, SaturatesWhenCapacityAmple) {
  OptProblem p = TestbedProblem(2, 0);
  p.rb_rate = 1e9;
  const OptResult r = SolveGreedy(p);
  for (int level : r.levels) EXPECT_EQ(level, 7);  // top rung
}

TEST(Greedy, MoreDataFlowsLowerVideoRates) {
  OptProblem few = TestbedProblem(3, 1);
  OptProblem many = TestbedProblem(3, 8);
  few.rb_rate = many.rb_rate = 50'000.0;
  const OptResult a = SolveGreedy(few);
  const OptResult b = SolveGreedy(many);
  double sum_a = 0.0;
  double sum_b = 0.0;
  for (double x : a.rates_bps) sum_a += x;
  for (double x : b.rates_bps) sum_b += x;
  EXPECT_GE(sum_a, sum_b);
}

TEST(DiscretizeDown, RoundsToLadder) {
  OptProblem p = TestbedProblem(2, 0);
  const std::vector<int> levels =
      DiscretizeDown(p, {800'000.0, 150'000.0});
  EXPECT_EQ(levels[0], 3);  // 790 <= 800 < 1100
  EXPECT_EQ(levels[1], 0);  // below 200 floors at min_level
}

TEST(DiscretizeDown, HonoursLevelBounds) {
  OptProblem p = TestbedProblem(1, 0);
  p.flows[0].max_level = 2;
  const std::vector<int> levels = DiscretizeDown(p, {2.75e6});
  EXPECT_EQ(levels[0], 2);
}

// Property sweep over problem shapes: both solvers stay feasible and the
// continuous objective dominates the rounded-down one.
class OptimizerProperty
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(OptimizerProperty, SolversAreConsistent) {
  const auto [n_flows, n_data, alpha] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n_flows * 100 + n_data * 10) +
          static_cast<std::uint64_t>(alpha * 7));
  OptProblem p;
  p.n_data_flows = n_data;
  p.alpha = alpha;
  p.rb_rate = 50'000.0;
  for (int i = 0; i < n_flows; ++i) {
    p.flows.push_back(MakeFlow({100, 250, 500, 1000, 2000, 3000},
                               rng.Uniform(30.0, 700.0)));
  }
  const OptResult cont = SolveContinuous(p);
  const OptResult greedy = SolveGreedy(p);
  ASSERT_EQ(cont.feasible, greedy.feasible);
  if (!cont.feasible) return;

  // Rounded-down relaxation is a valid discrete point no better than the
  // greedy discrete solution's neighbourhood, and never above the bound.
  const std::vector<int> rounded = DiscretizeDown(p, cont.rates_bps);
  std::vector<double> rounded_rates;
  for (std::size_t u = 0; u < rounded.size(); ++u) {
    rounded_rates.push_back(
        p.flows[u].ladder_bps[static_cast<std::size_t>(rounded[u])]);
  }
  EXPECT_LE(RbRateCost(p, rounded_rates),
            p.rb_rate * p.max_video_fraction + 1e-6);
  EXPECT_GE(cont.objective, greedy.objective - 1e-6);
  EXPECT_GE(cont.objective, Objective(p, rounded_rates) - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OptimizerProperty,
    ::testing::Combine(::testing::Values(1, 4, 8, 32),
                       ::testing::Values(0, 1, 8),
                       ::testing::Values(0.25, 1.0, 4.0)));

}  // namespace
}  // namespace flare
