// Tests for the extended related-work baselines: PANDA and MPC.
#include <gtest/gtest.h>

#include "abr/bba.h"
#include "abr/mpc.h"
#include "abr/panda.h"
#include "has/mpd.h"

namespace flare {
namespace {

Mpd TestMpd() { return MakeMpd(SimulationLadderKbps(), 10.0); }

AbrContext Ctx(const Mpd& mpd, std::vector<double> history,
               int last_index = -1, double buffer_s = 20.0,
               SimTime now = 0) {
  AbrContext c;
  c.mpd = &mpd;
  c.now = now;
  c.throughput_history_bps = std::move(history);
  c.last_index = last_index;
  c.buffer_s = buffer_s;
  return c;
}

// ------------------------------ PANDA -------------------------------------

TEST(Panda, StartsAtLowestRung) {
  PandaAbr abr;
  const Mpd mpd = TestMpd();
  EXPECT_EQ(abr.NextRepresentation(Ctx(mpd, {})), 0);
}

TEST(Panda, ProbesUpwardUnderStableThroughput) {
  PandaAbr abr;
  const Mpd mpd = TestMpd();
  // Measured throughput stays at 2 Mbit/s; the probe estimate must creep
  // up from it (additive increase) rather than sitting exactly on it.
  SimTime now = 0;
  for (int i = 0; i < 10; ++i) {
    now += FromSeconds(10.0);
    abr.OnSegmentComplete(Ctx(mpd, {2e6}, 2, 20.0, now), 2e6);
  }
  EXPECT_GT(abr.probe_estimate_bps(), 2e6);
  EXPECT_LT(abr.probe_estimate_bps(), 4e6);  // bounded creep
}

TEST(Panda, BacksOffWhenMeasurementDrops) {
  PandaAbr abr;
  const Mpd mpd = TestMpd();
  SimTime now = 0;
  for (int i = 0; i < 10; ++i) {
    now += FromSeconds(10.0);
    abr.OnSegmentComplete(Ctx(mpd, {2e6}, 2, 20.0, now), 2e6);
  }
  const double before = abr.probe_estimate_bps();
  for (int i = 0; i < 5; ++i) {
    now += FromSeconds(10.0);
    abr.OnSegmentComplete(Ctx(mpd, {0.3e6}, 2, 20.0, now), 0.3e6);
  }
  EXPECT_LT(abr.probe_estimate_bps(), before);
}

TEST(Panda, DeadZonePreventsBoundaryFlapping) {
  PandaAbr abr;
  const Mpd mpd = TestMpd();
  SimTime now = 0;
  // Train the estimate to ~1.05 Mbit/s: a raw quantizer would flap
  // between the 500 and 1000 rungs; PANDA's dead zone must hold.
  for (int i = 0; i < 30; ++i) {
    now += FromSeconds(10.0);
    abr.OnSegmentComplete(Ctx(mpd, {1.02e6}, 2, 20.0, now), 1.02e6);
  }
  const int first = abr.NextRepresentation(Ctx(mpd, {}, 2, 20.0, now));
  int flips = 0;
  int level = first;
  for (int i = 0; i < 20; ++i) {
    now += FromSeconds(10.0);
    const double sample = i % 2 == 0 ? 0.98e6 : 1.12e6;
    abr.OnSegmentComplete(Ctx(mpd, {sample}, level, 20.0, now), sample);
    const int next = abr.NextRepresentation(Ctx(mpd, {}, level, 20.0, now));
    if (next != level) ++flips;
    level = next;
  }
  EXPECT_LE(flips, 2);
}

TEST(Panda, SchedulingDelaysWhenBufferAboveTarget) {
  PandaConfig config;
  config.buffer_target_s = 20.0;
  config.beta = 0.5;
  PandaAbr abr(config);
  const Mpd mpd = TestMpd();
  abr.OnSegmentComplete(Ctx(mpd, {1e6}, 1, 30.0, FromSeconds(10)), 1e6);
  EXPECT_GT(abr.RequestDelay(Ctx(mpd, {}, 1, /*buffer=*/30.0)), 0);
  EXPECT_EQ(abr.RequestDelay(Ctx(mpd, {}, 1, /*buffer=*/10.0)), 0);
}

// ------------------------------- MPC --------------------------------------

TEST(Mpc, StartsAtLowestRung) {
  MpcAbr abr;
  const Mpd mpd = TestMpd();
  EXPECT_EQ(abr.NextRepresentation(Ctx(mpd, {})), 0);
}

TEST(Mpc, PicksSustainableRateWhenStallInHorizon) {
  MpcAbr abr;
  const Mpd mpd = TestMpd();
  // 2.4 Mbit/s prediction (discounted from 2.7): a 3000 Kbps segment
  // takes ~12.3 s; with only a 10 s buffer the stall lands inside the
  // horizon, so MPC holds the sustainable 2000 rung.
  const int pick = abr.NextRepresentation(
      Ctx(mpd, {2.7e6, 2.7e6, 2.7e6, 2.7e6, 2.7e6}, 4, 10.0));
  EXPECT_EQ(pick, 4);
  // With a deep buffer the stall exits the horizon and MPC (faithfully)
  // reaches for the top rung — the myopia longer horizons mitigate.
  const int deep = abr.NextRepresentation(
      Ctx(mpd, {2.7e6, 2.7e6, 2.7e6, 2.7e6, 2.7e6}, 4, 30.0));
  EXPECT_EQ(deep, 5);
}

TEST(Mpc, AvoidsRebufferingWhenBufferLow) {
  MpcConfig config;
  config.mu = 20.0;
  MpcAbr abr(config);
  const Mpd mpd = TestMpd();
  // Prediction ~0.45 Mbit/s, buffer nearly empty: picking 500 Kbps would
  // stall; MPC must step down despite the switching penalty.
  const int pick = abr.NextRepresentation(
      Ctx(mpd, {0.5e6, 0.5e6, 0.5e6}, 2, 2.0));
  EXPECT_LT(pick, 2);
}

TEST(Mpc, SwitchingPenaltyDampensOscillation) {
  MpcConfig smooth;
  smooth.lambda = 5.0;
  MpcAbr damped(smooth);
  MpcConfig loose;
  loose.lambda = 0.0;
  MpcAbr free(loose);
  const Mpd mpd = TestMpd();
  // Prediction right at a rung boundary: the damped controller should
  // stay, the free one may move.
  const AbrContext c = Ctx(mpd, {1.15e6, 1.15e6, 1.15e6}, 3, 25.0);
  EXPECT_EQ(damped.NextRepresentation(c), 3);
  EXPECT_LE(free.NextRepresentation(c), 3);
}

TEST(Mpc, ScorePlanAccountsRebuffering) {
  MpcAbr abr;
  const Mpd mpd = TestMpd();
  // One segment at 3 Mbit/s on a 1 Mbit/s link with a 5 s buffer: the
  // 30 s download stalls ~25 s.
  const double bad =
      abr.ScorePlan(mpd, {5}, 5, /*buffer_s=*/5.0, /*predicted=*/1e6);
  const double good =
      abr.ScorePlan(mpd, {2}, 5, /*buffer_s=*/5.0, /*predicted=*/1e6);
  EXPECT_LT(bad, good);
}

TEST(Mpc, HorizonOneIsGreedy) {
  MpcConfig config;
  config.horizon = 1;
  config.lambda = 0.0;
  config.max_step = 5;
  MpcAbr abr(config);
  const Mpd mpd = TestMpd();
  // With no lookahead and no switch penalty, picks the best single move.
  const int pick =
      abr.NextRepresentation(Ctx(mpd, {3.5e6, 3.5e6, 3.5e6}, 0, 30.0));
  EXPECT_GE(pick, 4);
}

TEST(Mpc, PlanEnumerationRespectsMaxStep) {
  MpcConfig config;
  config.max_step = 1;
  MpcAbr abr(config);
  const Mpd mpd = TestMpd();
  // Huge prediction but max_step=1: first move can only be one rung up.
  const int pick =
      abr.NextRepresentation(Ctx(mpd, {50e6, 50e6, 50e6}, 1, 30.0));
  EXPECT_EQ(pick, 2);
}

// ------------------------------- BBA --------------------------------------

TEST(Bba, ReservoirPinsToMinimum) {
  BbaAbr abr;
  const Mpd mpd = TestMpd();
  EXPECT_EQ(abr.NextRepresentation(Ctx(mpd, {}, 3, /*buffer=*/2.0)), 0);
  EXPECT_EQ(abr.NextRepresentation(Ctx(mpd, {}, 3, 5.0)), 0);
}

TEST(Bba, CushionPinsToMaximum) {
  BbaAbr abr;
  const Mpd mpd = TestMpd();
  EXPECT_EQ(abr.NextRepresentation(Ctx(mpd, {}, 0, 25.0)), 5);
  EXPECT_EQ(abr.NextRepresentation(Ctx(mpd, {}, 0, 60.0)), 5);
}

TEST(Bba, LinearMapMonotoneInBuffer) {
  BbaAbr abr;
  const Mpd mpd = TestMpd();
  int prev = -1;
  for (double buffer = 5.0; buffer <= 25.0; buffer += 1.0) {
    const int pick = abr.NextRepresentation(Ctx(mpd, {}, 0, buffer));
    EXPECT_GE(pick, prev);
    prev = pick;
  }
}

TEST(Bba, IgnoresThroughputEntirely) {
  BbaAbr abr;
  const Mpd mpd = TestMpd();
  const int with_history =
      abr.NextRepresentation(Ctx(mpd, {50e6, 50e6}, 0, 10.0));
  const int without =
      abr.NextRepresentation(Ctx(mpd, {}, 0, 10.0));
  EXPECT_EQ(with_history, without);
}

}  // namespace
}  // namespace flare
