// flare_report core: artifact flattening, watch-spec parsing, the
// direction-aware regression gate, and trajectory line emission. These are
// the guarantees CI leans on when it fails a build over a QoE regression.
#include "report_core.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace flare {
namespace {

RunSummary Flatten(const std::string& text) {
  JsonValue root;
  std::string error;
  EXPECT_TRUE(ParseJson(text, &root, &error)) << error;
  RunSummary run;
  FlattenRun(root, &run);
  return run;
}

TEST(ReportFlatten, BenchEnvelopeDescendsIntoRun) {
  const RunSummary run = Flatten(R"({
    "schema_version": 1,
    "scenario": "fig6",
    "config": {"duration_s": 60, "scheme": "flare"},
    "run": {
      "counters": {"player.stalls": 2},
      "gauges": {},
      "histograms": {}
    }
  })");
  EXPECT_EQ(run.schema_version, 1);
  EXPECT_EQ(run.scenario, "fig6");
  ASSERT_EQ(run.metrics.count("metrics.counters.player.stalls"), 1u);
  EXPECT_DOUBLE_EQ(run.metrics.at("metrics.counters.player.stalls"), 2.0);
}

TEST(ReportFlatten, TraceExportFlattensQoeHealthAndPlayers) {
  const RunSummary run = Flatten(R"({
    "metrics": {
      "counters": {"controller.bai_total": 10},
      "gauges": {"churn.sessions_active": 3},
      "histograms": {"h": {"count": 0, "sum": 0, "mean": null,
                           "p50": null, "p95": null, "p99": null}}
    },
    "run_health": {"healthy": false, "warnings": [{"t_s": 1.0, "cell": 0,
      "kind": "stall_streak", "client": 2, "value": 3, "detail": "x"}]},
    "qoe": {
      "weights": {"lambda_switch": 1, "mu_stall": 8},
      "sessions": [],
      "cells": [{"cell": 0, "sessions": 2, "avg_qoe": 1.5}],
      "summary": {"sessions": 2, "avg_bitrate_bps": 2000000,
                  "avg_qoe": 1.5, "stall_ratio": 0.01,
                  "rung_change_causes": {"init": 2, "solver-up": 5}}
    },
    "players": [
      {"cell": 0, "client": 0, "flow": 1, "avg_bitrate_bps": 1000000,
       "switches": 1, "stalls": 0, "stall_s": 0, "qoe": 1.0, "segments": 10},
      {"cell": 0, "client": 1, "flow": 2, "avg_bitrate_bps": 3000000,
       "switches": 3, "stalls": 2, "stall_s": 1.5, "qoe": 2.0, "segments": 10}
    ]
  })");
  EXPECT_DOUBLE_EQ(run.metrics.at("metrics.counters.controller.bai_total"),
                   10.0);
  // Null histogram aggregates are skipped, not poisoned to NaN.
  EXPECT_EQ(run.metrics.count("metrics.histograms.h.p50"), 0u);
  EXPECT_DOUBLE_EQ(run.metrics.at("metrics.histograms.h.count"), 0.0);
  EXPECT_DOUBLE_EQ(run.metrics.at("health.healthy"), 0.0);
  EXPECT_DOUBLE_EQ(run.metrics.at("health.warnings"), 1.0);
  EXPECT_DOUBLE_EQ(run.metrics.at("qoe.summary.avg_qoe"), 1.5);
  EXPECT_DOUBLE_EQ(run.metrics.at("qoe.summary.cause.solver-up"), 5.0);
  // Causes absent from the run are zero-filled so diffs never go missing.
  EXPECT_DOUBLE_EQ(run.metrics.at("qoe.summary.cause.capacity-down"), 0.0);
  EXPECT_DOUBLE_EQ(run.metrics.at("qoe.cell0.avg_qoe"), 1.5);
  EXPECT_DOUBLE_EQ(run.metrics.at("players.count"), 2.0);
  EXPECT_DOUBLE_EQ(run.metrics.at("players.avg_bitrate_bps"), 2000000.0);
  EXPECT_DOUBLE_EQ(run.metrics.at("players.stalls"), 2.0);
}

TEST(ReportFlatten, GoogleBenchmarkFormat) {
  const RunSummary run = Flatten(R"({
    "benchmarks": [
      {"name": "BM_DecideBai/32", "real_time": 12.5, "cpu_time": 12.0,
       "iterations": 1000}
    ]
  })");
  EXPECT_DOUBLE_EQ(run.metrics.at("bench.BM_DecideBai/32.real_time"), 12.5);
  EXPECT_DOUBLE_EQ(run.metrics.at("bench.BM_DecideBai/32.iterations"),
                   1000.0);
}

TEST(ReportFlatten, HostProvenanceReadFromEnvelopeNotAmbientState) {
  const RunSummary run = Flatten(R"({
    "schema_version": 1,
    "scenario": "fig9",
    "config": {"duration_s": 5},
    "host": {"git_sha": "abc1234", "hostname": "ci-runner-7",
             "hardware_concurrency": 16},
    "run": {"counters": {}, "gauges": {"fig9.x": 1}, "histograms": {}}
  })");
  EXPECT_EQ(run.git_sha, "abc1234");
  EXPECT_EQ(run.hostname, "ci-runner-7");
  EXPECT_EQ(run.hardware_concurrency, 16);
  // Provenance never leaks into the compared metric set.
  EXPECT_EQ(run.metrics.count("host.hardware_concurrency"), 0u);

  // Legacy envelopes without the host section stay loadable.
  const RunSummary legacy = Flatten(R"({
    "schema_version": 1, "scenario": "fig6", "config": {},
    "run": {"counters": {}, "gauges": {}, "histograms": {}}
  })");
  EXPECT_TRUE(legacy.git_sha.empty());
  EXPECT_TRUE(legacy.hostname.empty());
  EXPECT_EQ(legacy.hardware_concurrency, 0);
}

TEST(ReportWatch, ParsesSpecsAndRejectsMalformed) {
  WatchSpec spec;
  std::string error;
  ASSERT_TRUE(ParseWatchSpec("qoe.summary.avg_qoe:up", &spec, &error));
  EXPECT_EQ(spec.metric, "qoe.summary.avg_qoe");
  EXPECT_TRUE(spec.higher_is_better);
  EXPECT_DOUBLE_EQ(spec.threshold_pct, 5.0);

  ASSERT_TRUE(ParseWatchSpec("qoe.summary.stall_ratio:down:12.5", &spec,
                             &error));
  EXPECT_FALSE(spec.higher_is_better);
  EXPECT_DOUBLE_EQ(spec.threshold_pct, 12.5);

  EXPECT_FALSE(ParseWatchSpec("", &spec, &error));
  EXPECT_FALSE(ParseWatchSpec("metric", &spec, &error));
  EXPECT_FALSE(ParseWatchSpec("metric:sideways", &spec, &error));
  EXPECT_FALSE(ParseWatchSpec("metric:up:notanumber", &spec, &error));
  EXPECT_FALSE(ParseWatchSpec("metric:up:-3", &spec, &error));
}

TEST(ReportWatch, DefaultsGateRuntimeOverheadDownward) {
  // The parallel-runtime honesty gate rides the default watch list: the
  // 8-worker overhead gauge from bench_fig9_scaling, lower-is-better,
  // so an overhead increase exits 3 exactly like a QoE regression.
  const std::vector<WatchSpec> watches = DefaultWatches(5.0);
  bool found = false;
  for (const WatchSpec& w : watches) {
    if (w.metric != "metrics.gauges.fig9.multicell.workers8.overhead_pct") {
      continue;
    }
    found = true;
    EXPECT_FALSE(w.higher_is_better);
    EXPECT_DOUBLE_EQ(w.threshold_pct, 5.0);
  }
  EXPECT_TRUE(found);
}

TEST(ReportWatch, DefaultsGateBatchSolverTailLatencyDownward) {
  // The batched-solver latency gate rides the default watch list too: the
  // 10k-flow p99 from bench_optimizer's ladder export, lower-is-better,
  // so an SoA-solver slowdown exits 3 without any extra CLI flags.
  const std::vector<WatchSpec> watches = DefaultWatches(7.5);
  bool found = false;
  for (const WatchSpec& w : watches) {
    if (w.metric != "metrics.gauges.optimizer.batch.flows10k.p99_us") {
      continue;
    }
    found = true;
    EXPECT_FALSE(w.higher_is_better);
    EXPECT_DOUBLE_EQ(w.threshold_pct, 7.5);
  }
  EXPECT_TRUE(found);
}

RunSummary MakeRun(const std::string& label,
                   std::map<std::string, double> metrics) {
  RunSummary run;
  run.label = label;
  run.metrics = std::move(metrics);
  return run;
}

TEST(ReportWatch, DefaultsGateTelemetryDisabledHookDownward) {
  // Zero-cost-when-off guard: the measured disabled MaybePublish hook
  // (single-digit nanoseconds, so the threshold floors at 100% to ride
  // out timing noise) is watched lower-is-better by default.
  const std::vector<WatchSpec> watches = DefaultWatches(5.0);
  bool found = false;
  for (const WatchSpec& w : watches) {
    if (w.metric != "metrics.gauges.obs.telemetry.disabled_hook_ns") {
      continue;
    }
    found = true;
    EXPECT_FALSE(w.higher_is_better);
    EXPECT_GE(w.threshold_pct, 100.0);
  }
  EXPECT_TRUE(found);
}

TEST(ReportWatch, DefaultsGateControlPlaneSlosDownward) {
  // The networked control plane rides the default watch list: the
  // loadgen-measured assignment-turnaround p99 and session blocking
  // rate (BENCH_oneapid.json) are lower-is-better, so a server
  // regression exits 3 without extra CLI flags.
  const std::vector<WatchSpec> watches = DefaultWatches(5.0);
  bool found_p99 = false;
  bool found_blocking = false;
  for (const WatchSpec& w : watches) {
    if (w.metric == "metrics.gauges.svc.oneapi.assign_turnaround.p99_us") {
      found_p99 = true;
      EXPECT_FALSE(w.higher_is_better);
      EXPECT_DOUBLE_EQ(w.threshold_pct, 5.0);
    }
    if (w.metric == "metrics.gauges.svc.oneapi.blocking_rate") {
      found_blocking = true;
      EXPECT_FALSE(w.higher_is_better);
    }
  }
  EXPECT_TRUE(found_p99);
  EXPECT_TRUE(found_blocking);

  // End to end through Compare: a turnaround-tail blowup regresses, a
  // tail improvement plus unchanged blocking rate passes.
  const RunSummary baseline = MakeRun(
      "base", {{"metrics.gauges.svc.oneapi.assign_turnaround.p99_us", 1000.0},
               {"metrics.gauges.svc.oneapi.blocking_rate", 0.1}});
  const RunSummary slower = MakeRun(
      "slow", {{"metrics.gauges.svc.oneapi.assign_turnaround.p99_us", 1500.0},
               {"metrics.gauges.svc.oneapi.blocking_rate", 0.1}});
  EXPECT_TRUE(Compare(baseline, slower, watches).HasRegression());
  const RunSummary faster = MakeRun(
      "fast", {{"metrics.gauges.svc.oneapi.assign_turnaround.p99_us", 800.0},
               {"metrics.gauges.svc.oneapi.blocking_rate", 0.1}});
  EXPECT_FALSE(Compare(baseline, faster, watches).HasRegression());
}

TEST(ReportWatch, DefaultsGateRequestStageTailsDownward) {
  // Per-stage attribution gates: the tracing loadgen folds the daemon's
  // solve and queue_wait p99 gauges into BENCH_oneapid.json, and both
  // ride the default watch list lower-is-better. A stage-tail blowup
  // exits 3 even when the end-to-end turnaround watch stays green.
  const std::vector<WatchSpec> watches = DefaultWatches(5.0);
  bool found_solve = false;
  bool found_queue = false;
  for (const WatchSpec& w : watches) {
    if (w.metric == "metrics.gauges.svc.oneapi.stage.solve.p99_us") {
      found_solve = true;
      EXPECT_FALSE(w.higher_is_better);
      EXPECT_DOUBLE_EQ(w.threshold_pct, 5.0);
    }
    if (w.metric == "metrics.gauges.svc.oneapi.stage.queue_wait.p99_us") {
      found_queue = true;
      EXPECT_FALSE(w.higher_is_better);
    }
  }
  EXPECT_TRUE(found_solve);
  EXPECT_TRUE(found_queue);

  // A queue_wait tail regression trips the gate on its own.
  const RunSummary baseline = MakeRun(
      "base",
      {{"metrics.gauges.svc.oneapi.stage.solve.p99_us", 200.0},
       {"metrics.gauges.svc.oneapi.stage.queue_wait.p99_us", 400.0}});
  const RunSummary congested = MakeRun(
      "congested",
      {{"metrics.gauges.svc.oneapi.stage.solve.p99_us", 200.0},
       {"metrics.gauges.svc.oneapi.stage.queue_wait.p99_us", 900.0}});
  EXPECT_TRUE(Compare(baseline, congested, watches).HasRegression());
  const RunSummary steady = MakeRun(
      "steady",
      {{"metrics.gauges.svc.oneapi.stage.solve.p99_us", 190.0},
       {"metrics.gauges.svc.oneapi.stage.queue_wait.p99_us", 410.0}});
  EXPECT_FALSE(Compare(baseline, steady, watches).HasRegression());

  // Old BENCH files from untraced runs carry no stage gauges at all:
  // absent in both runs is neither a regression nor a missing-watch
  // warning, so the new defaults stay backward-compatible.
  const RunSummary old_base = MakeRun(
      "old", {{"metrics.gauges.svc.oneapi.assign_turnaround.p99_us", 1000.0}});
  const RunSummary old_cand = MakeRun(
      "old2", {{"metrics.gauges.svc.oneapi.assign_turnaround.p99_us", 1010.0}});
  const RunComparison cmp = Compare(old_base, old_cand, watches);
  EXPECT_FALSE(cmp.HasRegression());
  for (const std::string& missing : cmp.missing_watched) {
    EXPECT_EQ(missing.find("svc.oneapi.stage."), std::string::npos)
        << missing;
  }
}

TEST(ReportCompare, FlagsDirectionAwareRegressions) {
  const RunSummary baseline = MakeRun("base", {
      {"qoe.summary.avg_qoe", 2.0},
      {"qoe.summary.stall_ratio", 0.10},
      {"untracked.counter", 5.0},
  });
  const RunSummary candidate = MakeRun("cand", {
      {"qoe.summary.avg_qoe", 1.6},     // -20% on an up metric
      {"qoe.summary.stall_ratio", 0.2}, // +100% on a down metric
      {"untracked.counter", 1.0},       // -80% but unwatched
  });
  const std::vector<WatchSpec> watches = {
      {"qoe.summary.avg_qoe", true, 5.0},
      {"qoe.summary.stall_ratio", false, 5.0},
  };
  const RunComparison cmp = Compare(baseline, candidate, watches);
  EXPECT_TRUE(cmp.HasRegression());
  ASSERT_EQ(cmp.deltas.size(), 3u);  // sorted by metric name
  EXPECT_EQ(cmp.deltas[0].metric, "qoe.summary.avg_qoe");
  EXPECT_TRUE(cmp.deltas[0].watched);
  EXPECT_TRUE(cmp.deltas[0].regressed);
  EXPECT_NEAR(cmp.deltas[0].delta_pct, -20.0, 1e-9);
  EXPECT_TRUE(cmp.deltas[1].regressed);  // stall_ratio went up
  EXPECT_FALSE(cmp.deltas[2].watched);
  EXPECT_FALSE(cmp.deltas[2].regressed);
}

TEST(ReportCompare, WithinThresholdPasses) {
  const RunSummary baseline =
      MakeRun("base", {{"qoe.summary.avg_qoe", 2.0}});
  const RunSummary candidate =
      MakeRun("cand", {{"qoe.summary.avg_qoe", 1.95}});  // -2.5%
  const RunComparison cmp =
      Compare(baseline, candidate, {{"qoe.summary.avg_qoe", true, 5.0}});
  EXPECT_FALSE(cmp.HasRegression());
  ASSERT_EQ(cmp.deltas.size(), 1u);
  EXPECT_TRUE(cmp.deltas[0].watched);
  EXPECT_FALSE(cmp.deltas[0].regressed);
}

TEST(ReportCompare, ZeroBaselineIsNeverGated) {
  const RunSummary baseline =
      MakeRun("base", {{"qoe.summary.avg_qoe", 0.0}});
  const RunSummary candidate =
      MakeRun("cand", {{"qoe.summary.avg_qoe", -5.0}});
  const RunComparison cmp =
      Compare(baseline, candidate, {{"qoe.summary.avg_qoe", true, 5.0}});
  EXPECT_FALSE(cmp.HasRegression());
}

TEST(ReportCompare, WatchedMetricMissingFromOneRunIsSurfaced) {
  const RunSummary baseline =
      MakeRun("base", {{"qoe.summary.avg_qoe", 2.0}});
  const RunSummary candidate = MakeRun("cand", {{"players.qoe", 1.0}});
  const RunComparison cmp =
      Compare(baseline, candidate, {{"qoe.summary.avg_qoe", true, 5.0}});
  ASSERT_EQ(cmp.missing_watched.size(), 1u);
  EXPECT_EQ(cmp.missing_watched[0], "qoe.summary.avg_qoe");
  // Missing is a warning, not a regression: renames should be loud but not
  // spuriously red.
  EXPECT_FALSE(cmp.HasRegression());
}

TEST(ReportOutput, MarkdownFlagsRegressions) {
  const RunSummary baseline =
      MakeRun("base", {{"qoe.summary.avg_qoe", 2.0}});
  const RunSummary candidate =
      MakeRun("cand", {{"qoe.summary.avg_qoe", 1.0}});
  const RunComparison cmp =
      Compare(baseline, candidate, {{"qoe.summary.avg_qoe", true, 5.0}});
  std::ostringstream out;
  WriteMarkdownReport(out, {baseline, candidate}, {cmp});
  EXPECT_NE(out.str().find("REGRESSED"), std::string::npos) << out.str();
  EXPECT_NE(out.str().find("qoe.summary.avg_qoe"), std::string::npos);
}

TEST(ReportOutput, CsvListsEveryMetricOfEveryRun) {
  const RunSummary a = MakeRun("a", {{"m1", 1.0}, {"m2", 2.0}});
  const RunSummary b = MakeRun("b", {{"m1", 3.0}});
  std::ostringstream out;
  WriteCsvReport(out, {a, b});
  const std::string csv = out.str();
  EXPECT_NE(csv.find("a,m1,1"), std::string::npos) << csv;
  EXPECT_NE(csv.find("a,m2,2"), std::string::npos) << csv;
  EXPECT_NE(csv.find("b,m1,3"), std::string::npos) << csv;
}

TEST(ReportOutput, TrajectoryLineIsOneParseableJsonObject) {
  RunSummary run = MakeRun("fig6", {{"qoe.summary.avg_qoe", 1.25}});
  run.scenario = "fig6";
  run.schema_version = 1;
  run.path = "/tmp/BENCH_fig6.json";
  std::ostringstream out;
  WriteTrajectoryLine(out, run, 1754000000LL);
  const std::string line = out.str();
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');
  EXPECT_EQ(line.find('\n'), line.size() - 1);  // exactly one line

  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJson(line, &doc, &error)) << error;
  EXPECT_EQ(doc.Find("scenario")->AsString(), "fig6");
  EXPECT_EQ(doc.Find("label")->AsString(), "fig6");
  EXPECT_DOUBLE_EQ(doc.Find("recorded_unix")->AsNumber(), 1754000000.0);
  EXPECT_DOUBLE_EQ(
      doc.FindPath({"metrics", "qoe.summary.avg_qoe"})->AsNumber(), 1.25);
}

TEST(ReportOutput, TrajectoryLineStampsHostProvenance) {
  RunSummary run = MakeRun("fig6", {{"qoe.summary.avg_qoe", 1.25}});
  run.scenario = "fig6";
  run.git_sha = "abc1234";
  run.hostname = "ci-runner-7";
  run.hardware_concurrency = 16;
  std::ostringstream out;
  WriteTrajectoryLine(out, run, 1754000000LL);
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJson(out.str(), &doc, &error)) << error;
  EXPECT_EQ(doc.Find("git_sha")->AsString(), "abc1234");
  EXPECT_EQ(doc.Find("hostname")->AsString(), "ci-runner-7");
  EXPECT_DOUBLE_EQ(doc.Find("hardware_concurrency")->AsNumber(), 16.0);

  // Runs loaded from artifacts without provenance omit the fields
  // instead of stamping empties.
  RunSummary bare = MakeRun("fig6", {{"qoe.summary.avg_qoe", 1.0}});
  std::ostringstream bare_out;
  WriteTrajectoryLine(bare_out, bare, 1754000000LL);
  EXPECT_EQ(bare_out.str().find("git_sha"), std::string::npos);
  EXPECT_EQ(bare_out.str().find("hostname"), std::string::npos);
  EXPECT_EQ(bare_out.str().find("hardware_concurrency"),
            std::string::npos);
}

TEST(ReportOutput, AppendTrajectoryAccumulatesLines) {
  const std::string path =
      ::testing::TempDir() + "/report_test_trajectory.jsonl";
  std::remove(path.c_str());
  const RunSummary a = MakeRun("a", {{"m", 1.0}});
  const RunSummary b = MakeRun("b", {{"m", 2.0}});
  ASSERT_TRUE(AppendTrajectory(path, {a}, 100));
  ASSERT_TRUE(AppendTrajectory(path, {a, b}, 200));

  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    JsonValue doc;
    std::string error;
    EXPECT_TRUE(ParseJson(line, &doc, &error)) << error;
    ++lines;
  }
  EXPECT_EQ(lines, 3);
  std::remove(path.c_str());
}

TEST(ReportLoad, LoadRunSummaryReportsMissingAndMalformedFiles) {
  RunSummary run;
  std::string error;
  EXPECT_FALSE(LoadRunSummary("/nonexistent/run.json", &run, &error));
  EXPECT_FALSE(error.empty());

  const std::string path = ::testing::TempDir() + "/report_test_bad.json";
  {
    std::ofstream out(path);
    out << "{not json";
  }
  EXPECT_FALSE(LoadRunSummary(path, &run, &error));

  {
    std::ofstream out(path);
    out << R"({"counters": {"c": 1}, "gauges": {}, "histograms": {}})";
  }
  ASSERT_TRUE(LoadRunSummary(path, &run, &error)) << error;
  EXPECT_EQ(run.schema_version, 0);  // legacy: no envelope
  EXPECT_DOUBLE_EQ(run.metrics.at("metrics.counters.c"), 1.0);
  EXPECT_FALSE(run.label.empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace flare
