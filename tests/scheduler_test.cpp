// Tests for the MAC schedulers: RB conservation, GBR priority, PF fairness
// and the FLARE two-phase video-first behaviour.
#include <gtest/gtest.h>

#include <map>

#include "lte/gbr_scheduler.h"
#include "lte/pf_scheduler.h"
#include "lte/pss_scheduler.h"
#include "util/rng.h"

namespace flare {
namespace {

struct TestFlows {
  std::vector<FlowState> states;
  std::vector<SchedCandidate> candidates;
};

/// Build `n` candidates with uniform bytes_per_rb and big queues.
TestFlows MakeFlows(int n, std::uint32_t bytes_per_rb = 100,
                    std::uint64_t max_bytes = 1'000'000) {
  TestFlows f;
  f.states.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    FlowState& s = f.states[static_cast<std::size_t>(i)];
    s.id = static_cast<FlowId>(i + 1);
    s.type = FlowType::kData;
    s.queued_bytes = max_bytes;
  }
  for (int i = 0; i < n; ++i) {
    SchedCandidate c;
    c.flow = &f.states[static_cast<std::size_t>(i)];
    c.bytes_per_rb = bytes_per_rb;
    c.max_bytes = max_bytes;
    f.candidates.push_back(c);
  }
  return f;
}

std::map<FlowId, std::uint64_t> BytesByFlow(
    const std::vector<SchedGrant>& grants) {
  std::map<FlowId, std::uint64_t> out;
  for (const SchedGrant& g : grants) out[g.flow->id] += g.bytes;
  return out;
}

int TotalRbs(const std::vector<SchedGrant>& grants) {
  int total = 0;
  for (const SchedGrant& g : grants) total += g.rbs;
  return total;
}

TEST(RbsForBytes, CeilingDivision) {
  EXPECT_EQ(RbsForBytes(0, 100), 0);
  EXPECT_EQ(RbsForBytes(1, 100), 1);
  EXPECT_EQ(RbsForBytes(100, 100), 1);
  EXPECT_EQ(RbsForBytes(101, 100), 2);
  EXPECT_EQ(RbsForBytes(100, 0), 0);
}

TEST(PfScheduler, NeverExceedsRbBudget) {
  PfScheduler sched;
  Rng rng(1);
  auto f = MakeFlows(4);
  const auto grants = sched.Allocate(f.candidates, 50, rng);
  EXPECT_LE(TotalRbs(grants), 50);
  EXPECT_EQ(TotalRbs(grants), 50);  // demand is ample, budget fully used
}

TEST(PfScheduler, RespectsMaxBytes) {
  PfScheduler sched;
  Rng rng(1);
  auto f = MakeFlows(2, 100, 250);  // only 250 bytes allowed each
  const auto grants = sched.Allocate(f.candidates, 50, rng);
  const auto bytes = BytesByFlow(grants);
  for (const auto& [id, b] : bytes) EXPECT_LE(b, 250u);
  // 3 RBs each (ceil(250/100)), so 6 RBs total.
  EXPECT_EQ(TotalRbs(grants), 6);
}

TEST(PfScheduler, PrefersHigherMetric) {
  PfScheduler sched;
  Rng rng(1);
  auto f = MakeFlows(2, 100, 400);
  f.states[0].pf_avg_bps = 1e6;  // well-served flow
  f.states[1].pf_avg_bps = 1e3;  // starved flow: much higher metric
  const auto grants = sched.Allocate(f.candidates, 4, rng);
  const auto bytes = BytesByFlow(grants);
  EXPECT_EQ(bytes.at(2), 400u);  // starved flow served first, fully
  EXPECT_EQ(bytes.count(1), 0u);
}

TEST(PfScheduler, FairOverManyTtisWithEwma) {
  // Emulate the cell's EWMA update loop and check long-run fairness
  // between two equally-capable backlogged flows.
  PfScheduler sched;
  Rng rng(1);
  auto f = MakeFlows(2, 100, 5'000);
  std::map<FlowId, double> total;
  for (int tti = 0; tti < 2000; ++tti) {
    for (auto& c : f.candidates) c.max_bytes = 5'000;
    const auto grants = sched.Allocate(f.candidates, 50, rng);
    std::map<FlowId, std::uint64_t> served = BytesByFlow(grants);
    for (FlowState& s : f.states) {
      const double rate = served.count(s.id) > 0
                              ? static_cast<double>(served[s.id]) * 8000.0
                              : 0.0;
      s.pf_avg_bps = 0.99 * s.pf_avg_bps + 0.01 * rate;
      total[s.id] += static_cast<double>(served[s.id]);
    }
  }
  const double ratio = total[1] / total[2];
  EXPECT_GT(ratio, 0.9);
  EXPECT_LT(ratio, 1.1);
}

TEST(PfScheduler, ProportionalFairFavoursGoodChannelProportionally) {
  // Flow 1 has 2x the spectral efficiency; PF should give it roughly 2x
  // the bytes while sharing RBs roughly equally.
  PfScheduler sched;
  Rng rng(1);
  auto f = MakeFlows(2, 100, 1'000'000);
  f.candidates[0].bytes_per_rb = 200;
  std::map<FlowId, double> bytes_total;
  std::map<FlowId, double> rbs_total;
  for (int tti = 0; tti < 4000; ++tti) {
    const auto grants = sched.Allocate(f.candidates, 50, rng);
    for (const SchedGrant& g : grants) {
      bytes_total[g.flow->id] += static_cast<double>(g.bytes);
      rbs_total[g.flow->id] += g.rbs;
    }
    const std::map<FlowId, std::uint64_t> served = BytesByFlow(grants);
    for (FlowState& s : f.states) {
      const auto it = served.find(s.id);
      const double rate = it != served.end()
                              ? static_cast<double>(it->second) * 8000.0
                              : 0.0;
      s.pf_avg_bps = 0.99 * s.pf_avg_bps + 0.01 * rate;
    }
  }
  EXPECT_NEAR(rbs_total[1] / rbs_total[2], 1.0, 0.15);
  EXPECT_NEAR(bytes_total[1] / bytes_total[2], 2.0, 0.3);
}

TEST(RoundRobin, SplitsEvenlyWithEqualDemand) {
  RoundRobinScheduler sched;
  Rng rng(1);
  auto f = MakeFlows(5, 100);
  const auto grants = sched.Allocate(f.candidates, 50, rng);
  const auto bytes = BytesByFlow(grants);
  for (const auto& [id, b] : bytes) EXPECT_EQ(b, 1000u);  // 10 RBs each
}

TEST(RoundRobin, RotatesStartAcrossTtis) {
  RoundRobinScheduler sched;
  Rng rng(1);
  auto f = MakeFlows(3, 100);
  // 1 RB per TTI: the single grant should rotate across flows.
  std::map<FlowId, int> wins;
  for (int tti = 0; tti < 9; ++tti) {
    const auto grants = sched.Allocate(f.candidates, 1, rng);
    ASSERT_EQ(grants.size(), 1u);
    ++wins[grants[0].flow->id];
  }
  EXPECT_EQ(wins[1], 3);
  EXPECT_EQ(wins[2], 3);
  EXPECT_EQ(wins[3], 3);
}

TEST(PssScheduler, GbrFlowsServedFirst) {
  PssScheduler sched;
  Rng rng(1);
  auto f = MakeFlows(3, 100);
  // Flow 1 has a GBR debt; flows 2-3 are best-effort with huge PF metric.
  f.states[0].gbr_bps = 1e6;
  f.states[0].gbr_credit_bytes = 2000.0;
  f.states[1].pf_avg_bps = 1.0;
  f.states[2].pf_avg_bps = 1.0;
  const auto grants = sched.Allocate(f.candidates, 25, rng);
  const auto bytes = BytesByFlow(grants);
  EXPECT_GE(bytes.at(1), 2000u);  // GBR debt fully covered first
}

TEST(PssScheduler, GbrDebtCapsPhase1Service) {
  PssScheduler sched;
  Rng rng(1);
  auto f = MakeFlows(1, 100);
  f.states[0].gbr_bps = 1e6;
  f.states[0].gbr_credit_bytes = 300.0;  // only 3 RBs owed
  const auto grants = sched.Allocate(f.candidates, 50, rng);
  // Phase 1 grants 3 RBs; phase 2 (PF) then fills the rest since the
  // queue still has data.
  EXPECT_EQ(TotalRbs(grants), 50);
}

TEST(PssScheduler, WithoutGbrDegeneratesToPf) {
  PssScheduler pss;
  PfScheduler pf;
  Rng rng1(1);
  Rng rng2(1);
  auto f1 = MakeFlows(4);
  auto f2 = MakeFlows(4);
  for (int i = 0; i < 4; ++i) {
    f1.states[static_cast<std::size_t>(i)].pf_avg_bps = 100.0 * (i + 1);
    f2.states[static_cast<std::size_t>(i)].pf_avg_bps = 100.0 * (i + 1);
  }
  const auto a = BytesByFlow(pss.Allocate(f1.candidates, 50, rng1));
  const auto b = BytesByFlow(pf.Allocate(f2.candidates, 50, rng2));
  EXPECT_EQ(a, b);
}

TEST(TwoPhaseGbr, VideoGbrBeatsDataEvenWhenStarved) {
  TwoPhaseGbrScheduler sched;
  Rng rng(1);
  auto f = MakeFlows(2, 100);
  f.states[0].type = FlowType::kVideo;
  f.states[0].gbr_bps = 1e6;
  f.states[0].gbr_credit_bytes = 4000.0;
  f.states[0].pf_avg_bps = 1e9;  // video "over-served" by PF standards
  f.states[1].type = FlowType::kData;
  f.states[1].pf_avg_bps = 1.0;  // data maximally starved
  const auto grants = sched.Allocate(f.candidates, 50, rng);
  const auto bytes = BytesByFlow(grants);
  EXPECT_GE(bytes.at(1), 4000u);  // GBR served despite PF disadvantage
  EXPECT_GT(bytes.at(2), 0u);     // leftover RBs go to data in phase 2
}

TEST(TwoPhaseGbr, DataGbrDoesNotGetPhase1) {
  // Phase 1 is video-only: a data flow with (mis)configured GBR credit
  // must not jump the queue.
  TwoPhaseGbrScheduler sched;
  Rng rng(1);
  auto f = MakeFlows(2, 100);
  f.states[0].type = FlowType::kData;
  f.states[0].gbr_bps = 1e6;
  f.states[0].gbr_credit_bytes = 4000.0;
  f.states[0].pf_avg_bps = 1e9;
  f.states[1].type = FlowType::kVideo;
  f.states[1].pf_avg_bps = 1.0;
  const auto grants = sched.Allocate(f.candidates, 10, rng);
  const auto bytes = BytesByFlow(grants);
  // Without phase-1 priority the PF pass serves the starved video flow.
  EXPECT_GT(bytes.at(2), 0u);
  EXPECT_EQ(bytes.count(1), 0u);
}

TEST(TwoPhaseGbr, MultipleVideoFlowsMostStarvedFirst) {
  TwoPhaseGbrScheduler sched;
  Rng rng(1);
  auto f = MakeFlows(2, 100);
  for (auto& s : f.states) {
    s.type = FlowType::kVideo;
    s.gbr_bps = 1e6;
  }
  f.states[0].gbr_credit_bytes = 500.0;
  f.states[1].gbr_credit_bytes = 2000.0;
  // Only 5 RBs: the flow with the larger debt wins them all.
  const auto grants = sched.Allocate(f.candidates, 5, rng);
  const auto bytes = BytesByFlow(grants);
  EXPECT_EQ(bytes.at(2), 500u);
  EXPECT_EQ(bytes.count(1), 0u);
}

TEST(TwoPhaseGbr, VideoOnlyPhase2ExcludesData) {
  TwoPhaseGbrScheduler sched(/*video_only_phase2=*/true);
  Rng rng(1);
  auto f = MakeFlows(2, 100);
  f.states[0].type = FlowType::kVideo;
  f.states[1].type = FlowType::kData;
  const auto grants = sched.Allocate(f.candidates, 50, rng);
  const auto bytes = BytesByFlow(grants);
  EXPECT_GT(bytes.at(1), 0u);
  EXPECT_EQ(bytes.count(2), 0u);
}

// Regression: a video flow with a small GBR debt and a deep queue used to
// receive two grants per TTI (one in the GBR phase, one in the PF phase).
// The documented contract is now: phase-2 opportunistic borrowing is
// allowed, but callers see exactly one coalesced grant per flow.
TEST(TwoPhaseGbr, OneGrantPerFlowAcrossPhases) {
  TwoPhaseGbrScheduler sched;
  Rng rng(1);
  auto f = MakeFlows(2, 100);
  f.states[0].type = FlowType::kVideo;
  f.states[0].gbr_bps = 1e6;
  f.states[0].gbr_credit_bytes = 300.0;  // 3 RBs owed, 47 left over
  f.states[1].type = FlowType::kData;
  const auto grants = sched.Allocate(f.candidates, 50, rng);
  std::map<FlowId, int> multiplicity;
  for (const SchedGrant& g : grants) ++multiplicity[g.flow->id];
  for (const auto& [id, n] : multiplicity) {
    EXPECT_EQ(n, 1) << "flow " << id << " got " << n << " grants";
  }
  // The video flow was served in both phases (debt + borrowed RBs), so
  // its single grant must exceed the phase-1 debt.
  EXPECT_GT(BytesByFlow(grants).at(1), 300u);
  EXPECT_LE(TotalRbs(grants), 50);
  EXPECT_EQ(sched.tti_stats().rbs_priority, 3);
  EXPECT_EQ(sched.tti_stats().rbs_shared, 47);
}

TEST(TwoPhaseGbr, BorrowingNeverExceedsMaxBytesOrBudget) {
  TwoPhaseGbrScheduler sched;
  Rng rng(1);
  auto f = MakeFlows(3, 100, /*max_bytes=*/800);
  for (auto& s : f.states) {
    s.type = FlowType::kVideo;
    s.gbr_bps = 1e6;
    s.gbr_credit_bytes = 500.0;
  }
  const auto grants = sched.Allocate(f.candidates, 50, rng);
  std::map<FlowId, int> multiplicity;
  for (const SchedGrant& g : grants) ++multiplicity[g.flow->id];
  for (const auto& [id, n] : multiplicity) EXPECT_EQ(n, 1);
  for (const auto& [id, b] : BytesByFlow(grants)) {
    EXPECT_LE(b, 800u) << "flow " << id
                       << " exceeded max_bytes across phases";
  }
  EXPECT_LE(TotalRbs(grants), 50);
}

TEST(AllSchedulers, OneGrantPerFlowEverywhere) {
  Rng rng(1);
  for (int which = 0; which < 4; ++which) {
    std::unique_ptr<Scheduler> sched;
    switch (which) {
      case 0: sched = std::make_unique<PfScheduler>(); break;
      case 1: sched = std::make_unique<PssScheduler>(); break;
      case 2: sched = std::make_unique<TwoPhaseGbrScheduler>(); break;
      default: sched = std::make_unique<RoundRobinScheduler>(); break;
    }
    auto f = MakeFlows(4, 100);
    f.states[0].type = FlowType::kVideo;
    f.states[0].gbr_bps = 1e6;
    f.states[0].gbr_credit_bytes = 200.0;
    const auto grants = sched->Allocate(f.candidates, 50, rng);
    std::map<FlowId, int> multiplicity;
    for (const SchedGrant& g : grants) ++multiplicity[g.flow->id];
    for (const auto& [id, n] : multiplicity) {
      EXPECT_EQ(n, 1) << "scheduler " << which << ", flow " << id;
    }
  }
}

TEST(AllSchedulers, EmptyCandidatesYieldNoGrants) {
  std::vector<SchedCandidate> empty;
  Rng rng(1);
  EXPECT_TRUE(PfScheduler{}.Allocate(empty, 50, rng).empty());
  EXPECT_TRUE(PssScheduler{}.Allocate(empty, 50, rng).empty());
  EXPECT_TRUE(TwoPhaseGbrScheduler{}.Allocate(empty, 50, rng).empty());
  EXPECT_TRUE(RoundRobinScheduler{}.Allocate(empty, 50, rng).empty());
}

TEST(AllSchedulers, ZeroRbsYieldNoGrants) {
  Rng rng(1);
  auto f = MakeFlows(3);
  EXPECT_TRUE(PfScheduler{}.Allocate(f.candidates, 0, rng).empty());
  EXPECT_TRUE(PssScheduler{}.Allocate(f.candidates, 0, rng).empty());
  EXPECT_TRUE(TwoPhaseGbrScheduler{}.Allocate(f.candidates, 0, rng).empty());
}

// Property sweep: RB conservation and byte-vs-RB consistency across
// schedulers and loads.
class SchedulerProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SchedulerProperty, ConservationHolds) {
  const auto [which, n_flows, n_rbs] = GetParam();
  std::unique_ptr<Scheduler> sched;
  switch (which) {
    case 0:
      sched = std::make_unique<PfScheduler>();
      break;
    case 1:
      sched = std::make_unique<PssScheduler>();
      break;
    default:
      sched = std::make_unique<TwoPhaseGbrScheduler>();
      break;
  }
  Rng rng(static_cast<std::uint64_t>(which * 100 + n_flows));
  auto f = MakeFlows(n_flows, 80, 3'000);
  // Mix in GBR video flows.
  for (int i = 0; i < n_flows; i += 2) {
    f.states[static_cast<std::size_t>(i)].type = FlowType::kVideo;
    f.states[static_cast<std::size_t>(i)].gbr_bps = 5e5;
    f.states[static_cast<std::size_t>(i)].gbr_credit_bytes = 400.0;
  }
  const auto grants = sched->Allocate(f.candidates, n_rbs, rng);
  EXPECT_LE(TotalRbs(grants), n_rbs);
  const auto bytes = BytesByFlow(grants);
  for (const auto& [id, b] : bytes) {
    EXPECT_LE(b, 3'000u) << "flow " << id << " exceeded max_bytes";
  }
  for (const SchedGrant& g : grants) {
    EXPECT_LE(g.bytes,
              static_cast<std::uint64_t>(g.rbs) * 80u);  // TBS respected
    EXPECT_GT(g.rbs, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SchedulerProperty,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(1, 3, 8, 16),
                       ::testing::Values(1, 6, 50, 100)));

}  // namespace
}  // namespace flare
