// Tests for the OneAPI wire-message codec: round trips, field coverage,
// and strict rejection of malformed input (including fuzz-ish mutations).
// The FrameInterop section pins the trace-context extension's
// compatibility contract: a new peer without tracing emits bytes an old
// peer parses identically, and an old peer's bytes parse unchanged here.
#include <gtest/gtest.h>

#include <string>

#include "net/messages.h"
#include "svc/frame.h"
#include "util/rng.h"

namespace flare {
namespace {

ClientInfo SampleInfo() {
  ClientInfo info;
  info.flow = 42;
  info.ladder_bps = {100e3, 250e3, 500e3, 1000e3};
  info.max_level = 2;
  VideoUtilityParams utility;
  utility.beta = 12.0;
  utility.theta_bps = 0.3e6;
  info.utility = utility;
  info.skimming = true;
  return info;
}

TEST(Messages, ClientInfoRoundTrip) {
  const ClientInfo original = SampleInfo();
  const auto decoded = DecodeClientInfo(EncodeClientInfo(original));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->flow, original.flow);
  EXPECT_EQ(decoded->ladder_bps, original.ladder_bps);
  EXPECT_EQ(decoded->max_level, original.max_level);
  ASSERT_TRUE(decoded->utility.has_value());
  EXPECT_DOUBLE_EQ(decoded->utility->beta, 12.0);
  EXPECT_DOUBLE_EQ(decoded->utility->theta_bps, 0.3e6);
  EXPECT_TRUE(decoded->skimming);
}

TEST(Messages, ClientInfoOptionalFieldsAbsent) {
  ClientInfo info;
  info.flow = 7;
  info.ladder_bps = {200e3};
  const auto decoded = DecodeClientInfo(EncodeClientInfo(info));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_FALSE(decoded->max_level.has_value());
  EXPECT_FALSE(decoded->utility.has_value());
  EXPECT_FALSE(decoded->skimming);
}

TEST(Messages, ClientInfoRejectsMalformed) {
  EXPECT_FALSE(DecodeClientInfo("").has_value());
  EXPECT_FALSE(DecodeClientInfo("garbage").has_value());
  EXPECT_FALSE(DecodeClientInfo("type=rate_assignment;flow=1").has_value());
  EXPECT_FALSE(DecodeClientInfo("type=client_info;flow=1").has_value());
  EXPECT_FALSE(
      DecodeClientInfo("type=client_info;flow=x;ladder=100").has_value());
  EXPECT_FALSE(
      DecodeClientInfo("type=client_info;flow=1;ladder=10,abc")
          .has_value());
  EXPECT_FALSE(DecodeClientInfo("=1;type=client_info").has_value());
}

TEST(Messages, RateAssignmentRoundTrip) {
  RateAssignmentMsg msg;
  msg.flow = 9;
  msg.level = 3;
  msg.rate_bps = 790e3;
  msg.gbr_bps = 869e3;
  const auto decoded = DecodeRateAssignment(EncodeRateAssignment(msg));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->flow, msg.flow);
  EXPECT_EQ(decoded->level, msg.level);
  EXPECT_DOUBLE_EQ(decoded->rate_bps, msg.rate_bps);
  EXPECT_DOUBLE_EQ(decoded->gbr_bps, msg.gbr_bps);
}

TEST(Messages, RateAssignmentRejectsMissingFields) {
  EXPECT_FALSE(DecodeRateAssignment("type=rate_assignment;flow=1;level=2")
                   .has_value());
  EXPECT_FALSE(DecodeRateAssignment("type=client_info;flow=1").has_value());
}

TEST(Messages, StatsReportRoundTrip) {
  FlowStatsReport report;
  report.flow = 11;
  report.type = FlowType::kVideo;
  report.tx_bytes = 123456;
  report.rbs = 999;
  report.throughput_bps = 1.23e6;
  report.rb_utilization = 0.42;
  const auto decoded = DecodeStatsReport(EncodeStatsReport(report));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->flow, report.flow);
  EXPECT_EQ(decoded->type, FlowType::kVideo);
  EXPECT_EQ(decoded->tx_bytes, report.tx_bytes);
  EXPECT_EQ(decoded->rbs, report.rbs);
  EXPECT_DOUBLE_EQ(decoded->throughput_bps, report.throughput_bps);
  EXPECT_DOUBLE_EQ(decoded->rb_utilization, report.rb_utilization);
}

TEST(Messages, StatsReportDataClass) {
  FlowStatsReport report;
  report.flow = 1;
  report.type = FlowType::kData;
  const auto decoded = DecodeStatsReport(EncodeStatsReport(report));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, FlowType::kData);
}

TEST(Messages, StatsReportRejectsBadClass) {
  EXPECT_FALSE(
      DecodeStatsReport("type=stats_report;flow=1;class=voice;"
                        "tx_bytes=1;rbs=1;tput=1;rb_util=0.1")
          .has_value());
}

TEST(Messages, MutatedWiresNeverCrashAndRarelyParse) {
  // Fuzz-ish: random mutations of a valid message must either decode to
  // something or be rejected — never crash or throw.
  const std::string valid = EncodeClientInfo(SampleInfo());
  Rng rng(123);
  for (int trial = 0; trial < 500; ++trial) {
    std::string mutated = valid;
    const int mutations = static_cast<int>(rng.UniformInt(1, 5));
    for (int m = 0; m < mutations; ++m) {
      const auto pos = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(mutated.size()) - 1));
      switch (rng.UniformInt(0, 2)) {
        case 0:
          mutated[pos] = static_cast<char>(rng.UniformInt(32, 126));
          break;
        case 1:
          mutated.erase(pos, 1);
          break;
        default:
          mutated.insert(pos, 1,
                         static_cast<char>(rng.UniformInt(32, 126)));
          break;
      }
      if (mutated.empty()) mutated = "x";
    }
    EXPECT_NO_THROW({
      const auto decoded = DecodeClientInfo(mutated);
      if (decoded) {
        // Whatever parsed must still be structurally sane.
        EXPECT_FALSE(decoded->ladder_bps.empty());
      }
    });
  }
}

TEST(Messages, RandomizedRoundTripAllTypes) {
  // Round-trip fuzz: random field values for every message type must
  // survive encode → decode with integer fields exact. Doubles go
  // through %.6g formatting, so draw them from a grid that the format
  // preserves exactly (integers of at most 6 digits).
  Rng rng(2024);
  for (int trial = 0; trial < 300; ++trial) {
    ClientInfo info;
    info.flow = static_cast<FlowId>(rng.UniformInt(0, 999999));
    const int levels = static_cast<int>(rng.UniformInt(1, 8));
    for (int i = 0; i < levels; ++i) {
      info.ladder_bps.push_back(
          static_cast<double>(rng.UniformInt(1, 999999)));
    }
    if (rng.UniformInt(0, 1) == 1) {
      info.max_level = static_cast<int>(
          rng.UniformInt(0, static_cast<std::int64_t>(levels) - 1));
    }
    if (rng.UniformInt(0, 1) == 1) {
      VideoUtilityParams utility;
      utility.beta = static_cast<double>(rng.UniformInt(1, 100));
      utility.theta_bps = static_cast<double>(rng.UniformInt(1, 999999));
      info.utility = utility;
    }
    info.skimming = rng.UniformInt(0, 1) == 1;
    const auto info_rt = DecodeClientInfo(EncodeClientInfo(info));
    ASSERT_TRUE(info_rt.has_value());
    EXPECT_EQ(info_rt->flow, info.flow);
    EXPECT_EQ(info_rt->ladder_bps, info.ladder_bps);
    EXPECT_EQ(info_rt->max_level, info.max_level);
    EXPECT_EQ(info_rt->utility.has_value(), info.utility.has_value());
    EXPECT_EQ(info_rt->skimming, info.skimming);

    RateAssignmentMsg assignment;
    assignment.flow = static_cast<FlowId>(rng.UniformInt(0, 999999));
    assignment.level = static_cast<int>(rng.UniformInt(0, 16));
    assignment.rate_bps = static_cast<double>(rng.UniformInt(0, 999999));
    assignment.gbr_bps = static_cast<double>(rng.UniformInt(0, 999999));
    const auto assignment_rt =
        DecodeRateAssignment(EncodeRateAssignment(assignment));
    ASSERT_TRUE(assignment_rt.has_value());
    EXPECT_EQ(assignment_rt->flow, assignment.flow);
    EXPECT_EQ(assignment_rt->level, assignment.level);
    EXPECT_DOUBLE_EQ(assignment_rt->rate_bps, assignment.rate_bps);
    EXPECT_DOUBLE_EQ(assignment_rt->gbr_bps, assignment.gbr_bps);

    FlowStatsReport stats;
    stats.flow = static_cast<FlowId>(rng.UniformInt(0, 999999));
    stats.type = rng.UniformInt(0, 1) == 1 ? FlowType::kVideo
                                           : FlowType::kData;
    stats.tx_bytes = static_cast<std::uint64_t>(rng.UniformInt(0, 999999));
    stats.rbs = static_cast<std::uint64_t>(rng.UniformInt(0, 999999));
    stats.throughput_bps = static_cast<double>(rng.UniformInt(0, 999999));
    stats.rb_utilization = 0.0;
    const auto stats_rt = DecodeStatsReport(EncodeStatsReport(stats));
    ASSERT_TRUE(stats_rt.has_value());
    EXPECT_EQ(stats_rt->flow, stats.flow);
    EXPECT_EQ(stats_rt->type, stats.type);
    EXPECT_EQ(stats_rt->tx_bytes, stats.tx_bytes);
    EXPECT_EQ(stats_rt->rbs, stats.rbs);
  }
}

TEST(Messages, TruncationsNeverCrash) {
  // Every prefix of a valid encoding must decode to nullopt or to a
  // structurally valid message — never crash. (Some prefixes happen to
  // end exactly on a field boundary and legitimately still parse.)
  const std::string infos = EncodeClientInfo(SampleInfo());
  RateAssignmentMsg assignment;
  assignment.flow = 3;
  assignment.level = 1;
  assignment.rate_bps = 250e3;
  assignment.gbr_bps = 275e3;
  const std::string rates = EncodeRateAssignment(assignment);
  FlowStatsReport stats;
  stats.flow = 5;
  stats.type = FlowType::kVideo;
  stats.tx_bytes = 999;
  stats.rbs = 8;
  const std::string reports = EncodeStatsReport(stats);
  for (std::size_t len = 0; len < infos.size(); ++len) {
    EXPECT_NO_THROW((void)DecodeClientInfo(infos.substr(0, len)));
  }
  for (std::size_t len = 0; len < rates.size(); ++len) {
    EXPECT_NO_THROW((void)DecodeRateAssignment(rates.substr(0, len)));
  }
  for (std::size_t len = 0; len < reports.size(); ++len) {
    EXPECT_NO_THROW((void)DecodeStatsReport(reports.substr(0, len)));
  }
}

TEST(Messages, GarbageAcrossAllDecodersNeverCrashes) {
  // Pure-random strings (printable + separators the codec cares about)
  // against every decoder: no crash, and with overwhelming likelihood
  // no parse.
  Rng rng(777);
  const std::string alphabet =
      "abcdefghijklmnopqrstuvwxyz0123456789=;,.-+eE ";
  int parsed = 0;
  for (int trial = 0; trial < 500; ++trial) {
    const int len = static_cast<int>(rng.UniformInt(0, 64));
    std::string wire;
    for (int i = 0; i < len; ++i) {
      wire.push_back(alphabet[static_cast<std::size_t>(rng.UniformInt(
          0, static_cast<std::int64_t>(alphabet.size()) - 1))]);
    }
    EXPECT_NO_THROW({
      if (DecodeClientInfo(wire)) ++parsed;
      if (DecodeRateAssignment(wire)) ++parsed;
      if (DecodeStatsReport(wire)) ++parsed;
    });
  }
  // A random string should essentially never spell out a full typed
  // key=value message.
  EXPECT_EQ(parsed, 0);
}

// ---------------------------------------------------------------------
// Frame-layer interop: the trace-context extension vs. legacy peers
// ---------------------------------------------------------------------

/// The pre-extension wire format, built by hand: u32 LE length (type +
/// payload), raw type byte, payload. What an old peer sends and expects.
std::string LegacyWire(std::uint8_t type, const std::string& payload) {
  std::string wire;
  const std::uint32_t length = static_cast<std::uint32_t>(payload.size()) + 1;
  for (int i = 0; i < 4; ++i) {
    wire.push_back(static_cast<char>((length >> (8 * i)) & 0xff));
  }
  wire.push_back(static_cast<char>(type));
  wire += payload;
  return wire;
}

std::string RandomPayload(Rng* rng, int max_len) {
  const std::string alphabet =
      "abcdefghijklmnopqrstuvwxyz0123456789=;,.-+ ";
  const int len = static_cast<int>(rng->UniformInt(0, max_len));
  std::string payload;
  for (int i = 0; i < len; ++i) {
    payload.push_back(alphabet[static_cast<std::size_t>(rng->UniformInt(
        0, static_cast<std::int64_t>(alphabet.size()) - 1))]);
  }
  return payload;
}

TEST(FrameInterop, OldToNewFramesParseUnchanged) {
  // Direction 1: bytes from an old peer. Every legacy frame must parse
  // byte-for-byte as before the extension — no trace, no unknown_ext —
  // and the new encoder without a trace context must emit exactly those
  // legacy bytes (so old peers in turn parse *us*).
  Rng rng(31);
  for (int trial = 0; trial < 300; ++trial) {
    const auto type =
        static_cast<FrameType>(rng.UniformInt(1, 6));
    const std::string payload = RandomPayload(&rng, 64);
    const std::string legacy =
        LegacyWire(static_cast<std::uint8_t>(type), payload);
    EXPECT_EQ(EncodeFrame(type, payload), legacy);
    EXPECT_EQ(EncodeFrame(type, payload, nullptr), legacy);

    std::string buffer = legacy;
    Frame frame;
    ASSERT_EQ(ParseFrame(&buffer, &frame), FrameParseStatus::kFrame);
    EXPECT_TRUE(buffer.empty());
    EXPECT_EQ(frame.type, type);
    EXPECT_EQ(frame.payload, payload);
    EXPECT_FALSE(frame.trace.has_value());
    EXPECT_FALSE(frame.unknown_ext);
  }
}

TEST(FrameInterop, NewToNewTraceContextRoundTrips) {
  // Direction 2: extension-bearing frames between new peers. The trailer
  // must round-trip every field exactly, never leak into the payload,
  // and visibly set the ext bit (which is what makes an *old* strict
  // parser reject the frame instead of silently mis-parsing it — tracing
  // is opt-in per frame precisely so it is only sent to new daemons).
  Rng rng(32);
  for (int trial = 0; trial < 300; ++trial) {
    TraceContext ctx;
    ctx.trace_id =
        (static_cast<std::uint64_t>(rng.UniformInt(0, 0x7fffffff)) << 32) |
        static_cast<std::uint64_t>(rng.UniformInt(0, 0x7fffffff));
    ctx.client_send_us = rng.UniformInt(0, 1'000'000'000);
    if (rng.UniformInt(0, 1) == 1) {
      ctx.server_recv_us = rng.UniformInt(1, 1'000'000'000);
      ctx.server_send_us = rng.UniformInt(1, 1'000'000'000);
    }
    const auto type = static_cast<FrameType>(rng.UniformInt(1, 6));
    const std::string payload = RandomPayload(&rng, 64);
    const std::string wire = EncodeFrame(type, payload, &ctx);
    ASSERT_GT(wire.size(), 4u);
    EXPECT_NE(static_cast<std::uint8_t>(wire[4]) & kFrameTraceExtBit, 0);

    std::string buffer = wire;
    Frame frame;
    ASSERT_EQ(ParseFrame(&buffer, &frame), FrameParseStatus::kFrame);
    EXPECT_EQ(frame.type, type);
    EXPECT_EQ(frame.payload, payload);
    EXPECT_FALSE(frame.unknown_ext);
    ASSERT_TRUE(frame.trace.has_value());
    EXPECT_EQ(frame.trace->trace_id, ctx.trace_id);
    EXPECT_EQ(frame.trace->client_send_us, ctx.client_send_us);
    EXPECT_EQ(frame.trace->server_recv_us, ctx.server_recv_us);
    EXPECT_EQ(frame.trace->server_send_us, ctx.server_send_us);
  }
}

TEST(FrameInterop, DecoderAsymmetryStrictLegacyTolerantExt) {
  // Legacy frames keep today's strictness: trailing bytes after a text
  // payload stay part of the payload, and anything that is not a clean
  // key=value field (a NUL-introduced trailer, a bare token) still makes
  // the message codec reject the whole payload.
  {
    FlowStatsReport report;
    report.flow = 4;
    report.type = FlowType::kVideo;
    report.tx_bytes = 100;
    report.rbs = 8;
    const std::string payload = EncodeStatsReport(report);
    for (const std::string& trailer :
         {std::string(";trailing-no-equals"),
          std::string(1, '\0') + "trace=1;ts=2"}) {
      std::string buffer = LegacyWire(2, payload + trailer);
      Frame frame;
      ASSERT_EQ(ParseFrame(&buffer, &frame), FrameParseStatus::kFrame);
      EXPECT_FALSE(frame.trace.has_value());
      EXPECT_FALSE(DecodeStatsReport(frame.payload).has_value());
    }
  }
  // Ext frames tolerate unknown keys... (flagged, not fatal)
  {
    const std::string body = std::string("payload") + '\0' +
                             "trace=00000000000000ff;ts=5;future=1";
    std::string buffer = LegacyWire(2 | kFrameTraceExtBit, body);
    Frame frame;
    ASSERT_EQ(ParseFrame(&buffer, &frame), FrameParseStatus::kFrame);
    EXPECT_EQ(frame.payload, "payload");
    ASSERT_TRUE(frame.trace.has_value());
    EXPECT_EQ(frame.trace->trace_id, 0xffu);
    EXPECT_EQ(frame.trace->client_send_us, 5);
    EXPECT_TRUE(frame.unknown_ext);
  }
  // ...and bytes after a second NUL (a future binary section).
  {
    const std::string body = std::string("p") + '\0' +
                             "trace=1;ts=2" + '\0' + "binary-blob";
    std::string buffer = LegacyWire(2 | kFrameTraceExtBit, body);
    Frame frame;
    ASSERT_EQ(ParseFrame(&buffer, &frame), FrameParseStatus::kFrame);
    ASSERT_TRUE(frame.trace.has_value());
    EXPECT_EQ(frame.trace->trace_id, 1u);
    EXPECT_TRUE(frame.unknown_ext);
  }
  // Known ext keys stay strict: malformed values poison the stream.
  for (const std::string& bad :
       {std::string("trace=xyz;ts=5"), std::string("trace=1;ts=abc"),
        std::string("trace=11112222333344445;ts=5")}) {
    std::string buffer = LegacyWire(2 | kFrameTraceExtBit,
                                    std::string("p") + '\0' + bad);
    Frame frame;
    EXPECT_EQ(ParseFrame(&buffer, &frame), FrameParseStatus::kError)
        << "accepted malformed ext: " << bad;
  }
  // An ext-flagged frame without the NUL separator is malformed.
  {
    std::string buffer = LegacyWire(2 | kFrameTraceExtBit, "no-separator");
    Frame frame;
    EXPECT_EQ(ParseFrame(&buffer, &frame), FrameParseStatus::kError);
  }
  // The ext bit never rescues an unknown base type.
  {
    std::string buffer = LegacyWire(0x7f | kFrameTraceExtBit,
                                    std::string("p") + '\0' + "trace=1;ts=2");
    Frame frame;
    EXPECT_EQ(ParseFrame(&buffer, &frame), FrameParseStatus::kError);
  }
}

TEST(FrameInterop, FuzzedExtTrailersNeverCrash) {
  // Random bytes in the trailer region: parse must return kFrame or
  // kError, never crash; whenever it accepts, known fields are sane.
  Rng rng(33);
  for (int trial = 0; trial < 500; ++trial) {
    std::string body = RandomPayload(&rng, 16);
    body.push_back('\0');
    const int len = static_cast<int>(rng.UniformInt(0, 48));
    for (int i = 0; i < len; ++i) {
      body.push_back(static_cast<char>(rng.UniformInt(0, 255)));
    }
    std::string buffer = LegacyWire(
        static_cast<std::uint8_t>(rng.UniformInt(1, 6)) | kFrameTraceExtBit,
        body);
    Frame frame;
    const FrameParseStatus status = ParseFrame(&buffer, &frame);
    if (status == FrameParseStatus::kFrame) {
      EXPECT_TRUE(buffer.empty());
    } else {
      EXPECT_EQ(status, FrameParseStatus::kError);
    }
  }
}

}  // namespace
}  // namespace flare
