// Tests for the OneAPI wire-message codec: round trips, field coverage,
// and strict rejection of malformed input (including fuzz-ish mutations).
#include <gtest/gtest.h>

#include "net/messages.h"
#include "util/rng.h"

namespace flare {
namespace {

ClientInfo SampleInfo() {
  ClientInfo info;
  info.flow = 42;
  info.ladder_bps = {100e3, 250e3, 500e3, 1000e3};
  info.max_level = 2;
  VideoUtilityParams utility;
  utility.beta = 12.0;
  utility.theta_bps = 0.3e6;
  info.utility = utility;
  info.skimming = true;
  return info;
}

TEST(Messages, ClientInfoRoundTrip) {
  const ClientInfo original = SampleInfo();
  const auto decoded = DecodeClientInfo(EncodeClientInfo(original));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->flow, original.flow);
  EXPECT_EQ(decoded->ladder_bps, original.ladder_bps);
  EXPECT_EQ(decoded->max_level, original.max_level);
  ASSERT_TRUE(decoded->utility.has_value());
  EXPECT_DOUBLE_EQ(decoded->utility->beta, 12.0);
  EXPECT_DOUBLE_EQ(decoded->utility->theta_bps, 0.3e6);
  EXPECT_TRUE(decoded->skimming);
}

TEST(Messages, ClientInfoOptionalFieldsAbsent) {
  ClientInfo info;
  info.flow = 7;
  info.ladder_bps = {200e3};
  const auto decoded = DecodeClientInfo(EncodeClientInfo(info));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_FALSE(decoded->max_level.has_value());
  EXPECT_FALSE(decoded->utility.has_value());
  EXPECT_FALSE(decoded->skimming);
}

TEST(Messages, ClientInfoRejectsMalformed) {
  EXPECT_FALSE(DecodeClientInfo("").has_value());
  EXPECT_FALSE(DecodeClientInfo("garbage").has_value());
  EXPECT_FALSE(DecodeClientInfo("type=rate_assignment;flow=1").has_value());
  EXPECT_FALSE(DecodeClientInfo("type=client_info;flow=1").has_value());
  EXPECT_FALSE(
      DecodeClientInfo("type=client_info;flow=x;ladder=100").has_value());
  EXPECT_FALSE(
      DecodeClientInfo("type=client_info;flow=1;ladder=10,abc")
          .has_value());
  EXPECT_FALSE(DecodeClientInfo("=1;type=client_info").has_value());
}

TEST(Messages, RateAssignmentRoundTrip) {
  RateAssignmentMsg msg;
  msg.flow = 9;
  msg.level = 3;
  msg.rate_bps = 790e3;
  msg.gbr_bps = 869e3;
  const auto decoded = DecodeRateAssignment(EncodeRateAssignment(msg));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->flow, msg.flow);
  EXPECT_EQ(decoded->level, msg.level);
  EXPECT_DOUBLE_EQ(decoded->rate_bps, msg.rate_bps);
  EXPECT_DOUBLE_EQ(decoded->gbr_bps, msg.gbr_bps);
}

TEST(Messages, RateAssignmentRejectsMissingFields) {
  EXPECT_FALSE(DecodeRateAssignment("type=rate_assignment;flow=1;level=2")
                   .has_value());
  EXPECT_FALSE(DecodeRateAssignment("type=client_info;flow=1").has_value());
}

TEST(Messages, StatsReportRoundTrip) {
  FlowStatsReport report;
  report.flow = 11;
  report.type = FlowType::kVideo;
  report.tx_bytes = 123456;
  report.rbs = 999;
  report.throughput_bps = 1.23e6;
  report.rb_utilization = 0.42;
  const auto decoded = DecodeStatsReport(EncodeStatsReport(report));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->flow, report.flow);
  EXPECT_EQ(decoded->type, FlowType::kVideo);
  EXPECT_EQ(decoded->tx_bytes, report.tx_bytes);
  EXPECT_EQ(decoded->rbs, report.rbs);
  EXPECT_DOUBLE_EQ(decoded->throughput_bps, report.throughput_bps);
  EXPECT_DOUBLE_EQ(decoded->rb_utilization, report.rb_utilization);
}

TEST(Messages, StatsReportDataClass) {
  FlowStatsReport report;
  report.flow = 1;
  report.type = FlowType::kData;
  const auto decoded = DecodeStatsReport(EncodeStatsReport(report));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, FlowType::kData);
}

TEST(Messages, StatsReportRejectsBadClass) {
  EXPECT_FALSE(
      DecodeStatsReport("type=stats_report;flow=1;class=voice;"
                        "tx_bytes=1;rbs=1;tput=1;rb_util=0.1")
          .has_value());
}

TEST(Messages, MutatedWiresNeverCrashAndRarelyParse) {
  // Fuzz-ish: random mutations of a valid message must either decode to
  // something or be rejected — never crash or throw.
  const std::string valid = EncodeClientInfo(SampleInfo());
  Rng rng(123);
  for (int trial = 0; trial < 500; ++trial) {
    std::string mutated = valid;
    const int mutations = static_cast<int>(rng.UniformInt(1, 5));
    for (int m = 0; m < mutations; ++m) {
      const auto pos = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(mutated.size()) - 1));
      switch (rng.UniformInt(0, 2)) {
        case 0:
          mutated[pos] = static_cast<char>(rng.UniformInt(32, 126));
          break;
        case 1:
          mutated.erase(pos, 1);
          break;
        default:
          mutated.insert(pos, 1,
                         static_cast<char>(rng.UniformInt(32, 126)));
          break;
      }
      if (mutated.empty()) mutated = "x";
    }
    EXPECT_NO_THROW({
      const auto decoded = DecodeClientInfo(mutated);
      if (decoded) {
        // Whatever parsed must still be structurally sane.
        EXPECT_FALSE(decoded->ladder_bps.empty());
      }
    });
  }
}

}  // namespace
}  // namespace flare
