// Tests for the bench-harness helpers in scenario/experiment.h.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "scenario/experiment.h"

namespace flare {
namespace {

ScenarioResult FakeRun(double bitrate_kbps, int changes, double rebuf_s,
                       double data_kbps, double jain) {
  ScenarioResult r;
  ClientMetrics m;
  m.avg_bitrate_bps = bitrate_kbps * 1000.0;
  m.bitrate_changes = changes;
  m.rebuffer_time_s = rebuf_s;
  m.qoe = bitrate_kbps / 1000.0;
  r.video = {m, m};
  r.data_throughput_bps = {data_kbps * 1000.0};
  r.jain_avg_bitrate = jain;
  return r;
}

TEST(Pooling, AggregatesAcrossRunsAndClients) {
  const std::vector<ScenarioResult> runs = {
      FakeRun(500, 3, 1.0, 2000, 0.99),
      FakeRun(1000, 5, 0.0, 1000, 0.97),
  };
  const PooledMetrics pooled = Pool(runs);
  EXPECT_EQ(pooled.avg_bitrate_kbps.count(), 4u);  // 2 runs x 2 clients
  EXPECT_DOUBLE_EQ(pooled.MeanBitrateKbps(), 750.0);
  EXPECT_DOUBLE_EQ(pooled.MeanChanges(), 4.0);
  EXPECT_DOUBLE_EQ(pooled.MeanRebufferS(), 0.5);
  EXPECT_DOUBLE_EQ(pooled.MeanDataThroughputKbps(), 1500.0);
  EXPECT_DOUBLE_EQ(pooled.MeanJain(), 0.98);
  EXPECT_DOUBLE_EQ(pooled.MeanQoe(), 0.75);
}

TEST(Pooling, EmptyIsSafe) {
  const PooledMetrics pooled = Pool({});
  EXPECT_DOUBLE_EQ(pooled.MeanBitrateKbps(), 0.0);
  EXPECT_DOUBLE_EQ(pooled.MeanJain(), 1.0);
}

TEST(BenchCsv, PathIsUnderBenchResults) {
  const std::string path = BenchCsvPath("unit_test_probe");
  EXPECT_EQ(path, "bench_results/unit_test_probe.csv");
  EXPECT_TRUE(std::filesystem::is_directory("bench_results"));
}

TEST(Scale, ArgsOverrideDefaults) {
  const char* argv_c[] = {"bench", "runs=7", "duration_s=111"};
  const BenchScale scale =
      ScaleFromEnv(20, 1200.0, 3, const_cast<char**>(argv_c));
  EXPECT_EQ(scale.runs, 7);
  EXPECT_DOUBLE_EQ(scale.duration_s, 111.0);
}

TEST(Scale, DefaultsWithoutArgs) {
  ::unsetenv("FLARE_RUNS");
  ::unsetenv("FLARE_DURATION_S");
  const BenchScale scale = ScaleFromEnv(20, 1200.0);
  EXPECT_EQ(scale.runs, 20);
  EXPECT_DOUBLE_EQ(scale.duration_s, 1200.0);
}

TEST(Scale, EnvironmentOverridesDefaults) {
  ::setenv("FLARE_RUNS", "3", 1);
  const char* argv_c[] = {"bench"};
  const BenchScale scale =
      ScaleFromEnv(20, 1200.0, 1, const_cast<char**>(argv_c));
  EXPECT_EQ(scale.runs, 3);
  ::unsetenv("FLARE_RUNS");
}

TEST(Printing, HelpersDoNotCrash) {
  // Smoke: the printing helpers are used by every bench binary.
  Cdf cdf;
  for (int i = 0; i < 20; ++i) cdf.Add(i);
  EXPECT_NO_THROW(PrintCdf("test cdf", cdf, 5));
  EXPECT_NO_THROW(PrintRow("row", {1.0, 2.0, 3.0}, {"a", "b", "c"}));
  EXPECT_NO_THROW(PrintPaperComparison("metric", 1.0, 2.0));
}

}  // namespace
}  // namespace flare
