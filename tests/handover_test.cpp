// Tests for the handover manager and the full inter-cell migration
// choreography (flow teardown/recreate, session rebind, OneAPI
// re-registration).
#include <gtest/gtest.h>

#include <memory>

#include "has/video_session.h"
#include "lte/gbr_scheduler.h"
#include "net/handover.h"
#include "net/oneapi_multi.h"
#include "sim/simulator.h"
#include "transport/transport_host.h"

namespace flare {
namespace {

/// A scripted straight drive from `from` to `to` over `duration`.
class LinearDrive final : public MobilityModel {
 public:
  LinearDrive(Position from, Position to, SimTime duration)
      : from_(from), to_(to), duration_(duration) {}
  Position At(SimTime now) override {
    const double frac =
        std::clamp(static_cast<double>(now) /
                       static_cast<double>(std::max<SimTime>(duration_, 1)),
                   0.0, 1.0);
    return Position{from_.x + (to_.x - from_.x) * frac,
                    from_.y + (to_.y - from_.y) * frac};
  }

 private:
  Position from_;
  Position to_;
  SimTime duration_;
};

struct TwoCellFixture {
  Simulator sim;
  // Sites 1600 m apart; quiet radio (no shadowing/fading) for scripted
  // geometry.
  RadioConfig radio;
  std::shared_ptr<MobilityModel> drive;
  std::unique_ptr<FadedMobilityChannel> ch_a;
  std::unique_ptr<FadedMobilityChannel> ch_b;

  TwoCellFixture() {
    radio.shadowing_stddev_db = 0.0;
    radio.fading_stddev_db = 0.0;
    drive = std::make_shared<LinearDrive>(Position{-700.0, 0.0},
                                          Position{2300.0, 0.0},
                                          FromSeconds(100.0));
    ch_a = std::make_unique<FadedMobilityChannel>(
        drive, radio, Rng(1), Position{0.0, 0.0});
    ch_b = std::make_unique<FadedMobilityChannel>(
        drive, radio, Rng(2), Position{1600.0, 0.0});
  }
};

TEST(Handover, A3TriggersOnceDrivePassesMidpoint) {
  TwoCellFixture f;
  HandoverConfig config;
  HandoverManager manager(f.sim, config);
  const int ue = manager.AddUe({f.ch_a.get(), f.ch_b.get()}, 0);
  int fired_from = -1;
  int fired_to = -1;
  manager.SetOnHandover([&](int u, int from, int to) {
    EXPECT_EQ(u, ue);
    fired_from = from;
    fired_to = to;
  });
  manager.Start();
  f.sim.RunUntil(FromSeconds(30.0));  // still near cell A
  EXPECT_EQ(manager.ServingCell(ue), 0);
  f.sim.RunUntil(FromSeconds(80.0));  // well past the midpoint
  EXPECT_EQ(manager.ServingCell(ue), 1);
  EXPECT_EQ(fired_from, 0);
  EXPECT_EQ(fired_to, 1);
  EXPECT_EQ(manager.handovers_executed(), 1);
}

TEST(Handover, HysteresisPreventsPingPongAtMidpoint) {
  // A UE parked exactly between the two sites: equal SINR means the A3
  // offset is never cleared, so no handover ever fires.
  RadioConfig radio;
  radio.shadowing_stddev_db = 0.0;
  radio.fading_stddev_db = 0.0;
  auto park = std::make_shared<StaticMobility>(Position{800.0, 0.0});
  FadedMobilityChannel a(park, radio, Rng(1), Position{0.0, 0.0});
  FadedMobilityChannel b(park, radio, Rng(2), Position{1600.0, 0.0});
  Simulator sim;
  HandoverManager manager(sim, HandoverConfig{});
  const int ue = manager.AddUe({&a, &b}, 0);
  manager.Start();
  sim.RunUntil(FromSeconds(60.0));
  EXPECT_EQ(manager.ServingCell(ue), 0);
  EXPECT_EQ(manager.handovers_executed(), 0);
}

TEST(Handover, TimeToTriggerFiltersTransients) {
  TwoCellFixture f;
  HandoverConfig config;
  config.time_to_trigger = FromSeconds(30.0);  // longer than the episode
  HandoverManager manager(f.sim, config);
  // Drive crosses and comes back before TTT elapses.
  auto bounce = std::make_shared<LinearDrive>(
      Position{-200.0, 0.0}, Position{-200.0, 0.0}, FromSeconds(1.0));
  FadedMobilityChannel a(bounce, f.radio, Rng(1), Position{0.0, 0.0});
  FadedMobilityChannel b(bounce, f.radio, Rng(2), Position{1600.0, 0.0});
  const int ue = manager.AddUe({&a, &b}, 0);
  manager.Start();
  f.sim.RunUntil(FromSeconds(20.0));
  EXPECT_EQ(manager.ServingCell(ue), 0);
}

TEST(Handover, RejectsBadRegistrations) {
  Simulator sim;
  HandoverManager manager(sim, HandoverConfig{});
  TwoCellFixture f;
  EXPECT_THROW(manager.AddUe({f.ch_a.get()}, 0), std::invalid_argument);
  EXPECT_THROW(manager.AddUe({f.ch_a.get(), f.ch_b.get()}, 5),
               std::invalid_argument);
  EXPECT_THROW(manager.AddUe({f.ch_a.get(), nullptr}, 0),
               std::invalid_argument);
  EXPECT_THROW(manager.ServingCell(0), std::out_of_range);
}

TEST(Handover, FullMigrationKeepsVideoStreaming) {
  // The complete choreography: a FLARE video session survives a handover
  // between two cells managed by one OneAPI multi-server.
  Simulator sim;
  Pcrf pcrf;
  OneApiConfig oneapi_config;
  oneapi_config.bai = FromSeconds(1.0);
  oneapi_config.params.delta = 1;
  OneApiMultiServer server(sim, pcrf, oneapi_config);

  RadioConfig radio;
  radio.shadowing_stddev_db = 0.0;
  radio.fading_stddev_db = 0.0;
  auto drive = std::make_shared<LinearDrive>(
      Position{-700.0, 0.0}, Position{2300.0, 0.0}, FromSeconds(120.0));

  // Cells + measurement channels (the cells own their *serving* channel
  // instances; the manager needs its own probes).
  Cell cell_a(sim, std::make_unique<TwoPhaseGbrScheduler>(), CellConfig{},
              Rng(1));
  Cell cell_b(sim, std::make_unique<TwoPhaseGbrScheduler>(), CellConfig{},
              Rng(2));
  const CellId id_a = server.AddCell(cell_a);
  const CellId id_b = server.AddCell(cell_b);
  const UeId ue_a = cell_a.AddUe(std::make_unique<FadedMobilityChannel>(
      drive, radio, Rng(3), Position{0.0, 0.0}));
  const UeId ue_b = cell_b.AddUe(std::make_unique<FadedMobilityChannel>(
      drive, radio, Rng(4), Position{1600.0, 0.0}));
  FadedMobilityChannel probe_a(drive, radio, Rng(5), Position{0.0, 0.0});
  FadedMobilityChannel probe_b(drive, radio, Rng(6),
                               Position{1600.0, 0.0});

  TransportHost host_a(sim, cell_a);
  TransportHost host_b(sim, cell_b);

  // Session starts in cell A.
  const Mpd mpd = MakeMpd(SimulationLadderKbps(), 2.0);
  TcpFlow& flow_a = host_a.CreateFlow(ue_a, FlowType::kVideo);
  auto http = std::make_unique<HttpClient>(sim, flow_a);
  auto plugin = std::make_unique<FlarePlugin>(flow_a.id());
  FlarePlugin* plugin_ptr = plugin.get();
  VideoSessionConfig vs_config;
  VideoSession session(sim, *http, mpd, std::move(plugin), vs_config);
  server.ConnectVideoClient(id_a, plugin_ptr, mpd);
  session.Start(0);

  // Handover choreography.
  HandoverManager manager(sim, HandoverConfig{});
  const int ho_ue = manager.AddUe({&probe_a, &probe_b}, 0);
  std::unique_ptr<HttpClient> next_http;
  std::unique_ptr<FlarePlugin> next_plugin;
  int migrations = 0;
  manager.SetOnHandover([&](int, int from, int to) {
    ASSERT_EQ(from, 0);
    ASSERT_EQ(to, 1);
    // 1. Network side: deregister from cell A, tear the old bearer down.
    server.DisconnectVideoClient(id_a, flow_a.id());
    host_a.DestroyFlow(flow_a.id());
    // 2. New bearer + HTTP path in cell B.
    TcpFlow& flow_b = host_b.CreateFlow(ue_b, FlowType::kVideo);
    next_http = std::make_unique<HttpClient>(sim, flow_b);
    // 3. Fresh plugin for the new flow id; reconnect through cell B.
    next_plugin = std::make_unique<FlarePlugin>(flow_b.id());
    server.ConnectVideoClient(id_b, next_plugin.get(), mpd);
    // 4. Rebind the session. (The old plugin keeps steering until the
    // new cell's first BAI assignment arrives — acceptable staleness.)
    session.RebindHttp(*next_http);
    ++migrations;
  });
  manager.Start();
  server.Start();
  cell_a.Start();
  cell_b.Start();

  sim.RunUntil(FromSeconds(40.0));
  const int segments_before = session.segments_completed();
  EXPECT_GT(segments_before, 5);

  sim.RunUntil(FromSeconds(120.0));
  EXPECT_EQ(migrations, 1);
  EXPECT_EQ(manager.ServingCell(ho_ue), 1);
  // Streaming continued in cell B: many more segments completed.
  EXPECT_GT(session.segments_completed(), segments_before + 10);
  // The new cell's server took over rate control.
  EXPECT_EQ(pcrf.CountFlows(FlowType::kVideo, id_a), 0);
  EXPECT_EQ(pcrf.CountFlows(FlowType::kVideo, id_b), 1);
  session.player().AdvanceTo(sim.Now());
  // The brief migration gap must not have wrecked playback.
  EXPECT_LT(session.player().rebuffer_time_s(), 15.0);
}

}  // namespace
}  // namespace flare
