// QoE analytics engine: hand-computed sessions with exact expectations,
// fairness edge cases, churn verdict accounting, shard merging, and a
// scenario integration cross-check against the offline QoeScore path.
#include "obs/qoe_analytics.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "has/metrics.h"
#include "scenario/scenario.h"
#include "util/json.h"
#include "util/stats.h"

namespace flare {
namespace {

/// One fully hand-computed session. Segments (2 s each) at 1, 2, 2,
/// 1 Mbps -> q = [1, 2, 2, 1]: quality_sum 6, two switches of magnitude 1
/// each. One 1.5 s stall inside 6.5 s of playback:
///   QoE = (6 - 1*2)/4 - 8 * (1.5 / (6.5 + 1.5)) = 1.0 - 1.5 = -0.5
/// All values are exactly representable, so expectations are EQ, not NEAR.
QoeAnalytics HandComputedSession() {
  QoeAnalytics qoe;
  qoe.StartSession(0, /*flow=*/7, /*t_s=*/0.5,
                   QoeSessionOrigin::kStaticVideo);
  qoe.OnSegment(0, 1e6, 2.0);
  qoe.OnPlayoutStart(0, 2.25);
  qoe.OnSegment(0, 2e6, 2.0);
  qoe.OnSegment(0, 2e6, 2.0);
  qoe.OnStallBegin(0, 5.0);
  qoe.OnStallEnd(0, 6.5);
  qoe.OnSegment(0, 1e6, 2.0);
  qoe.EndSession(0, 10.0, /*played_s=*/6.5);
  return qoe;
}

TEST(QoeAnalytics, HandComputedSessionMatchesExactly) {
  const QoeAnalytics qoe = HandComputedSession();
  const QoeSessionStats* s = qoe.FindSession(0, 0);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->segments, 4u);
  EXPECT_DOUBLE_EQ(s->media_s, 8.0);
  EXPECT_DOUBLE_EQ(s->AvgBitrateBps(), 1.5e6);
  EXPECT_EQ(s->switches, 2u);
  EXPECT_DOUBLE_EQ(s->switch_magnitude_sum, 2.0);
  EXPECT_EQ(s->stalls, 1u);
  EXPECT_DOUBLE_EQ(s->stall_s, 1.5);
  EXPECT_DOUBLE_EQ(s->StallRatio(), 0.1875);  // 1.5 / (6.5 + 1.5)
  EXPECT_DOUBLE_EQ(s->startup_delay_s, 1.75);  // 2.25 - 0.5
  EXPECT_DOUBLE_EQ(s->Qoe(qoe.weights()), -0.5);
  EXPECT_TRUE(s->ended);
  EXPECT_DOUBLE_EQ(s->end_s, 10.0);
}

TEST(QoeAnalytics, EngineQoeMatchesOfflineQoeScore) {
  // Same session replayed through the offline vector-based scorer the
  // scenario layer uses for ClientMetrics: identical by construction.
  const QoeAnalytics qoe = HandComputedSession();
  const QoeSessionStats* s = qoe.FindSession(0, 0);
  ASSERT_NE(s, nullptr);
  const std::vector<double> bitrates = {1e6, 2e6, 2e6, 1e6};
  EXPECT_DOUBLE_EQ(s->Qoe(qoe.weights()),
                   QoeScore(bitrates, 1.5, 6.5 + 1.5));
}

TEST(QoeAnalytics, SegmentlessSessionHasNullQoeAndZeroAverages) {
  QoeAnalytics qoe;
  qoe.StartSession(0, 1, 0.0, QoeSessionOrigin::kDynamicVideo);
  qoe.EndSession(0, 5.0, 0.0);
  const QoeSessionStats* s = qoe.FindSession(0, 0);
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->AvgBitrateBps(), 0.0);
  EXPECT_DOUBLE_EQ(s->StallRatio(), 0.0);
  EXPECT_DOUBLE_EQ(s->Qoe(qoe.weights()), 0.0);
  EXPECT_LT(s->startup_delay_s, 0.0);  // never started playing

  std::ostringstream out;
  qoe.WriteJson(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"qoe\": null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"startup_delay_s\": null"), std::string::npos);
}

TEST(QoeAnalytics, StallBeginIsIdempotentAndEndClosesOpenStall) {
  QoeAnalytics qoe;
  qoe.StartSession(0, 1, 0.0, QoeSessionOrigin::kStaticVideo);
  qoe.OnSegment(0, 1e6, 2.0);
  qoe.OnStallBegin(0, 4.0);
  qoe.OnStallBegin(0, 5.0);  // double-begin must not double-count
  const QoeSessionStats* s = qoe.FindSession(0, 0);
  EXPECT_EQ(s->stalls, 1u);
  // EndSession closes the still-open stall up to the end time.
  qoe.EndSession(0, 7.0, 2.0);
  EXPECT_DOUBLE_EQ(s->stall_s, 3.0);
}

// --- Fairness edge cases ----------------------------------------------------

TEST(QoeAnalytics, JainIndexWithNoPlayedSessionsIsOne) {
  // n=0: a run with no sessions must report fairness 1, not 0/0.
  EXPECT_DOUBLE_EQ(JainIndex({}), 1.0);
  QoeAnalytics qoe;
  std::ostringstream out;
  qoe.WriteJson(out);
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJson(out.str(), &doc, &error)) << error;
  EXPECT_DOUBLE_EQ(
      doc.FindPath({"summary", "jain_avg_bitrate"})->AsNumber(), 1.0);
  EXPECT_DOUBLE_EQ(doc.FindPath({"summary", "sessions"})->AsNumber(), 0.0);
}

TEST(QoeAnalytics, JainIndexWithOneSessionIsOne) {
  // n=1: a single client is perfectly fair by definition.
  EXPECT_DOUBLE_EQ(JainIndex({5e6}), 1.0);
  QoeAnalytics qoe;
  qoe.StartSession(0, 1, 0.0, QoeSessionOrigin::kStaticVideo);
  qoe.OnSegment(0, 5e6, 2.0);
  qoe.EndSession(0, 2.0, 2.0);
  std::ostringstream out;
  qoe.WriteJson(out);
  JsonValue doc;
  ASSERT_TRUE(ParseJson(out.str(), &doc));
  EXPECT_DOUBLE_EQ(
      doc.FindPath({"summary", "jain_avg_bitrate"})->AsNumber(), 1.0);
  EXPECT_DOUBLE_EQ(
      doc.FindPath({"summary", "avg_bitrate_bps"})->AsNumber(), 5e6);
}

// --- Churn accounting -------------------------------------------------------

TEST(QoeAnalytics, AdmissionVerdictsAndBlockedQoeSeparation) {
  QoeAnalytics qoe;
  // Two admitted dynamic sessions (one plays, one blocked-then-spawned
  // never gets a segment) and one rejection.
  qoe.OnAdmissionVerdict(true);
  qoe.OnAdmissionVerdict(true);
  qoe.OnAdmissionVerdict(false);
  qoe.StartSession(10, 5, 1.0, QoeSessionOrigin::kDynamicVideo);
  qoe.OnSegment(10, 2e6, 2.0);
  qoe.EndSession(10, 5.0, 2.0);
  qoe.StartSession(11, 6, 2.0, QoeSessionOrigin::kDynamicVideo);
  qoe.EndSession(11, 2.5, 0.0);

  EXPECT_EQ(qoe.admitted(), 2u);
  EXPECT_EQ(qoe.blocked(), 1u);
  std::ostringstream out;
  qoe.WriteJson(out);
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJson(out.str(), &doc, &error)) << error;
  const JsonValue* summary = doc.Find("summary");
  EXPECT_DOUBLE_EQ(summary->Find("admitted")->AsNumber(), 2.0);
  EXPECT_DOUBLE_EQ(summary->Find("blocked")->AsNumber(), 1.0);
  // The JSON export renders numbers with %.6g, so the parsed value only
  // carries six significant digits of 1/3.
  EXPECT_NEAR(summary->Find("blocking_probability")->AsNumber(), 1.0 / 3.0,
              1e-6);
  // avg_admitted_qoe averages over BOTH dynamic sessions — the one that
  // never played drags it down as a 0, it is not silently dropped.
  const double played_qoe = 2.0 * 2.0 / 2.0 - 0.0;  // q=2 per segment
  EXPECT_DOUBLE_EQ(summary->Find("avg_admitted_qoe")->AsNumber(),
                   played_qoe / 2.0);
}

TEST(QoeAnalytics, RungChangeCausesAreCounted) {
  QoeAnalytics qoe;
  qoe.OnRungChange("solver-up");
  qoe.OnRungChange("solver-up");
  qoe.OnRungChange("capacity-down");
  std::ostringstream out;
  qoe.WriteJson(out);
  JsonValue doc;
  ASSERT_TRUE(ParseJson(out.str(), &doc));
  const JsonValue* causes =
      doc.FindPath({"summary", "rung_change_causes"});
  ASSERT_NE(causes, nullptr);
  EXPECT_DOUBLE_EQ(causes->Find("solver-up")->AsNumber(), 2.0);
  EXPECT_DOUBLE_EQ(causes->Find("capacity-down")->AsNumber(), 1.0);
}

// --- Shard merging ----------------------------------------------------------

TEST(QoeAnalytics, AbsorbShardRestampsCellsAndFoldsAggregates) {
  QoeAnalytics shard0;
  shard0.StartSession(0, 1, 0.0, QoeSessionOrigin::kStaticVideo);
  shard0.OnSegment(0, 1e6, 2.0);
  shard0.EndSession(0, 2.0, 2.0);
  shard0.OnAdmissionVerdict(false);

  QoeAnalytics shard1;
  shard1.StartSession(0, 2, 0.0, QoeSessionOrigin::kStaticVideo);
  shard1.OnSegment(0, 3e6, 2.0);
  shard1.EndSession(0, 2.0, 2.0);
  shard1.OnRungChange("init");

  QoeAnalytics merged;
  merged.AbsorbShard(shard0, 0);
  merged.AbsorbShard(shard1, 1);
  EXPECT_EQ(merged.session_count(), 2u);
  const QoeSessionStats* c0 = merged.FindSession(0, 0);
  const QoeSessionStats* c1 = merged.FindSession(1, 0);
  ASSERT_NE(c0, nullptr);
  ASSERT_NE(c1, nullptr);
  EXPECT_EQ(c0->cell, 0);
  EXPECT_EQ(c1->cell, 1);
  EXPECT_DOUBLE_EQ(c0->AvgBitrateBps(), 1e6);
  EXPECT_DOUBLE_EQ(c1->AvgBitrateBps(), 3e6);
  EXPECT_EQ(merged.blocked(), 1u);

  // Merge is deterministic: absorbing in the same cell order from equal
  // shards gives byte-identical JSON.
  QoeAnalytics merged2;
  merged2.AbsorbShard(shard0, 0);
  merged2.AbsorbShard(shard1, 1);
  std::ostringstream a;
  std::ostringstream b;
  merged.WriteJson(a);
  merged2.WriteJson(b);
  EXPECT_EQ(a.str(), b.str());
}

// --- Scenario integration ---------------------------------------------------

TEST(QoeAnalytics, ScenarioRunAgreesWithOfflineClientMetrics) {
  // The engine accumulates online from Player hooks; ComputeClientMetrics
  // recomputes offline from the stored per-segment vectors. Values agree
  // up to fp accumulation noise (stall time is summed differently), so
  // NEAR, not EQ.
  QoeAnalytics qoe;
  ScenarioConfig config = TestbedPreset(Scheme::kFlare);
  config.duration_s = 30.0;
  config.seed = 11;
  config.qoe = &qoe;
  const ScenarioResult result = RunScenario(config);
  ASSERT_EQ(result.video.size(), static_cast<std::size_t>(config.n_video));
  ASSERT_EQ(qoe.session_count(), static_cast<std::size_t>(config.n_video));
  for (int i = 0; i < config.n_video; ++i) {
    const QoeSessionStats* s = qoe.FindSession(0, i);
    ASSERT_NE(s, nullptr) << "session " << i;
    const ClientMetrics& m = result.video[static_cast<std::size_t>(i)];
    EXPECT_EQ(static_cast<int>(s->segments), m.segments);
    EXPECT_NEAR(s->AvgBitrateBps(), m.avg_bitrate_bps,
                1e-6 * m.avg_bitrate_bps + 1e-9);
    EXPECT_EQ(static_cast<int>(s->switches), m.bitrate_changes);
    EXPECT_NEAR(s->stall_s, m.rebuffer_time_s, 1e-6);
    EXPECT_NEAR(s->Qoe(qoe.weights()), m.qoe, 1e-6);
    EXPECT_TRUE(s->ended);
  }
}

TEST(QoeAnalytics, JsonParsesAndCarriesWeights) {
  const QoeAnalytics qoe = HandComputedSession();
  std::ostringstream out;
  qoe.WriteJson(out);
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJson(out.str(), &doc, &error)) << error;
  EXPECT_DOUBLE_EQ(doc.FindPath({"weights", "lambda_switch"})->AsNumber(),
                   1.0);
  EXPECT_DOUBLE_EQ(doc.FindPath({"weights", "mu_rebuffer"})->AsNumber(),
                   8.0);
  ASSERT_EQ(doc.Find("sessions")->items().size(), 1u);
  const JsonValue& row = doc.Find("sessions")->items()[0];
  EXPECT_DOUBLE_EQ(row.Find("qoe")->AsNumber(), -0.5);
  EXPECT_EQ(row.Find("origin")->AsString(), "static");
}

}  // namespace
}  // namespace flare
