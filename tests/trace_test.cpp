// Tests for tools/trace_core: loading SpanTracer JSON back, the
// RTT-midpoint clock-offset estimate, cross-process span matching with
// the validation rules CI gates on, and the merged-timeline writer.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "trace_core.h"
#include "util/json.h"

namespace flare {
namespace {

std::string WriteTemp(const std::string& name, const std::string& body) {
  const std::string path = testing::TempDir() + "/" + name;
  std::ofstream out(path);
  out << body;
  return path;
}

/// Synthetic daemon trace: two finalized requests (aa matched below, ab
/// a server-side orphan — its client departed before reading), plus the
/// metadata and stage spans a real export carries.
const char kServerTrace[] = R"({"displayTimeUnit":"ms","traceEvents":[
{"name":"process_name","ph":"M","ts":0,"pid":1,"tid":0,"args":{"name":"svc"}},
{"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":8,"args":{"name":"flow"}},
{"name":"request","cat":"svc","ph":"X","ts":1000,"pid":1,"tid":8,"dur":500,
 "args":{"trace":"00000000000000aa","flow":1,"recv_us":10,"parse_us":5,
 "queue_wait_us":300,"solve_us":100,"encode_us":5,"outbox_drain_us":80,
 "total_us":500,"cause":"steady"}},
{"name":"recv","cat":"svc.stage","ph":"X","ts":1000,"pid":1,"tid":8,"dur":10},
{"name":"request","cat":"svc","ph":"X","ts":2000,"pid":1,"tid":9,"dur":400,
 "args":{"trace":"00000000000000ab","flow":2,"recv_us":8,"parse_us":4,
 "queue_wait_us":200,"solve_us":150,"encode_us":6,"outbox_drain_us":32,
 "total_us":400,"cause":"steady"}}
]})";

/// Matching client trace: one echoed request span. On the client clock
/// the exchange ran t0=900 .. t3=1700; the echoed server stamps say the
/// server held it srx=1010 .. stx=1600, so RTT = 800 - 590 = 210 µs and
/// offset = ((1010-900) + (1600-1700)) / 2 = +5 µs.
const char kClientTrace[] = R"({"displayTimeUnit":"ms","traceEvents":[
{"name":"process_name","ph":"M","ts":0,"pid":2,"tid":0,"args":{"name":"lg"}},
{"name":"request","cat":"client","ph":"X","ts":900,"pid":2,"tid":8,"dur":800,
 "args":{"trace":"00000000000000aa","flow":1,"t0_us":900,"t3_us":1700,
 "srx_us":1010,"stx_us":1600,"turnaround_us":800}}
]})";

TEST(TraceCore, LoadsSpansAndClassifiesThem) {
  const std::string path = WriteTemp("trace_core_server.json", kServerTrace);
  TraceDoc doc;
  std::string error;
  ASSERT_TRUE(LoadTraceDoc(path, &doc, &error)) << error;
  // 'M' metadata events are not spans; the stage span loads but is not a
  // request.
  ASSERT_EQ(doc.spans.size(), 3u);
  EXPECT_TRUE(doc.spans[0].is_server_request);
  EXPECT_EQ(doc.spans[0].trace_hex, "00000000000000aa");
  EXPECT_DOUBLE_EQ(doc.spans[0].queue_wait_us, 300.0);
  EXPECT_FALSE(doc.spans[1].is_server_request);  // stage span
  EXPECT_TRUE(doc.spans[2].is_server_request);
  std::remove(path.c_str());

  EXPECT_FALSE(LoadTraceDoc("/nonexistent/trace.json", &doc, &error));
  const std::string bad =
      WriteTemp("trace_core_bad.json", "{\"notTraceEvents\":[]}");
  EXPECT_FALSE(LoadTraceDoc(bad, &doc, &error));
  EXPECT_NE(error.find("traceEvents"), std::string::npos);
  std::remove(bad.c_str());
}

TEST(TraceCore, ClockOffsetIsRttMidpointAtMinRtt) {
  const std::string path = WriteTemp("trace_core_client.json", kClientTrace);
  TraceDoc client;
  ASSERT_TRUE(LoadTraceDoc(path, &client, nullptr));
  const ClockOffset offset = EstimateClockOffset(client);
  ASSERT_TRUE(offset.valid);
  EXPECT_EQ(offset.samples, 1);
  EXPECT_DOUBLE_EQ(offset.min_rtt_us, 210.0);
  EXPECT_DOUBLE_EQ(offset.offset_us, 5.0);
  std::remove(path.c_str());

  // No echoed stamps (old daemon): no estimate.
  TraceDoc unechoed = client;
  unechoed.spans[0].srx_us = 0.0;
  unechoed.spans[0].stx_us = 0.0;
  EXPECT_FALSE(EstimateClockOffset(unechoed).valid);
}

TEST(TraceCore, AnalyzerMatchesAndToleratesServerOrphansOnly) {
  const std::string server_path =
      WriteTemp("trace_core_s.json", kServerTrace);
  const std::string client_path =
      WriteTemp("trace_core_c.json", kClientTrace);
  TraceDoc server, client;
  ASSERT_TRUE(LoadTraceDoc(server_path, &server, nullptr));
  ASSERT_TRUE(LoadTraceDoc(client_path, &client, nullptr));

  const TraceAnalysis analysis = AnalyzeTraces(server, client);
  EXPECT_EQ(analysis.server_requests, 2u);
  EXPECT_EQ(analysis.client_requests, 1u);
  EXPECT_EQ(analysis.matched, 1u);
  EXPECT_EQ(analysis.orphan_server, 1u);  // tolerated
  EXPECT_EQ(analysis.orphan_client, 0u);
  EXPECT_EQ(analysis.phase_violations, 0u);
  EXPECT_EQ(analysis.sum_exceeds_turnaround, 0u);
  EXPECT_TRUE(analysis.valid) << RenderStageTable(analysis);
  ASSERT_EQ(analysis.stages.size(), 7u);
  EXPECT_EQ(analysis.stages[0].stage, "recv");
  EXPECT_EQ(analysis.stages[6].stage, "total");
  EXPECT_EQ(analysis.stages[2].count, 2u);  // queue_wait over both spans
  EXPECT_DOUBLE_EQ(analysis.stages[2].max_us, 300.0);
  const std::string table = RenderStageTable(analysis);
  EXPECT_NE(table.find("queue_wait"), std::string::npos);
  EXPECT_NE(table.find("p99_us"), std::string::npos);

  // A client span the server never recorded is a validation failure.
  TraceDoc orphan = client;
  orphan.spans[0].trace_hex = "00000000000000ff";
  const TraceAnalysis broken = AnalyzeTraces(server, orphan);
  EXPECT_EQ(broken.orphan_client, 1u);
  EXPECT_EQ(broken.matched, 0u);
  EXPECT_FALSE(broken.valid);
  EXPECT_FALSE(broken.problems.empty());

  // Server phases summing past the measured turnaround (plus slack) are
  // a clock/attribution bug, not jitter.
  TraceDoc slow_client = client;
  slow_client.spans[0].turnaround_us = 100.0;
  const TraceAnalysis impossible = AnalyzeTraces(server, slow_client);
  EXPECT_EQ(impossible.sum_exceeds_turnaround, 1u);
  EXPECT_FALSE(impossible.valid);

  std::remove(server_path.c_str());
  std::remove(client_path.c_str());
}

TEST(TraceCore, MergedTraceShiftsClientOntoServerClock) {
  const std::string server_path =
      WriteTemp("trace_core_ms.json", kServerTrace);
  const std::string client_path =
      WriteTemp("trace_core_mc.json", kClientTrace);
  TraceDoc server, client;
  ASSERT_TRUE(LoadTraceDoc(server_path, &server, nullptr));
  ASSERT_TRUE(LoadTraceDoc(client_path, &client, nullptr));

  std::ostringstream out;
  WriteMergedTrace(out, server, client, 5.0);
  JsonValue merged;
  std::string error;
  ASSERT_TRUE(ParseJson(out.str(), &merged, &error)) << error;
  const JsonValue* events = merged.Find("traceEvents");
  ASSERT_NE(events, nullptr);

  int process_names = 0;
  bool saw_server = false, saw_client = false;
  for (const JsonValue& event : events->items()) {
    const std::string ph = event.Find("ph")->AsString();
    const std::string name = event.Find("name")->AsString();
    if (ph == "M" && name == "process_name") {
      ++process_names;
      const std::string pname =
          event.Find("args")->Find("name")->AsString();
      EXPECT_TRUE(pname == "flare_oneapid" || pname == "flare_loadgen")
          << pname;
      continue;
    }
    if (ph != "X" || name != "request") continue;
    const std::string cat = event.Find("cat")->AsString();
    if (cat == "svc" &&
        event.Find("args")->Find("trace")->AsString() ==
            "00000000000000aa") {
      saw_server = true;
      // Server events are the reference clock: unshifted.
      EXPECT_DOUBLE_EQ(event.Find("ts")->AsNumber(), 1000.0);
      EXPECT_EQ(static_cast<int>(event.Find("pid")->AsNumber()), 1);
    } else if (cat == "client") {
      saw_client = true;
      // Client events land on the server clock: ts + offset.
      EXPECT_DOUBLE_EQ(event.Find("ts")->AsNumber(), 905.0);
      EXPECT_EQ(static_cast<int>(event.Find("pid")->AsNumber()), 2);
      // args survive the re-serialization untouched.
      EXPECT_DOUBLE_EQ(event.Find("args")->Find("t0_us")->AsNumber(),
                       900.0);
    }
  }
  // Exactly our two freshly-emitted process_name records; the originals
  // are dropped.
  EXPECT_EQ(process_names, 2);
  EXPECT_TRUE(saw_server);
  EXPECT_TRUE(saw_client);

  std::remove(server_path.c_str());
  std::remove(client_path.c_str());
}

}  // namespace
}  // namespace flare
