// Tests for Algorithm 1: the stateful BAI controller with delta-hysteresis
// and the stability constraint.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/rate_controller.h"
#include "has/mpd.h"

namespace flare {
namespace {

std::vector<double> LadderBps() {
  std::vector<double> bps;
  for (double kbps : SimulationLadderKbps()) bps.push_back(kbps * 1000.0);
  return bps;
}

FlowObservation Obs(FlowId id, double bits_per_rb = 104.0) {
  FlowObservation o;
  o.id = id;
  o.bits_per_rb = bits_per_rb;
  return o;
}

TEST(RateController, NewFlowStartsAtLowestRung) {
  FlareRateController ctl(FlareParams{});
  ctl.AddFlow(1, LadderBps());
  const BaiDecision d = ctl.DecideBai({Obs(1)}, 0, 50'000.0);
  ASSERT_EQ(d.assignments.size(), 1u);
  EXPECT_EQ(d.assignments[0].level, 0);
  EXPECT_DOUBLE_EQ(d.assignments[0].rate_bps, 100'000.0);
}

TEST(RateController, OneRungPerPromotionAndDeltaGate) {
  FlareParams params;
  params.delta = 2;
  FlareRateController ctl(params);
  ctl.AddFlow(1, LadderBps());

  std::vector<int> levels;
  // Reaching the top rung takes 1 + sum_{k=1..5} delta*(k+1) = 41 BAIs.
  for (int bai = 0; bai < 45; ++bai) {
    const BaiDecision d = ctl.DecideBai({Obs(1)}, 0, 50'000.0);
    levels.push_back(d.assignments[0].level);
  }
  // Monotone non-decreasing under ample capacity, one rung at a time.
  for (std::size_t i = 1; i < levels.size(); ++i) {
    EXPECT_GE(levels[i], levels[i - 1]);
    EXPECT_LE(levels[i] - levels[i - 1], 1);
  }
  // Rung 1 requires delta*(1+1) = 4 consecutive recommendations after the
  // initial assignment: levels[0..3] = 0, levels[4] = 1.
  EXPECT_EQ(levels[0], 0);
  EXPECT_EQ(levels[3], 0);
  EXPECT_EQ(levels[4], 1);
  // Higher rungs take progressively longer (delta * (L+1) BAIs each).
  EXPECT_EQ(levels.back(), 5);  // eventually reaches the top
}

TEST(RateController, HigherDeltaClimbsSlower) {
  for (int delta : {1, 4, 8}) {
    FlareParams params;
    params.delta = delta;
    FlareRateController ctl(params);
    ctl.AddFlow(1, LadderBps());
    int bais_to_top = 0;
    for (int bai = 0; bai < 500; ++bai) {
      const BaiDecision d = ctl.DecideBai({Obs(1)}, 0, 50'000.0);
      ++bais_to_top;
      if (d.assignments[0].level == 5) break;
    }
    // Sum over rungs k=1..5 of delta*(k+1) = 20*delta, plus the first BAI.
    EXPECT_EQ(bais_to_top, 20 * delta + 1) << "delta " << delta;
  }
}

TEST(RateController, DropsApplyImmediately) {
  FlareParams params;
  params.delta = 1;
  FlareRateController ctl(params);
  ctl.AddFlow(1, LadderBps());
  // Climb with a good channel.
  for (int bai = 0; bai < 60; ++bai) {
    ctl.DecideBai({Obs(1, 104.0)}, 0, 50'000.0);
  }
  EXPECT_EQ(ctl.CurrentLevel(1), 5);
  // Channel collapses: bits_per_rb 16 -> 3 Mbit/s costs 187k RB/s >> 50k.
  const BaiDecision d = ctl.DecideBai({Obs(1, 16.0)}, 0, 50'000.0);
  EXPECT_LT(d.assignments[0].level, 5);  // large drop in a single BAI
}

TEST(RateController, StabilityHoldsUnderOscillatingRecommendation) {
  // Channel alternates good/bad each BAI; with delta=4 the controller must
  // never promote (consecutive-up counter keeps resetting).
  FlareParams params;
  params.delta = 4;
  FlareRateController ctl(params);
  ctl.AddFlow(1, LadderBps());
  ctl.DecideBai({Obs(1, 104.0)}, 0, 50'000.0);  // initial -> level 0
  int max_level = 0;
  for (int bai = 0; bai < 50; ++bai) {
    const double e = bai % 2 == 0 ? 104.0 : 1.0;
    const BaiDecision d = ctl.DecideBai({Obs(1, e)}, 4, 5'000.0);
    max_level = std::max(max_level, d.assignments[0].level);
  }
  EXPECT_EQ(max_level, 0);
}

TEST(RateController, ClientMaxLevelCapsAssignment) {
  FlareParams params;
  params.delta = 1;
  FlareRateController ctl(params);
  ctl.AddFlow(1, LadderBps());
  FlowObservation o = Obs(1);
  o.client_max_level = 2;
  for (int bai = 0; bai < 100; ++bai) {
    const BaiDecision d = ctl.DecideBai({o}, 0, 50'000.0);
    EXPECT_LE(d.assignments[0].level, 2);
  }
  EXPECT_EQ(ctl.CurrentLevel(1), 2);
}

TEST(RateController, PerClientUtilityOverride) {
  // Two identical flows, but one discloses a tiny screen (small theta):
  // under tight capacity the big-screen flow should get the higher rate.
  FlareParams params;
  params.delta = 1;
  FlareRateController ctl(params);
  ctl.AddFlow(1, LadderBps());
  ctl.AddFlow(2, LadderBps());
  FlowObservation small = Obs(1);
  VideoUtilityParams small_screen;
  small_screen.theta_bps = 0.05e6;
  small.utility = small_screen;
  FlowObservation big = Obs(2);
  VideoUtilityParams big_screen;
  big_screen.theta_bps = 0.8e6;
  big.utility = big_screen;
  BaiDecision d;
  for (int bai = 0; bai < 60; ++bai) {
    d = ctl.DecideBai({small, big}, 2, 12'000.0);
  }
  ASSERT_EQ(d.assignments.size(), 2u);
  EXPECT_LT(d.assignments[0].level, d.assignments[1].level);
}

TEST(RateController, SharedCellSplitsEvenly) {
  FlareParams params;
  params.delta = 1;
  FlareRateController ctl(params);
  for (FlowId id = 1; id <= 4; ++id) ctl.AddFlow(id, LadderBps());
  BaiDecision d;
  for (int bai = 0; bai < 100; ++bai) {
    d = ctl.DecideBai({Obs(1), Obs(2), Obs(3), Obs(4)}, 2, 30'000.0);
  }
  ASSERT_EQ(d.assignments.size(), 4u);
  // Capacity may not admit a perfectly equal split at ladder granularity;
  // symmetric flows must still end within one rung of each other.
  int lo = d.assignments[0].level;
  int hi = lo;
  for (const RateAssignment& a : d.assignments) {
    lo = std::min(lo, a.level);
    hi = std::max(hi, a.level);
  }
  EXPECT_LE(hi - lo, 1);
}

TEST(RateController, RelaxationModeProducesValidLadderRates) {
  FlareParams params;
  params.solver = SolverMode::kContinuousRelaxation;
  params.delta = 1;
  FlareRateController ctl(params);
  ctl.AddFlow(1, LadderBps());
  ctl.AddFlow(2, LadderBps());
  const std::vector<double> ladder = LadderBps();
  for (int bai = 0; bai < 50; ++bai) {
    const BaiDecision d =
        ctl.DecideBai({Obs(1), Obs(2)}, 2, 25'000.0);
    for (const RateAssignment& a : d.assignments) {
      EXPECT_NE(std::find(ladder.begin(), ladder.end(), a.rate_bps),
                ladder.end())
          << "rate " << a.rate_bps << " not on the ladder";
    }
  }
}

TEST(RateController, VideoFractionReported) {
  FlareParams params;
  params.delta = 1;
  FlareRateController ctl(params);
  ctl.AddFlow(1, LadderBps());
  BaiDecision d;
  for (int bai = 0; bai < 60; ++bai) {
    d = ctl.DecideBai({Obs(1)}, 1, 50'000.0);
  }
  // With one data flow the marginal log penalty of going 2 -> 3 Mbit/s
  // (0.374) outweighs the video gain (0.333), so the optimum is 2 Mbit/s:
  // r = 2e6 / 104 / 50'000 ~ 0.385.
  EXPECT_NEAR(d.video_fraction, 2.0e6 / 104.0 / 50'000.0, 0.01);
}

TEST(RateController, SolveTimeIsMeasured) {
  FlareRateController ctl(FlareParams{});
  ctl.AddFlow(1, LadderBps());
  const BaiDecision d = ctl.DecideBai({Obs(1)}, 0, 50'000.0);
  EXPECT_GT(d.solve_time.count(), 0);
}

TEST(RateController, UnknownObservationIsSkipped) {
  FlareRateController ctl(FlareParams{});
  ctl.AddFlow(1, LadderBps());
  const BaiDecision d =
      ctl.DecideBai({Obs(1), Obs(99)}, 0, 50'000.0);
  EXPECT_EQ(d.assignments.size(), 1u);
}

TEST(RateController, RemoveFlowForgetsState) {
  FlareRateController ctl(FlareParams{});
  ctl.AddFlow(1, LadderBps());
  ctl.DecideBai({Obs(1)}, 0, 50'000.0);
  EXPECT_EQ(ctl.CurrentLevel(1), 0);
  ctl.RemoveFlow(1);
  EXPECT_EQ(ctl.CurrentLevel(1), -1);
  EXPECT_FALSE(ctl.HasFlow(1));
}

TEST(RateController, EmptyInputsAreSafe) {
  FlareRateController ctl(FlareParams{});
  const BaiDecision d = ctl.DecideBai({}, 3, 50'000.0);
  EXPECT_TRUE(d.assignments.empty());
  EXPECT_THROW(ctl.AddFlow(1, {}), std::invalid_argument);
}

TEST(RateController, DecisionCauseNamesAreStable) {
  // These strings are the machine-readable `cause` column of the BAI
  // trace CSV and the span-trace rung-change args; renaming one is a
  // breaking format change.
  EXPECT_STREQ(DecisionCauseName(DecisionCause::kInit), "init");
  EXPECT_STREQ(DecisionCauseName(DecisionCause::kHold), "hold");
  EXPECT_STREQ(DecisionCauseName(DecisionCause::kSolverUp), "solver-up");
  EXPECT_STREQ(DecisionCauseName(DecisionCause::kHysteresisAdopted),
               "hysteresis-adopted");
  EXPECT_STREQ(DecisionCauseName(DecisionCause::kStabilityCap),
               "stability-cap");
  EXPECT_STREQ(DecisionCauseName(DecisionCause::kCapacityDown),
               "capacity-down");
  EXPECT_STREQ(DecisionCauseName(DecisionCause::kInfeasibleFallback),
               "infeasible-fallback");
}

TEST(RateController, CauseSequenceThroughHysteresisClimb) {
  FlareParams params;
  params.delta = 2;
  FlareRateController ctl(params);
  ctl.AddFlow(1, LadderBps());

  // BAI 1: first assignment.
  BaiDecision d = ctl.DecideBai({Obs(1)}, 0, 50'000.0);
  EXPECT_EQ(d.assignments[0].cause, DecisionCause::kInit);
  EXPECT_EQ(d.assignments[0].previous_level, -1);
  // BAIs 2-4: the solver recommends rung 1 but the increase is held back
  // (threshold delta*(1+1) = 4 consecutive recommendations).
  for (int bai = 0; bai < 3; ++bai) {
    d = ctl.DecideBai({Obs(1)}, 0, 50'000.0);
    EXPECT_EQ(d.assignments[0].cause, DecisionCause::kStabilityCap) << bai;
    EXPECT_EQ(d.assignments[0].level, 0);
    EXPECT_EQ(d.assignments[0].recommended_level, 1);
  }
  // BAI 5: the 4th consecutive recommendation is adopted.
  d = ctl.DecideBai({Obs(1)}, 0, 50'000.0);
  EXPECT_EQ(d.assignments[0].cause, DecisionCause::kHysteresisAdopted);
  EXPECT_EQ(d.assignments[0].level, 1);
  EXPECT_EQ(d.assignments[0].previous_level, 0);
}

TEST(RateController, CauseHoldWhenSolverAgrees) {
  FlareRateController ctl(FlareParams{});
  ctl.AddFlow(1, LadderBps());
  FlowObservation o = Obs(1);
  o.client_max_level = 0;  // the solver can never recommend above rung 0
  ctl.DecideBai({o}, 0, 50'000.0);
  const BaiDecision d = ctl.DecideBai({o}, 0, 50'000.0);
  EXPECT_EQ(d.assignments[0].cause, DecisionCause::kHold);
  EXPECT_EQ(d.assignments[0].level, 0);
}

TEST(RateController, CauseSolverUpWithoutHysteresis) {
  FlareParams params;
  params.delta = 0;  // threshold 0: adopt every recommended increase
  FlareRateController ctl(params);
  ctl.AddFlow(1, LadderBps());
  ctl.DecideBai({Obs(1)}, 0, 50'000.0);  // init at rung 0
  const BaiDecision d = ctl.DecideBai({Obs(1)}, 0, 50'000.0);
  EXPECT_EQ(d.assignments[0].cause, DecisionCause::kSolverUp);
  EXPECT_EQ(d.assignments[0].level, 1);
}

TEST(RateController, CauseDistinguishesCapacityDropFromInfeasibility) {
  FlareParams params;
  params.delta = 0;
  FlareRateController ctl(params);
  ctl.AddFlow(1, LadderBps());
  for (int bai = 0; bai < 10; ++bai) {
    ctl.DecideBai({Obs(1)}, 0, 50'000.0);
  }
  EXPECT_EQ(ctl.CurrentLevel(1), 5);

  // Budget shrinks but still admits a floor assignment: feasible drop.
  BaiDecision d = ctl.DecideBai({Obs(1)}, 0, 10'000.0);
  EXPECT_TRUE(d.feasible);
  EXPECT_EQ(d.assignments[0].cause, DecisionCause::kCapacityDown);
  EXPECT_LT(d.assignments[0].level, 5);
  EXPECT_GT(d.assignments[0].level, 0);

  // Budget below even the floor rung's cost (100 kbit/s at 104 bits/RB
  // ~ 961 RB/s): the solver reports infeasible and the controller falls
  // back to the floor.
  d = ctl.DecideBai({Obs(1)}, 0, 500.0);
  EXPECT_FALSE(d.feasible);
  EXPECT_EQ(d.assignments[0].cause, DecisionCause::kInfeasibleFallback);
  EXPECT_EQ(d.assignments[0].level, 0);
}

// Parameterized: the delta sweep shape of Figure 12 at controller level —
// higher delta must not increase the number of level changes.
class DeltaSweep : public ::testing::TestWithParam<int> {};

TEST_P(DeltaSweep, ChangesMonotoneInDelta) {
  const int delta = GetParam();
  FlareParams params;
  params.delta = delta;
  FlareRateController ctl(params);
  ctl.AddFlow(1, LadderBps());
  // Alternating capacity regimes force periodic re-convergence.
  int changes = 0;
  int prev = -1;
  for (int bai = 0; bai < 300; ++bai) {
    const double e = (bai / 50) % 2 == 0 ? 104.0 : 40.0;
    const BaiDecision d = ctl.DecideBai({Obs(1, e)}, 2, 20'000.0);
    const int level = d.assignments[0].level;
    if (prev >= 0 && level != prev) ++changes;
    prev = level;
  }
  // Record for cross-parameter comparison via static state.
  static std::map<int, int> changes_by_delta;
  changes_by_delta[delta] = changes;
  for (const auto& [d_lo, c_lo] : changes_by_delta) {
    for (const auto& [d_hi, c_hi] : changes_by_delta) {
      if (d_lo < d_hi) {
        EXPECT_GE(c_lo, c_hi);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Fig12Shape, DeltaSweep,
                         ::testing::Values(1, 2, 4, 8, 12));

}  // namespace
}  // namespace flare
