// Tests for uplink live broadcast (the paper's Section V extension):
// encode-paced uploads, backlog back-pressure, FLARE steering uplink
// rates through the same plugin/OneAPI machinery.
#include <gtest/gtest.h>

#include "abr/google.h"
#include "has/uplink_session.h"
#include "lte/cell.h"
#include "lte/gbr_scheduler.h"
#include "net/oneapi_server.h"
#include "sim/simulator.h"
#include "transport/transport_host.h"

namespace flare {
namespace {

class FixedAbr final : public AbrAlgorithm {
 public:
  explicit FixedAbr(int index) : index_(index) {}
  int NextRepresentation(const AbrContext&) override { return index_; }
  std::string Name() const override { return "fixed"; }

 private:
  int index_;
};

struct UplinkNet {
  Simulator sim;
  Cell cell;  // models the uplink shared channel
  TransportHost host;
  explicit UplinkNet(int itbs = 7)
      : cell(sim, std::make_unique<TwoPhaseGbrScheduler>(), CellConfig{},
             Rng(1)),
        host(sim, cell) {
    ue = cell.AddUe(std::make_unique<StaticItbsChannel>(itbs));
  }
  UeId ue = 0;
};

TEST(Uplink, EncodesOneSegmentPerDuration) {
  UplinkNet net;
  TcpFlow& flow = net.host.CreateFlow(net.ue, FlowType::kVideo);
  UplinkBroadcastSession session(net.sim, flow, MakeMpd({500}, 2.0),
                                 std::make_unique<FixedAbr>(0),
                                 UplinkSessionConfig{});
  session.Start(0);
  net.cell.Start();
  net.sim.RunUntil(FromSeconds(60.0));
  EXPECT_EQ(session.segments_encoded(), 30);  // one per 2 s
  // 500 Kbps segments over a 5.2 Mbit/s channel: uploads keep up.
  EXPECT_GE(session.segments_uploaded(), 28);
  EXPECT_LE(session.backlog(), 1);
  EXPECT_LT(session.max_upload_lag_s(), 2.0);
}

TEST(Uplink, BacklogForcesLowestRungUnderPressure) {
  UplinkNet net(2);  // 1.6 Mbit/s uplink
  TcpFlow& flow = net.host.CreateFlow(net.ue, FlowType::kVideo);
  // ABR stubbornly demands 2750 Kbps — unsustainable on this link.
  UplinkSessionConfig config;
  config.max_backlog_segments = 2;
  UplinkBroadcastSession session(
      net.sim, flow, MakeMpd(TestbedLadderKbps(), 2.0),
      std::make_unique<FixedAbr>(7), config);
  session.Start(0);
  net.cell.Start();
  net.sim.RunUntil(FromSeconds(120.0));

  // Back-pressure kicked in: the lowest rung appears in the history.
  bool forced_floor = false;
  for (int index : session.selection_history()) {
    if (index == 0) forced_floor = true;
  }
  EXPECT_TRUE(forced_floor);
  // The backlog stays bounded instead of growing without limit.
  EXPECT_LE(session.backlog(), 4);
}

TEST(Uplink, FlarePluginSteersUplinkRates) {
  // The Section V claim end-to-end: the OneAPI server assigns uplink
  // rates through the same plugin machinery used for downlink.
  UplinkNet net(9);  // 6.8 Mbit/s
  Pcrf pcrf;
  Pcef pcef(net.sim, net.cell, 10 * kMillisecond);
  OneApiConfig oneapi_config;
  oneapi_config.bai = FromSeconds(1.0);
  oneapi_config.params.delta = 1;
  OneApiServer server(net.sim, net.cell, pcrf, pcef, oneapi_config);

  TcpFlow& flow = net.host.CreateFlow(net.ue, FlowType::kVideo);
  const Mpd mpd = MakeMpd(SimulationLadderKbps(), 2.0);
  auto plugin = std::make_unique<FlarePlugin>(flow.id());
  FlarePlugin* plugin_ptr = plugin.get();
  UplinkBroadcastSession session(net.sim, flow, mpd, std::move(plugin),
                                 UplinkSessionConfig{});
  server.ConnectVideoClient(plugin_ptr, mpd);
  server.Start();
  session.Start(0);
  net.cell.Start();
  net.sim.RunUntil(FromSeconds(60.0));

  // The controller climbed the ladder and the broadcast followed.
  EXPECT_GE(server.controller().CurrentLevel(flow.id()), 3);
  EXPECT_GT(session.avg_bitrate_bps(), 300e3);
  EXPECT_LE(session.backlog(), 2);
  // The bearer carries a GBR like any downlink video flow.
  EXPECT_GT(net.cell.flow(flow.id()).gbr_bps, 0.0);
}

TEST(Uplink, RejectsInvalidConstruction) {
  UplinkNet net;
  TcpFlow& flow = net.host.CreateFlow(net.ue, FlowType::kVideo);
  Mpd bad;
  EXPECT_THROW(UplinkBroadcastSession(net.sim, flow, bad,
                                      std::make_unique<FixedAbr>(0),
                                      UplinkSessionConfig{}),
               std::invalid_argument);
  EXPECT_THROW(UplinkBroadcastSession(net.sim, flow, MakeMpd({100}, 2.0),
                                      nullptr, UplinkSessionConfig{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace flare
