// Tests for the paper's mathematical claims themselves:
//  * Lemma 1 — optimizing the reduced objective (2) is equivalent to
//    optimizing the full objective (1) when data throughputs scale with
//    (1 - r);
//  * Proposition 1 — the continuous relaxation is a concave program
//    (checked numerically along random segments);
//  * the KKT/bisection solver solves that program to (near) optimality
//    against a projected-gradient reference.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/optimizer.h"
#include "util/rng.h"

namespace flare {
namespace {

// Full objective (1): video terms + sum_u log(T_u / theta_u) with
// T_u = X_u * (1 - r) for data flows.
double FullObjective(const std::vector<double>& rates_bps,
                     const std::vector<VideoUtilityParams>& params,
                     const std::vector<double>& data_x,
                     const std::vector<double>& data_theta, double alpha,
                     double r) {
  double total = 0.0;
  for (std::size_t u = 0; u < rates_bps.size(); ++u) {
    total += VideoUtility(rates_bps[u], params[u]);
  }
  for (std::size_t u = 0; u < data_x.size(); ++u) {
    total += alpha * std::log(data_x[u] * (1.0 - r) / data_theta[u]);
  }
  return total;
}

TEST(Lemma1, ReducedObjectiveDiffersByConstant) {
  // (1) - (2) must be independent of (r, R): the per-flow constants
  // sum_u log(X_u / theta_u).
  Rng rng(3);
  const int n_data = 4;
  std::vector<double> data_x;
  std::vector<double> data_theta;
  for (int i = 0; i < n_data; ++i) {
    data_x.push_back(rng.Uniform(0.5e6, 5e6));
    data_theta.push_back(rng.Uniform(0.1e6, 0.4e6));
  }
  const double alpha = 1.7;
  std::vector<VideoUtilityParams> params(3);
  std::optional<double> constant;
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> rates;
    for (int u = 0; u < 3; ++u) rates.push_back(rng.Uniform(1e5, 3e6));
    const double r = rng.Uniform(0.0, 0.95);
    const double full = FullObjective(rates, params, data_x, data_theta,
                                      alpha, r);
    const double reduced =
        TotalUtility(rates, params, n_data, alpha, r);
    const double diff = full - reduced;
    if (!constant) {
      constant = diff;
    } else {
      EXPECT_NEAR(diff, *constant, 1e-8) << "trial " << trial;
    }
  }
}

TEST(Lemma1, ArgmaxAgrees) {
  // The maximizer over a finite grid must be identical for (1) and (2).
  Rng rng(4);
  const int n_data = 3;
  std::vector<double> data_x{1e6, 2e6, 3e6};
  std::vector<double> data_theta{0.2e6, 0.2e6, 0.2e6};
  const double alpha = 1.0;
  std::vector<VideoUtilityParams> params(2);

  double best_full = -1e300;
  double best_reduced = -1e300;
  std::pair<int, int> argmax_full{-1, -1};
  std::pair<int, int> argmax_reduced{-1, -1};
  const std::vector<double> ladder{1e5, 5e5, 1e6, 2e6};
  for (int i = 0; i < static_cast<int>(ladder.size()); ++i) {
    for (int j = 0; j < static_cast<int>(ladder.size()); ++j) {
      const std::vector<double> rates{ladder[static_cast<std::size_t>(i)],
                                      ladder[static_cast<std::size_t>(j)]};
      // r proportional to the video rates (fixed efficiency).
      const double r =
          std::min((rates[0] + rates[1]) / 5e6, 0.95);
      const double full =
          FullObjective(rates, params, data_x, data_theta, alpha, r);
      const double reduced =
          TotalUtility(rates, params, n_data, alpha, r);
      if (full > best_full) {
        best_full = full;
        argmax_full = {i, j};
      }
      if (reduced > best_reduced) {
        best_reduced = reduced;
        argmax_reduced = {i, j};
      }
    }
  }
  EXPECT_EQ(argmax_full, argmax_reduced);
}

OptProblem RandomProblem(Rng& rng, int n_flows) {
  OptProblem p;
  p.n_data_flows = static_cast<int>(rng.UniformInt(1, 6));
  p.alpha = rng.Uniform(0.25, 4.0);
  p.rb_rate = rng.Uniform(10'000.0, 60'000.0);
  for (int i = 0; i < n_flows; ++i) {
    OptFlow f;
    f.ladder_bps = {1e5, 2.5e5, 5e5, 1e6, 2e6, 3e6};
    f.max_level = 5;
    f.bits_per_rb = rng.Uniform(50.0, 600.0);
    p.flows.push_back(f);
  }
  return p;
}

/// Objective (2) as a function of the continuous rate vector.
double G(const OptProblem& p, const std::vector<double>& rates) {
  const double s = RbRateCost(p, rates);
  const double r = s / p.rb_rate;
  if (r >= 1.0) return -1e300;
  std::vector<VideoUtilityParams> params;
  for (const OptFlow& f : p.flows) params.push_back(f.utility);
  return TotalUtility(rates, params, p.n_data_flows, p.alpha, r);
}

TEST(Proposition1, ObjectiveConcaveAlongRandomSegments) {
  Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    OptProblem p = RandomProblem(rng, 4);
    // Two random feasible points; midpoint value must dominate the chord.
    std::vector<double> a(4);
    std::vector<double> b(4);
    for (int u = 0; u < 4; ++u) {
      a[static_cast<std::size_t>(u)] = rng.Uniform(1e5, 3e6);
      b[static_cast<std::size_t>(u)] = rng.Uniform(1e5, 3e6);
    }
    const double ga = G(p, a);
    const double gb = G(p, b);
    if (ga <= -1e299 || gb <= -1e299) continue;  // infeasible draw
    std::vector<double> mid(4);
    for (int u = 0; u < 4; ++u) {
      mid[static_cast<std::size_t>(u)] =
          0.5 * (a[static_cast<std::size_t>(u)] +
                 b[static_cast<std::size_t>(u)]);
    }
    EXPECT_GE(G(p, mid), 0.5 * (ga + gb) - 1e-9) << "trial " << trial;
  }
}

TEST(Proposition1, BisectionSolverMatchesProjectedGradient) {
  // Reference: slow projected gradient ascent on the same program.
  Rng rng(6);
  for (int trial = 0; trial < 10; ++trial) {
    OptProblem p = RandomProblem(rng, 3);
    const OptResult fast = SolveContinuous(p);
    if (!fast.feasible) continue;

    std::vector<double> x(3);
    std::vector<double> lo(3);
    std::vector<double> hi(3);
    for (int u = 0; u < 3; ++u) {
      lo[static_cast<std::size_t>(u)] = p.flows[static_cast<std::size_t>(u)]
                                            .ladder_bps.front();
      hi[static_cast<std::size_t>(u)] = p.flows[static_cast<std::size_t>(u)]
                                            .ladder_bps.back();
      x[static_cast<std::size_t>(u)] = lo[static_cast<std::size_t>(u)];
    }
    const double budget = p.rb_rate * p.max_video_fraction;
    for (int iter = 0; iter < 20'000; ++iter) {
      const double step = 1e3;
      for (int u = 0; u < 3; ++u) {
        const auto su = static_cast<std::size_t>(u);
        // Numerical gradient.
        std::vector<double> plus = x;
        std::vector<double> minus = x;
        plus[su] = std::min(plus[su] + 100.0, hi[su]);
        minus[su] = std::max(minus[su] - 100.0, lo[su]);
        const double grad =
            (G(p, plus) - G(p, minus)) / (plus[su] - minus[su] + 1e-12);
        x[su] = std::clamp(x[su] + step * grad * 1e6, lo[su], hi[su]);
      }
      // Project back into the capacity region if needed.
      double s = RbRateCost(p, x);
      if (s > budget) {
        const double scale = budget / s;
        for (int u = 0; u < 3; ++u) {
          const auto su = static_cast<std::size_t>(u);
          x[su] = std::max(x[su] * scale, lo[su]);
        }
      }
    }
    const double reference = G(p, x);
    EXPECT_GE(fast.objective, reference - 0.05 * std::abs(reference) - 0.2)
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace flare
