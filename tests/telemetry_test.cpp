// Telemetry plane tests: OpenMetrics exposition golden text, snapshot
// rendering equivalence, the live HTTP server (scrape lifecycle, NDJSON
// event tail, slow-subscriber backpressure), the barrier publisher, the
// flare_top parser/renderer round-trip, and the determinism contract —
// a multi-cell churn run must produce byte-identical artifacts with
// telemetry on (and actively scraped) or off.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "netio/http_client.h"
#include "obs/bai_trace.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/openmetrics.h"
#include "obs/qoe_analytics.h"
#include "obs/span_trace.h"
#include "obs/telemetry_publisher.h"
#include "obs/telemetry_server.h"
#include "obs/watchdog.h"
#include "scenario/multi_cell.h"
#include "top_core.h"
#include "util/csv.h"
#include "util/json.h"

namespace flare {
namespace {

constexpr const char* kHost = "127.0.0.1";

template <typename Pred>
bool WaitFor(Pred pred, int timeout_ms = 5000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

// --- Exposition format ------------------------------------------------------

TEST(OpenMetricsFormat, CounterGaugeHistogramGolden) {
  MetricsRegistry registry;
  registry.GetCounter("runner.epochs").Add(3);
  registry.GetGauge("telemetry.progress_pct").Set(42.5);
  Histogram& h = registry.GetHistogram("solve.ms", {1.0, 5.0});
  h.Observe(0.5);
  h.Observe(4.0);
  h.Observe(100.0);

  const std::string expected =
      "# HELP flare_runner_epochs_total runner.epochs\n"
      "# TYPE flare_runner_epochs_total counter\n"
      "flare_runner_epochs_total 3\n"
      "# HELP flare_telemetry_progress_pct telemetry.progress_pct\n"
      "# TYPE flare_telemetry_progress_pct gauge\n"
      "flare_telemetry_progress_pct 42.5\n"
      "# HELP flare_solve_ms solve.ms\n"
      "# TYPE flare_solve_ms histogram\n"
      "flare_solve_ms_bucket{le=\"1\"} 1\n"
      "flare_solve_ms_bucket{le=\"5\"} 2\n"
      "flare_solve_ms_bucket{le=\"+Inf\"} 3\n"
      "flare_solve_ms_sum 104.5\n"
      "flare_solve_ms_count 3\n"
      "# HELP flare_solve_ms_quantile solve.ms quantiles\n"
      "# TYPE flare_solve_ms_quantile gauge\n"
      "flare_solve_ms_quantile{quantile=\"0.5\"} " +
      FormatNumber(h.Quantile(0.50)) +
      "\n"
      "flare_solve_ms_quantile{quantile=\"0.95\"} " +
      FormatNumber(h.Quantile(0.95)) +
      "\n"
      "flare_solve_ms_quantile{quantile=\"0.99\"} " +
      FormatNumber(h.Quantile(0.99)) + "\n";
  EXPECT_EQ(RenderOpenMetrics(registry.Snapshot()), expected);
}

TEST(OpenMetricsFormat, CellPrefixBecomesLabel) {
  MetricsRegistry registry;
  registry.GetGauge("cell0.qoe.avg_qoe").Set(1.5);
  registry.GetGauge("cell12.qoe.avg_qoe").Set(2.25);
  registry.GetGauge("qoe.avg_qoe").Set(3.5);
  const std::string expected =
      "# HELP flare_qoe_avg_qoe qoe.avg_qoe\n"
      "# TYPE flare_qoe_avg_qoe gauge\n"
      "flare_qoe_avg_qoe{cell=\"0\"} 1.5\n"
      "flare_qoe_avg_qoe{cell=\"12\"} 2.25\n"
      "flare_qoe_avg_qoe 3.5\n";
  EXPECT_EQ(RenderOpenMetrics(registry.Snapshot()), expected);
}

TEST(OpenMetricsFormat, NameSanitizationAndCellSplit) {
  EXPECT_EQ(OpenMetricsName("runner.barrier-wait ms"),
            "flare_runner_barrier_wait_ms");
  EXPECT_EQ(OpenMetricsName("qoe.avg_qoe"), "flare_qoe_avg_qoe");

  OpenMetricsSeries s = SplitCellPrefix("cell5.player.stalls");
  EXPECT_EQ(s.family, "player.stalls");
  EXPECT_EQ(s.cell, "5");
  // No digits / no dot / nothing after the dot: the whole name stays.
  EXPECT_EQ(SplitCellPrefix("cell.x").family, "cell.x");
  EXPECT_EQ(SplitCellPrefix("cell.x").cell, "");
  EXPECT_EQ(SplitCellPrefix("cell5").family, "cell5");
  EXPECT_EQ(SplitCellPrefix("cell5.").family, "cell5.");
  EXPECT_EQ(SplitCellPrefix("celery.x").family, "celery.x");
}

TEST(OpenMetricsFormat, LabelEscaping) {
  const std::string raw = "a\"b\\c\nd";
  EXPECT_EQ(OpenMetricsEscapeLabel(raw), "a\\\"b\\\\c\\nd");

  // flare_top's parser must undo exactly this escaping.
  const std::string line = "flare_run_info{scenario=\"" +
                           OpenMetricsEscapeLabel(raw) + "\"} 1\n";
  std::vector<PromSample> samples;
  std::string error;
  ASSERT_TRUE(ParsePrometheusText(line, &samples, &error)) << error;
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].name, "flare_run_info");
  EXPECT_EQ(samples[0].labels.at("scenario"), raw);
  EXPECT_EQ(samples[0].value, 1.0);
}

TEST(OpenMetricsFormat, NanGaugesAreOmitted) {
  MetricsRegistry registry;
  registry.GetGauge("all.nan").Set(std::nan(""));
  registry.GetGauge("cell0.mixed").Set(std::nan(""));
  registry.GetGauge("cell1.mixed").Set(2.0);
  const std::string text = RenderOpenMetrics(registry.Snapshot());
  // All-NaN family disappears entirely (header included).
  EXPECT_EQ(text.find("flare_all_nan"), std::string::npos);
  // Mixed family keeps only the finite series.
  EXPECT_NE(text.find("flare_mixed{cell=\"1\"} 2\n"), std::string::npos);
  EXPECT_EQ(text.find("cell=\"0\""), std::string::npos);
}

TEST(OpenMetricsFormat, EmptyHistogramOmitsQuantiles) {
  MetricsRegistry registry;
  registry.GetHistogram("empty.ms", {1.0});
  const std::string text = RenderOpenMetrics(registry.Snapshot());
  EXPECT_NE(text.find("flare_empty_ms_bucket{le=\"1\"} 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("flare_empty_ms_count 0\n"), std::string::npos);
  EXPECT_EQ(text.find("flare_empty_ms_quantile"), std::string::npos);
}

// --- Snapshot <-> registry equivalence --------------------------------------

TEST(MetricsSnapshotContract, AbsorbFromMatchesMergeFromByteForByte) {
  MetricsRegistry shard_a;
  shard_a.GetCounter("player.segments").Add(2);
  shard_a.GetGauge("player.buffer_s").Set(1.5);
  shard_a.GetHistogram("solve.ms", {1.0, 5.0}).Observe(3.0);
  MetricsRegistry shard_b;
  shard_b.GetCounter("player.segments").Add(7);
  shard_b.GetHistogram("solve.ms", {1.0, 5.0}).Observe(0.25);

  MetricsRegistry merged;
  merged.MergeFrom(shard_a, "cell0.");
  merged.MergeFrom(shard_b, "cell1.");
  std::ostringstream live;
  merged.WriteJson(live);

  MetricsSnapshot snapshot;
  snapshot.AbsorbFrom(shard_a, "cell0.");
  snapshot.AbsorbFrom(shard_b, "cell1.");
  std::ostringstream snap;
  snapshot.WriteJson(snap);

  EXPECT_EQ(live.str(), snap.str());
}

TEST(MetricsSnapshotContract, QuantilesBitIdenticalToLiveHistogram) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("x.ms", {1.0, 2.0, 8.0});
  for (double v : {0.1, 0.9, 1.5, 1.7, 3.0, 6.5, 20.0}) h.Observe(v);
  const HistogramSnapshot snap = h.Snapshot();
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    // EXPECT_EQ (not NEAR): the bit-identity is the contract that lets
    // /metrics and the end-of-run JSON share one renderer.
    EXPECT_EQ(h.Quantile(q), snap.Quantile(q)) << "q=" << q;
  }
  EXPECT_EQ(h.Mean(), snap.Mean());
  EXPECT_EQ(h.CumulativeCounts(), snap.CumulativeCounts());
}

// --- Health JSON ------------------------------------------------------------

TEST(HealthJson, GoldenBodies) {
  TelemetrySnapshot snap;
  snap.scenario = "flare x4";
  snap.sim_time_s = 5.0;
  snap.duration_s = 20.0;
  snap.epochs = 50;
  snap.epoch_rate_hz = 10.0;
  snap.sim_speedup = 2.5;
  snap.cells = 4;
  snap.workers = 2;
  snap.healthy = true;
  EXPECT_EQ(RenderHealthJson(snap, /*have_snapshot=*/true),
            "{\"status\": \"ok\", \"healthy\": true, "
            "\"scenario\": \"flare x4\", \"sim_time_s\": 5, "
            "\"duration_s\": 20, \"progress_pct\": 25, \"epochs\": 50, "
            "\"epoch_rate_hz\": 10, \"sim_speedup\": 2.5, \"cells\": 4, "
            "\"workers\": 2, \"warnings\": 0, \"unhealthy_cells\": []}");

  snap.healthy = false;
  snap.warnings = 3;
  snap.unhealthy_cells = {1, 3};
  const std::string alarming = RenderHealthJson(snap, true);
  EXPECT_NE(alarming.find("\"status\": \"alarming\""), std::string::npos);
  EXPECT_NE(alarming.find("\"unhealthy_cells\": [1, 3]"),
            std::string::npos);

  // Pre-first-publish: "starting" and unhealthy regardless of content.
  const std::string starting = RenderHealthJson(snap, false);
  EXPECT_NE(starting.find("\"status\": \"starting\""), std::string::npos);
  EXPECT_NE(starting.find("\"healthy\": false"), std::string::npos);

  // Both bodies are valid JSON.
  JsonValue parsed;
  ASSERT_TRUE(ParseJson(alarming, &parsed));
  EXPECT_EQ(parsed.Find("warnings")->AsNumber(), 3.0);
}

// --- Live server ------------------------------------------------------------

TEST(TelemetryHttp, ScrapeLifecycle) {
  TelemetryServer server;
  ASSERT_TRUE(server.Start());
  ASSERT_TRUE(server.running());
  ASSERT_GT(server.port(), 0);

  // Before any publish: /healthz is 503 "starting".
  HttpResponse health;
  ASSERT_TRUE(HttpGet(kHost, server.port(), "/healthz", &health));
  EXPECT_EQ(health.status, 503);
  EXPECT_NE(health.body.find("\"status\": \"starting\""),
            std::string::npos);

  TelemetrySnapshot snap;
  snap.scenario = "lifecycle";
  snap.sim_time_s = 5.0;
  snap.duration_s = 10.0;
  snap.healthy = true;
  snap.metrics.counters["runner.epochs"] = 7;
  snap.metrics.gauges["cell0.qoe.avg_qoe"] = 0.75;
  server.Publish(snap);

  ASSERT_TRUE(HttpGet(kHost, server.port(), "/healthz", &health));
  EXPECT_EQ(health.status, 200);
  JsonValue parsed;
  ASSERT_TRUE(ParseJson(health.body, &parsed));
  EXPECT_EQ(parsed.Find("status")->AsString(), "ok");
  EXPECT_EQ(parsed.Find("sim_time_s")->AsNumber(), 5.0);

  HttpResponse metrics;
  ASSERT_TRUE(HttpGet(kHost, server.port(), "/metrics", &metrics));
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("flare_runner_epochs_total 7\n"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("flare_qoe_avg_qoe{cell=\"0\"} 0.75\n"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("flare_run_info{scenario=\"lifecycle\"} 1\n"),
            std::string::npos);
  ASSERT_GE(metrics.body.size(), 6u);
  EXPECT_EQ(metrics.body.substr(metrics.body.size() - 6), "# EOF\n");

  // The whole body parses as exposition text, and the scrape counter is
  // monotone across scrapes.
  HttpResponse again;
  ASSERT_TRUE(HttpGet(kHost, server.port(), "/metrics", &again));
  std::vector<PromSample> first_samples;
  std::vector<PromSample> second_samples;
  std::string error;
  ASSERT_TRUE(ParsePrometheusText(metrics.body, &first_samples, &error))
      << error;
  ASSERT_TRUE(ParsePrometheusText(again.body, &second_samples, &error))
      << error;
  const auto scrape_count = [](const std::vector<PromSample>& samples) {
    for (const PromSample& s : samples) {
      if (s.name == "flare_telemetry_scrapes_total") return s.value;
    }
    return -1.0;
  };
  EXPECT_GE(scrape_count(first_samples), 1.0);
  EXPECT_GT(scrape_count(second_samples), scrape_count(first_samples));
  // Only /metrics requests count as scrapes (not /healthz).
  EXPECT_EQ(server.scrapes(), 2u);

  // Unhealthy publish flips /healthz to 503 "alarming".
  snap.healthy = false;
  snap.unhealthy_cells = {0};
  server.Publish(snap);
  ASSERT_TRUE(HttpGet(kHost, server.port(), "/healthz", &health));
  EXPECT_EQ(health.status, 503);
  EXPECT_NE(health.body.find("\"status\": \"alarming\""),
            std::string::npos);

  // Unknown paths 404 but keep the connection protocol-clean.
  HttpResponse missing;
  ASSERT_TRUE(HttpGet(kHost, server.port(), "/nope", &missing));
  EXPECT_EQ(missing.status, 404);

  server.Stop();
  EXPECT_FALSE(server.running());
  server.Stop();  // idempotent
}

TEST(TelemetryHttp, EventsStreamRoundTrip) {
  TelemetryServer server;
  ASSERT_TRUE(server.Start());

  HttpTail tail;
  ASSERT_TRUE(tail.Open(kHost, server.port(), "/events"));
  EXPECT_EQ(tail.status(), 200);

  FlightEvent ev;
  ev.t_s = 1.5;
  ev.cell = 3;
  ev.seq = 9;
  ev.kind = "rung_change";
  ev.flow = 7;
  ev.client = 2;
  ev.value = 3.0;
  ev.args = "{\"from\": 1, \"to\": 2}";
  server.PublishEvents(
      {RenderFlightEventNdjson(ev), "{\"t_s\": 2.0, \"kind\": \"x\"}"});

  std::string chunk;
  ASSERT_TRUE(tail.NextChunk(&chunk));
  while (!chunk.empty() && chunk.back() == '\n') chunk.pop_back();
  JsonValue line;
  ASSERT_TRUE(ParseJson(chunk, &line)) << chunk;
  EXPECT_EQ(line.Find("t_s")->AsNumber(), 1.5);
  EXPECT_EQ(line.Find("cell")->AsNumber(), 3.0);
  EXPECT_EQ(line.Find("seq")->AsNumber(), 9.0);
  EXPECT_EQ(line.Find("kind")->AsString(), "rung_change");
  EXPECT_EQ(line.Find("args")->Find("to")->AsNumber(), 2.0);

  ASSERT_TRUE(tail.NextChunk(&chunk));
  while (!chunk.empty() && chunk.back() == '\n') chunk.pop_back();
  ASSERT_TRUE(ParseJson(chunk, &line)) << chunk;
  EXPECT_EQ(line.Find("t_s")->AsNumber(), 2.0);

  EXPECT_TRUE(
      WaitFor([&] { return server.events_published() == 2; }));
  EXPECT_EQ(server.events_dropped(), 0u);

  // Graceful shutdown delivers the terminal chunk: the tail sees a clean
  // end of stream, not an error-y hang.
  server.Stop();
  EXPECT_FALSE(tail.NextChunk(&chunk));
  tail.Close();
}

TEST(TelemetryHttp, SlowEventsSubscriberDropsInsteadOfBlocking) {
  TelemetryServer::Options options;
  options.event_queue_capacity = 64;
  options.connection_buffer_limit = 4096;
  TelemetryServer server(options);
  ASSERT_TRUE(server.Start());

  // A subscriber that opens the stream and then never reads — the worst
  // client. Kernel socket buffers absorb some data; past those plus the
  // per-connection outbox cap, events must be dropped and counted, and
  // the publish side must stay prompt.
  HttpTail tail;
  ASSERT_TRUE(tail.Open(kHost, server.port(), "/events"));

  const std::string pad(1000, 'x');
  bool dropped = false;
  for (int batch = 0; batch < 128 && !dropped; ++batch) {
    std::vector<std::string> lines;
    lines.reserve(64);
    for (int i = 0; i < 64; ++i) {
      lines.push_back("{\"batch\": " + std::to_string(batch) +
                      ", \"pad\": \"" + pad + "\"}");
    }
    server.PublishEvents(std::move(lines));
    dropped = WaitFor([&] { return server.events_dropped() > 0; },
                      /*timeout_ms=*/50);
  }
  EXPECT_TRUE(dropped);
  EXPECT_GT(server.events_dropped(), 0u);

  // The server is still fully responsive and exports the drop counter.
  HttpResponse metrics;
  ASSERT_TRUE(HttpGet(kHost, server.port(), "/metrics", &metrics));
  EXPECT_EQ(metrics.status, 200);
  std::vector<PromSample> samples;
  std::string error;
  ASSERT_TRUE(ParsePrometheusText(metrics.body, &samples, &error)) << error;
  double dropped_total = -1.0;
  for (const PromSample& s : samples) {
    if (s.name == "flare_telemetry_events_dropped_total") {
      dropped_total = s.value;
    }
  }
  EXPECT_GT(dropped_total, 0.0);

  tail.Close();
  server.Stop();
}

/// TSan coverage for the snapshot handoff: one thread publishing
/// snapshots and event lines while scraper threads hammer every endpoint.
TEST(TelemetryHttp, ConcurrentPublishAndScrape) {
  TelemetryServer server;
  ASSERT_TRUE(server.Start());

  std::atomic<bool> done{false};
  std::thread publisher([&] {
    for (int i = 0; i < 200; ++i) {
      TelemetrySnapshot snap;
      snap.scenario = "tsan";
      snap.sim_time_s = static_cast<double>(i);
      snap.duration_s = 200.0;
      snap.healthy = (i % 3) != 0;
      snap.metrics.counters["runner.epochs"] =
          static_cast<std::uint64_t>(i);
      snap.metrics.gauges["cell0.qoe.avg_qoe"] = 0.5;
      server.Publish(std::move(snap));
      server.PublishEvents({"{\"i\": " + std::to_string(i) + "}"});
      std::this_thread::yield();
    }
    done.store(true);
  });
  std::vector<std::thread> scrapers;
  for (int t = 0; t < 2; ++t) {
    scrapers.emplace_back([&] {
      // At least a few polls each even if the publisher finishes first,
      // so the scrape path is always exercised.
      for (int polls = 0; !done.load() || polls < 5; ++polls) {
        HttpResponse r;
        HttpGet(kHost, server.port(), "/metrics", &r, 2000);
        HttpGet(kHost, server.port(), "/healthz", &r, 2000);
      }
    });
  }
  publisher.join();
  for (std::thread& t : scrapers) t.join();
  EXPECT_GT(server.scrapes(), 0u);
  server.Stop();
}

// --- Publisher --------------------------------------------------------------

TEST(TelemetryPublisherBridge, NdjsonGoldenAndCollectSinceInclusive) {
  FlightEvent ev;
  ev.t_s = 1.5;
  ev.cell = 3;
  ev.seq = 0;
  ev.kind = "rung_change";
  ev.flow = 7;
  ev.client = 2;
  ev.value = 3.0;
  ev.args = "{\"from\": 1}";
  EXPECT_EQ(RenderFlightEventNdjson(ev),
            "{\"t_s\": 1.5, \"cell\": 3, \"seq\": 0, "
            "\"kind\": \"rung_change\", \"flow\": 7, \"client\": 2, "
            "\"value\": 3, \"args\": {\"from\": 1}}");
  ev.args.clear();
  EXPECT_EQ(RenderFlightEventNdjson(ev).find("args"), std::string::npos);

  // Seqs start at 0, so the tail cursor is inclusive: from_seq=0 must
  // return the very first event, and the returned cursor is next-unseen.
  FlightRecorder recorder(16);
  recorder.Record(1.0, "a");
  recorder.Record(2.0, "b");
  std::vector<FlightEvent> out;
  std::uint64_t next = recorder.CollectEventsSince(0, /*cell=*/5, &out);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(next, 2u);
  EXPECT_EQ(out[0].cell, 5);
  out.clear();
  EXPECT_EQ(recorder.CollectEventsSince(next, 5, &out), 2u);
  EXPECT_TRUE(out.empty());
  recorder.Record(3.0, "c");
  EXPECT_EQ(recorder.CollectEventsSince(next, 5, &out), 3u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].t_s, 3.0);
}

TEST(TelemetryPublisherBridge, PublishNowExportsShardsAndEvents) {
  TelemetryServer server;
  ASSERT_TRUE(server.Start());

  MetricsRegistry coordinator;
  coordinator.GetCounter("runner.epochs").Add(42);
  MetricsRegistry shard_metrics;
  shard_metrics.GetCounter("player.segments").Add(5);
  QoeAnalytics qoe;
  RunHealthMonitor health;
  FlightRecorder flight(16);
  flight.Record(1.5, "rung_change", 7, 2, 3.0);

  TelemetryPublisher publisher(&server, /*interval_ms=*/1.0);
  ASSERT_TRUE(publisher.enabled());
  publisher.ConfigureRun("unit x1", /*duration_s=*/10.0, /*cells=*/1,
                         /*workers=*/0);
  publisher.SetCoordinatorMetrics(&coordinator);
  publisher.AddShard({&shard_metrics, &qoe, &health, &flight, "cell0."},
                     /*cell=*/0);
  publisher.PublishNow(/*sim_time_s=*/5.0);

  HttpResponse metrics;
  ASSERT_TRUE(HttpGet(kHost, server.port(), "/metrics", &metrics));
  EXPECT_EQ(metrics.status, 200);
  // Coordinator registry lands unprefixed, shard registry + live QoE /
  // health gauges under the cell label.
  EXPECT_NE(metrics.body.find("flare_runner_epochs_total 42\n"),
            std::string::npos);
  EXPECT_NE(
      metrics.body.find("flare_player_segments_total{cell=\"0\"} 5\n"),
      std::string::npos);
  EXPECT_NE(metrics.body.find("flare_qoe_sessions{cell=\"0\"} 0\n"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("flare_health_healthy{cell=\"0\"} 1\n"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("flare_run_info{scenario=\"unit x1\"} 1\n"),
            std::string::npos);

  HttpResponse health_response;
  ASSERT_TRUE(HttpGet(kHost, server.port(), "/healthz", &health_response));
  EXPECT_EQ(health_response.status, 200);
  JsonValue parsed;
  ASSERT_TRUE(ParseJson(health_response.body, &parsed));
  EXPECT_EQ(parsed.Find("sim_time_s")->AsNumber(), 5.0);
  EXPECT_EQ(parsed.Find("cells")->AsNumber(), 1.0);
  EXPECT_EQ(parsed.Find("scenario")->AsString(), "unit x1");

  // The flight event was forwarded once; republishing without new events
  // forwards nothing (the per-shard cursor advanced).
  EXPECT_TRUE(WaitFor([&] { return server.events_published() == 1; }));
  publisher.PublishNow(6.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(server.events_published(), 1u);
  flight.Record(7.0, "stall_start", 7, 2);
  publisher.PublishNow(8.0);
  EXPECT_TRUE(WaitFor([&] { return server.events_published() == 2; }));

  server.Stop();
}

// --- flare_top core ---------------------------------------------------------

TEST(TopCore, ParseBuildRenderRoundTrip) {
  // Exposition the way the server produces it: rendered families plus
  // the server's self-metrics appended as plain lines.
  MetricsRegistry registry;
  for (int cell = 0; cell < 2; ++cell) {
    const std::string p = "cell" + std::to_string(cell) + ".";
    registry.GetGauge(p + "qoe.sessions").Set(3 + cell);
    registry.GetGauge(p + "qoe.played_sessions").Set(2 + cell);
    registry.GetGauge(p + "qoe.avg_bitrate_bps").Set(2.5e6);
    registry.GetGauge(p + "qoe.avg_qoe").Set(0.8);
    registry.GetGauge(p + "qoe.jain_avg_bitrate").Set(0.97);
    registry.GetGauge(p + "qoe.stalls").Set(cell);
    registry.GetGauge(p + "qoe.stall_ratio").Set(0.01);
    registry.GetGauge(p + "qoe.blocking_probability").Set(0.125);
    registry.GetGauge(p + "health.healthy").Set(cell == 0 ? 1.0 : 0.0);
  }
  Histogram& barrier =
      registry.GetHistogram("runner.barrier_wait_ms", {0.1, 1.0, 10.0});
  barrier.Observe(0.05);
  barrier.Observe(0.5);
  std::string text = RenderOpenMetrics(registry.Snapshot());
  text +=
      "flare_telemetry_scrapes_total 4\n"
      "flare_telemetry_events_published_total 10\n"
      "flare_telemetry_events_dropped_total 1\n"
      "flare_run_info{scenario=\"fallback\"} 1\n"
      "# EOF\n";

  std::vector<PromSample> samples;
  std::string error;
  ASSERT_TRUE(ParsePrometheusText(text, &samples, &error)) << error;

  TelemetrySnapshot health_snap;
  health_snap.scenario = "flare x2";
  health_snap.sim_time_s = 10.0;
  health_snap.duration_s = 20.0;
  health_snap.epochs = 100;
  health_snap.cells = 2;
  health_snap.workers = 2;
  health_snap.healthy = true;
  JsonValue healthz;
  ASSERT_TRUE(ParseJson(RenderHealthJson(health_snap, true), &healthz));

  const TopSnapshot top = BuildTopSnapshot(samples, &healthz);
  EXPECT_EQ(top.status, "ok");
  EXPECT_TRUE(top.healthy);
  // /healthz wins the scenario over the run_info fallback.
  EXPECT_EQ(top.scenario, "flare x2");
  EXPECT_EQ(top.progress_pct, 50.0);
  EXPECT_EQ(top.cells, 2);
  EXPECT_TRUE(top.have_barrier_wait);
  EXPECT_EQ(top.scrapes, 4.0);
  EXPECT_EQ(top.events_dropped, 1.0);
  ASSERT_EQ(top.rows.size(), 2u);
  EXPECT_EQ(top.rows[0].cell, 0);
  EXPECT_EQ(top.rows[0].sessions, 3.0);
  EXPECT_TRUE(top.rows[0].healthy);
  EXPECT_EQ(top.rows[1].cell, 1);
  EXPECT_EQ(top.rows[1].stalls, 1.0);
  EXPECT_FALSE(top.rows[1].healthy);

  // --json output parses back and carries the rows.
  JsonValue round;
  ASSERT_TRUE(ParseJson(RenderTopJson(top), &round));
  EXPECT_EQ(round.Find("status")->AsString(), "ok");
  EXPECT_EQ(round.Find("cell_rows")->items().size(), 2u);
  EXPECT_EQ(round.Find("cell_rows")->items()[1].Find("cell")->AsNumber(),
            1.0);

  const std::string table = RenderTopTable(top);
  EXPECT_NE(table.find("flare x2"), std::string::npos);
  EXPECT_NE(table.find("ALARM"), std::string::npos);
  EXPECT_NE(table.find("barrier p99"), std::string::npos);

  // Without healthz, the run_info label is the scenario fallback.
  const TopSnapshot bare = BuildTopSnapshot(samples, nullptr);
  EXPECT_EQ(bare.scenario, "fallback");
  EXPECT_EQ(bare.status, "unknown");

  // Sim runs export no request-stage gauges: the control-plane section
  // is absent from the snapshot, the table, and the JSON.
  EXPECT_TRUE(top.stage_rows.empty());
  EXPECT_EQ(table.find("control plane"), std::string::npos);
  EXPECT_EQ(round.Find("stage_rows"), nullptr);
}

TEST(TopCore, StageRowsRenderOnlyForTracingDaemons) {
  // A tracing flare_oneapid exposes per-stage quantile gauges; flare_top
  // folds them into an ordered control-plane section. Partial exposure
  // (a stage missing entirely) just omits that row.
  std::string text;
  const char* exposed[] = {"recv", "queue_wait", "solve"};
  for (const char* stage : exposed) {
    const std::string base =
        std::string("flare_svc_oneapi_stage_") + stage + "_";
    text += base + "p50_us 12.5\n";
    text += base + "p95_us 80\n";
    text += base + "p99_us 240\n";
  }
  text += "flare_svc_oneapi_stage_encode_p50_us 3\n";  // p95/p99 absent
  text += "# EOF\n";

  std::vector<PromSample> samples;
  std::string error;
  ASSERT_TRUE(ParsePrometheusText(text, &samples, &error)) << error;
  const TopSnapshot top = BuildTopSnapshot(samples, nullptr);

  // Rows come out in pipeline order, not exposition order.
  ASSERT_EQ(top.stage_rows.size(), 4u);
  EXPECT_EQ(top.stage_rows[0].stage, "recv");
  EXPECT_EQ(top.stage_rows[1].stage, "queue_wait");
  EXPECT_EQ(top.stage_rows[2].stage, "solve");
  EXPECT_EQ(top.stage_rows[3].stage, "encode");
  EXPECT_EQ(top.stage_rows[1].p50_us, 12.5);
  EXPECT_EQ(top.stage_rows[1].p99_us, 240.0);
  EXPECT_EQ(top.stage_rows[3].p50_us, 3.0);
  EXPECT_EQ(top.stage_rows[3].p95_us, 0.0);

  const std::string table = RenderTopTable(top);
  EXPECT_NE(table.find("control plane"), std::string::npos);
  EXPECT_NE(table.find("queue_wait"), std::string::npos);

  JsonValue round;
  ASSERT_TRUE(ParseJson(RenderTopJson(top), &round));
  const JsonValue* rows = round.Find("stage_rows");
  ASSERT_NE(rows, nullptr);
  ASSERT_EQ(rows->items().size(), 4u);
  EXPECT_EQ(rows->items()[2].Find("stage")->AsString(), "solve");
  EXPECT_EQ(rows->items()[2].Find("p99_us")->AsNumber(), 240.0);
}

// --- Determinism with telemetry on ------------------------------------------

MultiCellConfig TelemetryHarnessConfig(int workers) {
  MultiCellConfig multi;
  multi.cell = TestbedPreset(Scheme::kFlare);
  multi.cell.duration_s = 10.0;
  multi.cell.seed = 7;
  multi.cell.oneapi.deterministic_timing = true;
  multi.cell.n_video = 2;
  multi.cell.churn.enabled = true;
  multi.cell.churn.arrival_rate_per_s = 0.4;
  multi.cell.churn.mean_hold_s = 8.0;
  multi.cell.churn.data_fraction = 0.2;
  multi.cell.churn.admission.policy = AdmissionPolicy::kCapacityThreshold;
  multi.cell.churn.admission.capacity_threshold = 0.5;
  multi.n_cells = 4;
  multi.workers = workers;
  return multi;
}

struct RunOutput {
  std::string csv;
  std::string json;
  std::string spans;
  std::string health;
  std::string qoe;
  std::string flight;
};

RunOutput RunMulti(MultiCellConfig multi, TelemetryServer* telemetry) {
  MetricsRegistry registry;
  BaiTraceSink trace;
  SpanTracer spans;
  RunHealthMonitor health;
  QoeAnalytics qoe;
  FlightRecorder flight(64);
  multi.metrics = &registry;
  multi.bai_trace = &trace;
  multi.span_trace = &spans;
  multi.health = &health;
  multi.qoe = &qoe;
  multi.flight = &flight;
  multi.telemetry = telemetry;
  // Publish at (virtually) every epoch barrier so the telemetry path is
  // genuinely hot during the comparison run.
  multi.telemetry_interval_ms = 1.0;

  RunMultiCellScenario(multi);

  RunOutput out;
  std::ostringstream csv;
  trace.WriteCsv(csv);
  out.csv = csv.str();
  std::ostringstream json;
  trace.WriteJson(json, &registry, nullptr, &qoe);
  out.json = json.str();
  std::ostringstream span_json;
  spans.WriteJson(span_json);
  out.spans = span_json.str();
  std::ostringstream health_json;
  health.WriteJson(health_json);
  out.health = health_json.str();
  std::ostringstream qoe_json;
  qoe.WriteJson(qoe_json);
  out.qoe = qoe_json.str();
  std::ostringstream flight_json;
  flight.WriteJson(flight_json);
  out.flight = flight_json.str();
  return out;
}

TEST(TelemetryDeterminism, RunBytesIdenticalWithTelemetryOnAndScraped) {
  const RunOutput off = RunMulti(TelemetryHarnessConfig(0), nullptr);
  ASSERT_FALSE(off.csv.empty());

  for (const int workers : {0, 2}) {
    TelemetryServer server;
    ASSERT_TRUE(server.Start());
    // Live adversarial load while the run executes: scrape both endpoints
    // in a loop and tail /events — none of it may perturb run bytes.
    std::atomic<bool> stop{false};
    std::thread scraper([&] {
      HttpTail tail;
      tail.Open(kHost, server.port(), "/events", 2000);
      std::string chunk;
      while (!stop.load()) {
        HttpResponse r;
        HttpGet(kHost, server.port(), "/metrics", &r, 2000);
        HttpGet(kHost, server.port(), "/healthz", &r, 2000);
        tail.NextChunk(&chunk, 10);
      }
      tail.Close();
    });
    const RunOutput on = RunMulti(TelemetryHarnessConfig(workers), &server);
    stop.store(true);
    scraper.join();
    EXPECT_GT(server.scrapes(), 0u) << "workers=" << workers;
    server.Stop();

    EXPECT_EQ(off.csv, on.csv) << "workers=" << workers;
    EXPECT_EQ(off.json, on.json) << "workers=" << workers;
    EXPECT_EQ(off.spans, on.spans) << "workers=" << workers;
    EXPECT_EQ(off.health, on.health) << "workers=" << workers;
    EXPECT_EQ(off.qoe, on.qoe) << "workers=" << workers;
    EXPECT_EQ(off.flight, on.flight) << "workers=" << workers;
  }
}

}  // namespace
}  // namespace flare
