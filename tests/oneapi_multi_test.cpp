// Tests for the multi-cell OneAPI server: independent per-cell bitrate
// calculation over a shared PCRF, as Section II-A describes.
#include <gtest/gtest.h>

#include "lte/gbr_scheduler.h"
#include "net/oneapi_multi.h"
#include "sim/simulator.h"

namespace flare {
namespace {

struct MultiFixture {
  Simulator sim;
  Pcrf pcrf;
  OneApiConfig config;
  std::unique_ptr<Cell> MakeCell(int itbs) {
    auto cell = std::make_unique<Cell>(
        sim, std::make_unique<TwoPhaseGbrScheduler>(), CellConfig{},
        Rng(1));
    cell->AddUe(std::make_unique<StaticItbsChannel>(itbs));
    return cell;
  }
};

TEST(OneApiMulti, ManagesIndependentCells) {
  MultiFixture f;
  f.config.bai = FromSeconds(1.0);
  f.config.params.delta = 1;
  OneApiMultiServer server(f.sim, f.pcrf, f.config);

  auto rich_cell = f.MakeCell(20);  // 440 bits/RB: plenty of capacity
  auto poor_cell = f.MakeCell(0);   // 16 bits/RB: 0.8 Mbit/s cell
  const CellId rich = server.AddCell(*rich_cell);
  const CellId poor = server.AddCell(*poor_cell);
  ASSERT_EQ(server.NumCells(), 2u);

  const Mpd mpd = MakeMpd(SimulationLadderKbps(), 10.0);
  const FlowId rich_flow = rich_cell->AddFlow(0, FlowType::kVideo);
  const FlowId poor_flow = poor_cell->AddFlow(0, FlowType::kVideo);
  FlarePlugin rich_plugin(rich_flow);
  FlarePlugin poor_plugin(poor_flow);
  server.ConnectVideoClient(rich, &rich_plugin, mpd);
  server.ConnectVideoClient(poor, &poor_plugin, mpd);

  server.Start();
  rich_cell->Start();
  poor_cell->Start();
  // Keep both flows lightly loaded so trace windows have data.
  f.sim.Every(FromSeconds(0.1), FromSeconds(0.1), [&] {
    rich_cell->Enqueue(rich_flow, 30'000);
    poor_cell->Enqueue(poor_flow, 2'000);
  });
  f.sim.RunUntil(FromSeconds(60.0));

  // Bitrates are computed independently per cell: the rich cell's client
  // climbs to the top rungs; the poor cell's is capacity-capped at rung 2
  // (1000 Kbps would cost 62.5k RB/s of the 50k available at 16 bits/RB).
  EXPECT_GE(server.cell_server(rich).controller().CurrentLevel(rich_flow),
            4);
  EXPECT_LE(server.cell_server(poor).controller().CurrentLevel(poor_flow),
            2);
  // Both cells enforced their GBRs.
  EXPECT_GT(rich_cell->flow(rich_flow).gbr_bps,
            poor_cell->flow(poor_flow).gbr_bps);
}

TEST(OneApiMulti, SharedPcrfKeepsCellsSeparate) {
  MultiFixture f;
  OneApiMultiServer server(f.sim, f.pcrf, f.config);
  auto cell_a = f.MakeCell(10);
  auto cell_b = f.MakeCell(10);
  const CellId a = server.AddCell(*cell_a);
  const CellId b = server.AddCell(*cell_b);

  const Mpd mpd = MakeMpd(SimulationLadderKbps(), 10.0);
  const FlowId flow_a = cell_a->AddFlow(0, FlowType::kVideo);
  const FlowId flow_b = cell_b->AddFlow(0, FlowType::kVideo);
  FlarePlugin plugin_a(flow_a);
  FlarePlugin plugin_b(flow_b);
  server.ConnectVideoClient(a, &plugin_a, mpd);
  server.ConnectVideoClient(b, &plugin_b, mpd);
  f.sim.RunUntil(FromSeconds(0.1));

  // Flow ids collide across cells (both cells number from 1); the PCRF
  // cell tags keep them distinct.
  EXPECT_EQ(flow_a, flow_b);
  EXPECT_EQ(f.pcrf.CountFlows(FlowType::kVideo, a), 1);
  EXPECT_EQ(f.pcrf.CountFlows(FlowType::kVideo, b), 1);
  EXPECT_EQ(f.pcrf.CountFlowsAllCells(FlowType::kVideo), 2);

  server.DisconnectVideoClient(a, flow_a);
  EXPECT_EQ(f.pcrf.CountFlows(FlowType::kVideo, a), 0);
  EXPECT_EQ(f.pcrf.CountFlows(FlowType::kVideo, b), 1);
}

TEST(OneApiMulti, CellAddedAfterStartIsServed) {
  MultiFixture f;
  f.config.bai = FromSeconds(1.0);
  OneApiMultiServer server(f.sim, f.pcrf, f.config);
  server.Start();

  auto cell = f.MakeCell(10);
  const CellId id = server.AddCell(*cell);
  const Mpd mpd = MakeMpd(SimulationLadderKbps(), 10.0);
  const FlowId flow = cell->AddFlow(0, FlowType::kVideo);
  FlarePlugin plugin(flow);
  server.ConnectVideoClient(id, &plugin, mpd);
  cell->Start();
  f.sim.RunUntil(FromSeconds(3.0));
  EXPECT_TRUE(plugin.assigned_level().has_value());
}

TEST(OneApiMulti, UnknownCellThrows) {
  MultiFixture f;
  OneApiMultiServer server(f.sim, f.pcrf, f.config);
  EXPECT_THROW(server.cell_server(99), std::out_of_range);
  FlarePlugin plugin(1);
  EXPECT_THROW(server.ConnectVideoClient(99, &plugin,
                                         MakeMpd({100}, 10.0)),
               std::out_of_range);
}

}  // namespace
}  // namespace flare
