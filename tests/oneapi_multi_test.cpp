// Tests for the multi-cell OneAPI server: independent per-cell bitrate
// calculation over a shared PCRF, as Section II-A describes.
#include <gtest/gtest.h>

#include "lte/gbr_scheduler.h"
#include "net/oneapi_multi.h"
#include "sim/simulator.h"

namespace flare {
namespace {

struct MultiFixture {
  Simulator sim;
  Pcrf pcrf;
  OneApiConfig config;
  std::unique_ptr<Cell> MakeCell(int itbs) {
    auto cell = std::make_unique<Cell>(
        sim, std::make_unique<TwoPhaseGbrScheduler>(), CellConfig{},
        Rng(1));
    cell->AddUe(std::make_unique<StaticItbsChannel>(itbs));
    return cell;
  }
};

TEST(OneApiMulti, ManagesIndependentCells) {
  MultiFixture f;
  f.config.bai = FromSeconds(1.0);
  f.config.params.delta = 1;
  OneApiMultiServer server(f.sim, f.pcrf, f.config);

  auto rich_cell = f.MakeCell(20);  // 440 bits/RB: plenty of capacity
  auto poor_cell = f.MakeCell(0);   // 16 bits/RB: 0.8 Mbit/s cell
  const CellId rich = server.AddCell(*rich_cell);
  const CellId poor = server.AddCell(*poor_cell);
  ASSERT_EQ(server.NumCells(), 2u);

  const Mpd mpd = MakeMpd(SimulationLadderKbps(), 10.0);
  const FlowId rich_flow = rich_cell->AddFlow(0, FlowType::kVideo);
  const FlowId poor_flow = poor_cell->AddFlow(0, FlowType::kVideo);
  FlarePlugin rich_plugin(rich_flow);
  FlarePlugin poor_plugin(poor_flow);
  server.ConnectVideoClient(rich, &rich_plugin, mpd);
  server.ConnectVideoClient(poor, &poor_plugin, mpd);

  server.Start();
  rich_cell->Start();
  poor_cell->Start();
  // Keep both flows lightly loaded so trace windows have data.
  f.sim.Every(FromSeconds(0.1), FromSeconds(0.1), [&] {
    rich_cell->Enqueue(rich_flow, 30'000);
    poor_cell->Enqueue(poor_flow, 2'000);
  });
  f.sim.RunUntil(FromSeconds(60.0));

  // Bitrates are computed independently per cell: the rich cell's client
  // climbs to the top rungs; the poor cell's is capacity-capped at rung 2
  // (1000 Kbps would cost 62.5k RB/s of the 50k available at 16 bits/RB).
  EXPECT_GE(server.cell_server(rich).controller().CurrentLevel(rich_flow),
            4);
  EXPECT_LE(server.cell_server(poor).controller().CurrentLevel(poor_flow),
            2);
  // Both cells enforced their GBRs.
  EXPECT_GT(rich_cell->flow(rich_flow).gbr_bps,
            poor_cell->flow(poor_flow).gbr_bps);
}

TEST(OneApiMulti, SharedPcrfKeepsCellsSeparate) {
  MultiFixture f;
  OneApiMultiServer server(f.sim, f.pcrf, f.config);
  auto cell_a = f.MakeCell(10);
  auto cell_b = f.MakeCell(10);
  const CellId a = server.AddCell(*cell_a);
  const CellId b = server.AddCell(*cell_b);

  const Mpd mpd = MakeMpd(SimulationLadderKbps(), 10.0);
  const FlowId flow_a = cell_a->AddFlow(0, FlowType::kVideo);
  const FlowId flow_b = cell_b->AddFlow(0, FlowType::kVideo);
  FlarePlugin plugin_a(flow_a);
  FlarePlugin plugin_b(flow_b);
  server.ConnectVideoClient(a, &plugin_a, mpd);
  server.ConnectVideoClient(b, &plugin_b, mpd);
  f.sim.RunUntil(FromSeconds(0.1));

  // Flow ids collide across cells (both cells number from 1); the PCRF
  // cell tags keep them distinct.
  EXPECT_EQ(flow_a, flow_b);
  EXPECT_EQ(f.pcrf.CountFlows(FlowType::kVideo, a), 1);
  EXPECT_EQ(f.pcrf.CountFlows(FlowType::kVideo, b), 1);
  EXPECT_EQ(f.pcrf.CountFlowsAllCells(FlowType::kVideo), 2);

  server.DisconnectVideoClient(a, flow_a);
  EXPECT_EQ(f.pcrf.CountFlows(FlowType::kVideo, a), 0);
  EXPECT_EQ(f.pcrf.CountFlows(FlowType::kVideo, b), 1);
}

TEST(OneApiMulti, CellAddedAfterStartIsServed) {
  MultiFixture f;
  f.config.bai = FromSeconds(1.0);
  OneApiMultiServer server(f.sim, f.pcrf, f.config);
  server.Start();

  auto cell = f.MakeCell(10);
  const CellId id = server.AddCell(*cell);
  const Mpd mpd = MakeMpd(SimulationLadderKbps(), 10.0);
  const FlowId flow = cell->AddFlow(0, FlowType::kVideo);
  FlarePlugin plugin(flow);
  server.ConnectVideoClient(id, &plugin, mpd);
  cell->Start();
  f.sim.RunUntil(FromSeconds(3.0));
  EXPECT_TRUE(plugin.assigned_level().has_value());
}

// Regression: a disconnect naming a stale cell (the flow re-connected
// through another cell mid-handover) must reach the cell that currently
// owns the flow — previously it was sent verbatim to the named cell,
// leaking the registration in both the new cell's controller and the
// PCRF.
TEST(OneApiMulti, DisconnectRoutesToOwningCellAfterMigration) {
  MultiFixture f;
  OneApiMultiServer server(f.sim, f.pcrf, f.config);
  auto cell_a = f.MakeCell(10);
  auto cell_b = f.MakeCell(10);
  const CellId a = server.AddCell(*cell_a);
  const CellId b = server.AddCell(*cell_b);

  const Mpd mpd = MakeMpd(SimulationLadderKbps(), 10.0);
  const FlowId flow = cell_a->AddFlow(0, FlowType::kVideo);
  FlarePlugin plugin(flow);

  // Connect through A, let the registration land, then migrate to B (the
  // handover re-registers the same plugin through the target cell).
  server.ConnectVideoClient(a, &plugin, mpd);
  f.sim.RunUntil(FromSeconds(0.1));
  server.DisconnectVideoClient(a, flow);
  server.ConnectVideoClient(b, &plugin, mpd);
  f.sim.RunUntil(FromSeconds(0.2));
  ASSERT_EQ(f.pcrf.CountFlows(FlowType::kVideo, b), 1);
  ASSERT_TRUE(server.OwnerCell(flow).has_value());
  EXPECT_EQ(*server.OwnerCell(flow), b);

  // Teardown still names the old cell A. The disconnect must be routed to
  // B, the owning cell.
  server.DisconnectVideoClient(a, flow);
  f.sim.RunUntil(FromSeconds(0.3));
  EXPECT_EQ(f.pcrf.CountFlows(FlowType::kVideo, a), 0);
  EXPECT_EQ(f.pcrf.CountFlows(FlowType::kVideo, b), 0);
  EXPECT_FALSE(server.cell_server(b).HasClient(flow));
  EXPECT_FALSE(server.OwnerCell(flow).has_value());
}

// Regression: the stale-cell disconnect must also cancel a registration
// that is still in flight (inside the uplink latency window) on the
// owning cell — the generation guard, reached through owner routing.
TEST(OneApiMulti, DisconnectCancelsInFlightMigration) {
  MultiFixture f;
  OneApiMultiServer server(f.sim, f.pcrf, f.config);
  auto cell_a = f.MakeCell(10);
  auto cell_b = f.MakeCell(10);
  const CellId a = server.AddCell(*cell_a);
  const CellId b = server.AddCell(*cell_b);

  const Mpd mpd = MakeMpd(SimulationLadderKbps(), 10.0);
  const FlowId flow = cell_a->AddFlow(0, FlowType::kVideo);
  FlarePlugin plugin(flow);

  server.ConnectVideoClient(a, &plugin, mpd);
  f.sim.RunUntil(FromSeconds(0.1));
  server.DisconnectVideoClient(a, flow);
  // Migration to B begins, but the session tears down before the uplink
  // latency elapses — the disconnect still names A, and B has no *landed*
  // client yet.
  server.ConnectVideoClient(b, &plugin, mpd);
  server.DisconnectVideoClient(a, flow);
  f.sim.RunUntil(FromSeconds(0.3));

  // The in-flight registration on B must not land afterwards.
  EXPECT_EQ(f.pcrf.CountFlows(FlowType::kVideo, a), 0);
  EXPECT_EQ(f.pcrf.CountFlows(FlowType::kVideo, b), 0);
  EXPECT_FALSE(server.cell_server(b).HasClient(flow));
}

// When flow ids collide across cells, a disconnect naming a cell that
// owns the id is served by that cell even if another cell registered the
// same id more recently (the owner map alone would mis-route it).
TEST(OneApiMulti, CollidingFlowIdsDisconnectTheNamedCell) {
  MultiFixture f;
  OneApiMultiServer server(f.sim, f.pcrf, f.config);
  auto cell_a = f.MakeCell(10);
  auto cell_b = f.MakeCell(10);
  const CellId a = server.AddCell(*cell_a);
  const CellId b = server.AddCell(*cell_b);

  const Mpd mpd = MakeMpd(SimulationLadderKbps(), 10.0);
  const FlowId flow_a = cell_a->AddFlow(0, FlowType::kVideo);
  const FlowId flow_b = cell_b->AddFlow(0, FlowType::kVideo);
  ASSERT_EQ(flow_a, flow_b);  // cells number bearers independently
  FlarePlugin plugin_a(flow_a);
  FlarePlugin plugin_b(flow_b);
  server.ConnectVideoClient(a, &plugin_a, mpd);
  server.ConnectVideoClient(b, &plugin_b, mpd);  // most recent owner: B
  f.sim.RunUntil(FromSeconds(0.1));

  server.DisconnectVideoClient(a, flow_a);
  f.sim.RunUntil(FromSeconds(0.2));
  EXPECT_EQ(f.pcrf.CountFlows(FlowType::kVideo, a), 0);
  EXPECT_EQ(f.pcrf.CountFlows(FlowType::kVideo, b), 1);
  EXPECT_TRUE(server.cell_server(b).HasClient(flow_b));
}

TEST(OneApiMulti, UnknownCellThrows) {
  MultiFixture f;
  OneApiMultiServer server(f.sim, f.pcrf, f.config);
  EXPECT_THROW(server.cell_server(99), std::out_of_range);
  FlarePlugin plugin(1);
  EXPECT_THROW(server.ConnectVideoClient(99, &plugin,
                                         MakeMpd({100}, 10.0)),
               std::out_of_range);
}

}  // namespace
}  // namespace flare
