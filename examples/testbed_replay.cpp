// Example: replay of the femtocell testbed's dynamic scenario (Figure 5).
//
// Reconstructs the paper's testbed: a 50-RB cell whose iTbs Override
// Module sweeps the MCS through a triangle (1 -> 12 -> 1 every 4 min,
// per-UE offsets), three FLARE video players, one iperf flow. Prints an
// ASCII timeline of client 0's selected bitrate and buffer against the
// cell's MCS so the coordination is visible at a glance.
//
//   ./build/examples/testbed_replay [duration_s=<s>]
#include <algorithm>
#include <cstdio>

#include "lte/channel.h"
#include "lte/tbs_table.h"
#include "scenario/scenario.h"
#include "util/config.h"

int main(int argc, char** argv) {
  using namespace flare;
  const Config args = Config::FromArgs(argc, argv);
  const double duration = args.GetDouble("duration_s", 480.0);

  ScenarioConfig config = TestbedPreset(Scheme::kFlare);
  config.channel = ChannelKind::kItbsTriangle;
  config.duration_s = duration;
  config.sample_series = true;
  config.seed = 7;

  std::printf(
      "testbed_replay: FLARE on the femtocell, dynamic MCS (%.0f s)\n\n",
      duration);
  const ScenarioResult result = RunScenario(config);

  // ASCII timeline, one row per 20 s: MCS-implied capacity vs client 0.
  const auto itbs_at = TriangleItbsSchedule(
      config.triangle_lo_itbs, config.triangle_hi_itbs,
      FromSeconds(config.triangle_period_s), 0);
  std::printf("%6s %10s %12s %10s %s\n", "t(s)", "iTbs(UE0)",
              "rate(Kbps)", "buffer(s)", "selected bitrate");
  for (std::size_t i = 0; i < result.series.size(); i += 20) {
    const SeriesSample& s = result.series[i];
    const int itbs = itbs_at(FromSeconds(s.t_s));
    const double rate = s.video_bitrate_bps.empty()
                            ? 0.0
                            : s.video_bitrate_bps[0] / 1000.0;
    const double buffer =
        s.video_buffer_s.empty() ? 0.0 : s.video_buffer_s[0];
    const int bars = std::clamp(static_cast<int>(rate / 100.0), 0, 30);
    std::printf("%6.0f %10d %12.0f %10.1f %.*s\n", s.t_s, itbs, rate,
                buffer, bars, "##############################");
  }

  std::printf("\nPer-client summary:\n");
  for (std::size_t i = 0; i < result.video.size(); ++i) {
    const ClientMetrics& m = result.video[i];
    std::printf(
        "  client %zu: avg %5.0f Kbps, %2d changes, %4.1f s rebuffering\n",
        i, m.avg_bitrate_bps / 1000.0, m.bitrate_changes,
        m.rebuffer_time_s);
  }
  std::printf(
      "\nThe selected bitrate follows the MCS triangle: drops are applied\n"
      "the BAI the capacity estimate falls, rises wait out the delta-gate\n"
      "— the Figure 5c shape.\n");
  return 0;
}
