// Example: plugging a custom ABR algorithm into the HAS stack.
//
// The library's AbrAlgorithm interface is the extension point for new
// rate-adaptation logic. This example implements a small buffer-based
// algorithm (BBA-style: pick the rung by buffer level between a reservoir
// and a cushion) directly against the public API — no scenario harness —
// wiring the cell, transport, HTTP and player layers by hand, and races
// it against GOOGLE on the same dynamic channel.
#include <algorithm>
#include <cstdio>
#include <memory>

#include "abr/google.h"
#include "has/metrics.h"
#include "has/video_session.h"
#include "lte/cell.h"
#include "lte/pf_scheduler.h"
#include "sim/simulator.h"
#include "transport/transport_host.h"

namespace {

using namespace flare;

/// Buffer-based ABR: map the buffer level linearly onto the ladder
/// between `reservoir_s` and `cushion_s` (cf. Huang et al.'s BBA).
class BufferBasedAbr final : public AbrAlgorithm {
 public:
  BufferBasedAbr(double reservoir_s, double cushion_s)
      : reservoir_s_(reservoir_s), cushion_s_(cushion_s) {}

  int NextRepresentation(const AbrContext& context) override {
    const int top = context.mpd->NumRepresentations() - 1;
    if (context.buffer_s <= reservoir_s_) return 0;
    if (context.buffer_s >= cushion_s_) return top;
    const double frac = (context.buffer_s - reservoir_s_) /
                        (cushion_s_ - reservoir_s_);
    return std::clamp(static_cast<int>(frac * top), 0, top);
  }
  std::string Name() const override { return "buffer-based"; }

 private:
  double reservoir_s_;
  double cushion_s_;
};

struct ClientOutcome {
  std::string name;
  ClientMetrics metrics;
};

ClientOutcome RunOne(std::unique_ptr<AbrAlgorithm> abr) {
  Simulator sim;
  Cell cell(sim, std::make_unique<PfScheduler>(), CellConfig{}, Rng(3));
  TransportHost transport(sim, cell);

  // One UE on a slowly swinging channel (iTbs 3..10 over 2 minutes).
  const UeId ue = cell.AddUe(std::make_unique<ItbsOverrideChannel>(
      TriangleItbsSchedule(3, 10, FromSeconds(120.0), 0)));
  TcpFlow& tcp = transport.CreateFlow(ue, FlowType::kVideo);
  HttpClient http(sim, tcp);

  VideoSessionConfig session_config;
  session_config.player.max_buffer_s = 25.0;
  const std::string name = abr->Name();
  VideoSession session(sim, http, MakeMpd(TestbedLadderKbps(), 2.0),
                       std::move(abr), session_config);
  session.Start(0);
  cell.Start();
  sim.RunUntil(FromSeconds(300.0));
  session.player().AdvanceTo(sim.Now());

  return ClientOutcome{name, ComputeClientMetrics(session)};
}

}  // namespace

int main() {
  std::printf("custom_abr: buffer-based ABR vs GOOGLE on a swinging "
              "channel (300 s)\n\n");
  const ClientOutcome outcomes[] = {
      RunOne(std::make_unique<BufferBasedAbr>(5.0, 22.0)),
      RunOne(std::make_unique<GoogleAbr>()),
  };
  for (const ClientOutcome& o : outcomes) {
    std::printf(
        "%-14s avg %5.0f Kbps, %3d changes, %5.1f s rebuffering, "
        "%d segments\n",
        o.name.c_str(), o.metrics.avg_bitrate_bps / 1000.0,
        o.metrics.bitrate_changes, o.metrics.rebuffer_time_s,
        o.metrics.segments);
  }
  std::printf(
      "\nTo add your own algorithm, subclass flare::AbrAlgorithm and hand\n"
      "it to a VideoSession — everything else (MPD, buffer, transport,\n"
      "metrics) is provided by the library.\n");
  return 0;
}
