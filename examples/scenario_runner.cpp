// scenario_runner — config-driven experiment CLI.
//
// Assemble any scenario the library supports from key=value arguments,
// without writing code:
//
//   ./build/examples/scenario_runner scheme=flare channel=mobile
//       n_video=8 n_data=2 duration_s=600 seed=3 alpha=2 delta=6
//       bler=0.1 vbr_sigma=0.2 series_csv=run.csv
//   (one line; wrapped here for readability)
//
// Run with --help for the full key list. Unknown keys are rejected (exit
// 1) so a typo cannot silently run the default experiment.
#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/bai_trace.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/qoe_analytics.h"
#include "obs/span_trace.h"
#include "obs/telemetry_server.h"
#include "obs/watchdog.h"
#include "scenario/multi_cell.h"
#include "scenario/scenario.h"
#include "util/config.h"
#include "util/csv.h"

namespace {

using namespace flare;

// Every key=value knob the runner understands; Config::Keys() is checked
// against this so misspelled knobs fail loudly instead of being ignored.
const char* const kKnownKeys[] = {
    "admission",     "alpha",
    "arrival_process", "arrival_rate",
    "bai_s",         "bai_trace_csv",
    "bler",          "capacity_threshold",
    "cells",         "channel",
    "churn",         "client_caps",
    "client_theta_mbps", "data_fraction",
    "delta",         "duration_s",
    "fail_on_unhealthy", "flight_recorder",
    "hold_process",  "ladder",
    "lognormal_sigma", "max_arrivals",
    "mean_hold_s",   "metrics_json",
    "n_conventional", "n_data",
    "n_video",       "num_rbs",
    "objective_floor", "parallel",
    "postmortem_json", "qoe_csv",
    "runs",          "scheme",
    "seed",          "segment_s",
    "series_csv",    "solver",
    "static_itbs",   "telemetry_interval_ms",
    "telemetry_port", "testbed",
    "trace_json",
    "vbr_sigma",     "warm_solver",
};

// Knobs that only make sense when churn=1; passing any of them with churn
// disabled is rejected so a typo can't silently configure a dead subsystem.
const char* const kChurnOnlyKeys[] = {
    "admission",       "arrival_process", "arrival_rate",
    "capacity_threshold", "data_fraction", "hold_process",
    "lognormal_sigma", "max_arrivals",    "mean_hold_s",
    "objective_floor", "warm_solver",
};

void PrintUsage(std::FILE* out) {
  std::fprintf(out, R"(usage: scenario_runner [key=value ...]

Assemble any scenario the library supports from key=value arguments.
Example:
  scenario_runner scheme=flare channel=mobile n_video=8 n_data=2
      duration_s=600 seed=3 alpha=2 delta=6 bler=0.1 series_csv=run.csv

Experiment keys:
  scheme=NAME        flare | flare-relaxed | festive | google | avis |
                     flare-network-only | panda | mpc | bba  (flare)
  channel=NAME       static-itbs | triangle | placed | mobile (static-itbs)
  duration_s=SECS    run length (preset default)
  seed=N             RNG seed; runs>1 uses seed, seed+1, ... (1)
  runs=N             independent seeds, results averaged (1)
  n_video=N n_data=N n_conventional=N   client mix (preset default)
  testbed=0|1        testbed vs ns-3 scheduler wiring (per channel)
Cell / radio keys:
  num_rbs=N static_itbs=N bler=F        MAC knobs (preset default)
  cells=N            replicate across N eNodeBs, sharded runtime (1)
  parallel=N         worker threads for cells>1; 0 = serial, results
                     are bit-identical either way (0)
Video keys:
  segment_s=F ladder=K1,K2,... vbr_sigma=F
  client_theta_mbps=F,F,...   screen sizes disclosed to the server
  client_caps=N,N,...         per-client rung caps, -1 = none
Control-loop keys:
  alpha=F delta=N bai_s=F     FLARE optimizer / BAI knobs
  solver=NAME        auto | greedy | continuous | incremental | batched;
                     auto follows the scheme/churn wiring, batched is the
                     SoA sweep for very large cells (auto)
Churn keys (all except churn= require churn=1):
  churn=0|1          session arrivals/departures on top of the static
                     population (0)
  arrival_rate=F     session arrivals per second per cell (0.2)
  arrival_process=NAME  poisson | lognormal inter-arrivals (poisson)
  mean_hold_s=F      mean session holding time (30)
  hold_process=NAME  poisson | lognormal holding times (lognormal)
  lognormal_sigma=F  shape of the lognormal draws (1)
  data_fraction=F    fraction of arrivals that are data sessions (0)
  max_arrivals=N     hard cap on arrivals per cell; 0 = unbounded (0)
  warm_solver=0|1    warm-started incremental sweep for FLARE cells (1)
  admission=NAME     admit-all | capacity-threshold | utility-drop
                     (admit-all; FLARE schemes only)
  capacity_threshold=F highest admitted floor-rung RB fraction for
                     capacity-threshold (0.9)
  objective_floor=F  lowest acceptable solved objective for utility-drop
                     (default: reject only infeasible arrivals)
Output keys:
  series_csv=PATH    1 Hz per-client bitrate/buffer series (first run)
  metrics_json=PATH  counters/histograms (p50/p95/p99) + per-BAI trace +
                     per-player summaries + run_health + qoe (first run)
  bai_trace_csv=PATH per-flow per-BAI decision rows as CSV (first run)
  qoe_csv=PATH       per-session QoE rows (bitrate, switches, stalls,
                     startup delay, QoE score) as CSV (first run)
  trace_json=PATH    causal span trace, Chrome trace-event JSON; open in
                     https://ui.perfetto.dev (first run)
  flight_recorder=N  keep the last N structured events per cell in a
                     black-box ring buffer (0 = off; default capacity
                     512 when postmortem_json is set)
  postmortem_json=PATH dump the flight recorder here on the first
                     watchdog alarm, on a fail_on_unhealthy exit, or on
                     a fatal signal
  fail_on_unhealthy=0|1  exit 2 if run-health watchdogs fired (0)
Live telemetry keys:
  telemetry_port=N   serve GET /metrics (OpenMetrics), /healthz (JSON)
                     and /events (NDJSON tail) on 127.0.0.1:N while the
                     run executes; 0 picks an ephemeral port (printed).
                     Attaches metrics/QoE/health/flight observers
                     automatically; run bytes stay identical to a
                     telemetry-off run (off)
  telemetry_interval_ms=F  wall-clock publish period (1000)
)");
}

bool KnownKey(const std::string& key) {
  return std::find_if(std::begin(kKnownKeys), std::end(kKnownKeys),
                      [&key](const char* known) { return key == known; }) !=
         std::end(kKnownKeys);
}

/// Span-trace export, run-health verdict, and black-box dump, shared by
/// the single- and multi-cell paths. Returns the process exit code.
int FinishObservability(const std::optional<std::string>& trace_json,
                        const SpanTracer& spans, bool fail_on_unhealthy,
                        const RunHealthMonitor& health,
                        const FlightRecorder* flight,
                        const std::optional<std::string>& postmortem_json) {
  if (trace_json) {
    if (spans.ExportJson(*trace_json)) {
      std::printf("span trace written to %s (open in ui.perfetto.dev)\n",
                  trace_json->c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", trace_json->c_str());
      return 1;
    }
  }
  const bool unhealthy_abort = fail_on_unhealthy && !health.healthy();
  if (postmortem_json && flight != nullptr &&
      (flight->triggered() || unhealthy_abort)) {
    const std::string reason = flight->triggered()
                                   ? flight->trigger_reason()
                                   : "fail_on_unhealthy";
    if (flight->DumpPostmortem(*postmortem_json, reason)) {
      std::printf("flight-recorder postmortem (%s) written to %s\n",
                  reason.c_str(), postmortem_json->c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", postmortem_json->c_str());
      return 1;
    }
  }
  if (unhealthy_abort) {
    for (const HealthWarning& w : health.warnings()) {
      std::fprintf(stderr, "health: t=%.1f s cell %d %s: %s\n", w.t_s,
                   w.cell, w.kind.c_str(), w.detail.c_str());
    }
    std::fprintf(stderr, "run unhealthy: %zu warning(s)\n",
                 health.warnings().size());
    return 2;
  }
  return 0;
}

std::optional<Scheme> ParseScheme(const std::string& name) {
  if (name == "flare") return Scheme::kFlare;
  if (name == "flare-relaxed") return Scheme::kFlareRelaxed;
  if (name == "festive") return Scheme::kFestive;
  if (name == "google") return Scheme::kGoogle;
  if (name == "avis") return Scheme::kAvis;
  if (name == "flare-network-only") return Scheme::kFlareNetworkOnly;
  if (name == "panda") return Scheme::kPanda;
  if (name == "mpc") return Scheme::kMpc;
  if (name == "bba") return Scheme::kBba;
  return std::nullopt;
}

std::optional<ChannelKind> ParseChannel(const std::string& name) {
  if (name == "static-itbs") return ChannelKind::kStaticItbs;
  if (name == "triangle") return ChannelKind::kItbsTriangle;
  if (name == "placed") return ChannelKind::kPlacedStatic;
  if (name == "mobile") return ChannelKind::kMobile;
  return std::nullopt;
}

std::vector<double> ParseLadder(const std::string& text) {
  std::vector<double> ladder;
  std::istringstream in(text);
  std::string token;
  while (std::getline(in, token, ',')) {
    ladder.push_back(std::strtod(token.c_str(), nullptr));
  }
  return ladder;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token == "--help" || token == "-h" || token == "help") {
      PrintUsage(stdout);
      return 0;
    }
    if (token.find('=') == std::string::npos || token.front() == '=') {
      std::fprintf(stderr, "scenario_runner: not a key=value argument: "
                   "'%s'\n\n", token.c_str());
      PrintUsage(stderr);
      return 1;
    }
  }
  const Config args = Config::FromArgs(argc, argv);
  for (const std::string& key : args.Keys()) {
    if (!KnownKey(key)) {
      std::fprintf(stderr, "scenario_runner: unknown key '%s'\n\n",
                   key.c_str());
      PrintUsage(stderr);
      return 1;
    }
  }

  const std::string scheme_name =
      args.GetString("scheme").value_or("flare");
  const auto scheme = ParseScheme(scheme_name);
  if (!scheme) {
    std::fprintf(stderr, "unknown scheme '%s'\n", scheme_name.c_str());
    return 1;
  }
  const std::string channel_name =
      args.GetString("channel").value_or("static-itbs");
  const auto channel = ParseChannel(channel_name);
  if (!channel) {
    std::fprintf(stderr, "unknown channel '%s'\n", channel_name.c_str());
    return 1;
  }

  const bool sim_style = *channel == ChannelKind::kPlacedStatic ||
                         *channel == ChannelKind::kMobile;
  ScenarioConfig config = sim_style
                              ? SimStaticPreset(*scheme)
                              : TestbedPreset(*scheme);
  config.channel = *channel;
  config.testbed = args.GetBool("testbed", !sim_style);
  config.duration_s = args.GetDouble("duration_s", config.duration_s);
  config.seed = static_cast<std::uint64_t>(args.GetInt("seed", 1));
  config.n_video = args.GetInt("n_video", config.n_video);
  config.n_data = args.GetInt("n_data", config.n_data);
  config.n_conventional = args.GetInt("n_conventional", 0);
  config.num_rbs = args.GetInt("num_rbs", config.num_rbs);
  config.static_itbs = args.GetInt("static_itbs", config.static_itbs);
  config.segment_duration_s =
      args.GetDouble("segment_s", config.segment_duration_s);
  config.target_bler = args.GetDouble("bler", 0.0);
  config.vbr_sigma = args.GetDouble("vbr_sigma", 0.0);
  config.oneapi.params.alpha =
      args.GetDouble("alpha", config.oneapi.params.alpha);
  config.oneapi.params.delta =
      args.GetInt("delta", config.oneapi.params.delta);
  config.oneapi.bai = FromSeconds(
      args.GetDouble("bai_s", ToSeconds(config.oneapi.bai)));
  if (const auto solver = args.GetString("solver")) {
    if (*solver == "greedy") {
      config.solver_override = SolverMode::kGreedyDiscrete;
    } else if (*solver == "continuous") {
      config.solver_override = SolverMode::kContinuousRelaxation;
    } else if (*solver == "incremental") {
      config.solver_override = SolverMode::kIncrementalSweep;
    } else if (*solver == "batched") {
      config.solver_override = SolverMode::kBatchedSweep;
    } else if (*solver != "auto") {
      std::fprintf(stderr,
                   "scenario_runner: unknown solver '%s' (expected auto | "
                   "greedy | continuous | incremental | batched)\n",
                   solver->c_str());
      return 1;
    }
  }
  if (const auto ladder = args.GetString("ladder")) {
    config.ladder_kbps = ParseLadder(*ladder);
  }
  if (const auto thetas = args.GetString("client_theta_mbps")) {
    for (double mbps : ParseLadder(*thetas)) {
      config.client_theta_bps.push_back(mbps * 1e6);
    }
  }
  if (const auto caps = args.GetString("client_caps")) {
    for (double cap : ParseLadder(*caps)) {
      config.client_max_level.push_back(static_cast<int>(cap));
    }
  }
  config.churn.enabled = args.GetBool("churn", false);
  if (!config.churn.enabled) {
    const std::vector<std::string> keys = args.Keys();
    for (const char* churn_key : kChurnOnlyKeys) {
      if (std::find(keys.begin(), keys.end(), churn_key) != keys.end()) {
        std::fprintf(stderr,
                     "scenario_runner: '%s=' requires churn=1 (churn is "
                     "disabled, so the knob would be silently ignored)\n",
                     churn_key);
        return 1;
      }
    }
  }
  config.churn.arrival_rate_per_s =
      args.GetDouble("arrival_rate", config.churn.arrival_rate_per_s);
  config.churn.mean_hold_s =
      args.GetDouble("mean_hold_s", config.churn.mean_hold_s);
  if (const auto process_name = args.GetString("arrival_process")) {
    const auto process = ParseChurnProcess(*process_name);
    if (!process) {
      std::fprintf(stderr, "unknown arrival process '%s'\n",
                   process_name->c_str());
      return 1;
    }
    config.churn.arrival_process = *process;
  }
  if (const auto process_name = args.GetString("hold_process")) {
    const auto process = ParseChurnProcess(*process_name);
    if (!process) {
      std::fprintf(stderr, "unknown hold process '%s'\n",
                   process_name->c_str());
      return 1;
    }
    config.churn.hold_process = *process;
  }
  config.churn.lognormal_sigma =
      args.GetDouble("lognormal_sigma", config.churn.lognormal_sigma);
  config.churn.data_fraction =
      args.GetDouble("data_fraction", config.churn.data_fraction);
  config.churn.max_arrivals = static_cast<std::uint64_t>(
      args.GetInt("max_arrivals",
                  static_cast<int>(config.churn.max_arrivals)));
  config.churn.warm_solver =
      args.GetBool("warm_solver", config.churn.warm_solver);
  if (const auto admission_name = args.GetString("admission")) {
    const auto policy = ParseAdmissionPolicy(*admission_name);
    if (!policy) {
      std::fprintf(stderr, "unknown admission policy '%s'\n",
                   admission_name->c_str());
      return 1;
    }
    config.churn.admission.policy = *policy;
  }
  config.churn.admission.capacity_threshold = args.GetDouble(
      "capacity_threshold", config.churn.admission.capacity_threshold);
  config.churn.admission.objective_floor = args.GetDouble(
      "objective_floor", config.churn.admission.objective_floor);
  const auto series_csv = args.GetString("series_csv");
  config.sample_series = series_csv.has_value();
  const int runs = args.GetInt("runs", 1);
  const int cells = args.GetInt("cells", 1);
  const int workers = args.GetInt("parallel", 0);
  // Results are bit-identical either way, but oversubscribed workers can
  // only add scheduling overhead — say so instead of letting a user read
  // the wall clock as a parallelism measurement.
  const unsigned hw_threads =
      std::max(1u, std::thread::hardware_concurrency());
  if (workers > static_cast<int>(hw_threads)) {
    std::fprintf(stderr,
                 "warning: parallel=%d exceeds the %u hardware thread(s) "
                 "on this machine; expect overhead, not speedup\n",
                 workers, hw_threads);
  }

  // Observability: attach a registry/trace sink only when an export path
  // was requested, so the default run keeps the zero-cost disabled path.
  const auto metrics_json = args.GetString("metrics_json");
  const auto bai_trace_csv = args.GetString("bai_trace_csv");
  const auto trace_json = args.GetString("trace_json");
  const auto qoe_csv = args.GetString("qoe_csv");
  const auto postmortem_json = args.GetString("postmortem_json");
  const int flight_capacity = args.GetInt("flight_recorder", 0);
  const bool fail_on_unhealthy = args.GetBool("fail_on_unhealthy", false);
  MetricsRegistry registry;
  BaiTraceSink trace;
  SpanTracer spans;
  RunHealthMonitor health;
  QoeAnalytics qoe;
  FlightRecorder flight(flight_capacity > 0
                            ? static_cast<std::size_t>(flight_capacity)
                            : FlightRecorder::kDefaultCapacity);
  // Live telemetry plane: telemetry_port= starts the background scrape
  // server and implies the observers it serves from (registry, QoE,
  // health, flight), even without end-of-run export paths.
  const auto telemetry_port = args.GetString("telemetry_port");
  TelemetryServer::Options telemetry_opts;
  telemetry_opts.port =
      static_cast<std::uint16_t>(args.GetInt("telemetry_port", 0));
  TelemetryServer telemetry_server(telemetry_opts);
  const bool telemetry = telemetry_port.has_value();
  if (telemetry) {
    if (!telemetry_server.Start()) {
      std::fprintf(stderr, "scenario_runner: cannot bind telemetry port "
                   "%s\n", telemetry_port->c_str());
      return 1;
    }
    config.telemetry = &telemetry_server;
    config.telemetry_interval_ms =
        args.GetDouble("telemetry_interval_ms", 1000.0);
    std::printf("telemetry: http://127.0.0.1:%u  "
                "(/metrics /healthz /events)\n",
                static_cast<unsigned>(telemetry_server.port()));
  }
  if (metrics_json || bai_trace_csv) {
    config.metrics = &registry;
    config.bai_trace = &trace;
  }
  if (telemetry && !config.metrics) config.metrics = &registry;
  if (trace_json) config.span_trace = &spans;
  if (trace_json || metrics_json || fail_on_unhealthy || postmortem_json ||
      telemetry) {
    config.health = &health;
  }
  if (metrics_json || qoe_csv || telemetry) config.qoe = &qoe;
  if (flight_capacity > 0 || postmortem_json || telemetry) {
    config.flight = &flight;
  }
  if (postmortem_json) {
    // Fatal signals (SIGSEGV/SIGABRT/SIGFPE) dump the black box before
    // re-raising, so even a crash leaves the last events on disk.
    InstallFatalSignalPostmortem(&flight, *postmortem_json);
  }

  std::printf("scenario_runner: %s on %s, %d video / %d data / %d "
              "conventional, %.0f s x %d run(s)\n\n",
              SchemeName(*scheme), channel_name.c_str(), config.n_video,
              config.n_data, config.n_conventional, config.duration_s,
              runs);

  if (cells > 1) {
    // Sharded multi-cell run: one event domain per cell, shared PCRF
    // synced at BAI barriers. Same counts/seed in every cell.
    MultiCellConfig multi;
    multi.cell = config;
    multi.cell.sample_series = false;  // per-cell series not exported here
    multi.n_cells = cells;
    multi.workers = workers;
    multi.metrics = config.metrics;
    multi.bai_trace = config.bai_trace;
    multi.span_trace = config.span_trace;
    multi.health = config.health;
    multi.qoe = config.qoe;
    multi.flight = config.flight;
    multi.telemetry = config.telemetry;
    multi.telemetry_interval_ms = config.telemetry_interval_ms;
    multi.cell.telemetry = nullptr;  // published from the barrier hook
    const MultiCellResult result = RunMultiCellScenario(multi);

    for (int c = 0; c < cells; ++c) {
      const ScenarioResult& r = result.cells[static_cast<std::size_t>(c)];
      std::printf("cell %d: video %7.0f Kbps, changes %5.1f, rebuffer "
                  "%6.1f s, Jain %5.3f\n",
                  c, r.avg_video_bitrate_bps / 1000.0,
                  r.avg_bitrate_changes, r.avg_rebuffer_s,
                  r.jain_avg_bitrate);
    }
    std::printf("\nshared PCRF: %d video / %d data flows; %llu epochs, "
                "%llu mailbox messages, %.1f ms wall (%d workers)\n",
                result.global_video_flows, result.global_data_flows,
                static_cast<unsigned long long>(result.barrier_epochs),
                static_cast<unsigned long long>(result.mailbox_messages),
                result.wall_ms, workers);

    if (metrics_json) {
      if (trace.ExportJson(*metrics_json, &registry, config.health,
                           config.qoe)) {
        std::printf("metrics written to %s\n", metrics_json->c_str());
      } else {
        std::fprintf(stderr, "cannot write %s\n", metrics_json->c_str());
        return 1;
      }
    }
    if (bai_trace_csv) {
      if (trace.ExportCsv(*bai_trace_csv)) {
        std::printf("BAI trace written to %s\n", bai_trace_csv->c_str());
      } else {
        std::fprintf(stderr, "cannot write %s\n", bai_trace_csv->c_str());
        return 1;
      }
    }
    if (qoe_csv) {
      if (qoe.ExportCsv(*qoe_csv)) {
        std::printf("QoE sessions written to %s\n", qoe_csv->c_str());
      } else {
        std::fprintf(stderr, "cannot write %s\n", qoe_csv->c_str());
        return 1;
      }
    }
    return FinishObservability(trace_json, spans, fail_on_unhealthy,
                               health, config.flight, postmortem_json);
  }

  double rate = 0.0;
  double changes = 0.0;
  double rebuffer = 0.0;
  double jain = 0.0;
  double data = 0.0;
  // Trace only the first run: repeated seeds would interleave rows.
  std::vector<ScenarioResult> results;
  results.push_back(RunScenario(config));
  if (runs > 1) {
    ScenarioConfig rest = config;
    rest.metrics = nullptr;
    rest.bai_trace = nullptr;
    rest.span_trace = nullptr;
    rest.health = nullptr;
    rest.telemetry = nullptr;  // live view covers the first run only
    rest.seed = config.seed + 1;
    for (const ScenarioResult& r : RunMany(rest, runs - 1)) {
      results.push_back(r);
    }
  }
  for (const ScenarioResult& r : results) {
    rate += r.avg_video_bitrate_bps / 1000.0;
    changes += r.avg_bitrate_changes;
    rebuffer += r.avg_rebuffer_s;
    jain += r.jain_avg_bitrate;
    data += r.avg_data_throughput_bps / 1000.0;
  }
  const double n = static_cast<double>(results.size());
  std::printf("avg video bitrate : %8.0f Kbps\n", rate / n);
  std::printf("avg bitrate changes:%8.1f\n", changes / n);
  std::printf("avg rebuffering   : %8.1f s\n", rebuffer / n);
  std::printf("Jain fairness     : %8.3f\n", jain / n);
  if (config.n_data > 0) {
    std::printf("avg data throughput:%8.0f Kbps\n", data / n);
  }
  if (config.churn.enabled) {
    // Churn stats of the first run (counts do not average meaningfully).
    const ScenarioResult& r = results.front();
    std::printf("sessions          : %llu arrived, %llu departed, "
                "%llu blocked (P(block) %.3f)\n",
                static_cast<unsigned long long>(r.sessions_arrived),
                static_cast<unsigned long long>(r.sessions_departed),
                static_cast<unsigned long long>(r.sessions_blocked),
                r.blocking_probability);
    std::printf("admitted QoE      : %8.2f over %zu session(s)\n",
                r.avg_admitted_qoe, r.churned.size());
  }

  if (series_csv) {
    CsvWriter csv(*series_csv, {"t_s", "client", "bitrate_kbps",
                                "buffer_s"});
    for (const SeriesSample& s : results.front().series) {
      for (std::size_t c = 0; c < s.video_bitrate_bps.size(); ++c) {
        csv.Row({s.t_s, static_cast<double>(c),
                 s.video_bitrate_bps[c] / 1000.0, s.video_buffer_s[c]});
      }
    }
    std::printf("\nseries written to %s\n", series_csv->c_str());
  }
  if (metrics_json) {
    if (trace.ExportJson(*metrics_json, &registry, config.health,
                         config.qoe)) {
      std::printf("metrics written to %s\n", metrics_json->c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", metrics_json->c_str());
      return 1;
    }
  }
  if (bai_trace_csv) {
    if (trace.ExportCsv(*bai_trace_csv)) {
      std::printf("BAI trace written to %s\n", bai_trace_csv->c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", bai_trace_csv->c_str());
      return 1;
    }
  }
  if (qoe_csv) {
    if (qoe.ExportCsv(*qoe_csv)) {
      std::printf("QoE sessions written to %s\n", qoe_csv->c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", qoe_csv->c_str());
      return 1;
    }
  }
  return FinishObservability(trace_json, spans, fail_on_unhealthy, health,
                             config.flight, postmortem_json);
}
