// Quickstart: a complete FLARE deployment in one file.
//
// Three FLARE video clients and one greedy data flow share a 50-RB LTE
// cell at a fixed MCS. The OneAPI server coordinates: it solves the
// utility optimization each BAI, sets the GBR of each video bearer at the
// eNodeB, and pushes the chosen rung to each UE plugin. After two minutes
// of simulated streaming we print what every client got.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "scenario/scenario.h"

int main() {
  using namespace flare;

  ScenarioConfig config;
  config.scheme = Scheme::kFlare;
  config.duration_s = 120.0;
  config.n_video = 3;
  config.n_data = 1;
  config.channel = ChannelKind::kStaticItbs;
  config.static_itbs = 7;  // ~5.2 Mbit/s cell at 50 RBs
  config.testbed = true;
  config.seed = 42;

  std::printf("quickstart: 3 FLARE video clients + 1 data flow, %.0f s\n\n",
              config.duration_s);
  const ScenarioResult result = RunScenario(config);

  for (std::size_t i = 0; i < result.video.size(); ++i) {
    const ClientMetrics& m = result.video[i];
    std::printf(
        "video client %zu: avg bitrate %7.0f Kbps, %2d bitrate changes, "
        "%.1f s rebuffering, %d segments\n",
        i, m.avg_bitrate_bps / 1000.0, m.bitrate_changes,
        m.rebuffer_time_s, m.segments);
  }
  for (std::size_t i = 0; i < result.data_throughput_bps.size(); ++i) {
    std::printf("data  client %zu: avg throughput %7.0f Kbps\n", i,
                result.data_throughput_bps[i] / 1000.0);
  }
  std::printf("\nJain fairness (video avg bitrates): %.3f\n",
              result.jain_avg_bitrate);
  if (!result.solve_times_ms.empty()) {
    double max_ms = 0.0;
    for (double t : result.solve_times_ms) max_ms = std::max(max_ms, t);
    std::printf("OneAPI solver: %zu BAIs, max %.3f ms per solve\n",
                result.solve_times_ms.size(), max_ms);
  }
  return 0;
}
