// churn_demo — blocking probability vs offered load under admission
// control.
//
// Video sessions arrive Poisson at rate lambda on top of a small static
// population and hold for a lognormal ~30 s. At each arrival the OneAPI
// server consults the admission controller, which estimates the cell's
// post-admission RB budget from the previous BAI's bits-per-RB; arrivals
// that would oversubscribe the budget are rejected before any GBR bearer
// is set up. Sweeping lambda maps out the Erlang-style blocking curve:
// offered load (lambda x mean hold, in Erlangs) against P(block) and the
// QoE of the sessions that were admitted.
//
//   ./build/examples/churn_demo
#include <cstdio>

#include "scenario/scenario.h"

using namespace flare;

int main() {
  std::printf("churn_demo: blocking probability vs offered load\n");
  std::printf("(capacity-threshold admission, testbed cell, 2 static "
              "video + 1 data)\n\n");
  std::printf("%10s %9s %9s %8s %8s %9s %10s\n", "rate(/s)", "load(Erl)",
              "arrivals", "admitted", "blocked", "P(block)", "QoE");

  for (const double rate : {0.05, 0.1, 0.2, 0.4, 0.8}) {
    ScenarioConfig config = TestbedPreset(Scheme::kFlare);
    config.duration_s = 180.0;
    config.n_video = 2;
    config.n_data = 1;
    config.churn.enabled = true;
    config.churn.arrival_rate_per_s = rate;
    config.churn.mean_hold_s = 30.0;
    config.churn.admission.policy = AdmissionPolicy::kCapacityThreshold;
    config.churn.admission.capacity_threshold = 0.9;

    const ScenarioResult result = RunScenario(config);
    const std::uint64_t admitted =
        result.sessions_arrived - result.sessions_blocked;
    std::printf("%10.2f %9.1f %9llu %8llu %8llu %9.3f %10.2f\n", rate,
                rate * config.churn.mean_hold_s,
                static_cast<unsigned long long>(result.sessions_arrived),
                static_cast<unsigned long long>(admitted),
                static_cast<unsigned long long>(result.sessions_blocked),
                result.blocking_probability, result.avg_admitted_qoe);
  }

  std::printf("\nHigher offered load saturates the cell: the controller "
              "holds P(block) up\nso that admitted sessions keep their "
              "QoE instead of everyone degrading.\n");
  return 0;
}
