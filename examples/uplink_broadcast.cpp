// Example: FLARE-managed uplink live broadcast (Section V extension).
//
// A phone streams live video *up* through the cell while two other UEs
// run bulk uploads. The same OneAPI machinery that steers downlink HAS
// assigns the broadcaster's encoding rate and pins a GBR on its uplink
// bearer, so the stream's upload lag stays bounded no matter what the
// bulk flows do. For contrast, the run is repeated without FLARE (the
// encoder picks rates greedily from measured upload throughput).
#include <cstdio>
#include <memory>

#include "abr/google.h"
#include "has/uplink_session.h"
#include "lte/cell.h"
#include "lte/gbr_scheduler.h"
#include "net/oneapi_server.h"
#include "sim/simulator.h"
#include "transport/transport_host.h"

namespace {

using namespace flare;

struct Outcome {
  double avg_kbps = 0.0;
  double max_lag_s = 0.0;
  int backlog = 0;
};

Outcome RunBroadcast(bool with_flare) {
  Simulator sim;
  Cell cell(sim, std::make_unique<TwoPhaseGbrScheduler>(), CellConfig{},
            Rng(1));
  TransportHost host(sim, cell);
  Pcrf pcrf;
  Pcef pcef(sim, cell, 10 * kMillisecond);
  OneApiConfig oneapi_config;
  oneapi_config.bai = FromSeconds(1.0);
  oneapi_config.params.delta = 2;
  OneApiServer server(sim, cell, pcrf, pcef, oneapi_config);

  // Broadcaster UE + two bulk uploaders sharing the uplink.
  const UeId broadcaster = cell.AddUe(std::make_unique<StaticItbsChannel>(7));
  TcpFlow& video = host.CreateFlow(broadcaster, FlowType::kVideo);
  for (int i = 0; i < 2; ++i) {
    const UeId ue = cell.AddUe(std::make_unique<StaticItbsChannel>(7));
    TcpFlow& bulk = host.CreateFlow(ue, FlowType::kData);
    pcrf.RegisterFlow(bulk.id(), FlowType::kData);
    host.MakeGreedy(bulk.id());
  }

  const Mpd mpd = MakeMpd(SimulationLadderKbps(), 2.0);
  std::unique_ptr<AbrAlgorithm> abr;
  FlarePlugin* plugin_ptr = nullptr;
  if (with_flare) {
    auto plugin = std::make_unique<FlarePlugin>(video.id());
    plugin_ptr = plugin.get();
    abr = std::move(plugin);
  } else {
    abr = std::make_unique<GoogleAbr>();  // greedy estimator-driven
  }
  UplinkBroadcastSession session(sim, video, mpd, std::move(abr),
                                 UplinkSessionConfig{});
  if (plugin_ptr != nullptr) {
    server.ConnectVideoClient(plugin_ptr, mpd);
    server.Start();
  }
  session.Start(0);
  cell.Start();
  sim.RunUntil(FromSeconds(180.0));

  return Outcome{session.avg_bitrate_bps() / 1000.0,
                 session.max_upload_lag_s(), session.backlog()};
}

}  // namespace

int main() {
  std::printf(
      "uplink_broadcast: live uplink stream vs two bulk uploads "
      "(180 s)\n\n%-24s %12s %14s %10s\n",
      "mode", "rate (Kbps)", "max lag (s)", "backlog");
  const Outcome flare = RunBroadcast(/*with_flare=*/true);
  const Outcome greedy = RunBroadcast(/*with_flare=*/false);
  std::printf("%-24s %12.0f %14.1f %10d\n", "FLARE-coordinated",
              flare.avg_kbps, flare.max_lag_s, flare.backlog);
  std::printf("%-24s %12.0f %14.1f %10d\n", "greedy (uncoordinated)",
              greedy.avg_kbps, greedy.max_lag_s, greedy.backlog);
  std::printf(
      "\nThe GBR on the broadcaster's bearer keeps the upload lag bounded\n"
      "against the bulk flows — Section V's uplink extension with zero\n"
      "changes to the FLARE core.\n");
  return 0;
}
