// Example: one OneAPI server, two cells, one car.
//
// A vehicle streams FLARE-managed video while driving 3 km across two
// eNodeBs 1600 m apart, both managed by the same OneAPI multi-cell
// server. The handover manager watches per-cell SINR (A3 rule); on
// handover, the bearer is torn down in the source cell, recreated in the
// target, the session is rebound, and the target cell's controller takes
// over rate adaptation. A 10 s timeline shows the serving cell, the
// SINRs, and the selected bitrate.
#include <algorithm>
#include <cstdio>
#include <memory>

#include "has/video_session.h"
#include "lte/gbr_scheduler.h"
#include "net/handover.h"
#include "net/oneapi_multi.h"
#include "sim/simulator.h"
#include "transport/transport_host.h"

namespace {

using namespace flare;

class LinearDrive final : public MobilityModel {
 public:
  LinearDrive(Position from, Position to, SimTime duration)
      : from_(from), to_(to), duration_(duration) {}
  Position At(SimTime now) override {
    const double frac =
        std::clamp(static_cast<double>(now) /
                       static_cast<double>(std::max<SimTime>(duration_, 1)),
                   0.0, 1.0);
    return Position{from_.x + (to_.x - from_.x) * frac,
                    from_.y + (to_.y - from_.y) * frac};
  }

 private:
  Position from_;
  Position to_;
  SimTime duration_;
};

}  // namespace

int main() {
  Simulator sim;
  Pcrf pcrf;
  OneApiConfig oneapi_config;
  oneapi_config.bai = FromSeconds(1.0);
  oneapi_config.params.delta = 2;
  OneApiMultiServer server(sim, pcrf, oneapi_config);

  RadioConfig radio;
  radio.shadowing_stddev_db = 0.0;  // scripted geometry, quiet radio
  radio.fading_stddev_db = 1.0;
  const SimTime trip = FromSeconds(150.0);
  auto drive = std::make_shared<LinearDrive>(Position{-700.0, 0.0},
                                             Position{2300.0, 0.0}, trip);

  Cell cell_a(sim, std::make_unique<TwoPhaseGbrScheduler>(), CellConfig{},
              Rng(1));
  Cell cell_b(sim, std::make_unique<TwoPhaseGbrScheduler>(), CellConfig{},
              Rng(2));
  const CellId id_a = server.AddCell(cell_a);
  const CellId id_b = server.AddCell(cell_b);
  const UeId ue_a = cell_a.AddUe(std::make_unique<FadedMobilityChannel>(
      drive, radio, Rng(3), Position{0.0, 0.0}));
  const UeId ue_b = cell_b.AddUe(std::make_unique<FadedMobilityChannel>(
      drive, radio, Rng(4), Position{1600.0, 0.0}));
  FadedMobilityChannel probe_a(drive, radio, Rng(5), Position{0.0, 0.0});
  FadedMobilityChannel probe_b(drive, radio, Rng(6), Position{1600.0, 0.0});

  TransportHost host_a(sim, cell_a);
  TransportHost host_b(sim, cell_b);

  const Mpd mpd = MakeMpd(SimulationLadderKbps(), 2.0);
  TcpFlow& flow_a = host_a.CreateFlow(ue_a, FlowType::kVideo);
  auto http = std::make_unique<HttpClient>(sim, flow_a);
  auto plugin = std::make_unique<FlarePlugin>(flow_a.id());
  FlarePlugin* plugin_ptr = plugin.get();
  VideoSession session(sim, *http, mpd, std::move(plugin),
                       VideoSessionConfig{});
  server.ConnectVideoClient(id_a, plugin_ptr, mpd);
  session.Start(0);

  HandoverManager manager(sim, HandoverConfig{});
  manager.AddUe({&probe_a, &probe_b}, 0);
  std::unique_ptr<HttpClient> next_http;
  std::unique_ptr<FlarePlugin> next_plugin;
  manager.SetOnHandover([&](int, int, int) {
    std::printf("  >> handover at t=%.1f s: cell A -> cell B\n",
                ToSeconds(sim.Now()));
    server.DisconnectVideoClient(id_a, flow_a.id());
    host_a.DestroyFlow(flow_a.id());
    TcpFlow& flow_b = host_b.CreateFlow(ue_b, FlowType::kVideo);
    next_http = std::make_unique<HttpClient>(sim, flow_b);
    next_plugin = std::make_unique<FlarePlugin>(flow_b.id());
    server.ConnectVideoClient(id_b, next_plugin.get(), mpd);
    session.RebindHttp(*next_http);
  });

  std::printf("multicell_handover: 3 km drive across two FLARE cells\n\n");
  std::printf("%6s %6s %10s %10s %12s %10s\n", "t(s)", "cell",
              "SINR A(dB)", "SINR B(dB)", "rate(Kbps)", "buffer(s)");
  sim.Every(FromSeconds(10.0), FromSeconds(10.0), [&] {
    const auto& bitrates = session.player().segment_bitrates();
    session.player().AdvanceTo(sim.Now());
    std::printf("%6.0f %6s %10.1f %10.1f %12.0f %10.1f\n",
                ToSeconds(sim.Now()),
                manager.ServingCell(0) == 0 ? "A" : "B",
                probe_a.SinrDbAt(sim.Now()), probe_b.SinrDbAt(sim.Now()),
                bitrates.empty() ? 0.0 : bitrates.back() / 1000.0,
                session.player().buffer_s());
  });

  manager.Start();
  server.Start();
  cell_a.Start();
  cell_b.Start();
  sim.RunUntil(trip);

  session.player().AdvanceTo(sim.Now());
  std::printf(
      "\nsegments %d, rebuffering %.1f s, handovers %d — the session\n"
      "survives the cell change; the target cell's OneAPI controller\n"
      "resumes rate adaptation within one BAI.\n",
      session.segments_completed(), session.player().rebuffer_time_s(),
      manager.handovers_executed());
  return 0;
}
