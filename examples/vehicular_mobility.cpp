// Example: vehicular clients — the scenario where coordination pays most.
//
// Eight UEs drive through a 2 km cell at 10-30 m/s (random waypoint).
// The same workload is run under FLARE, AVIS and FESTIVE, and the
// per-client outcomes are printed side by side: with fast-changing
// channels, client-side estimators lag and network-only control
// mismatches the player, while FLARE re-assigns every BAI and enforces
// the result on both sides.
//
//   ./build/examples/vehicular_mobility [duration_s=<s>] [seed=<n>]
#include <cstdio>

#include "scenario/scenario.h"
#include "util/config.h"

int main(int argc, char** argv) {
  using namespace flare;
  const Config args = Config::FromArgs(argc, argv);
  const double duration = args.GetDouble("duration_s", 600.0);
  const auto seed = static_cast<std::uint64_t>(args.GetInt("seed", 9));

  std::printf(
      "vehicular_mobility: 8 UEs at 10..30 m/s in a 2 km cell, %.0f s\n\n",
      duration);

  for (Scheme scheme : {Scheme::kFlare, Scheme::kAvis, Scheme::kFestive}) {
    ScenarioConfig config = SimMobilePreset(scheme);
    config.duration_s = duration;
    config.seed = seed;
    const ScenarioResult result = RunScenario(config);

    std::printf("--- %s ---\n", SchemeName(scheme));
    for (std::size_t i = 0; i < result.video.size(); ++i) {
      const ClientMetrics& m = result.video[i];
      std::printf(
          "  client %zu: avg %5.0f Kbps, %3d changes, %5.1f s "
          "rebuffering\n",
          i, m.avg_bitrate_bps / 1000.0, m.bitrate_changes,
          m.rebuffer_time_s);
    }
    std::printf("  => mean %5.0f Kbps, %.1f changes, Jain %.3f\n\n",
                result.avg_video_bitrate_bps / 1000.0,
                result.avg_bitrate_changes, result.jain_avg_bitrate);
  }
  return 0;
}
