// Example: video and data flows coexisting under FLARE, and the alpha
// knob that balances them.
//
// The scenario from the paper's Figure 10/11 motivation: a cell shared by
// HAS video clients and bulk TCP downloads. Unlike AVIS's static slicing,
// FLARE folds both flow classes into one utility optimization; the alpha
// parameter shifts the balance. This example runs the same mixed workload
// at three alpha values and prints the per-class outcome.
//
//   ./build/examples/mixed_traffic [alpha=<value>]
#include <cstdio>

#include "scenario/scenario.h"
#include "util/config.h"

int main(int argc, char** argv) {
  using namespace flare;
  const Config args = Config::FromArgs(argc, argv);
  const double only_alpha = args.GetDouble("alpha", 0.0);

  std::printf(
      "mixed_traffic: 4 FLARE video clients + 4 bulk TCP flows, 5 MHz "
      "cell\n\n%8s %22s %22s %14s\n",
      "alpha", "video avg (Kbps)", "data avg (Kbps)", "video changes");

  for (double alpha : {0.25, 1.0, 4.0}) {
    if (only_alpha > 0.0 && alpha != only_alpha) continue;
    ScenarioConfig config = SimStaticPreset(Scheme::kFlare);
    config.duration_s = 400.0;
    config.n_video = 4;
    config.n_data = 4;
    config.ladder_kbps = DenseLadderKbps();
    config.oneapi.params.alpha = alpha;
    config.oneapi.params.delta = 2;
    config.seed = 5;

    const ScenarioResult result = RunScenario(config);
    std::printf("%8.2f %22.0f %22.0f %14.1f\n", alpha,
                result.avg_video_bitrate_bps / 1000.0,
                result.avg_data_throughput_bps / 1000.0,
                result.avg_bitrate_changes);
  }

  std::printf(
      "\nHigher alpha weighs the data flows' log-utility more, so video\n"
      "bitrates step down a rung and bulk transfers speed up — one knob,\n"
      "no static slicing.\n");
  return 0;
}
