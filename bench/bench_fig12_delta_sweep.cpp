// Figure 12: average client bitrate and number of bitrate changes as the
// stability parameter delta sweeps 1 .. 12.
//
// Paper headline: the average bitrate decreases as delta increases (rate
// increases become more conservative) while stability improves — FLARE
// adjusts smoothly to different bitrate-selection criteria.
#include <cstdio>

#include "scenario/experiment.h"
#include "scenario/scenario.h"
#include "util/csv.h"
#include "util/stats.h"

namespace flare {
namespace {

int Main(int argc, char** argv) {
  const BenchScale scale = ScaleFromEnv(5, 1200.0, argc, argv);
  std::printf(
      "=== Figure 12: delta sweep, 8 video clients "
      "(%d runs x %.0f s per point) ===\n\n",
      scale.runs, scale.duration_s);

  CsvWriter csv(BenchCsvPath("fig12_delta"),
                {"delta", "avg_bitrate_kbps", "avg_changes"});

  std::printf("%8s %18s %14s\n", "delta", "avg bitrate (Kbps)",
              "avg changes");
  std::vector<double> bitrates;
  std::vector<double> changes;
  for (int delta = 1; delta <= 12; ++delta) {
    ScenarioConfig config = SimStaticPreset(Scheme::kFlare);
    config.duration_s = scale.duration_s;
    config.oneapi.params.delta = delta;
    config.seed = 100;
    const PooledMetrics pooled = Pool(RunMany(config, scale.runs));
    std::printf("%8d %18.0f %14.2f\n", delta, pooled.MeanBitrateKbps(),
                pooled.MeanChanges());
    csv.Row({static_cast<double>(delta), pooled.MeanBitrateKbps(),
             pooled.MeanChanges()});
    bitrates.push_back(pooled.MeanBitrateKbps());
    changes.push_back(pooled.MeanChanges());
  }

  // Trend checks: compare the low-delta and high-delta halves.
  const auto half_mean = [](const std::vector<double>& xs, bool first) {
    const std::size_t half = xs.size() / 2;
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t i = first ? 0 : half; i < (first ? half : xs.size());
         ++i) {
      sum += xs[i];
      ++n;
    }
    return sum / static_cast<double>(n);
  };
  std::printf(
      "\n--- Shape checks (paper Figure 12) ---\n"
      "  avg bitrate decreases with delta: %s (%.0f -> %.0f Kbps)\n"
      "  avg changes decrease with delta:  %s (%.1f -> %.1f)\n"
      "\nSeries written to %s\n",
      half_mean(bitrates, true) >= half_mean(bitrates, false) ? "yes"
                                                              : "NO",
      half_mean(bitrates, true), half_mean(bitrates, false),
      half_mean(changes, true) >= half_mean(changes, false) ? "yes" : "NO",
      half_mean(changes, true), half_mean(changes, false),
      BenchCsvPath("fig12_delta").c_str());
  return 0;
}

}  // namespace
}  // namespace flare

int main(int argc, char** argv) { return flare::Main(argc, argv); }
