// Microbenchmarks (google-benchmark) for the bitrate optimizer — the
// per-solve costs behind Figure 9, measured in isolation: the continuous
// KKT/bisection solver, the greedy discrete solver, and Algorithm 1's
// full DecideBai path.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "core/batch_solver.h"
#include "core/optimizer.h"
#include "core/rate_controller.h"
#include "has/mpd.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/span_trace.h"
#include "obs/telemetry_publisher.h"
#include "scenario/experiment.h"
#include "svc/request_trace.h"
#include "util/rng.h"
#include "util/stats.h"

namespace flare {
namespace {

OptProblem MakeProblem(int n_flows, std::uint64_t seed) {
  Rng rng(seed);
  OptProblem problem;
  problem.n_data_flows = 2;
  // Constant per-flow RB budget: a saturated cell pins every flow at the
  // floor and the solve trivially short-circuits (cf. bench_fig9).
  problem.rb_rate = 3'125.0 * n_flows;
  for (int i = 0; i < n_flows; ++i) {
    OptFlow flow;
    for (double kbps : DenseLadderKbps()) {
      flow.ladder_bps.push_back(kbps * 1000.0);
    }
    flow.max_level = static_cast<int>(flow.ladder_bps.size()) - 1;
    flow.bits_per_rb = rng.Uniform(100.0, 600.0);
    problem.flows.push_back(std::move(flow));
  }
  return problem;
}

void BM_SolveContinuous(benchmark::State& state) {
  const OptProblem problem =
      MakeProblem(static_cast<int>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveContinuous(problem));
  }
}
BENCHMARK(BM_SolveContinuous)->Arg(8)->Arg(32)->Arg(64)->Arg(128);

void BM_SolveGreedy(benchmark::State& state) {
  const OptProblem problem =
      MakeProblem(static_cast<int>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveGreedy(problem));
  }
}
BENCHMARK(BM_SolveGreedy)->Arg(8)->Arg(32)->Arg(64)->Arg(128);

void BM_DecideBai(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  FlareParams params;
  params.solver = SolverMode::kContinuousRelaxation;
  FlareRateController controller(params);
  std::vector<double> ladder;
  for (double kbps : DenseLadderKbps()) ladder.push_back(kbps * 1000.0);
  Rng rng(3);
  std::vector<FlowObservation> observations;
  for (int i = 0; i < n; ++i) {
    controller.AddFlow(static_cast<FlowId>(i + 1), ladder);
    FlowObservation obs;
    obs.id = static_cast<FlowId>(i + 1);
    obs.bits_per_rb = rng.Uniform(100.0, 600.0);
    observations.push_back(obs);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        controller.DecideBai(observations, 2, 25'000.0));
  }
}
BENCHMARK(BM_DecideBai)->Arg(8)->Arg(32)->Arg(64)->Arg(128);

// --- Warm-started incremental sweep: the session-churn / admission path.
// Cold re-solves the whole problem from scratch; warm keeps one resident
// IncrementalSolver and re-solves after a one-flow delta (one departure +
// one arrival), re-using every untouched flow's cached envelope. The
// acceptance bar is >= 3x cold/warm at 500 flows.
void BM_SweepCold(benchmark::State& state) {
  const OptProblem problem =
      MakeProblem(static_cast<int>(state.range(0)), 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveSweep(problem));
  }
}
BENCHMARK(BM_SweepCold)->Arg(100)->Arg(500)->Arg(1000);

void BM_SweepWarmDelta(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const OptProblem problem = MakeProblem(n, 6);
  IncrementalSolver solver;
  std::vector<FlowId> order;
  for (int i = 0; i < n; ++i) {
    const FlowId id = static_cast<FlowId>(i + 1);
    solver.Upsert(id, problem.flows[static_cast<std::size_t>(i)]);
    order.push_back(id);
  }
  solver.Solve(order, problem.n_data_flows, problem.rb_rate);  // prime
  Rng rng(7);
  FlowId next_id = static_cast<FlowId>(n + 1);
  std::size_t victim = 0;
  for (auto _ : state) {
    // One departure + one fresh arrival per BAI, rotating the victim so
    // the delta always hits a genuinely new id.
    solver.Remove(order[victim]);
    OptFlow arrival = problem.flows[victim];
    arrival.bits_per_rb = rng.Uniform(100.0, 600.0);
    solver.Upsert(next_id, arrival);
    order[victim] = next_id++;
    victim = (victim + 1) % order.size();
    benchmark::DoNotOptimize(
        solver.Solve(order, problem.n_data_flows, problem.rb_rate));
  }
}
BENCHMARK(BM_SweepWarmDelta)->Arg(100)->Arg(500)->Arg(1000);

// --- Batched SoA sweep: the metro-scale path. Same bit-exact results as
// BM_SweepCold's SolveSweep (tests/solver_differential_test.cpp), but flat
// arrays instead of a per-flow std::map — the 1k/10k/100k ladder is the
// Figure-9-style scaling story for item 3 of the roadmap.
void BM_BatchSolve(benchmark::State& state) {
  const OptProblem problem =
      MakeProblem(static_cast<int>(state.range(0)), 6);
  BatchSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve(problem));
  }
}
BENCHMARK(BM_BatchSolve)->Arg(1000)->Arg(10000)->Arg(100000);

// Many small cells solved cache-hot on one thread: the control-plane
// shape where one worker owns hundreds of cells per BAI.
void BM_BatchSolveManyCells(benchmark::State& state) {
  const int n_cells = static_cast<int>(state.range(0));
  const int flows_per_cell = static_cast<int>(state.range(1));
  std::vector<OptProblem> cells;
  cells.reserve(static_cast<std::size_t>(n_cells));
  for (int c = 0; c < n_cells; ++c) {
    cells.push_back(MakeProblem(flows_per_cell,
                                static_cast<std::uint64_t>(c) + 11));
  }
  BatchSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.SolveMany(cells));
  }
}
BENCHMARK(BM_BatchSolveManyCells)->Args({64, 64})->Args({256, 64});

void BM_SolveExhaustiveSmall(benchmark::State& state) {
  // Exponential solver: tests/cross-validation scale only.
  OptProblem problem = MakeProblem(3, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveExhaustive(problem));
  }
}
BENCHMARK(BM_SolveExhaustiveSmall);

// --- Observability overhead: a disabled (default-constructed) handle must
// cost nothing beyond a null check on the instrumented hot paths; compare
// against the enabled path hitting a live registry.
void BM_ObsHandlesDisabled(benchmark::State& state) {
  CounterHandle counter;
  GaugeHandle gauge;
  HistogramHandle histogram;
  for (auto _ : state) {
    counter.Add();
    gauge.Set(42.0);
    histogram.Observe(3.5);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ObsHandlesDisabled);

void BM_ObsHandlesEnabled(benchmark::State& state) {
  MetricsRegistry registry;
  CounterHandle counter = MakeCounterHandle(&registry, "bench.counter");
  GaugeHandle gauge = MakeGaugeHandle(&registry, "bench.gauge");
  HistogramHandle histogram = MakeHistogramHandle(
      &registry, "bench.histogram", {1.0, 2.0, 5.0, 10.0});
  for (auto _ : state) {
    counter.Add();
    gauge.Set(42.0);
    histogram.Observe(3.5);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ObsHandlesEnabled);

// A representative instrumented hot path — one SpanScope, one instant, one
// counter bump and one histogram observation per iteration — with every
// observer disabled (Arg 0) vs live (Arg 1). The disabled run must be
// indistinguishable from uninstrumented code: each site is one null check.
void BM_ObsOverhead(benchmark::State& state) {
  const bool enabled = state.range(0) != 0;
  SpanTracer tracer;
  double fake_now_us = 0.0;
  tracer.SetClock([&fake_now_us] { return fake_now_us; });
  SpanTracer* spans = enabled ? &tracer : nullptr;
  MetricsRegistry registry;
  CounterHandle ticks =
      MakeCounterHandle(enabled ? &registry : nullptr, "bench.ticks");
  HistogramHandle latency = MakeHistogramHandle(
      enabled ? &registry : nullptr, "bench.latency_ms",
      {0.01, 0.1, 1.0, 10.0});
  for (auto _ : state) {
    fake_now_us += 1000.0;
    {
      SpanScope span(spans, kLaneControl, "bench", "work");
      benchmark::DoNotOptimize(fake_now_us);
    }
    if (spans != nullptr) {
      spans->Instant(kLaneControl, "bench", "tick", fake_now_us);
    }
    ticks.Add();
    latency.Observe(0.5);
    benchmark::ClobberMemory();
    // Bound the enabled run's memory; Clear() is outside the disabled path.
    if (enabled && tracer.size() > 65536) tracer.Clear();
  }
}
BENCHMARK(BM_ObsOverhead)->Arg(0)->Arg(1);

// Flight-recorder record site, disabled (Arg 0) vs live (Arg 1). The
// disabled path must be one predicted null check — the recorder rides in
// Player/OneApiServer hot paths, so "off" has to cost nothing (the
// acceptance bar is <= ~10 ns/event; a null check is well under 1 ns).
// The enabled path is bounded by construction: the ring overwrites.
void BM_FlightRecorderOverhead(benchmark::State& state) {
  const bool enabled = state.range(0) != 0;
  FlightRecorder recorder(512);
  FlightRecorder* flight = enabled ? &recorder : nullptr;
  double t_s = 0.0;
  for (auto _ : state) {
    t_s += 0.1;
    if (flight != nullptr) {
      flight->Record(t_s, "rung_change", 7, -1, 3.0,
                     "{\"from\":2,\"to\":3}");
    }
    benchmark::DoNotOptimize(t_s);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_FlightRecorderOverhead)->Arg(0)->Arg(1);

// Telemetry publish hook as it sits in the epoch-barrier / BAI path.
// Arg 0: no server attached — MaybePublish must be one predicted null
// check (same order as the disabled flight-recorder site, ~2.5 ns incl.
// loop scaffolding). Arg 1: server attached but the interval not due —
// adds one steady_clock read, still far below a barrier. Neither arm may
// allocate or lock. Exported as obs.telemetry.disabled_hook_ns and gated
// by flare_report's default watches.
void BM_TelemetryOverhead(benchmark::State& state) {
  const bool attached = state.range(0) != 0;
  // Never Start()ed: the enabled arm measures the not-yet-due clock
  // check, not socket work. A huge interval keeps it never-due.
  TelemetryServer server;
  TelemetryPublisher publisher(attached ? &server : nullptr,
                               /*interval_ms=*/1e12);
  double sim_time_s = 0.0;
  for (auto _ : state) {
    sim_time_s += 0.04;
    publisher.MaybePublish(sim_time_s);
    benchmark::DoNotOptimize(sim_time_s);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_TelemetryOverhead)->Arg(0)->Arg(1);

// Request-tracer call sites as they sit in the service's per-request hot
// path. Arg 0: tracing off — a null RequestTracer* at every site, so one
// predicted branch and no argument construction (acceptance bar is
// <= ~5 ns/request; a null check is well under 1 ns). Arg 1: tracing
// live — the full queue/finalize sequence for one request (sample
// queued, assignment queued, connection drained past its watermark)
// against a small event cap, so steady state measures stage histograms
// plus the bounded drop path rather than unbounded buffering.
void BM_RequestTraceOverhead(benchmark::State& state) {
  const bool enabled = state.range(0) != 0;
  MetricsRegistry registry;
  std::mutex registry_mu;
  RequestTracerOptions options;
  options.max_events = 65536;  // bound the enabled arm's memory
  RequestTracer live(&registry, &registry_mu, nullptr, options);
  RequestTracer* tracer = enabled ? &live : nullptr;
  std::uint64_t watermark = 0;
  std::uint64_t seq = 0;
  for (auto _ : state) {
    // Model the member load the service performs each request; without
    // this the compiler folds the null arm into an empty loop.
    benchmark::DoNotOptimize(tracer);
    ++seq;
    watermark += 64;
    if (tracer != nullptr) {
      RequestTiming timing;
      timing.ctx.trace_id = seq;
      timing.ctx.client_send_us = static_cast<std::int64_t>(seq);
      timing.flow = static_cast<FlowId>(seq % 32 + 1);
      timing.start_us = static_cast<double>(seq);
      timing.recv_us = 1.0;
      timing.parse_us = 0.5;
      timing.queued_at_us = timing.start_us + 2.0;
      timing.queue_wait_us = 40.0;
      timing.solve_us = 15.0;
      timing.encode_us = 1.5;
      timing.send_us = timing.start_us + 60.0;
      timing.cause = "steady";
      tracer->OnSampleQueued(timing);
      tracer->OnAssignmentQueued(timing, /*fd=*/7, watermark);
      tracer->OnConnFlushed(/*fd=*/7, watermark, timing.send_us + 5.0);
    }
    benchmark::DoNotOptimize(watermark);
    benchmark::ClobberMemory();
  }
  if (enabled) {
    state.counters["finalized"] =
        static_cast<double>(live.finalized_requests());
  }
}
BENCHMARK(BM_RequestTraceOverhead)->Arg(0)->Arg(1);

// DecideBai through the OneAPI-style wrapper with metrics attached vs not:
// the "no measurable slowdown when disabled" acceptance check.
void BM_DecideBaiWithObs(benchmark::State& state) {
  const bool enabled = state.range(0) != 0;
  const int n = 32;
  FlareParams params;
  params.solver = SolverMode::kContinuousRelaxation;
  FlareRateController controller(params);
  std::vector<double> ladder;
  for (double kbps : DenseLadderKbps()) ladder.push_back(kbps * 1000.0);
  Rng rng(5);
  std::vector<FlowObservation> observations;
  for (int i = 0; i < n; ++i) {
    controller.AddFlow(static_cast<FlowId>(i + 1), ladder);
    FlowObservation obs;
    obs.id = static_cast<FlowId>(i + 1);
    obs.bits_per_rb = rng.Uniform(100.0, 600.0);
    observations.push_back(obs);
  }
  MetricsRegistry registry;
  CounterHandle bais =
      MakeCounterHandle(enabled ? &registry : nullptr, "bench.bais");
  HistogramHandle solve_ms = MakeHistogramHandle(
      enabled ? &registry : nullptr, "bench.solve_ms",
      {0.01, 0.1, 1.0, 10.0});
  for (auto _ : state) {
    const BaiDecision decision =
        controller.DecideBai(observations, 2, 3'125.0 * n);
    bais.Add();
    solve_ms.Observe(
        static_cast<double>(decision.solve_time.count()) / 1e6);
    benchmark::DoNotOptimize(decision);
  }
}
BENCHMARK(BM_DecideBaiWithObs)->Arg(0)->Arg(1);

// --- Structured ladder export: after the google-benchmark tables, time
// the batched solver at 1k/10k/100k flows (plus the 256x64 many-cells
// batch) against the cold SolveSweep baseline and export optimizer.batch.*
// gauges through the standard BENCH envelope, so tools/flare_report can
// trend them and DefaultWatches gates flows10k.p99_us like any QoE metric.
int ExportBatchLadder() {
  struct Rung {
    const char* tag;
    int flows;
    int reps;
  };
  // Rep counts shrink with problem size to keep CI wall time bounded; the
  // p99 of a small sample is its max, which is the conservative gate.
  const Rung kLadder[] = {{"flows1k", 1'000, 30},
                          {"flows10k", 10'000, 12},
                          {"flows100k", 100'000, 4}};
  MetricsRegistry registry;
  BenchJsonWriter writer("optimizer");
  writer.Echo("ladder_flows", "1000/10000/100000");
  writer.Echo("batch_cells", 256.0);
  writer.Echo("flows_per_cell", 64.0);

  const auto now = [] { return std::chrono::steady_clock::now(); };
  const auto us = [](auto d) {
    return std::chrono::duration<double, std::micro>(d).count();
  };

  BatchSolver solver;
  for (const Rung& rung : kLadder) {
    const OptProblem problem = MakeProblem(rung.flows, 6);
    // Cold baseline: SolveSweep builds a fresh IncrementalSolver (a map
    // of per-flow envelope nodes) every call — the reference the >= 2x
    // batched-solver acceptance bar is measured against.
    Cdf cold_us;
    OptResult cold_result;
    const int cold_reps = rung.reps / 4 > 3 ? rung.reps / 4 : 3;
    for (int r = 0; r < cold_reps; ++r) {
      const auto t0 = now();
      cold_result = SolveSweep(problem);
      cold_us.Add(us(now() - t0));
    }
    solver.Solve(problem);  // size the scratch arrays outside the timing
    Cdf batch_us;
    OptResult batch_result;
    for (int r = 0; r < rung.reps; ++r) {
      const auto t0 = now();
      batch_result = solver.Solve(problem);
      batch_us.Add(us(now() - t0));
    }
    // Spot-check the differential contract in the bench binary too: a
    // speedup claimed over a solver that disagrees would be meaningless.
    if (batch_result.objective != cold_result.objective ||
        batch_result.levels != cold_result.levels) {
      std::fprintf(stderr,
                   "FATAL: BatchSolver diverged from SolveSweep at %d "
                   "flows\n",
                   rung.flows);
      return 1;
    }
    const double p50 = batch_us.Quantile(0.5);
    const double p99 = batch_us.Quantile(0.99);
    const double cold_p50 = cold_us.Quantile(0.5);
    const double speedup = cold_p50 / (p50 > 1e-9 ? p50 : 1e-9);
    const std::string prefix = std::string("optimizer.batch.") + rung.tag;
    MakeGaugeHandle(&registry, prefix + ".p50_us").Set(p50);
    MakeGaugeHandle(&registry, prefix + ".p99_us").Set(p99);
    MakeGaugeHandle(&registry, prefix + ".cold_p50_us").Set(cold_p50);
    MakeGaugeHandle(&registry, prefix + ".speedup_vs_cold").Set(speedup);
    std::printf(
        "optimizer.batch.%s: p50=%.1f us  p99=%.1f us  cold_p50=%.1f us  "
        "speedup=%.2fx\n",
        rung.tag, p50, p99, cold_p50, speedup);
  }

  // Many small cells on one thread: the control-plane shape where a
  // worker owns hundreds of cells per BAI and SolveMany amortizes one
  // scratch arena across all of them.
  std::vector<OptProblem> cells;
  cells.reserve(256);
  for (int c = 0; c < 256; ++c) {
    cells.push_back(MakeProblem(64, static_cast<std::uint64_t>(c) + 11));
  }
  solver.SolveMany(cells);  // warm
  Cdf total_ms;
  for (int r = 0; r < 10; ++r) {
    const auto t0 = now();
    benchmark::DoNotOptimize(solver.SolveMany(cells));
    total_ms.Add(us(now() - t0) / 1000.0);
  }
  const double batch_p50_ms = total_ms.Quantile(0.5);
  MakeGaugeHandle(&registry, "optimizer.batch.cells256x64.total_p50_ms")
      .Set(batch_p50_ms);
  MakeGaugeHandle(&registry, "optimizer.batch.cells256x64.total_p99_ms")
      .Set(total_ms.Quantile(0.99));
  MakeGaugeHandle(&registry, "optimizer.batch.cells256x64.per_cell_p50_us")
      .Set(batch_p50_ms * 1000.0 / 256.0);
  std::printf(
      "optimizer.batch.cells256x64: total_p50=%.2f ms  per_cell=%.1f us\n",
      batch_p50_ms, batch_p50_ms * 1000.0 / 256.0);

  // Zero-cost-when-off telemetry gate: per-call cost of MaybePublish
  // with no server attached, min over reps of a tight loop so scheduler
  // noise cannot inflate the gauge. Watched (down, generous threshold)
  // by flare_report's DefaultWatches.
  {
    TelemetryPublisher publisher(nullptr, 1000.0);
    const int iters = 2'000'000;
    double best_ns = 0.0;
    for (int rep = 0; rep < 5; ++rep) {
      double sim_time_s = 0.0;
      const auto t0 = now();
      for (int i = 0; i < iters; ++i) {
        sim_time_s += 0.04;
        publisher.MaybePublish(sim_time_s);
        benchmark::DoNotOptimize(sim_time_s);
      }
      const double ns =
          us(now() - t0) * 1000.0 / static_cast<double>(iters);
      if (rep == 0 || ns < best_ns) best_ns = ns;
    }
    MakeGaugeHandle(&registry, "obs.telemetry.disabled_hook_ns")
        .Set(best_ns);
    std::printf("obs.telemetry.disabled_hook_ns: %.2f ns/call\n", best_ns);
  }

  // Tracing-off guard for the control plane's per-request hot path: the
  // null-RequestTracer* branch, min over reps so scheduler noise cannot
  // inflate the gauge (acceptance bar <= ~5 ns/request).
  {
    RequestTracer* tracer = nullptr;
    const int iters = 2'000'000;
    double best_ns = 0.0;
    for (int rep = 0; rep < 5; ++rep) {
      std::uint64_t watermark = 0;
      const auto t0 = now();
      for (int i = 0; i < iters; ++i) {
        benchmark::DoNotOptimize(tracer);
        watermark += 64;
        if (tracer != nullptr) {
          tracer->OnConnFlushed(7, watermark, 0.0);
        }
        benchmark::DoNotOptimize(watermark);
      }
      const double ns =
          us(now() - t0) * 1000.0 / static_cast<double>(iters);
      if (rep == 0 || ns < best_ns) best_ns = ns;
    }
    MakeGaugeHandle(&registry, "svc.oneapi.trace.disabled_hook_ns")
        .Set(best_ns);
    std::printf("svc.oneapi.trace.disabled_hook_ns: %.2f ns/request\n",
                best_ns);
  }

  const std::string path = BenchJsonPath("optimizer");
  if (!writer.Export(path, registry)) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace flare

// Custom main (instead of BENCHMARK_MAIN): run the registered
// microbenchmarks, then the structured optimizer.batch.* ladder export.
int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return flare::ExportBatchLadder();
}
