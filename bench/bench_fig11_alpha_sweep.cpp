// Figure 11: average flow throughputs (with standard deviation) as the
// data-vs-video weight alpha sweeps 0.25 .. 4.
//
// Paper headline: as alpha increases, data flows' average throughput
// rises smoothly and video flows' falls — the knob that trades the two
// flow classes against each other.
#include <cstdio>

#include "scenario/experiment.h"
#include "scenario/scenario.h"
#include "util/csv.h"
#include "util/stats.h"

namespace flare {
namespace {

int Main(int argc, char** argv) {
  const BenchScale scale = ScaleFromEnv(5, 1200.0, argc, argv);
  std::printf(
      "=== Figure 11: alpha sweep, 8 video + 8 data clients "
      "(%d runs x %.0f s per point) ===\n\n",
      scale.runs, scale.duration_s);

  CsvWriter csv(BenchCsvPath("fig11_alpha"),
                {"alpha", "video_mean_kbps", "video_std_kbps",
                 "data_mean_kbps", "data_std_kbps"});

  std::printf("%8s %18s %18s\n", "alpha", "video (Kbps)", "data (Kbps)");
  double prev_video = -1.0;
  double prev_data = -1.0;
  bool video_monotone_down = true;
  bool data_monotone_up = true;
  for (const double alpha : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    ScenarioConfig config = SimStaticPreset(Scheme::kFlare);
    config.duration_s = scale.duration_s;
    config.n_video = 8;
    config.n_data = 8;
    config.ladder_kbps = DenseLadderKbps();
    config.oneapi.params.alpha = alpha;
    config.seed = 100;
    const auto runs = RunMany(config, scale.runs);

    RunningStats video_kbps;
    RunningStats data_kbps;
    for (const ScenarioResult& r : runs) {
      for (const ClientMetrics& m : r.video) {
        video_kbps.Add(m.avg_bitrate_bps / 1000.0);
      }
      for (double bps : r.data_throughput_bps) {
        data_kbps.Add(bps / 1000.0);
      }
    }
    std::printf("%8.2f %10.0f +-%5.0f %10.0f +-%5.0f\n", alpha,
                video_kbps.mean(), video_kbps.stddev(), data_kbps.mean(),
                data_kbps.stddev());
    csv.Row({alpha, video_kbps.mean(), video_kbps.stddev(),
             data_kbps.mean(), data_kbps.stddev()});

    if (prev_video >= 0.0 && video_kbps.mean() > prev_video + 1.0) {
      video_monotone_down = false;
    }
    if (prev_data >= 0.0 && data_kbps.mean() < prev_data - 1.0) {
      data_monotone_up = false;
    }
    prev_video = video_kbps.mean();
    prev_data = data_kbps.mean();
  }

  std::printf(
      "\n--- Shape checks (paper Figure 11) ---\n"
      "  data throughput increases with alpha:  %s\n"
      "  video throughput decreases with alpha: %s\n"
      "\nSeries written to %s\n",
      data_monotone_up ? "yes" : "NO",
      video_monotone_down ? "yes" : "NO",
      BenchCsvPath("fig11_alpha").c_str());
  return 0;
}

}  // namespace
}  // namespace flare

int main(int argc, char** argv) { return flare::Main(argc, argv); }
