// Table II + Figure 5: femtocell testbed, dynamic scenario.
//
// Same cell as the static testbed, but the iTbs Override Module sweeps
// the MCS through a triangle (1 -> 12 -> 1 over 4 minutes) with per-UE
// phase offsets. GOOGLE runs with its enlarged 40 s request buffer, the
// modification the paper made for this scenario. Prints Table II rows
// against the paper and dumps the Figure 5 time series to CSV.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "scenario/experiment.h"
#include "scenario/scenario.h"
#include "util/csv.h"

namespace flare {
namespace {

struct PaperRow {
  double rate_kbps;
  double underflow_s;
  double changes;
  double jain;
  double data_kbps;
};

// Table II, as printed in the paper.
const std::map<Scheme, PaperRow> kPaper = {
    {Scheme::kFestive, {839, 0, 22.7, 0.998, 3870}},
    {Scheme::kGoogle, {1297, 10.7, 14, 0.997, 1870}},
    {Scheme::kFlare, {1025, 0, 11.3, 0.998, 2300}},
};

int Main(int argc, char** argv) {
  const BenchScale scale = ScaleFromEnv(3, 600.0, argc, argv);
  std::printf(
      "=== Table II / Figure 5: testbed dynamic scenario "
      "(%d runs x %.0f s, iTbs triangle 1..12 / 4 min) ===\n\n",
      scale.runs, scale.duration_s);

  CsvWriter series_csv(BenchCsvPath("fig5_series"),
                       {"scheme", "t_s", "video0_kbps", "video1_kbps",
                        "video2_kbps", "buf0_s", "buf1_s", "buf2_s",
                        "data_kbps"});
  CsvWriter table_csv(BenchCsvPath("table2"),
                      {"scheme", "avg_rate_kbps", "underflow_s", "changes",
                       "jain", "data_kbps"});

  for (Scheme scheme :
       {Scheme::kFestive, Scheme::kGoogle, Scheme::kFlare}) {
    ScenarioConfig config = TestbedPreset(scheme);
    config.duration_s = scale.duration_s;
    config.channel = ChannelKind::kItbsTriangle;
    config.google_max_buffer_s = 40.0;  // paper's dynamic-scenario tweak
    config.sample_series = true;
    config.seed = 7;
    const std::vector<ScenarioResult> runs = RunMany(config, scale.runs);

    double rate = 0.0;
    double underflow = 0.0;
    double changes = 0.0;
    double jain = 0.0;
    double data = 0.0;
    for (const ScenarioResult& r : runs) {
      rate += r.avg_video_bitrate_bps / 1000.0;
      underflow += r.avg_rebuffer_s;
      changes += r.avg_bitrate_changes;
      jain += r.jain_avg_bitrate;
      data += r.avg_data_throughput_bps / 1000.0;
    }
    const double n = static_cast<double>(runs.size());
    rate /= n;
    underflow /= n;
    changes /= n;
    jain /= n;
    data /= n;

    std::printf("--- %s ---\n", SchemeName(scheme));
    const PaperRow& paper = kPaper.at(scheme);
    PrintPaperComparison("average video rate (Kbps)", paper.rate_kbps,
                         rate);
    PrintPaperComparison("avg buffer underflow time (s)",
                         paper.underflow_s, underflow);
    PrintPaperComparison("avg number of bitrate changes", paper.changes,
                         changes);
    PrintPaperComparison("Jain index of average video rates", paper.jain,
                         jain);
    PrintPaperComparison("avg data flow throughput (Kbps)",
                         paper.data_kbps, data);
    std::printf("\n");

    table_csv.RawRow({SchemeName(scheme), FormatNumber(rate),
                      FormatNumber(underflow), FormatNumber(changes),
                      FormatNumber(jain), FormatNumber(data)});

    for (const SeriesSample& s : runs.front().series) {
      std::vector<std::string> row{SchemeName(scheme), FormatNumber(s.t_s)};
      for (int i = 0; i < 3; ++i) {
        row.push_back(FormatNumber(
            i < static_cast<int>(s.video_bitrate_bps.size())
                ? s.video_bitrate_bps[static_cast<std::size_t>(i)] / 1000.0
                : 0.0));
      }
      for (int i = 0; i < 3; ++i) {
        row.push_back(FormatNumber(
            i < static_cast<int>(s.video_buffer_s.size())
                ? s.video_buffer_s[static_cast<std::size_t>(i)]
                : 0.0));
      }
      row.push_back(FormatNumber(
          s.data_throughput_bps.empty()
              ? 0.0
              : s.data_throughput_bps[0] / 1000.0));
      series_csv.RawRow(row);
    }
  }

  std::printf(
      "Figure 5 time series written to %s\n"
      "Expected shape: FLARE's bitrate follows the MCS triangle with the\n"
      "fewest switches and no underflow; FESTIVE oscillates without\n"
      "visible correlation to the cycle; GOOGLE tracks aggressively.\n",
      BenchCsvPath("fig5_series").c_str());
  return 0;
}

}  // namespace
}  // namespace flare

int main(int argc, char** argv) { return flare::Main(argc, argv); }
