// Figure 6: ns-3-style static scenario CDFs over 160 clients
// (8 stationary video clients x 20 runs) for FLARE, AVIS and FESTIVE.
//
// Prints the CDFs of per-client average bitrate (Fig. 6a) and number of
// bitrate changes (Fig. 6b), the paper's headline improvement
// percentages, and the per-scheme Jain fairness indices.
#include <algorithm>
#include <cstdio>
#include <map>

#include "obs/bai_trace.h"
#include "obs/metrics.h"
#include "obs/qoe_analytics.h"
#include "scenario/experiment.h"
#include "scenario/scenario.h"
#include "util/csv.h"

namespace flare {
namespace {

int Main(int argc, char** argv) {
  const BenchScale scale = ScaleFromEnv(20, 1200.0, argc, argv);
  std::printf(
      "=== Figure 6: static scenario CDFs (%d runs x 8 clients x %.0f s) "
      "===\n\n",
      scale.runs, scale.duration_s);

  CsvWriter csv(BenchCsvPath("fig6_cdfs"),
                {"scheme", "quantile", "avg_bitrate_kbps", "changes"});

  std::map<Scheme, PooledMetrics> pooled;
  for (Scheme scheme : {Scheme::kFlare, Scheme::kAvis, Scheme::kFestive}) {
    ScenarioConfig config = SimStaticPreset(scheme);
    config.duration_s = scale.duration_s;
    config.seed = 100;
    pooled[scheme] = Pool(RunMany(config, scale.runs));

    const PooledMetrics& p = pooled[scheme];
    std::printf("--- %s (n=%zu clients) ---\n", SchemeName(scheme),
                p.avg_bitrate_kbps.count());
    PrintCdf("CDF of average bitrate (Kbps)", p.avg_bitrate_kbps);
    PrintCdf("CDF of number of bitrate changes", p.bitrate_changes);
    std::printf("mean Jain fairness index: %.3f\n\n", p.MeanJain());

    for (int q = 0; q <= 10; ++q) {
      const double quantile = q / 10.0;
      csv.RawRow({SchemeName(scheme), FormatNumber(quantile),
                  FormatNumber(p.avg_bitrate_kbps.Quantile(quantile)),
                  FormatNumber(p.bitrate_changes.Quantile(quantile))});
    }
  }

  const PooledMetrics& flare = pooled[Scheme::kFlare];
  const PooledMetrics& avis = pooled[Scheme::kAvis];
  const PooledMetrics& festive = pooled[Scheme::kFestive];

  std::printf("--- Headline comparisons (paper Section IV-B) ---\n");
  PrintPaperComparison(
      "FLARE avg bitrate gain vs AVIS (%)", 24.0,
      100.0 * (flare.MeanBitrateKbps() / avis.MeanBitrateKbps() - 1.0));
  PrintPaperComparison(
      "FLARE avg bitrate gain vs FESTIVE (%)", 39.0,
      100.0 * (flare.MeanBitrateKbps() / festive.MeanBitrateKbps() - 1.0));
  PrintPaperComparison(
      "FLARE bitrate-change reduction vs AVIS (%)", 26.0,
      100.0 * (1.0 - flare.MeanChanges() /
                         std::max(avis.MeanChanges(), 1e-9)));
  PrintPaperComparison(
      "FLARE bitrate-change reduction vs FESTIVE (%)", 66.0,
      100.0 * (1.0 - flare.MeanChanges() /
                         std::max(festive.MeanChanges(), 1e-9)));
  PrintPaperComparison("Jain index FLARE", 0.989, flare.MeanJain());
  PrintPaperComparison("Jain index AVIS", 0.989, avis.MeanJain());
  PrintPaperComparison("Jain index FESTIVE", 0.986, festive.MeanJain());

  // Structured export: one fully instrumented FLARE run (registry + BAI
  // trace + QoE engine + player summaries) alongside the pooled CDFs, in
  // the standardized BENCH_*.json envelope.
  {
    MetricsRegistry registry;
    BaiTraceSink trace;
    QoeAnalytics qoe;
    ScenarioConfig config = SimStaticPreset(Scheme::kFlare);
    config.duration_s = scale.duration_s;
    config.seed = 100;
    config.metrics = &registry;
    config.bai_trace = &trace;
    config.qoe = &qoe;
    RunScenario(config);
    BenchJsonWriter writer("fig6");
    writer.Echo("scheme", SchemeName(Scheme::kFlare));
    writer.Echo("duration_s", config.duration_s);
    writer.Echo("seed", static_cast<double>(config.seed));
    writer.Echo("n_video", static_cast<double>(config.n_video));
    writer.Echo("runs", static_cast<double>(scale.runs));
    writer.Export(BenchJsonPath("fig6"), trace, &registry,
                  /*health=*/nullptr, &qoe);
    std::printf("\nstructured metrics written to %s\n",
                BenchJsonPath("fig6").c_str());
  }

  std::printf("CDF curves written to %s\n",
              BenchCsvPath("fig6_cdfs").c_str());
  return 0;
}

}  // namespace
}  // namespace flare

int main(int argc, char** argv) { return flare::Main(argc, argv); }
