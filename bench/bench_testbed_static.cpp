// Table I + Figure 4: femtocell testbed, static scenario.
//
// Three video clients (FESTIVE / GOOGLE / FLARE players) and one iperf
// data flow share a 50-RB cell at a fixed MCS (static iTbs knob). Prints
// Table I's five summary rows per scheme against the paper's reported
// values and dumps the Figure 4 time series (per-client video rate,
// buffer level, data-flow throughput at 1 Hz) to CSV.
//
// Scale overrides: runs=<n> duration_s=<s> (or FLARE_RUNS /
// FLARE_DURATION_S env vars).
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "scenario/experiment.h"
#include "scenario/scenario.h"
#include "util/csv.h"

namespace flare {
namespace {

struct PaperRow {
  double rate_kbps;
  double underflow_s;
  double changes;
  double jain;
  double data_kbps;
};

// Table I, as printed in the paper.
const std::map<Scheme, PaperRow> kPaper = {
    {Scheme::kFestive, {638, 0, 20.3, 0.998, 2512}},
    {Scheme::kGoogle, {1151, 185.3, 9.7, 0.990, 1140}},
    {Scheme::kFlare, {726, 0, 1, 0.999, 1800}},
};

int Main(int argc, char** argv) {
  const BenchScale scale = ScaleFromEnv(3, 600.0, argc, argv);
  std::printf(
      "=== Table I / Figure 4: testbed static scenario "
      "(%d runs x %.0f s) ===\n\n",
      scale.runs, scale.duration_s);

  CsvWriter series_csv(BenchCsvPath("fig4_series"),
                       {"scheme", "t_s", "video0_kbps", "video1_kbps",
                        "video2_kbps", "buf0_s", "buf1_s", "buf2_s",
                        "data_kbps"});
  CsvWriter table_csv(BenchCsvPath("table1"),
                      {"scheme", "avg_rate_kbps", "underflow_s", "changes",
                       "jain", "data_kbps"});

  for (Scheme scheme :
       {Scheme::kFestive, Scheme::kGoogle, Scheme::kFlare}) {
    ScenarioConfig config = TestbedPreset(scheme);
    config.duration_s = scale.duration_s;
    config.sample_series = true;
    config.seed = 7;
    const std::vector<ScenarioResult> runs = RunMany(config, scale.runs);

    double rate = 0.0;
    double underflow = 0.0;
    double changes = 0.0;
    double jain = 0.0;
    double data = 0.0;
    for (const ScenarioResult& r : runs) {
      rate += r.avg_video_bitrate_bps / 1000.0;
      underflow += r.avg_rebuffer_s;
      changes += r.avg_bitrate_changes;
      jain += r.jain_avg_bitrate;
      data += r.avg_data_throughput_bps / 1000.0;
    }
    const double n = static_cast<double>(runs.size());
    rate /= n;
    underflow /= n;
    changes /= n;
    jain /= n;
    data /= n;

    std::printf("--- %s ---\n", SchemeName(scheme));
    const PaperRow& paper = kPaper.at(scheme);
    PrintPaperComparison("average video rate (Kbps)", paper.rate_kbps,
                         rate);
    PrintPaperComparison("avg buffer underflow time (s)",
                         paper.underflow_s, underflow);
    PrintPaperComparison("avg number of bitrate changes", paper.changes,
                         changes);
    PrintPaperComparison("Jain index of average video rates", paper.jain,
                         jain);
    PrintPaperComparison("avg data flow throughput (Kbps)",
                         paper.data_kbps, data);
    std::printf("\n");

    table_csv.RawRow({SchemeName(scheme), FormatNumber(rate),
                      FormatNumber(underflow), FormatNumber(changes),
                      FormatNumber(jain), FormatNumber(data)});

    // Figure 4 series from the first run.
    for (const SeriesSample& s : runs.front().series) {
      std::vector<std::string> row{SchemeName(scheme), FormatNumber(s.t_s)};
      for (int i = 0; i < 3; ++i) {
        row.push_back(FormatNumber(
            i < static_cast<int>(s.video_bitrate_bps.size())
                ? s.video_bitrate_bps[static_cast<std::size_t>(i)] / 1000.0
                : 0.0));
      }
      for (int i = 0; i < 3; ++i) {
        row.push_back(FormatNumber(
            i < static_cast<int>(s.video_buffer_s.size())
                ? s.video_buffer_s[static_cast<std::size_t>(i)]
                : 0.0));
      }
      row.push_back(FormatNumber(
          s.data_throughput_bps.empty()
              ? 0.0
              : s.data_throughput_bps[0] / 1000.0));
      series_csv.RawRow(row);
    }
  }

  std::printf(
      "Figure 4 time series written to %s\n"
      "Expected shape: FLARE holds one rate tier with a stable buffer;\n"
      "FESTIVE oscillates; GOOGLE rides the top tiers and is the only\n"
      "scheme with buffer underflow.\n",
      BenchCsvPath("fig4_series").c_str());
  return 0;
}

}  // namespace
}  // namespace flare

int main(int argc, char** argv) { return flare::Main(argc, argv); }
