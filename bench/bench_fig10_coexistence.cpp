// Figure 10: video and data flow coexistence under FLARE.
//
// 8 FLARE video clients and 8 greedy data clients share one cell. Prints
// the CDFs of per-flow throughput for each flow type (Fig. 10a) and of
// the video bitrate-change counts (Fig. 10b).
//
// Paper headline: FLARE balances the two flow classes — video flows are
// consistently prioritized but data flows keep a healthy share — and the
// number of video bitrate changes matches the video-only experiments.
#include <cstdio>

#include "scenario/experiment.h"
#include "scenario/scenario.h"
#include "util/csv.h"

namespace flare {
namespace {

int Main(int argc, char** argv) {
  const BenchScale scale = ScaleFromEnv(20, 1200.0, argc, argv);
  std::printf(
      "=== Figure 10: 8 video + 8 data clients under FLARE "
      "(%d runs x %.0f s) ===\n\n",
      scale.runs, scale.duration_s);

  ScenarioConfig config = SimStaticPreset(Scheme::kFlare);
  config.duration_s = scale.duration_s;
  config.n_video = 8;
  config.n_data = 8;
  config.ladder_kbps = DenseLadderKbps();  // Figures 8-10 ladder
  config.seed = 100;
  const auto runs = RunMany(config, scale.runs);

  Cdf video_tput_kbps;
  Cdf data_tput_kbps;
  Cdf changes;
  for (const ScenarioResult& r : runs) {
    for (const ClientMetrics& m : r.video) {
      video_tput_kbps.Add(m.avg_bitrate_bps / 1000.0);
      changes.Add(static_cast<double>(m.bitrate_changes));
    }
    for (double bps : r.data_throughput_bps) {
      data_tput_kbps.Add(bps / 1000.0);
    }
  }

  PrintCdf("CDF of video flow throughput (Kbps)", video_tput_kbps);
  PrintCdf("CDF of data flow throughput (Kbps)", data_tput_kbps);
  PrintCdf("CDF of video bitrate changes", changes);

  CsvWriter csv(BenchCsvPath("fig10_cdfs"),
                {"series", "quantile", "value"});
  for (int q = 0; q <= 10; ++q) {
    const double quantile = q / 10.0;
    csv.RawRow({"video_kbps", FormatNumber(quantile),
                FormatNumber(video_tput_kbps.Quantile(quantile))});
    csv.RawRow({"data_kbps", FormatNumber(quantile),
                FormatNumber(data_tput_kbps.Quantile(quantile))});
    csv.RawRow({"video_changes", FormatNumber(quantile),
                FormatNumber(changes.Quantile(quantile))});
  }

  std::printf("\n--- Shape checks (paper Section IV-B) ---\n");
  std::printf("  video flows prioritized over data:          %s "
              "(video median %.0f vs data median %.0f Kbps)\n",
              video_tput_kbps.Quantile(0.5) > data_tput_kbps.Quantile(0.5)
                  ? "yes"
                  : "NO",
              video_tput_kbps.Quantile(0.5),
              data_tput_kbps.Quantile(0.5));
  std::printf("  data flows not starved:                     %s "
              "(data p10 %.0f Kbps)\n",
              data_tput_kbps.Quantile(0.1) > 50.0 ? "yes" : "NO",
              data_tput_kbps.Quantile(0.1));
  std::printf("  bitrate changes comparable to video-only:   mean %.1f\n",
              changes.Mean());
  std::printf("\nCDF curves written to %s\n",
              BenchCsvPath("fig10_cdfs").c_str());
  return 0;
}

}  // namespace
}  // namespace flare

int main(int argc, char** argv) { return flare::Main(argc, argv); }
