// Ablation: how much of FLARE's zero-underflow behaviour comes from the
// femtocell's two-phase GBR scheduler (DESIGN.md, Section 5)?
//
// Runs the dynamic testbed scenario with FLARE's controller on top of
// three MAC schedulers: the paper's two-phase GBR scheduler, the ns-3
// Priority Set Scheduler, and plain proportional fair (which ignores the
// GBR entirely — the OneAPI server's assignments are then enforced only
// by the client plugin).
#include <cstdio>

#include "scenario/experiment.h"
#include "scenario/scenario.h"
#include "util/csv.h"

namespace flare {
namespace {

int Main(int argc, char** argv) {
  const BenchScale scale = ScaleFromEnv(3, 600.0, argc, argv);
  std::printf(
      "=== Ablation: MAC scheduler under FLARE, dynamic testbed "
      "(%d runs x %.0f s) ===\n\n",
      scale.runs, scale.duration_s);

  CsvWriter csv(BenchCsvPath("ablation_scheduler"),
                {"scheduler", "avg_rate_kbps", "underflow_s", "changes",
                 "data_kbps"});

  struct Row {
    SchedulerKind kind;
    const char* name;
  };
  const Row rows[] = {
      {SchedulerKind::kTwoPhaseGbr, "two-phase GBR (paper)"},
      {SchedulerKind::kPss, "priority set (ns-3)"},
      {SchedulerKind::kPf, "proportional fair (no GBR)"},
      {SchedulerKind::kRoundRobin, "round robin (no GBR)"},
  };

  std::printf("%-28s %12s %12s %10s %12s\n", "scheduler", "rate (Kbps)",
              "underflow(s)", "changes", "data (Kbps)");
  for (const Row& row : rows) {
    ScenarioConfig config = TestbedPreset(Scheme::kFlare);
    config.duration_s = scale.duration_s;
    config.channel = ChannelKind::kItbsTriangle;
    config.scheduler = row.kind;
    config.seed = 7;
    const auto runs = RunMany(config, scale.runs);

    double rate = 0.0;
    double underflow = 0.0;
    double changes = 0.0;
    double data = 0.0;
    for (const ScenarioResult& r : runs) {
      rate += r.avg_video_bitrate_bps / 1000.0;
      underflow += r.avg_rebuffer_s;
      changes += r.avg_bitrate_changes;
      data += r.avg_data_throughput_bps / 1000.0;
    }
    const double n = static_cast<double>(runs.size());
    std::printf("%-28s %12.0f %12.1f %10.1f %12.0f\n", row.name, rate / n,
                underflow / n, changes / n, data / n);
    csv.RawRow({row.name, FormatNumber(rate / n),
                FormatNumber(underflow / n), FormatNumber(changes / n),
                FormatNumber(data / n)});
  }

  std::printf(
      "\nExpected: GBR-aware schedulers (two-phase, PSS) keep underflow at\n"
      "zero; without GBR enforcement the assigned rates are not protected\n"
      "from the data flow, stressing the client buffer.\n"
      "Rows written to %s\n",
      BenchCsvPath("ablation_scheduler").c_str());
  return 0;
}

}  // namespace
}  // namespace flare

int main(int argc, char** argv) { return flare::Main(argc, argv); }
