// Ablation: robustness of FLARE's previous-BAI capacity estimate to a
// lossy PHY (DESIGN.md Section 5 — "stale-state robustness").
//
// The optimizer's e_u = bits-per-RB observation automatically absorbs
// HARQ losses (failed transport blocks burn RBs without delivering
// bytes), so the capacity constraint self-corrects: assignments shrink
// with the effective — not nominal — spectral efficiency. Sweeps the
// transport-block error rate and reports what FLARE's clients get.
#include <cstdio>

#include "scenario/experiment.h"
#include "scenario/scenario.h"
#include "util/csv.h"

namespace flare {
namespace {

int Main(int argc, char** argv) {
  const BenchScale scale = ScaleFromEnv(3, 600.0, argc, argv);
  std::printf(
      "=== Ablation: FLARE under transport-block errors "
      "(%d runs x %.0f s, static testbed) ===\n\n%8s %12s %10s %12s "
      "%12s\n",
      scale.runs, scale.duration_s, "BLER", "rate (Kbps)", "changes",
      "rebuffer(s)", "data (Kbps)");

  CsvWriter csv(BenchCsvPath("robustness_bler"),
                {"bler", "avg_rate_kbps", "changes", "rebuffer_s",
                 "data_kbps"});

  for (const double bler : {0.0, 0.05, 0.1, 0.2, 0.3}) {
    ScenarioConfig config = TestbedPreset(Scheme::kFlare);
    config.duration_s = scale.duration_s;
    config.target_bler = bler;
    config.seed = 7;
    const auto runs = RunMany(config, scale.runs);

    double rate = 0.0;
    double changes = 0.0;
    double rebuffer = 0.0;
    double data = 0.0;
    for (const ScenarioResult& r : runs) {
      rate += r.avg_video_bitrate_bps / 1000.0;
      changes += r.avg_bitrate_changes;
      rebuffer += r.avg_rebuffer_s;
      data += r.avg_data_throughput_bps / 1000.0;
    }
    const double n = static_cast<double>(runs.size());
    std::printf("%8.2f %12.0f %10.1f %12.1f %12.0f\n", bler, rate / n,
                changes / n, rebuffer / n, data / n);
    csv.Row({bler, rate / n, changes / n, rebuffer / n, data / n});
  }

  std::printf(
      "\nExpected: graceful degradation — video rates step down with the\n"
      "effective capacity while rebuffering stays near zero, because the\n"
      "RB & Rate Trace feeds the optimizer effective (post-HARQ)\n"
      "bits-per-RB.\nRows written to %s\n",
      BenchCsvPath("robustness_bler").c_str());
  return 0;
}

}  // namespace
}  // namespace flare

int main(int argc, char** argv) { return flare::Main(argc, argv); }
