// Figure 7: ns-3-style mobile (vehicular) scenario CDFs over 160 clients
// for FLARE, AVIS and FESTIVE. UEs follow random-waypoint mobility at
// 10..30 m/s inside the 2000 m x 2000 m area of Table III.
//
// Paper headline: FLARE's advantages widen relative to the static case —
// +53% / +47% average bitrate vs AVIS / FESTIVE and 85% / 95% fewer rate
// changes.
#include <algorithm>
#include <cstdio>
#include <map>

#include "scenario/experiment.h"
#include "scenario/scenario.h"
#include "util/csv.h"

namespace flare {
namespace {

int Main(int argc, char** argv) {
  const BenchScale scale = ScaleFromEnv(20, 1200.0, argc, argv);
  std::printf(
      "=== Figure 7: mobile scenario CDFs (%d runs x 8 clients x %.0f s, "
      "random waypoint 10..30 m/s) ===\n\n",
      scale.runs, scale.duration_s);

  CsvWriter csv(BenchCsvPath("fig7_cdfs"),
                {"scheme", "quantile", "avg_bitrate_kbps", "changes"});

  std::map<Scheme, PooledMetrics> pooled;
  for (Scheme scheme : {Scheme::kFlare, Scheme::kAvis, Scheme::kFestive}) {
    ScenarioConfig config = SimMobilePreset(scheme);
    config.duration_s = scale.duration_s;
    config.seed = 100;
    pooled[scheme] = Pool(RunMany(config, scale.runs));

    const PooledMetrics& p = pooled[scheme];
    std::printf("--- %s (n=%zu clients) ---\n", SchemeName(scheme),
                p.avg_bitrate_kbps.count());
    PrintCdf("CDF of average bitrate (Kbps)", p.avg_bitrate_kbps);
    PrintCdf("CDF of number of bitrate changes", p.bitrate_changes);
    std::printf("mean Jain fairness index: %.3f\n\n", p.MeanJain());

    for (int q = 0; q <= 10; ++q) {
      const double quantile = q / 10.0;
      csv.RawRow({SchemeName(scheme), FormatNumber(quantile),
                  FormatNumber(p.avg_bitrate_kbps.Quantile(quantile)),
                  FormatNumber(p.bitrate_changes.Quantile(quantile))});
    }
  }

  const PooledMetrics& flare = pooled[Scheme::kFlare];
  const PooledMetrics& avis = pooled[Scheme::kAvis];
  const PooledMetrics& festive = pooled[Scheme::kFestive];

  std::printf("--- Headline comparisons (paper Section IV-B) ---\n");
  PrintPaperComparison(
      "FLARE avg bitrate gain vs AVIS (%)", 53.0,
      100.0 * (flare.MeanBitrateKbps() / avis.MeanBitrateKbps() - 1.0));
  PrintPaperComparison(
      "FLARE avg bitrate gain vs FESTIVE (%)", 47.0,
      100.0 * (flare.MeanBitrateKbps() / festive.MeanBitrateKbps() - 1.0));
  PrintPaperComparison(
      "FLARE bitrate-change reduction vs AVIS (%)", 85.0,
      100.0 * (1.0 - flare.MeanChanges() /
                         std::max(avis.MeanChanges(), 1e-9)));
  PrintPaperComparison(
      "FLARE bitrate-change reduction vs FESTIVE (%)", 95.0,
      100.0 * (1.0 - flare.MeanChanges() /
                         std::max(festive.MeanChanges(), 1e-9)));
  PrintPaperComparison("Jain index FLARE", 0.999, flare.MeanJain());
  PrintPaperComparison("Jain index AVIS", 0.988, avis.MeanJain());
  PrintPaperComparison("Jain index FESTIVE", 0.993, festive.MeanJain());
  std::printf("\nCDF curves written to %s\n",
              BenchCsvPath("fig7_cdfs").c_str());
  return 0;
}

}  // namespace
}  // namespace flare

int main(int argc, char** argv) { return flare::Main(argc, argv); }
