// Ablation: the value of coordinated (two-sided) enforcement — FLARE's
// central claim (DESIGN.md, Section 5).
//
// Compares, on the mobile ns-3-style scenario:
//   FLARE              — optimizer + GBR at the eNB + rung pushed to the
//                        client plugin (full coordination);
//   FLARE-network-only — same optimizer and GBRs, but the client ignores
//                        the assignment and adapts greedily (the
//                        AVIS-style one-sided architecture);
//   AVIS               — the real network-side baseline.
#include <cstdio>

#include "scenario/experiment.h"
#include "scenario/scenario.h"
#include "util/csv.h"

namespace flare {
namespace {

int Main(int argc, char** argv) {
  const BenchScale scale = ScaleFromEnv(5, 1200.0, argc, argv);
  std::printf(
      "=== Ablation: coordinated vs network-only enforcement, mobile "
      "scenario (%d runs x %.0f s) ===\n\n",
      scale.runs, scale.duration_s);

  CsvWriter csv(BenchCsvPath("ablation_enforcement"),
                {"scheme", "avg_rate_kbps", "changes", "rebuffer_s",
                 "jain"});

  std::printf("%-22s %12s %10s %12s %8s\n", "scheme", "rate (Kbps)",
              "changes", "rebuffer(s)", "jain");
  for (const Scheme scheme : {Scheme::kFlare, Scheme::kFlareNetworkOnly,
                              Scheme::kAvis}) {
    ScenarioConfig config = SimMobilePreset(scheme);
    config.duration_s = scale.duration_s;
    config.seed = 100;
    const PooledMetrics pooled = Pool(RunMany(config, scale.runs));
    std::printf("%-22s %12.0f %10.1f %12.1f %8.3f\n", SchemeName(scheme),
                pooled.MeanBitrateKbps(), pooled.MeanChanges(),
                pooled.MeanRebufferS(), pooled.MeanJain());
    csv.RawRow({SchemeName(scheme),
                FormatNumber(pooled.MeanBitrateKbps()),
                FormatNumber(pooled.MeanChanges()),
                FormatNumber(pooled.MeanRebufferS()),
                FormatNumber(pooled.MeanJain())});
  }

  std::printf(
      "\nExpected: removing the client half of the enforcement (network-\n"
      "only) re-introduces the assignment/request mismatch — more bitrate\n"
      "changes and less stability than full FLARE, approaching AVIS.\n"
      "Rows written to %s\n",
      BenchCsvPath("ablation_enforcement").c_str());
  return 0;
}

}  // namespace
}  // namespace flare

int main(int argc, char** argv) { return flare::Main(argc, argv); }
