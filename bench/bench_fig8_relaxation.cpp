// Figure 8: FLARE with continuous bitrate optimization (the convex
// relaxation of Proposition 1 + round-down) versus the original discrete
// algorithm, on the dense 12-level ladder (100..1200 Kbps), in both the
// static and mobile scenarios.
//
// Paper headline: the relaxation loses <= ~14% (static) / ~6% (mobile)
// average bitrate while stability is retained, and each solve stays well
// under a segment duration.
#include <cstdio>
#include <map>
#include <string>

#include "has/mpd.h"
#include "scenario/experiment.h"
#include "scenario/scenario.h"
#include "util/csv.h"

namespace flare {
namespace {

int Main(int argc, char** argv) {
  const BenchScale scale = ScaleFromEnv(20, 1200.0, argc, argv);
  std::printf(
      "=== Figure 8: continuous-relaxation FLARE vs exact, dense ladder "
      "100..1200 Kbps (%d runs x 8 clients x %.0f s) ===\n\n",
      scale.runs, scale.duration_s);

  CsvWriter csv(BenchCsvPath("fig8_cdfs"),
                {"scenario", "solver", "quantile", "avg_bitrate_kbps",
                 "changes"});

  struct Cell {
    PooledMetrics pooled;
    double max_solve_ms = 0.0;
    std::size_t n_solves = 0;
    std::size_t solves_over_4ms = 0;
  };
  std::map<std::string, Cell> cells;

  for (const bool mobile : {false, true}) {
    const std::string scenario = mobile ? "mobile" : "static";
    for (const Scheme scheme :
         {Scheme::kFlare, Scheme::kFlareRelaxed}) {
      ScenarioConfig config =
          mobile ? SimMobilePreset(scheme) : SimStaticPreset(scheme);
      config.duration_s = scale.duration_s;
      config.ladder_kbps = DenseLadderKbps();
      config.seed = 100;
      const auto runs = RunMany(config, scale.runs);

      Cell cell;
      cell.pooled = Pool(runs);
      for (const ScenarioResult& r : runs) {
        for (double ms : r.solve_times_ms) {
          cell.max_solve_ms = std::max(cell.max_solve_ms, ms);
          ++cell.n_solves;
          if (ms > 4.0) ++cell.solves_over_4ms;
        }
      }
      const std::string key = scenario + "/" + SchemeName(scheme);
      cells[key] = cell;

      std::printf("--- %s ---\n", key.c_str());
      PrintCdf("CDF of average bitrate (Kbps)",
               cell.pooled.avg_bitrate_kbps);
      PrintCdf("CDF of number of bitrate changes",
               cell.pooled.bitrate_changes);
      std::printf("mean Jain: %.3f; %zu solves, max %.3f ms, %zu over "
                  "4 ms\n\n",
                  cell.pooled.MeanJain(), cell.n_solves,
                  cell.max_solve_ms, cell.solves_over_4ms);

      for (int q = 0; q <= 10; ++q) {
        const double quantile = q / 10.0;
        csv.RawRow({scenario, SchemeName(scheme), FormatNumber(quantile),
                    FormatNumber(
                        cell.pooled.avg_bitrate_kbps.Quantile(quantile)),
                    FormatNumber(
                        cell.pooled.bitrate_changes.Quantile(quantile))});
      }
    }
  }

  std::printf("--- Headline comparisons (paper Section IV-B) ---\n");
  const auto loss = [&](const std::string& scenario) {
    const double exact =
        cells[scenario + "/FLARE"].pooled.MeanBitrateKbps();
    const double relaxed =
        cells[scenario + "/FLARE-relaxed"].pooled.MeanBitrateKbps();
    return 100.0 * (1.0 - relaxed / exact);
  };
  PrintPaperComparison("relaxation bitrate loss, static (%)", 14.0,
                       loss("static"));
  PrintPaperComparison("relaxation bitrate loss, mobile (%)", 6.0,
                       loss("mobile"));
  PrintPaperComparison(
      "relaxed mean changes, mobile (paper: stays < 6)", 6.0,
      cells["mobile/FLARE-relaxed"].pooled.MeanChanges());
  std::printf("\nCDF curves written to %s\n",
              BenchCsvPath("fig8_cdfs").c_str());
  return 0;
}

}  // namespace
}  // namespace flare

int main(int argc, char** argv) { return flare::Main(argc, argv); }
