// Extension bench: coexistence with conventional HAS players (Section V).
//
// The paper's deployment story: FLARE services non-FLARE players like
// other data traffic, with no bitrate guarantees — their presence must
// not destabilize FLARE's clients, and users have a GBR-quality
// incentive to adopt FLARE. We mix 4 FLARE clients with 4 conventional
// (FESTIVE) players and compare both populations, plus a FLARE-only and
// a conventional-only control.
#include <cstdio>

#include "scenario/experiment.h"
#include "scenario/scenario.h"
#include "util/csv.h"
#include "util/stats.h"

namespace flare {
namespace {

struct Population {
  RunningStats bitrate_kbps;
  RunningStats changes;
  RunningStats rebuffer_s;
};

void Accumulate(Population& p, const std::vector<ClientMetrics>& clients) {
  for (const ClientMetrics& m : clients) {
    p.bitrate_kbps.Add(m.avg_bitrate_bps / 1000.0);
    p.changes.Add(static_cast<double>(m.bitrate_changes));
    p.rebuffer_s.Add(m.rebuffer_time_s);
  }
}

void PrintPopulation(const char* label, const Population& p) {
  std::printf("%-32s %10.0f %10.1f %12.1f\n", label, p.bitrate_kbps.mean(),
              p.changes.mean(), p.rebuffer_s.mean());
}

int Main(int argc, char** argv) {
  const BenchScale scale = ScaleFromEnv(5, 1200.0, argc, argv);
  std::printf(
      "=== Extension: coexistence with conventional players "
      "(%d runs x %.0f s) ===\n\n%-32s %10s %10s %12s\n",
      scale.runs, scale.duration_s, "population", "Kbps", "changes",
      "rebuffer(s)");

  CsvWriter csv(BenchCsvPath("coexistence_conventional"),
                {"population", "kbps", "changes", "rebuffer_s"});

  // Mixed cell: 4 FLARE + 4 conventional.
  Population flare_mixed;
  Population conventional_mixed;
  {
    ScenarioConfig config = SimStaticPreset(Scheme::kFlare);
    config.duration_s = scale.duration_s;
    config.n_video = 4;
    config.n_conventional = 4;
    config.seed = 100;
    for (const ScenarioResult& r : RunMany(config, scale.runs)) {
      Accumulate(flare_mixed, r.video);
      Accumulate(conventional_mixed, r.conventional);
    }
  }
  // Controls: homogeneous cells of 8.
  Population flare_only;
  {
    ScenarioConfig config = SimStaticPreset(Scheme::kFlare);
    config.duration_s = scale.duration_s;
    config.seed = 100;
    for (const ScenarioResult& r : RunMany(config, scale.runs)) {
      Accumulate(flare_only, r.video);
    }
  }
  Population conventional_only;
  {
    ScenarioConfig config = SimStaticPreset(Scheme::kFestive);
    config.duration_s = scale.duration_s;
    config.seed = 100;
    for (const ScenarioResult& r : RunMany(config, scale.runs)) {
      Accumulate(conventional_only, r.video);
    }
  }

  PrintPopulation("FLARE clients (mixed cell)", flare_mixed);
  PrintPopulation("conventional clients (mixed)", conventional_mixed);
  PrintPopulation("FLARE-only cell of 8", flare_only);
  PrintPopulation("conventional-only cell of 8", conventional_only);

  const Population* rows[] = {&flare_mixed, &conventional_mixed,
                              &flare_only, &conventional_only};
  const char* names[] = {"flare_mixed", "conventional_mixed", "flare_only",
                         "conventional_only"};
  for (int i = 0; i < 4; ++i) {
    csv.RawRow({names[i], FormatNumber(rows[i]->bitrate_kbps.mean()),
                FormatNumber(rows[i]->changes.mean()),
                FormatNumber(rows[i]->rebuffer_s.mean())});
  }

  std::printf(
      "\nExpected: FLARE clients in the mixed cell keep GBR-grade\n"
      "stability (changes and rebuffering comparable to the FLARE-only\n"
      "cell) while conventional players fare no better than in their own\n"
      "cell — the adoption incentive of Section V.\n"
      "Rows written to %s\n",
      BenchCsvPath("coexistence_conventional").c_str());
  return 0;
}

}  // namespace
}  // namespace flare

int main(int argc, char** argv) { return flare::Main(argc, argv); }
