// Figure 9: CDFs of the bitrate-selection computation time with 32, 64
// and 128 video clients in a cell.
//
// Mirrors the paper's measurement: the OneAPI server's per-BAI solve is
// timed on live optimizer state. We drive the FlareRateController
// directly with randomized bits-per-RB observations (as the cell would
// feed it), collecting thousands of solves per population size, for both
// the continuous relaxation (the scalable path the experiment is about)
// and the greedy discrete solver for contrast.
//
// Paper headline: computation time grows with the number of clients but
// stays far below a segment duration (<= ~12 ms at 128 clients).
#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/rate_controller.h"
#include "has/mpd.h"
#include "obs/metrics.h"
#include "obs/span_trace.h"
#include "obs/telemetry_server.h"
#include "scenario/experiment.h"
#include "scenario/multi_cell.h"
#include "util/config.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/stats.h"

namespace flare {
namespace {

std::vector<double> LadderBps() {
  std::vector<double> bps;
  for (double kbps : DenseLadderKbps()) bps.push_back(kbps * 1000.0);
  return bps;
}

Cdf MeasureSolveTimes(int n_clients, int n_bais, SolverMode mode, Rng& rng,
                      HistogramHandle solve_ms_metric = {}) {
  FlareParams params;
  params.solver = mode;
  FlareRateController controller(params);
  for (FlowId id = 1; id <= static_cast<FlowId>(n_clients); ++id) {
    controller.AddFlow(id, LadderBps());
  }

  // Per-flow random-walk channel efficiencies, as a live cell would show.
  std::vector<double> bits_per_rb(static_cast<std::size_t>(n_clients));
  for (double& e : bits_per_rb) e = rng.Uniform(100.0, 600.0);

  Cdf times_ms;
  // Keep the per-client RB budget constant across population sizes so the
  // solvers do representative work (a saturated cell pins every flow at
  // the floor and the solve trivially short-circuits).
  const double rb_rate = 3'125.0 * n_clients;
  for (int bai = 0; bai < n_bais; ++bai) {
    std::vector<FlowObservation> observations;
    observations.reserve(static_cast<std::size_t>(n_clients));
    for (int i = 0; i < n_clients; ++i) {
      auto& e = bits_per_rb[static_cast<std::size_t>(i)];
      e = std::clamp(e * rng.Uniform(0.95, 1.05), 16.0, 712.0);
      FlowObservation obs;
      obs.id = static_cast<FlowId>(i + 1);
      obs.bits_per_rb = e;
      observations.push_back(obs);
    }
    const BaiDecision decision =
        controller.DecideBai(observations, /*n_data_flows=*/2, rb_rate);
    const double ms =
        static_cast<double>(decision.solve_time.count()) / 1e6;
    times_ms.Add(ms);
    solve_ms_metric.Observe(ms);
  }
  return times_ms;
}

int Main(int argc, char** argv) {
  const BenchScale scale = ScaleFromEnv(2000, 0.0, argc, argv);
  const int n_bais = scale.runs;  // solves per population size
  // Optional live telemetry for the instrumented multi-cell run below
  // (telemetry_port=N key; 0 = ephemeral). The bare timing reps stay
  // uninstrumented either way.
  const Config args =
      argv != nullptr ? Config::FromArgs(argc, argv) : Config{};
  const bool telemetry = args.GetString("telemetry_port").has_value();
  TelemetryServer::Options telemetry_opts;
  telemetry_opts.port =
      static_cast<std::uint16_t>(args.GetInt("telemetry_port", 0));
  TelemetryServer telemetry_server(telemetry_opts);
  if (telemetry) {
    if (!telemetry_server.Start()) {
      std::fprintf(stderr, "bench_fig9: cannot bind telemetry port %d\n",
                   args.GetInt("telemetry_port", 0));
      return 1;
    }
    std::printf("telemetry: http://127.0.0.1:%u (instrumented multi-cell "
                "runs)\n",
                static_cast<unsigned>(telemetry_server.port()));
  }
  std::printf(
      "=== Figure 9: bitrate-selection computation time, %d solves per "
      "population ===\n\n",
      n_bais);

  CsvWriter csv(BenchCsvPath("fig9_solve_times"),
                {"solver", "clients", "quantile", "ms"});
  // Structured export: one solve-time histogram per (solver, population).
  MetricsRegistry registry;

  Rng rng(42);
  for (const SolverMode mode : {SolverMode::kContinuousRelaxation,
                                SolverMode::kGreedyDiscrete}) {
    const char* solver_name = mode == SolverMode::kContinuousRelaxation
                                  ? "continuous-relaxation"
                                  : "greedy-discrete";
    std::printf("--- solver: %s ---\n", solver_name);
    for (const int clients : {32, 64, 128}) {
      const Cdf times = MeasureSolveTimes(
          clients, n_bais, mode, rng,
          MakeHistogramHandle(
              &registry,
              "fig9.solve_ms." + std::string(solver_name) + "." +
                  std::to_string(clients),
              {0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 12.0, 50.0}));
      std::printf("%3d clients: ", clients);
      for (double q : {0.5, 0.9, 0.99, 1.0}) {
        std::printf("p%-3.0f=%8.4f ms  ", q * 100.0, times.Quantile(q));
      }
      std::printf("\n");
      for (int q = 0; q <= 10; ++q) {
        const double quantile = q / 10.0;
        csv.RawRow({solver_name, FormatNumber(clients),
                    FormatNumber(quantile),
                    FormatNumber(times.Quantile(quantile))});
      }
    }
    std::printf("\n");
  }

  Rng check_rng(7);
  const Cdf relaxed_128 = MeasureSolveTimes(
      128, n_bais, SolverMode::kContinuousRelaxation, check_rng);
  std::printf("--- Headline comparison (paper Section IV-B) ---\n");
  PrintPaperComparison("max solve time at 128 clients (ms, paper <= ~12)",
                       12.0, relaxed_128.Quantile(1.0));

  // --- Sharded-runtime scaling: serial vs. parallel wall clock for an
  // 8-cell deployment (one testbed cell per event domain, shared PCRF at
  // BAI barriers). Results are bit-identical across worker counts, so
  // this is a pure wall-clock comparison; the achievable speedup is
  // bounded by the machine's hardware threads, which we record alongside.
  const unsigned hw_threads =
      std::max(1u, std::thread::hardware_concurrency());
  std::printf("\n--- Multi-cell sharded runtime, 8 cells (%u hardware "
              "thread(s)) ---\n",
              hw_threads);
  MakeGaugeHandle(&registry, "fig9.multicell.hardware_threads")
      .Set(static_cast<double>(hw_threads));
  const double multicell_duration_s =
      scale.duration_s > 0.0 ? scale.duration_s : 30.0;
  // One wall-clock sample on a shared/1-core box swings tens of percent;
  // min-of-N with *interleaved* reps (serial and parallel alternate, so a
  // slow system phase taxes every configuration equally) is the
  // de-noising for a "how fast can this go" measurement. The timing reps
  // run *bare* (no metrics, no span tracer) so instrumentation cost
  // cannot masquerade as runtime overhead; the instrumented run
  // afterwards feeds the exported histograms and the workers=8 trace.
  const int timing_reps = 5;
  const std::vector<int> worker_configs = {0, 2, 8};
  const auto multicell_config = [&](int workers) {
    MultiCellConfig multi;
    multi.cell = TestbedPreset(Scheme::kFlare);
    multi.cell.duration_s = multicell_duration_s;
    multi.cell.seed = 42;
    multi.n_cells = 8;
    multi.workers = workers;
    return multi;
  };
  std::vector<double> min_wall_ms(worker_configs.size(), 0.0);
  for (int rep = 0; rep < timing_reps; ++rep) {
    for (std::size_t i = 0; i < worker_configs.size(); ++i) {
      const MultiCellResult timed =
          RunMultiCellScenario(multicell_config(worker_configs[i]));
      if (rep == 0 || timed.wall_ms < min_wall_ms[i]) {
        min_wall_ms[i] = timed.wall_ms;
      }
    }
  }
  double serial_ms = 0.0;
  double overhead8_pct = 0.0;
  for (std::size_t config = 0; config < worker_configs.size(); ++config) {
    const int workers = worker_configs[config];
    const double wall_ms = min_wall_ms[config];
    // Per-config runner metrics (epoch / barrier-wait / drain histograms),
    // merged into the bench export under a workersN prefix. The widest
    // configuration also exports a causal span trace, showing where the
    // 8 domains spend wall-clock inside each epoch.
    MultiCellConfig multi = multicell_config(workers);
    MetricsRegistry run_registry;
    multi.metrics = &run_registry;
    SpanTracer spans;
    if (workers == 8) multi.span_trace = &spans;
    if (telemetry) {
      multi.telemetry = &telemetry_server;
      multi.telemetry_interval_ms =
          args.GetDouble("telemetry_interval_ms", 1000.0);
    }
    const MultiCellResult result = RunMultiCellScenario(multi);
    if (workers == 0) serial_ms = wall_ms;
    const double speedup = wall_ms > 0.0 ? serial_ms / wall_ms : 0.0;
    // Overhead (parallel wall vs serial wall) is meaningful on any
    // machine; speedup is only meaningful when the hardware can actually
    // run `workers` threads at once, so it is published conditionally
    // below — an 8-worker "speedup" measured on 1 hardware thread is a
    // coin toss around 1.0x and poisons the trajectory.
    const double overhead_pct =
        serial_ms > 0.0 ? (wall_ms / serial_ms - 1.0) * 100.0 : 0.0;
    if (workers == 8) overhead8_pct = overhead_pct;
    const bool hw_can_speedup = hw_threads >= static_cast<unsigned>(workers);
    std::printf("workers=%d: %8.1f ms wall (min of %d), overhead vs serial "
                "%+6.2f%% (%llu epochs, %llu msgs)\n",
                workers, wall_ms, timing_reps, overhead_pct,
                static_cast<unsigned long long>(result.barrier_epochs),
                static_cast<unsigned long long>(result.mailbox_messages));
    if (workers > 0) {
      if (hw_can_speedup) {
        std::printf("           speedup vs serial %5.2fx (hw can run %d "
                    "threads)\n",
                    speedup, workers);
      } else {
        std::printf("           speedup unreported: only %u hardware "
                    "thread(s) for %d workers (bound: overhead is the "
                    "single-core signal)\n",
                    hw_threads, workers);
      }
    }
    const auto wait = run_registry.histograms().find("runner.barrier_wait_ms");
    if (wait != run_registry.histograms().end() && wait->second.count() > 0) {
      std::printf("           barrier wait p50=%.3f ms p95=%.3f ms "
                  "p99=%.3f ms\n",
                  wait->second.Quantile(0.50), wait->second.Quantile(0.95),
                  wait->second.Quantile(0.99));
    }
    const std::string key =
        "fig9.multicell.workers" + std::to_string(workers);
    registry.MergeFrom(run_registry, key + ".");
    MakeGaugeHandle(&registry, key + ".wall_ms").Set(wall_ms);
    if (workers > 0) {
      MakeGaugeHandle(&registry, key + ".overhead_pct").Set(overhead_pct);
      if (hw_can_speedup) {
        MakeGaugeHandle(&registry, key + ".speedup").Set(speedup);
      }
    }
    if (workers == 8) {
      spans.ExportJson(BenchJsonPath("fig9_trace"));
      std::printf("           span trace written to %s\n",
                  BenchJsonPath("fig9_trace").c_str());
    }
  }

  // The coordination gate that works on any machine: persistent epoch
  // workers must cost (almost) nothing when they cannot help. Watched in
  // flare_report as fig9.multicell.workers8.overhead_pct.
  std::printf("\n--- Runtime overhead gate ---\n");
  PrintPaperComparison("workers=8 overhead vs serial (%, gate <= 5)", 5.0,
                       overhead8_pct);

  BenchJsonWriter writer("fig9");
  writer.Echo("solves_per_population", static_cast<double>(n_bais));
  writer.Echo("multicell_duration_s", multicell_duration_s);
  writer.Echo("multicell_cells", 8.0);
  writer.Export(BenchJsonPath("fig9"), registry);
  std::printf(
      "\nAll solve times are orders of magnitude below a 1-10 s segment\n"
      "duration. CDFs written to %s, histograms to %s\n",
      BenchCsvPath("fig9_solve_times").c_str(),
      BenchJsonPath("fig9").c_str());
  return 0;
}

}  // namespace
}  // namespace flare

int main(int argc, char** argv) { return flare::Main(argc, argv); }
