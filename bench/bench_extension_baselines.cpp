// Extension: the full baseline field.
//
// The paper evaluates FLARE against FESTIVE, GOOGLE and AVIS; its
// related-work section also discusses PANDA (Li et al. [10]) and MPC
// (Yin et al. [11]); BBA rounds out the buffer-based family. This bench
// races all seven schemes on the Table III
// static and mobile scenarios — the comparison the paper motivates but
// never runs.
#include <cstdio>

#include "scenario/experiment.h"
#include "scenario/scenario.h"
#include "util/csv.h"

namespace flare {
namespace {

int Main(int argc, char** argv) {
  const BenchScale scale = ScaleFromEnv(5, 1200.0, argc, argv);
  std::printf(
      "=== Extension: all baselines, Table III scenarios "
      "(%d runs x 8 clients x %.0f s) ===\n\n",
      scale.runs, scale.duration_s);

  CsvWriter csv(BenchCsvPath("extension_baselines"),
                {"scenario", "scheme", "avg_bitrate_kbps", "changes",
                 "rebuffer_s", "qoe", "jain"});

  for (const bool mobile : {false, true}) {
    std::printf("--- %s scenario ---\n", mobile ? "mobile" : "static");
    std::printf("%-10s %14s %10s %13s %8s %8s\n", "scheme",
                "rate (Kbps)", "changes", "rebuffer (s)", "QoE", "jain");
    for (const Scheme scheme :
         {Scheme::kFlare, Scheme::kAvis, Scheme::kFestive, Scheme::kGoogle,
          Scheme::kPanda, Scheme::kMpc, Scheme::kBba}) {
      ScenarioConfig config =
          mobile ? SimMobilePreset(scheme) : SimStaticPreset(scheme);
      config.duration_s = scale.duration_s;
      config.seed = 100;
      const PooledMetrics pooled = Pool(RunMany(config, scale.runs));
      std::printf("%-10s %14.0f %10.1f %13.1f %8.2f %8.3f\n",
                  SchemeName(scheme), pooled.MeanBitrateKbps(),
                  pooled.MeanChanges(), pooled.MeanRebufferS(),
                  pooled.MeanQoe(), pooled.MeanJain());
      csv.RawRow({mobile ? "mobile" : "static", SchemeName(scheme),
                  FormatNumber(pooled.MeanBitrateKbps()),
                  FormatNumber(pooled.MeanChanges()),
                  FormatNumber(pooled.MeanRebufferS()),
                  FormatNumber(pooled.MeanQoe()),
                  FormatNumber(pooled.MeanJain())});
    }
    std::printf("\n");
  }

  std::printf(
      "Expected: coordinated FLARE keeps the fewest switches and zero\n"
      "rebuffering; client-side schemes trade between aggression (GOOGLE,\n"
      "MPC with deep buffers) and conservatism (FESTIVE, PANDA).\n"
      "Rows written to %s\n",
      BenchCsvPath("extension_baselines").c_str());
  return 0;
}

}  // namespace
}  // namespace flare

int main(int argc, char** argv) { return flare::Main(argc, argv); }
