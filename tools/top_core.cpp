#include "top_core.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "obs/span_trace.h"
#include "util/csv.h"

namespace flare {
namespace {

bool IsSpace(char c) { return c == ' ' || c == '\t'; }

/// Undo OpenMetricsEscapeLabel: \\ -> backslash, \" -> quote, \n ->
/// newline. Unknown escapes keep the escaped character verbatim.
std::string UnescapeLabelValue(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '\\' || i + 1 >= text.size()) {
      out.push_back(text[i]);
      continue;
    }
    ++i;
    switch (text[i]) {
      case 'n':
        out.push_back('\n');
        break;
      case '\\':
      case '"':
      default:
        out.push_back(text[i]);
        break;
    }
  }
  return out;
}

bool ParseLine(const std::string& line, std::size_t line_no,
               PromSample* sample, std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_no) + ": " + why;
    }
    return false;
  };
  std::size_t i = 0;
  while (i < line.size() &&
         (std::isalnum(static_cast<unsigned char>(line[i])) != 0 ||
          line[i] == '_' || line[i] == ':')) {
    ++i;
  }
  if (i == 0) return fail("expected metric name");
  sample->name = line.substr(0, i);
  if (i < line.size() && line[i] == '{') {
    ++i;
    while (i < line.size() && line[i] != '}') {
      const std::size_t eq = line.find('=', i);
      if (eq == std::string::npos) return fail("label without '='");
      const std::string label = line.substr(i, eq - i);
      if (eq + 1 >= line.size() || line[eq + 1] != '"') {
        return fail("label value must be quoted");
      }
      std::size_t end = eq + 2;
      std::string raw;
      while (end < line.size() && line[end] != '"') {
        if (line[end] == '\\' && end + 1 < line.size()) {
          raw.push_back(line[end]);
          ++end;
        }
        raw.push_back(line[end]);
        ++end;
      }
      if (end >= line.size()) return fail("unterminated label value");
      sample->labels[label] = UnescapeLabelValue(raw);
      i = end + 1;
      if (i < line.size() && line[i] == ',') ++i;
    }
    if (i >= line.size()) return fail("unterminated label set");
    ++i;  // consume '}'
  }
  while (i < line.size() && IsSpace(line[i])) ++i;
  if (i >= line.size()) return fail("missing sample value");
  char* end = nullptr;
  sample->value = std::strtod(line.c_str() + i, &end);
  if (end == line.c_str() + i) return fail("bad sample value");
  return true;
}

}  // namespace

bool ParsePrometheusText(const std::string& text,
                         std::vector<PromSample>* out, std::string* error) {
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::size_t start = 0;
    while (start < line.size() && IsSpace(line[start])) ++start;
    if (start >= line.size() || line[start] == '#') continue;
    PromSample sample;
    if (!ParseLine(line.substr(start), line_no, &sample, error)) {
      return false;
    }
    out->push_back(std::move(sample));
  }
  return true;
}

TopSnapshot BuildTopSnapshot(const std::vector<PromSample>& samples,
                             const JsonValue* healthz) {
  TopSnapshot snap;
  if (healthz != nullptr && healthz->is_object()) {
    const auto str = [&](const char* key, std::string* out) {
      const JsonValue* v = healthz->Find(key);
      if (v != nullptr && v->is_string()) *out = v->AsString();
    };
    const auto num = [&](const char* key, double* out) {
      const JsonValue* v = healthz->Find(key);
      if (v != nullptr && v->is_number()) *out = v->AsNumber();
    };
    str("status", &snap.status);
    str("scenario", &snap.scenario);
    const JsonValue* healthy = healthz->Find("healthy");
    if (healthy != nullptr && healthy->is_bool()) {
      snap.healthy = healthy->AsBool();
    }
    num("sim_time_s", &snap.sim_time_s);
    num("duration_s", &snap.duration_s);
    num("progress_pct", &snap.progress_pct);
    num("epochs", &snap.epochs);
    num("epoch_rate_hz", &snap.epoch_rate_hz);
    num("sim_speedup", &snap.sim_speedup);
    num("warnings", &snap.warnings);
    double cells = 0.0;
    double workers = 0.0;
    num("cells", &cells);
    num("workers", &workers);
    snap.cells = static_cast<int>(cells);
    snap.workers = static_cast<int>(workers);
  }

  // Per-cell rows keyed by the cell="N" label the exposition renderer
  // extracts from "cell<N>."-prefixed metric names.
  std::map<int, CellRow> rows;
  const auto row = [&rows](const std::string& cell) -> CellRow* {
    const int id = std::atoi(cell.c_str());
    CellRow& r = rows[id];
    r.cell = id;
    return &r;
  };
  for (const PromSample& s : samples) {
    const auto cell_label = s.labels.find("cell");
    if (cell_label != s.labels.end()) {
      CellRow* r = row(cell_label->second);
      if (s.name == "flare_qoe_sessions") {
        r->sessions = s.value;
      } else if (s.name == "flare_qoe_played_sessions") {
        r->played = s.value;
      } else if (s.name == "flare_qoe_avg_bitrate_bps") {
        r->avg_bitrate_bps = s.value;
      } else if (s.name == "flare_qoe_avg_qoe") {
        r->avg_qoe = s.value;
      } else if (s.name == "flare_qoe_jain_avg_bitrate") {
        r->jain = s.value;
      } else if (s.name == "flare_qoe_stalls") {
        r->stalls = s.value;
      } else if (s.name == "flare_qoe_stall_ratio") {
        r->stall_ratio = s.value;
      } else if (s.name == "flare_qoe_blocking_probability") {
        r->blocking_probability = s.value;
      } else if (s.name == "flare_health_healthy") {
        r->healthy = s.value != 0.0;
      }
      continue;
    }
    if (s.name == "flare_runner_barrier_wait_ms_quantile") {
      const auto q = s.labels.find("quantile");
      if (q != s.labels.end() && q->second == "0.99") {
        snap.have_barrier_wait = true;
        snap.barrier_wait_p99_ms = s.value;
      }
    } else if (s.name == "flare_telemetry_events_published_total") {
      snap.events_published = s.value;
    } else if (s.name == "flare_telemetry_events_dropped_total") {
      snap.events_dropped = s.value;
    } else if (s.name == "flare_telemetry_scrapes_total") {
      snap.scrapes = s.value;
    } else if (s.name == "flare_run_info" && snap.scenario.empty()) {
      const auto scenario = s.labels.find("scenario");
      if (scenario != s.labels.end()) snap.scenario = scenario->second;
    }
  }
  snap.rows.reserve(rows.size());
  for (const auto& [id, r] : rows) snap.rows.push_back(r);

  // Control-plane stage quantiles (flare_oneapid with tracing on). The
  // pipeline order is fixed here rather than taken from sample order so
  // the table always reads in request-lifecycle order; stages the daemon
  // has not observed yet are simply absent.
  static const char* const kStageOrder[] = {
      "recv", "parse", "admit", "queue_wait", "solve", "encode",
      "outbox_drain"};
  for (const char* stage : kStageOrder) {
    TopSnapshot::StageRow row_out;
    row_out.stage = stage;
    bool have = false;
    const std::string prefix = std::string("flare_svc_oneapi_stage_") + stage;
    for (const PromSample& s : samples) {
      if (s.name == prefix + "_p50_us") {
        row_out.p50_us = s.value;
        have = true;
      } else if (s.name == prefix + "_p95_us") {
        row_out.p95_us = s.value;
        have = true;
      } else if (s.name == prefix + "_p99_us") {
        row_out.p99_us = s.value;
        have = true;
      }
    }
    if (have) snap.stage_rows.push_back(std::move(row_out));
  }
  return snap;
}

std::string RenderTopTable(const TopSnapshot& snap) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "flare_top — %s  [%s]\n",
                snap.scenario.empty() ? "(no scenario)"
                                      : snap.scenario.c_str(),
                snap.status.c_str());
  out += line;
  std::snprintf(line, sizeof(line),
                "sim %.1f / %.1f s (%.1f%%)   epochs %.0f @ %.1f/s   "
                "speedup %.1fx   cells %d   workers %d\n",
                snap.sim_time_s, snap.duration_s, snap.progress_pct,
                snap.epochs, snap.epoch_rate_hz, snap.sim_speedup,
                snap.cells, snap.workers);
  out += line;
  std::snprintf(line, sizeof(line),
                "warnings %.0f   events published %.0f / dropped %.0f   "
                "scrapes %.0f",
                snap.warnings, snap.events_published, snap.events_dropped,
                snap.scrapes);
  out += line;
  if (snap.have_barrier_wait) {
    std::snprintf(line, sizeof(line), "   barrier p99 %.3f ms",
                  snap.barrier_wait_p99_ms);
    out += line;
  }
  out += "\n\n";
  out +=
      "cell  sessions  played    Mbps     QoE    Jain  stalls  block%  "
      "health\n";
  for (const CellRow& r : snap.rows) {
    std::snprintf(line, sizeof(line),
                  "%4d  %8.0f  %6.0f  %6.2f  %6.2f  %6.3f  %6.0f  %6.1f"
                  "  %s\n",
                  r.cell, r.sessions, r.played, r.avg_bitrate_bps / 1e6,
                  r.avg_qoe, r.jain, r.stalls,
                  r.blocking_probability * 100.0,
                  r.healthy ? "ok" : "ALARM");
    out += line;
  }
  if (snap.rows.empty()) out += "(no per-cell samples yet)\n";
  if (!snap.stage_rows.empty()) {
    out += "\ncontrol plane (request stage latency, us)\n";
    out += "stage            p50       p95       p99\n";
    for (const TopSnapshot::StageRow& r : snap.stage_rows) {
      std::snprintf(line, sizeof(line), "%-12s %9.1f %9.1f %9.1f\n",
                    r.stage.c_str(), r.p50_us, r.p95_us, r.p99_us);
      out += line;
    }
  }
  return out;
}

std::string RenderTopJson(const TopSnapshot& snap) {
  std::ostringstream out;
  out << "{\"status\": " << JsonQuote(snap.status)
      << ", \"healthy\": " << (snap.healthy ? "true" : "false")
      << ", \"scenario\": " << JsonQuote(snap.scenario)
      << ", \"sim_time_s\": " << JsonNumber(snap.sim_time_s)
      << ", \"duration_s\": " << JsonNumber(snap.duration_s)
      << ", \"progress_pct\": " << JsonNumber(snap.progress_pct)
      << ", \"epochs\": " << JsonNumber(snap.epochs)
      << ", \"epoch_rate_hz\": " << JsonNumber(snap.epoch_rate_hz)
      << ", \"sim_speedup\": " << JsonNumber(snap.sim_speedup)
      << ", \"cells\": " << snap.cells << ", \"workers\": " << snap.workers
      << ", \"warnings\": " << JsonNumber(snap.warnings)
      << ", \"events_published\": " << JsonNumber(snap.events_published)
      << ", \"events_dropped\": " << JsonNumber(snap.events_dropped)
      << ", \"scrapes\": " << JsonNumber(snap.scrapes);
  if (snap.have_barrier_wait) {
    out << ", \"barrier_wait_p99_ms\": "
        << JsonNumber(snap.barrier_wait_p99_ms);
  }
  out << ", \"cell_rows\": [";
  for (std::size_t i = 0; i < snap.rows.size(); ++i) {
    const CellRow& r = snap.rows[i];
    if (i > 0) out << ", ";
    out << "{\"cell\": " << r.cell
        << ", \"sessions\": " << JsonNumber(r.sessions)
        << ", \"played\": " << JsonNumber(r.played)
        << ", \"avg_bitrate_bps\": " << JsonNumber(r.avg_bitrate_bps)
        << ", \"avg_qoe\": " << JsonNumber(r.avg_qoe)
        << ", \"jain\": " << JsonNumber(r.jain)
        << ", \"stalls\": " << JsonNumber(r.stalls)
        << ", \"stall_ratio\": " << JsonNumber(r.stall_ratio)
        << ", \"blocking_probability\": "
        << JsonNumber(r.blocking_probability)
        << ", \"healthy\": " << (r.healthy ? "true" : "false") << "}";
  }
  out << "]";
  if (!snap.stage_rows.empty()) {
    out << ", \"stage_rows\": [";
    for (std::size_t i = 0; i < snap.stage_rows.size(); ++i) {
      const TopSnapshot::StageRow& r = snap.stage_rows[i];
      if (i > 0) out << ", ";
      out << "{\"stage\": " << JsonQuote(r.stage)
          << ", \"p50_us\": " << JsonNumber(r.p50_us)
          << ", \"p95_us\": " << JsonNumber(r.p95_us)
          << ", \"p99_us\": " << JsonNumber(r.p99_us) << "}";
    }
    out << "]";
  }
  out << "}";
  return out.str();
}

}  // namespace flare
