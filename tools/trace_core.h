// Cross-process trace merge + per-stage analysis for flare_trace.
//
// The daemon (flare_oneapid trace_json=) and the load generator
// (flare_loadgen trace_json=) each write Chrome trace-event JSON on
// their own steady clock. This library loads both, estimates the clock
// offset from the srx/stx timestamps the daemon echoed into the client
// spans (NTP-style: offset = ((srx - t0) + (stx - t3)) / 2 evaluated at
// the minimum-RTT request, where RTT = (t3 - t0) - (stx - srx)), shifts
// the client events onto the server clock, and emits one merged
// Perfetto timeline plus a per-stage latency breakdown table.
//
// Validation doubles as the CI span-schema gate: non-zero matched
// spans, no client-side orphan trace ids (an echo the server never
// recorded means the server trace is broken or capped), no negative
// phase durations, and every matched request's server phases summing to
// within the client-measured turnaround.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/json.h"

namespace flare {

/// One 'X' span parsed back from a trace file, with the args fields the
/// analyzer cares about flattened out.
struct TraceSpanRecord {
  std::string name;
  std::string cat;
  double ts_us = 0.0;
  double dur_us = 0.0;
  int pid = 0;
  int tid = 0;
  std::string trace_hex;  // args.trace, empty when absent
  std::string cause;
  // Server request spans: per-phase durations.
  double recv_us = 0.0;
  double parse_us = 0.0;
  double queue_wait_us = 0.0;
  double solve_us = 0.0;
  double encode_us = 0.0;
  double outbox_drain_us = 0.0;
  double total_us = 0.0;
  // Client request spans: send/receive + echoed server stamps.
  double t0_us = 0.0;
  double t3_us = 0.0;
  double srx_us = 0.0;
  double stx_us = 0.0;
  double turnaround_us = 0.0;
  bool is_server_request = false;  // name=="request" && cat=="svc"
  bool is_client_request = false;  // name=="request" && cat=="client"
};

struct TraceDoc {
  JsonValue raw;  // full document, for the merged re-emit
  std::vector<TraceSpanRecord> spans;
};

/// Load + flatten one trace file. False (with `error`) on IO/syntax/shape
/// problems.
bool LoadTraceDoc(const std::string& path, TraceDoc* out, std::string* error);

struct ClockOffset {
  bool valid = false;
  /// Add to a client timestamp to land on the server clock.
  double offset_us = 0.0;
  double min_rtt_us = 0.0;
  int samples = 0;
};

/// RTT-midpoint estimate over every echoed client request span.
ClockOffset EstimateClockOffset(const TraceDoc& client);

struct StageStats {
  std::string stage;
  std::uint64_t count = 0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
};

struct TraceAnalysis {
  std::uint64_t server_requests = 0;
  std::uint64_t client_requests = 0;
  std::uint64_t matched = 0;
  /// Server spans with no client counterpart: tolerated (a session can
  /// depart before reading its last drained assignment).
  std::uint64_t orphan_server = 0;
  /// Client spans with no server counterpart: a validation failure.
  std::uint64_t orphan_client = 0;
  std::uint64_t duplicate_trace_ids = 0;
  std::uint64_t phase_violations = 0;  // negative phase duration
  std::uint64_t sum_exceeds_turnaround = 0;
  ClockOffset offset;
  /// Per-stage latency distribution over server request spans, in
  /// kRequestPhaseNames order.
  std::vector<StageStats> stages;
  bool valid = false;
  std::vector<std::string> problems;
};

TraceAnalysis AnalyzeTraces(const TraceDoc& server, const TraceDoc& client);

/// Fixed-width per-stage breakdown table (the flare_trace stdout view).
std::string RenderStageTable(const TraceAnalysis& analysis);

/// One merged Perfetto timeline: server events verbatim at pid 1, client
/// events shifted by `offset_us` at pid 2, fresh process-name metadata.
void WriteMergedTrace(std::ostream& out, const TraceDoc& server,
                      const TraceDoc& client, double offset_us);

}  // namespace flare
