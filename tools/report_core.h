// Core of the flare_report CLI: load run outputs (standardized
// BENCH_*.json envelopes, raw BaiTraceSink / MetricsRegistry exports,
// google-benchmark JSON), flatten them into a comparable metric map, diff
// candidate runs against a baseline with per-metric direction-aware
// regression thresholds, and render markdown / CSV / trajectory.jsonl.
//
// Lives in tools/ (not src/) because it is a consumer of run artifacts,
// not part of the simulation; it links flare_util for the JSON parser and
// flare_core for the stable DecisionCause name table.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "util/json.h"

namespace flare {

/// One loaded run artifact, flattened to "dotted.metric.name" -> value.
struct RunSummary {
  std::string path;
  std::string label;        // defaults to the file stem
  int schema_version = 0;   // 0 = legacy (no envelope)
  std::string scenario;     // "" when the artifact carries none
  /// Provenance from the envelope's "host" section (BenchJsonWriter):
  /// all empty/zero for legacy artifacts that predate it. These are
  /// never flattened into `metrics` (they would poison run comparisons)
  /// but are stamped onto trajectory lines, so a drifting trajectory can
  /// be traced to the commit and machine that produced each point.
  std::string git_sha;
  std::string hostname;
  int hardware_concurrency = 0;
  /// Sorted by key (std::map), so iteration order is deterministic.
  std::map<std::string, double> metrics;
};

/// Parse `path` and flatten it. Recognizes, in order:
///  * the BenchJsonWriter envelope {"schema_version", "scenario", "run"}
///    (descends into "run");
///  * a BaiTraceSink export ({"metrics", "qoe", "run_health", "players"});
///  * a bare MetricsRegistry export ({"counters", "gauges", "histograms"});
///  * google-benchmark --benchmark_format=json ({"benchmarks": [...]}).
/// Returns false (and fills *error) on unreadable / unparseable input.
bool LoadRunSummary(const std::string& path, RunSummary* out,
                    std::string* error);

/// Flatten an already-parsed artifact (testing seam for LoadRunSummary).
void FlattenRun(const JsonValue& root, RunSummary* out);

/// A metric watched for regressions. Direction matters: for
/// higher_is_better, a candidate below baseline*(1 - threshold_pct/100)
/// regresses; otherwise a candidate above baseline*(1 + threshold_pct/100)
/// does. Zero/negative baselines are compared but never gated (a ratio
/// against zero is meaningless).
struct WatchSpec {
  std::string metric;
  bool higher_is_better = true;
  double threshold_pct = 5.0;
};

/// Parse "metric:up[:PCT]" / "metric:down[:PCT]" (default threshold 5%).
/// Returns false on malformed spec.
bool ParseWatchSpec(const std::string& text, WatchSpec* out,
                    std::string* error);

/// The default watch list when the CLI gets no watch= overrides: the QoE
/// headline metrics of the paper's Figures 6/7, plus the parallel
/// runtime's fig9.multicell.workers8.overhead_pct (down: overhead going
/// up is the regression).
std::vector<WatchSpec> DefaultWatches(double threshold_pct);

/// One metric compared between baseline and candidate.
struct MetricDelta {
  std::string metric;
  double baseline = 0.0;
  double candidate = 0.0;
  double delta_pct = 0.0;  // (candidate - baseline) / |baseline| * 100
  bool watched = false;
  bool regressed = false;
};

struct RunComparison {
  std::string baseline_label;
  std::string candidate_label;
  /// Metrics present in both runs, sorted by name.
  std::vector<MetricDelta> deltas;
  /// Watched metrics present in only one run (renames break gating
  /// silently otherwise, so they are surfaced).
  std::vector<std::string> missing_watched;
  bool HasRegression() const;
};

RunComparison Compare(const RunSummary& baseline,
                      const RunSummary& candidate,
                      const std::vector<WatchSpec>& watches);

/// Markdown report: per-run overview table, then one comparison section
/// per candidate (watched metrics first, regressions flagged), then the
/// full delta table.
void WriteMarkdownReport(std::ostream& out,
                         const std::vector<RunSummary>& runs,
                         const std::vector<RunComparison>& comparisons);

/// Flat CSV: run_label,metric,value for every loaded run.
void WriteCsvReport(std::ostream& out, const std::vector<RunSummary>& runs);

/// One JSON line for `run` appended to a trajectory.jsonl file:
/// {"schema_version", "scenario", "label", "source", "recorded_unix",
///  ["git_sha", "hostname", "hardware_concurrency",] "metrics": {...}}.
/// `recorded_unix` comes from the caller so the core stays clock-free and
/// testable; the provenance fields come from the run's envelope (never
/// from ambient state at report time) and are omitted when the envelope
/// lacks them.
void WriteTrajectoryLine(std::ostream& out, const RunSummary& run,
                         long long recorded_unix);

/// Append trajectory lines for every run; creates the file (and parent
/// directory) if needed. Returns false if the file cannot be opened.
bool AppendTrajectory(const std::string& path,
                      const std::vector<RunSummary>& runs,
                      long long recorded_unix);

}  // namespace flare
