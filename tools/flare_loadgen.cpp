// flare_loadgen — deterministic load generator for flare_oneapid.
//
// Replays a churn-engine session schedule (Poisson arrivals, lognormal
// holds, one seed = one workload) against a live control-plane server
// over real sockets, measuring assignment-turnaround p50/p95/p99,
// blocking rate and churn capacity. With report= set, the measured SLOs
// export through BenchJsonWriter as bench_results/BENCH_<name>.json so
// flare_report gates them in CI (assign_turnaround.p99_us and
// blocking_rate are default watches).
#include <cstdio>
#include <cstring>
#include <string>

#include "obs/metrics.h"
#include "scenario/experiment.h"
#include "svc/loadgen.h"
#include "util/config.h"

namespace {

using namespace flare;

void PrintUsage(std::FILE* out) {
  std::fprintf(out, R"(usage: flare_loadgen port=N [key=value ...]

Deterministic churned load against a flare_oneapid server.

Keys:
  port=N            server port (required)
  host=ADDR         server host (127.0.0.1)
  sessions=N        total sessions to offer (100)
  arrival_rate=F    Poisson arrivals per schedule second (10)
  mean_hold_s=F     mean session holding time, schedule seconds (2)
  sigma=F           lognormal hold shape (1.0)
  seed=N            schedule seed (1)
  time_scale=F      replay speedup: wall = schedule / F (1.0)
  max_wall_s=F      abort the replay after F wall seconds (120)
  report=NAME       write bench_results/BENCH_<NAME>.json (off)
Flags:
  --help            this text
)");
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) {
      PrintUsage(stdout);
      return 0;
    }
  }
  const Config config = Config::FromArgs(argc, argv);
  if (!config.Has("port")) {
    PrintUsage(stderr);
    return 2;
  }

  LoadGenOptions options;
  options.host = config.GetString("host").value_or(std::string("127.0.0.1"));
  options.port = static_cast<std::uint16_t>(config.GetInt("port", 0));
  options.sessions =
      static_cast<std::uint64_t>(config.GetInt("sessions", 100));
  options.arrival_rate_per_s = config.GetDouble("arrival_rate", 10.0);
  options.mean_hold_s = config.GetDouble("mean_hold_s", 2.0);
  options.lognormal_sigma = config.GetDouble("sigma", 1.0);
  options.seed = static_cast<std::uint64_t>(config.GetInt("seed", 1));
  options.time_scale = config.GetDouble("time_scale", 1.0);
  options.max_wall_s = config.GetDouble("max_wall_s", 120.0);

  LoadGenerator generator(options);
  const LoadGenResult result = generator.Run();

  std::printf(
      "flare_loadgen: %llu offered, %llu admitted, %llu blocked "
      "(rate %.3f), %llu departed, %llu assignments, %llu connect "
      "failures, %llu protocol errors, %.1f s wall (%.1f sessions/s)\n",
      static_cast<unsigned long long>(result.attempted),
      static_cast<unsigned long long>(result.admitted),
      static_cast<unsigned long long>(result.blocked), result.blocking_rate,
      static_cast<unsigned long long>(result.departed),
      static_cast<unsigned long long>(result.assignments),
      static_cast<unsigned long long>(result.connect_failures),
      static_cast<unsigned long long>(result.protocol_errors), result.wall_s,
      result.session_rate_per_s);
  std::printf(
      "assignment turnaround: p50 %.0f us, p95 %.0f us, p99 %.0f us\n",
      result.turnaround_p50_us, result.turnaround_p95_us,
      result.turnaround_p99_us);

  if (const auto report = config.GetString("report")) {
    MetricsRegistry registry;
    result.ExportTo(&registry);
    BenchJsonWriter writer(*report);
    writer.Echo("sessions", static_cast<double>(options.sessions));
    writer.Echo("arrival_rate_per_s", options.arrival_rate_per_s);
    writer.Echo("mean_hold_s", options.mean_hold_s);
    writer.Echo("seed", static_cast<double>(options.seed));
    writer.Echo("time_scale", options.time_scale);
    const std::string path = BenchJsonPath(*report);
    if (!writer.Export(path, registry)) {
      std::fprintf(stderr, "flare_loadgen: cannot write %s\n", path.c_str());
      return 2;
    }
    std::printf("wrote %s\n", path.c_str());
  }

  if (!result.completed) {
    std::fprintf(stderr, "flare_loadgen: replay did not complete cleanly\n");
    return 1;
  }
  return 0;
}
