// flare_loadgen — deterministic load generator for flare_oneapid.
//
// Replays a churn-engine session schedule (Poisson arrivals, lognormal
// holds, one seed = one workload) against a live control-plane server
// over real sockets, measuring assignment-turnaround p50/p95/p99,
// blocking rate and churn capacity. With report= set, the measured SLOs
// export through BenchJsonWriter as bench_results/BENCH_<name>.json so
// flare_report gates them in CI (assign_turnaround.p99_us and
// blocking_rate are default watches).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "netio/http_client.h"
#include "obs/metrics.h"
#include "scenario/experiment.h"
#include "svc/loadgen.h"
#include "svc/request_trace.h"
#include "top_core.h"
#include "util/config.h"

namespace {

using namespace flare;

void PrintUsage(std::FILE* out) {
  std::fprintf(out, R"(usage: flare_loadgen port=N [key=value ...]

Deterministic churned load against a flare_oneapid server.

Keys:
  port=N            server port (required)
  host=ADDR         server host (127.0.0.1)
  sessions=N        total sessions to offer (100)
  arrival_rate=F    Poisson arrivals per schedule second (10)
  mean_hold_s=F     mean session holding time, schedule seconds (2)
  sigma=F           lognormal hold shape (1.0)
  seed=N            schedule seed (1)
  time_scale=F      replay speedup: wall = schedule / F (1.0)
  max_wall_s=F      abort the replay after F wall seconds (120)
  trace=0|1         attach a trace context to every stats report and
                    count echoed assignments (0)
  trace_json=PATH   write client-side request spans as Perfetto JSON;
                    merge with the daemon's trace via tools/flare_trace
                    (off; implies trace=1)
  scrape_port=N     after the run, scrape the daemon's telemetry
                    /metrics on this port and fold the
                    svc.oneapi.stage.* quantile gauges into the report
                    (off; needs report=)
  report=NAME       write bench_results/BENCH_<NAME>.json for
                    flare_report; NAME must be non-empty (off)
Flags:
  --help            this text
)");
}

/// Undo the exposition mangling for the daemon's stage quantile gauges:
/// flare_svc_oneapi_stage_<phase>_<q>_us -> svc.oneapi.stage.<phase>.<q>_us.
/// The '.'->'_' sanitization is lossy in general, so only the fixed
/// phase/quantile grid is mapped back.
void FoldStageGauges(const std::vector<PromSample>& samples,
                     MetricsRegistry* registry) {
  for (int p = 0; p < kNumRequestPhases; ++p) {
    for (const char* q : {"p50", "p95", "p99"}) {
      const std::string exposed = std::string("flare_svc_oneapi_stage_") +
                                  kRequestPhaseNames[p] + "_" + q + "_us";
      for (const PromSample& sample : samples) {
        if (sample.name != exposed) continue;
        registry
            ->GetGauge(std::string("svc.oneapi.stage.") +
                       kRequestPhaseNames[p] + "." + q + "_us")
            .Set(sample.value);
        break;
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) {
      PrintUsage(stdout);
      return 0;
    }
  }
  const Config config = Config::FromArgs(argc, argv);
  if (!config.Has("port")) {
    PrintUsage(stderr);
    return 2;
  }

  LoadGenOptions options;
  options.host = config.GetString("host").value_or(std::string("127.0.0.1"));
  options.port = static_cast<std::uint16_t>(config.GetInt("port", 0));
  options.sessions =
      static_cast<std::uint64_t>(config.GetInt("sessions", 100));
  options.arrival_rate_per_s = config.GetDouble("arrival_rate", 10.0);
  options.mean_hold_s = config.GetDouble("mean_hold_s", 2.0);
  options.lognormal_sigma = config.GetDouble("sigma", 1.0);
  options.seed = static_cast<std::uint64_t>(config.GetInt("seed", 1));
  options.time_scale = config.GetDouble("time_scale", 1.0);
  options.max_wall_s = config.GetDouble("max_wall_s", 120.0);
  options.trace = config.GetBool("trace", false);
  options.trace_json =
      config.GetString("trace_json").value_or(std::string());

  // Validate report= up front: an empty name would silently produce
  // bench_results/BENCH_.json, which no watch ever reads.
  const auto report = config.GetString("report");
  if (report && report->empty()) {
    std::fprintf(stderr,
                 "flare_loadgen: report= needs a non-empty name "
                 "(writes bench_results/BENCH_<NAME>.json)\n");
    return 2;
  }
  const int scrape_port = config.GetInt("scrape_port", 0);
  if (scrape_port > 0 && !report) {
    std::fprintf(stderr, "flare_loadgen: scrape_port= needs report=\n");
    return 2;
  }

  LoadGenerator generator(options);
  const LoadGenResult result = generator.Run();

  std::printf(
      "flare_loadgen: %llu offered, %llu admitted, %llu blocked "
      "(rate %.3f), %llu departed, %llu assignments, %llu connect "
      "failures, %llu protocol errors, %.1f s wall (%.1f sessions/s)\n",
      static_cast<unsigned long long>(result.attempted),
      static_cast<unsigned long long>(result.admitted),
      static_cast<unsigned long long>(result.blocked), result.blocking_rate,
      static_cast<unsigned long long>(result.departed),
      static_cast<unsigned long long>(result.assignments),
      static_cast<unsigned long long>(result.connect_failures),
      static_cast<unsigned long long>(result.protocol_errors), result.wall_s,
      result.session_rate_per_s);
  std::printf(
      "assignment turnaround: p50 %.0f us, p95 %.0f us, p99 %.0f us\n",
      result.turnaround_p50_us, result.turnaround_p95_us,
      result.turnaround_p99_us);
  if (options.trace || !options.trace_json.empty()) {
    std::printf("trace: %llu echoed assignments, %llu mismatches%s%s\n",
                static_cast<unsigned long long>(result.traced),
                static_cast<unsigned long long>(result.trace_mismatches),
                options.trace_json.empty() ? "" : ", spans in ",
                options.trace_json.c_str());
  }

  if (report) {
    MetricsRegistry registry;
    result.ExportTo(&registry);
    if (scrape_port > 0) {
      HttpResponse response;
      std::vector<PromSample> samples;
      std::string error;
      if (HttpGet(options.host, static_cast<std::uint16_t>(scrape_port),
                  "/metrics", &response) &&
          response.status == 200 &&
          ParsePrometheusText(response.body, &samples, &error)) {
        FoldStageGauges(samples, &registry);
      } else {
        std::fprintf(stderr,
                     "flare_loadgen: stage-gauge scrape of %s:%d failed%s%s\n",
                     options.host.c_str(), scrape_port,
                     error.empty() ? "" : ": ", error.c_str());
      }
    }
    BenchJsonWriter writer(*report);
    writer.Echo("sessions", static_cast<double>(options.sessions));
    writer.Echo("arrival_rate_per_s", options.arrival_rate_per_s);
    writer.Echo("mean_hold_s", options.mean_hold_s);
    writer.Echo("seed", static_cast<double>(options.seed));
    writer.Echo("time_scale", options.time_scale);
    const std::string path = BenchJsonPath(*report);
    if (!writer.Export(path, registry)) {
      std::fprintf(stderr, "flare_loadgen: cannot write %s\n", path.c_str());
      return 2;
    }
    std::printf("wrote %s\n", path.c_str());
  }

  if (!result.completed) {
    std::fprintf(stderr, "flare_loadgen: replay did not complete cleanly\n");
    return 1;
  }
  return 0;
}
