// Core of the flare_top CLI: parse a Prometheus/OpenMetrics exposition
// (the telemetry server's /metrics body) and the /healthz JSON document,
// assemble a per-cell live view, and render it as an aligned terminal
// table or a machine-readable JSON object.
//
// Lives in tools/ (not src/) because it is a consumer of the telemetry
// plane, not part of the simulation; split from flare_top.cpp so
// tests/telemetry_test.cpp can round-trip render/parse without a process.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "util/json.h"

namespace flare {

/// One exposition sample: `name{label="value",...} 42`.
struct PromSample {
  std::string name;
  /// Sorted by label name (std::map) for deterministic comparisons.
  std::map<std::string, std::string> labels;
  double value = 0.0;
};

/// Parse exposition text into samples. Comment (#) and blank lines are
/// skipped; label values undo the OpenMetrics escapes (\\, \", \n).
/// Returns false (with a line-numbered *error) on a malformed line.
bool ParsePrometheusText(const std::string& text,
                         std::vector<PromSample>* out,
                         std::string* error = nullptr);

/// One cell's row of the live table, filled from flare_qoe_* /
/// flare_health_healthy samples carrying a cell="N" label.
struct CellRow {
  int cell = 0;
  double sessions = 0.0;
  double played = 0.0;
  double avg_bitrate_bps = 0.0;
  double avg_qoe = 0.0;
  double jain = 1.0;
  double stalls = 0.0;
  double stall_ratio = 0.0;
  double blocking_probability = 0.0;
  bool healthy = true;
};

/// Everything one refresh shows: run header from /healthz, runner and
/// telemetry-plane scalars plus per-cell rows from /metrics.
struct TopSnapshot {
  // --- /healthz.
  std::string status = "unknown";  // starting | ok | alarming | unknown
  bool healthy = false;
  std::string scenario;
  double sim_time_s = 0.0;
  double duration_s = 0.0;
  double progress_pct = 0.0;
  double epochs = 0.0;
  double epoch_rate_hz = 0.0;
  double sim_speedup = 0.0;
  int cells = 0;
  int workers = 0;
  double warnings = 0.0;
  // --- /metrics.
  bool have_barrier_wait = false;
  double barrier_wait_p99_ms = 0.0;
  double events_published = 0.0;
  double events_dropped = 0.0;
  double scrapes = 0.0;
  std::vector<CellRow> rows;  // sorted by cell id

  /// One control-plane request stage's latency quantiles, from the
  /// daemon's flare_svc_oneapi_stage_<stage>_<p50|p95|p99>_us gauges.
  /// Present only when the scraped process is a tracing flare_oneapid —
  /// simulation runs render no control-plane section at all.
  struct StageRow {
    std::string stage;
    double p50_us = 0.0;
    double p95_us = 0.0;
    double p99_us = 0.0;
  };
  std::vector<StageRow> stage_rows;  // request-pipeline order
};

/// Assemble the view. Either input may be absent (null healthz / empty
/// samples) — missing facts keep their defaults so a partially-scraped
/// server still renders.
TopSnapshot BuildTopSnapshot(const std::vector<PromSample>& samples,
                             const JsonValue* healthz);

/// Aligned table, one row per cell, no ANSI escapes (the CLI owns the
/// screen-clearing).
std::string RenderTopTable(const TopSnapshot& snap);

/// Machine-readable dump for --json: a single JSON object that parses
/// back with util/json.h.
std::string RenderTopJson(const TopSnapshot& snap);

}  // namespace flare
