// flare_report: cross-run regression reporting over the repo's structured
// run outputs.
//
//   flare_report <run.json> [<run.json> ...] [key=value ...]
//
// Inputs may be standardized BENCH_*.json envelopes, raw BaiTraceSink /
// MetricsRegistry exports, or google-benchmark JSON. The first input (or
// baseline=<path>) is the baseline; every other input is compared against
// it. Watched QoE metrics gate the exit code:
//
//   0  loaded fine, no watched-metric regression
//   1  usage / IO / parse error
//   3  at least one watched metric regressed past its threshold
//
// Knobs:
//   baseline=<path>     baseline run (default: first positional input)
//   md=<path>           write the markdown report here (default: stdout)
//   csv=<path>          also write a flat label,metric,value CSV
//   trajectory=<path>   append one JSONL line per run
//                       (default bench_results/trajectory.jsonl; "none"
//                       disables)
//   watch=<specs>       comma/semicolon-separated metric:up|down[:PCT]
//                       overrides the default watch list (QoE headliners
//                       + fig9.multicell.workers8.overhead_pct:down)
//   threshold=<pct>     default threshold for the built-in watch list (5)
#include <cstdio>
#include <ctime>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "report_core.h"

namespace flare {
namespace {

constexpr const char* kUsage = R"(usage: flare_report <run.json> [<run.json> ...] [key=value ...]

Loads structured run outputs (BENCH_*.json envelopes, BaiTraceSink /
MetricsRegistry exports, google-benchmark JSON), prints a markdown
comparison of every run against the baseline, and exits non-zero when a
watched metric regresses.

knobs:
  baseline=<path>    baseline run (default: first positional input)
  md=<path>          markdown report destination (default: stdout)
  csv=<path>         flat label,metric,value CSV destination
  trajectory=<path>  JSONL trajectory to append to
                     (default bench_results/trajectory.jsonl, none=off)
  watch=<specs>      metric:up|down[:PCT], comma/semicolon separated
  threshold=<pct>    threshold for the default watch list (default 5)
                     (defaults: Fig 6/7 QoE headliners, plus runtime
                     overhead fig9.multicell.workers8.overhead_pct:down)

exit codes: 0 ok, 1 usage/IO error, 3 watched-metric regression
)";

std::vector<std::string> SplitList(const std::string& text) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : text) {
    if (c == ',' || c == ';') {
      if (!current.empty()) parts.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) parts.push_back(current);
  return parts;
}

int Main(int argc, char** argv) {
  std::vector<std::string> inputs;
  std::string baseline_path;
  std::string md_path;
  std::string csv_path;
  std::string trajectory_path = "bench_results/trajectory.jsonl";
  std::string watch_text;
  double threshold_pct = 5.0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h" || arg == "help") {
      std::fputs(kUsage, stdout);
      return 0;
    }
    const std::size_t eq = arg.find('=');
    const std::string key = eq == std::string::npos ? "" : arg.substr(0, eq);
    if (key == "baseline") {
      baseline_path = arg.substr(eq + 1);
    } else if (key == "md") {
      md_path = arg.substr(eq + 1);
    } else if (key == "csv") {
      csv_path = arg.substr(eq + 1);
    } else if (key == "trajectory") {
      trajectory_path = arg.substr(eq + 1);
    } else if (key == "watch") {
      watch_text = arg.substr(eq + 1);
    } else if (key == "threshold") {
      try {
        threshold_pct = std::stod(arg.substr(eq + 1));
      } catch (...) {
        std::fprintf(stderr, "flare_report: bad threshold '%s'\n",
                     arg.c_str());
        return 1;
      }
    } else if (eq != std::string::npos &&
               key.find('/') == std::string::npos &&
               key.find('.') == std::string::npos) {
      // A bare word before '=' is a mistyped knob; paths (with '/' or an
      // extension dot) fall through as positional inputs.
      std::fprintf(stderr, "flare_report: unknown knob '%s'\n%s",
                   arg.c_str(), kUsage);
      return 1;
    } else {
      inputs.push_back(arg);
    }
  }
  if (!baseline_path.empty()) {
    inputs.insert(inputs.begin(), baseline_path);
  }
  if (inputs.empty()) {
    std::fputs(kUsage, stderr);
    return 1;
  }

  std::vector<WatchSpec> watches;
  if (watch_text.empty()) {
    watches = DefaultWatches(threshold_pct);
  } else {
    for (const std::string& spec : SplitList(watch_text)) {
      WatchSpec watch;
      std::string error;
      if (!ParseWatchSpec(spec, &watch, &error)) {
        std::fprintf(stderr, "flare_report: %s\n", error.c_str());
        return 1;
      }
      watches.push_back(watch);
    }
  }

  std::vector<RunSummary> runs;
  for (const std::string& path : inputs) {
    RunSummary run;
    std::string error;
    if (!LoadRunSummary(path, &run, &error)) {
      std::fprintf(stderr, "flare_report: %s\n", error.c_str());
      return 1;
    }
    runs.push_back(run);
  }

  std::vector<RunComparison> comparisons;
  bool regression = false;
  for (std::size_t i = 1; i < runs.size(); ++i) {
    comparisons.push_back(Compare(runs[0], runs[i], watches));
    regression = regression || comparisons.back().HasRegression();
  }

  std::ostringstream markdown;
  WriteMarkdownReport(markdown, runs, comparisons);
  if (md_path.empty()) {
    std::fputs(markdown.str().c_str(), stdout);
  } else {
    std::ofstream out(md_path);
    if (!out) {
      std::fprintf(stderr, "flare_report: cannot write %s\n",
                   md_path.c_str());
      return 1;
    }
    out << markdown.str();
    std::printf("markdown report written to %s\n", md_path.c_str());
  }

  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    if (!out) {
      std::fprintf(stderr, "flare_report: cannot write %s\n",
                   csv_path.c_str());
      return 1;
    }
    WriteCsvReport(out, runs);
    std::printf("csv report written to %s\n", csv_path.c_str());
  }

  if (!trajectory_path.empty() && trajectory_path != "none") {
    if (!AppendTrajectory(trajectory_path, runs,
                          static_cast<long long>(std::time(nullptr)))) {
      std::fprintf(stderr, "flare_report: cannot append to %s\n",
                   trajectory_path.c_str());
      return 1;
    }
    std::printf("%zu run(s) appended to %s\n", runs.size(),
                trajectory_path.c_str());
  }

  if (regression) {
    std::fprintf(stderr,
                 "flare_report: watched-metric regression detected\n");
    return 3;
  }
  return 0;
}

}  // namespace
}  // namespace flare

int main(int argc, char** argv) { return flare::Main(argc, argv); }
