#include "trace_core.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <ostream>
#include <set>
#include <sstream>

namespace flare {
namespace {

/// Stage keys re-read from server request-span args, timeline order plus
/// the end-to-end total. "admit" is attributed on its own admit_request
/// spans (client_info, not per-assignment), so it has no column here.
const char* const kStageKeys[] = {"recv_us",   "parse_us",  "queue_wait_us",
                                  "solve_us",  "encode_us", "outbox_drain_us",
                                  "total_us"};
const char* const kStageLabels[] = {"recv",   "parse",  "queue_wait",
                                    "solve",  "encode", "outbox_drain",
                                    "total"};
constexpr int kNumStages = 7;

double NumberField(const JsonValue& args, const char* key) {
  const JsonValue* v = args.Find(key);
  return (v != nullptr && v->is_number()) ? v->AsNumber() : 0.0;
}

std::string StringField(const JsonValue& args, const char* key) {
  const JsonValue* v = args.Find(key);
  return (v != nullptr && v->is_string()) ? v->AsString() : std::string();
}

/// Nearest-rank quantile over an already-sorted ascending sample vector.
double NearestRank(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  const std::size_t idx = rank == 0 ? 0 : rank - 1;
  return sorted[std::min(idx, sorted.size() - 1)];
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Compact number rendering for the re-emitted trace: integers stay
/// integers, fractions keep µs precision to the ns without trailing zeros
/// (matches SpanTracer's own FormatMicros style).
std::string FormatNumber(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  std::string s = buf;
  while (!s.empty() && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s;
}

/// Re-serialize a parsed JsonValue (args payloads in the merged trace).
void WriteJsonValue(std::ostream& out, const JsonValue& v) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull:
      out << "null";
      break;
    case JsonValue::Kind::kBool:
      out << (v.AsBool() ? "true" : "false");
      break;
    case JsonValue::Kind::kNumber:
      out << FormatNumber(v.AsNumber());
      break;
    case JsonValue::Kind::kString:
      out << '"' << EscapeJson(v.AsString()) << '"';
      break;
    case JsonValue::Kind::kArray: {
      out << '[';
      bool first = true;
      for (const JsonValue& item : v.items()) {
        if (!first) out << ',';
        first = false;
        WriteJsonValue(out, item);
      }
      out << ']';
      break;
    }
    case JsonValue::Kind::kObject: {
      out << '{';
      bool first = true;
      for (const auto& member : v.members()) {
        if (!first) out << ',';
        first = false;
        out << '"' << EscapeJson(member.first) << "\":";
        WriteJsonValue(out, member.second);
      }
      out << '}';
      break;
    }
  }
}

const JsonValue* TraceEvents(const JsonValue& doc) {
  const JsonValue* events = doc.Find("traceEvents");
  return (events != nullptr && events->is_array()) ? events : nullptr;
}

/// Emit one event from a source doc into the merged stream, shifting
/// non-metadata timestamps by `shift_us`. process_name metadata is
/// dropped (the merged trace names the processes itself).
void WriteShiftedEvent(std::ostream& out, const JsonValue& event,
                       double shift_us, bool* first) {
  const JsonValue* ph = event.Find("ph");
  const std::string phase = ph != nullptr ? ph->AsString() : std::string();
  if (phase == "M") {
    const JsonValue* name = event.Find("name");
    if (name != nullptr && name->AsString() == "process_name") return;
  }
  if (!*first) out << ",\n";
  *first = false;
  out << "  {";
  bool first_member = true;
  for (const auto& member : event.members()) {
    if (!first_member) out << ',';
    first_member = false;
    out << '"' << EscapeJson(member.first) << "\":";
    if (member.first == "ts" && phase != "M" && member.second.is_number()) {
      out << FormatNumber(member.second.AsNumber() + shift_us);
    } else {
      WriteJsonValue(out, member.second);
    }
  }
  out << '}';
}

void WriteProcessMeta(std::ostream& out, int pid, const char* name,
                      bool* first) {
  if (!*first) out << ",\n";
  *first = false;
  out << "  {\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":" << pid
      << ",\"tid\":0,\"args\":{\"name\":\"" << name << "\"}}";
}

}  // namespace

bool LoadTraceDoc(const std::string& path, TraceDoc* out, std::string* error) {
  out->spans.clear();
  if (!ParseJsonFile(path, &out->raw, error)) return false;
  const JsonValue* events = TraceEvents(out->raw);
  if (events == nullptr) {
    if (error != nullptr) *error = path + ": no traceEvents array";
    return false;
  }
  for (const JsonValue& event : events->items()) {
    const JsonValue* ph = event.Find("ph");
    if (ph == nullptr || ph->AsString() != "X") continue;
    TraceSpanRecord span;
    span.name = StringField(event, "name");
    span.cat = StringField(event, "cat");
    span.ts_us = NumberField(event, "ts");
    span.dur_us = NumberField(event, "dur");
    span.pid = static_cast<int>(NumberField(event, "pid"));
    span.tid = static_cast<int>(NumberField(event, "tid"));
    const JsonValue* args = event.Find("args");
    if (args != nullptr && args->is_object()) {
      span.trace_hex = StringField(*args, "trace");
      span.cause = StringField(*args, "cause");
      span.recv_us = NumberField(*args, "recv_us");
      span.parse_us = NumberField(*args, "parse_us");
      span.queue_wait_us = NumberField(*args, "queue_wait_us");
      span.solve_us = NumberField(*args, "solve_us");
      span.encode_us = NumberField(*args, "encode_us");
      span.outbox_drain_us = NumberField(*args, "outbox_drain_us");
      span.total_us = NumberField(*args, "total_us");
      span.t0_us = NumberField(*args, "t0_us");
      span.t3_us = NumberField(*args, "t3_us");
      span.srx_us = NumberField(*args, "srx_us");
      span.stx_us = NumberField(*args, "stx_us");
      span.turnaround_us = NumberField(*args, "turnaround_us");
    }
    span.is_server_request = span.name == "request" && span.cat == "svc";
    span.is_client_request = span.name == "request" && span.cat == "client";
    out->spans.push_back(std::move(span));
  }
  return true;
}

ClockOffset EstimateClockOffset(const TraceDoc& client) {
  ClockOffset best;
  for (const TraceSpanRecord& span : client.spans) {
    if (!span.is_client_request) continue;
    // Without echoed server stamps (old daemon / untraced server) there is
    // nothing to align against.
    if (span.srx_us == 0.0 && span.stx_us == 0.0) continue;
    const double rtt_us =
        (span.t3_us - span.t0_us) - (span.stx_us - span.srx_us);
    if (rtt_us < 0.0) continue;
    ++best.samples;
    if (!best.valid || rtt_us < best.min_rtt_us) {
      best.valid = true;
      best.min_rtt_us = rtt_us;
      best.offset_us =
          ((span.srx_us - span.t0_us) + (span.stx_us - span.t3_us)) / 2.0;
    }
  }
  return best;
}

TraceAnalysis AnalyzeTraces(const TraceDoc& server, const TraceDoc& client) {
  TraceAnalysis analysis;
  analysis.offset = EstimateClockOffset(client);

  std::map<std::string, const TraceSpanRecord*> server_by_trace;
  std::vector<double> stage_samples[kNumStages];
  for (const TraceSpanRecord& span : server.spans) {
    if (!span.is_server_request) continue;
    ++analysis.server_requests;
    const double phases[kNumStages] = {
        span.recv_us,   span.parse_us,  span.queue_wait_us, span.solve_us,
        span.encode_us, span.outbox_drain_us, span.total_us};
    for (int i = 0; i < kNumStages; ++i) {
      stage_samples[i].push_back(phases[i]);
      if (phases[i] < 0.0) ++analysis.phase_violations;
    }
    if (span.trace_hex.empty() ||
        !server_by_trace.emplace(span.trace_hex, &span).second) {
      ++analysis.duplicate_trace_ids;
    }
  }

  std::set<std::string> matched_ids;
  for (const TraceSpanRecord& span : client.spans) {
    if (!span.is_client_request) continue;
    ++analysis.client_requests;
    if (span.turnaround_us < 0.0) ++analysis.phase_violations;
    const auto it = server_by_trace.find(span.trace_hex);
    if (it == server_by_trace.end()) {
      ++analysis.orphan_client;
      continue;
    }
    ++analysis.matched;
    matched_ids.insert(span.trace_hex);
    // The server-side pipeline is strictly inside the client-observed
    // turnaround; allow 5% + 200µs for the two clocks ticking at slightly
    // different rates and coarse scheduler stamps.
    const TraceSpanRecord& srv = *it->second;
    const double server_sum = srv.recv_us + srv.parse_us + srv.queue_wait_us +
                              srv.solve_us + srv.encode_us +
                              srv.outbox_drain_us;
    if (server_sum > span.turnaround_us * 1.05 + 200.0) {
      ++analysis.sum_exceeds_turnaround;
    }
  }
  for (const auto& entry : server_by_trace) {
    if (matched_ids.count(entry.first) == 0) ++analysis.orphan_server;
  }

  for (int i = 0; i < kNumStages; ++i) {
    std::sort(stage_samples[i].begin(), stage_samples[i].end());
    StageStats stats;
    stats.stage = kStageLabels[i];
    stats.count = stage_samples[i].size();
    stats.p50_us = NearestRank(stage_samples[i], 0.50);
    stats.p95_us = NearestRank(stage_samples[i], 0.95);
    stats.p99_us = NearestRank(stage_samples[i], 0.99);
    stats.max_us = stage_samples[i].empty() ? 0.0 : stage_samples[i].back();
    analysis.stages.push_back(std::move(stats));
  }

  if (analysis.matched == 0) {
    analysis.problems.push_back("no matched request spans");
  }
  if (analysis.orphan_client > 0) {
    analysis.problems.push_back(
        "client spans whose trace id the server never recorded: " +
        std::to_string(analysis.orphan_client));
  }
  if (analysis.duplicate_trace_ids > 0) {
    analysis.problems.push_back("duplicate/empty server trace ids: " +
                                std::to_string(analysis.duplicate_trace_ids));
  }
  if (analysis.phase_violations > 0) {
    analysis.problems.push_back("negative phase durations: " +
                                std::to_string(analysis.phase_violations));
  }
  if (analysis.sum_exceeds_turnaround > 0) {
    analysis.problems.push_back(
        "server phase sums exceeding client turnaround: " +
        std::to_string(analysis.sum_exceeds_turnaround));
  }
  analysis.valid = analysis.problems.empty();
  return analysis;
}

std::string RenderStageTable(const TraceAnalysis& analysis) {
  std::ostringstream out;
  char line[160];
  std::snprintf(line, sizeof(line), "%-14s %8s %10s %10s %10s %10s\n", "stage",
                "count", "p50_us", "p95_us", "p99_us", "max_us");
  out << line;
  for (const StageStats& s : analysis.stages) {
    std::snprintf(line, sizeof(line), "%-14s %8llu %10.1f %10.1f %10.1f %10.1f\n",
                  s.stage.c_str(), static_cast<unsigned long long>(s.count),
                  s.p50_us, s.p95_us, s.p99_us, s.max_us);
    out << line;
  }
  return out.str();
}

void WriteMergedTrace(std::ostream& out, const TraceDoc& server,
                      const TraceDoc& client, double offset_us) {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  WriteProcessMeta(out, 1, "flare_oneapid", &first);
  WriteProcessMeta(out, 2, "flare_loadgen", &first);
  const JsonValue* server_events = TraceEvents(server.raw);
  if (server_events != nullptr) {
    for (const JsonValue& event : server_events->items()) {
      WriteShiftedEvent(out, event, 0.0, &first);
    }
  }
  const JsonValue* client_events = TraceEvents(client.raw);
  if (client_events != nullptr) {
    for (const JsonValue& event : client_events->items()) {
      WriteShiftedEvent(out, event, offset_us, &first);
    }
  }
  out << "\n]}\n";
}

}  // namespace flare
