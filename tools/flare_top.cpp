// flare_top — live view of a running simulation via its telemetry plane.
//
// Polls GET /metrics and GET /healthz on a scenario_runner / bench
// started with telemetry_port=N and renders a refreshing per-cell table
// (sessions, mean bitrate, QoE, Jain fairness, stalls, blocking %) plus
// run-level progress, epoch rate and barrier-wait tail. `--once` renders
// a single frame; `--json` emits the machine-readable snapshot instead
// (the CI smoke job runs `flare_top port=... --once --json`).
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "netio/http_client.h"
#include "top_core.h"
#include "util/json.h"

namespace {

using namespace flare;

void PrintUsage(std::FILE* out) {
  std::fprintf(out, R"(usage: flare_top port=N [key=value ...] [flags]

Live per-cell view of a run serving telemetry (telemetry_port=N).

Keys:
  port=N             telemetry port to poll (required)
  host=ADDR          telemetry host (127.0.0.1)
  interval_ms=N      refresh period (2000)
Flags:
  --once             render one frame and exit
  --json             emit the snapshot as one JSON object (implies no
                     screen clearing; combine with --once for scripts)
  --help             this text
)");
}

/// One poll: scrape both endpoints and build the view. Returns false
/// when the server is unreachable (both GETs failed).
bool Poll(const std::string& host, std::uint16_t port, TopSnapshot* snap,
          std::string* error) {
  HttpResponse metrics;
  HttpResponse healthz;
  const bool got_metrics = HttpGet(host, port, "/metrics", &metrics);
  const bool got_healthz = HttpGet(host, port, "/healthz", &healthz);
  if (!got_metrics && !got_healthz) {
    *error = "cannot reach http://" + host + ":" + std::to_string(port);
    return false;
  }
  std::vector<PromSample> samples;
  if (got_metrics && metrics.status == 200) {
    std::string parse_error;
    if (!ParsePrometheusText(metrics.body, &samples, &parse_error)) {
      *error = "/metrics: " + parse_error;
      return false;
    }
  }
  JsonValue health_json;
  const JsonValue* health = nullptr;
  // /healthz deliberately serves 503 while alarming (or starting) — the
  // body is valid JSON either way.
  if (got_healthz && ParseJson(healthz.body, &health_json)) {
    health = &health_json;
  }
  *snap = BuildTopSnapshot(samples, health);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = -1;
  int interval_ms = 2000;
  bool once = false;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      return 0;
    }
    if (arg == "--once") {
      once = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg.rfind("host=", 0) == 0) {
      host = arg.substr(5);
    } else if (arg.rfind("port=", 0) == 0) {
      port = std::atoi(arg.c_str() + 5);
    } else if (arg.rfind("interval_ms=", 0) == 0) {
      interval_ms = std::atoi(arg.c_str() + 12);
    } else {
      std::fprintf(stderr, "flare_top: unknown argument '%s'\n\n",
                   arg.c_str());
      PrintUsage(stderr);
      return 1;
    }
  }
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "flare_top: port=N is required (1-65535)\n\n");
    PrintUsage(stderr);
    return 1;
  }
  if (interval_ms < 100) interval_ms = 100;

  for (;;) {
    TopSnapshot snap;
    std::string error;
    const bool ok = Poll(host, static_cast<std::uint16_t>(port), &snap,
                         &error);
    if (!ok && once) {
      std::fprintf(stderr, "flare_top: %s\n", error.c_str());
      return 1;
    }
    if (json) {
      std::printf("%s\n", RenderTopJson(snap).c_str());
    } else {
      // Clear + home between frames; a dead server shows as a sticky
      // "waiting" line rather than an exit (the run may not be up yet).
      if (!once) std::printf("\x1b[2J\x1b[H");
      if (ok) {
        std::fputs(RenderTopTable(snap).c_str(), stdout);
      } else {
        std::printf("flare_top: %s (retrying)\n", error.c_str());
      }
    }
    std::fflush(stdout);
    if (once) break;
    usleep(static_cast<useconds_t>(interval_ms) * 1000);
  }
  return 0;
}
