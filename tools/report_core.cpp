#include "report_core.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <ostream>

#include "core/rate_controller.h"
#include "obs/span_trace.h"
#include "util/csv.h"

namespace flare {
namespace {

void Put(RunSummary* out, const std::string& key, double value) {
  if (!std::isfinite(value)) return;
  out->metrics[key] = value;
}

void PutNumber(RunSummary* out, const std::string& key,
               const JsonValue* value) {
  if (value == nullptr) return;
  if (value->is_number()) Put(out, key, value->AsNumber());
  if (value->is_bool()) Put(out, key, value->AsBool() ? 1.0 : 0.0);
}

/// {"counters": {...}, "gauges": {...}, "histograms": {name: {count,
/// mean, p50, p95, p99, ...}}} -> prefix.counters.<name> etc. Null
/// aggregates (empty histograms) are skipped, not zero-filled.
void FlattenRegistry(const JsonValue& registry, const std::string& prefix,
                     RunSummary* out) {
  for (const char* family : {"counters", "gauges"}) {
    const JsonValue* section = registry.Find(family);
    if (section == nullptr || !section->is_object()) continue;
    for (const auto& [name, value] : section->members()) {
      PutNumber(out, prefix + family + "." + name, &value);
    }
  }
  const JsonValue* histograms = registry.Find("histograms");
  if (histograms != nullptr && histograms->is_object()) {
    for (const auto& [name, histogram] : histograms->members()) {
      if (!histogram.is_object()) continue;
      const std::string base = prefix + "histograms." + name + ".";
      for (const char* field : {"count", "mean", "p50", "p95", "p99"}) {
        PutNumber(out, base + field, histogram.Find(field));
      }
    }
  }
}

/// One QoE aggregate object (a cell row or the summary): every numeric
/// member becomes prefix.<k>; rung_change_causes fan out as
/// prefix.cause.<name>, zero-filled over the stable DecisionCause table so
/// a cause that stops firing shows up as a 0, not a missing metric.
void FlattenQoeAggregate(const JsonValue& agg, const std::string& prefix,
                         RunSummary* out) {
  for (const char* name : AllDecisionCauseNames()) {
    Put(out, prefix + "cause." + name, 0.0);
  }
  for (const auto& [key, value] : agg.members()) {
    if (key == "cell") continue;
    if (key == "rung_change_causes" && value.is_object()) {
      for (const auto& [cause, count] : value.members()) {
        PutNumber(out, prefix + "cause." + cause, &count);
      }
      continue;
    }
    PutNumber(out, prefix + key, &value);
  }
}

void FlattenQoe(const JsonValue& qoe, RunSummary* out) {
  const JsonValue* sessions = qoe.Find("sessions");
  if (sessions != nullptr && sessions->is_array()) {
    Put(out, "qoe.sessions", static_cast<double>(sessions->items().size()));
  }
  const JsonValue* summary = qoe.Find("summary");
  if (summary != nullptr && summary->is_object()) {
    FlattenQoeAggregate(*summary, "qoe.summary.", out);
  }
  const JsonValue* cells = qoe.Find("cells");
  if (cells != nullptr && cells->is_array()) {
    for (const JsonValue& cell : cells->items()) {
      const JsonValue* id = cell.Find("cell");
      if (id == nullptr || !id->is_number()) continue;
      const std::string prefix =
          "qoe.cell" + std::to_string(static_cast<int>(id->AsNumber())) +
          ".";
      FlattenQoeAggregate(cell, prefix, out);
    }
  }
}

void FlattenPlayers(const JsonValue& players, RunSummary* out) {
  double bitrate_sum = 0.0;
  double qoe_sum = 0.0;
  double stalls = 0.0;
  const double n = static_cast<double>(players.items().size());
  for (const JsonValue& p : players.items()) {
    const JsonValue* bitrate = p.Find("avg_bitrate_bps");
    const JsonValue* qoe = p.Find("qoe");
    const JsonValue* stall = p.Find("stalls");
    if (bitrate != nullptr) bitrate_sum += bitrate->AsNumber();
    if (qoe != nullptr) qoe_sum += qoe->AsNumber();
    if (stall != nullptr) stalls += stall->AsNumber();
  }
  Put(out, "players.count", n);
  if (n > 0.0) {
    Put(out, "players.avg_bitrate_bps", bitrate_sum / n);
    Put(out, "players.qoe", qoe_sum / n);
    Put(out, "players.stalls", stalls);
  }
}

/// google-benchmark --benchmark_format=json.
void FlattenGoogleBenchmark(const JsonValue& root, RunSummary* out) {
  const JsonValue* benchmarks = root.Find("benchmarks");
  if (benchmarks == nullptr || !benchmarks->is_array()) return;
  for (const JsonValue& b : benchmarks->items()) {
    const JsonValue* name = b.Find("name");
    if (name == nullptr || !name->is_string()) continue;
    const std::string base = "bench." + name->AsString() + ".";
    PutNumber(out, base + "real_time", b.Find("real_time"));
    PutNumber(out, base + "cpu_time", b.Find("cpu_time"));
    PutNumber(out, base + "iterations", b.Find("iterations"));
  }
}

/// The payload inside the envelope (or a legacy top-level document).
void FlattenPayload(const JsonValue& payload, RunSummary* out) {
  if (payload.Find("benchmarks") != nullptr) {
    FlattenGoogleBenchmark(payload, out);
    return;
  }
  if (payload.Find("counters") != nullptr &&
      payload.Find("histograms") != nullptr) {
    FlattenRegistry(payload, "metrics.", out);
    return;
  }
  // BaiTraceSink export.
  const JsonValue* metrics = payload.Find("metrics");
  if (metrics != nullptr && metrics->is_object()) {
    FlattenRegistry(*metrics, "metrics.", out);
  }
  const JsonValue* qoe = payload.Find("qoe");
  if (qoe != nullptr && qoe->is_object()) FlattenQoe(*qoe, out);
  const JsonValue* health = payload.Find("run_health");
  if (health != nullptr && health->is_object()) {
    PutNumber(out, "health.healthy", health->Find("healthy"));
    const JsonValue* warnings = health->Find("warnings");
    if (warnings != nullptr && warnings->is_array()) {
      Put(out, "health.warnings",
          static_cast<double>(warnings->items().size()));
    }
  }
  const JsonValue* players = payload.Find("players");
  if (players != nullptr && players->is_array()) {
    FlattenPlayers(*players, out);
  }
  const JsonValue* bai = payload.Find("bai_trace");
  if (bai != nullptr && bai->is_array()) {
    Put(out, "bai_trace.rows", static_cast<double>(bai->items().size()));
  }
}

std::string Stem(const std::string& path) {
  return std::filesystem::path(path).stem().string();
}

}  // namespace

void FlattenRun(const JsonValue& root, RunSummary* out) {
  const JsonValue* version = root.Find("schema_version");
  const JsonValue* run = root.Find("run");
  if (version != nullptr && version->is_number() && run != nullptr) {
    out->schema_version = static_cast<int>(version->AsNumber());
    const JsonValue* scenario = root.Find("scenario");
    if (scenario != nullptr && scenario->is_string()) {
      out->scenario = scenario->AsString();
    }
    // Optional provenance section; legacy envelopes simply lack it.
    const JsonValue* host = root.Find("host");
    if (host != nullptr && host->is_object()) {
      const JsonValue* sha = host->Find("git_sha");
      if (sha != nullptr && sha->is_string()) out->git_sha = sha->AsString();
      const JsonValue* name = host->Find("hostname");
      if (name != nullptr && name->is_string()) {
        out->hostname = name->AsString();
      }
      const JsonValue* hw = host->Find("hardware_concurrency");
      if (hw != nullptr && hw->is_number()) {
        out->hardware_concurrency = static_cast<int>(hw->AsNumber());
      }
    }
    FlattenPayload(*run, out);
    return;
  }
  FlattenPayload(root, out);
}

bool LoadRunSummary(const std::string& path, RunSummary* out,
                    std::string* error) {
  *out = RunSummary{};
  out->path = path;
  out->label = Stem(path);
  JsonValue root;
  if (!ParseJsonFile(path, &root, error)) return false;
  if (!root.is_object()) {
    if (error != nullptr) *error = path + ": top-level value is not an object";
    return false;
  }
  FlattenRun(root, out);
  if (out->metrics.empty()) {
    if (error != nullptr) {
      *error = path + ": no recognizable metrics "
               "(expected a BENCH envelope, trace/registry export, or "
               "google-benchmark JSON)";
    }
    return false;
  }
  return true;
}

bool ParseWatchSpec(const std::string& text, WatchSpec* out,
                    std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) {
      *error = "bad watch spec '" + text + "': " + why +
               " (expected metric:up[:PCT] or metric:down[:PCT])";
    }
    return false;
  };
  const std::size_t first = text.find(':');
  if (first == std::string::npos || first == 0) {
    return fail("missing direction");
  }
  out->metric = text.substr(0, first);
  std::string rest = text.substr(first + 1);
  std::string direction = rest;
  const std::size_t second = rest.find(':');
  out->threshold_pct = 5.0;
  if (second != std::string::npos) {
    direction = rest.substr(0, second);
    const std::string pct = rest.substr(second + 1);
    char* end = nullptr;
    out->threshold_pct = std::strtod(pct.c_str(), &end);
    if (end == pct.c_str() || *end != '\0' || out->threshold_pct < 0.0) {
      return fail("bad threshold '" + pct + "'");
    }
  }
  if (direction == "up") {
    out->higher_is_better = true;
  } else if (direction == "down") {
    out->higher_is_better = false;
  } else {
    return fail("bad direction '" + direction + "'");
  }
  return true;
}

std::vector<WatchSpec> DefaultWatches(double threshold_pct) {
  std::vector<WatchSpec> watches;
  for (const char* up : {"qoe.summary.avg_bitrate_bps", "qoe.summary.avg_qoe",
                         "qoe.summary.jain_avg_bitrate",
                         "players.avg_bitrate_bps", "players.qoe"}) {
    watches.push_back({up, true, threshold_pct});
  }
  watches.push_back({"qoe.summary.stall_ratio", false, threshold_pct});
  // Parallel-runtime honesty gate (bench_fig9_scaling): the 8-worker
  // epoch wall clock relative to serial, flattened from the BENCH
  // envelope's registry (gauge fig9.multicell.workers8.overhead_pct).
  // Lower is better — an overhead increase past the threshold exits 3
  // exactly like a QoE regression.
  watches.push_back({"metrics.gauges.fig9.multicell.workers8.overhead_pct",
                     false, threshold_pct});
  // Batched-solver latency gate (bench_optimizer's ladder export): tail
  // solve time for one 10k-flow cell under the SoA sweep. Lower is
  // better — a p99 increase past the threshold exits 3.
  watches.push_back({"metrics.gauges.optimizer.batch.flows10k.p99_us",
                     false, threshold_pct});
  // Telemetry zero-cost-when-off gate (bench_optimizer's
  // BM_TelemetryOverhead): the disabled publish hook must stay a null
  // check, a few ns. Single-digit-ns timings are noisy, so the gate only
  // trips on a blowup (>= 2x), never on jitter.
  watches.push_back({"metrics.gauges.obs.telemetry.disabled_hook_ns",
                     false, std::max(threshold_pct, 100.0)});
  // Control-plane SLO gates (flare_loadgen report= against a live
  // flare_oneapid): assignment turnaround tail and session blocking
  // rate over a churned workload. Lower is better for both — a p99
  // latency or blocking-rate increase past the threshold exits 3.
  watches.push_back({"metrics.gauges.svc.oneapi.assign_turnaround.p99_us",
                     false, threshold_pct});
  watches.push_back({"metrics.gauges.svc.oneapi.blocking_rate", false,
                     threshold_pct});
  // Per-stage tail-attribution gates (flare_loadgen scrape_port= folds
  // the daemon's svc.oneapi.stage.* quantile gauges into the same BENCH
  // file): where inside the pipeline the turnaround tail lives. solve is
  // the algorithmic budget, queue_wait the BAI batching delay — a p99
  // increase in either past the threshold exits 3 before the end-to-end
  // turnaround watch would notice.
  watches.push_back({"metrics.gauges.svc.oneapi.stage.solve.p99_us", false,
                     threshold_pct});
  watches.push_back({"metrics.gauges.svc.oneapi.stage.queue_wait.p99_us",
                     false, threshold_pct});
  return watches;
}

bool RunComparison::HasRegression() const {
  for (const MetricDelta& d : deltas) {
    if (d.regressed) return true;
  }
  return false;
}

RunComparison Compare(const RunSummary& baseline,
                      const RunSummary& candidate,
                      const std::vector<WatchSpec>& watches) {
  RunComparison cmp;
  cmp.baseline_label = baseline.label;
  cmp.candidate_label = candidate.label;
  const auto watch_for = [&](const std::string& metric) -> const WatchSpec* {
    for (const WatchSpec& w : watches) {
      if (w.metric == metric) return &w;
    }
    return nullptr;
  };
  for (const auto& [metric, base] : baseline.metrics) {
    const auto it = candidate.metrics.find(metric);
    if (it == candidate.metrics.end()) continue;
    MetricDelta d;
    d.metric = metric;
    d.baseline = base;
    d.candidate = it->second;
    d.delta_pct = base != 0.0
                      ? (d.candidate - base) / std::abs(base) * 100.0
                      : 0.0;
    if (const WatchSpec* w = watch_for(metric)) {
      d.watched = true;
      // Ratios against a zero/negative baseline are meaningless; such
      // metrics are shown but never gate.
      if (base > 0.0) {
        const double scale = w->threshold_pct / 100.0;
        d.regressed = w->higher_is_better
                          ? d.candidate < base * (1.0 - scale)
                          : d.candidate > base * (1.0 + scale);
      }
    }
    cmp.deltas.push_back(d);
  }
  for (const WatchSpec& w : watches) {
    const bool in_base = baseline.metrics.count(w.metric) > 0;
    const bool in_cand = candidate.metrics.count(w.metric) > 0;
    if (in_base != in_cand) cmp.missing_watched.push_back(w.metric);
  }
  return cmp;
}

namespace {

std::string Cell(double value) { return FormatNumber(value); }

void WriteComparisonTable(std::ostream& out, const RunComparison& cmp,
                          bool watched_only) {
  out << "| metric | " << cmp.baseline_label << " | " << cmp.candidate_label
      << " | delta % | status |\n";
  out << "|---|---:|---:|---:|---|\n";
  for (const MetricDelta& d : cmp.deltas) {
    if (watched_only && !d.watched) continue;
    out << "| `" << d.metric << "` | " << Cell(d.baseline) << " | "
        << Cell(d.candidate) << " | " << Cell(d.delta_pct) << " | "
        << (d.regressed ? "**REGRESSED**" : (d.watched ? "ok" : ""))
        << " |\n";
  }
}

}  // namespace

void WriteMarkdownReport(std::ostream& out,
                         const std::vector<RunSummary>& runs,
                         const std::vector<RunComparison>& comparisons) {
  out << "# flare_report\n\n## Runs\n\n";
  out << "| label | scenario | schema | metrics | source |\n";
  out << "|---|---|---:|---:|---|\n";
  for (const RunSummary& run : runs) {
    out << "| " << run.label << " | "
        << (run.scenario.empty() ? "-" : run.scenario) << " | "
        << run.schema_version << " | " << run.metrics.size() << " | `"
        << run.path << "` |\n";
  }
  for (const RunComparison& cmp : comparisons) {
    out << "\n## " << cmp.baseline_label << " vs " << cmp.candidate_label
        << (cmp.HasRegression() ? " — REGRESSION" : "") << "\n\n";
    out << "### Watched metrics\n\n";
    WriteComparisonTable(out, cmp, /*watched_only=*/true);
    for (const std::string& metric : cmp.missing_watched) {
      out << "\n> watched metric `" << metric
          << "` is present in only one run — not gated\n";
    }
    out << "\n<details><summary>All shared metrics ("
        << cmp.deltas.size() << ")</summary>\n\n";
    WriteComparisonTable(out, cmp, /*watched_only=*/false);
    out << "\n</details>\n";
  }
}

void WriteCsvReport(std::ostream& out, const std::vector<RunSummary>& runs) {
  out << "label,metric,value\n";
  for (const RunSummary& run : runs) {
    for (const auto& [metric, value] : run.metrics) {
      out << CsvField(run.label) << ',' << CsvField(metric) << ','
          << FormatNumber(value) << '\n';
    }
  }
}

void WriteTrajectoryLine(std::ostream& out, const RunSummary& run,
                         long long recorded_unix) {
  out << "{\"schema_version\": " << run.schema_version
      << ", \"scenario\": " << JsonQuote(run.scenario)
      << ", \"label\": " << JsonQuote(run.label)
      << ", \"source\": " << JsonQuote(run.path)
      << ", \"recorded_unix\": " << recorded_unix;
  // Envelope-sourced provenance; omitted for artifacts without it so old
  // trajectory consumers see unchanged lines for unchanged inputs.
  if (!run.git_sha.empty()) {
    out << ", \"git_sha\": " << JsonQuote(run.git_sha);
  }
  if (!run.hostname.empty()) {
    out << ", \"hostname\": " << JsonQuote(run.hostname);
  }
  if (run.hardware_concurrency > 0) {
    out << ", \"hardware_concurrency\": " << run.hardware_concurrency;
  }
  out << ", \"metrics\": {";
  bool first = true;
  for (const auto& [metric, value] : run.metrics) {
    if (!first) out << ", ";
    first = false;
    out << JsonQuote(metric) << ": " << JsonNumber(value);
  }
  out << "}}\n";
}

bool AppendTrajectory(const std::string& path,
                      const std::vector<RunSummary>& runs,
                      long long recorded_unix) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
  }
  std::ofstream out(path, std::ios::app);
  if (!out) return false;
  for (const RunSummary& run : runs) {
    WriteTrajectoryLine(out, run, recorded_unix);
  }
  return static_cast<bool>(out);
}

}  // namespace flare
