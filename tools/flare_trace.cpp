// flare_trace: merge daemon + loadgen request traces and attribute tail
// latency per pipeline stage.
//
// Inputs are the two Chrome trace-event files written by
// `flare_oneapid trace_json=` and `flare_loadgen trace_json=` for the
// same run. The tool estimates the clock offset between the two
// processes from the srx/stx timestamps the daemon echoed onto each
// assignment (NTP-style midpoint at the minimum-RTT request), prints a
// per-stage latency table and the cross-process match summary, and can
// write one merged Perfetto timeline (`out=`) plus a flare_report-
// compatible gauge file (`report=`).
//
// `validate=1` turns the span-schema checks into the exit status: 0 when
// the merged trace is coherent (matched spans exist, no client orphans,
// no negative phases, server phase sums within the measured turnaround),
// 1 when any check fails. CI runs the loopback smoke in this mode.
#include <cstdio>
#include <fstream>
#include <string>

#include "trace_core.h"
#include "util/config.h"

namespace {

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: flare_trace server=PATH client=PATH [key=value ...]\n"
      "  server=PATH    daemon trace (flare_oneapid trace_json=)\n"
      "  client=PATH    loadgen trace (flare_loadgen trace_json=)\n"
      "  out=PATH       write the merged Perfetto timeline here\n"
      "  report=PATH    write stage p50/p95/p99 gauges as flare_report\n"
      "                 input (metrics.gauges.svc.oneapi.stage.*)\n"
      "  validate=0|1   exit 1 when the span-schema checks fail (0)\n"
      "exit: 0 ok, 1 validation failed, 2 usage or IO error\n");
}

bool WriteReport(const std::string& path,
                 const flare::TraceAnalysis& analysis) {
  std::ofstream out(path);
  if (!out) return false;
  out << "{\n  \"schema_version\": 1,\n  \"scenario\": \"flare_trace\",\n"
      << "  \"metrics\": {\n    \"counters\": {\n"
      << "      \"svc.oneapi.trace.matched\": " << analysis.matched << ",\n"
      << "      \"svc.oneapi.trace.orphan_client\": "
      << analysis.orphan_client << ",\n"
      << "      \"svc.oneapi.trace.orphan_server\": "
      << analysis.orphan_server << "\n    },\n    \"gauges\": {\n";
  bool first = true;
  for (const flare::StageStats& s : analysis.stages) {
    const struct { const char* q; double v; } quantiles[] = {
        {"p50", s.p50_us}, {"p95", s.p95_us}, {"p99", s.p99_us}};
    for (const auto& q : quantiles) {
      if (!first) out << ",\n";
      first = false;
      out << "      \"svc.oneapi.stage." << s.stage << "." << q.q
          << "_us\": " << q.v;
    }
  }
  if (analysis.offset.valid) {
    out << ",\n      \"svc.oneapi.trace.clock_offset_us\": "
        << analysis.offset.offset_us
        << ",\n      \"svc.oneapi.trace.min_rtt_us\": "
        << analysis.offset.min_rtt_us;
  }
  out << "\n    }\n  }\n}\n";
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  flare::Config config = flare::Config::FromArgs(argc, argv);
  const auto server_path = config.GetString("server");
  const auto client_path = config.GetString("client");
  if (!server_path || !client_path) {
    PrintUsage();
    return 2;
  }

  std::string error;
  flare::TraceDoc server;
  if (!flare::LoadTraceDoc(*server_path, &server, &error)) {
    std::fprintf(stderr, "flare_trace: server trace: %s\n", error.c_str());
    return 2;
  }
  flare::TraceDoc client;
  if (!flare::LoadTraceDoc(*client_path, &client, &error)) {
    std::fprintf(stderr, "flare_trace: client trace: %s\n", error.c_str());
    return 2;
  }

  const flare::TraceAnalysis analysis = flare::AnalyzeTraces(server, client);

  std::printf("flare_trace: server=%llu client=%llu matched=%llu "
              "orphan_client=%llu orphan_server=%llu\n",
              static_cast<unsigned long long>(analysis.server_requests),
              static_cast<unsigned long long>(analysis.client_requests),
              static_cast<unsigned long long>(analysis.matched),
              static_cast<unsigned long long>(analysis.orphan_client),
              static_cast<unsigned long long>(analysis.orphan_server));
  if (analysis.offset.valid) {
    std::printf("clock offset: %+.1f us (min RTT %.1f us over %d samples)\n",
                analysis.offset.offset_us, analysis.offset.min_rtt_us,
                analysis.offset.samples);
  } else {
    std::printf("clock offset: unavailable (no echoed server timestamps)\n");
  }
  std::printf("%s", flare::RenderStageTable(analysis).c_str());
  for (const std::string& problem : analysis.problems) {
    std::printf("problem: %s\n", problem.c_str());
  }

  if (const auto out_path = config.GetString("out")) {
    std::ofstream out(*out_path);
    if (!out) {
      std::fprintf(stderr, "flare_trace: cannot open %s\n", out_path->c_str());
      return 2;
    }
    flare::WriteMergedTrace(out, server, client,
                            analysis.offset.valid ? analysis.offset.offset_us
                                                  : 0.0);
    if (!out.good()) {
      std::fprintf(stderr, "flare_trace: write failed: %s\n",
                   out_path->c_str());
      return 2;
    }
    std::printf("merged trace: %s\n", out_path->c_str());
  }
  if (const auto report_path = config.GetString("report")) {
    if (!WriteReport(*report_path, analysis)) {
      std::fprintf(stderr, "flare_trace: cannot write %s\n",
                   report_path->c_str());
      return 2;
    }
    std::printf("stage report: %s\n", report_path->c_str());
  }

  if (config.GetBool("validate", false) && !analysis.valid) {
    std::fprintf(stderr, "flare_trace: validation FAILED\n");
    return 1;
  }
  return 0;
}
