// flare_oneapid — the standalone networked OneAPI control plane.
//
// Serves the client-info / bitrate-assignment / statistics-report
// protocol (svc/frame.h framing over the net/messages codec) on a real
// TCP port: the same Algorithm 1 BAI loop and admission control the
// simulator runs in-process, packaged as the operator-side daemon the
// paper deploys (Figure 1). With telemetry_port= set, the PR 8 live
// plane (/metrics, /healthz, /events, flare_top) observes the daemon
// exactly as it observes a simulation run.
//
// Drive it with tools/flare_loadgen (deterministic churned sessions,
// SLO measurement) or any client speaking the frame protocol.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "churn/admission.h"
#include "obs/flight_recorder.h"
#include "obs/telemetry_server.h"
#include "svc/oneapi_service.h"
#include "util/config.h"

namespace {

using namespace flare;

volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

void PrintUsage(std::FILE* out) {
  std::fprintf(out, R"(usage: flare_oneapid [key=value ...]

Standalone OneAPI control-plane server (frame protocol over TCP).

Keys:
  port=N               listen port (default 9470; 0 = ephemeral)
  bind=ADDR            bind address (127.0.0.1)
  bai_ms=N             bitrate assignment interval, ms (1000)
  num_rbs=N            cell RB budget per TTI (50)
  n_data=N             data flows sharing the cell (0)
  gbr_headroom=F       GBR = F * assigned rate (1.1)
  smoothing=F          e_u EWMA weight (0.1)
  bits_per_rb=F        connect-time efficiency estimate (100)
  admission=POLICY     admit-all | capacity-threshold | utility-drop
  capacity_threshold=F kCapacityThreshold RB-fraction cap (0.9)
  max_sessions=N       hard session cap, 0 = unlimited (0)
  telemetry_port=N     attach the live telemetry plane (off)
  trace_json=PATH      per-request phase spans as Perfetto JSON, written
                       at shutdown; merge with the loadgen's trace via
                       tools/flare_trace (off; off = byte-identical wire)
  flight_json=PATH     dump the flight recorder (slow-request exemplars)
                       here at shutdown (off; needs trace_json=)
  duration_s=F         exit after F seconds, 0 = run until signal (0)
Flags:
  --help               this text
)");
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) {
      PrintUsage(stdout);
      return 0;
    }
  }
  const Config config = Config::FromArgs(argc, argv);

  OneApiServiceOptions options;
  options.bind_address =
      config.GetString("bind").value_or(std::string("127.0.0.1"));
  options.port = static_cast<std::uint16_t>(config.GetInt("port", 9470));
  options.bai_ms = config.GetInt("bai_ms", 1000);
  options.num_rbs = config.GetInt("num_rbs", 50);
  options.n_data_flows = config.GetInt("n_data", 0);
  options.gbr_headroom = config.GetDouble("gbr_headroom", 1.1);
  options.efficiency_smoothing = config.GetDouble("smoothing", 0.1);
  options.default_bits_per_rb = config.GetDouble("bits_per_rb", 100.0);
  options.max_sessions =
      static_cast<std::size_t>(config.GetInt("max_sessions", 0));
  if (const auto policy = config.GetString("admission")) {
    const auto parsed = ParseAdmissionPolicy(*policy);
    if (!parsed) {
      std::fprintf(stderr, "flare_oneapid: unknown admission policy %s\n",
                   policy->c_str());
      return 2;
    }
    options.admission.policy = *parsed;
  }
  options.admission.capacity_threshold =
      config.GetDouble("capacity_threshold", 0.9);

  // Request tracing: FlightRecorder receives the worst-K slow-request
  // exemplars per window; with trace_json unset the service never
  // constructs a tracer and the wire stays byte-identical.
  FlightRecorder flight;
  const std::string trace_json =
      config.GetString("trace_json").value_or(std::string());
  const std::string flight_json =
      config.GetString("flight_json").value_or(std::string());
  if (!trace_json.empty()) {
    options.trace_json = trace_json;
    options.flight_recorder = &flight;
  } else if (!flight_json.empty()) {
    std::fprintf(stderr, "flare_oneapid: flight_json= needs trace_json=\n");
    return 2;
  }

  TelemetryServer::Options telemetry_options;
  telemetry_options.bind_address = options.bind_address;
  telemetry_options.port =
      static_cast<std::uint16_t>(config.GetInt("telemetry_port", 0));
  TelemetryServer telemetry(telemetry_options);
  if (config.GetInt("telemetry_port", 0) > 0) {
    if (!telemetry.Start()) {
      std::fprintf(stderr, "flare_oneapid: cannot bind telemetry port %d\n",
                   config.GetInt("telemetry_port", 0));
      return 2;
    }
    options.telemetry = &telemetry;
  }

  OneApiService service(std::move(options));
  if (!service.Start()) {
    std::fprintf(stderr, "flare_oneapid: cannot bind %s:%d\n",
                 config.GetString("bind").value_or("127.0.0.1").c_str(),
                 config.GetInt("port", 9470));
    return 2;
  }
  std::printf("flare_oneapid listening on port %u (bai_ms=%d)\n",
              service.port(), config.GetInt("bai_ms", 1000));
  if (telemetry.running()) {
    std::printf("telemetry on port %u (/metrics /healthz; flare_top port=%u)\n",
                telemetry.port(), telemetry.port());
  }
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  const double duration_s = config.GetDouble("duration_s", 0.0);
  const auto start = std::chrono::steady_clock::now();
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (duration_s > 0.0 &&
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
                .count() >= duration_s) {
      break;
    }
  }

  service.Stop();
  telemetry.Stop();
  if (!trace_json.empty()) {
    std::printf("trace: %s (%llu finalized requests)\n", trace_json.c_str(),
                static_cast<unsigned long long>(service.traced_requests()));
    if (!flight_json.empty() &&
        !flight.DumpPostmortem(flight_json, "shutdown")) {
      std::fprintf(stderr, "flare_oneapid: cannot write %s\n",
                   flight_json.c_str());
    }
  }
  std::printf(
      "flare_oneapid done: %llu connections, "
      "%llu bais, %llu assignments (%llu dropped), %llu admission rejects, "
      "%llu overload rejects\n",
      static_cast<unsigned long long>(service.connections_accepted()),
      static_cast<unsigned long long>(service.bais()),
      static_cast<unsigned long long>(service.assignments_sent()),
      static_cast<unsigned long long>(service.assignments_dropped()),
      static_cast<unsigned long long>(service.admission_rejects()),
      static_cast<unsigned long long>(service.overload_rejects()));
  return 0;
}
