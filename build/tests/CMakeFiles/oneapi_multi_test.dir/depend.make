# Empty dependencies file for oneapi_multi_test.
# This may be replaced when dependencies are built.
