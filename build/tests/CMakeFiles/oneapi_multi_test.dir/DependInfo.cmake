
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/oneapi_multi_test.cpp" "tests/CMakeFiles/oneapi_multi_test.dir/oneapi_multi_test.cpp.o" "gcc" "tests/CMakeFiles/oneapi_multi_test.dir/oneapi_multi_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scenario/CMakeFiles/flare_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/flare_net.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/flare_core.dir/DependInfo.cmake"
  "/root/repo/build/src/abr/CMakeFiles/flare_abr.dir/DependInfo.cmake"
  "/root/repo/build/src/has/CMakeFiles/flare_has.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/flare_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/lte/CMakeFiles/flare_lte.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/flare_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/flare_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
