file(REMOVE_RECURSE
  "CMakeFiles/oneapi_multi_test.dir/oneapi_multi_test.cpp.o"
  "CMakeFiles/oneapi_multi_test.dir/oneapi_multi_test.cpp.o.d"
  "oneapi_multi_test"
  "oneapi_multi_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oneapi_multi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
