file(REMOVE_RECURSE
  "CMakeFiles/lte_phy_test.dir/lte_phy_test.cpp.o"
  "CMakeFiles/lte_phy_test.dir/lte_phy_test.cpp.o.d"
  "lte_phy_test"
  "lte_phy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lte_phy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
