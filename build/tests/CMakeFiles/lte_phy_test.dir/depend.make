# Empty dependencies file for lte_phy_test.
# This may be replaced when dependencies are built.
