file(REMOVE_RECURSE
  "CMakeFiles/experiment_util_test.dir/experiment_util_test.cpp.o"
  "CMakeFiles/experiment_util_test.dir/experiment_util_test.cpp.o.d"
  "experiment_util_test"
  "experiment_util_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/experiment_util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
