# Empty dependencies file for experiment_util_test.
# This may be replaced when dependencies are built.
