# Empty dependencies file for uplink_test.
# This may be replaced when dependencies are built.
