file(REMOVE_RECURSE
  "CMakeFiles/uplink_test.dir/uplink_test.cpp.o"
  "CMakeFiles/uplink_test.dir/uplink_test.cpp.o.d"
  "uplink_test"
  "uplink_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uplink_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
