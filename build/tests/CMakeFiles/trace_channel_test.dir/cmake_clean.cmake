file(REMOVE_RECURSE
  "CMakeFiles/trace_channel_test.dir/trace_channel_test.cpp.o"
  "CMakeFiles/trace_channel_test.dir/trace_channel_test.cpp.o.d"
  "trace_channel_test"
  "trace_channel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_channel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
