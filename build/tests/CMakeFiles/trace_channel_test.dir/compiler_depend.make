# Empty compiler generated dependencies file for trace_channel_test.
# This may be replaced when dependencies are built.
