file(REMOVE_RECURSE
  "CMakeFiles/rate_controller_test.dir/rate_controller_test.cpp.o"
  "CMakeFiles/rate_controller_test.dir/rate_controller_test.cpp.o.d"
  "rate_controller_test"
  "rate_controller_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rate_controller_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
