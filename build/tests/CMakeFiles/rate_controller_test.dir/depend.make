# Empty dependencies file for rate_controller_test.
# This may be replaced when dependencies are built.
