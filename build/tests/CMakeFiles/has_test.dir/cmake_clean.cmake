file(REMOVE_RECURSE
  "CMakeFiles/has_test.dir/has_test.cpp.o"
  "CMakeFiles/has_test.dir/has_test.cpp.o.d"
  "has_test"
  "has_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/has_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
