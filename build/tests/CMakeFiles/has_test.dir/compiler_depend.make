# Empty compiler generated dependencies file for has_test.
# This may be replaced when dependencies are built.
