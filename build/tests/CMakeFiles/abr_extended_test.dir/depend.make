# Empty dependencies file for abr_extended_test.
# This may be replaced when dependencies are built.
