file(REMOVE_RECURSE
  "CMakeFiles/abr_extended_test.dir/abr_extended_test.cpp.o"
  "CMakeFiles/abr_extended_test.dir/abr_extended_test.cpp.o.d"
  "abr_extended_test"
  "abr_extended_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abr_extended_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
