file(REMOVE_RECURSE
  "CMakeFiles/paper_math_test.dir/paper_math_test.cpp.o"
  "CMakeFiles/paper_math_test.dir/paper_math_test.cpp.o.d"
  "paper_math_test"
  "paper_math_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_math_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
