# Empty compiler generated dependencies file for paper_math_test.
# This may be replaced when dependencies are built.
