file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_relaxation.dir/bench_fig8_relaxation.cpp.o"
  "CMakeFiles/bench_fig8_relaxation.dir/bench_fig8_relaxation.cpp.o.d"
  "bench_fig8_relaxation"
  "bench_fig8_relaxation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_relaxation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
