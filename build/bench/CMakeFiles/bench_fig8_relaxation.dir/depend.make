# Empty dependencies file for bench_fig8_relaxation.
# This may be replaced when dependencies are built.
