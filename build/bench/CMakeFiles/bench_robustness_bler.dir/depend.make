# Empty dependencies file for bench_robustness_bler.
# This may be replaced when dependencies are built.
