file(REMOVE_RECURSE
  "CMakeFiles/bench_robustness_bler.dir/bench_robustness_bler.cpp.o"
  "CMakeFiles/bench_robustness_bler.dir/bench_robustness_bler.cpp.o.d"
  "bench_robustness_bler"
  "bench_robustness_bler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_robustness_bler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
