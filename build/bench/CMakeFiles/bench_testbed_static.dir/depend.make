# Empty dependencies file for bench_testbed_static.
# This may be replaced when dependencies are built.
