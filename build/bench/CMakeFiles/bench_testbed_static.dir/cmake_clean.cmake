file(REMOVE_RECURSE
  "CMakeFiles/bench_testbed_static.dir/bench_testbed_static.cpp.o"
  "CMakeFiles/bench_testbed_static.dir/bench_testbed_static.cpp.o.d"
  "bench_testbed_static"
  "bench_testbed_static.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_testbed_static.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
