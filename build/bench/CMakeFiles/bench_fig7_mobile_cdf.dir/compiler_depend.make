# Empty compiler generated dependencies file for bench_fig7_mobile_cdf.
# This may be replaced when dependencies are built.
