file(REMOVE_RECURSE
  "CMakeFiles/bench_coexistence_conventional.dir/bench_coexistence_conventional.cpp.o"
  "CMakeFiles/bench_coexistence_conventional.dir/bench_coexistence_conventional.cpp.o.d"
  "bench_coexistence_conventional"
  "bench_coexistence_conventional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_coexistence_conventional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
