# Empty dependencies file for bench_coexistence_conventional.
# This may be replaced when dependencies are built.
