file(REMOVE_RECURSE
  "CMakeFiles/bench_testbed_dynamic.dir/bench_testbed_dynamic.cpp.o"
  "CMakeFiles/bench_testbed_dynamic.dir/bench_testbed_dynamic.cpp.o.d"
  "bench_testbed_dynamic"
  "bench_testbed_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_testbed_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
