# Empty dependencies file for bench_testbed_dynamic.
# This may be replaced when dependencies are built.
