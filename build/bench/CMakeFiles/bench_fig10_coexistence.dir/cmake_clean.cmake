file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_coexistence.dir/bench_fig10_coexistence.cpp.o"
  "CMakeFiles/bench_fig10_coexistence.dir/bench_fig10_coexistence.cpp.o.d"
  "bench_fig10_coexistence"
  "bench_fig10_coexistence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_coexistence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
