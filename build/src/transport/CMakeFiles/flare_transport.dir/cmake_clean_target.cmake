file(REMOVE_RECURSE
  "libflare_transport.a"
)
