# Empty dependencies file for flare_transport.
# This may be replaced when dependencies are built.
