
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/http.cpp" "src/transport/CMakeFiles/flare_transport.dir/http.cpp.o" "gcc" "src/transport/CMakeFiles/flare_transport.dir/http.cpp.o.d"
  "/root/repo/src/transport/tcp_flow.cpp" "src/transport/CMakeFiles/flare_transport.dir/tcp_flow.cpp.o" "gcc" "src/transport/CMakeFiles/flare_transport.dir/tcp_flow.cpp.o.d"
  "/root/repo/src/transport/transport_host.cpp" "src/transport/CMakeFiles/flare_transport.dir/transport_host.cpp.o" "gcc" "src/transport/CMakeFiles/flare_transport.dir/transport_host.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lte/CMakeFiles/flare_lte.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/flare_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/flare_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
