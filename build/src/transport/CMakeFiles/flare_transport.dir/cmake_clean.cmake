file(REMOVE_RECURSE
  "CMakeFiles/flare_transport.dir/http.cpp.o"
  "CMakeFiles/flare_transport.dir/http.cpp.o.d"
  "CMakeFiles/flare_transport.dir/tcp_flow.cpp.o"
  "CMakeFiles/flare_transport.dir/tcp_flow.cpp.o.d"
  "CMakeFiles/flare_transport.dir/transport_host.cpp.o"
  "CMakeFiles/flare_transport.dir/transport_host.cpp.o.d"
  "libflare_transport.a"
  "libflare_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flare_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
