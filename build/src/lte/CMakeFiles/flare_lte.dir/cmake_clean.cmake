file(REMOVE_RECURSE
  "CMakeFiles/flare_lte.dir/amc.cpp.o"
  "CMakeFiles/flare_lte.dir/amc.cpp.o.d"
  "CMakeFiles/flare_lte.dir/cell.cpp.o"
  "CMakeFiles/flare_lte.dir/cell.cpp.o.d"
  "CMakeFiles/flare_lte.dir/channel.cpp.o"
  "CMakeFiles/flare_lte.dir/channel.cpp.o.d"
  "CMakeFiles/flare_lte.dir/gbr_scheduler.cpp.o"
  "CMakeFiles/flare_lte.dir/gbr_scheduler.cpp.o.d"
  "CMakeFiles/flare_lte.dir/mobility.cpp.o"
  "CMakeFiles/flare_lte.dir/mobility.cpp.o.d"
  "CMakeFiles/flare_lte.dir/pf_scheduler.cpp.o"
  "CMakeFiles/flare_lte.dir/pf_scheduler.cpp.o.d"
  "CMakeFiles/flare_lte.dir/pss_scheduler.cpp.o"
  "CMakeFiles/flare_lte.dir/pss_scheduler.cpp.o.d"
  "CMakeFiles/flare_lte.dir/stats_reporter.cpp.o"
  "CMakeFiles/flare_lte.dir/stats_reporter.cpp.o.d"
  "CMakeFiles/flare_lte.dir/tbs_table.cpp.o"
  "CMakeFiles/flare_lte.dir/tbs_table.cpp.o.d"
  "CMakeFiles/flare_lte.dir/trace_channel.cpp.o"
  "CMakeFiles/flare_lte.dir/trace_channel.cpp.o.d"
  "libflare_lte.a"
  "libflare_lte.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flare_lte.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
