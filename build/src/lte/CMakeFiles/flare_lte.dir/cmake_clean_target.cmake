file(REMOVE_RECURSE
  "libflare_lte.a"
)
