# Empty compiler generated dependencies file for flare_lte.
# This may be replaced when dependencies are built.
