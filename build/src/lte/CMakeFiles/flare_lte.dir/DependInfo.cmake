
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lte/amc.cpp" "src/lte/CMakeFiles/flare_lte.dir/amc.cpp.o" "gcc" "src/lte/CMakeFiles/flare_lte.dir/amc.cpp.o.d"
  "/root/repo/src/lte/cell.cpp" "src/lte/CMakeFiles/flare_lte.dir/cell.cpp.o" "gcc" "src/lte/CMakeFiles/flare_lte.dir/cell.cpp.o.d"
  "/root/repo/src/lte/channel.cpp" "src/lte/CMakeFiles/flare_lte.dir/channel.cpp.o" "gcc" "src/lte/CMakeFiles/flare_lte.dir/channel.cpp.o.d"
  "/root/repo/src/lte/gbr_scheduler.cpp" "src/lte/CMakeFiles/flare_lte.dir/gbr_scheduler.cpp.o" "gcc" "src/lte/CMakeFiles/flare_lte.dir/gbr_scheduler.cpp.o.d"
  "/root/repo/src/lte/mobility.cpp" "src/lte/CMakeFiles/flare_lte.dir/mobility.cpp.o" "gcc" "src/lte/CMakeFiles/flare_lte.dir/mobility.cpp.o.d"
  "/root/repo/src/lte/pf_scheduler.cpp" "src/lte/CMakeFiles/flare_lte.dir/pf_scheduler.cpp.o" "gcc" "src/lte/CMakeFiles/flare_lte.dir/pf_scheduler.cpp.o.d"
  "/root/repo/src/lte/pss_scheduler.cpp" "src/lte/CMakeFiles/flare_lte.dir/pss_scheduler.cpp.o" "gcc" "src/lte/CMakeFiles/flare_lte.dir/pss_scheduler.cpp.o.d"
  "/root/repo/src/lte/stats_reporter.cpp" "src/lte/CMakeFiles/flare_lte.dir/stats_reporter.cpp.o" "gcc" "src/lte/CMakeFiles/flare_lte.dir/stats_reporter.cpp.o.d"
  "/root/repo/src/lte/tbs_table.cpp" "src/lte/CMakeFiles/flare_lte.dir/tbs_table.cpp.o" "gcc" "src/lte/CMakeFiles/flare_lte.dir/tbs_table.cpp.o.d"
  "/root/repo/src/lte/trace_channel.cpp" "src/lte/CMakeFiles/flare_lte.dir/trace_channel.cpp.o" "gcc" "src/lte/CMakeFiles/flare_lte.dir/trace_channel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/flare_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/flare_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
