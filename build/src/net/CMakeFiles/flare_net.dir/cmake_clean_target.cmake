file(REMOVE_RECURSE
  "libflare_net.a"
)
