# Empty compiler generated dependencies file for flare_net.
# This may be replaced when dependencies are built.
