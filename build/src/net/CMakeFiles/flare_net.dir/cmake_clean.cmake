file(REMOVE_RECURSE
  "CMakeFiles/flare_net.dir/flare_plugin.cpp.o"
  "CMakeFiles/flare_net.dir/flare_plugin.cpp.o.d"
  "CMakeFiles/flare_net.dir/handover.cpp.o"
  "CMakeFiles/flare_net.dir/handover.cpp.o.d"
  "CMakeFiles/flare_net.dir/messages.cpp.o"
  "CMakeFiles/flare_net.dir/messages.cpp.o.d"
  "CMakeFiles/flare_net.dir/oneapi_multi.cpp.o"
  "CMakeFiles/flare_net.dir/oneapi_multi.cpp.o.d"
  "CMakeFiles/flare_net.dir/oneapi_server.cpp.o"
  "CMakeFiles/flare_net.dir/oneapi_server.cpp.o.d"
  "CMakeFiles/flare_net.dir/pcrf.cpp.o"
  "CMakeFiles/flare_net.dir/pcrf.cpp.o.d"
  "libflare_net.a"
  "libflare_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flare_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
