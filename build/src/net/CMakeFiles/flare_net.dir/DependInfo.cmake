
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/flare_plugin.cpp" "src/net/CMakeFiles/flare_net.dir/flare_plugin.cpp.o" "gcc" "src/net/CMakeFiles/flare_net.dir/flare_plugin.cpp.o.d"
  "/root/repo/src/net/handover.cpp" "src/net/CMakeFiles/flare_net.dir/handover.cpp.o" "gcc" "src/net/CMakeFiles/flare_net.dir/handover.cpp.o.d"
  "/root/repo/src/net/messages.cpp" "src/net/CMakeFiles/flare_net.dir/messages.cpp.o" "gcc" "src/net/CMakeFiles/flare_net.dir/messages.cpp.o.d"
  "/root/repo/src/net/oneapi_multi.cpp" "src/net/CMakeFiles/flare_net.dir/oneapi_multi.cpp.o" "gcc" "src/net/CMakeFiles/flare_net.dir/oneapi_multi.cpp.o.d"
  "/root/repo/src/net/oneapi_server.cpp" "src/net/CMakeFiles/flare_net.dir/oneapi_server.cpp.o" "gcc" "src/net/CMakeFiles/flare_net.dir/oneapi_server.cpp.o.d"
  "/root/repo/src/net/pcrf.cpp" "src/net/CMakeFiles/flare_net.dir/pcrf.cpp.o" "gcc" "src/net/CMakeFiles/flare_net.dir/pcrf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/flare_core.dir/DependInfo.cmake"
  "/root/repo/build/src/has/CMakeFiles/flare_has.dir/DependInfo.cmake"
  "/root/repo/build/src/lte/CMakeFiles/flare_lte.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/flare_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/flare_util.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/flare_transport.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
