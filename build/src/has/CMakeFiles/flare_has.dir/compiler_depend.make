# Empty compiler generated dependencies file for flare_has.
# This may be replaced when dependencies are built.
