file(REMOVE_RECURSE
  "libflare_has.a"
)
