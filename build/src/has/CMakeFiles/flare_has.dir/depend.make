# Empty dependencies file for flare_has.
# This may be replaced when dependencies are built.
