file(REMOVE_RECURSE
  "CMakeFiles/flare_has.dir/metrics.cpp.o"
  "CMakeFiles/flare_has.dir/metrics.cpp.o.d"
  "CMakeFiles/flare_has.dir/mpd.cpp.o"
  "CMakeFiles/flare_has.dir/mpd.cpp.o.d"
  "CMakeFiles/flare_has.dir/player.cpp.o"
  "CMakeFiles/flare_has.dir/player.cpp.o.d"
  "CMakeFiles/flare_has.dir/uplink_session.cpp.o"
  "CMakeFiles/flare_has.dir/uplink_session.cpp.o.d"
  "CMakeFiles/flare_has.dir/video_session.cpp.o"
  "CMakeFiles/flare_has.dir/video_session.cpp.o.d"
  "libflare_has.a"
  "libflare_has.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flare_has.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
