
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/has/metrics.cpp" "src/has/CMakeFiles/flare_has.dir/metrics.cpp.o" "gcc" "src/has/CMakeFiles/flare_has.dir/metrics.cpp.o.d"
  "/root/repo/src/has/mpd.cpp" "src/has/CMakeFiles/flare_has.dir/mpd.cpp.o" "gcc" "src/has/CMakeFiles/flare_has.dir/mpd.cpp.o.d"
  "/root/repo/src/has/player.cpp" "src/has/CMakeFiles/flare_has.dir/player.cpp.o" "gcc" "src/has/CMakeFiles/flare_has.dir/player.cpp.o.d"
  "/root/repo/src/has/uplink_session.cpp" "src/has/CMakeFiles/flare_has.dir/uplink_session.cpp.o" "gcc" "src/has/CMakeFiles/flare_has.dir/uplink_session.cpp.o.d"
  "/root/repo/src/has/video_session.cpp" "src/has/CMakeFiles/flare_has.dir/video_session.cpp.o" "gcc" "src/has/CMakeFiles/flare_has.dir/video_session.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/transport/CMakeFiles/flare_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/flare_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/flare_util.dir/DependInfo.cmake"
  "/root/repo/build/src/lte/CMakeFiles/flare_lte.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
