file(REMOVE_RECURSE
  "CMakeFiles/flare_scenario.dir/experiment.cpp.o"
  "CMakeFiles/flare_scenario.dir/experiment.cpp.o.d"
  "CMakeFiles/flare_scenario.dir/scenario.cpp.o"
  "CMakeFiles/flare_scenario.dir/scenario.cpp.o.d"
  "libflare_scenario.a"
  "libflare_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flare_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
