file(REMOVE_RECURSE
  "libflare_scenario.a"
)
