# Empty compiler generated dependencies file for flare_scenario.
# This may be replaced when dependencies are built.
