file(REMOVE_RECURSE
  "libflare_sim.a"
)
