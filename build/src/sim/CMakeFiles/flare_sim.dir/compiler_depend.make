# Empty compiler generated dependencies file for flare_sim.
# This may be replaced when dependencies are built.
