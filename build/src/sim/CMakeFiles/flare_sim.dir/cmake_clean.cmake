file(REMOVE_RECURSE
  "CMakeFiles/flare_sim.dir/event_queue.cpp.o"
  "CMakeFiles/flare_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/flare_sim.dir/simulator.cpp.o"
  "CMakeFiles/flare_sim.dir/simulator.cpp.o.d"
  "libflare_sim.a"
  "libflare_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flare_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
