
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/optimizer.cpp" "src/core/CMakeFiles/flare_core.dir/optimizer.cpp.o" "gcc" "src/core/CMakeFiles/flare_core.dir/optimizer.cpp.o.d"
  "/root/repo/src/core/rate_controller.cpp" "src/core/CMakeFiles/flare_core.dir/rate_controller.cpp.o" "gcc" "src/core/CMakeFiles/flare_core.dir/rate_controller.cpp.o.d"
  "/root/repo/src/core/utility.cpp" "src/core/CMakeFiles/flare_core.dir/utility.cpp.o" "gcc" "src/core/CMakeFiles/flare_core.dir/utility.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lte/CMakeFiles/flare_lte.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/flare_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/flare_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
