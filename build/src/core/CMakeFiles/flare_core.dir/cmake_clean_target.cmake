file(REMOVE_RECURSE
  "libflare_core.a"
)
