# Empty compiler generated dependencies file for flare_core.
# This may be replaced when dependencies are built.
