file(REMOVE_RECURSE
  "CMakeFiles/flare_core.dir/optimizer.cpp.o"
  "CMakeFiles/flare_core.dir/optimizer.cpp.o.d"
  "CMakeFiles/flare_core.dir/rate_controller.cpp.o"
  "CMakeFiles/flare_core.dir/rate_controller.cpp.o.d"
  "CMakeFiles/flare_core.dir/utility.cpp.o"
  "CMakeFiles/flare_core.dir/utility.cpp.o.d"
  "libflare_core.a"
  "libflare_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flare_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
