
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/abr/avis.cpp" "src/abr/CMakeFiles/flare_abr.dir/avis.cpp.o" "gcc" "src/abr/CMakeFiles/flare_abr.dir/avis.cpp.o.d"
  "/root/repo/src/abr/bba.cpp" "src/abr/CMakeFiles/flare_abr.dir/bba.cpp.o" "gcc" "src/abr/CMakeFiles/flare_abr.dir/bba.cpp.o.d"
  "/root/repo/src/abr/festive.cpp" "src/abr/CMakeFiles/flare_abr.dir/festive.cpp.o" "gcc" "src/abr/CMakeFiles/flare_abr.dir/festive.cpp.o.d"
  "/root/repo/src/abr/google.cpp" "src/abr/CMakeFiles/flare_abr.dir/google.cpp.o" "gcc" "src/abr/CMakeFiles/flare_abr.dir/google.cpp.o.d"
  "/root/repo/src/abr/mpc.cpp" "src/abr/CMakeFiles/flare_abr.dir/mpc.cpp.o" "gcc" "src/abr/CMakeFiles/flare_abr.dir/mpc.cpp.o.d"
  "/root/repo/src/abr/panda.cpp" "src/abr/CMakeFiles/flare_abr.dir/panda.cpp.o" "gcc" "src/abr/CMakeFiles/flare_abr.dir/panda.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/has/CMakeFiles/flare_has.dir/DependInfo.cmake"
  "/root/repo/build/src/lte/CMakeFiles/flare_lte.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/flare_util.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/flare_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/flare_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
