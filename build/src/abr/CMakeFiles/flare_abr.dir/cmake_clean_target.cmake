file(REMOVE_RECURSE
  "libflare_abr.a"
)
