# Empty compiler generated dependencies file for flare_abr.
# This may be replaced when dependencies are built.
