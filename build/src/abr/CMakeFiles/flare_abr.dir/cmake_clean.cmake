file(REMOVE_RECURSE
  "CMakeFiles/flare_abr.dir/avis.cpp.o"
  "CMakeFiles/flare_abr.dir/avis.cpp.o.d"
  "CMakeFiles/flare_abr.dir/bba.cpp.o"
  "CMakeFiles/flare_abr.dir/bba.cpp.o.d"
  "CMakeFiles/flare_abr.dir/festive.cpp.o"
  "CMakeFiles/flare_abr.dir/festive.cpp.o.d"
  "CMakeFiles/flare_abr.dir/google.cpp.o"
  "CMakeFiles/flare_abr.dir/google.cpp.o.d"
  "CMakeFiles/flare_abr.dir/mpc.cpp.o"
  "CMakeFiles/flare_abr.dir/mpc.cpp.o.d"
  "CMakeFiles/flare_abr.dir/panda.cpp.o"
  "CMakeFiles/flare_abr.dir/panda.cpp.o.d"
  "libflare_abr.a"
  "libflare_abr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flare_abr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
