# Empty dependencies file for flare_util.
# This may be replaced when dependencies are built.
