file(REMOVE_RECURSE
  "CMakeFiles/flare_util.dir/config.cpp.o"
  "CMakeFiles/flare_util.dir/config.cpp.o.d"
  "CMakeFiles/flare_util.dir/csv.cpp.o"
  "CMakeFiles/flare_util.dir/csv.cpp.o.d"
  "CMakeFiles/flare_util.dir/logging.cpp.o"
  "CMakeFiles/flare_util.dir/logging.cpp.o.d"
  "CMakeFiles/flare_util.dir/stats.cpp.o"
  "CMakeFiles/flare_util.dir/stats.cpp.o.d"
  "libflare_util.a"
  "libflare_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flare_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
