file(REMOVE_RECURSE
  "libflare_util.a"
)
