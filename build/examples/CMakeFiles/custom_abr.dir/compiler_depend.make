# Empty compiler generated dependencies file for custom_abr.
# This may be replaced when dependencies are built.
