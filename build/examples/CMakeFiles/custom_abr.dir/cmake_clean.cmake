file(REMOVE_RECURSE
  "CMakeFiles/custom_abr.dir/custom_abr.cpp.o"
  "CMakeFiles/custom_abr.dir/custom_abr.cpp.o.d"
  "custom_abr"
  "custom_abr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_abr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
