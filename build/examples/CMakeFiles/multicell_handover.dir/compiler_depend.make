# Empty compiler generated dependencies file for multicell_handover.
# This may be replaced when dependencies are built.
