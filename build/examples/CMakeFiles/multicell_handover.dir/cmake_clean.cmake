file(REMOVE_RECURSE
  "CMakeFiles/multicell_handover.dir/multicell_handover.cpp.o"
  "CMakeFiles/multicell_handover.dir/multicell_handover.cpp.o.d"
  "multicell_handover"
  "multicell_handover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multicell_handover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
