# Empty dependencies file for vehicular_mobility.
# This may be replaced when dependencies are built.
