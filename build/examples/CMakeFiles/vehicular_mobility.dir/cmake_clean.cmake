file(REMOVE_RECURSE
  "CMakeFiles/vehicular_mobility.dir/vehicular_mobility.cpp.o"
  "CMakeFiles/vehicular_mobility.dir/vehicular_mobility.cpp.o.d"
  "vehicular_mobility"
  "vehicular_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vehicular_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
