file(REMOVE_RECURSE
  "CMakeFiles/mixed_traffic.dir/mixed_traffic.cpp.o"
  "CMakeFiles/mixed_traffic.dir/mixed_traffic.cpp.o.d"
  "mixed_traffic"
  "mixed_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
