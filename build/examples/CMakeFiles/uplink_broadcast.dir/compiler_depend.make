# Empty compiler generated dependencies file for uplink_broadcast.
# This may be replaced when dependencies are built.
