file(REMOVE_RECURSE
  "CMakeFiles/uplink_broadcast.dir/uplink_broadcast.cpp.o"
  "CMakeFiles/uplink_broadcast.dir/uplink_broadcast.cpp.o.d"
  "uplink_broadcast"
  "uplink_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uplink_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
