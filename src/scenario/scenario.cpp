#include "scenario/scenario.h"

#include <algorithm>
#include <memory>

#include "has/mpd.h"
#include "has/video_session.h"
#include "lte/gbr_scheduler.h"
#include "lte/pf_scheduler.h"
#include "lte/pss_scheduler.h"
#include "net/flare_plugin.h"
#include "net/pcef.h"
#include "net/pcrf.h"
#include "sim/simulator.h"
#include "transport/transport_host.h"
#include "util/stats.h"

namespace flare {

const char* SchemeName(Scheme scheme) {
  switch (scheme) {
    case Scheme::kFlare:
      return "FLARE";
    case Scheme::kFlareRelaxed:
      return "FLARE-relaxed";
    case Scheme::kFestive:
      return "FESTIVE";
    case Scheme::kGoogle:
      return "GOOGLE";
    case Scheme::kAvis:
      return "AVIS";
    case Scheme::kFlareNetworkOnly:
      return "FLARE-network-only";
    case Scheme::kPanda:
      return "PANDA";
    case Scheme::kMpc:
      return "MPC";
    case Scheme::kBba:
      return "BBA";
  }
  return "?";
}

namespace {

bool IsFlare(Scheme s) {
  return s == Scheme::kFlare || s == Scheme::kFlareRelaxed ||
         s == Scheme::kFlareNetworkOnly;
}

std::unique_ptr<Scheduler> MakeScheduler(const ScenarioConfig& config) {
  switch (config.scheduler) {
    case SchedulerKind::kPf:
      return std::make_unique<PfScheduler>();
    case SchedulerKind::kPss:
      return std::make_unique<PssScheduler>();
    case SchedulerKind::kTwoPhaseGbr:
      return std::make_unique<TwoPhaseGbrScheduler>();
    case SchedulerKind::kRoundRobin:
      return std::make_unique<RoundRobinScheduler>();
    case SchedulerKind::kAuto:
      break;
  }
  if (config.testbed) {
    // Femtocell wiring: FLARE added the two-phase GBR scheduler to the
    // eNB MAC; the client-side players ran over the legacy scheduler.
    if (IsFlare(config.scheme) || config.scheme == Scheme::kAvis) {
      return std::make_unique<TwoPhaseGbrScheduler>();
    }
    return std::make_unique<PfScheduler>();
  }
  // ns-3 wiring (Table III): Priority Set Scheduler for every scheme.
  return std::make_unique<PssScheduler>();
}

std::unique_ptr<ChannelModel> MakeChannel(const ScenarioConfig& config,
                                          int ue_index, int n_ues,
                                          Rng& rng) {
  switch (config.channel) {
    case ChannelKind::kStaticItbs:
      return std::make_unique<StaticItbsChannel>(config.static_itbs);
    case ChannelKind::kItbsTriangle: {
      // Per-UE phase offsets spread over the cycle (paper: "each UE starts
      // the cycle with a different offset").
      const SimTime period = FromSeconds(config.triangle_period_s);
      const SimTime offset =
          n_ues > 0 ? period * ue_index / n_ues : SimTime{0};
      return std::make_unique<ItbsOverrideChannel>(TriangleItbsSchedule(
          config.triangle_lo_itbs, config.triangle_hi_itbs, period, offset));
    }
    case ChannelKind::kPlacedStatic: {
      auto mobility = std::make_shared<StaticMobility>(
          RandomPositionInAnnulus(config.placement_min_radius_m,
                                  config.placement_max_radius_m, rng));
      return std::make_unique<FadedMobilityChannel>(
          std::move(mobility), config.radio,
          rng.Fork(0x5741 + static_cast<std::uint64_t>(ue_index)));
    }
    case ChannelKind::kMobile: {
      RandomWaypointConfig waypoint;
      waypoint.area_m = config.area_m;
      waypoint.min_speed_mps = config.min_speed_mps;
      waypoint.max_speed_mps = config.max_speed_mps;
      auto mobility = std::make_shared<RandomWaypointMobility>(
          waypoint, rng.Fork(0x4d0b + static_cast<std::uint64_t>(ue_index)));
      return std::make_unique<FadedMobilityChannel>(
          std::move(mobility), config.radio,
          rng.Fork(0xfade + static_cast<std::uint64_t>(ue_index)));
    }
  }
  return std::make_unique<StaticItbsChannel>(config.static_itbs);
}

}  // namespace

ScenarioConfig TestbedPreset(Scheme scheme) {
  ScenarioConfig config;
  config.scheme = scheme;
  config.testbed = true;
  config.duration_s = 600.0;
  config.n_video = 3;
  config.n_data = 1;
  config.num_rbs = 50;
  config.ladder_kbps = TestbedLadderKbps();
  config.segment_duration_s = 2.0;
  config.channel = ChannelKind::kStaticItbs;
  config.static_itbs = 6;  // ~4.4 Mbit/s cell; see DESIGN.md calibration
  // Table IV's alpha = 1.0 parameterizes the ns-3 experiments; the
  // testbed section leaves alpha unstated. alpha = 6 reproduces the
  // testbed operating point (FLARE parks at the 790 Kbps tier while the
  // data flow keeps a healthy share, Table I).
  config.oneapi.params.alpha = 6.0;
  return config;
}

ScenarioConfig SimStaticPreset(Scheme scheme) {
  ScenarioConfig config;
  config.scheme = scheme;
  config.testbed = false;
  config.duration_s = 1200.0;  // Table III
  config.n_video = 8;
  config.n_data = 0;
  config.num_rbs = 25;  // ns-3 LTE default (5 MHz)
  config.ladder_kbps = SimulationLadderKbps();
  config.segment_duration_s = 10.0;
  config.channel = ChannelKind::kPlacedStatic;
  config.area_m = 2000.0;
  return config;
}

ScenarioConfig SimMobilePreset(Scheme scheme) {
  ScenarioConfig config = SimStaticPreset(scheme);
  config.channel = ChannelKind::kMobile;
  return config;
}

ScenarioResult RunScenario(const ScenarioConfig& config) {
  Rng rng(config.seed);
  Simulator sim;
  sim.SetMetrics(config.metrics);

  CellConfig cell_config;
  cell_config.num_rbs = config.num_rbs;
  cell_config.target_bler = config.target_bler;
  Cell cell(sim, MakeScheduler(config), cell_config, rng.Fork(0xce11));
  cell.SetMetrics(config.metrics);
  cell.SetTraceSink(config.bai_trace);

  TransportHost transport(sim, cell);
  Pcrf pcrf;
  Pcef pcef(sim, cell, config.oneapi.downlink_latency);

  OneApiConfig oneapi_config = config.oneapi;
  oneapi_config.params.solver = config.scheme == Scheme::kFlareRelaxed
                                    ? SolverMode::kContinuousRelaxation
                                    : SolverMode::kGreedyDiscrete;
  OneApiServer oneapi(sim, cell, pcrf, pcef, oneapi_config);
  oneapi.SetObservers(config.metrics, config.bai_trace);

  AvisGateway avis_gateway(sim, cell, config.avis);

  const std::vector<double> ladder =
      config.ladder_kbps.empty() ? TestbedLadderKbps() : config.ladder_kbps;
  Mpd mpd = MakeMpd(ladder, config.segment_duration_s);
  mpd.vbr_sigma = config.vbr_sigma;

  const int n_ues =
      config.n_video + config.n_data + config.n_conventional;

  // --- Video clients.
  std::vector<std::unique_ptr<HttpClient>> https;
  std::vector<std::unique_ptr<VideoSession>> sessions;
  std::vector<FlowId> video_flows;
  // Plugins for the network-only ablation: registered with the OneAPI
  // server (so the optimizer runs and GBRs are enforced) but never
  // consulted by the player.
  std::vector<std::unique_ptr<FlarePlugin>> orphan_plugins;

  for (int i = 0; i < config.n_video; ++i) {
    const UeId ue = cell.AddUe(MakeChannel(config, i, n_ues, rng));
    TcpFlow& tcp = transport.CreateFlow(ue, FlowType::kVideo);
    video_flows.push_back(tcp.id());
    https.push_back(std::make_unique<HttpClient>(sim, tcp));

    VideoSessionConfig session_config;
    session_config.player.max_buffer_s = config.scheme == Scheme::kGoogle
                                             ? config.google_max_buffer_s
                                             : config.max_buffer_s;

    std::unique_ptr<AbrAlgorithm> abr;
    FlarePlugin* plugin = nullptr;
    switch (config.scheme) {
      case Scheme::kFlare:
      case Scheme::kFlareRelaxed: {
        auto p = std::make_unique<FlarePlugin>(tcp.id());
        plugin = p.get();
        abr = std::move(p);
        break;
      }
      case Scheme::kFestive:
        abr = std::make_unique<FestiveAbr>(
            config.festive,
            rng.Fork(0xfe57 + static_cast<std::uint64_t>(i)));
        break;
      case Scheme::kGoogle:
        abr = std::make_unique<GoogleAbr>(config.google);
        break;
      case Scheme::kAvis:
        abr = std::make_unique<AvisClientAbr>();
        break;
      case Scheme::kFlareNetworkOnly: {
        // Network side runs full FLARE; the client ignores it and adapts
        // greedily on its own (AVIS-style).
        abr = std::make_unique<AvisClientAbr>();
        orphan_plugins.push_back(
            std::make_unique<FlarePlugin>(tcp.id()));
        plugin = orphan_plugins.back().get();
        break;
      }
      case Scheme::kPanda:
        abr = std::make_unique<PandaAbr>(config.panda);
        break;
      case Scheme::kMpc:
        abr = std::make_unique<MpcAbr>(config.mpc);
        break;
      case Scheme::kBba:
        abr = std::make_unique<BbaAbr>(config.bba);
        break;
    }

    auto session = std::make_unique<VideoSession>(
        sim, *https.back(), mpd, std::move(abr), session_config);
    session->player().SetMetrics(config.metrics);

    if (plugin != nullptr) {
      // Opt-in client disclosures (Section II-B) before registration.
      if (i < static_cast<int>(config.client_theta_bps.size()) &&
          config.client_theta_bps[static_cast<std::size_t>(i)] > 0.0) {
        VideoUtilityParams utility = config.oneapi.params.utility;
        utility.theta_bps =
            config.client_theta_bps[static_cast<std::size_t>(i)];
        plugin->SetUtility(utility);
      }
      if (i < static_cast<int>(config.client_max_level.size()) &&
          config.client_max_level[static_cast<std::size_t>(i)] >= 0) {
        plugin->SetMaxLevel(
            config.client_max_level[static_cast<std::size_t>(i)]);
      }
      // The plugin is owned by the session's ABR slot; the server holds a
      // non-owning pointer, and both are torn down together below.
      oneapi.ConnectVideoClient(plugin, session->mpd());
    } else {
      pcrf.RegisterFlow(tcp.id(), FlowType::kVideo);
    }
    if (config.scheme == Scheme::kAvis) {
      avis_gateway.RegisterVideoFlow(tcp.id(), &session->mpd());
    }

    // Stagger starts so initial requests do not all collide.
    session->Start(FromSeconds(0.5 * i) +
                   FromSeconds(rng.Uniform(0.0, 0.25)));
    sessions.push_back(std::move(session));
  }

  // --- Conventional HAS players (Section V coexistence): FESTIVE players
  // whose flows the network services as plain data — no GBR, no OneAPI
  // registration as video, no interference with FLARE's video class.
  std::vector<std::unique_ptr<HttpClient>> conventional_https;
  std::vector<std::unique_ptr<VideoSession>> conventional_sessions;
  for (int i = 0; i < config.n_conventional; ++i) {
    const UeId ue = cell.AddUe(MakeChannel(
        config, config.n_video + config.n_data + i, n_ues, rng));
    TcpFlow& tcp = transport.CreateFlow(ue, FlowType::kData);
    conventional_https.push_back(std::make_unique<HttpClient>(sim, tcp));
    pcrf.RegisterFlow(tcp.id(), FlowType::kData);

    VideoSessionConfig session_config;
    session_config.player.max_buffer_s = config.max_buffer_s;
    auto session = std::make_unique<VideoSession>(
        sim, *conventional_https.back(), mpd,
        std::make_unique<FestiveAbr>(
            config.festive,
            rng.Fork(0xc0de + static_cast<std::uint64_t>(i))),
        session_config);
    session->Start(FromSeconds(0.5 * (config.n_video + i)) +
                   FromSeconds(rng.Uniform(0.0, 0.25)));
    conventional_sessions.push_back(std::move(session));
  }

  // --- Data clients (greedy iperf-style TCP).
  std::vector<FlowId> data_flows;
  for (int i = 0; i < config.n_data; ++i) {
    const UeId ue =
        cell.AddUe(MakeChannel(config, config.n_video + i, n_ues, rng));
    TcpFlow& tcp = transport.CreateFlow(ue, FlowType::kData);
    data_flows.push_back(tcp.id());
    pcrf.RegisterFlow(tcp.id(), FlowType::kData);
    if (config.scheme == Scheme::kAvis) {
      avis_gateway.RegisterDataFlow(tcp.id());
    }
    transport.MakeGreedy(tcp.id());
  }

  // --- Control plane.
  if (IsFlare(config.scheme)) oneapi.Start();
  if (config.scheme == Scheme::kAvis) avis_gateway.Start();

  // --- Optional 1 Hz series sampler (Figures 4/5).
  ScenarioResult result;
  std::vector<std::uint64_t> last_data_bytes(data_flows.size(), 0);
  if (config.sample_series) {
    sim.Every(kSecond, kSecond, [&] {
      SeriesSample sample;
      sample.t_s = ToSeconds(sim.Now());
      for (const auto& session : sessions) {
        const auto& bitrates = session->player().segment_bitrates();
        sample.video_bitrate_bps.push_back(
            bitrates.empty() ? 0.0 : bitrates.back());
        // Advance the buffer model to "now" for an accurate reading.
        session->player().AdvanceTo(sim.Now());
        sample.video_buffer_s.push_back(session->player().buffer_s());
      }
      for (std::size_t d = 0; d < data_flows.size(); ++d) {
        const std::uint64_t total = cell.total_tx_bytes(data_flows[d]);
        sample.data_throughput_bps.push_back(
            static_cast<double>(total - last_data_bytes[d]) * 8.0);
        last_data_bytes[d] = total;
      }
      result.series.push_back(std::move(sample));
    });
  }

  // --- Run.
  cell.Start();
  sim.RunUntil(FromSeconds(config.duration_s));

  // --- Collect metrics.
  std::vector<double> avg_bitrates;
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    const auto& session = sessions[i];
    session->player().AdvanceTo(sim.Now());
    ClientMetrics m = ComputeClientMetrics(*session);
    avg_bitrates.push_back(m.avg_bitrate_bps);
    result.avg_video_bitrate_bps += m.avg_bitrate_bps;
    result.avg_bitrate_changes += m.bitrate_changes;
    result.avg_rebuffer_s += m.rebuffer_time_s;
    if (config.bai_trace != nullptr) {
      PlayerSummary summary;
      summary.client = static_cast<int>(i);
      summary.flow = video_flows[i];
      summary.avg_bitrate_bps = m.avg_bitrate_bps;
      summary.switches = m.bitrate_changes;
      summary.stalls = m.rebuffer_events;
      summary.stall_s = m.rebuffer_time_s;
      summary.qoe = m.qoe;
      summary.segments = m.segments;
      config.bai_trace->RecordPlayer(summary);
    }
    result.video.push_back(m);
  }
  if (config.bai_trace != nullptr) config.bai_trace->Flush(sim.Now());
  if (!result.video.empty()) {
    const auto n = static_cast<double>(result.video.size());
    result.avg_video_bitrate_bps /= n;
    result.avg_bitrate_changes /= n;
    result.avg_rebuffer_s /= n;
  }
  result.jain_avg_bitrate = JainIndex(avg_bitrates);

  for (const auto& session : conventional_sessions) {
    session->player().AdvanceTo(sim.Now());
    result.conventional.push_back(ComputeClientMetrics(*session));
  }

  for (FlowId id : data_flows) {
    const double bps = static_cast<double>(cell.total_tx_bytes(id)) * 8.0 /
                       config.duration_s;
    result.data_throughput_bps.push_back(bps);
    result.avg_data_throughput_bps += bps;
  }
  if (!data_flows.empty()) {
    result.avg_data_throughput_bps /=
        static_cast<double>(data_flows.size());
  }

  result.solve_times_ms = oneapi.solve_times_ms();
  result.video_fractions = oneapi.video_fractions();
  return result;
}

std::vector<ScenarioResult> RunMany(const ScenarioConfig& config, int runs) {
  std::vector<ScenarioResult> results;
  results.reserve(static_cast<std::size_t>(std::max(runs, 0)));
  for (int r = 0; r < runs; ++r) {
    ScenarioConfig run_config = config;
    run_config.seed = config.seed + static_cast<std::uint64_t>(r);
    results.push_back(RunScenario(run_config));
  }
  return results;
}

}  // namespace flare
