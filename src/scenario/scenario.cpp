#include "scenario/scenario.h"

#include <algorithm>

#include "net/pcrf.h"
#include "obs/telemetry_publisher.h"
#include "scenario/scenario_world.h"
#include "sim/simulator.h"

namespace flare {

const char* SchemeName(Scheme scheme) {
  switch (scheme) {
    case Scheme::kFlare:
      return "FLARE";
    case Scheme::kFlareRelaxed:
      return "FLARE-relaxed";
    case Scheme::kFestive:
      return "FESTIVE";
    case Scheme::kGoogle:
      return "GOOGLE";
    case Scheme::kAvis:
      return "AVIS";
    case Scheme::kFlareNetworkOnly:
      return "FLARE-network-only";
    case Scheme::kPanda:
      return "PANDA";
    case Scheme::kMpc:
      return "MPC";
    case Scheme::kBba:
      return "BBA";
  }
  return "?";
}

ScenarioConfig TestbedPreset(Scheme scheme) {
  ScenarioConfig config;
  config.scheme = scheme;
  config.testbed = true;
  config.duration_s = 600.0;
  config.n_video = 3;
  config.n_data = 1;
  config.num_rbs = 50;
  config.ladder_kbps = TestbedLadderKbps();
  config.segment_duration_s = 2.0;
  config.channel = ChannelKind::kStaticItbs;
  config.static_itbs = 6;  // ~4.4 Mbit/s cell; see DESIGN.md calibration
  // Table IV's alpha = 1.0 parameterizes the ns-3 experiments; the
  // testbed section leaves alpha unstated. alpha = 6 reproduces the
  // testbed operating point (FLARE parks at the 790 Kbps tier while the
  // data flow keeps a healthy share, Table I).
  config.oneapi.params.alpha = 6.0;
  return config;
}

ScenarioConfig SimStaticPreset(Scheme scheme) {
  ScenarioConfig config;
  config.scheme = scheme;
  config.testbed = false;
  config.duration_s = 1200.0;  // Table III
  config.n_video = 8;
  config.n_data = 0;
  config.num_rbs = 25;  // ns-3 LTE default (5 MHz)
  config.ladder_kbps = SimulationLadderKbps();
  config.segment_duration_s = 10.0;
  config.channel = ChannelKind::kPlacedStatic;
  config.area_m = 2000.0;
  return config;
}

ScenarioConfig SimMobilePreset(Scheme scheme) {
  ScenarioConfig config = SimStaticPreset(scheme);
  config.channel = ChannelKind::kMobile;
  return config;
}

ScenarioResult RunScenario(const ScenarioConfig& config) {
  Simulator sim;
  Pcrf pcrf;
  ScenarioWorld world(config, sim, pcrf, Rng(config.seed));
  world.Start();
  // Live telemetry: BAI-periodic read-only publishes of the attached
  // observers. Purely additive — the event only reads state — so run
  // bytes match a telemetry-off run.
  TelemetryPublisher publisher(config.telemetry, config.telemetry_interval_ms);
  if (publisher.enabled()) {
    publisher.ConfigureRun(SchemeName(config.scheme), config.duration_s,
                           /*cells=*/1, /*workers=*/0);
    publisher.AddShard({config.metrics, config.qoe, config.health,
                        config.flight, /*metrics_prefix=*/""},
                       /*cell=*/0);
    const SimTime bai = config.oneapi.bai;
    sim.Every(bai, bai, [&publisher, &sim] {
      publisher.MaybePublish(ToSeconds(sim.Now()));
    });
  }
  sim.RunUntil(FromSeconds(config.duration_s));
  if (publisher.enabled()) publisher.PublishNow(config.duration_s);
  return world.Collect();
}

std::vector<ScenarioResult> RunMany(const ScenarioConfig& config, int runs) {
  std::vector<ScenarioResult> results;
  results.reserve(static_cast<std::size_t>(std::max(runs, 0)));
  for (int r = 0; r < runs; ++r) {
    ScenarioConfig run_config = config;
    run_config.seed = config.seed + static_cast<std::uint64_t>(r);
    results.push_back(RunScenario(run_config));
  }
  return results;
}

}  // namespace flare
