// Aggregation and printing helpers shared by the benchmark binaries: pool
// per-client metrics across runs into CDFs (the paper plots CDFs "over 160
// clients" = 8 clients x 20 runs), summarize them, and print aligned table
// rows / CDF curves to stdout next to the paper's reference numbers.
#pragma once

#include <string>
#include <vector>

#include "scenario/scenario.h"
#include "util/stats.h"

namespace flare {

/// Per-scheme pooled view over a set of runs.
struct PooledMetrics {
  Cdf avg_bitrate_kbps;    // one sample per client
  Cdf bitrate_changes;     // one sample per client
  Cdf rebuffer_s;          // one sample per client
  Cdf qoe;                 // one sample per client (composite QoE)
  Cdf data_throughput_kbps;  // one sample per data client
  std::vector<double> jain_per_run;

  double MeanBitrateKbps() const { return avg_bitrate_kbps.Mean(); }
  double MeanChanges() const { return bitrate_changes.Mean(); }
  double MeanRebufferS() const { return rebuffer_s.Mean(); }
  double MeanQoe() const { return qoe.Mean(); }
  double MeanDataThroughputKbps() const {
    return data_throughput_kbps.Mean();
  }
  double MeanJain() const;
};

PooledMetrics Pool(const std::vector<ScenarioResult>& runs);

/// Print "name: v1 v2 ..." with aligned columns.
void PrintRow(const std::string& label, const std::vector<double>& values,
              const std::vector<std::string>& headers);

/// Print a CDF as `points` (value, probability) lines, prefixed by label.
void PrintCdf(const std::string& label, const Cdf& cdf, int points = 11);

/// Environment-tunable run scaling so benches stay fast by default but can
/// reproduce the paper's full 20-run sweeps (FLARE_RUNS / FLARE_DURATION_S
/// env vars or key=value args; see util/config.h).
struct BenchScale {
  int runs;
  double duration_s;
};
BenchScale ScaleFromEnv(int default_runs, double default_duration_s,
                        int argc = 0, char** argv = nullptr);

/// Ensure ./bench_results exists and return "bench_results/<name>.csv".
std::string BenchCsvPath(const std::string& name);

/// Ensure ./bench_results exists and return
/// "bench_results/BENCH_<name>.json" — the benches' structured-metrics
/// export convention (obs registry + BAI trace), comparable across
/// harnesses and revisions.
std::string BenchJsonPath(const std::string& name);

class BaiTraceSink;
class MetricsRegistry;
class QoeAnalytics;
class RunHealthMonitor;

/// Standardized BENCH_*.json envelope shared by every bench binary:
///   {"schema_version": 1, "scenario": "<id>", "config": {<echo>},
///    "host": {"git_sha", "hostname", "hardware_concurrency"},
///    "run": <payload>}
/// The config echo is commit-invariant (scenario knobs only, no wall
/// clocks or machine facts) so tools/flare_report can compare runs across
/// revisions and flag genuine metric regressions rather than host noise.
/// Machine facts live in the separate "host" section: git_sha comes from
/// $FLARE_GIT_SHA (or CI's $GITHUB_SHA), hostname from gethostname(), and
/// hardware_concurrency from std::thread — flare_report stamps trajectory
/// lines from these fields instead of re-reading ambient state at report
/// time.
class BenchJsonWriter {
 public:
  static constexpr int kSchemaVersion = 1;

  explicit BenchJsonWriter(std::string scenario);

  /// Record a commit-invariant config knob in the echo, in call order.
  void Echo(const std::string& key, double value);
  void Echo(const std::string& key, const std::string& value);

  /// run = the trace's full structured export (metrics + run_health + qoe
  /// + bai_trace + tti_aggregates + players); null observers become null
  /// sections. Returns false if the file cannot be opened.
  bool Export(const std::string& path, const BaiTraceSink& trace,
              const MetricsRegistry* registry,
              const RunHealthMonitor* health = nullptr,
              const QoeAnalytics* qoe = nullptr) const;
  /// run = a bare registry export {"counters":..,"gauges":..,"histograms":..}.
  bool Export(const std::string& path, const MetricsRegistry& registry) const;

 private:
  void WriteEnvelopeOpen(std::ostream& out) const;

  std::string scenario_;
  /// (key, pre-rendered JSON value), in Echo() order.
  std::vector<std::pair<std::string, std::string>> config_;
};

/// Print a "paper reported / we measured" comparison line.
void PrintPaperComparison(const std::string& metric, double paper,
                          double measured);

}  // namespace flare
