#include "scenario/scenario_world.h"

#include <algorithm>
#include <utility>

#include "has/mpd.h"
#include "has/video_session.h"
#include "lte/gbr_scheduler.h"
#include "lte/pf_scheduler.h"
#include "lte/pss_scheduler.h"
#include "util/stats.h"

namespace flare {

namespace {

bool IsFlare(Scheme s) {
  return s == Scheme::kFlare || s == Scheme::kFlareRelaxed ||
         s == Scheme::kFlareNetworkOnly;
}

std::unique_ptr<Scheduler> MakeScheduler(const ScenarioConfig& config) {
  switch (config.scheduler) {
    case SchedulerKind::kPf:
      return std::make_unique<PfScheduler>();
    case SchedulerKind::kPss:
      return std::make_unique<PssScheduler>();
    case SchedulerKind::kTwoPhaseGbr:
      return std::make_unique<TwoPhaseGbrScheduler>();
    case SchedulerKind::kRoundRobin:
      return std::make_unique<RoundRobinScheduler>();
    case SchedulerKind::kAuto:
      break;
  }
  if (config.testbed) {
    // Femtocell wiring: FLARE added the two-phase GBR scheduler to the
    // eNB MAC; the client-side players ran over the legacy scheduler.
    if (IsFlare(config.scheme) || config.scheme == Scheme::kAvis) {
      return std::make_unique<TwoPhaseGbrScheduler>();
    }
    return std::make_unique<PfScheduler>();
  }
  // ns-3 wiring (Table III): Priority Set Scheduler for every scheme.
  return std::make_unique<PssScheduler>();
}

std::unique_ptr<ChannelModel> MakeChannel(const ScenarioConfig& config,
                                          int ue_index, int n_ues,
                                          Rng& rng) {
  switch (config.channel) {
    case ChannelKind::kStaticItbs:
      return std::make_unique<StaticItbsChannel>(config.static_itbs);
    case ChannelKind::kItbsTriangle: {
      // Per-UE phase offsets spread over the cycle (paper: "each UE starts
      // the cycle with a different offset").
      const SimTime period = FromSeconds(config.triangle_period_s);
      const SimTime offset =
          n_ues > 0 ? period * ue_index / n_ues : SimTime{0};
      return std::make_unique<ItbsOverrideChannel>(TriangleItbsSchedule(
          config.triangle_lo_itbs, config.triangle_hi_itbs, period, offset));
    }
    case ChannelKind::kPlacedStatic: {
      auto mobility = std::make_shared<StaticMobility>(
          RandomPositionInAnnulus(config.placement_min_radius_m,
                                  config.placement_max_radius_m, rng));
      return std::make_unique<FadedMobilityChannel>(
          std::move(mobility), config.radio,
          rng.Fork(0x5741 + static_cast<std::uint64_t>(ue_index)));
    }
    case ChannelKind::kMobile: {
      RandomWaypointConfig waypoint;
      waypoint.area_m = config.area_m;
      waypoint.min_speed_mps = config.min_speed_mps;
      waypoint.max_speed_mps = config.max_speed_mps;
      auto mobility = std::make_shared<RandomWaypointMobility>(
          waypoint, rng.Fork(0x4d0b + static_cast<std::uint64_t>(ue_index)));
      return std::make_unique<FadedMobilityChannel>(
          std::move(mobility), config.radio,
          rng.Fork(0xfade + static_cast<std::uint64_t>(ue_index)));
    }
  }
  return std::make_unique<StaticItbsChannel>(config.static_itbs);
}

CellConfig MakeCellConfig(const ScenarioConfig& config) {
  CellConfig cell_config;
  cell_config.num_rbs = config.num_rbs;
  cell_config.target_bler = config.target_bler;
  return cell_config;
}

OneApiConfig MakeOneApiConfig(const ScenarioConfig& config) {
  OneApiConfig oneapi_config = config.oneapi;
  oneapi_config.params.solver = config.scheme == Scheme::kFlareRelaxed
                                    ? SolverMode::kContinuousRelaxation
                                    : SolverMode::kGreedyDiscrete;
  // Under churn the flow set changes by one or two entries per BAI, which
  // is exactly the delta workload the warm-started incremental sweep is
  // built for; swap it in unless the config opts out.
  if (config.churn.enabled && config.churn.warm_solver &&
      oneapi_config.params.solver == SolverMode::kGreedyDiscrete) {
    oneapi_config.params.solver = SolverMode::kIncrementalSweep;
  }
  // An explicit override beats both the scheme default and the churn
  // auto-upgrade (e.g. the batched SoA sweep for metro-scale cells).
  if (config.solver_override) {
    oneapi_config.params.solver = *config.solver_override;
  }
  return oneapi_config;
}

Mpd MakeScenarioMpd(const ScenarioConfig& config) {
  const std::vector<double> ladder =
      config.ladder_kbps.empty() ? TestbedLadderKbps() : config.ladder_kbps;
  Mpd mpd = MakeMpd(ladder, config.segment_duration_s);
  mpd.vbr_sigma = config.vbr_sigma;
  return mpd;
}

}  // namespace

ScenarioWorld::ScenarioWorld(const ScenarioConfig& config, Simulator& sim,
                             Pcrf& pcrf, Rng rng)
    : config_(config),
      sim_(sim),
      pcrf_(pcrf),
      rng_(rng),
      cell_(sim_, MakeScheduler(config_), MakeCellConfig(config_),
            rng_.Fork(0xce11)),
      transport_(sim_, cell_),
      pcef_(sim_, cell_, config_.oneapi.downlink_latency),
      oneapi_(sim_, cell_, pcrf_, pcef_, MakeOneApiConfig(config_)),
      avis_gateway_(sim_, cell_, config_.avis),
      mpd_(MakeScenarioMpd(config_)) {
  sim_.SetMetrics(config_.metrics);
  cell_.SetMetrics(config_.metrics);
  cell_.SetTraceSink(config_.bai_trace);
  if (config_.span_trace != nullptr) {
    config_.span_trace->SetClock(
        [this] { return static_cast<double>(sim_.Now()); });
    config_.span_trace->set_default_pid(
        static_cast<int>(config_.oneapi.cell_tag) + 1);
    config_.span_trace->set_deterministic(config_.oneapi.deterministic_timing);
    cell_.SetSpanTracer(config_.span_trace);
  }
  if (config_.qoe != nullptr) {
    config_.qoe->set_cell(static_cast<int>(config_.oneapi.cell_tag));
  }
  if (config_.flight != nullptr) {
    config_.flight->set_cell(static_cast<int>(config_.oneapi.cell_tag));
  }
  if (config_.health != nullptr) {
    config_.health->set_cell(static_cast<int>(config_.oneapi.cell_tag));
    config_.health->SetObservers(config_.metrics, config_.span_trace,
                                 config_.flight);
  }
  oneapi_.SetObservers(config_.metrics, config_.bai_trace, config_.span_trace,
                       config_.health);
  oneapi_.SetAnalytics(config_.qoe, config_.flight);

  const Pcrf::CellTag cell_tag = config_.oneapi.cell_tag;
  const int n_ues =
      config_.n_video + config_.n_data + config_.n_conventional;

  // --- Video clients.
  for (int i = 0; i < config_.n_video; ++i) {
    const UeId ue = cell_.AddUe(MakeChannel(config_, i, n_ues, rng_));
    TcpFlow& tcp = transport_.CreateFlow(ue, FlowType::kVideo);
    video_flows_.push_back(tcp.id());
    https_.push_back(std::make_unique<HttpClient>(sim_, tcp));

    VideoSessionConfig session_config;
    session_config.player.max_buffer_s = config_.scheme == Scheme::kGoogle
                                             ? config_.google_max_buffer_s
                                             : config_.max_buffer_s;

    FlarePlugin* plugin = nullptr;
    std::unique_ptr<FlarePlugin> orphan;
    std::unique_ptr<AbrAlgorithm> abr =
        MakeVideoAbr(tcp.id(), i, &plugin, &orphan);
    if (orphan != nullptr) orphan_plugins_.push_back(std::move(orphan));

    auto session = std::make_unique<VideoSession>(
        sim_, *https_.back(), mpd_, std::move(abr), session_config);
    session->player().SetMetrics(config_.metrics);
    session->player().SetSpanTracer(config_.span_trace, i);
    session->player().SetQoeAnalytics(config_.qoe, config_.flight, i);

    if (plugin != nullptr) {
      // Opt-in client disclosures (Section II-B) before registration.
      if (i < static_cast<int>(config_.client_theta_bps.size()) &&
          config_.client_theta_bps[static_cast<std::size_t>(i)] > 0.0) {
        VideoUtilityParams utility = config_.oneapi.params.utility;
        utility.theta_bps =
            config_.client_theta_bps[static_cast<std::size_t>(i)];
        plugin->SetUtility(utility);
      }
      if (i < static_cast<int>(config_.client_max_level.size()) &&
          config_.client_max_level[static_cast<std::size_t>(i)] >= 0) {
        plugin->SetMaxLevel(
            config_.client_max_level[static_cast<std::size_t>(i)]);
      }
      // The plugin is owned by the session's ABR slot; the server holds a
      // non-owning pointer, and both are torn down together.
      oneapi_.ConnectVideoClient(plugin, session->mpd());
    } else {
      pcrf_.RegisterFlow(tcp.id(), FlowType::kVideo, cell_tag);
    }
    if (config_.scheme == Scheme::kAvis) {
      avis_gateway_.RegisterVideoFlow(tcp.id(), &session->mpd());
    }

    // Stagger starts so initial requests do not all collide.
    const SimTime start =
        FromSeconds(0.5 * i) + FromSeconds(rng_.Uniform(0.0, 0.25));
    if (config_.qoe != nullptr) {
      config_.qoe->StartSession(i, tcp.id(), ToSeconds(start),
                                QoeSessionOrigin::kStaticVideo);
    }
    session->Start(start);
    sessions_.push_back(std::move(session));
  }

  // --- Conventional HAS players (Section V coexistence): FESTIVE players
  // whose flows the network services as plain data — no GBR, no OneAPI
  // registration as video, no interference with FLARE's video class.
  for (int i = 0; i < config_.n_conventional; ++i) {
    const UeId ue = cell_.AddUe(MakeChannel(
        config_, config_.n_video + config_.n_data + i, n_ues, rng_));
    TcpFlow& tcp = transport_.CreateFlow(ue, FlowType::kData);
    conventional_https_.push_back(std::make_unique<HttpClient>(sim_, tcp));
    pcrf_.RegisterFlow(tcp.id(), FlowType::kData, cell_tag);

    VideoSessionConfig session_config;
    session_config.player.max_buffer_s = config_.max_buffer_s;
    auto session = std::make_unique<VideoSession>(
        sim_, *conventional_https_.back(), mpd_,
        std::make_unique<FestiveAbr>(
            config_.festive,
            rng_.Fork(0xc0de + static_cast<std::uint64_t>(i))),
        session_config);
    // Conventional players track QoE under their UE index, after the
    // video + data id ranges (same layout as their channel salt).
    const int session_id = config_.n_video + config_.n_data + i;
    session->player().SetQoeAnalytics(config_.qoe, config_.flight,
                                      session_id);
    const SimTime start = FromSeconds(0.5 * (config_.n_video + i)) +
                          FromSeconds(rng_.Uniform(0.0, 0.25));
    if (config_.qoe != nullptr) {
      config_.qoe->StartSession(session_id, tcp.id(), ToSeconds(start),
                                QoeSessionOrigin::kConventional);
    }
    session->Start(start);
    conventional_sessions_.push_back(std::move(session));
  }

  // --- Data clients (greedy iperf-style TCP).
  for (int i = 0; i < config_.n_data; ++i) {
    const UeId ue = cell_.AddUe(
        MakeChannel(config_, config_.n_video + i, n_ues, rng_));
    TcpFlow& tcp = transport_.CreateFlow(ue, FlowType::kData);
    data_flows_.push_back(tcp.id());
    pcrf_.RegisterFlow(tcp.id(), FlowType::kData, cell_tag);
    if (config_.scheme == Scheme::kAvis) {
      avis_gateway_.RegisterDataFlow(tcp.id());
    }
    transport_.MakeGreedy(tcp.id());
  }

  last_data_bytes_.assign(data_flows_.size(), 0);

  // --- Session churn: dynamic arrivals/departures on top of the static
  // population above. The engine draws from its own forked stream, so
  // enabling churn does not perturb any static construction draw.
  if (config_.churn.enabled) {
    if (IsFlare(config_.scheme)) {
      AdmissionConfig admission_config = config_.churn.admission;
      // The capacity/utility policies re-solve the cell's objective;
      // mirror the optimizer's parameters so "the cell's objective" means
      // the same thing in both places.
      admission_config.alpha = config_.oneapi.params.alpha;
      admission_config.max_video_fraction =
          config_.oneapi.params.max_video_fraction;
      admission_ = std::make_unique<AdmissionController>(admission_config);
      admission_->SetObservers(config_.metrics);
      oneapi_.SetAdmissionController(admission_.get());
      oneapi_.SetAdmissionCallback(
          [this](FlowId flow, bool admitted) { OnAdmission(flow, admitted); });
    }
    SessionChurnEngine::Host host;
    host.spawn = [this](SessionKind kind) {
      return SpawnDynamicSession(kind);
    };
    host.destroy = [this](int id) {
      TeardownDynamicSession(id, /*harvest=*/true);
    };
    churn_ = std::make_unique<SessionChurnEngine>(
        sim_, config_.churn, std::move(host), rng_.Fork(0xc4a2),
        static_cast<int>(cell_tag));
    churn_->SetObservers(config_.metrics, config_.span_trace, config_.health,
                         config_.oneapi.bai);
  }
}

ScenarioWorld::~ScenarioWorld() {
  if (config_.span_trace != nullptr) config_.span_trace->SetClock({});
}

void ScenarioWorld::Start() {
  // --- Control plane.
  if (IsFlare(config_.scheme)) oneapi_.Start();
  if (config_.scheme == Scheme::kAvis) avis_gateway_.Start();

  // --- Optional 1 Hz series sampler (Figures 4/5).
  if (config_.sample_series) {
    sim_.Every(kSecond, kSecond, [this] {
      SeriesSample sample;
      sample.t_s = ToSeconds(sim_.Now());
      for (const auto& session : sessions_) {
        const auto& bitrates = session->player().segment_bitrates();
        sample.video_bitrate_bps.push_back(
            bitrates.empty() ? 0.0 : bitrates.back());
        // Advance the buffer model to "now" for an accurate reading.
        session->player().AdvanceTo(sim_.Now());
        sample.video_buffer_s.push_back(session->player().buffer_s());
      }
      for (std::size_t d = 0; d < data_flows_.size(); ++d) {
        const std::uint64_t total = cell_.total_tx_bytes(data_flows_[d]);
        sample.data_throughput_bps.push_back(
            static_cast<double>(total - last_data_bytes_[d]) * 8.0);
        last_data_bytes_[d] = total;
      }
      result_.series.push_back(std::move(sample));
    });
  }

  // --- Run-health watchdogs, scanned once per BAI.
  if (config_.health != nullptr) {
    last_health_stall_s_.assign(sessions_.size(), 0.0);
    last_health_data_bytes_.assign(data_flows_.size(), 0);
    sim_.Every(config_.oneapi.bai, config_.oneapi.bai,
               [this] { HealthScan(); });
  }

  if (churn_ != nullptr) churn_->Start();
  cell_.Start();
}

std::unique_ptr<AbrAlgorithm> ScenarioWorld::MakeVideoAbr(
    FlowId flow, int salt_index, FlarePlugin** plugin_out,
    std::unique_ptr<FlarePlugin>* orphan_out) {
  *plugin_out = nullptr;
  orphan_out->reset();
  switch (config_.scheme) {
    case Scheme::kFlare:
    case Scheme::kFlareRelaxed: {
      auto plugin = std::make_unique<FlarePlugin>(flow);
      *plugin_out = plugin.get();
      return plugin;
    }
    case Scheme::kFestive:
      return std::make_unique<FestiveAbr>(
          config_.festive,
          rng_.Fork(0xfe57 + static_cast<std::uint64_t>(salt_index)));
    case Scheme::kGoogle:
      return std::make_unique<GoogleAbr>(config_.google);
    case Scheme::kAvis:
      return std::make_unique<AvisClientAbr>();
    case Scheme::kFlareNetworkOnly: {
      // Network side runs full FLARE; the client ignores it and adapts
      // greedily on its own (AVIS-style).
      *orphan_out = std::make_unique<FlarePlugin>(flow);
      *plugin_out = orphan_out->get();
      return std::make_unique<AvisClientAbr>();
    }
    case Scheme::kPanda:
      return std::make_unique<PandaAbr>(config_.panda);
    case Scheme::kMpc:
      return std::make_unique<MpcAbr>(config_.mpc);
    case Scheme::kBba:
      return std::make_unique<BbaAbr>(config_.bba);
  }
  return std::make_unique<AvisClientAbr>();
}

int ScenarioWorld::SpawnDynamicSession(SessionKind kind) {
  const int id = next_dynamic_id_++;
  const int n_static =
      config_.n_video + config_.n_data + config_.n_conventional;
  // Channel/ABR salts beyond the static population keep dynamic fading and
  // FESTIVE streams distinct from every static UE's.
  const int ue_index = n_static + id;
  const UeId ue =
      cell_.AddUe(MakeChannel(config_, ue_index, ue_index + 1, rng_));

  DynamicSession dyn;
  dyn.kind = kind;
  dyn.ue = ue;

  if (kind == SessionKind::kDataSession) {
    TcpFlow& tcp = transport_.CreateFlow(ue, FlowType::kData);
    dyn.flow = tcp.id();
    pcrf_.RegisterFlow(dyn.flow, FlowType::kData, config_.oneapi.cell_tag);
    transport_.MakeGreedy(dyn.flow);
    dyn.started = true;
  } else {
    TcpFlow& tcp = transport_.CreateFlow(ue, FlowType::kVideo);
    dyn.flow = tcp.id();

    VideoSessionConfig session_config;
    session_config.player.max_buffer_s = config_.scheme == Scheme::kGoogle
                                             ? config_.google_max_buffer_s
                                             : config_.max_buffer_s;
    FlarePlugin* plugin = nullptr;
    std::unique_ptr<FlarePlugin> orphan;
    std::unique_ptr<AbrAlgorithm> abr =
        MakeVideoAbr(dyn.flow, ue_index, &plugin, &orphan);
    dyn.orphan_plugin = std::move(orphan);
    dyn.plugin = plugin;
    dyn.http = std::make_unique<HttpClient>(sim_, tcp);
    dyn.session = std::make_unique<VideoSession>(
        sim_, *dyn.http, mpd_, std::move(abr), session_config);
    dyn.session->player().SetMetrics(config_.metrics);
    dyn.session->player().SetSpanTracer(config_.span_trace, ue_index);
    dyn.session->player().SetQoeAnalytics(config_.qoe, config_.flight,
                                          ue_index);

    if (plugin != nullptr) {
      // Registration (and admission control) completes after the OneAPI
      // uplink delay; the session starts from OnAdmission.
      oneapi_.ConnectVideoClient(plugin, dyn.session->mpd());
    } else {
      pcrf_.RegisterFlow(dyn.flow, FlowType::kVideo,
                         config_.oneapi.cell_tag);
      if (config_.qoe != nullptr) {
        config_.qoe->StartSession(ue_index, dyn.flow, ToSeconds(sim_.Now()),
                                  QoeSessionOrigin::kDynamicVideo);
      }
      dyn.session->Start(sim_.Now());
      dyn.started = true;
    }
  }

  dynamic_by_flow_[dyn.flow] = id;
  dynamic_.emplace(id, std::move(dyn));
  return id;
}

void ScenarioWorld::OnAdmission(FlowId flow, bool admitted) {
  const auto it = dynamic_by_flow_.find(flow);
  if (it == dynamic_by_flow_.end()) return;  // static flow
  const int id = it->second;
  DynamicSession& dyn = dynamic_.at(id);
  if (config_.qoe != nullptr) config_.qoe->OnAdmissionVerdict(admitted);
  if (admitted) {
    if (config_.qoe != nullptr) {
      const int n_static =
          config_.n_video + config_.n_data + config_.n_conventional;
      config_.qoe->StartSession(n_static + id, flow, ToSeconds(sim_.Now()),
                                QoeSessionOrigin::kDynamicVideo);
    }
    dyn.session->Start(sim_.Now());
    dyn.started = true;
    return;
  }
  if (churn_ != nullptr) churn_->NotifyBlocked(id);
  TeardownDynamicSession(id, /*harvest=*/false);
}

void ScenarioWorld::TeardownDynamicSession(int id, bool harvest) {
  const auto it = dynamic_.find(id);
  if (it == dynamic_.end()) return;
  DynamicSession& dyn = it->second;

  if (dyn.session != nullptr) {
    dyn.session->Stop();
    if (harvest && dyn.started) HarvestDynamicSession(id, dyn);
  }
  if (dyn.plugin != nullptr) {
    oneapi_.DisconnectVideoClient(dyn.flow);
  } else {
    pcrf_.DeregisterFlow(dyn.flow, config_.oneapi.cell_tag);
  }
  // Order matters: the session (and its scheduled events) must go before
  // the HTTP client, the client before the flow, and the flow before the
  // UE slot is released back to the cell's free list.
  dyn.session.reset();
  dyn.http.reset();
  dyn.orphan_plugin.reset();
  if (transport_.Has(dyn.flow)) transport_.DestroyFlow(dyn.flow);
  cell_.ReleaseUe(dyn.ue);
  dynamic_by_flow_.erase(dyn.flow);
  dynamic_.erase(it);
}

void ScenarioWorld::HarvestDynamicSession(int id, DynamicSession& dyn) {
  dyn.session->player().AdvanceTo(sim_.Now());
  ClientMetrics m = ComputeClientMetrics(*dyn.session);
  if (config_.qoe != nullptr) {
    const int n_static =
        config_.n_video + config_.n_data + config_.n_conventional;
    config_.qoe->EndSession(n_static + id, ToSeconds(sim_.Now()),
                            dyn.session->player().played_s());
  }
  if (config_.bai_trace != nullptr) {
    PlayerSummary summary;
    summary.cell = static_cast<int>(config_.oneapi.cell_tag);
    // Churned sessions report after the static client id space.
    summary.client = config_.n_video + config_.n_data +
                     config_.n_conventional + id;
    summary.flow = dyn.flow;
    summary.avg_bitrate_bps = m.avg_bitrate_bps;
    summary.switches = m.bitrate_changes;
    summary.stalls = m.rebuffer_events;
    summary.stall_s = m.rebuffer_time_s;
    summary.qoe = m.qoe;
    summary.segments = m.segments;
    config_.bai_trace->RecordPlayer(summary);
  }
  churned_metrics_.push_back(std::move(m));
}

void ScenarioWorld::HealthScan() {
  RunHealthMonitor& health = *config_.health;
  const double t_s = ToSeconds(sim_.Now());

  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    VideoPlayer& player = sessions_[i]->player();
    player.AdvanceTo(sim_.Now());
    const double stall_s = player.rebuffer_time_s();
    health.OnPlayerScan(t_s, static_cast<int>(i),
                        stall_s - last_health_stall_s_[i]);
    last_health_stall_s_[i] = stall_s;
  }

  double shortfall_bytes = 0.0;
  double bai_gbr_bytes = 0.0;
  for (FlowId id : video_flows_) {
    if (!cell_.HasFlow(id)) continue;
    const FlowState& flow = cell_.flow(id);
    if (!flow.has_gbr()) continue;
    shortfall_bytes += std::max(flow.gbr_credit_bytes, 0.0);
    bai_gbr_bytes += flow.gbr_bps / 8.0 * ToSeconds(config_.oneapi.bai);
  }
  health.OnGbrScan(t_s, shortfall_bytes, bai_gbr_bytes);

  for (std::size_t d = 0; d < data_flows_.size(); ++d) {
    const FlowId id = data_flows_[d];
    if (!cell_.HasFlow(id)) continue;
    const FlowState& flow = cell_.flow(id);
    const std::uint64_t total = cell_.total_tx_bytes(id);
    health.OnFlowScan(t_s, id, flow.queued_bytes > 0,
                      total - last_health_data_bytes_[d]);
    last_health_data_bytes_[d] = total;
  }
}

ScenarioResult ScenarioWorld::Collect() {
  ScenarioResult result = std::move(result_);

  std::vector<double> avg_bitrates;
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    const auto& session = sessions_[i];
    session->player().AdvanceTo(sim_.Now());
    ClientMetrics m = ComputeClientMetrics(*session);
    if (config_.qoe != nullptr) {
      config_.qoe->EndSession(static_cast<int>(i), ToSeconds(sim_.Now()),
                              session->player().played_s());
    }
    avg_bitrates.push_back(m.avg_bitrate_bps);
    result.avg_video_bitrate_bps += m.avg_bitrate_bps;
    result.avg_bitrate_changes += m.bitrate_changes;
    result.avg_rebuffer_s += m.rebuffer_time_s;
    if (config_.bai_trace != nullptr) {
      PlayerSummary summary;
      summary.cell = static_cast<int>(config_.oneapi.cell_tag);
      summary.client = static_cast<int>(i);
      summary.flow = video_flows_[i];
      summary.avg_bitrate_bps = m.avg_bitrate_bps;
      summary.switches = m.bitrate_changes;
      summary.stalls = m.rebuffer_events;
      summary.stall_s = m.rebuffer_time_s;
      summary.qoe = m.qoe;
      summary.segments = m.segments;
      config_.bai_trace->RecordPlayer(summary);
    }
    result.video.push_back(m);
  }

  if (churn_ != nullptr) {
    // Dynamic sessions still streaming at the horizon are harvested in
    // session-id order (departed ones were harvested at teardown).
    for (auto& [id, dyn] : dynamic_) {
      if (dyn.session != nullptr && dyn.started) {
        dyn.session->Stop();
        HarvestDynamicSession(id, dyn);
      }
    }
    result.sessions_arrived = churn_->arrivals();
    result.sessions_departed = churn_->departures();
    result.sessions_blocked = churn_->blocked();
    result.blocking_probability = churn_->blocking_probability();
    result.churned = std::move(churned_metrics_);
    double qoe_sum = 0.0;
    for (const ClientMetrics& m : result.churned) qoe_sum += m.qoe;
    if (!result.churned.empty()) {
      result.avg_admitted_qoe =
          qoe_sum / static_cast<double>(result.churned.size());
    }
    MakeGaugeHandle(config_.metrics, "churn.admitted_qoe_avg")
        .Set(result.avg_admitted_qoe);
  }

  if (config_.bai_trace != nullptr) config_.bai_trace->Flush(sim_.Now());
  cell_.FlushSpanWindow();
  if (!result.video.empty()) {
    const auto n = static_cast<double>(result.video.size());
    result.avg_video_bitrate_bps /= n;
    result.avg_bitrate_changes /= n;
    result.avg_rebuffer_s /= n;
  }
  result.jain_avg_bitrate = JainIndex(avg_bitrates);

  for (std::size_t i = 0; i < conventional_sessions_.size(); ++i) {
    const auto& session = conventional_sessions_[i];
    session->player().AdvanceTo(sim_.Now());
    if (config_.qoe != nullptr) {
      config_.qoe->EndSession(
          config_.n_video + config_.n_data + static_cast<int>(i),
          ToSeconds(sim_.Now()), session->player().played_s());
    }
    result.conventional.push_back(ComputeClientMetrics(*session));
  }

  for (FlowId id : data_flows_) {
    const double bps = static_cast<double>(cell_.total_tx_bytes(id)) * 8.0 /
                       config_.duration_s;
    result.data_throughput_bps.push_back(bps);
    result.avg_data_throughput_bps += bps;
  }
  if (!data_flows_.empty()) {
    result.avg_data_throughput_bps /=
        static_cast<double>(data_flows_.size());
  }

  result.solve_times_ms = oneapi_.solve_times_ms();
  result.video_fractions = oneapi_.video_fractions();
  return result;
}

}  // namespace flare
