// Scenario builder + runner: wires a complete FLARE/AVIS/FESTIVE/GOOGLE
// experiment (cell, channels, transport, HAS sessions, control plane) from
// a declarative config, runs it, and returns per-client metrics plus
// optional time series. Every bench and example drives experiments through
// this layer, so paper scenarios are reproduced from one code path.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "abr/avis.h"
#include "abr/festive.h"
#include "abr/google.h"
#include "abr/bba.h"
#include "abr/mpc.h"
#include "abr/panda.h"
#include "churn/session_churn.h"
#include "core/rate_controller.h"
#include "has/metrics.h"
#include "net/oneapi_server.h"
#include "util/time.h"

namespace flare {

class TelemetryServer;  // obs/telemetry_server.h

/// Which rate-adaptation system runs the video flows.
enum class Scheme {
  kFlare,         // coordinated, exact/greedy discrete solver
  kFlareRelaxed,  // coordinated, continuous relaxation + round-down
  kFestive,       // client-side
  kGoogle,        // client-side (MPEG-DASH/Media Source demo rule)
  kAvis,          // network-side GBR/MBR, uncoordinated greedy client
  /// Ablation: FLARE's optimizer sets the GBRs, but no rung is pushed to
  /// the client, which runs a greedy AVIS-style adaptation instead —
  /// isolates the value of FLARE's client-side enforcement.
  kFlareNetworkOnly,
  // Extended baselines from the paper's related-work section:
  kPanda,  // Li et al., probe-and-adapt [10]
  kMpc,    // Yin et al., model predictive control [11]
  kBba,    // Huang et al., buffer-based adaptation
};

const char* SchemeName(Scheme scheme);

/// MAC scheduler selection; kAuto applies the paper wiring (two-phase GBR
/// on the testbed for GBR schemes, PF for client-side schemes, PSS in the
/// ns-3 setup).
enum class SchedulerKind { kAuto, kPf, kPss, kTwoPhaseGbr, kRoundRobin };

/// How UE channels evolve.
enum class ChannelKind {
  kStaticItbs,    // testbed static: fixed vendor iTbs knob
  kItbsTriangle,  // testbed dynamic: iTbs Override triangle with offsets
  kPlacedStatic,  // ns-3 static: random placement, pathloss + fading
  kMobile,        // ns-3 mobile: random waypoint (vehicular) + fading
};

struct ScenarioConfig {
  Scheme scheme = Scheme::kFlare;
  double duration_s = 600.0;
  std::uint64_t seed = 1;

  int n_video = 3;
  int n_data = 1;
  /// Conventional (non-FLARE) HAS players sharing the cell; serviced like
  /// data traffic, without bitrate guarantees (Section V's deployment
  /// story). They run FESTIVE and register with the PCRF as data flows.
  int n_conventional = 0;

  /// Opt-in client information (Section II-B), indexed by video client;
  /// shorter vectors leave the remaining clients undisclosed.
  /// Screen-size parameter theta_u disclosed to the OneAPI server
  /// (0 = not disclosed; larger screens need more rate).
  std::vector<double> client_theta_bps;
  /// Hard rung cap per client (device resolution / data-cost limit;
  /// -1 = none).
  std::vector<int> client_max_level;

  std::vector<double> ladder_kbps;   // empty => TestbedLadderKbps()
  double segment_duration_s = 2.0;
  /// VBR encoding spread (0 = CBR, the paper's setup).
  double vbr_sigma = 0.0;
  double max_buffer_s = 30.0;
  /// GOOGLE requests the next segment only below this buffer level
  /// (Section IV-A: 15 s in the static testbed, 40 s in the dynamic one).
  double google_max_buffer_s = 15.0;

  // --- Channel.
  ChannelKind channel = ChannelKind::kStaticItbs;
  int num_rbs = kDefaultNumRbs;
  /// Transport-block error rate with HARQ retransmission (0 = ideal PHY).
  double target_bler = 0.0;
  int static_itbs = 7;        // calibrated testbed operating point
  /// Stationary placement annulus (kPlacedStatic): bounds the near-far MCS
  /// spread across clients; the paper's near-1.0 fairness indices imply a
  /// narrow spread.
  double placement_min_radius_m = 600.0;
  double placement_max_radius_m = 1100.0;
  int triangle_lo_itbs = 1;   // dynamic scenario (paper: 1 -> 12 -> 1)
  int triangle_hi_itbs = 12;
  double triangle_period_s = 240.0;
  double area_m = 2000.0;     // Table III
  double min_speed_mps = 10.0;
  double max_speed_mps = 30.0;
  RadioConfig radio;

  /// true => testbed wiring (FLARE uses the femtocell two-phase GBR
  /// scheduler, client-side schemes plain PF); false => ns-3 wiring
  /// (everyone on the Priority Set Scheduler, Table III).
  bool testbed = true;
  /// Explicit scheduler override (ablation benches).
  SchedulerKind scheduler = SchedulerKind::kAuto;

  // --- Per-scheme knobs (Table IV defaults).
  FestiveConfig festive;
  GoogleAbrConfig google;
  AvisConfig avis;
  OneApiConfig oneapi;
  PandaConfig panda;
  MpcConfig mpc;
  BbaConfig bba;

  /// Session churn (arrivals/departures mid-run) + admission control.
  /// The n_video/n_data/n_conventional populations above stay as a static
  /// base load; churned sessions come and go on top of it. For FLARE
  /// schemes with churn.warm_solver, the greedy solver is swapped for the
  /// warm-started incremental sweep. AVIS gateway registration is static
  /// only (the gateway has no removal path), so churned sessions under
  /// kAvis run without gateway MBR caps.
  ChurnConfig churn;

  /// Optional override of the FLARE solver chosen by the scheme/churn
  /// wiring (greedy for kFlare, continuous for kFlareRelaxed, incremental
  /// sweep under churn.warm_solver). Set to force one — e.g.
  /// SolverMode::kBatchedSweep for metro-scale cells — in every FLARE
  /// cell of the run; non-FLARE schemes ignore it.
  std::optional<SolverMode> solver_override;

  /// Collect 1 Hz time series (Figures 4/5); off for CDF sweeps.
  bool sample_series = false;

  // --- Observability (both may be null; null = zero-cost disabled).
  /// Counter/gauge/histogram registry shared by the simulator, cell,
  /// OneAPI server, and players. Not owned; must outlive the run.
  MetricsRegistry* metrics = nullptr;
  /// Structured per-BAI / per-TTI / per-player trace sink. Not owned.
  BaiTraceSink* bai_trace = nullptr;
  /// Causal span tracer (Chrome trace-event JSON). The world binds its
  /// clock/pid/determinism on construction; pass one tracer per cell
  /// shard in multi-cell runs. Not owned.
  SpanTracer* span_trace = nullptr;
  /// Run-health watchdogs, scanned once per BAI. One monitor per cell
  /// shard in multi-cell runs. Not owned.
  RunHealthMonitor* health = nullptr;
  /// Online per-session QoE engine (bitrate, instability, stalls, startup
  /// delay, fairness, admitted-vs-blocked QoE). One engine per cell shard
  /// in multi-cell runs. Not owned.
  QoeAnalytics* qoe = nullptr;
  /// Black-box flight recorder: bounded ring of recent structured events,
  /// snapshotted on the first watchdog alarm. One recorder per cell shard
  /// in multi-cell runs. Not owned.
  FlightRecorder* flight = nullptr;
  /// Live telemetry server (obs/telemetry_server.h). When set, RunScenario
  /// publishes read-only snapshots of the attached observers every
  /// `telemetry_interval_ms` of wall clock on BAI boundaries; run bytes
  /// stay identical to a telemetry-off run. Multi-cell runs wire this
  /// through MultiCellConfig instead (the per-cell copy is cleared).
  /// Not owned; must be Start()ed by the caller.
  TelemetryServer* telemetry = nullptr;
  double telemetry_interval_ms = 1000.0;
};

/// One sampled point of the Figure 4/5 time series.
struct SeriesSample {
  double t_s = 0.0;
  std::vector<double> video_bitrate_bps;  // currently selected, per client
  std::vector<double> video_buffer_s;
  std::vector<double> data_throughput_bps;  // over the last sample period
};

struct ScenarioResult {
  std::vector<ClientMetrics> video;          // one per video client
  /// Conventional HAS players (when n_conventional > 0), in order.
  std::vector<ClientMetrics> conventional;
  std::vector<double> data_throughput_bps;   // run-average per data client
  double jain_avg_bitrate = 1.0;
  double avg_video_bitrate_bps = 0.0;
  double avg_bitrate_changes = 0.0;
  double avg_rebuffer_s = 0.0;
  double avg_data_throughput_bps = 0.0;

  // FLARE-only outputs.
  std::vector<double> solve_times_ms;   // one per BAI (Figure 9)
  std::vector<double> video_fractions;  // r per BAI

  std::vector<SeriesSample> series;  // when sample_series

  // Churn outputs (zero / empty unless config.churn.enabled).
  std::uint64_t sessions_arrived = 0;
  std::uint64_t sessions_departed = 0;
  std::uint64_t sessions_blocked = 0;
  /// blocked / arrived — the Erlang-style primary metric of the churn
  /// experiments.
  double blocking_probability = 0.0;
  /// Per-session metrics of admitted dynamic video sessions, departed
  /// ones first (in departure order) then those still active at the end.
  std::vector<ClientMetrics> churned;
  /// Mean QoE over `churned` (0 when none completed a segment).
  double avg_admitted_qoe = 0.0;
};

/// Femtocell testbed preset (Section IV-A): 3 video + 1 data UE, 50-RB
/// 10 MHz cell, 8-rate testbed ladder, 2 s segments, static iTbs knob.
ScenarioConfig TestbedPreset(Scheme scheme);

/// ns-3 simulation preset (Table III): 8 stationary video clients,
/// 5 MHz / 25-RB cell, 6-rate ladder, 10 s segments, trace-based fading,
/// Priority Set Scheduler, 1200 s.
ScenarioConfig SimStaticPreset(Scheme scheme);

/// Mobile variant of the Table III preset: vehicular random waypoint in
/// the 2000 m x 2000 m area.
ScenarioConfig SimMobilePreset(Scheme scheme);

/// Build, run and tear down one scenario.
ScenarioResult RunScenario(const ScenarioConfig& config);

/// Run `runs` seeds (seed, seed+1, ...) and concatenate per-client results.
std::vector<ScenarioResult> RunMany(const ScenarioConfig& config, int runs);

}  // namespace flare
