#include "scenario/experiment.h"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>
#include <utility>

#include "obs/bai_trace.h"
#include "obs/metrics.h"
#include "obs/span_trace.h"
#include "util/config.h"
#include "util/csv.h"

namespace flare {

namespace {

/// Commit identity of the producing build: CI stamps GITHUB_SHA, local
/// harnesses may set FLARE_GIT_SHA (which wins). Empty when neither is
/// set — the envelope then records "unknown" rather than shelling out to
/// git, so exports stay reproducible in hermetic build environments.
std::string HostGitSha() {
  for (const char* var : {"FLARE_GIT_SHA", "GITHUB_SHA"}) {
    const char* sha = std::getenv(var);
    if (sha != nullptr && *sha != '\0') return sha;
  }
  return "unknown";
}

std::string HostName() {
  char buf[256] = {};
  if (gethostname(buf, sizeof(buf) - 1) != 0) return "unknown";
  return buf[0] != '\0' ? std::string(buf) : std::string("unknown");
}

}  // namespace

double PooledMetrics::MeanJain() const {
  if (jain_per_run.empty()) return 1.0;
  double sum = 0.0;
  for (double j : jain_per_run) sum += j;
  return sum / static_cast<double>(jain_per_run.size());
}

PooledMetrics Pool(const std::vector<ScenarioResult>& runs) {
  PooledMetrics pooled;
  for (const ScenarioResult& run : runs) {
    for (const ClientMetrics& m : run.video) {
      pooled.avg_bitrate_kbps.Add(m.avg_bitrate_bps / 1000.0);
      pooled.bitrate_changes.Add(static_cast<double>(m.bitrate_changes));
      pooled.rebuffer_s.Add(m.rebuffer_time_s);
      pooled.qoe.Add(m.qoe);
    }
    for (double bps : run.data_throughput_bps) {
      pooled.data_throughput_kbps.Add(bps / 1000.0);
    }
    pooled.jain_per_run.push_back(run.jain_avg_bitrate);
  }
  return pooled;
}

void PrintRow(const std::string& label, const std::vector<double>& values,
              const std::vector<std::string>& headers) {
  if (!headers.empty()) {
    std::printf("%-34s", "");
    for (const std::string& h : headers) std::printf(" %12s", h.c_str());
    std::printf("\n");
  }
  std::printf("%-34s", label.c_str());
  for (double v : values) std::printf(" %12s", FormatNumber(v).c_str());
  std::printf("\n");
}

void PrintCdf(const std::string& label, const Cdf& cdf, int points) {
  std::printf("%s (n=%zu):\n", label.c_str(), cdf.count());
  for (const auto& [value, prob] : cdf.Curve(
           static_cast<std::size_t>(points))) {
    std::printf("  p%-4.0f %12s\n", prob * 100.0,
                FormatNumber(value).c_str());
  }
}

std::string BenchCsvPath(const std::string& name) {
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  return "bench_results/" + name + ".csv";
}

std::string BenchJsonPath(const std::string& name) {
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  return "bench_results/BENCH_" + name + ".json";
}

BenchJsonWriter::BenchJsonWriter(std::string scenario)
    : scenario_(std::move(scenario)) {}

void BenchJsonWriter::Echo(const std::string& key, double value) {
  config_.emplace_back(key, JsonNumber(value));
}

void BenchJsonWriter::Echo(const std::string& key,
                           const std::string& value) {
  config_.emplace_back(key, JsonQuote(value));
}

void BenchJsonWriter::WriteEnvelopeOpen(std::ostream& out) const {
  out << "{\"schema_version\": " << kSchemaVersion
      << ", \"scenario\": " << JsonQuote(scenario_) << ", \"config\": {";
  bool first = true;
  for (const auto& [key, value] : config_) {
    if (!first) out << ", ";
    first = false;
    out << JsonQuote(key) << ": " << value;
  }
  // Provenance lives in its own section so "config" stays commit- and
  // machine-invariant (flare_report keys run comparisons off the config
  // echo; it reads "host" only to stamp trajectory lines).
  out << "}, \"host\": {\"git_sha\": " << JsonQuote(HostGitSha())
      << ", \"hostname\": " << JsonQuote(HostName())
      << ", \"hardware_concurrency\": "
      << std::thread::hardware_concurrency() << "}, \"run\": ";
}

bool BenchJsonWriter::Export(const std::string& path,
                             const BaiTraceSink& trace,
                             const MetricsRegistry* registry,
                             const RunHealthMonitor* health,
                             const QoeAnalytics* qoe) const {
  std::ofstream out(path);
  if (!out) return false;
  WriteEnvelopeOpen(out);
  trace.WriteJson(out, registry, health, qoe);
  out << "}\n";
  return static_cast<bool>(out);
}

bool BenchJsonWriter::Export(const std::string& path,
                             const MetricsRegistry& registry) const {
  std::ofstream out(path);
  if (!out) return false;
  WriteEnvelopeOpen(out);
  registry.WriteJson(out);
  out << "}\n";
  return static_cast<bool>(out);
}

void PrintPaperComparison(const std::string& metric, double paper,
                          double measured) {
  std::printf("  %-44s paper %10s   measured %10s\n", metric.c_str(),
              FormatNumber(paper).c_str(), FormatNumber(measured).c_str());
}

BenchScale ScaleFromEnv(int default_runs, double default_duration_s,
                        int argc, char** argv) {
  Config config =
      argv != nullptr ? Config::FromArgs(argc, argv) : Config{};
  BenchScale scale;
  scale.runs = config.GetInt("runs", default_runs);
  scale.duration_s = config.GetDouble("duration_s", default_duration_s);
  return scale;
}

}  // namespace flare
