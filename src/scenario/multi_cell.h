// Multi-cell scenario runner on the sharded parallel runtime.
//
// Replicates one ScenarioConfig across n_cells eNodeBs, giving each cell
// its own event domain (simulator + cell + transport + players + OneAPI
// controller) scheduled by sim/parallel_runner. The cells share one
// core-network PCRF: each domain reads a domain-local PCRF shard
// synchronously, and every shard mutation is mirrored into the shared
// registry through the runner's mailbox at BAI-aligned epoch barriers —
// the cross-cell state is exactly as fresh as the control loop needs.
//
// The result is bit-identical for any worker count (workers=0 serial
// reference vs. a thread pool): per-cell Rngs come from
// Rng::SplitStream(cell), domains never share mutable state mid-epoch,
// and per-cell metrics/trace shards are merged in deterministic cell
// order after the run (tests/determinism_test.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "scenario/scenario.h"
#include "util/time.h"

namespace flare {

struct MultiCellConfig {
  /// Template for every cell; `oneapi.cell_tag` is overwritten with the
  /// cell index, `metrics`/`bai_trace` are replaced by per-cell shards
  /// (merged into the fields below after the run), and the per-cell Rng
  /// is SplitStream(cell) of `cell.seed`.
  ScenarioConfig cell;
  int n_cells = 2;
  /// Worker threads for the parallel runner; 0 = serial reference.
  int workers = 0;
  /// Epoch barrier period; 0 aligns with the BAI (`cell.oneapi.bai`).
  SimTime epoch = 0;

  // --- Merged observability (both may be null; null = disabled).
  /// Per-cell registries are folded in as "cell<i>.<name>". Not owned.
  MetricsRegistry* metrics = nullptr;
  /// Per-cell traces are absorbed with rows stamped by cell and sorted
  /// deterministically. Not owned.
  BaiTraceSink* bai_trace = nullptr;
  /// Per-cell span shards (pid = cell+1) plus the runner's own epoch /
  /// barrier spans (pid 0) are merged here in cell order. Not owned.
  SpanTracer* span_trace = nullptr;
  /// Per-cell health monitors, merged with warnings restamped by cell.
  /// Its WatchdogConfig seeds every shard monitor. Not owned.
  RunHealthMonitor* health = nullptr;
  /// Per-cell QoE engines (weights copied from this one), merged with
  /// sessions restamped by cell. Not owned.
  QoeAnalytics* qoe = nullptr;
  /// Per-cell flight recorders (capacity copied from this one), merged in
  /// cell order; the earliest shard trigger wins. Not owned.
  FlightRecorder* flight = nullptr;

  /// Live telemetry server (obs/telemetry_server.h). When set, the
  /// runner's barrier hook publishes read-only snapshots of every shard's
  /// observers (absorbed under "cell<N>." like the post-run merge) every
  /// `telemetry_interval_ms` of wall clock. Shard observers are fed even
  /// when the merged sinks above are null, so live QoE/health/flight
  /// telemetry works without requesting end-of-run exports. Run bytes
  /// stay byte-identical with telemetry on or off. Not owned; must be
  /// Start()ed by the caller.
  TelemetryServer* telemetry = nullptr;
  double telemetry_interval_ms = 1000.0;
};

struct MultiCellResult {
  std::vector<ScenarioResult> cells;  // indexed by cell
  /// Flow counts in the *shared* PCRF after the last barrier — the view a
  /// core-network function has of the whole deployment.
  int global_video_flows = 0;
  int global_data_flows = 0;
  std::uint64_t barrier_epochs = 0;
  std::uint64_t mailbox_messages = 0;
  /// Wall-clock of the run loop (bench_fig9_scaling's scaling table).
  double wall_ms = 0.0;
};

MultiCellResult RunMultiCellScenario(const MultiCellConfig& config);

}  // namespace flare
