#include "scenario/multi_cell.h"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <deque>
#include <memory>
#include <sstream>
#include <string>

#include "net/pcrf.h"
#include "obs/telemetry_publisher.h"
#include "scenario/scenario_world.h"
#include "sim/parallel_runner.h"
#include "util/time.h"

namespace flare {

namespace {

void AppendNumber(std::string& out, long long value) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), value);
  out.append(buf, res.ptr);
}

/// Wire format for PCRF mirror ops crossing the domain mailbox:
/// "pcrf <1|0> <flow> <type> <cell_tag>" (1 = register). Built in place
/// in the domain's pooled payload buffer (EventDomain::StartPost), so
/// steady-state mirror traffic allocates nothing.
void PostPcrfOp(EventDomain& domain, FlowId id, FlowType type,
                Pcrf::CellTag cell, bool registered) {
  std::string& payload = domain.StartPost(kCoordinatorDomain);
  payload.append(registered ? "pcrf 1 " : "pcrf 0 ");
  AppendNumber(payload, static_cast<long long>(id));
  payload.push_back(' ');
  AppendNumber(payload, static_cast<long long>(type));
  payload.push_back(' ');
  AppendNumber(payload, static_cast<long long>(cell));
}

void ApplyPcrfOp(Pcrf& pcrf, const std::string& payload) {
  std::istringstream in(payload);
  std::string tag;
  int registered = 0;
  FlowId flow = 0;
  int type = 0;
  Pcrf::CellTag cell = 0;
  in >> tag >> registered >> flow >> type >> cell;
  if (!in || tag != "pcrf") return;
  if (registered != 0) {
    pcrf.RegisterFlow(flow, static_cast<FlowType>(type), cell);
  } else {
    pcrf.DeregisterFlow(flow, cell);
  }
}

/// Everything one cell's domain owns. Shard observers exist even when the
/// merged sinks are disabled — a world's pointers must stay valid for its
/// lifetime and the shards are cheap when unused.
struct CellShard {
  CellShard(const WatchdogConfig& watchdog, QoeEngineWeights qoe_weights,
            std::size_t flight_capacity)
      : health(watchdog), qoe(qoe_weights), flight(flight_capacity) {}

  Pcrf pcrf;  // domain-local mirror, read synchronously by the controller
  MetricsRegistry metrics;
  BaiTraceSink trace;
  SpanTracer spans;
  RunHealthMonitor health;
  QoeAnalytics qoe;
  FlightRecorder flight;
  std::unique_ptr<ScenarioWorld> world;
};

}  // namespace

MultiCellResult RunMultiCellScenario(const MultiCellConfig& config) {
  const int n_cells = std::max(config.n_cells, 1);

  ParallelRunner::Options options;
  options.workers = std::max(config.workers, 0);
  options.epoch = config.epoch > 0 ? config.epoch : config.cell.oneapi.bai;
  ParallelRunner runner(options);

  // Shared core registry, owned by the coordinator; only barrier handlers
  // touch it, so no locking is needed.
  Pcrf global_pcrf;
  runner.SetCoordinatorHandler([&global_pcrf](const DomainMessage& msg) {
    ApplyPcrfOp(global_pcrf, msg.payload);
  });

  // Per-cell worlds. deque: shard addresses must survive emplace_back
  // (worlds hold pointers into their shard's observers and PCRF).
  const bool deterministic = config.cell.oneapi.deterministic_timing;
  runner.SetObservers(config.metrics, config.span_trace, deterministic);
  if (config.span_trace != nullptr) {
    config.span_trace->set_deterministic(deterministic);
    config.span_trace->set_default_pid(0);  // coordinator/runner process
  }

  const Rng master(config.cell.seed);
  // Live telemetry rides the barrier hook; shard observers are treated
  // as enabled whenever the server is attached so mid-run QoE/health/
  // event tailing works even without end-of-run export sinks.
  const bool telemetry_on = config.telemetry != nullptr;
  TelemetryPublisher publisher(config.telemetry,
                               config.telemetry_interval_ms);
  std::deque<CellShard> shards;
  for (int c = 0; c < n_cells; ++c) {
    EventDomain& domain = runner.AddDomain();
    CellShard& shard = shards.emplace_back(
        config.health != nullptr ? config.health->config() : WatchdogConfig{},
        config.qoe != nullptr ? config.qoe->weights() : QoeEngineWeights{},
        config.flight != nullptr ? config.flight->capacity()
                                 : FlightRecorder::kDefaultCapacity);
    if (config.span_trace != nullptr) domain.SetSpanTracer(&shard.spans);

    shard.pcrf.SetOnChange([&domain](FlowId id, FlowType type,
                                     Pcrf::CellTag cell, bool registered) {
      PostPcrfOp(domain, id, type, cell, registered);
    });

    ScenarioConfig cell_config = config.cell;
    cell_config.oneapi.cell_tag = static_cast<Pcrf::CellTag>(c);
    cell_config.metrics = config.metrics != nullptr || telemetry_on
                              ? &shard.metrics
                              : nullptr;
    cell_config.bai_trace =
        config.bai_trace != nullptr ? &shard.trace : nullptr;
    cell_config.span_trace =
        config.span_trace != nullptr ? &shard.spans : nullptr;
    cell_config.health = config.health != nullptr || telemetry_on
                             ? &shard.health
                             : nullptr;
    cell_config.qoe =
        config.qoe != nullptr || telemetry_on ? &shard.qoe : nullptr;
    cell_config.flight = config.flight != nullptr || telemetry_on
                             ? &shard.flight
                             : nullptr;
    // Telemetry is published from the coordinator's barrier hook, never
    // from inside a cell's world.
    cell_config.telemetry = nullptr;

    shard.world = std::make_unique<ScenarioWorld>(
        cell_config, domain.sim(), shard.pcrf,
        master.SplitStream(static_cast<std::uint64_t>(c)));
    shard.world->Start();

    if (telemetry_on) {
      publisher.AddShard({&shard.metrics, &shard.qoe, &shard.health,
                          &shard.flight,
                          "cell" + std::to_string(c) + "."},
                         c);
    }
  }
  if (telemetry_on) {
    publisher.ConfigureRun(
        std::string(SchemeName(config.cell.scheme)) + " x" +
            std::to_string(n_cells),
        config.cell.duration_s, n_cells, options.workers);
    publisher.SetCoordinatorMetrics(config.metrics);
    runner.SetBarrierHook([&publisher](SimTime now) {
      publisher.MaybePublish(ToSeconds(now));
    });
  }

  const auto wall_start = std::chrono::steady_clock::now();
  runner.RunUntil(FromSeconds(config.cell.duration_s));
  const auto wall_end = std::chrono::steady_clock::now();
  // Final snapshot so scrapers see the end-of-run state even when the
  // last interval had not elapsed.
  if (telemetry_on) publisher.PublishNow(config.cell.duration_s);

  MultiCellResult result;
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       wall_end - wall_start)
                       .count();
  result.barrier_epochs = runner.epochs();
  result.mailbox_messages = runner.messages_delivered();
  result.global_video_flows = global_pcrf.CountFlowsAllCells(FlowType::kVideo);
  result.global_data_flows = global_pcrf.CountFlowsAllCells(FlowType::kData);

  // Harvest and merge in cell order — deterministic regardless of which
  // worker ran which domain.
  for (int c = 0; c < n_cells; ++c) {
    CellShard& shard = shards[static_cast<std::size_t>(c)];
    result.cells.push_back(shard.world->Collect());
    if (config.metrics != nullptr) {
      config.metrics->MergeFrom(shard.metrics,
                                "cell" + std::to_string(c) + ".");
    }
    if (config.bai_trace != nullptr) {
      config.bai_trace->AbsorbShard(shard.trace, c);
    }
    if (config.span_trace != nullptr) {
      config.span_trace->AbsorbShard(shard.spans);
    }
    if (config.health != nullptr) {
      config.health->AbsorbShard(shard.health, c);
    }
    if (config.qoe != nullptr) {
      config.qoe->AbsorbShard(shard.qoe, c);
    }
    if (config.flight != nullptr) {
      config.flight->AbsorbShard(shard.flight, c);
    }
  }
  if (config.bai_trace != nullptr) config.bai_trace->SortMergedRows();
  if (config.span_trace != nullptr) config.span_trace->SortMergedEvents();
  if (config.health != nullptr) config.health->SortMergedWarnings();
  if (config.flight != nullptr) config.flight->SortMergedEvents();

  return result;
}

}  // namespace flare
