// One fully wired single-cell experiment "world": the cell, channels,
// transport, HAS sessions and control plane that RunScenario used to
// assemble inline. Factoring the world out of the run loop lets the same
// construction path serve two runtimes:
//   * RunScenario — one world on one Simulator, run to completion;
//   * RunMultiCellScenario — one world per event domain, each on its own
//     Simulator, advanced in epochs by the sharded ParallelRunner.
// Because both runtimes build the world identically (same Rng stream,
// same wiring order, same event-scheduling order), a multi-cell run is
// reproducible serial-vs-parallel down to the trace bytes.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "churn/admission.h"
#include "churn/session_churn.h"
#include "net/flare_plugin.h"
#include "net/oneapi_server.h"
#include "net/pcef.h"
#include "net/pcrf.h"
#include "scenario/scenario.h"
#include "sim/simulator.h"
#include "transport/transport_host.h"

namespace flare {

class ScenarioWorld {
 public:
  /// Builds the complete world for `config` on the caller's simulator,
  /// drawing every random decision from `rng` (callers pass Rng(seed) for
  /// a standalone run, or master.SplitStream(cell) for a sharded one).
  /// Flows register with `pcrf` under `config.oneapi.cell_tag`; `sim` and
  /// `pcrf` must outlive the world.
  ScenarioWorld(const ScenarioConfig& config, Simulator& sim, Pcrf& pcrf,
                Rng rng);
  /// Unbinds the span tracer's clock (it captures `this`).
  ~ScenarioWorld();

  ScenarioWorld(const ScenarioWorld&) = delete;
  ScenarioWorld& operator=(const ScenarioWorld&) = delete;

  /// Start the control plane, the optional 1 Hz series sampler, and the
  /// cell's TTI loop. Call once, before advancing the simulator.
  void Start();

  /// Harvest per-client metrics and FLARE outputs after the simulator has
  /// run to the configured horizon. Call once.
  ScenarioResult Collect();

  Cell& cell() { return cell_; }
  OneApiServer& oneapi() { return oneapi_; }

 private:
  /// A session created (and torn down) mid-run by the churn engine. Unlike
  /// the static population, every resource here — UE slot, transport flow,
  /// HTTP client, player, plugin — is reclaimed on departure.
  struct DynamicSession {
    SessionKind kind = SessionKind::kVideoSession;
    FlowId flow = kInvalidFlow;
    UeId ue = 0;
    std::unique_ptr<HttpClient> http;
    std::unique_ptr<VideoSession> session;
    /// Network-only ablation: the plugin the server talks to while the
    /// player runs its own ABR. Null when the plugin is the session's ABR.
    std::unique_ptr<FlarePlugin> orphan_plugin;
    /// The server-visible plugin (owned either by `session`'s ABR slot or
    /// by `orphan_plugin`); null for non-FLARE schemes and data sessions.
    FlarePlugin* plugin = nullptr;
    /// FLARE video sessions start only once the (delayed, admission-gated)
    /// OneAPI registration lands; everyone else starts at spawn.
    bool started = false;
  };

  /// Per-BAI watchdog feed: player stall deltas, unspent GBR credit,
  /// data-flow service. Pure reads — attaching health never perturbs the
  /// experiment (the BAI trace stays byte-identical).
  void HealthScan();

  /// Builds the per-scheme client ABR for one video session. `salt_index`
  /// feeds the FESTIVE rng fork (static clients pass their index; dynamic
  /// sessions pass a value beyond the static population). Exactly one of
  /// *plugin_out / *orphan_out is set for FLARE schemes.
  std::unique_ptr<AbrAlgorithm> MakeVideoAbr(
      FlowId flow, int salt_index, FlarePlugin** plugin_out,
      std::unique_ptr<FlarePlugin>* orphan_out);

  /// Churn-engine host hooks.
  int SpawnDynamicSession(SessionKind kind);
  void TeardownDynamicSession(int id, bool harvest);
  /// OneAPI admission outcome for `flow` (fires for every registration
  /// attempt; static flows are ignored — they start on their own clock).
  void OnAdmission(FlowId flow, bool admitted);
  /// Advances the player and appends this session's ClientMetrics to the
  /// churned-session results.
  void HarvestDynamicSession(int id, DynamicSession& session);

  ScenarioConfig config_;
  Simulator& sim_;
  Pcrf& pcrf_;
  Rng rng_;

  Cell cell_;
  TransportHost transport_;
  Pcef pcef_;
  OneApiServer oneapi_;
  AvisGateway avis_gateway_;
  Mpd mpd_;

  std::vector<std::unique_ptr<HttpClient>> https_;
  std::vector<std::unique_ptr<VideoSession>> sessions_;
  std::vector<FlowId> video_flows_;
  // Plugins for the network-only ablation: registered with the OneAPI
  // server (so the optimizer runs and GBRs are enforced) but never
  // consulted by the player.
  std::vector<std::unique_ptr<FlarePlugin>> orphan_plugins_;

  std::vector<std::unique_ptr<HttpClient>> conventional_https_;
  std::vector<std::unique_ptr<VideoSession>> conventional_sessions_;
  std::vector<FlowId> data_flows_;

  std::vector<std::uint64_t> last_data_bytes_;
  std::vector<double> last_health_stall_s_;
  std::vector<std::uint64_t> last_health_data_bytes_;
  ScenarioResult result_;  // series accumulate here during the run

  // --- Session churn (null / empty unless config.churn.enabled).
  std::unique_ptr<AdmissionController> admission_;  // FLARE schemes only
  std::unique_ptr<SessionChurnEngine> churn_;
  std::map<int, DynamicSession> dynamic_;    // live, by engine session id
  std::map<FlowId, int> dynamic_by_flow_;
  int next_dynamic_id_ = 0;
  std::vector<ClientMetrics> churned_metrics_;  // harvested on departure
};

}  // namespace flare
