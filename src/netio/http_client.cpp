#include "netio/http_client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>

namespace flare {

namespace {

using Clock = std::chrono::steady_clock;

int RemainingMs(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - Clock::now())
                        .count();
  return left > 0 ? static_cast<int>(left) : 0;
}

/// recv with a poll()-enforced deadline; returns <= 0 like recv. A
/// connection reset maps to EOF: servers that RST after the final byte
/// (no lingering close) must not fail a response we already hold — the
/// caller's parser decides whether the bytes received so far are whole.
ssize_t RecvWithDeadline(int fd, char* buf, std::size_t len,
                         Clock::time_point deadline) {
  for (;;) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = poll(&pfd, 1, RemainingMs(deadline));
    if (ready == 0) return -1;  // timeout
    if (ready < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    const ssize_t n = recv(fd, buf, len, 0);
    if (n < 0 && (errno == EINTR || errno == EAGAIN ||
                  errno == EWOULDBLOCK)) {
      continue;  // spurious wakeup on the non-blocking fd
    }
    if (n < 0 && errno == ECONNRESET) return 0;
    return n;
  }
}

/// send with the same poll()-enforced deadline (the fd is non-blocking,
/// so a stalled peer surfaces as EAGAIN instead of blocking forever).
bool SendAll(int fd, const std::string& data, Clock::time_point deadline) {
  std::size_t off = 0;
  while (off < data.size()) {
    pollfd pfd{fd, POLLOUT, 0};
    const int ready = poll(&pfd, 1, RemainingMs(deadline));
    if (ready == 0) return false;  // timeout
    if (ready < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    const ssize_t n =
        send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::string LowerCopy(std::string text) {
  std::transform(text.begin(), text.end(), text.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return text;
}

std::string RequestText(const std::string& host, const std::string& path) {
  return "GET " + path + " HTTP/1.1\r\nHost: " + host +
         "\r\nUser-Agent: flare-netio\r\nConnection: close\r\n\r\n";
}

/// Parse "HTTP/1.1 200 OK" + headers from `head` (without the blank
/// line). Returns false on a malformed status line.
bool ParseHead(const std::string& head, int* status,
               std::map<std::string, std::string>* headers) {
  std::size_t line_end = head.find("\r\n");
  const std::string status_line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  const std::size_t sp = status_line.find(' ');
  if (sp == std::string::npos || status_line.compare(0, 5, "HTTP/") != 0) {
    return false;
  }
  *status = std::atoi(status_line.c_str() + sp + 1);
  std::size_t pos =
      line_end == std::string::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    std::size_t end = head.find("\r\n", pos);
    if (end == std::string::npos) end = head.size();
    const std::string line = head.substr(pos, end - pos);
    const std::size_t colon = line.find(':');
    if (colon != std::string::npos) {
      std::string value = line.substr(colon + 1);
      const std::size_t start = value.find_first_not_of(" \t");
      value = start == std::string::npos ? "" : value.substr(start);
      (*headers)[LowerCopy(line.substr(0, colon))] = value;
    }
    pos = end + 2;
  }
  return true;
}

bool DecodeChunked(const std::string& raw, std::string* out) {
  std::size_t pos = 0;
  for (;;) {
    const std::size_t line_end = raw.find("\r\n", pos);
    if (line_end == std::string::npos) return false;
    const unsigned long size =
        std::strtoul(raw.substr(pos, line_end - pos).c_str(), nullptr, 16);
    pos = line_end + 2;
    if (size == 0) return true;
    if (pos + size > raw.size()) return false;
    out->append(raw, pos, size);
    pos += size;
    if (raw.compare(pos, 2, "\r\n") == 0) pos += 2;
  }
}

}  // namespace

int BlockingConnect(const std::string& host, std::uint16_t port,
                    int timeout_ms) {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return -1;
  }
  // Non-blocking connect with a poll()-enforced deadline: SO_SNDTIMEO
  // does not reliably bound connect() on all kernels, and a blackholed
  // address would otherwise hang for the SYN-retry budget (minutes).
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    close(fd);
    return -1;
  }
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) {
      close(fd);
      return -1;
    }
    for (;;) {
      pollfd pfd{fd, POLLOUT, 0};
      const int ready = poll(&pfd, 1, RemainingMs(deadline));
      if (ready < 0 && errno == EINTR) continue;
      if (ready <= 0) {  // timeout or poll failure
        close(fd);
        return -1;
      }
      break;
    }
    int error = 0;
    socklen_t len = sizeof(error);
    if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &error, &len) != 0 ||
        error != 0) {
      close(fd);
      return -1;
    }
  }
  // The fd stays non-blocking: every read/write in this module polls
  // with a deadline first, so nothing here can block indefinitely.
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool HttpGet(const std::string& host, std::uint16_t port,
             const std::string& path, HttpResponse* out, int timeout_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  const int fd = BlockingConnect(host, port, timeout_ms);
  if (fd < 0) return false;
  if (!SendAll(fd, RequestText(host, path), deadline)) {
    close(fd);
    return false;
  }
  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = RecvWithDeadline(fd, buf, sizeof(buf), deadline);
    if (n < 0) {
      close(fd);
      return false;  // timeout or error before EOF
    }
    if (n == 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  close(fd);

  const std::size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos) return false;
  out->headers.clear();
  out->body.clear();
  if (!ParseHead(raw.substr(0, head_end), &out->status, &out->headers)) {
    return false;
  }
  const std::string payload = raw.substr(head_end + 4);
  const auto te = out->headers.find("transfer-encoding");
  if (te != out->headers.end() &&
      LowerCopy(te->second).find("chunked") != std::string::npos) {
    return DecodeChunked(payload, &out->body);
  }
  out->body = payload;
  return true;
}

HttpTail::~HttpTail() { Close(); }

void HttpTail::Close() {
  if (fd_ >= 0) close(fd_);
  fd_ = -1;
}

bool HttpTail::FillBuffer(Clock::time_point deadline) {
  char buf[4096];
  const ssize_t n = RecvWithDeadline(fd_, buf, sizeof(buf), deadline);
  if (n <= 0) return false;
  buffer_.append(buf, static_cast<std::size_t>(n));
  return true;
}

bool HttpTail::ReadLine(std::string* line, Clock::time_point deadline) {
  for (;;) {
    const std::size_t end = buffer_.find("\r\n");
    if (end != std::string::npos) {
      line->assign(buffer_, 0, end);
      buffer_.erase(0, end + 2);
      return true;
    }
    if (!FillBuffer(deadline)) return false;
  }
}

bool HttpTail::Open(const std::string& host, std::uint16_t port,
                    const std::string& path, int timeout_ms) {
  Close();
  status_ = 0;
  buffer_.clear();
  // One deadline for the whole open — connect, request, status line and
  // every header — so a hung or dribbling server cannot stretch each
  // read into its own fresh timeout.
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  fd_ = BlockingConnect(host, port, timeout_ms);
  if (fd_ < 0) return false;
  if (!SendAll(fd_, RequestText(host, path), deadline)) {
    Close();
    return false;
  }
  // Consume the status line and headers.
  std::string line;
  if (!ReadLine(&line, deadline)) {
    Close();
    return false;
  }
  std::map<std::string, std::string> headers;
  if (!ParseHead(line, &status_, &headers)) {
    Close();
    return false;
  }
  while (ReadLine(&line, deadline)) {
    if (line.empty()) return status_ >= 200 && status_ < 300;
  }
  Close();
  return false;
}

bool HttpTail::NextChunk(std::string* chunk, int timeout_ms) {
  if (fd_ < 0) return false;
  // One deadline per call, covering the size line and the full payload.
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  std::string line;
  if (!ReadLine(&line, deadline)) return false;
  const unsigned long size = std::strtoul(line.c_str(), nullptr, 16);
  if (size == 0) return false;  // terminal chunk
  while (buffer_.size() < size + 2) {
    if (!FillBuffer(deadline)) return false;
  }
  chunk->assign(buffer_, 0, size);
  buffer_.erase(0, size + 2);  // payload + CRLF
  return true;
}

}  // namespace flare
