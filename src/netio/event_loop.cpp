#include "netio/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

namespace flare {

EpollLoop::EpollLoop() {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (ok()) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = wake_fd_;
    epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  }
}

EpollLoop::~EpollLoop() {
  if (epoll_fd_ >= 0) close(epoll_fd_);
  if (wake_fd_ >= 0) close(wake_fd_);
}

void EpollLoop::Watch(int fd, std::uint32_t events, IoCallback callback) {
  if (!ok() || fd < 0) return;
  epoll_event ev{};
  ev.events = events;  // kReadable/kWritable/kError mirror EPOLL* values
  ev.data.fd = fd;
  const bool known = watches_.count(fd) != 0;
  epoll_ctl(epoll_fd_, known ? EPOLL_CTL_MOD : EPOLL_CTL_ADD, fd, &ev);
  watches_[fd] = std::move(callback);
}

void EpollLoop::Unwatch(int fd) {
  if (!ok() || fd < 0) return;
  if (watches_.erase(fd) != 0) {
    epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
}

void EpollLoop::Post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    posted_.push_back(std::move(task));
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = write(wake_fd_, &one, sizeof(one));
}

void EpollLoop::Stop() {
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    stop_requested_ = true;
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = write(wake_fd_, &one, sizeof(one));
}

void EpollLoop::DrainWake() {
  std::uint64_t count = 0;
  while (read(wake_fd_, &count, sizeof(count)) > 0) {
  }
}

void EpollLoop::RunPostedTasks() {
  std::vector<std::function<void()>> tasks;
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    tasks.swap(posted_);
  }
  for (auto& task : tasks) task();
}

void EpollLoop::Run() {
  if (!ok()) return;
  epoll_event ready[64];
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(post_mu_);
      if (stop_requested_) return;
    }
    const int n = epoll_wait(epoll_fd_, ready, 64, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = ready[i].data.fd;
      if (fd == wake_fd_) {
        DrainWake();
        continue;
      }
      // Look the callback up fresh: an earlier callback this round may
      // have unwatched (and closed) this fd.
      const auto it = watches_.find(fd);
      if (it == watches_.end()) continue;
      // Copy: the callback may Unwatch itself, destroying the map entry.
      IoCallback cb = it->second;
      cb(ready[i].events);
    }
    RunPostedTasks();
  }
}

}  // namespace flare
