// Minimal epoll event loop for background service threads.
//
// The telemetry plane (obs/telemetry_server) needs a real socket server
// that can never stall the simulation: all IO runs on one dedicated
// thread inside this loop, and the only cross-thread surface is Post(),
// which enqueues a closure and wakes the loop through an eventfd. The
// loop is deliberately small and reusable — ROADMAP item 2's standalone
// OneAPI control-plane server is expected to ride on the same classes
// (listener, buffered connections, loop) with a different protocol on
// top.
//
// Threading contract: Watch/Unwatch/Run are loop-thread-only (call Watch
// before Run for the initial set, or from a Post()ed task / IO callback
// afterwards). Post() and Stop() are safe from any thread.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

namespace flare {

class EpollLoop {
 public:
  /// Bitmask passed to IO callbacks; values match EPOLLIN/EPOLLOUT so the
  /// header does not leak <sys/epoll.h> into every includer.
  static constexpr std::uint32_t kReadable = 0x001;   // EPOLLIN
  static constexpr std::uint32_t kWritable = 0x004;   // EPOLLOUT
  static constexpr std::uint32_t kError = 0x008 | 0x010;  // EPOLLERR|HUP

  using IoCallback = std::function<void(std::uint32_t events)>;

  EpollLoop();
  ~EpollLoop();
  EpollLoop(const EpollLoop&) = delete;
  EpollLoop& operator=(const EpollLoop&) = delete;

  /// False when epoll/eventfd creation failed (the loop is inert).
  bool ok() const { return epoll_fd_ >= 0 && wake_fd_ >= 0; }

  /// Register (or re-register with a new mask) a level-triggered watch.
  /// The callback runs on the loop thread; it may Unwatch its own fd.
  void Watch(int fd, std::uint32_t events, IoCallback callback);
  /// Drop the watch; safe for fds that were never watched. Does not
  /// close the fd — ownership stays with the caller.
  void Unwatch(int fd);

  /// Run `task` on the loop thread at the next wakeup. Thread-safe.
  void Post(std::function<void()> task);

  /// Dispatch IO and posted tasks until Stop(). Returns immediately when
  /// construction failed.
  void Run();
  /// Request Run() to return after the current dispatch round.
  /// Thread-safe and idempotent.
  void Stop();

 private:
  void DrainWake();
  void RunPostedTasks();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: Post()/Stop() wakeups
  std::map<int, IoCallback> watches_;

  std::mutex post_mu_;
  std::vector<std::function<void()>> posted_;
  bool stop_requested_ = false;  // under post_mu_
};

}  // namespace flare
