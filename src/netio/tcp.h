// Non-blocking TCP building blocks for EpollLoop services.
//
// TcpListener binds/listens (port 0 picks an ephemeral port — tests and
// the telemetry server report the real port via bound_port()) and
// accepts non-blocking connections. TcpConnection owns one accepted fd
// with buffered reads and writes: producers append to the outbox with
// Queue(), Flush() pushes as much as the socket takes, and
// pending_bytes() lets the owner enforce a cap so one slow peer can
// never grow memory without bound. Graceful shutdown = CloseAfterFlush()
// + draining Flush() until done.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace flare {

enum class IoStatus {
  kOk,          // made progress
  kWouldBlock,  // nothing to do right now (EAGAIN)
  kEof,         // peer closed its side
  kError,       // unrecoverable socket error
};

/// Make `fd` non-blocking; returns false on fcntl failure.
bool SetNonBlocking(int fd);

class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Bind `address:port` (port 0 = ephemeral) and listen, non-blocking
  /// with SO_REUSEADDR. Returns false on any failure.
  bool Listen(const std::string& address, std::uint16_t port);
  /// Accept one pending connection as a non-blocking fd, or -1 when none
  /// is waiting (or on error). Ownership of the fd passes to the caller.
  int Accept();

  int fd() const { return fd_; }
  /// The actual bound port (resolves port 0 via getsockname).
  std::uint16_t bound_port() const { return bound_port_; }
  void Close();

 private:
  int fd_ = -1;
  std::uint16_t bound_port_ = 0;
};

class TcpConnection {
 public:
  /// Takes ownership of `fd` (made non-blocking).
  explicit TcpConnection(int fd);
  ~TcpConnection();
  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  int fd() const { return fd_; }
  bool open() const { return fd_ >= 0; }

  /// Read everything currently available into inbox(). kOk when bytes
  /// arrived, kWouldBlock when the socket is drained, kEof/kError when
  /// the connection is finished.
  IoStatus ReadSome();
  /// Bytes received so far; the protocol layer consumes from here.
  std::string& inbox() { return inbox_; }

  /// Append to the outbox (no syscall; call Flush to push).
  void Queue(std::string_view data) { outbox_.append(data); }
  /// Write as much queued data as the socket accepts (MSG_NOSIGNAL —
  /// a dead peer surfaces as kError, never SIGPIPE). kOk when the outbox
  /// is empty afterwards, kWouldBlock when bytes remain.
  IoStatus Flush();
  std::size_t pending_bytes() const {
    return outbox_.size() - outbox_offset_;
  }

  /// Graceful shutdown: close once the outbox drains.
  void CloseAfterFlush() { close_after_flush_ = true; }
  bool close_after_flush() const { return close_after_flush_; }
  /// True once the outbox is empty and CloseAfterFlush was requested.
  bool FlushedAndDone() const {
    return close_after_flush_ && pending_bytes() == 0;
  }

  void Close();

 private:
  int fd_ = -1;
  std::string inbox_;
  std::string outbox_;
  std::size_t outbox_offset_ = 0;  // bytes of outbox_ already written
  bool close_after_flush_ = false;
};

}  // namespace flare
