// Small blocking HTTP/1.1 client for scrapers and tests.
//
// This is the consumer side of the telemetry plane: flare_top polls
// /metrics + /healthz with HttpGet, and tests/telemetry_test drives a
// live in-process server with it. HttpTail follows a chunked response
// (the /events NDJSON stream) chunk by chunk with a deadline per read,
// so a test can take N events and hang up — exactly what a misbehaving
// scrape client would do to the server.
//
// Deliberately minimal: IPv4, no TLS, no redirects, no keep-alive reuse.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace flare {

struct HttpResponse {
  int status = 0;
  /// Header names lowercased.
  std::map<std::string, std::string> headers;
  std::string body;  // chunked transfer coding already decoded
};

/// One blocking GET with Connection: close semantics. Returns false on
/// connect/IO/parse failure or when the deadline expires.
bool HttpGet(const std::string& host, std::uint16_t port,
             const std::string& path, HttpResponse* out,
             int timeout_ms = 5000);

/// Blocking streaming GET over a chunked response.
class HttpTail {
 public:
  HttpTail() = default;
  ~HttpTail();
  HttpTail(const HttpTail&) = delete;
  HttpTail& operator=(const HttpTail&) = delete;

  /// Connect, send the request and parse the response headers. False on
  /// failure or a non-2xx status (status() still reports it).
  bool Open(const std::string& host, std::uint16_t port,
            const std::string& path, int timeout_ms = 5000);
  int status() const { return status_; }

  /// Read the next chunk payload (one NDJSON line for /events). False on
  /// end of stream, error, or timeout.
  bool NextChunk(std::string* chunk, int timeout_ms = 5000);

  /// Hang up without reading further — leaves server-side buffered data
  /// undelivered, which is how the slow-client tests apply backpressure.
  void Close();

 private:
  /// Deadline-bounded helpers: one deadline covers a whole Open() or
  /// NextChunk() call, so a peer dribbling one byte per poll cannot
  /// extend the wait indefinitely (each FillBuffer used to get a fresh
  /// timeout).
  bool FillBuffer(std::chrono::steady_clock::time_point deadline);
  bool ReadLine(std::string* line,
                std::chrono::steady_clock::time_point deadline);

  int fd_ = -1;
  int status_ = 0;
  std::string buffer_;
};

/// Connect helper (IPv4); -1 on failure. The connect itself is
/// non-blocking with a poll()-enforced deadline — a blackholed address
/// fails after timeout_ms instead of hanging for the kernel's SYN-retry
/// budget. The returned fd is non-blocking; all reads/writes in this
/// module poll before touching it.
int BlockingConnect(const std::string& host, std::uint16_t port,
                    int timeout_ms);

}  // namespace flare
