#include "netio/tcp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace flare {

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

TcpListener::~TcpListener() { Close(); }

bool TcpListener::Listen(const std::string& address, std::uint16_t port) {
  Close();
  fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return false;
  const int one = 1;
  setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    Close();
    return false;
  }
  if (bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(fd_, 64) != 0) {
    Close();
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    bound_port_ = ntohs(bound.sin_port);
  }
  return true;
}

int TcpListener::Accept() {
  if (fd_ < 0) return -1;
  const int conn = accept4(fd_, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
  return conn >= 0 ? conn : -1;
}

void TcpListener::Close() {
  if (fd_ >= 0) close(fd_);
  fd_ = -1;
  bound_port_ = 0;
}

TcpConnection::TcpConnection(int fd) : fd_(fd) {
  if (fd_ >= 0) {
    SetNonBlocking(fd_);
    const int one = 1;
    setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
}

TcpConnection::~TcpConnection() { Close(); }

IoStatus TcpConnection::ReadSome() {
  if (fd_ < 0) return IoStatus::kError;
  char buf[4096];
  bool any = false;
  for (;;) {
    const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      inbox_.append(buf, static_cast<std::size_t>(n));
      any = true;
      continue;
    }
    if (n == 0) return IoStatus::kEof;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return any ? IoStatus::kOk : IoStatus::kWouldBlock;
    }
    if (errno == EINTR) continue;
    return IoStatus::kError;
  }
}

IoStatus TcpConnection::Flush() {
  if (fd_ < 0) return IoStatus::kError;
  while (outbox_offset_ < outbox_.size()) {
    const ssize_t n =
        send(fd_, outbox_.data() + outbox_offset_,
             outbox_.size() - outbox_offset_, MSG_NOSIGNAL);
    if (n > 0) {
      outbox_offset_ += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // Compact occasionally so a long-lived stream does not keep the
      // already-written prefix around forever.
      if (outbox_offset_ > 64 * 1024) {
        outbox_.erase(0, outbox_offset_);
        outbox_offset_ = 0;
      }
      return IoStatus::kWouldBlock;
    }
    if (errno == EINTR) continue;
    return IoStatus::kError;
  }
  outbox_.clear();
  outbox_offset_ = 0;
  return IoStatus::kOk;
}

void TcpConnection::Close() {
  if (fd_ >= 0) close(fd_);
  fd_ = -1;
}

}  // namespace flare
