// A HAS streaming session: the download loop binding together the HTTP
// client, the playout buffer, and an ABR algorithm.
//
// Loop per segment: advance the player, ask the ABR for the next
// representation, GET the segment, credit the buffer, feed the throughput
// sample back to the ABR, repeat — pausing while the buffer sits above the
// player's max level (the "ON-OFF" behaviour characteristic of HAS).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "abr/abr.h"
#include "has/mpd.h"
#include "has/player.h"
#include "sim/simulator.h"
#include "transport/http.h"

namespace flare {

struct VideoSessionConfig {
  PlayerConfig player;
  /// Throughput samples kept for the ABR context.
  int history_limit = 20;
  /// Poll period while the buffer is full.
  SimTime idle_poll = 200 * kMillisecond;
  /// Live mode: segment k only becomes available once the encoder has
  /// finished it, (k+1) * segment_duration after the session starts. The
  /// buffer is then naturally bounded by the live edge instead of
  /// max_buffer_s.
  bool live = false;
};

class VideoSession {
 public:
  VideoSession(Simulator& sim, HttpClient& http, Mpd mpd,
               std::unique_ptr<AbrAlgorithm> abr,
               const VideoSessionConfig& config);

  VideoSession(const VideoSession&) = delete;
  VideoSession& operator=(const VideoSession&) = delete;

  /// Begin streaming at `start` (absolute simulated time).
  void Start(SimTime start);

  /// Stop requesting further segments (current download completes).
  void Stop() { stopped_ = true; }

  /// Re-point the session at a different HTTP client (handover: the old
  /// transport flow was torn down with the source cell). Any in-flight
  /// request on the old client is abandoned — its segment is neither
  /// counted nor credited — and the loop resumes on the new path.
  void RebindHttp(HttpClient& http);

  const VideoPlayer& player() const { return player_; }
  VideoPlayer& player() { return player_; }
  const Mpd& mpd() const { return mpd_; }
  AbrAlgorithm& abr() { return *abr_; }

  int segments_completed() const { return segments_completed_; }
  /// Representation indices actually downloaded, in order.
  const std::vector<int>& selection_history() const { return selections_; }
  /// Per-segment download throughputs (bits/s), in order.
  const std::vector<double>& throughput_history() const {
    return throughputs_;
  }
  /// Per-segment receive-phase rates (bits/s), in order.
  const std::vector<double>& download_rate_history() const {
    return download_rates_;
  }

 private:
  void PumpLoop();
  void RequestSegment();

  Simulator& sim_;
  HttpClient* http_;  // non-owning; swappable via RebindHttp
  Mpd mpd_;
  std::unique_ptr<AbrAlgorithm> abr_;
  VideoSessionConfig config_;
  VideoPlayer player_;

  bool started_ = false;
  bool stopped_ = false;
  bool request_in_flight_ = false;
  bool delay_applied_ = false;
  int http_epoch_ = 0;  // bumped by RebindHttp to invalidate callbacks
  SimTime live_origin_ = 0;  // stream start (live-edge reference)
  int segments_completed_ = 0;
  std::vector<int> selections_;
  std::vector<double> throughputs_;
  std::vector<double> download_rates_;
  // Liveness token (TcpFlow's pattern): every scheduled pump/completion
  // callback holds a weak_ptr, so a session destroyed mid-run (churn
  // departure) leaves only no-op events behind.
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);
};

}  // namespace flare
