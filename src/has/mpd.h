// Media Presentation Description (MPD) model.
//
// HAS divides a video into fixed-duration segments, each encoded at every
// rung of a bitrate ladder; the MPD advertises the ladder and timing. We
// model the fields the rate-adaptation path needs and provide a simplified
// DASH-style XML serialization + parser (the FLARE plugin parses the MPD to
// learn the available bitrates it forwards to the OneAPI server).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace flare {

struct Representation {
  int index = 0;          // 0-based rung on the ladder, ascending bitrate
  double bitrate_bps = 0.0;
};

struct Mpd {
  std::string title;
  double segment_duration_s = 10.0;
  double media_duration_s = 0.0;  // 0 => unbounded (looped/live source)
  std::vector<Representation> representations;  // ascending bitrate
  /// VBR spread: relative standard deviation of per-segment sizes around
  /// the nominal bitrate (0 = constant-bitrate encoding). Sizes vary
  /// deterministically per (segment, representation) so every client
  /// fetching the same segment sees the same bytes.
  double vbr_sigma = 0.0;

  int NumRepresentations() const {
    return static_cast<int>(representations.size());
  }
  double BitrateOf(int index) const;
  /// Nominal size of one segment at ladder index `index`.
  std::uint64_t SegmentBytes(int index) const;
  /// Actual size of segment `segment_number` at index `index`: nominal
  /// under CBR, deterministic pseudo-random variation under VBR.
  std::uint64_t SegmentBytesAt(int index, int segment_number) const;
  /// Highest index whose bitrate is <= `bps`; -1 if even the lowest rung
  /// exceeds it (callers typically clamp to 0).
  int HighestIndexBelow(double bps) const;
  /// Index of the exact bitrate, or -1.
  int IndexOfBitrate(double bps) const;
  bool Valid() const;  // non-empty, ascending, positive rates/duration
};

/// Build an MPD from a ladder given in Kbps (the unit the paper uses).
Mpd MakeMpd(const std::vector<double>& ladder_kbps,
            double segment_duration_s, double media_duration_s = 0.0,
            const std::string& title = "video");

/// Simplified DASH-flavoured XML.
std::string SerializeMpd(const Mpd& mpd);

/// Parse what SerializeMpd produces (plus whitespace/attribute-order
/// tolerance). Returns nullopt on malformed input.
std::optional<Mpd> ParseMpd(const std::string& xml);

// Ladders used in the paper.
/// Testbed encoding (Section IV-A), Kbps.
std::vector<double> TestbedLadderKbps();
/// ns-3 simulation ladder (Table III), Kbps.
std::vector<double> SimulationLadderKbps();
/// Dense ladder for the relaxation experiments (Figures 8-10), Kbps.
std::vector<double> DenseLadderKbps();

}  // namespace flare
