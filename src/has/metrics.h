// Per-client QoE metrics used throughout the paper's evaluation: average
// video bitrate, number of bitrate changes, buffer-underflow (rebuffer)
// time, and Jain's fairness index across clients (computed elsewhere from
// these summaries).
#pragma once

#include <vector>

#include "has/video_session.h"

namespace flare {

struct ClientMetrics {
  double avg_bitrate_bps = 0.0;
  int bitrate_changes = 0;
  double rebuffer_time_s = 0.0;
  int rebuffer_events = 0;
  int segments = 0;
  double avg_throughput_bps = 0.0;  // mean of per-segment download rates
  /// Composite QoE (Yin et al. form, per segment): see QoeScore.
  double qoe = 0.0;
};

/// Weights of the composite QoE objective
///   (1/K) * sum_k [ q(R_k) - lambda |q(R_k) - q(R_{k-1})| ]
///          - mu * rebuffer_s / playtime,
/// with q = bitrate in Mbps — the linear QoE model of Yin et al. that the
/// MPC baseline also optimizes internally.
struct QoeWeights {
  double lambda_switch = 1.0;
  double mu_rebuffer = 8.0;
};

/// Switches in a per-segment bitrate sequence (adjacent unequal pairs).
int CountBitrateChanges(const std::vector<double>& bitrates);

/// Composite QoE from a per-segment bitrate sequence plus stall time over
/// the playback horizon. Returns 0 for an empty sequence.
double QoeScore(const std::vector<double>& bitrates_bps,
                double rebuffer_s, double playtime_s,
                const QoeWeights& weights = QoeWeights{});

ClientMetrics ComputeClientMetrics(const VideoSession& session);

}  // namespace flare
