// Uplink live broadcast session — the paper's Section V extension claim
// ("FLARE can be easily extended to uplink video streaming with minor
// modifications"), made concrete.
//
// A UE encodes video live and uploads one segment per segment duration
// over an uplink bearer (the Cell models whichever direction's shared
// radio resource; for uplink the UE is the sender, so the "RLC queue"
// lives in the UE and the GBR protects its transmissions). The ABR —
// typically a FlarePlugin steered by the OneAPI server — picks each
// segment's encoding rate *before* it is produced. The quality metric is
// upload lag: how far the last fully-uploaded segment trails the encoder.
#pragma once

#include <memory>
#include <vector>

#include "abr/abr.h"
#include "has/mpd.h"
#include "sim/simulator.h"
#include "transport/tcp_flow.h"

namespace flare {

struct UplinkSessionConfig {
  /// Segments the sender may buffer before it must drop to the lowest
  /// rung regardless of the ABR (encoder back-pressure).
  int max_backlog_segments = 3;
};

class UplinkBroadcastSession {
 public:
  UplinkBroadcastSession(Simulator& sim, TcpFlow& flow, Mpd mpd,
                         std::unique_ptr<AbrAlgorithm> abr,
                         const UplinkSessionConfig& config);

  UplinkBroadcastSession(const UplinkBroadcastSession&) = delete;
  UplinkBroadcastSession& operator=(const UplinkBroadcastSession&) =
      delete;

  /// Begin encoding/uploading at `start`.
  void Start(SimTime start);
  void Stop() { stopped_ = true; }

  int segments_encoded() const { return segments_encoded_; }
  int segments_uploaded() const { return segments_uploaded_; }
  /// Segments currently queued or in flight.
  int backlog() const { return segments_encoded_ - segments_uploaded_; }
  /// Seconds the last completed upload trailed its encode time (max over
  /// the run) — the broadcast's worst-case glass-to-glass contribution.
  double max_upload_lag_s() const { return max_lag_s_; }
  const std::vector<int>& selection_history() const { return selections_; }
  double avg_bitrate_bps() const;

  AbrAlgorithm& abr() { return *abr_; }

 private:
  void EncodeTick();
  void OnUploaded(std::uint64_t bytes, SimTime now);

  Simulator& sim_;
  TcpFlow& flow_;
  Mpd mpd_;
  std::unique_ptr<AbrAlgorithm> abr_;
  UplinkSessionConfig config_;

  bool started_ = false;
  bool stopped_ = false;
  int segments_encoded_ = 0;
  int segments_uploaded_ = 0;
  std::vector<int> selections_;
  std::vector<double> throughputs_;

  // Upload-completion tracking: FIFO of (encode time, bytes remaining).
  struct PendingSegment {
    SimTime encoded_at = 0;
    std::uint64_t remaining = 0;
  };
  std::vector<PendingSegment> pending_;
  double max_lag_s_ = 0.0;
};

}  // namespace flare
