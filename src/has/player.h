// Client playout-buffer model.
//
// The buffer holds downloaded-but-unplayed video, measured in seconds of
// media. Playout drains it in real time once startup buffering completes;
// when it empties, the player stalls (rebuffers) until `resume_threshold_s`
// of media re-accumulates. State advances lazily — callers invoke
// AdvanceTo(now) (the session does this on every event) — so no per-frame
// simulation events are needed.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/qoe_analytics.h"
#include "obs/span_trace.h"
#include "util/time.h"

namespace flare {

struct PlayerConfig {
  /// Buffered media needed before initial playout starts.
  double startup_threshold_s = 2.0;
  /// Buffered media needed to resume after a stall.
  double resume_threshold_s = 1.0;
  /// Download is paused when the buffer exceeds this (segments are only
  /// requested while below it).
  double max_buffer_s = 60.0;
};

class VideoPlayer {
 public:
  explicit VideoPlayer(const PlayerConfig& config);

  /// Advance playout to `now`; accounts drain and stall time.
  void AdvanceTo(SimTime now);

  /// A whole segment finished downloading at `now`.
  void OnSegment(double duration_s, double bitrate_bps, SimTime now);

  double buffer_s() const { return buffer_s_; }
  bool playing() const { return state_ == State::kPlaying; }
  bool stalled() const { return state_ != State::kPlaying; }
  bool WantsMoreSegments() const { return buffer_s_ < config_.max_buffer_s; }

  /// Cumulative stall (underflow) time after initial startup.
  double rebuffer_time_s() const { return rebuffer_s_; }
  /// Stall events after initial startup.
  int rebuffer_events() const { return rebuffer_events_; }
  double played_s() const { return played_s_; }

  /// Per-segment bitrate history (for switch counting / average bitrate).
  const std::vector<double>& segment_bitrates() const {
    return segment_bitrates_;
  }

  /// Bitrate changes between consecutive downloaded segments.
  int switch_count() const;

  /// Attach metrics (null = detach): stall events, rung switches, and a
  /// buffer-occupancy histogram sampled at each segment arrival. Shared
  /// across players — counters aggregate cell-wide.
  void SetMetrics(MetricsRegistry* registry);

  /// Attach a span tracer (null = detach): stall/resume/playout-start and
  /// per-segment/switch instants on the player lane, tagged with
  /// `client`. Stall instants are stamped at the exact underflow time
  /// even though the lazy model detects them at the next event.
  void SetSpanTracer(SpanTracer* tracer, int client);

  /// Attach the QoE/flight tier (either may be null): `qoe` receives the
  /// session's segments, stall edges and playout start under id
  /// `session`; `flight` records stall_begin/stall_end events. Stall
  /// begins use the same exact-underflow timestamps as the span tracer,
  /// so the engine's stall totals match rebuffer_time_s().
  void SetQoeAnalytics(QoeAnalytics* qoe, FlightRecorder* flight,
                       int session);

 private:
  enum class State { kStartup, kPlaying, kStalled };

  PlayerConfig config_;
  State state_ = State::kStartup;
  double buffer_s_ = 0.0;
  double rebuffer_s_ = 0.0;
  double played_s_ = 0.0;
  int rebuffer_events_ = 0;
  SimTime last_update_ = 0;
  std::vector<double> segment_bitrates_;

  CounterHandle stalls_metric_;
  CounterHandle switches_metric_;
  HistogramHandle buffer_metric_;
  SpanTracer* span_trace_ = nullptr;
  int span_client_ = -1;
  QoeAnalytics* qoe_ = nullptr;
  FlightRecorder* flight_ = nullptr;
  int qoe_session_ = -1;
};

}  // namespace flare
