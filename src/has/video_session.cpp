#include "has/video_session.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/logging.h"

namespace flare {

VideoSession::VideoSession(Simulator& sim, HttpClient& http, Mpd mpd,
                           std::unique_ptr<AbrAlgorithm> abr,
                           const VideoSessionConfig& config)
    : sim_(sim),
      http_(&http),
      mpd_(std::move(mpd)),
      abr_(std::move(abr)),
      config_(config),
      player_(config.player) {
  if (!mpd_.Valid()) throw std::invalid_argument("VideoSession: bad MPD");
  if (!abr_) throw std::invalid_argument("VideoSession: ABR is null");
}

void VideoSession::Start(SimTime start) {
  if (started_) return;
  started_ = true;
  sim_.At(start, [this, alive = std::weak_ptr<char>(alive_)] {
    if (alive.expired()) return;
    live_origin_ = sim_.Now();
    PumpLoop();
  });
}

void VideoSession::RebindHttp(HttpClient& http) {
  http_ = &http;
  ++http_epoch_;
  if (request_in_flight_) {
    // The abandoned request's selection never completed; drop it from
    // the history so selections stay aligned with downloaded segments.
    request_in_flight_ = false;
    if (!selections_.empty()) selections_.pop_back();
  }
  if (started_ && !stopped_) {
    sim_.After(0, [this, alive = std::weak_ptr<char>(alive_)] {
      if (alive.expired()) return;
      PumpLoop();
    });
  }
}

void VideoSession::PumpLoop() {
  if (stopped_ || request_in_flight_) return;
  player_.AdvanceTo(sim_.Now());

  // Finite media: stop once every segment has been fetched.
  if (mpd_.media_duration_s > 0.0) {
    const int total = static_cast<int>(mpd_.media_duration_s /
                                       mpd_.segment_duration_s);
    if (segments_completed_ >= total) {
      stopped_ = true;
      return;
    }
  }

  if (!player_.WantsMoreSegments()) {
    sim_.After(config_.idle_poll, [this, alive = std::weak_ptr<char>(alive_)] {
      if (alive.expired()) return;
      PumpLoop();
    });
    return;
  }

  // Live mode: wait for the encoder to finish the next segment.
  if (config_.live) {
    const SimTime available_at =
        live_origin_ + FromSeconds((segments_completed_ + 1) *
                                   mpd_.segment_duration_s);
    if (sim_.Now() < available_at) {
      sim_.At(available_at, [this, alive = std::weak_ptr<char>(alive_)] {
        if (alive.expired()) return;
        PumpLoop();
      });
      return;
    }
  }

  // Give the ABR a chance to jitter the request time (FESTIVE's randomized
  // scheduling); the delay applies once per request.
  AbrContext context;
  context.mpd = &mpd_;
  context.now = sim_.Now();
  context.segment_number = segments_completed_;
  context.last_index = selections_.empty() ? -1 : selections_.back();
  context.buffer_s = player_.buffer_s();
  const SimTime delay = abr_->RequestDelay(context);
  if (delay > 0 && !delay_applied_) {
    delay_applied_ = true;
    sim_.After(delay, [this, alive = std::weak_ptr<char>(alive_)] {
      if (alive.expired()) return;
      PumpLoop();
    });
    return;
  }
  delay_applied_ = false;
  RequestSegment();
}

void VideoSession::RequestSegment() {
  AbrContext context;
  context.mpd = &mpd_;
  context.now = sim_.Now();
  context.segment_number = segments_completed_;
  context.last_index = selections_.empty() ? -1 : selections_.back();
  context.buffer_s = player_.buffer_s();
  context.throughput_history_bps = throughputs_;
  context.download_rate_history_bps = download_rates_;

  int index = abr_->NextRepresentation(context);
  index = std::clamp(index, 0, mpd_.NumRepresentations() - 1);
  selections_.push_back(index);

  request_in_flight_ = true;
  const double bitrate = mpd_.BitrateOf(index);
  const double duration = mpd_.segment_duration_s;
  http_->Get(mpd_.SegmentBytesAt(index, segments_completed_),
             [this, bitrate, duration, epoch = http_epoch_,
              alive = std::weak_ptr<char>(alive_)](const HttpResult& result) {
    // The session may be gone (churn departure tears it down while the
    // HTTP client still holds this completion) ...
    if (alive.expired()) return;
    // ... or a completion from a client we rebound away from is stale:
    // that segment was abandoned at handover.
    if (epoch != http_epoch_) return;
    request_in_flight_ = false;
    ++segments_completed_;
    player_.OnSegment(duration, bitrate, sim_.Now());

    throughputs_.push_back(result.throughput_bps);
    download_rates_.push_back(result.download_bps);
    if (static_cast<int>(throughputs_.size()) > config_.history_limit) {
      throughputs_.erase(throughputs_.begin());
      download_rates_.erase(download_rates_.begin());
    }

    AbrContext context;
    context.mpd = &mpd_;
    context.now = sim_.Now();
    context.segment_number = segments_completed_;
    context.last_index = selections_.back();
    context.buffer_s = player_.buffer_s();
    context.throughput_history_bps = throughputs_;
    context.download_rate_history_bps = download_rates_;
    abr_->OnSegmentComplete(context, result.throughput_bps);

    PumpLoop();
  });
}

}  // namespace flare
