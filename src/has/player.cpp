#include "has/player.h"

#include <algorithm>

namespace flare {

VideoPlayer::VideoPlayer(const PlayerConfig& config) : config_(config) {}

void VideoPlayer::AdvanceTo(SimTime now) {
  if (now <= last_update_) return;
  const double elapsed = ToSeconds(now - last_update_);
  last_update_ = now;

  switch (state_) {
    case State::kStartup:
    case State::kStalled:
      // Waiting on downloads; buffer only grows via OnSegment. Stall time
      // (after startup) accrues in real time.
      if (state_ == State::kStalled) rebuffer_s_ += elapsed;
      break;
    case State::kPlaying: {
      const double drained = std::min(buffer_s_, elapsed);
      buffer_s_ -= drained;
      played_s_ += drained;
      if (drained < elapsed) {
        // Ran dry mid-interval: the remainder was a stall.
        state_ = State::kStalled;
        ++rebuffer_events_;
        rebuffer_s_ += elapsed - drained;
      }
      break;
    }
  }
}

void VideoPlayer::OnSegment(double duration_s, double bitrate_bps,
                            SimTime now) {
  AdvanceTo(now);
  buffer_s_ += duration_s;
  segment_bitrates_.push_back(bitrate_bps);
  if (state_ == State::kStartup && buffer_s_ >= config_.startup_threshold_s) {
    state_ = State::kPlaying;
  } else if (state_ == State::kStalled &&
             buffer_s_ >= config_.resume_threshold_s) {
    state_ = State::kPlaying;
  }
}

}  // namespace flare
