#include "has/player.h"

#include <algorithm>
#include <string>

#include "util/csv.h"

namespace flare {
namespace {

std::string ClientArgs(int client, double buffer_s) {
  return "{\"client\":" + std::to_string(client) +
         ",\"buffer_s\":" + FormatNumber(buffer_s) + "}";
}

}  // namespace

VideoPlayer::VideoPlayer(const PlayerConfig& config) : config_(config) {}

void VideoPlayer::AdvanceTo(SimTime now) {
  if (now <= last_update_) return;
  const double elapsed = ToSeconds(now - last_update_);
  last_update_ = now;

  switch (state_) {
    case State::kStartup:
    case State::kStalled:
      // Waiting on downloads; buffer only grows via OnSegment. Stall time
      // (after startup) accrues in real time.
      if (state_ == State::kStalled) rebuffer_s_ += elapsed;
      break;
    case State::kPlaying: {
      const double drained = std::min(buffer_s_, elapsed);
      buffer_s_ -= drained;
      played_s_ += drained;
      if (drained < elapsed) {
        // Ran dry mid-interval: the remainder was a stall.
        state_ = State::kStalled;
        ++rebuffer_events_;
        stalls_metric_.Add();
        rebuffer_s_ += elapsed - drained;
        // The buffer actually hit zero (elapsed - drained) seconds ago.
        const double underflow_s = ToSeconds(now) - (elapsed - drained);
        if (span_trace_ != nullptr) {
          span_trace_->Instant(kLanePlayer, "player", "stall",
                               underflow_s * 1e6,
                               ClientArgs(span_client_, 0.0));
        }
        if (qoe_ != nullptr) qoe_->OnStallBegin(qoe_session_, underflow_s);
        if (flight_ != nullptr) {
          flight_->Record(underflow_s, "stall_begin", kInvalidFlow,
                          qoe_session_);
        }
      }
      break;
    }
  }
}

void VideoPlayer::OnSegment(double duration_s, double bitrate_bps,
                            SimTime now) {
  AdvanceTo(now);
  buffer_s_ += duration_s;
  const bool switched =
      !segment_bitrates_.empty() && segment_bitrates_.back() != bitrate_bps;
  if (switched) switches_metric_.Add();
  if (span_trace_ != nullptr) {
    const double ts_us = static_cast<double>(now);
    span_trace_->Instant(
        kLanePlayer, "player", "segment", ts_us,
        "{\"client\":" + std::to_string(span_client_) +
            ",\"bitrate_kbps\":" + FormatNumber(bitrate_bps / 1000.0) +
            ",\"buffer_s\":" + FormatNumber(buffer_s_) + "}");
    if (switched) {
      span_trace_->Instant(
          kLanePlayer, "player", "switch", ts_us,
          "{\"client\":" + std::to_string(span_client_) +
              ",\"from_kbps\":" +
              FormatNumber(segment_bitrates_.back() / 1000.0) +
              ",\"to_kbps\":" + FormatNumber(bitrate_bps / 1000.0) + "}");
    }
  }
  segment_bitrates_.push_back(bitrate_bps);
  buffer_metric_.Observe(buffer_s_);
  if (qoe_ != nullptr) qoe_->OnSegment(qoe_session_, bitrate_bps, duration_s);
  if (state_ == State::kStartup && buffer_s_ >= config_.startup_threshold_s) {
    state_ = State::kPlaying;
    if (span_trace_ != nullptr) {
      span_trace_->Instant(kLanePlayer, "player", "playout_start",
                           static_cast<double>(now),
                           ClientArgs(span_client_, buffer_s_));
    }
    if (qoe_ != nullptr) qoe_->OnPlayoutStart(qoe_session_, ToSeconds(now));
  } else if (state_ == State::kStalled &&
             buffer_s_ >= config_.resume_threshold_s) {
    state_ = State::kPlaying;
    if (span_trace_ != nullptr) {
      span_trace_->Instant(kLanePlayer, "player", "resume",
                           static_cast<double>(now),
                           ClientArgs(span_client_, buffer_s_));
    }
    if (qoe_ != nullptr) qoe_->OnStallEnd(qoe_session_, ToSeconds(now));
    if (flight_ != nullptr) {
      flight_->Record(ToSeconds(now), "stall_end", kInvalidFlow,
                      qoe_session_, buffer_s_);
    }
  }
}

int VideoPlayer::switch_count() const {
  int switches = 0;
  for (std::size_t i = 1; i < segment_bitrates_.size(); ++i) {
    if (segment_bitrates_[i] != segment_bitrates_[i - 1]) ++switches;
  }
  return switches;
}

void VideoPlayer::SetSpanTracer(SpanTracer* tracer, int client) {
  span_trace_ = tracer;
  span_client_ = client;
}

void VideoPlayer::SetQoeAnalytics(QoeAnalytics* qoe, FlightRecorder* flight,
                                  int session) {
  qoe_ = qoe;
  flight_ = flight;
  qoe_session_ = session;
}

void VideoPlayer::SetMetrics(MetricsRegistry* registry) {
  stalls_metric_ = MakeCounterHandle(registry, "player.stalls");
  switches_metric_ = MakeCounterHandle(registry, "player.switches");
  buffer_metric_ = MakeHistogramHandle(
      registry, "player.buffer_s",
      {1.0, 2.0, 5.0, 10.0, 20.0, 30.0, 45.0, 60.0});
}

}  // namespace flare
