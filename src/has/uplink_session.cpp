#include "has/uplink_session.h"

#include <algorithm>
#include <stdexcept>

namespace flare {

UplinkBroadcastSession::UplinkBroadcastSession(
    Simulator& sim, TcpFlow& flow, Mpd mpd,
    std::unique_ptr<AbrAlgorithm> abr, const UplinkSessionConfig& config)
    : sim_(sim),
      flow_(flow),
      mpd_(std::move(mpd)),
      abr_(std::move(abr)),
      config_(config) {
  if (!mpd_.Valid()) {
    throw std::invalid_argument("UplinkBroadcastSession: bad MPD");
  }
  if (!abr_) {
    throw std::invalid_argument("UplinkBroadcastSession: ABR is null");
  }
  flow_.SetOnReceive([this](std::uint64_t bytes, SimTime now) {
    OnUploaded(bytes, now);
  });
}

void UplinkBroadcastSession::Start(SimTime start) {
  if (started_) return;
  started_ = true;
  const SimTime period = FromSeconds(mpd_.segment_duration_s);
  sim_.Every(start + period, period, [this] {
    if (!stopped_) EncodeTick();
  });
}

void UplinkBroadcastSession::EncodeTick() {
  AbrContext context;
  context.mpd = &mpd_;
  context.now = sim_.Now();
  context.segment_number = segments_encoded_;
  context.last_index = selections_.empty() ? -1 : selections_.back();
  // For uplink the "buffer" signal is inverted: report the backlog (in
  // seconds of media awaiting upload) so buffer-aware ABRs see pressure.
  context.buffer_s =
      static_cast<double>(backlog()) * mpd_.segment_duration_s;
  context.throughput_history_bps = throughputs_;

  int index = abr_->NextRepresentation(context);
  // Encoder back-pressure: a deep backlog forces the lowest rung.
  if (backlog() >= config_.max_backlog_segments) index = 0;
  index = std::clamp(index, 0, mpd_.NumRepresentations() - 1);
  selections_.push_back(index);

  const std::uint64_t bytes =
      mpd_.SegmentBytesAt(index, segments_encoded_);
  ++segments_encoded_;
  pending_.push_back(PendingSegment{sim_.Now(), bytes});
  flow_.Send(bytes);
}

void UplinkBroadcastSession::OnUploaded(std::uint64_t bytes, SimTime now) {
  while (bytes > 0 && !pending_.empty()) {
    PendingSegment& head = pending_.front();
    const std::uint64_t consumed =
        std::min<std::uint64_t>(bytes, head.remaining);
    head.remaining -= consumed;
    bytes -= consumed;
    if (head.remaining > 0) break;

    ++segments_uploaded_;
    const double lag_s = ToSeconds(now - head.encoded_at);
    max_lag_s_ = std::max(max_lag_s_, lag_s);
    const double rate =
        static_cast<double>(mpd_.SegmentBytesAt(
            selections_[static_cast<std::size_t>(segments_uploaded_ - 1)],
            segments_uploaded_ - 1)) *
        8.0 / std::max(lag_s, 1e-9);
    throughputs_.push_back(rate);
    if (throughputs_.size() > 20) throughputs_.erase(throughputs_.begin());

    AbrContext context;
    context.mpd = &mpd_;
    context.now = now;
    context.last_index =
        selections_[static_cast<std::size_t>(segments_uploaded_ - 1)];
    context.buffer_s =
        static_cast<double>(backlog()) * mpd_.segment_duration_s;
    context.throughput_history_bps = throughputs_;
    abr_->OnSegmentComplete(context, rate);

    pending_.erase(pending_.begin());
  }
}

double UplinkBroadcastSession::avg_bitrate_bps() const {
  if (selections_.empty()) return 0.0;
  double sum = 0.0;
  for (int index : selections_) sum += mpd_.BitrateOf(index);
  return sum / static_cast<double>(selections_.size());
}

}  // namespace flare
