#include "has/metrics.h"

#include <cmath>

namespace flare {

int CountBitrateChanges(const std::vector<double>& bitrates) {
  int changes = 0;
  for (std::size_t i = 1; i < bitrates.size(); ++i) {
    if (bitrates[i] != bitrates[i - 1]) ++changes;
  }
  return changes;
}

double QoeScore(const std::vector<double>& bitrates_bps, double rebuffer_s,
                double playtime_s, const QoeWeights& weights) {
  if (bitrates_bps.empty()) return 0.0;
  double quality = 0.0;
  double switching = 0.0;
  for (std::size_t i = 0; i < bitrates_bps.size(); ++i) {
    const double q = bitrates_bps[i] / 1e6;
    quality += q;
    if (i > 0) {
      switching += std::abs(q - bitrates_bps[i - 1] / 1e6);
    }
  }
  const double k = static_cast<double>(bitrates_bps.size());
  const double stall_fraction =
      playtime_s > 0.0 ? rebuffer_s / playtime_s : 0.0;
  return (quality - weights.lambda_switch * switching) / k -
         weights.mu_rebuffer * stall_fraction;
}

ClientMetrics ComputeClientMetrics(const VideoSession& session) {
  ClientMetrics m;
  const std::vector<double>& bitrates = session.player().segment_bitrates();
  m.segments = static_cast<int>(bitrates.size());
  double sum = 0.0;
  for (double b : bitrates) sum += b;
  m.avg_bitrate_bps = bitrates.empty()
                          ? 0.0
                          : sum / static_cast<double>(bitrates.size());
  m.bitrate_changes = CountBitrateChanges(bitrates);
  m.rebuffer_time_s = session.player().rebuffer_time_s();
  m.rebuffer_events = session.player().rebuffer_events();

  const std::vector<double>& tputs = session.throughput_history();
  double tput_sum = 0.0;
  for (double t : tputs) tput_sum += t;
  m.avg_throughput_bps =
      tputs.empty() ? 0.0 : tput_sum / static_cast<double>(tputs.size());

  const double playtime_s =
      session.player().played_s() + m.rebuffer_time_s;
  m.qoe = QoeScore(bitrates, m.rebuffer_time_s, playtime_s);
  return m;
}

}  // namespace flare
