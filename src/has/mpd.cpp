#include "has/mpd.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "util/csv.h"

namespace flare {

double Mpd::BitrateOf(int index) const {
  if (index < 0 || index >= NumRepresentations()) return 0.0;
  return representations[static_cast<std::size_t>(index)].bitrate_bps;
}

std::uint64_t Mpd::SegmentBytes(int index) const {
  const double bits = BitrateOf(index) * segment_duration_s;
  return static_cast<std::uint64_t>(std::llround(bits / 8.0));
}

std::uint64_t Mpd::SegmentBytesAt(int index, int segment_number) const {
  const std::uint64_t nominal = SegmentBytes(index);
  if (vbr_sigma <= 0.0 || nominal == 0) return nominal;
  // SplitMix64 over (segment, representation) -> deterministic scale
  // factor; sum of two uniforms approximates the bell shape cheaply.
  std::uint64_t z = (static_cast<std::uint64_t>(segment_number) << 20) ^
                    static_cast<std::uint64_t>(index);
  z = (z + 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z = z ^ (z >> 31);
  const double u1 = static_cast<double>(z & 0xffffffffULL) / 4294967296.0;
  const double u2 = static_cast<double>(z >> 32) / 4294967296.0;
  // Mean 0, stddev ~0.408; rescale to vbr_sigma and clamp at +-2.5 sigma.
  const double noise = (u1 + u2 - 1.0) / 0.4082 * vbr_sigma;
  const double scale =
      std::clamp(1.0 + noise, 1.0 - 2.5 * vbr_sigma, 1.0 + 2.5 * vbr_sigma);
  const double bytes = static_cast<double>(nominal) * std::max(scale, 0.1);
  return static_cast<std::uint64_t>(std::llround(bytes));
}

int Mpd::HighestIndexBelow(double bps) const {
  int best = -1;
  for (const Representation& r : representations) {
    if (r.bitrate_bps <= bps) best = r.index;
  }
  return best;
}

int Mpd::IndexOfBitrate(double bps) const {
  for (const Representation& r : representations) {
    if (std::abs(r.bitrate_bps - bps) < 0.5) return r.index;
  }
  return -1;
}

bool Mpd::Valid() const {
  if (representations.empty() || segment_duration_s <= 0.0) return false;
  double prev = 0.0;
  for (std::size_t i = 0; i < representations.size(); ++i) {
    const Representation& r = representations[i];
    if (r.index != static_cast<int>(i)) return false;
    if (r.bitrate_bps <= prev) return false;
    prev = r.bitrate_bps;
  }
  return true;
}

Mpd MakeMpd(const std::vector<double>& ladder_kbps,
            double segment_duration_s, double media_duration_s,
            const std::string& title) {
  Mpd mpd;
  mpd.title = title;
  mpd.segment_duration_s = segment_duration_s;
  mpd.media_duration_s = media_duration_s;
  std::vector<double> sorted = ladder_kbps;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    mpd.representations.push_back(
        Representation{static_cast<int>(i), sorted[i] * 1000.0});
  }
  return mpd;
}

std::string SerializeMpd(const Mpd& mpd) {
  std::ostringstream out;
  out << "<MPD title=\"" << mpd.title << "\" segmentDuration=\""
      << FormatNumber(mpd.segment_duration_s) << "\" mediaDuration=\""
      << FormatNumber(mpd.media_duration_s) << "\" vbrSigma=\""
      << FormatNumber(mpd.vbr_sigma) << "\">\n";
  for (const Representation& r : mpd.representations) {
    out << "  <Representation id=\"" << r.index << "\" bandwidth=\""
        << FormatNumber(r.bitrate_bps) << "\"/>\n";
  }
  out << "</MPD>\n";
  return out.str();
}

namespace {

/// Extract attribute `name="value"` from `tag`; nullopt if absent.
std::optional<std::string> Attribute(const std::string& tag,
                                     const std::string& name) {
  const std::string needle = name + "=\"";
  const auto start = tag.find(needle);
  if (start == std::string::npos) return std::nullopt;
  const auto value_start = start + needle.size();
  const auto end = tag.find('"', value_start);
  if (end == std::string::npos) return std::nullopt;
  return tag.substr(value_start, end - value_start);
}

std::optional<double> NumberAttribute(const std::string& tag,
                                      const std::string& name) {
  const auto text = Attribute(tag, name);
  if (!text) return std::nullopt;
  char* end = nullptr;
  const double value = std::strtod(text->c_str(), &end);
  if (end == text->c_str()) return std::nullopt;
  return value;
}

}  // namespace

std::optional<Mpd> ParseMpd(const std::string& xml) {
  const auto mpd_open = xml.find("<MPD");
  if (mpd_open == std::string::npos) return std::nullopt;
  const auto mpd_tag_end = xml.find('>', mpd_open);
  if (mpd_tag_end == std::string::npos) return std::nullopt;
  const std::string mpd_tag = xml.substr(mpd_open, mpd_tag_end - mpd_open);

  Mpd mpd;
  mpd.title = Attribute(mpd_tag, "title").value_or("");
  const auto seg = NumberAttribute(mpd_tag, "segmentDuration");
  if (!seg) return std::nullopt;
  mpd.segment_duration_s = *seg;
  mpd.media_duration_s =
      NumberAttribute(mpd_tag, "mediaDuration").value_or(0.0);
  mpd.vbr_sigma = NumberAttribute(mpd_tag, "vbrSigma").value_or(0.0);

  std::size_t cursor = mpd_tag_end;
  while (true) {
    const auto rep_open = xml.find("<Representation", cursor);
    if (rep_open == std::string::npos) break;
    const auto rep_end = xml.find('>', rep_open);
    if (rep_end == std::string::npos) return std::nullopt;
    const std::string rep_tag = xml.substr(rep_open, rep_end - rep_open);
    const auto bandwidth = NumberAttribute(rep_tag, "bandwidth");
    if (!bandwidth) return std::nullopt;
    mpd.representations.push_back(Representation{
        static_cast<int>(mpd.representations.size()), *bandwidth});
    cursor = rep_end;
  }

  // Normalize: sort ascending and re-index, then validate.
  std::sort(mpd.representations.begin(), mpd.representations.end(),
            [](const Representation& a, const Representation& b) {
              return a.bitrate_bps < b.bitrate_bps;
            });
  for (std::size_t i = 0; i < mpd.representations.size(); ++i) {
    mpd.representations[i].index = static_cast<int>(i);
  }
  if (!mpd.Valid()) return std::nullopt;
  return mpd;
}

std::vector<double> TestbedLadderKbps() {
  return {200, 310, 450, 790, 1100, 1320, 2280, 2750};
}

std::vector<double> SimulationLadderKbps() {
  return {100, 250, 500, 1000, 2000, 3000};
}

std::vector<double> DenseLadderKbps() {
  std::vector<double> ladder;
  for (int k = 1; k <= 12; ++k) ladder.push_back(100.0 * k);
  return ladder;
}

}  // namespace flare
