// Minimal leveled logging.
//
// The simulator is CPU-bound in the TTI loop, so the macros compile to a
// level check before any formatting happens. Output goes to stderr by
// default; tests can install a capturing sink.
#pragma once

#include <functional>
#include <mutex>
#include <sstream>
#include <string>

namespace flare {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

using LogSink = std::function<void(LogLevel, const std::string&)>;

class Logger {
 public:
  static Logger& Instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  bool Enabled(LogLevel level) const { return level >= level_; }

  /// Replace the output sink (returns the previous one, for restoration).
  LogSink SetSink(LogSink sink);

  void Write(LogLevel level, const std::string& message);

 private:
  Logger();
  LogLevel level_ = LogLevel::kWarn;
  // Guards sink_: the process-wide Logger is shared by every event domain,
  // so writes from parallel-runner workers must serialize on it.
  std::mutex mu_;
  LogSink sink_;
};

const char* LogLevelName(LogLevel level);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::Instance().Write(level_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace flare

#define FLARE_LOG(level)                                  \
  if (!::flare::Logger::Instance().Enabled(level)) {      \
  } else                                                  \
    ::flare::detail::LogLine(level)

#define FLOG_DEBUG FLARE_LOG(::flare::LogLevel::kDebug)
#define FLOG_INFO FLARE_LOG(::flare::LogLevel::kInfo)
#define FLOG_WARN FLARE_LOG(::flare::LogLevel::kWarn)
#define FLOG_ERROR FLARE_LOG(::flare::LogLevel::kError)
