#include "util/logging.h"

#include <cstdio>
#include <utility>

namespace flare {

Logger& Logger::Instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() {
  sink_ = [](LogLevel level, const std::string& message) {
    std::fprintf(stderr, "[%s] %s\n", LogLevelName(level), message.c_str());
  };
}

LogSink Logger::SetSink(LogSink sink) {
  const std::lock_guard<std::mutex> lock(mu_);
  LogSink previous = std::move(sink_);
  sink_ = std::move(sink);
  return previous;
}

void Logger::Write(LogLevel level, const std::string& message) {
  if (!Enabled(level)) return;
  const std::lock_guard<std::mutex> lock(mu_);
  if (sink_) sink_(level, message);
}

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace flare
