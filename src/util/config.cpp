#include "util/config.h"

#include <cctype>
#include <cstdlib>

#include "util/logging.h"

namespace flare {
namespace {

std::string EnvKey(const std::string& key) {
  std::string out = "FLARE_";
  for (char c : key) {
    out.push_back(static_cast<char>(
        std::toupper(static_cast<unsigned char>(c))));
  }
  return out;
}

}  // namespace

Config Config::FromArgs(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    const auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      FLOG_WARN << "Config: ignoring argument '" << token << "'";
      continue;
    }
    config.Set(token.substr(0, eq), token.substr(eq + 1));
  }
  return config;
}

void Config::Set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

bool Config::Has(const std::string& key) const {
  return Lookup(key).has_value();
}

std::vector<std::string> Config::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(values_.size());
  for (const auto& [key, value] : values_) keys.push_back(key);
  return keys;
}

std::optional<std::string> Config::Lookup(const std::string& key) const {
  const auto it = values_.find(key);
  if (it != values_.end()) return it->second;
  if (const char* env = std::getenv(EnvKey(key).c_str())) {
    return std::string(env);
  }
  return std::nullopt;
}

std::optional<std::string> Config::GetString(const std::string& key) const {
  return Lookup(key);
}

double Config::GetDouble(const std::string& key, double fallback) const {
  const auto value = Lookup(key);
  if (!value) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value->c_str(), &end);
  if (end == value->c_str()) {
    FLOG_WARN << "Config: key '" << key << "' has non-numeric value '"
              << *value << "'";
    return fallback;
  }
  return parsed;
}

int Config::GetInt(const std::string& key, int fallback) const {
  return static_cast<int>(GetDouble(key, fallback));
}

bool Config::GetBool(const std::string& key, bool fallback) const {
  const auto value = Lookup(key);
  if (!value) return fallback;
  if (*value == "1" || *value == "true" || *value == "yes") return true;
  if (*value == "0" || *value == "false" || *value == "no") return false;
  FLOG_WARN << "Config: key '" << key << "' has non-boolean value '" << *value
            << "'";
  return fallback;
}

}  // namespace flare
