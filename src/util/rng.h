// Deterministic random number generation.
//
// Every stochastic component takes an explicit Rng so that experiment runs
// are reproducible from a single seed. Sub-streams are derived with
// SplitMix-style mixing so that adding a consumer does not perturb the draws
// seen by unrelated consumers.
#pragma once

#include <cstdint>
#include <random>

namespace flare {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : seed_(seed), engine_(seed) {}

  /// Uniform double in [0, 1).
  double Uniform() { return unit_(engine_); }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * Uniform();
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    std::uniform_int_distribution<std::int64_t> d(lo, hi);
    return d(engine_);
  }

  /// Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    std::normal_distribution<double> d(mean, stddev);
    return d(engine_);
  }

  /// Exponential with the given mean (mean = 1/lambda).
  double Exponential(double mean) {
    std::exponential_distribution<double> d(1.0 / mean);
    return d(engine_);
  }

  /// Derive an independent child stream; `salt` distinguishes consumers.
  Rng Fork(std::uint64_t salt) {
    return Rng(Mix(engine_(), salt));
  }

  /// Derive the independent stream for shard/domain `stream`. Unlike
  /// Fork(), the result is a pure function of the *construction seed* — it
  /// neither consumes nor depends on draws already taken from this Rng, so
  /// every event domain of a sharded run gets the same stream no matter in
  /// which order (or on which thread) the domains are built.
  Rng SplitStream(std::uint64_t stream) const {
    return Rng(Mix(seed_ + 0x9d07a1f1a7e5eedULL, stream));
  }

  /// The seed this Rng was constructed with (stable across draws).
  std::uint64_t seed() const { return seed_; }

  std::mt19937_64& engine() { return engine_; }

 private:
  static std::uint64_t Mix(std::uint64_t a, std::uint64_t b) {
    // SplitMix64 finalizer over the xor of the two inputs.
    std::uint64_t z = a ^ (b + 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::uint64_t seed_;
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

}  // namespace flare
