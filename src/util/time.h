// Simulation time types.
//
// All simulation time is kept as integral microseconds to avoid floating-
// point drift over multi-hour simulated runs; helpers convert to and from
// the units the rest of the code speaks (TTIs are 1 ms in LTE FDD).
#pragma once

#include <cstdint>

namespace flare {

/// Simulated time in microseconds since the start of the run.
using SimTime = std::int64_t;

inline constexpr SimTime kMicrosecond = 1;
inline constexpr SimTime kMillisecond = 1000 * kMicrosecond;
inline constexpr SimTime kSecond = 1000 * kMillisecond;

/// Duration of one LTE transmission time interval (TTI).
inline constexpr SimTime kTti = kMillisecond;

constexpr SimTime FromSeconds(double s) {
  return static_cast<SimTime>(s * static_cast<double>(kSecond));
}

constexpr double ToSeconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

constexpr SimTime FromMilliseconds(double ms) {
  return static_cast<SimTime>(ms * static_cast<double>(kMillisecond));
}

constexpr double ToMilliseconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

}  // namespace flare
