#include "util/json.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace flare {
namespace {

constexpr int kMaxDepth = 100;

struct Parser {
  const std::string& text;
  std::size_t pos = 0;
  std::string error;

  bool Fail(const std::string& what) {
    std::ostringstream msg;
    msg << what << " at byte " << pos;
    error = msg.str();
    return false;
  }

  void SkipWs() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool Literal(const char* word, std::size_t len) {
    if (text.compare(pos, len, word) != 0) return Fail("bad literal");
    pos += len;
    return true;
  }

  bool ParseString(std::string* out) {
    if (pos >= text.size() || text[pos] != '"') return Fail("expected '\"'");
    ++pos;
    out->clear();
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == '"') {
        ++pos;
        return true;
      }
      if (c == '\\') {
        ++pos;
        if (pos >= text.size()) return Fail("dangling escape");
        const char e = text[pos++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (pos + 4 > text.size()) return Fail("short \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text[pos++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return Fail("bad \\u escape");
            }
            // UTF-8 encode the BMP code point; surrogate halves degrade to
            // the replacement character rather than being paired.
            if (code >= 0xD800 && code <= 0xDFFF) code = 0xFFFD;
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xE0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Fail("unknown escape");
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("control character in string");
      }
      out->push_back(c);
      ++pos;
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(double* out) {
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
    if (pos < text.size() && text[pos] == '.') {
      ++pos;
      while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
    }
    if (pos == start) return Fail("expected number");
    const std::string token = text.substr(start, pos - start);
    char* end = nullptr;
    *out = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos = start;
      return Fail("malformed number");
    }
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipWs();
    if (pos >= text.size()) return Fail("unexpected end of input");
    const char c = text[pos];
    if (c == 'n') {
      if (!Literal("null", 4)) return false;
      *out = JsonValue::MakeNull();
      return true;
    }
    if (c == 't') {
      if (!Literal("true", 4)) return false;
      *out = JsonValue::MakeBool(true);
      return true;
    }
    if (c == 'f') {
      if (!Literal("false", 5)) return false;
      *out = JsonValue::MakeBool(false);
      return true;
    }
    if (c == '"') {
      std::string s;
      if (!ParseString(&s)) return false;
      *out = JsonValue::MakeString(std::move(s));
      return true;
    }
    if (c == '[') {
      ++pos;
      std::vector<JsonValue> items;
      SkipWs();
      if (pos < text.size() && text[pos] == ']') {
        ++pos;
        *out = JsonValue::MakeArray(std::move(items));
        return true;
      }
      while (true) {
        JsonValue item;
        if (!ParseValue(&item, depth + 1)) return false;
        items.push_back(std::move(item));
        SkipWs();
        if (pos >= text.size()) return Fail("unterminated array");
        if (text[pos] == ',') {
          ++pos;
          continue;
        }
        if (text[pos] == ']') {
          ++pos;
          break;
        }
        return Fail("expected ',' or ']'");
      }
      *out = JsonValue::MakeArray(std::move(items));
      return true;
    }
    if (c == '{') {
      ++pos;
      std::vector<std::pair<std::string, JsonValue>> members;
      SkipWs();
      if (pos < text.size() && text[pos] == '}') {
        ++pos;
        *out = JsonValue::MakeObject(std::move(members));
        return true;
      }
      while (true) {
        SkipWs();
        std::string key;
        if (!ParseString(&key)) return false;
        SkipWs();
        if (pos >= text.size() || text[pos] != ':') return Fail("expected ':'");
        ++pos;
        JsonValue value;
        if (!ParseValue(&value, depth + 1)) return false;
        members.emplace_back(std::move(key), std::move(value));
        SkipWs();
        if (pos >= text.size()) return Fail("unterminated object");
        if (text[pos] == ',') {
          ++pos;
          continue;
        }
        if (text[pos] == '}') {
          ++pos;
          break;
        }
        return Fail("expected ',' or '}'");
      }
      *out = JsonValue::MakeObject(std::move(members));
      return true;
    }
    double number = 0.0;
    if (!ParseNumber(&number)) return false;
    *out = JsonValue::MakeNumber(number);
    return true;
  }
};

}  // namespace

bool JsonValue::AsBool(bool fallback) const {
  if (kind_ == Kind::kBool) return bool_;
  if (kind_ == Kind::kNumber) return number_ != 0.0;
  return fallback;
}

double JsonValue::AsNumber(double fallback) const {
  if (kind_ == Kind::kNumber) return number_;
  if (kind_ == Kind::kBool) return bool_ ? 1.0 : 0.0;
  return fallback;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

const JsonValue* JsonValue::FindPath(const std::vector<std::string>& keys) const {
  const JsonValue* node = this;
  for (const std::string& key : keys) {
    if (node == nullptr) return nullptr;
    node = node->Find(key);
  }
  return node;
}

JsonValue JsonValue::MakeNull() { return JsonValue(); }

JsonValue JsonValue::MakeBool(bool value) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::MakeNumber(double value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::MakeString(std::string value) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(value);
  return v;
}

JsonValue JsonValue::MakeArray(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.items_ = std::move(items);
  return v;
}

JsonValue JsonValue::MakeObject(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.members_ = std::move(members);
  return v;
}

bool ParseJson(const std::string& text, JsonValue* out, std::string* error) {
  Parser parser{text, 0, {}};
  JsonValue value;
  if (!parser.ParseValue(&value, 0)) {
    if (error != nullptr) *error = parser.error;
    return false;
  }
  parser.SkipWs();
  if (parser.pos != text.size()) {
    if (error != nullptr) {
      parser.Fail("trailing garbage");
      *error = parser.error;
    }
    return false;
  }
  *out = std::move(value);
  return true;
}

bool ParseJsonFile(const std::string& path, JsonValue* out,
                   std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string parse_error;
  if (!ParseJson(buffer.str(), out, &parse_error)) {
    if (error != nullptr) *error = path + ": " + parse_error;
    return false;
  }
  return true;
}

}  // namespace flare
