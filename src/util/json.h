// Minimal JSON document model + recursive-descent parser.
//
// The observability layer *writes* JSON by hand (metrics, traces, QoE);
// tools/flare_report needs to *read* those files back — plus
// google-benchmark output — without adding a dependency. This is a small,
// strict-enough parser for that job: full JSON value grammar, ordered
// object members (so diffs are stable), doubles for all numbers, and a
// depth limit instead of recursion-unbounded parsing.
//
// Not a general-purpose library: no comments, no trailing commas, no
// surrogate-pair decoding beyond a replacement byte sequence, numbers
// outside double range saturate like strtod does.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace flare {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool AsBool(bool fallback = false) const;
  double AsNumber(double fallback = 0.0) const;
  const std::string& AsString() const { return string_; }

  const std::vector<JsonValue>& items() const { return items_; }
  /// Object members in source order (insertion order preserved).
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }
  /// First member with this key, or nullptr. Linear scan: documents here
  /// are small and ordered lookup beats a side map for determinism.
  const JsonValue* Find(const std::string& key) const;
  /// Find(a)->Find(b)->... returning nullptr as soon as a hop misses.
  const JsonValue* FindPath(const std::vector<std::string>& keys) const;

  static JsonValue MakeNull();
  static JsonValue MakeBool(bool value);
  static JsonValue MakeNumber(double value);
  static JsonValue MakeString(std::string value);
  static JsonValue MakeArray(std::vector<JsonValue> items);
  static JsonValue MakeObject(
      std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parse a complete JSON document. On failure returns false and describes
/// the problem (with a byte offset) in `error` when non-null.
bool ParseJson(const std::string& text, JsonValue* out,
               std::string* error = nullptr);

/// Read and parse a whole file; `error` distinguishes IO from syntax.
bool ParseJsonFile(const std::string& path, JsonValue* out,
                   std::string* error = nullptr);

}  // namespace flare
