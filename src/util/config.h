// Small key=value configuration store.
//
// Benches and examples accept overrides from the environment (FLARE_RUNS,
// FLARE_DURATION_S, ...) and from `key=value` command-line arguments so the
// paper experiments can be scaled up or down without recompiling.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace flare {

class Config {
 public:
  Config() = default;

  /// Parse `key=value` tokens from argv; unknown tokens are ignored with a
  /// warning so benches tolerate harness-injected flags.
  static Config FromArgs(int argc, char** argv);

  void Set(const std::string& key, const std::string& value);

  std::optional<std::string> GetString(const std::string& key) const;
  /// Typed getters fall back to the environment variable FLARE_<KEY-upper>
  /// before using the provided default.
  double GetDouble(const std::string& key, double fallback) const;
  int GetInt(const std::string& key, int fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;

  bool Has(const std::string& key) const;

  /// Keys explicitly Set / parsed from argv (environment fallbacks are
  /// not listed), in sorted order — lets callers reject unknown knobs.
  std::vector<std::string> Keys() const;

 private:
  std::optional<std::string> Lookup(const std::string& key) const;
  std::map<std::string, std::string> values_;
};

}  // namespace flare
