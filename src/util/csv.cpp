#include "util/csv.h"

#include <cmath>
#include <cstdio>

#include "util/logging.h"

namespace flare {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header) {
  out_.open(path);
  columns_ = header.size();
  if (!out_.is_open()) {
    FLOG_WARN << "CsvWriter: could not open " << path
              << "; CSV output disabled";
    return;
  }
  RawRow(header);
}

void CsvWriter::Row(const std::vector<double>& values) {
  if (!out_.is_open()) return;
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(FormatNumber(v));
  RawRow(cells);
}

void CsvWriter::Row(std::initializer_list<double> values) {
  Row(std::vector<double>(values));
}

void CsvWriter::RawRow(const std::vector<std::string>& cells) {
  if (!out_.is_open()) return;
  if (columns_ != 0 && cells.size() != columns_) {
    FLOG_WARN << "CsvWriter: row width " << cells.size()
              << " does not match header width " << columns_;
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << CsvField(cells[i]);
  }
  out_ << '\n';
}

std::string FormatNumber(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  return FormatNumber(value);
}

std::string CsvField(const std::string& value) {
  if (value.find_first_of(",\"\r\n") == std::string::npos) return value;
  std::string quoted;
  quoted.reserve(value.size() + 2);
  quoted.push_back('"');
  for (char c : value) {
    if (c == '"') quoted.push_back('"');
    quoted.push_back(c);
  }
  quoted.push_back('"');
  return quoted;
}

}  // namespace flare
