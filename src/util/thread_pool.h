// Fixed-size worker pool for the sharded simulation runtime.
//
// The pool runs *batches*: RunAll() submits a set of independent jobs and
// blocks until every one of them has finished, so the caller gets a full
// barrier — everything the jobs wrote happens-before RunAll() returns
// (release/acquire through the pool mutex). That barrier is exactly the
// synchronization contract the parallel runner needs at BAI boundaries;
// nothing here is FLARE-specific.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace flare {

class ThreadPool {
 public:
  /// Spawns `workers` threads (clamped to >= 1).
  explicit ThreadPool(int workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(threads_.size()); }

  /// Run every job on the pool and block until all of them completed.
  /// Jobs must not call RunAll() recursively. Exceptions thrown by a job
  /// terminate (the simulation domains report errors by other means).
  void RunAll(std::vector<std::function<void()>> jobs);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // signals workers: job or stop
  std::condition_variable done_cv_;   // signals RunAll: batch drained
  std::vector<std::function<void()>> pending_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace flare
