// Fixed-size worker pool for batch-parallel helper work.
//
// The pool runs *batches*: RunAll() submits a set of independent jobs and
// blocks until every one of them has finished, so the caller gets a full
// barrier — everything the jobs wrote happens-before RunAll() returns
// (release/acquire through the pool mutex). Jobs are dispatched FIFO (the
// order they were submitted in) and each submission wakes at most one
// worker per job, so a small batch does not stampede a large pool.
//
// The sharded simulation runtime used to drive its epochs through this
// pool; it now keeps its own persistent per-partition workers
// (sim/parallel_runner.h), and the pool remains for one-off batch work.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace flare {

class ThreadPool {
 public:
  /// Spawns `workers` threads (clamped to >= 1).
  explicit ThreadPool(int workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(threads_.size()); }

  /// Run every job on the pool, FIFO, and block until all of them
  /// completed. Jobs must not call RunAll() recursively. If a job throws,
  /// the batch still runs to completion (every job executes exactly once,
  /// every worker survives) and the *first* exception, in completion
  /// order, is rethrown to the caller once the batch has drained.
  void RunAll(std::vector<std::function<void()>> jobs);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // signals workers: job or stop
  std::condition_variable done_cv_;   // signals RunAll: batch drained
  std::deque<std::function<void()>> pending_;  // FIFO: pop from the front
  std::size_t in_flight_ = 0;
  std::exception_ptr first_error_;  // first job failure of the batch
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace flare
