// CSV writer used by benches to dump the series behind each paper figure so
// they can be re-plotted, alongside the human-readable rows printed to
// stdout.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

namespace flare {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. The writer is
  /// "disarmed" (all writes are no-ops) if the file cannot be opened, so
  /// benches still run in read-only environments.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  bool ok() const { return out_.is_open(); }

  void Row(const std::vector<double>& values);
  void Row(std::initializer_list<double> values);
  /// Mixed row: string cells are written verbatim.
  void RawRow(const std::vector<std::string>& cells);

 private:
  std::ofstream out_;
  std::size_t columns_ = 0;
};

/// Formats a double compactly (up to 6 significant digits, no trailing
/// zeros) for both CSV cells and table printing.
std::string FormatNumber(double value);

/// FormatNumber for JSON contexts: NaN/Inf have no JSON encoding (snprintf
/// would emit `nan`, corrupting the document), so non-finite values render
/// as `null`.
std::string JsonNumber(double value);

/// RFC-4180 field escaping: returns `value` unchanged unless it contains
/// a comma, double quote, CR or LF, in which case the field is wrapped in
/// double quotes with embedded quotes doubled.
std::string CsvField(const std::string& value);

}  // namespace flare
