#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace flare {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void Cdf::Add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void Cdf::AddAll(const std::vector<double>& xs) {
  samples_.insert(samples_.end(), xs.begin(), xs.end());
  sorted_ = false;
}

void Cdf::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Cdf::Quantile(double q) const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double Cdf::FractionBelow(double x) const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double Cdf::Mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double x : samples_) sum += x;
  return sum / static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> Cdf::Curve(std::size_t points) const {
  std::vector<std::pair<double, double>> curve;
  if (samples_.empty() || points < 2) return curve;
  curve.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double q =
        static_cast<double>(i) / static_cast<double>(points - 1);
    curve.emplace_back(Quantile(q), q);
  }
  return curve;
}

const std::vector<double>& Cdf::sorted() const {
  EnsureSorted();
  return samples_;
}

double JainIndex(const std::vector<double>& xs) {
  if (xs.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq <= 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(xs.size()) * sum_sq);
}

double HarmonicMean(const std::vector<double>& xs) {
  double denom = 0.0;
  std::size_t n = 0;
  for (double x : xs) {
    if (x > 0.0) {
      denom += 1.0 / x;
      ++n;
    }
  }
  if (n == 0 || denom <= 0.0) return 0.0;
  return static_cast<double>(n) / denom;
}

}  // namespace flare
