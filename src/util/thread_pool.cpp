#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace flare {

ThreadPool::ThreadPool(int workers) {
  const int n = std::max(workers, 1);
  threads_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::RunAll(std::vector<std::function<void()>> jobs) {
  if (jobs.empty()) return;
  std::unique_lock<std::mutex> lock(mu_);
  for (auto& job : jobs) pending_.push_back(std::move(job));
  // Wake one worker per job: a 2-job batch on a 16-thread pool must not
  // stampede 16 threads through the mutex just to find an empty queue.
  const std::size_t wakes = std::min(jobs.size(), threads_.size());
  for (std::size_t i = 0; i < wakes; ++i) work_cv_.notify_one();
  done_cv_.wait(lock, [this] { return pending_.empty() && in_flight_ == 0; });
  if (first_error_ != nullptr) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || !pending_.empty(); });
    if (stop_) return;
    std::function<void()> job = std::move(pending_.front());
    pending_.pop_front();
    ++in_flight_;
    lock.unlock();
    // A throwing job must still count as completed — otherwise in_flight_
    // never reaches 0 and RunAll deadlocks. Capture the first failure for
    // RunAll to rethrow after the batch drains.
    std::exception_ptr error;
    try {
      job();
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    if (error != nullptr && first_error_ == nullptr) {
      first_error_ = std::move(error);
    }
    --in_flight_;
    if (pending_.empty() && in_flight_ == 0) done_cv_.notify_all();
  }
}

}  // namespace flare
