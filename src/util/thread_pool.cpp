#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace flare {

ThreadPool::ThreadPool(int workers) {
  const int n = std::max(workers, 1);
  threads_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::RunAll(std::vector<std::function<void()>> jobs) {
  if (jobs.empty()) return;
  std::unique_lock<std::mutex> lock(mu_);
  for (auto& job : jobs) pending_.push_back(std::move(job));
  work_cv_.notify_all();
  done_cv_.wait(lock, [this] { return pending_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || !pending_.empty(); });
    if (stop_) return;
    std::function<void()> job = std::move(pending_.back());
    pending_.pop_back();
    ++in_flight_;
    lock.unlock();
    job();
    lock.lock();
    --in_flight_;
    if (pending_.empty() && in_flight_ == 0) done_cv_.notify_all();
  }
}

}  // namespace flare
