// Statistics helpers used throughout the evaluation harness:
// running mean/variance, empirical CDFs, Jain's fairness index, and the
// harmonic mean used by FESTIVE's throughput estimator.
#pragma once

#include <cstddef>
#include <vector>

namespace flare {

/// Welford running mean / variance accumulator.
class RunningStats {
 public:
  void Add(double x);
  std::size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Empirical CDF over a collected sample set.
class Cdf {
 public:
  void Add(double x);
  void AddAll(const std::vector<double>& xs);
  std::size_t count() const { return samples_.size(); }

  /// Value at quantile q in [0,1] (linear interpolation between order
  /// statistics). Returns 0 for an empty CDF.
  double Quantile(double q) const;

  /// Fraction of samples <= x.
  double FractionBelow(double x) const;

  double Mean() const;

  /// Evaluation points for printing a CDF curve: `points` evenly spaced
  /// quantiles from 0 to 1 as (value, cumulative probability) pairs.
  std::vector<std::pair<double, double>> Curve(std::size_t points) const;

  const std::vector<double>& sorted() const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  void EnsureSorted() const;
};

/// Jain's fairness index: (sum x)^2 / (n * sum x^2). 1.0 for equal shares.
double JainIndex(const std::vector<double>& xs);

/// Harmonic mean; ignores non-positive entries (returns 0 if none valid).
double HarmonicMean(const std::vector<double>& xs);

}  // namespace flare
