#include "net/oneapi_server.h"

#include <algorithm>
#include <string>

#include "lte/tbs_table.h"
#include "net/messages.h"
#include "util/logging.h"

namespace flare {

OneApiServer::OneApiServer(Simulator& sim, Cell& cell, Pcrf& pcrf,
                           Pcef& pcef, const OneApiConfig& config)
    : sim_(sim),
      cell_(cell),
      pcrf_(pcrf),
      pcef_(pcef),
      config_(config),
      controller_(config.params) {}

void OneApiServer::ConnectVideoClient(FlarePlugin* plugin, const Mpd& mpd) {
  // The client info crosses the operator API as a wire message; the
  // server trusts only what survives decoding.
  const std::string wire =
      EncodeClientInfo(plugin->BuildClientInfo(mpd));
  sim_.After(config_.uplink_latency, [this, plugin, wire] {
    const std::optional<ClientInfo> info = DecodeClientInfo(wire);
    if (!info) {
      FLOG_WARN << "OneApiServer: dropping malformed client info";
      return;
    }
    controller_.AddFlow(info->flow, info->ladder_bps);
    pcrf_.RegisterFlow(info->flow, FlowType::kVideo, config_.cell_tag);
    clients_[info->flow] = ClientEntry{plugin, *info};
    // Reset the trace window so the first BAI measures a clean interval.
    if (cell_.HasFlow(info->flow)) cell_.TakeWindow(info->flow);
  });
}

void OneApiServer::UpdateClientInfo(FlowId id, const ClientInfo& info) {
  const std::string wire = EncodeClientInfo(info);
  sim_.After(config_.uplink_latency, [this, id, wire] {
    const std::optional<ClientInfo> update = DecodeClientInfo(wire);
    if (!update) {
      FLOG_WARN << "OneApiServer: dropping malformed client-info update";
      return;
    }
    const auto it = clients_.find(id);
    if (it == clients_.end()) return;
    it->second.info.max_level = update->max_level;
    it->second.info.utility = update->utility;
    it->second.info.skimming = update->skimming;
  });
}

void OneApiServer::DisconnectVideoClient(FlowId id) {
  controller_.RemoveFlow(id);
  pcrf_.DeregisterFlow(id, config_.cell_tag);
  clients_.erase(id);
}

void OneApiServer::Start() {
  if (started_) return;
  started_ = true;
  sim_.Every(config_.bai, config_.bai, [this] { RunBai(); });
}

void OneApiServer::RunBai() {
  // --- Gather client information + RB/rate trace windows.
  std::vector<FlowObservation> observations;
  observations.reserve(clients_.size());
  for (auto& [id, entry] : clients_) {
    if (!cell_.HasFlow(id)) continue;
    const RbRateWindow window = cell_.TakeWindow(id);
    double sample;
    if (window.rbs > 0) {
      sample = static_cast<double>(window.tx_bytes) * 8.0 /
               static_cast<double>(window.rbs);
    } else {
      // Flow idle all BAI (e.g. buffer full): fall back to the channel's
      // nominal per-RB capacity at the current MCS.
      sample = static_cast<double>(
          TbsBitsPerPrb(cell_.UeItbs(cell_.flow(id).ue)));
    }
    const double w = std::clamp(config_.efficiency_smoothing, 0.0, 1.0);
    entry.smoothed_bits_per_rb =
        entry.smoothed_bits_per_rb <= 0.0
            ? sample
            : (1.0 - w) * entry.smoothed_bits_per_rb + w * sample;

    FlowObservation obs;
    obs.id = id;
    obs.bits_per_rb = entry.smoothed_bits_per_rb;
    obs.client_max_level = entry.info.max_level;
    // A skimming viewer gets the minimum bitrate while it lasts.
    if (entry.info.skimming) obs.client_max_level = 0;
    obs.utility = entry.info.utility;
    observations.push_back(obs);
  }
  if (observations.empty()) return;

  const int n_data =
      pcrf_.CountFlows(FlowType::kData, config_.cell_tag);
  const double rb_rate = static_cast<double>(cell_.num_rbs()) * 1000.0;
  const BaiDecision decision =
      controller_.DecideBai(observations, n_data, rb_rate);

  solve_times_ms_.push_back(
      static_cast<double>(decision.solve_time.count()) / 1e6);
  video_fractions_.push_back(decision.video_fraction);

  // --- Enforce: GBR via PCEF at the eNodeB, rung via the UE plugin. The
  // assignment travels as a wire message and the plugin side decodes it.
  for (const RateAssignment& a : decision.assignments) {
    RateAssignmentMsg msg;
    msg.flow = a.id;
    msg.level = a.level;
    msg.rate_bps = a.rate_bps;
    msg.gbr_bps = a.rate_bps * config_.gbr_headroom;
    pcef_.EnforceGbr(msg.flow, msg.gbr_bps);
    const auto it = clients_.find(a.id);
    if (it == clients_.end()) continue;
    FlarePlugin* plugin = it->second.plugin;
    const std::string wire = EncodeRateAssignment(msg);
    sim_.After(config_.downlink_latency, [plugin, wire] {
      const std::optional<RateAssignmentMsg> decoded =
          DecodeRateAssignment(wire);
      if (decoded) plugin->SetAssignedLevel(decoded->level);
    });
  }
}

}  // namespace flare
