#include "net/oneapi_server.h"

#include <algorithm>
#include <string>

#include "lte/tbs_table.h"
#include "net/messages.h"
#include "util/csv.h"
#include "util/logging.h"

namespace flare {

OneApiServer::OneApiServer(Simulator& sim, Cell& cell, Pcrf& pcrf,
                           Pcef& pcef, const OneApiConfig& config)
    : sim_(sim),
      cell_(cell),
      pcrf_(pcrf),
      pcef_(pcef),
      config_(config),
      controller_(config.params) {}

void OneApiServer::ConnectVideoClient(FlarePlugin* plugin, const Mpd& mpd) {
  // The client info crosses the operator API as a wire message; the
  // server trusts only what survives decoding.
  const std::string wire =
      EncodeClientInfo(plugin->BuildClientInfo(mpd));
  const FlowId id = plugin->flow();
  const std::uint64_t generation = ++next_generation_;
  connect_generation_[id] = generation;
  sim_.After(config_.uplink_latency, [this, plugin, wire, id, generation] {
    // A disconnect (or a newer connect) landed while this registration was
    // in flight: it is stale, and replaying it would resurrect the flow in
    // the controller/PCRF with a possibly dangling plugin pointer.
    const auto gen = connect_generation_.find(id);
    if (gen == connect_generation_.end() || gen->second != generation) {
      return;
    }
    // This attempt owns the entry; it is no longer in flight either way.
    connect_generation_.erase(gen);
    const std::optional<ClientInfo> info = DecodeClientInfo(wire);
    if (!info) {
      FLOG_WARN << "OneApiServer: dropping malformed client info";
      if (admission_callback_) admission_callback_(id, false);
      return;
    }
    if (admission_ != nullptr && !AdmitClient(*info)) {
      if (admission_callback_) admission_callback_(info->flow, false);
      return;
    }
    controller_.AddFlow(info->flow, info->ladder_bps);
    pcrf_.RegisterFlow(info->flow, FlowType::kVideo, config_.cell_tag);
    clients_[info->flow] = ClientEntry{plugin, *info};
    // Reset the trace window so the first BAI measures a clean interval.
    if (cell_.HasFlow(info->flow)) cell_.TakeWindow(info->flow);
    if (admission_ != nullptr && flight_ != nullptr) {
      flight_->Record(ToSeconds(sim_.Now()), "admission_admit", info->flow);
    }
    if (admission_callback_) admission_callback_(info->flow, true);
  });
}

bool OneApiServer::AdmitClient(const ClientInfo& info) {
  AdmissionRequest request;
  request.flow = info.flow;
  OptFlow candidate;
  candidate.ladder_bps = info.ladder_bps;
  candidate.utility = info.utility.value_or(config_.params.utility);
  // Channel-based estimate at connect time: the flow has no trace window
  // yet, so use the nominal per-RB capacity at its current MCS (mirrors
  // RunBai's idle-flow fallback).
  candidate.bits_per_rb =
      cell_.HasFlow(info.flow)
          ? static_cast<double>(
                TbsBitsPerPrb(cell_.UeItbs(cell_.flow(info.flow).ue)))
          : 1.0;
  // Arrivals enter at the lowest rung (Algorithm 1 caps new flows there).
  candidate.min_level = 0;
  candidate.max_level = 0;
  request.candidate = candidate;
  request.n_data_flows = pcrf_.CountFlows(FlowType::kData, config_.cell_tag);
  request.rb_rate = static_cast<double>(cell_.num_rbs()) * 1000.0;

  const AdmissionDecision decision = admission_->Decide(request);
  if (decision.admit) {
    // Track the admitted flow over its full ladder from now on.
    candidate.max_level = static_cast<int>(candidate.ladder_bps.size()) - 1;
    admission_->OnAdmitted(info.flow, candidate);
    return true;
  }
  admission_rejects_metric_.Add();
  if (flight_ != nullptr) {
    flight_->Record(ToSeconds(sim_.Now()), "admission_reject", info.flow, -1,
                    decision.value,
                    "{\"policy\":\"" +
                        std::string(AdmissionPolicyName(
                            admission_->config().policy)) +
                        "\"}");
  }
  if (span_trace_ != nullptr) {
    span_trace_->Instant(
        kLaneControl, "churn", "admission_reject",
        static_cast<double>(sim_.Now()),
        "{\"flow\":" + std::to_string(info.flow) + ",\"policy\":\"" +
            AdmissionPolicyName(admission_->config().policy) +
            "\",\"value\":" + FormatNumber(decision.value) + "}");
  }
  return false;
}

void OneApiServer::UpdateClientInfo(FlowId id, const ClientInfo& info) {
  const std::string wire = EncodeClientInfo(info);
  sim_.After(config_.uplink_latency, [this, id, wire] {
    const std::optional<ClientInfo> update = DecodeClientInfo(wire);
    if (!update) {
      FLOG_WARN << "OneApiServer: dropping malformed client-info update";
      return;
    }
    const auto it = clients_.find(id);
    if (it == clients_.end()) return;
    it->second.info.max_level = update->max_level;
    it->second.info.utility = update->utility;
    it->second.info.skimming = update->skimming;
  });
}

void OneApiServer::DisconnectVideoClient(FlowId id) {
  connect_generation_.erase(id);  // cancel any in-flight ConnectVideoClient
  controller_.RemoveFlow(id);
  pcrf_.DeregisterFlow(id, config_.cell_tag);
  clients_.erase(id);
  if (admission_ != nullptr) admission_->OnDeparted(id);
}

void OneApiServer::SetObservers(MetricsRegistry* registry,
                                BaiTraceSink* sink, SpanTracer* spans,
                                RunHealthMonitor* health) {
  trace_sink_ = sink;
  span_trace_ = spans;
  health_ = health;
  controller_.SetSpanTracer(spans);
  bais_metric_ = MakeCounterHandle(registry, "oneapi.bais");
  assignments_metric_ = MakeCounterHandle(registry, "oneapi.assignments");
  admission_rejects_metric_ =
      MakeCounterHandle(registry, "oneapi.admission_rejects");
  solve_ms_metric_ = MakeHistogramHandle(
      registry, "oneapi.solve_ms",
      {0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0});
  video_fraction_metric_ =
      MakeGaugeHandle(registry, "oneapi.video_fraction");
}

void OneApiServer::SetAnalytics(QoeAnalytics* qoe, FlightRecorder* flight) {
  qoe_ = qoe;
  flight_ = flight;
}

void OneApiServer::Start() {
  if (started_) return;
  started_ = true;
  sim_.Every(config_.bai, config_.bai, [this] { RunBai(); });
}

void OneApiServer::RunBai() {
  SpanScope bai_span(span_trace_, kLaneControl, "oneapi", "bai");
  // --- Gather client information + RB/rate trace windows.
  std::vector<FlowObservation> observations;
  observations.reserve(clients_.size());
  std::map<FlowId, double> raw_samples;
  for (auto& [id, entry] : clients_) {
    if (!cell_.HasFlow(id)) continue;
    const RbRateWindow window = cell_.TakeWindow(id);
    double sample;
    if (window.rbs > 0) {
      sample = static_cast<double>(window.tx_bytes) * 8.0 /
               static_cast<double>(window.rbs);
    } else {
      // Flow idle all BAI (e.g. buffer full): fall back to the channel's
      // nominal per-RB capacity at the current MCS.
      sample = static_cast<double>(
          TbsBitsPerPrb(cell_.UeItbs(cell_.flow(id).ue)));
    }
    const double w = std::clamp(config_.efficiency_smoothing, 0.0, 1.0);
    entry.smoothed_bits_per_rb =
        entry.smoothed_bits_per_rb <= 0.0
            ? sample
            : (1.0 - w) * entry.smoothed_bits_per_rb + w * sample;
    raw_samples[id] = sample;
    // Keep the admission controller's capacity picture current, so
    // between-BAI connect decisions price against live efficiencies.
    if (admission_ != nullptr) {
      admission_->OnEstimate(id, entry.smoothed_bits_per_rb);
    }

    FlowObservation obs;
    obs.id = id;
    obs.bits_per_rb = entry.smoothed_bits_per_rb;
    obs.client_max_level = entry.info.max_level;
    // A skimming viewer gets the minimum bitrate while it lasts.
    if (entry.info.skimming) obs.client_max_level = 0;
    obs.utility = entry.info.utility;
    observations.push_back(obs);
  }
  if (observations.empty()) return;

  const int n_data =
      pcrf_.CountFlows(FlowType::kData, config_.cell_tag);
  const double rb_rate = static_cast<double>(cell_.num_rbs()) * 1000.0;
  const BaiDecision decision =
      controller_.DecideBai(observations, n_data, rb_rate);

  const double solve_ms =
      config_.deterministic_timing
          ? 0.0
          : static_cast<double>(decision.solve_time.count()) / 1e6;
  solve_times_ms_.push_back(solve_ms);
  video_fractions_.push_back(decision.video_fraction);
  bais_metric_.Add();
  solve_ms_metric_.Observe(solve_ms);
  video_fraction_metric_.Set(decision.video_fraction);
  if (health_ != nullptr) {
    health_->OnSolverResult(ToSeconds(sim_.Now()), decision.feasible);
  }
  if (bai_span.enabled()) {
    bai_span.set_args(
        "{\"flows\":" + std::to_string(decision.assignments.size()) +
        ",\"video_fraction\":" + FormatNumber(decision.video_fraction) +
        ",\"feasible\":" + (decision.feasible ? "true" : "false") + "}");
  }

  // --- Enforce: GBR via PCEF at the eNodeB, rung via the UE plugin. The
  // assignment travels as a wire message and the plugin side decodes it.
  for (const RateAssignment& a : decision.assignments) {
    RateAssignmentMsg msg;
    msg.flow = a.id;
    msg.level = a.level;
    msg.rate_bps = a.rate_bps;
    msg.gbr_bps = a.rate_bps * config_.gbr_headroom;
    pcef_.EnforceGbr(msg.flow, msg.gbr_bps);
    assignments_metric_.Add();
    if (a.level != a.previous_level) {
      if (qoe_ != nullptr) qoe_->OnRungChange(DecisionCauseName(a.cause));
      if (flight_ != nullptr) {
        flight_->Record(ToSeconds(sim_.Now()), "rung_change", a.id, -1,
                        static_cast<double>(a.level),
                        "{\"from\":" + std::to_string(a.previous_level) +
                            ",\"to\":" + std::to_string(a.level) +
                            ",\"cause\":\"" + DecisionCauseName(a.cause) +
                            "\"}");
      }
    }
    if (flight_ != nullptr) {
      flight_->Record(ToSeconds(sim_.Now()), "gbr_push", a.id, -1,
                      msg.gbr_bps);
    }
    if (span_trace_ != nullptr) {
      const double ts_us = static_cast<double>(sim_.Now());
      // Decision timeline: every enforced rung change is an instant with
      // its Algorithm 1 cause; the GBR push marks the PCEF enforcement.
      if (a.level != a.previous_level) {
        span_trace_->Instant(
            kLaneControl, "decision", "rung_change", ts_us,
            "{\"flow\":" + std::to_string(a.id) +
                ",\"from\":" + std::to_string(a.previous_level) +
                ",\"to\":" + std::to_string(a.level) + ",\"cause\":\"" +
                DecisionCauseName(a.cause) + "\"}");
      }
      span_trace_->Instant(
          kLaneControl, "oneapi", "gbr_push", ts_us,
          "{\"flow\":" + std::to_string(a.id) +
              ",\"gbr_kbps\":" + FormatNumber(msg.gbr_bps / 1000.0) + "}");
    }
    const auto it = clients_.find(a.id);
    if (trace_sink_ != nullptr && it != clients_.end()) {
      BaiTraceRow row;
      row.t_s = ToSeconds(sim_.Now());
      row.cell = static_cast<int>(config_.cell_tag);
      row.flow = a.id;
      row.observed_bits_per_rb = raw_samples[a.id];
      row.smoothed_bits_per_rb = it->second.smoothed_bits_per_rb;
      row.recommended_level = a.recommended_level;
      row.hysteresis_up = a.consecutive_up;
      row.enforced_level = a.level;
      row.rate_bps = a.rate_bps;
      row.gbr_bps = msg.gbr_bps;
      row.video_fraction = decision.video_fraction;
      row.solve_time_ms = solve_ms;
      row.feasible = decision.feasible;
      row.cause = DecisionCauseName(a.cause);
      trace_sink_->RecordBai(row);
    }
    if (it == clients_.end()) continue;
    const std::string wire = EncodeRateAssignment(msg);
    // Resolve the plugin at delivery time, not capture time: the client
    // may disconnect (and its plugin die) while the push is in flight.
    sim_.After(config_.downlink_latency, [this, wire] {
      const std::optional<RateAssignmentMsg> decoded =
          DecodeRateAssignment(wire);
      if (!decoded) return;
      const auto client = clients_.find(decoded->flow);
      if (client == clients_.end()) return;
      client->second.plugin->SetAssignedLevel(decoded->level);
    });
  }
}

}  // namespace flare
