// Measurement-based handover manager for multi-cell deployments.
//
// Extends the paper's multi-BS OneAPI story to moving UEs: each managed
// UE has one FadedMobilityChannel per candidate cell (same trajectory,
// different eNodeB sites). Every measurement period the manager compares
// SINRs and fires the classic A3 rule — handover when a neighbour beats
// the serving cell by `hysteresis_db` continuously for `time_to_trigger`.
// The manager only *decides*; the owner's callback performs the actual
// migration (tear down the flow in the old cell, recreate it in the new
// one, rebind the streaming session, re-register with the OneAPI server)
// — see tests/handover_test.cpp and examples/multicell_handover.cpp for
// the full choreography.
#pragma once

#include <functional>
#include <vector>

#include "lte/channel.h"
#include "sim/simulator.h"

namespace flare {

struct HandoverConfig {
  double hysteresis_db = 3.0;               // A3 offset
  SimTime time_to_trigger = 500 * kMillisecond;
  SimTime measurement_period = 100 * kMillisecond;
};

class HandoverManager {
 public:
  using HandoverFn =
      std::function<void(int ue, int from_cell, int to_cell)>;

  HandoverManager(Simulator& sim, const HandoverConfig& config)
      : sim_(sim), config_(config) {}

  HandoverManager(const HandoverManager&) = delete;
  HandoverManager& operator=(const HandoverManager&) = delete;

  /// Register a UE measured against one channel per candidate cell
  /// (index into `channels` = cell index). Channels are non-owning and
  /// must outlive the manager. Returns the UE handle.
  int AddUe(std::vector<FadedMobilityChannel*> channels,
            int initial_serving);

  void SetOnHandover(HandoverFn fn) { on_handover_ = std::move(fn); }

  int ServingCell(int ue) const;
  int handovers_executed() const { return handovers_; }

  /// Begin periodic measurements.
  void Start();

  /// One measurement round (exposed for tests).
  void Measure();

 private:
  struct UeEntry {
    std::vector<FadedMobilityChannel*> channels;
    int serving = 0;
    int candidate = -1;        // neighbour currently beating A3
    SimTime candidate_since = 0;
  };

  Simulator& sim_;
  HandoverConfig config_;
  std::vector<UeEntry> ues_;
  HandoverFn on_handover_;
  int handovers_ = 0;
  bool started_ = false;
};

}  // namespace flare
