#include "net/messages.h"

#include <cstdlib>
#include <map>
#include <sstream>
#include <vector>

#include "util/csv.h"

namespace flare {
namespace {

// key=value fields separated by ';'. Values never contain ';' or '='
// (numbers and comma-joined number lists only).
using Fields = std::map<std::string, std::string>;

std::string Join(const Fields& fields) {
  std::ostringstream out;
  bool first = true;
  for (const auto& [key, value] : fields) {
    if (!first) out << ';';
    out << key << '=' << value;
    first = false;
  }
  return out.str();
}

std::optional<Fields> Split(const std::string& wire) {
  Fields fields;
  std::istringstream in(wire);
  std::string token;
  while (std::getline(in, token, ';')) {
    const auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0) return std::nullopt;
    fields[token.substr(0, eq)] = token.substr(eq + 1);
  }
  if (fields.empty()) return std::nullopt;
  return fields;
}

std::optional<double> Number(const Fields& fields, const std::string& key) {
  const auto it = fields.find(key);
  if (it == fields.end()) return std::nullopt;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') return std::nullopt;
  return value;
}

std::optional<std::vector<double>> NumberList(const Fields& fields,
                                              const std::string& key) {
  const auto it = fields.find(key);
  if (it == fields.end()) return std::nullopt;
  std::vector<double> values;
  std::istringstream in(it->second);
  std::string token;
  while (std::getline(in, token, ',')) {
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') return std::nullopt;
    values.push_back(value);
  }
  if (values.empty()) return std::nullopt;
  return values;
}

}  // namespace

std::string EncodeClientInfo(const ClientInfo& info) {
  Fields fields;
  fields["type"] = "client_info";
  fields["flow"] = FormatNumber(info.flow);
  std::ostringstream ladder;
  for (std::size_t i = 0; i < info.ladder_bps.size(); ++i) {
    if (i > 0) ladder << ',';
    ladder << FormatNumber(info.ladder_bps[i]);
  }
  fields["ladder"] = ladder.str();
  if (info.max_level) fields["max_level"] = FormatNumber(*info.max_level);
  if (info.utility) {
    fields["beta"] = FormatNumber(info.utility->beta);
    fields["theta"] = FormatNumber(info.utility->theta_bps);
  }
  if (info.skimming) fields["skimming"] = "1";
  return Join(fields);
}

std::optional<ClientInfo> DecodeClientInfo(const std::string& wire) {
  const auto fields = Split(wire);
  if (!fields || fields->count("type") == 0 ||
      fields->at("type") != "client_info") {
    return std::nullopt;
  }
  const auto flow = Number(*fields, "flow");
  const auto ladder = NumberList(*fields, "ladder");
  if (!flow || !ladder) return std::nullopt;

  ClientInfo info;
  info.flow = static_cast<FlowId>(*flow);
  info.ladder_bps = *ladder;
  if (const auto max_level = Number(*fields, "max_level")) {
    info.max_level = static_cast<int>(*max_level);
  }
  const auto beta = Number(*fields, "beta");
  const auto theta = Number(*fields, "theta");
  if (beta && theta) {
    VideoUtilityParams utility;
    utility.beta = *beta;
    utility.theta_bps = *theta;
    info.utility = utility;
  }
  info.skimming = fields->count("skimming") > 0 &&
                  fields->at("skimming") == "1";
  return info;
}

std::string EncodeRateAssignment(const RateAssignmentMsg& msg) {
  Fields fields;
  fields["type"] = "rate_assignment";
  fields["flow"] = FormatNumber(msg.flow);
  fields["level"] = FormatNumber(msg.level);
  fields["rate"] = FormatNumber(msg.rate_bps);
  fields["gbr"] = FormatNumber(msg.gbr_bps);
  return Join(fields);
}

std::optional<RateAssignmentMsg> DecodeRateAssignment(
    const std::string& wire) {
  const auto fields = Split(wire);
  if (!fields || fields->count("type") == 0 ||
      fields->at("type") != "rate_assignment") {
    return std::nullopt;
  }
  const auto flow = Number(*fields, "flow");
  const auto level = Number(*fields, "level");
  const auto rate = Number(*fields, "rate");
  const auto gbr = Number(*fields, "gbr");
  if (!flow || !level || !rate || !gbr) return std::nullopt;
  RateAssignmentMsg msg;
  msg.flow = static_cast<FlowId>(*flow);
  msg.level = static_cast<int>(*level);
  msg.rate_bps = *rate;
  msg.gbr_bps = *gbr;
  return msg;
}

std::string EncodeStatsReport(const FlowStatsReport& report) {
  Fields fields;
  fields["type"] = "stats_report";
  fields["flow"] = FormatNumber(report.flow);
  fields["class"] = report.type == FlowType::kVideo ? "video" : "data";
  fields["tx_bytes"] = FormatNumber(static_cast<double>(report.tx_bytes));
  fields["rbs"] = FormatNumber(static_cast<double>(report.rbs));
  fields["tput"] = FormatNumber(report.throughput_bps);
  fields["rb_util"] = FormatNumber(report.rb_utilization);
  return Join(fields);
}

std::optional<FlowStatsReport> DecodeStatsReport(const std::string& wire) {
  const auto fields = Split(wire);
  if (!fields || fields->count("type") == 0 ||
      fields->at("type") != "stats_report" ||
      fields->count("class") == 0) {
    return std::nullopt;
  }
  const auto flow = Number(*fields, "flow");
  const auto tx_bytes = Number(*fields, "tx_bytes");
  const auto rbs = Number(*fields, "rbs");
  const auto tput = Number(*fields, "tput");
  const auto rb_util = Number(*fields, "rb_util");
  if (!flow || !tx_bytes || !rbs || !tput || !rb_util) return std::nullopt;
  const std::string& cls = fields->at("class");
  if (cls != "video" && cls != "data") return std::nullopt;

  FlowStatsReport report;
  report.flow = static_cast<FlowId>(*flow);
  report.type = cls == "video" ? FlowType::kVideo : FlowType::kData;
  report.tx_bytes = static_cast<std::uint64_t>(*tx_bytes);
  report.rbs = static_cast<std::uint64_t>(*rbs);
  report.throughput_bps = *tput;
  report.rb_utilization = *rb_util;
  return report;
}

}  // namespace flare
