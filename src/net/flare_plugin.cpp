#include "net/flare_plugin.h"

#include <algorithm>

namespace flare {

int FlarePlugin::NextRepresentation(const AbrContext& context) {
  const int top = context.mpd->NumRepresentations() - 1;
  // Before the first assignment, start conservatively at the lowest rung
  // (the OneAPI server's first BAI will take over).
  int level = assigned_level_.value_or(0);
  if (max_level_) level = std::min(level, *max_level_);
  return std::clamp(level, 0, top);
}

ClientInfo FlarePlugin::BuildClientInfo(const Mpd& mpd) const {
  ClientInfo info;
  info.flow = flow_;
  // Bitrates only — segment URLs, titles and timing stay on the client.
  info.ladder_bps.reserve(mpd.representations.size());
  for (const Representation& r : mpd.representations) {
    info.ladder_bps.push_back(r.bitrate_bps);
  }
  info.max_level = max_level_;
  info.utility = utility_;
  info.skimming = skimming_;
  return info;
}

}  // namespace flare
