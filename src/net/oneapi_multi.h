// Multi-cell OneAPI server.
//
// Section II-A: "A single OneAPI server can manage multiple BSs, though
// the bitrates are calculated independently for each network cell." This
// manager owns one per-cell controller (an OneApiServer) per eNodeB and
// routes client registrations to the right cell; each cell keeps its own
// PCEF enforcement point, while the PCRF — a core-network function — is
// shared across cells.
#pragma once

#include <map>
#include <memory>
#include <optional>

#include "net/oneapi_server.h"

namespace flare {

using CellId = std::uint32_t;

class OneApiMultiServer {
 public:
  /// `pcrf` is the shared core registry; per-cell enforcement latency
  /// comes from `config.downlink_latency`.
  OneApiMultiServer(Simulator& sim, Pcrf& pcrf, const OneApiConfig& config)
      : sim_(sim), pcrf_(pcrf), config_(config) {}

  OneApiMultiServer(const OneApiMultiServer&) = delete;
  OneApiMultiServer& operator=(const OneApiMultiServer&) = delete;

  /// Attach an eNodeB; returns its id for client routing. The cell must
  /// outlive this server.
  CellId AddCell(Cell& cell);

  /// Register a FLARE plugin streaming through cell `cell_id`.
  void ConnectVideoClient(CellId cell_id, FlarePlugin* plugin,
                          const Mpd& mpd);
  /// Tear down `flow`'s registration. `cell_id` is the caller's belief of
  /// the serving cell; when the flow has since been connected through a
  /// different cell (mid-handover teardown, or a disconnect raced by the
  /// migration), the disconnect is routed to the cell that currently owns
  /// the flow so neither the controller nor the PCRF leaks the session.
  void DisconnectVideoClient(CellId cell_id, FlowId flow);

  /// Cell currently owning `flow`'s most recent registration, if any.
  std::optional<CellId> OwnerCell(FlowId flow) const;

  /// Start the BAI loop in every attached cell (including cells attached
  /// later).
  void Start();

  std::size_t NumCells() const { return cells_.size(); }
  OneApiServer& cell_server(CellId cell_id);

  /// Forward observability attachments (any may be null) to every
  /// per-cell server; cells added later inherit them. All cells share the
  /// sinks — their rows/spans are distinguished by the cell tag/pid.
  void SetObservers(MetricsRegistry* registry, BaiTraceSink* sink,
                    SpanTracer* spans = nullptr,
                    RunHealthMonitor* health = nullptr);

  /// Attach a per-cell admission controller (not owned; null detaches).
  /// Admission state is per cell — a flow admitted in one cell says
  /// nothing about capacity in another — so each cell gets its own.
  void SetAdmissionController(CellId cell_id, AdmissionController* admission);

  /// Forward one connect-resolution callback to every per-cell server
  /// (cells added later inherit it). The flow id disambiguates.
  void SetAdmissionCallback(OneApiServer::AdmissionCallback callback);

 private:
  struct Entry {
    std::unique_ptr<Pcef> pcef;
    std::unique_ptr<OneApiServer> server;
  };

  Simulator& sim_;
  Pcrf& pcrf_;
  OneApiConfig config_;
  std::map<CellId, Entry> cells_;
  /// Cell of each flow's most recent ConnectVideoClient — the routing
  /// table DisconnectVideoClient consults when the named cell no longer
  /// owns the flow. eNodeBs number bearers independently, so two cells
  /// may both carry a flow with the same id; the map then holds the most
  /// recent registration, and disconnects naming a cell that *does* own
  /// the flow are always served by that cell first.
  std::map<FlowId, CellId> owner_;
  CellId next_id_ = 0;
  bool started_ = false;

  MetricsRegistry* registry_ = nullptr;
  BaiTraceSink* trace_sink_ = nullptr;
  SpanTracer* span_trace_ = nullptr;
  RunHealthMonitor* health_ = nullptr;
  OneApiServer::AdmissionCallback admission_callback_;
};

}  // namespace flare
