// Multi-cell OneAPI server.
//
// Section II-A: "A single OneAPI server can manage multiple BSs, though
// the bitrates are calculated independently for each network cell." This
// manager owns one per-cell controller (an OneApiServer) per eNodeB and
// routes client registrations to the right cell; each cell keeps its own
// PCEF enforcement point, while the PCRF — a core-network function — is
// shared across cells.
#pragma once

#include <map>
#include <memory>

#include "net/oneapi_server.h"

namespace flare {

using CellId = std::uint32_t;

class OneApiMultiServer {
 public:
  /// `pcrf` is the shared core registry; per-cell enforcement latency
  /// comes from `config.downlink_latency`.
  OneApiMultiServer(Simulator& sim, Pcrf& pcrf, const OneApiConfig& config)
      : sim_(sim), pcrf_(pcrf), config_(config) {}

  OneApiMultiServer(const OneApiMultiServer&) = delete;
  OneApiMultiServer& operator=(const OneApiMultiServer&) = delete;

  /// Attach an eNodeB; returns its id for client routing. The cell must
  /// outlive this server.
  CellId AddCell(Cell& cell);

  /// Register a FLARE plugin streaming through cell `cell_id`.
  void ConnectVideoClient(CellId cell_id, FlarePlugin* plugin,
                          const Mpd& mpd);
  void DisconnectVideoClient(CellId cell_id, FlowId flow);

  /// Start the BAI loop in every attached cell (including cells attached
  /// later).
  void Start();

  std::size_t NumCells() const { return cells_.size(); }
  OneApiServer& cell_server(CellId cell_id);

 private:
  struct Entry {
    std::unique_ptr<Pcef> pcef;
    std::unique_ptr<OneApiServer> server;
  };

  Simulator& sim_;
  Pcrf& pcrf_;
  OneApiConfig config_;
  std::map<CellId, Entry> cells_;
  CellId next_id_ = 0;
  bool started_ = false;
};

}  // namespace flare
