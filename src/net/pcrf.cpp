#include "net/pcrf.h"

namespace flare {

void Pcrf::RegisterFlow(FlowId id, FlowType type, CellTag cell) {
  flows_[{cell, id}] = type;
  if (on_change_) on_change_(id, type, cell, /*registered=*/true);
}

void Pcrf::DeregisterFlow(FlowId id, CellTag cell) {
  const auto it = flows_.find({cell, id});
  if (it == flows_.end()) return;
  const FlowType type = it->second;
  flows_.erase(it);
  if (on_change_) on_change_(id, type, cell, /*registered=*/false);
}

int Pcrf::CountFlows(FlowType type, CellTag cell) const {
  int n = 0;
  for (const auto& [key, t] : flows_) {
    if (key.first == cell && t == type) ++n;
  }
  return n;
}

int Pcrf::CountFlowsAllCells(FlowType type) const {
  int n = 0;
  for (const auto& [key, t] : flows_) {
    if (t == type) ++n;
  }
  return n;
}

std::vector<FlowId> Pcrf::FlowsOfType(FlowType type, CellTag cell) const {
  std::vector<FlowId> out;
  for (const auto& [key, t] : flows_) {
    if (key.first == cell && t == type) out.push_back(key.second);
  }
  return out;
}

}  // namespace flare
