// PCRF (Policy, Charging and Rules Function) model: the network-core flow
// registry the OneAPI server consults. It manages and monitors all flows in
// the network, so it can answer the one question FLARE's optimizer needs
// from the core: how many (non-video) data flows share a given cell
// (Lemma 1's n). Flows are keyed by (cell, flow) because eNodeBs number
// their bearers independently; single-cell deployments can ignore the
// cell tag (defaults to 0).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "lte/types.h"

namespace flare {

class Pcrf {
 public:
  using CellTag = std::uint32_t;
  /// Observes every registry mutation (`registered` = false on
  /// deregistration). The sharded runtime installs one on each domain's
  /// PCRF shard to mirror ops into the shared core registry at BAI
  /// barriers; deployments without a hook pay one branch.
  using ChangeFn =
      std::function<void(FlowId, FlowType, CellTag, bool registered)>;

  void RegisterFlow(FlowId id, FlowType type, CellTag cell = 0);
  void DeregisterFlow(FlowId id, CellTag cell = 0);

  void SetOnChange(ChangeFn fn) { on_change_ = std::move(fn); }

  /// Flows of `type` in cell `cell`.
  int CountFlows(FlowType type, CellTag cell = 0) const;
  /// Flows of `type` across the whole core.
  int CountFlowsAllCells(FlowType type) const;

  std::vector<FlowId> FlowsOfType(FlowType type, CellTag cell = 0) const;
  bool Knows(FlowId id, CellTag cell = 0) const {
    return flows_.count({cell, id}) > 0;
  }

 private:
  std::map<std::pair<CellTag, FlowId>, FlowType> flows_;
  ChangeFn on_change_;
};

}  // namespace flare
