// OneAPI server — the network-side half of FLARE (Figure 1).
//
// Once per BAI it: (1) reads each video flow's RB & Rate Trace window from
// the eNodeB (the Communication Module path), computing the achieved
// bits-per-RB e_u = 8*b_u/n_u; (2) asks the PCRF how many data flows share
// the cell; (3) runs Algorithm 1 via the FlareRateController; and (4)
// enforces the result twice — pushing the GBR through the PCEF to the
// eNodeB scheduler, and pushing the chosen rung to each FLARE UE plugin so
// the client requests exactly the assigned bitrate. Both pushes cross the
// control plane with configurable latency.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "churn/admission.h"
#include "core/rate_controller.h"
#include "lte/cell.h"
#include "net/flare_plugin.h"
#include "net/pcef.h"
#include "net/pcrf.h"
#include "obs/bai_trace.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/qoe_analytics.h"
#include "obs/span_trace.h"
#include "obs/watchdog.h"
#include "sim/simulator.h"

namespace flare {

struct OneApiConfig {
  /// Bitrate assignment interval.
  SimTime bai = kSecond;
  /// Control-plane latencies: UE plugin -> server, server -> UE/PCEF.
  SimTime uplink_latency = 20 * kMillisecond;
  SimTime downlink_latency = 20 * kMillisecond;
  /// GBR = headroom * assigned bitrate; slack covers HTTP/TCP overhead so
  /// a segment finishes within its own duration.
  double gbr_headroom = 1.1;
  /// EWMA weight of the newest bits-per-RB observation. Fast fading makes
  /// a single BAI's e_u noisy; feeding raw samples into problem (3)-(4)
  /// causes spurious capacity-exhaustion drops (Algorithm 1 applies drops
  /// immediately). Smoothing across BAIs keeps the capacity estimate honest
  /// without lagging genuine channel shifts. 1.0 disables smoothing
  /// (paper-literal previous-BAI-only behaviour).
  double efficiency_smoothing = 0.1;
  /// PCRF scope for this server's cell (multi-cell deployments register
  /// flows under their cell's tag; single-cell setups leave it at 0).
  Pcrf::CellTag cell_tag = 0;
  /// Record the solver wall-clock as 0 so traces and metrics are
  /// byte-stable across runs. The determinism & golden-trace harness
  /// turns this on; Figure 9 timing benches leave it off.
  bool deterministic_timing = false;
  FlareParams params;
};

class OneApiServer {
 public:
  OneApiServer(Simulator& sim, Cell& cell, Pcrf& pcrf, Pcef& pcef,
               const OneApiConfig& config);

  OneApiServer(const OneApiServer&) = delete;
  OneApiServer& operator=(const OneApiServer&) = delete;

  /// A FLARE plugin announces its session: after the uplink latency the
  /// server registers the flow (ladder + optional client constraints) and
  /// records it with the PCRF. `plugin` must outlive the server or be
  /// disconnected first. A DisconnectVideoClient issued while the
  /// registration is still in flight wins: the delayed registration is
  /// dropped (generation-guarded), so a flow torn down within the uplink
  /// latency window never reappears in the controller or PCRF.
  void ConnectVideoClient(FlarePlugin* plugin, const Mpd& mpd);
  void DisconnectVideoClient(FlowId id);

  /// Client pushes refreshed info mid-session (new cost cap, clickstream
  /// state, ...). Applied after the uplink latency; unknown flows are
  /// ignored (teardown race).
  void UpdateClientInfo(FlowId id, const ClientInfo& info);

  /// Begin the BAI loop.
  void Start();

  /// Run one BAI synchronously (exposed for tests).
  void RunBai();

  FlareRateController& controller() { return controller_; }
  const FlareRateController& controller() const { return controller_; }

  /// Whether `id` has a *landed* registration (an in-flight
  /// ConnectVideoClient still inside the uplink latency does not count).
  bool HasClient(FlowId id) const { return clients_.count(id) > 0; }

  /// Connect attempts still inside the uplink-latency window. Bounded by
  /// the in-flight count — landed and disconnected flows leave no
  /// per-flow residue (the churn-leak regression checks this).
  std::size_t pending_connects() const { return connect_generation_.size(); }

  /// Attach an admission controller (not owned; null detaches). When set,
  /// every landing ConnectVideoClient is first offered to it with the
  /// candidate pinned at the lowest rung and a channel-based bits-per-RB
  /// estimate; a rejection drops the registration entirely (no
  /// controller/PCRF/client state) and emits an `admission_reject`
  /// instant. Each BAI refreshes the controller's per-flow estimates.
  void SetAdmissionController(AdmissionController* admission) {
    admission_ = admission;
  }

  /// Invoked when a ConnectVideoClient resolves: (flow, admitted). Fires
  /// with admitted=true after every successful registration — also with
  /// no admission controller attached — so dynamically spawned sessions
  /// can defer playback until their registration lands. Fires with
  /// admitted=false on an admission rejection (or a malformed wire
  /// message). Does NOT fire for connects cancelled by a disconnect.
  using AdmissionCallback = std::function<void(FlowId, bool)>;
  void SetAdmissionCallback(AdmissionCallback callback) {
    admission_callback_ = std::move(callback);
  }

  /// Solver wall-clock times, one per BAI, in milliseconds (Figure 9).
  const std::vector<double>& solve_times_ms() const {
    return solve_times_ms_;
  }
  /// Video RB fraction r chosen each BAI.
  const std::vector<double>& video_fractions() const {
    return video_fractions_;
  }

  /// Attach observability (any pointer may be null): the registry gets
  /// BAI counters and the solve-time histogram; the sink gets one
  /// BaiTraceRow per video flow per BAI; the span tracer gets BAI/solver
  /// spans, rung-change and GBR-push instants; the health monitor is fed
  /// each BAI's solver feasibility.
  void SetObservers(MetricsRegistry* registry, BaiTraceSink* sink,
                    SpanTracer* spans = nullptr,
                    RunHealthMonitor* health = nullptr);

  /// Attach the QoE/flight-recorder tier (either may be null): `qoe`
  /// counts enforced rung changes by DecisionCause and admission
  /// verdicts; `flight` records rung_change / gbr_push / admission
  /// events. Separate from SetObservers so existing call sites keep
  /// their signature.
  void SetAnalytics(QoeAnalytics* qoe, FlightRecorder* flight);

 private:
  /// Run the attached admission controller on a landed connect; true =
  /// admit (controller bookkeeping updated), false = reject (instant +
  /// counter emitted).
  bool AdmitClient(const ClientInfo& info);

  struct ClientEntry {
    FlarePlugin* plugin = nullptr;
    ClientInfo info;
    double smoothed_bits_per_rb = 0.0;  // 0 = no observation yet
  };

  Simulator& sim_;
  Cell& cell_;
  Pcrf& pcrf_;
  Pcef& pcef_;
  OneApiConfig config_;
  FlareRateController controller_;
  std::map<FlowId, ClientEntry> clients_;
  /// In-flight connects only: each ConnectVideoClient stores a globally
  /// unique generation here and its delayed callback registers only if
  /// the entry still matches; DisconnectVideoClient erases the entry
  /// (cancelling the connect) and a landed callback erases its own, so
  /// the map cannot grow with churned flows. The server-wide counter
  /// (rather than a per-flow one) rules out generation reuse after an
  /// erase.
  std::map<FlowId, std::uint64_t> connect_generation_;
  std::uint64_t next_generation_ = 0;
  AdmissionController* admission_ = nullptr;
  AdmissionCallback admission_callback_;
  std::vector<double> solve_times_ms_;
  std::vector<double> video_fractions_;
  bool started_ = false;

  BaiTraceSink* trace_sink_ = nullptr;
  SpanTracer* span_trace_ = nullptr;
  RunHealthMonitor* health_ = nullptr;
  QoeAnalytics* qoe_ = nullptr;
  FlightRecorder* flight_ = nullptr;
  CounterHandle bais_metric_;
  CounterHandle assignments_metric_;
  CounterHandle admission_rejects_metric_;
  HistogramHandle solve_ms_metric_;
  GaugeHandle video_fraction_metric_;
};

}  // namespace flare
