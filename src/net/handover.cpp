#include "net/handover.h"

#include <stdexcept>

#include "util/logging.h"

namespace flare {

int HandoverManager::AddUe(std::vector<FadedMobilityChannel*> channels,
                           int initial_serving) {
  if (channels.size() < 2) {
    throw std::invalid_argument("HandoverManager: need >= 2 cells");
  }
  if (initial_serving < 0 ||
      initial_serving >= static_cast<int>(channels.size())) {
    throw std::invalid_argument("HandoverManager: bad serving index");
  }
  for (FadedMobilityChannel* c : channels) {
    if (c == nullptr) {
      throw std::invalid_argument("HandoverManager: null channel");
    }
  }
  UeEntry entry;
  entry.channels = std::move(channels);
  entry.serving = initial_serving;
  ues_.push_back(std::move(entry));
  return static_cast<int>(ues_.size()) - 1;
}

int HandoverManager::ServingCell(int ue) const {
  if (ue < 0 || ue >= static_cast<int>(ues_.size())) {
    throw std::out_of_range("HandoverManager: unknown UE");
  }
  return ues_[static_cast<std::size_t>(ue)].serving;
}

void HandoverManager::Start() {
  if (started_) return;
  started_ = true;
  sim_.Every(config_.measurement_period, config_.measurement_period,
             [this] { Measure(); });
}

void HandoverManager::Measure() {
  const SimTime now = sim_.Now();
  for (std::size_t u = 0; u < ues_.size(); ++u) {
    UeEntry& ue = ues_[u];
    const double serving_sinr =
        ue.channels[static_cast<std::size_t>(ue.serving)]->SinrDbAt(now);

    // Best A3 neighbour this round.
    int best = -1;
    double best_sinr = serving_sinr + config_.hysteresis_db;
    for (int c = 0; c < static_cast<int>(ue.channels.size()); ++c) {
      if (c == ue.serving) continue;
      const double sinr =
          ue.channels[static_cast<std::size_t>(c)]->SinrDbAt(now);
      if (sinr > best_sinr) {
        best_sinr = sinr;
        best = c;
      }
    }

    if (best < 0) {
      ue.candidate = -1;  // A3 condition broken: reset time-to-trigger
      continue;
    }
    if (best != ue.candidate) {
      ue.candidate = best;
      ue.candidate_since = now;
      continue;
    }
    if (now - ue.candidate_since < config_.time_to_trigger) continue;

    // Execute.
    const int from = ue.serving;
    ue.serving = best;
    ue.candidate = -1;
    ++handovers_;
    FLOG_INFO << "handover: ue " << u << " cell " << from << " -> "
              << best;
    if (on_handover_) on_handover_(static_cast<int>(u), from, best);
  }
}

}  // namespace flare
