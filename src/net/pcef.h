// PCEF (Policy and Charging Enforcement Function) model: the enforcement
// point through which the OneAPI server pushes per-flow GBR values down to
// the eNodeB's Continuous GBR Updater. Messages cross the core with a
// configurable latency, matching the control-plane path in Figure 1.
#pragma once

#include "lte/cell.h"
#include "sim/simulator.h"

namespace flare {

class Pcef {
 public:
  Pcef(Simulator& sim, Cell& cell, SimTime enforcement_latency)
      : sim_(sim), cell_(cell), latency_(enforcement_latency) {}

  /// Set the flow's GBR after the control-plane latency. Flows torn down
  /// in flight are skipped silently.
  void EnforceGbr(FlowId id, double gbr_bps) {
    sim_.After(latency_, [this, id, gbr_bps] {
      if (cell_.HasFlow(id)) cell_.SetGbr(id, gbr_bps);
    });
  }

  void EnforceMbr(FlowId id, double mbr_bps) {
    sim_.After(latency_, [this, id, mbr_bps] {
      if (cell_.HasFlow(id)) cell_.SetMbr(id, mbr_bps);
    });
  }

 private:
  Simulator& sim_;
  Cell& cell_;
  SimTime latency_;
};

}  // namespace flare
