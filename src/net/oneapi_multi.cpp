#include "net/oneapi_multi.h"

#include <stdexcept>

namespace flare {

CellId OneApiMultiServer::AddCell(Cell& cell) {
  const CellId id = next_id_++;
  Entry entry;
  entry.pcef =
      std::make_unique<Pcef>(sim_, cell, config_.downlink_latency);
  OneApiConfig cell_config = config_;
  cell_config.cell_tag = id;  // scope PCRF registrations per cell
  entry.server = std::make_unique<OneApiServer>(sim_, cell, pcrf_,
                                                *entry.pcef, cell_config);
  entry.server->SetObservers(registry_, trace_sink_, span_trace_, health_);
  entry.server->SetAdmissionCallback(admission_callback_);
  if (started_) entry.server->Start();
  cells_.emplace(id, std::move(entry));
  return id;
}

OneApiServer& OneApiMultiServer::cell_server(CellId cell_id) {
  const auto it = cells_.find(cell_id);
  if (it == cells_.end()) {
    throw std::out_of_range("OneApiMultiServer: unknown cell");
  }
  return *it->second.server;
}

void OneApiMultiServer::ConnectVideoClient(CellId cell_id,
                                           FlarePlugin* plugin,
                                           const Mpd& mpd) {
  cell_server(cell_id).ConnectVideoClient(plugin, mpd);
  owner_[plugin->flow()] = cell_id;
}

void OneApiMultiServer::DisconnectVideoClient(CellId cell_id,
                                              FlowId flow) {
  CellId target = cell_id;
  const auto owner = owner_.find(flow);
  // The named cell serves the disconnect when it owns the flow (landed
  // registration) — that also disambiguates colliding flow ids across
  // cells. Otherwise the caller's bookkeeping is stale (the flow was
  // re-connected through another cell mid-handover, or its registration
  // is still in flight there): route to the owning cell, which both
  // removes the landed state and cancels any in-flight registration via
  // the server's connect-generation guard.
  if (!cell_server(cell_id).HasClient(flow) && owner != owner_.end()) {
    target = owner->second;
  }
  cell_server(target).DisconnectVideoClient(flow);
  if (owner != owner_.end() && owner->second == target) {
    owner_.erase(owner);
  }
}

std::optional<CellId> OneApiMultiServer::OwnerCell(FlowId flow) const {
  const auto it = owner_.find(flow);
  if (it == owner_.end()) return std::nullopt;
  return it->second;
}

void OneApiMultiServer::SetObservers(MetricsRegistry* registry,
                                     BaiTraceSink* sink, SpanTracer* spans,
                                     RunHealthMonitor* health) {
  registry_ = registry;
  trace_sink_ = sink;
  span_trace_ = spans;
  health_ = health;
  for (auto& [id, entry] : cells_) {
    entry.server->SetObservers(registry, sink, spans, health);
  }
}

void OneApiMultiServer::SetAdmissionController(CellId cell_id,
                                               AdmissionController* admission) {
  cell_server(cell_id).SetAdmissionController(admission);
}

void OneApiMultiServer::SetAdmissionCallback(
    OneApiServer::AdmissionCallback callback) {
  admission_callback_ = std::move(callback);
  for (auto& [id, entry] : cells_) {
    entry.server->SetAdmissionCallback(admission_callback_);
  }
}

void OneApiMultiServer::Start() {
  if (started_) return;
  started_ = true;
  for (auto& [id, entry] : cells_) entry.server->Start();
}

}  // namespace flare
