#include "net/oneapi_multi.h"

#include <stdexcept>

namespace flare {

CellId OneApiMultiServer::AddCell(Cell& cell) {
  const CellId id = next_id_++;
  Entry entry;
  entry.pcef =
      std::make_unique<Pcef>(sim_, cell, config_.downlink_latency);
  OneApiConfig cell_config = config_;
  cell_config.cell_tag = id;  // scope PCRF registrations per cell
  entry.server = std::make_unique<OneApiServer>(sim_, cell, pcrf_,
                                                *entry.pcef, cell_config);
  if (started_) entry.server->Start();
  cells_.emplace(id, std::move(entry));
  return id;
}

OneApiServer& OneApiMultiServer::cell_server(CellId cell_id) {
  const auto it = cells_.find(cell_id);
  if (it == cells_.end()) {
    throw std::out_of_range("OneApiMultiServer: unknown cell");
  }
  return *it->second.server;
}

void OneApiMultiServer::ConnectVideoClient(CellId cell_id,
                                           FlarePlugin* plugin,
                                           const Mpd& mpd) {
  cell_server(cell_id).ConnectVideoClient(plugin, mpd);
}

void OneApiMultiServer::DisconnectVideoClient(CellId cell_id,
                                              FlowId flow) {
  cell_server(cell_id).DisconnectVideoClient(flow);
}

void OneApiMultiServer::Start() {
  if (started_) return;
  started_ = true;
  for (auto& [id, entry] : cells_) entry.server->Start();
}

}  // namespace flare
