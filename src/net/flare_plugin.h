// FLARE UE plugin — the light-weight client-side module the paper embeds in
// the HAS player (a Javascript file in the prototype; an AbrAlgorithm
// here).
//
// Responsibilities:
//  * On session start, parse the MPD and report the available bitrates to
//    the OneAPI server, stripped of anything identifying the video
//    (BuildClientInfo sends bitrates only, plus whatever the client opts
//    in to: a rung cap from device limits or data-cost preferences).
//  * Thereafter, request exactly the bitrate the OneAPI server assigned —
//    the client half of FLARE's coordinated enforcement. Before the first
//    assignment arrives the plugin stays at the lowest rung.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "abr/abr.h"
#include "core/utility.h"
#include "lte/types.h"

namespace flare {

/// What the plugin discloses to the OneAPI server (privacy-minimal; extra
/// fields are opt-in).
struct ClientInfo {
  FlowId flow = kInvalidFlow;
  std::vector<double> ladder_bps;
  std::optional<int> max_level;  // device/cost cap, if disclosed
  std::optional<VideoUtilityParams> utility;  // screen size, if disclosed
  /// Client opted in to clickstream sharing and the server-side analysis
  /// detected skimming (frequent seeks): the server selects the minimum
  /// bitrate while it persists (Section II-B).
  bool skimming = false;
};

class FlarePlugin final : public AbrAlgorithm {
 public:
  explicit FlarePlugin(FlowId flow) : flow_(flow) {}

  // --- AbrAlgorithm: request the network-assigned rung.
  int NextRepresentation(const AbrContext& context) override;
  std::string Name() const override { return "flare-plugin"; }

  // --- Coordination surface.
  /// Assignment pushed from the OneAPI server.
  void SetAssignedLevel(int level) { assigned_level_ = level; }
  std::optional<int> assigned_level() const { return assigned_level_; }

  /// Client-side constraints the user opted to disclose.
  void SetMaxLevel(std::optional<int> level) { max_level_ = level; }
  void SetUtility(std::optional<VideoUtilityParams> utility) {
    utility_ = utility;
  }
  /// Clickstream state (only meaningful if the client shares it).
  void SetSkimming(bool skimming) { skimming_ = skimming; }

  /// Client info for the OneAPI server, built from the (parsed) MPD with
  /// identifying metadata removed.
  ClientInfo BuildClientInfo(const Mpd& mpd) const;

  FlowId flow() const { return flow_; }

 private:
  FlowId flow_;
  std::optional<int> assigned_level_;
  std::optional<int> max_level_;
  std::optional<VideoUtilityParams> utility_;
  bool skimming_ = false;
};

}  // namespace flare
