// OneAPI wire messages.
//
// The prototype exchanges three message kinds over the operator's
// telecommunication-API surface (OMA OneAPI profile, Section III-A):
//   * ClientInfo        — UE plugin -> server, at session start/updates
//   * RateAssignment    — server -> UE plugin & PCEF, each BAI
//   * FlowStatsReport   — eNodeB Communication Module -> server
// This module provides a compact key=value line codec for them (the
// paper leaves the concrete protocol to future standardization; any
// self-describing encoding exercises the same path). Encoding is strict:
// Decode* returns nullopt on malformed input rather than guessing.
#pragma once

#include <optional>
#include <string>

#include "lte/stats_reporter.h"
#include "net/flare_plugin.h"

namespace flare {

/// Server -> plugin/PCEF bitrate decision for one flow.
struct RateAssignmentMsg {
  FlowId flow = kInvalidFlow;
  int level = 0;
  double rate_bps = 0.0;
  double gbr_bps = 0.0;
};

std::string EncodeClientInfo(const ClientInfo& info);
std::optional<ClientInfo> DecodeClientInfo(const std::string& wire);

std::string EncodeRateAssignment(const RateAssignmentMsg& msg);
std::optional<RateAssignmentMsg> DecodeRateAssignment(
    const std::string& wire);

std::string EncodeStatsReport(const FlowStatsReport& report);
std::optional<FlowStatsReport> DecodeStatsReport(const std::string& wire);

}  // namespace flare
