#include "abr/festive.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/stats.h"

namespace flare {

FestiveAbr::FestiveAbr(const FestiveConfig& config, Rng rng)
    : config_(config), rng_(rng) {}

double FestiveAbr::BandwidthEstimate() const {
  return HarmonicMean(std::vector<double>(samples_.begin(), samples_.end()));
}

int FestiveAbr::GradualTarget(const AbrContext& context,
                              int reference) const {
  const double estimate = BandwidthEstimate();
  if (estimate <= 0.0) return 0;
  int target = context.mpd->HighestIndexBelow(config_.p * estimate);
  target = std::max(target, 0);
  if (target > reference) {
    // Up-switches are gradual and need k*L segments of patience at the
    // current rung (L = rung being left, 1-based as in the paper).
    const int patience = config_.k * (reference + 1);
    if (segments_at_level_ >= patience) return reference + 1;
    return reference;
  }
  if (target < reference) return reference - 1;  // gradual down
  return reference;
}

double FestiveAbr::Efficiency(double bitrate_bps,
                              double reference_bps) const {
  // FESTIVE's efficiency score: distance of the bitrate from the usable
  // reference, |b / min(p*w, b_candidate) - 1| (the reference is computed
  // by the caller).
  return std::abs(bitrate_bps / std::max(reference_bps, 1.0) - 1.0);
}

int FestiveAbr::RecentSwitches() const {
  int n = 0;
  for (bool s : switch_history_) n += s ? 1 : 0;
  return n;
}

int FestiveAbr::NextRepresentation(const AbrContext& context) {
  const int reference = std::max(context.last_index, 0);
  if (samples_.empty()) {
    // No estimate yet: start at the lowest rung.
    current_level_ = 0;
    return 0;
  }

  // Stall avoidance: with the buffer nearly empty, gradual one-rung
  // descent is too slow (a rung per segment); jump straight to the rate
  // the estimate supports. FESTIVE trades bitrate, never rebuffers.
  if (context.buffer_s < 1.5 * context.mpd->segment_duration_s) {
    const double estimate = BandwidthEstimate();
    const int safe =
        std::max(context.mpd->HighestIndexBelow(config_.p * estimate), 0);
    if (safe < reference) return safe;
  }

  const int candidate = GradualTarget(context, reference);
  int chosen = reference;
  if (candidate != reference) {
    // Delayed update: switch only if it lowers stability+alpha*efficiency.
    // Both options are scored against the same usable-bandwidth reference
    // min(p * estimate, candidate bitrate), per the FESTIVE paper.
    const double usable = config_.p * BandwidthEstimate();
    const double anchor =
        std::min(usable, context.mpd->BitrateOf(candidate));
    const double stay_score =
        RecentSwitches() +
        config_.alpha * Efficiency(context.mpd->BitrateOf(reference),
                                   anchor);
    const double switch_score =
        (RecentSwitches() + 1) +
        config_.alpha * Efficiency(context.mpd->BitrateOf(candidate),
                                   anchor);
    if (switch_score < stay_score) chosen = candidate;
  }
  return chosen;
}

void FestiveAbr::OnSegmentComplete(const AbrContext& context,
                                   double throughput_bps) {
  samples_.push_back(throughput_bps);
  while (static_cast<int>(samples_.size()) > config_.bw_window) {
    samples_.pop_front();
  }

  const int level = context.last_index;
  const bool switched = current_level_ >= 0 && level != current_level_;
  if (switched) {
    segments_at_level_ = 1;
  } else {
    ++segments_at_level_;
  }
  current_level_ = level;

  switch_history_.push_back(switched);
  while (static_cast<int>(switch_history_.size()) > config_.switch_window) {
    switch_history_.pop_front();
  }
}

SimTime FestiveAbr::RequestDelay(const AbrContext& context) {
  // Randomized scheduling: jitter requests once the client is in steady
  // state (buffer built up) to break synchronization across clients.
  if (context.buffer_s < 2.0 * context.mpd->segment_duration_s) return 0;
  const double max_delay_s =
      config_.random_delay_frac * context.mpd->segment_duration_s;
  return FromSeconds(rng_.Uniform(0.0, max_delay_s));
}

}  // namespace flare
