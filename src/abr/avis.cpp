#include "abr/avis.h"

#include <algorithm>
#include <cmath>

namespace flare {

int AvisClientAbr::NextRepresentation(const AbrContext& context) {
  const std::vector<double>& history = context.throughput_history_bps;
  if (history.empty()) return 0;
  const auto n = std::min<std::size_t>(history.size(),
                                       static_cast<std::size_t>(window_));
  double sum = 0.0;
  for (std::size_t i = history.size() - n; i < history.size(); ++i) {
    sum += history[i];
  }
  const double estimate = sum / static_cast<double>(n);
  return std::max(context.mpd->HighestIndexBelow(estimate), 0);
}

AvisGateway::AvisGateway(Simulator& sim, Cell& cell,
                         const AvisConfig& config)
    : sim_(sim), cell_(cell), config_(config) {}

void AvisGateway::RegisterVideoFlow(FlowId id, const Mpd* mpd) {
  VideoEntry entry;
  entry.mpd = mpd;
  video_[id] = entry;
}

void AvisGateway::RegisterDataFlow(FlowId id) { data_[id] = true; }

void AvisGateway::Deregister(FlowId id) {
  video_.erase(id);
  data_.erase(id);
}

void AvisGateway::Start() {
  if (started_) return;
  started_ = true;
  const SimTime epoch = FromSeconds(config_.epoch_s);
  sim_.Every(epoch, epoch, [this] { RunEpoch(); });
}

double AvisGateway::AssignedRate(FlowId id) const {
  const auto it = video_.find(id);
  return it == video_.end() ? 0.0 : it->second.assigned_bps;
}

void AvisGateway::RunEpoch() {
  const auto n_video = static_cast<double>(video_.size());

  // --- Video slice: per-flow sustainable share, EWMA-smoothed, quantized.
  // Table IV's alpha = 0.01 is a per-TTI weight; an epoch of W TTIs
  // compounds to 1 - (1-alpha)^W, so with W = 150 the estimate essentially
  // tracks the latest channel sample — which is what makes AVIS's
  // assignment flap across rung boundaries under fading.
  const double w_eff =
      1.0 - std::pow(1.0 - config_.alpha, config_.epoch_s * 1000.0);
  for (auto& [id, entry] : video_) {
    if (!cell_.HasFlow(id)) continue;
    const double full_rate = cell_.UeFullCellRateBps(cell_.flow(id).ue);
    const double share =
        config_.video_rb_fraction * full_rate / std::max(n_video, 1.0);
    entry.est_bps = entry.est_bps <= 0.0
                        ? share
                        : (1.0 - w_eff) * entry.est_bps + w_eff * share;
    const int index =
        std::max(entry.mpd->HighestIndexBelow(entry.est_bps), 0);
    entry.assigned_bps = entry.mpd->BitrateOf(index);
    cell_.SetGbr(id, entry.assigned_bps);
    cell_.SetMbr(id, config_.mbr_headroom > 0.0
                         ? entry.assigned_bps * config_.mbr_headroom
                         : 0.0);  // 0 => uncapped
  }

  // --- Data slice: statically capped at the remaining RB fraction, split
  // evenly. This is the static partition the FLARE paper criticizes.
  if (!data_.empty()) {
    double mean_rate = 0.0;
    int counted = 0;
    for (const auto& [id, unused] : data_) {
      if (!cell_.HasFlow(id)) continue;
      mean_rate += cell_.UeFullCellRateBps(cell_.flow(id).ue);
      ++counted;
    }
    if (counted > 0) {
      mean_rate /= static_cast<double>(counted);
      const double per_flow = (1.0 - config_.video_rb_fraction) * mean_rate /
                              static_cast<double>(counted);
      for (const auto& [id, unused] : data_) {
        if (cell_.HasFlow(id)) cell_.SetMbr(id, per_flow);
      }
    }
  }
}

}  // namespace flare
