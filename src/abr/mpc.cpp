#include "abr/mpc.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

#include "util/stats.h"

namespace flare {

double MpcAbr::PredictThroughput(const AbrContext& context) const {
  const std::vector<double>& history = context.throughput_history_bps;
  if (history.empty()) return 0.0;
  const auto n = std::min<std::size_t>(
      history.size(), static_cast<std::size_t>(config_.throughput_window));
  const std::vector<double> tail(history.end() - static_cast<long>(n),
                                 history.end());
  return config_.discount * HarmonicMean(tail);
}

double MpcAbr::ScorePlan(const Mpd& mpd, const std::vector<int>& plan,
                         int previous_index, double buffer_s,
                         double predicted_bps) const {
  double score = 0.0;
  double buffer = buffer_s;
  int prev = previous_index;
  for (int index : plan) {
    const double rate = mpd.BitrateOf(index);
    const double download_s =
        rate * mpd.segment_duration_s / std::max(predicted_bps, 1.0);
    // Buffer drains during the download; rebuffering accrues if it runs
    // dry before the segment lands.
    const double rebuf = std::max(0.0, download_s - buffer);
    buffer = std::max(buffer - download_s, 0.0) + mpd.segment_duration_s;

    const double q = rate / 1e6;
    const double q_prev = prev >= 0 ? mpd.BitrateOf(prev) / 1e6 : q;
    score += q - config_.lambda * std::abs(q - q_prev) -
             config_.mu * rebuf;
    prev = index;
  }
  return score;
}

int MpcAbr::NextRepresentation(const AbrContext& context) {
  const double predicted = PredictThroughput(context);
  if (predicted <= 0.0) return 0;
  const Mpd& mpd = *context.mpd;
  const int top = mpd.NumRepresentations() - 1;
  const int start = std::max(context.last_index, 0);

  // Depth-first enumeration of plans whose steps move at most max_step
  // rungs at a time.
  std::vector<int> plan;
  std::vector<int> best_plan;
  double best_score = -1e300;
  const int horizon = std::max(config_.horizon, 1);

  const std::function<void(int, int)> recurse = [&](int depth, int prev) {
    if (depth == horizon) {
      const double score = ScorePlan(mpd, plan, context.last_index,
                                     context.buffer_s, predicted);
      if (score > best_score) {
        best_score = score;
        best_plan = plan;
      }
      return;
    }
    const int lo = std::max(prev - config_.max_step, 0);
    const int hi = std::min(prev + config_.max_step, top);
    for (int index = lo; index <= hi; ++index) {
      plan.push_back(index);
      recurse(depth + 1, index);
      plan.pop_back();
    }
  };
  recurse(0, start);

  return best_plan.empty() ? start : best_plan.front();
}

}  // namespace flare
