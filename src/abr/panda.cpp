#include "abr/panda.h"

#include <algorithm>

namespace flare {

void PandaAbr::OnSegmentComplete(const AbrContext& context,
                                 double throughput_bps) {
  // Stage 1 — probing estimate update. T is the time since the previous
  // request (actual inter-request time).
  const double t_s = last_request_ >= 0
                         ? std::max(ToSeconds(context.now - last_request_),
                                    1e-3)
                         : context.mpd->segment_duration_s;
  last_request_ = context.now;

  if (x_hat_bps_ <= 0.0) {
    x_hat_bps_ = throughput_bps;
  } else {
    const double overshoot = std::max(0.0, x_hat_bps_ - throughput_bps);
    x_hat_bps_ += config_.kappa * t_s * (config_.w_bps - overshoot);
    x_hat_bps_ = std::max(x_hat_bps_, 1.0);
  }

  // Stage 2 — smoothing.
  y_hat_bps_ = y_hat_bps_ <= 0.0
                   ? x_hat_bps_
                   : (1.0 - config_.smoothing) * y_hat_bps_ +
                         config_.smoothing * x_hat_bps_;
}

int PandaAbr::NextRepresentation(const AbrContext& context) {
  if (y_hat_bps_ <= 0.0) return 0;
  const int current = std::max(context.last_index, 0);

  // Stage 3 — dead-zone quantizer.
  const int up_target = std::max(
      context.mpd->HighestIndexBelow(config_.up_safety * y_hat_bps_), 0);
  const int down_target =
      std::max(context.mpd->HighestIndexBelow(y_hat_bps_), 0);
  if (up_target > current) return up_target;
  if (down_target < current) return down_target;
  return current;
}

SimTime PandaAbr::RequestDelay(const AbrContext& context) {
  // Stage 4 — scheduling: pace requests so the buffer settles at the
  // target. The session already paces by its buffer cap; this adds the
  // proportional term when the buffer runs above target.
  if (y_hat_bps_ <= 0.0 || context.last_index < 0) return 0;
  const double extra_s =
      config_.beta * (context.buffer_s - config_.buffer_target_s);
  if (extra_s <= 0.0) return 0;
  return FromSeconds(
      std::min(extra_s, context.mpd->segment_duration_s));
}

}  // namespace flare
