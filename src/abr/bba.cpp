#include "abr/bba.h"

#include <algorithm>

namespace flare {

int BbaAbr::NextRepresentation(const AbrContext& context) {
  const int top = context.mpd->NumRepresentations() - 1;
  if (context.buffer_s <= config_.reservoir_s) return 0;
  if (context.buffer_s >= config_.cushion_s) return top;
  const double span = std::max(config_.cushion_s - config_.reservoir_s,
                               1e-9);
  const double frac = (context.buffer_s - config_.reservoir_s) / span;
  return std::clamp(static_cast<int>(frac * top), 0, top);
}

}  // namespace flare
