// AVIS (Chen et al., MOBICOM 2013) — network-side HAS resource management,
// in the variant the FLARE paper simulates (§IV-B): an in-network gateway
// estimates a sustainable rate per video flow, quantizes it to the ladder,
// and enforces it by setting the GBR/MBR of the flow's bearer at the
// scheduler; the UE independently runs a simple greedy adaptation that
// requests the highest rate its *measured* throughput supports. The two
// control loops are not coordinated — the mismatch between network-assigned
// and client-requested rates is AVIS's characteristic failure mode.
//
// AVIS statically partitions radio resources between video and data slices
// (`video_rb_fraction`), which the paper identifies as its second weakness:
// idle video headroom cannot be reclaimed by data flows.
#pragma once

#include <map>

#include "abr/abr.h"
#include "lte/cell.h"
#include "sim/simulator.h"

namespace flare {

struct AvisConfig {
  /// Gateway epoch W, in seconds (Table IV: W = 150 TTIs).
  double epoch_s = 0.150;
  /// EWMA weight for the sustainable-rate estimate (Table IV: 0.01).
  double alpha = 0.01;
  /// Static share of RBs reserved for the video slice.
  double video_rb_fraction = 0.7;
  /// MBR = headroom * GBR; <= 0 leaves the flow uncapped (GBR only). With
  /// no cap the UE's throughput samples (boosted by leftover phase-2 RBs)
  /// run ahead of the GBR, so the greedy client requests rates the network
  /// did not assign — the client/network mismatch the FLARE paper
  /// attributes to AVIS ("the network sets only the GBR/MBR, while the
  /// rate controller in the UE selects the actual video bitrate").
  double mbr_headroom = 1.25;
};

/// UE-side greedy adaptation: highest ladder rate <= short-window mean
/// throughput.
class AvisClientAbr final : public AbrAlgorithm {
 public:
  explicit AvisClientAbr(int window = 3) : window_(window) {}
  int NextRepresentation(const AbrContext& context) override;
  std::string Name() const override { return "avis-client"; }

 private:
  int window_;
};

/// Network-side gateway: per-epoch sustainable-rate estimation and GBR/MBR
/// enforcement through the cell.
class AvisGateway {
 public:
  AvisGateway(Simulator& sim, Cell& cell, const AvisConfig& config);

  /// Register a video flow and the bitrate ladder its MPD advertises.
  void RegisterVideoFlow(FlowId id, const Mpd* mpd);
  void RegisterDataFlow(FlowId id);
  void Deregister(FlowId id);

  /// Begin the per-epoch control loop.
  void Start();

  /// One gateway epoch (exposed for tests).
  void RunEpoch();

  /// Last rate assigned to a video flow (bits/s), 0 if none yet.
  double AssignedRate(FlowId id) const;

 private:
  struct VideoEntry {
    const Mpd* mpd = nullptr;
    double est_bps = 0.0;  // EWMA sustainable-rate estimate
    double assigned_bps = 0.0;
  };

  Simulator& sim_;
  Cell& cell_;
  AvisConfig config_;
  std::map<FlowId, VideoEntry> video_;
  std::map<FlowId, bool> data_;
  bool started_ = false;
};

}  // namespace flare
