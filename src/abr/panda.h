// PANDA — "Probe AND Adapt" (Li et al., IEEE JSAC 2014), the rate
// adaptation the FLARE paper cites for the observation that discrete
// bitrates prevent clients from finding their fair share [10].
//
// Four stages per segment, as in the original:
//  1. Estimating — additive-increase probing of the network share:
//       x̂_n = x̂_{n-1} + kappa * T * (w - max(0, x̂_{n-1} - x̃_{n-1}))
//     where x̃ is the measured per-segment throughput, w the probe
//     increment and T the actual inter-request time. Unlike raw
//     measurement, x̂ keeps nudging upward (probing) and collapses only
//     when the measurement falls below it (congestion back-off) — TCP-like
//     dynamics at segment granularity.
//  2. Smoothing — EWMA over x̂ to get ŷ.
//  3. Quantizing — dead-zone quantizer: switch up only if ŷ clears the
//     next rung by an up-margin, down only when ŷ falls below the current
//     rung; prevents boundary flapping.
//  4. Scheduling — inter-request time targets a buffer setpoint:
//       T = seg * rate / ŷ + beta * (buffer - buffer_target).
#pragma once

#include "abr/abr.h"

namespace flare {

struct PandaConfig {
  double kappa = 0.28;        // probe convergence rate (paper default)
  double w_bps = 0.3e6;       // additive probe increment
  double smoothing = 0.2;     // EWMA weight for y-hat
  double up_safety = 0.85;    // up-switch margin on y-hat
  double buffer_target_s = 25.0;
  double beta = 0.2;          // buffer feedback gain on scheduling
};

class PandaAbr final : public AbrAlgorithm {
 public:
  explicit PandaAbr(const PandaConfig& config = PandaConfig{})
      : config_(config) {}

  int NextRepresentation(const AbrContext& context) override;
  void OnSegmentComplete(const AbrContext& context,
                         double throughput_bps) override;
  SimTime RequestDelay(const AbrContext& context) override;
  std::string Name() const override { return "panda"; }

  double probe_estimate_bps() const { return x_hat_bps_; }
  double smoothed_estimate_bps() const { return y_hat_bps_; }

 private:
  PandaConfig config_;
  double x_hat_bps_ = 0.0;
  double y_hat_bps_ = 0.0;
  SimTime last_request_ = -1;
};

}  // namespace flare
