// Adaptive-bitrate (ABR) algorithm interface.
//
// A VideoSession consults its AbrAlgorithm before each segment request.
// Client-side algorithms (FESTIVE, GOOGLE) decide from throughput history
// and buffer state; coordinated/network-side clients (FLARE plugin, AVIS
// client) fold in rates pushed from the network.
#pragma once

#include <string>
#include <vector>

#include "has/mpd.h"
#include "util/time.h"

namespace flare {

struct AbrContext {
  const Mpd* mpd = nullptr;
  SimTime now = 0;
  int segment_number = 0;    // 0-based index of the segment being decided
  int last_index = -1;       // representation of the previous segment
  double buffer_s = 0.0;     // client buffer level
  /// Most recent per-segment download throughputs, oldest first (capped by
  /// the session's history limit). Goodput: request send -> last byte.
  std::vector<double> throughput_history_bps;
  /// Receive-phase rates for the same segments (first byte -> last byte).
  /// Optimistic: excludes request gaps, so it tracks the instantaneous
  /// link share. GOOGLE's estimator uses these, mirroring the demo
  /// player's bytes-received-over-receive-time measurement.
  std::vector<double> download_rate_history_bps;
};

class AbrAlgorithm {
 public:
  virtual ~AbrAlgorithm() = default;

  /// Representation index (0-based) for the next segment.
  virtual int NextRepresentation(const AbrContext& context) = 0;

  /// Called when a segment download completes (hook for algorithm-side
  /// state such as FESTIVE's bandwidth estimator).
  virtual void OnSegmentComplete(const AbrContext& /*context*/,
                                 double /*throughput_bps*/) {}

  /// Extra delay to insert before the next segment request (FESTIVE's
  /// randomized scheduling hook; default none).
  virtual SimTime RequestDelay(const AbrContext& /*context*/) { return 0; }

  virtual std::string Name() const = 0;
};

}  // namespace flare
