// MPC — model-predictive-control rate adaptation (Yin et al., SIGCOMM
// 2015), cited by the FLARE paper as the control-theoretic combination of
// throughput and buffer-occupancy information [11].
//
// Each segment boundary the controller enumerates bitrate plans over a
// lookahead horizon, simulates the buffer trajectory under a harmonic-
// mean throughput prediction, scores each plan with the paper's QoE
// objective
//     sum_k [ q(R_k)  -  lambda |q(R_k) - q(R_{k-1})|  -  mu * rebuf_k ]
// (q = bitrate in Mbps), and plays the first step of the best plan.
// Enumeration is restricted to monotone-ish plans (each step moves at
// most `max_step` rungs from the previous) to keep the search tractable;
// with max_step = 1 and horizon 5 this is a few hundred plans.
#pragma once

#include "abr/abr.h"

namespace flare {

struct MpcConfig {
  int horizon = 5;            // segments of lookahead
  int throughput_window = 5;  // harmonic-mean prediction window
  double lambda = 1.0;        // switching penalty weight
  double mu = 8.0;            // rebuffering penalty weight (per second)
  int max_step = 1;           // per-step rung movement bound in plans
  /// Conservative throughput discount (robust-MPC flavour).
  double discount = 0.9;
};

class MpcAbr final : public AbrAlgorithm {
 public:
  explicit MpcAbr(const MpcConfig& config = MpcConfig{})
      : config_(config) {}

  int NextRepresentation(const AbrContext& context) override;
  std::string Name() const override { return "mpc"; }

  /// Score a fixed plan from the given start state (exposed for tests).
  double ScorePlan(const Mpd& mpd, const std::vector<int>& plan,
                   int previous_index, double buffer_s,
                   double predicted_bps) const;

 private:
  double PredictThroughput(const AbrContext& context) const;
  MpcConfig config_;
};

}  // namespace flare
