// FESTIVE client-side ABR (Jiang, Sekar, Zhang — CoNEXT 2012).
//
// Components, as reimplemented from the paper the FLARE authors compare
// against:
//  * Bandwidth estimation — harmonic mean of the last `bw_window` segment
//    throughputs (robust to outliers, conservative on variable links).
//  * Gradual switching — move at most one ladder rung at a time; an
//    up-switch to rung L is allowed only after k*L segments at the current
//    rung (higher rates probe more slowly).
//  * Delayed update — the candidate switch is taken only if it lowers the
//    combined score  stability + alpha * efficiency, where stability counts
//    recent switches and efficiency measures |bitrate/(p*estimate) - 1|.
//  * Randomized scheduling — when the buffer is near target, the next
//    request is jittered uniformly to desynchronize competing clients.
#pragma once

#include <deque>

#include "abr/abr.h"
#include "util/rng.h"

namespace flare {

struct FestiveConfig {
  int bw_window = 20;
  double p = 0.85;       // Table IV
  double alpha = 12.0;   // Table IV
  int k = 4;             // Table IV: up-switch patience factor
  int switch_window = 10;  // recent segments considered by stability score
  double random_delay_frac = 0.5;  // of a segment duration
};

class FestiveAbr final : public AbrAlgorithm {
 public:
  FestiveAbr(const FestiveConfig& config, Rng rng);

  int NextRepresentation(const AbrContext& context) override;
  void OnSegmentComplete(const AbrContext& context,
                         double throughput_bps) override;
  SimTime RequestDelay(const AbrContext& context) override;
  std::string Name() const override { return "festive"; }

  double BandwidthEstimate() const;

 private:
  int GradualTarget(const AbrContext& context, int reference) const;
  double Efficiency(double bitrate_bps, double reference_bps) const;
  int RecentSwitches() const;

  FestiveConfig config_;
  Rng rng_;
  std::deque<double> samples_;
  int segments_at_level_ = 0;
  int current_level_ = -1;
  std::deque<bool> switch_history_;  // true = that segment switched rungs
};

}  // namespace flare
