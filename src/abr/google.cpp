#include "abr/google.h"

#include <algorithm>

namespace flare {

double GoogleAbr::MeanOfTail(const std::vector<double>& xs, int window) {
  if (xs.empty() || window <= 0) return 0.0;
  const auto n = std::min<std::size_t>(xs.size(),
                                       static_cast<std::size_t>(window));
  double sum = 0.0;
  for (std::size_t i = xs.size() - n; i < xs.size(); ++i) sum += xs[i];
  return sum / static_cast<double>(n);
}

int GoogleAbr::NextRepresentation(const AbrContext& context) {
  // The demo player measures bandwidth as bytes received over receive
  // time, which excludes request gaps and therefore tracks the optimistic
  // instantaneous share; fall back to goodput when unavailable (tests).
  const std::vector<double>& history =
      context.download_rate_history_bps.empty()
          ? context.throughput_history_bps
          : context.download_rate_history_bps;
  if (history.empty()) return 0;
  const double b_long = MeanOfTail(history, config_.long_window);
  const double b_short = MeanOfTail(history, config_.short_window);
  const double usable = config_.safety * std::min(b_long, b_short);
  return std::max(context.mpd->HighestIndexBelow(usable), 0);
}

}  // namespace flare
