// "GOOGLE" — the MPEG-DASH / Media Source demo player's rate logic, as the
// FLARE paper describes it (§IV-A): keep a long-term and a short-term link
// bandwidth estimate from recently received segments and select the highest
// available rate <= 0.85 * min(b_long, b_short). Aggressive: the mean-based
// estimates chase throughput peaks, which is what causes the frequent
// rebuffering the paper observes.
#pragma once

#include "abr/abr.h"

namespace flare {

struct GoogleAbrConfig {
  double safety = 0.85;
  int long_window = 30;  // segments in the long-term mean
  int short_window = 12;  // segments in the short-term mean
};

class GoogleAbr final : public AbrAlgorithm {
 public:
  explicit GoogleAbr(const GoogleAbrConfig& config = GoogleAbrConfig{})
      : config_(config) {}

  int NextRepresentation(const AbrContext& context) override;
  std::string Name() const override { return "google"; }

 private:
  static double MeanOfTail(const std::vector<double>& xs, int window);
  GoogleAbrConfig config_;
};

}  // namespace flare
