// BBA — buffer-based adaptation (Huang et al., SIGCOMM 2014).
//
// Ignores throughput estimates entirely: the bitrate is a function of the
// playout buffer level. Below the reservoir the player takes the lowest
// rung; above the cushion the highest; in between, a linear map. The
// classic counterpoint to estimator-driven ABR — included as an extended
// baseline (the FLARE paper's related work discusses rate- vs buffer-
// based client adaptation).
#pragma once

#include "abr/abr.h"

namespace flare {

struct BbaConfig {
  double reservoir_s = 5.0;  // below this: minimum rate
  double cushion_s = 25.0;   // above this: maximum rate
};

class BbaAbr final : public AbrAlgorithm {
 public:
  explicit BbaAbr(const BbaConfig& config = BbaConfig{})
      : config_(config) {}

  int NextRepresentation(const AbrContext& context) override;
  std::string Name() const override { return "bba"; }

 private:
  BbaConfig config_;
};

}  // namespace flare
