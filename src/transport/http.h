// Minimal HTTP/1.1-style request layer over a TcpFlow.
//
// A HAS client issues one GET per video segment; the request travels half
// an RTT uplink before the server starts streaming the response body. The
// client object tracks response progress and reports per-request download
// throughput — the signal client-side ABR estimators feed on.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>

#include "sim/simulator.h"
#include "transport/tcp_flow.h"

namespace flare {

struct HttpResult {
  std::uint64_t bytes = 0;
  SimTime requested_at = 0;
  SimTime first_byte_at = 0;
  SimTime completed_at = 0;
  /// Goodput over the full request (request send -> last byte), bits/s.
  double throughput_bps = 0.0;
  /// Receive-phase rate (first byte -> last byte), bits/s. Excludes the
  /// request round trip and server think time, so it runs at the link's
  /// instantaneous share — higher and more optimistic than throughput_bps.
  double download_bps = 0.0;
};

class HttpClient {
 public:
  using CompleteFn = std::function<void(const HttpResult&)>;
  /// Progress: cumulative bytes of the in-flight response received so far.
  using ProgressFn = std::function<void(std::uint64_t bytes, SimTime now)>;

  HttpClient(Simulator& sim, TcpFlow& flow);
  /// Safe to destroy mid-request (session churn), in either order with
  /// the flow: pending uplink events and the flow's receive callback are
  /// liveness-guarded, so neither side calls into freed memory.

  /// Issue a GET for a `bytes`-sized object. Requests queue FIFO if one is
  /// already in flight (HTTP/1.1 persistent connection semantics).
  void Get(std::uint64_t bytes, CompleteFn on_complete);

  void SetProgressCallback(ProgressFn fn) { on_progress_ = std::move(fn); }

  bool busy() const { return current_.has_value() || !queue_.empty(); }

 private:
  struct Request {
    std::uint64_t bytes;
    CompleteFn on_complete;
  };

  void StartNext();
  void OnReceive(std::uint64_t bytes, SimTime now);

  Simulator& sim_;
  TcpFlow& flow_;
  std::deque<Request> queue_;
  struct InFlight {
    Request request;
    HttpResult result;
    std::uint64_t received = 0;
  };
  std::optional<InFlight> current_;
  ProgressFn on_progress_;
  // Liveness token (TcpFlow's pattern): scheduled events capture a
  // weak_ptr so a GET in flight when the client is destroyed mid-run
  // cannot call back into freed memory.
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);
};

}  // namespace flare
