// Downlink TCP flow model (Westwood flavour).
//
// The radio link is the bottleneck, so the model centres on the eNodeB RLC
// queue: the sender pushes min(cwnd - inflight, app backlog) into the queue
// (after half an RTT of wired delay), the cell drains it per-TTI, and ACKs
// return a full RTT after over-the-air delivery. Tail drops at the RLC
// queue trigger a Westwood backoff: cwnd and ssthresh collapse to the
// bandwidth-delay product estimated from the ACK rate, which is what makes
// greedy data flows settle near their scheduled share instead of halving
// blindly. Slow-start ramp-up is what client-side ABR throughput estimators
// actually observe, so modelling it matters for FESTIVE/GOOGLE fidelity.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "lte/cell.h"
#include "sim/simulator.h"
#include "util/time.h"

namespace flare {

struct TcpConfig {
  double rtt_s = 0.06;  // wired core + radio round trip
  std::uint32_t mss = 1400;
  std::uint32_t init_cwnd_segments = 10;
  double max_cwnd_bytes = 4.0e6;
  /// Minimum gap between loss reactions (one backoff per window).
  double loss_reaction_interval_s = 0.06;
};

class TcpFlow {
 public:
  /// Receiver-side callback: bytes that arrived at the UE.
  using ReceiveFn = std::function<void(std::uint64_t bytes, SimTime now)>;

  TcpFlow(Simulator& sim, Cell& cell, FlowId flow, const TcpConfig& config);

  /// Queue application bytes for transfer (server-side send).
  void Send(std::uint64_t bytes);

  void SetOnReceive(ReceiveFn fn) { on_receive_ = std::move(fn); }

  /// Transport host plumbing: over-the-air delivery / RLC drop for this
  /// flow's id.
  void HandleDelivery(std::uint64_t bytes, SimTime now);
  void HandleDrop(std::uint64_t bytes);

  bool Idle() const {
    return app_pending_ == 0 && inflight_bytes_ == 0;
  }
  std::uint64_t pending_bytes() const { return app_pending_; }
  std::uint64_t inflight_bytes() const { return inflight_bytes_; }
  std::uint64_t bytes_delivered() const { return bytes_delivered_; }
  double cwnd_bytes() const { return cwnd_bytes_; }
  double bandwidth_estimate_bps() const { return bwe_bps_; }
  FlowId id() const { return flow_; }

 private:
  void TryPush();
  void OnAck(std::uint64_t bytes, SimTime now);

  Simulator& sim_;
  Cell& cell_;
  FlowId flow_;
  TcpConfig config_;

  std::uint64_t app_pending_ = 0;
  std::uint64_t inflight_bytes_ = 0;
  double cwnd_bytes_ = 0.0;
  double ssthresh_bytes_ = 0.0;
  double bwe_bps_ = 0.0;  // Westwood bandwidth estimate (ACK rate EWMA)
  SimTime last_ack_time_ = 0;
  SimTime last_loss_reaction_ = -1;
  std::uint64_t bytes_delivered_ = 0;
  bool push_scheduled_ = false;

  // Liveness token: simulator events capture a weak_ptr to it so callbacks
  // scheduled before the flow is destroyed become no-ops afterwards.
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);

  ReceiveFn on_receive_;
};

}  // namespace flare
