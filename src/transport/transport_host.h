// Transport host: owns all TCP flows over one cell and demultiplexes the
// cell's single delivery/drop callback pair to the per-flow objects.
// Also provides the greedy "iperf" source used for background data flows.
#pragma once

#include <map>
#include <memory>
#include <set>

#include "lte/cell.h"
#include "transport/tcp_flow.h"

namespace flare {

class TransportHost {
 public:
  TransportHost(Simulator& sim, Cell& cell);

  TransportHost(const TransportHost&) = delete;
  TransportHost& operator=(const TransportHost&) = delete;

  /// Create a flow of `type` for UE `ue`; returns the TcpFlow (owned by the
  /// host; valid until DestroyFlow or host destruction).
  TcpFlow& CreateFlow(UeId ue, FlowType type,
                      const TcpConfig& config = TcpConfig{});

  void DestroyFlow(FlowId id);

  TcpFlow& flow(FlowId id);
  bool Has(FlowId id) const { return flows_.count(id) > 0; }

  /// Turn a flow into a greedy source: the application backlog is topped up
  /// whenever it drains (iperf-style bulk transfer).
  void MakeGreedy(FlowId id);

 private:
  void TopUpGreedy(FlowId id);
  /// Self-rescheduling top-up tick; the chain ends (and the captured
  /// callable dies) once the flow leaves greedy_, so a destroyed flow's
  /// timer does not tick for the rest of the run.
  void ScheduleGreedyTick(FlowId id);

  Simulator& sim_;
  Cell& cell_;
  std::map<FlowId, std::unique_ptr<TcpFlow>> flows_;
  std::set<FlowId> greedy_;
};

}  // namespace flare
