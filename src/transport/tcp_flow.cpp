#include "transport/tcp_flow.h"

#include <algorithm>

namespace flare {

TcpFlow::TcpFlow(Simulator& sim, Cell& cell, FlowId flow,
                 const TcpConfig& config)
    : sim_(sim), cell_(cell), flow_(flow), config_(config) {
  cwnd_bytes_ =
      static_cast<double>(config_.init_cwnd_segments) * config_.mss;
  ssthresh_bytes_ = config_.max_cwnd_bytes;
}

void TcpFlow::Send(std::uint64_t bytes) {
  app_pending_ += bytes;
  TryPush();
}

void TcpFlow::TryPush() {
  if (push_scheduled_ || app_pending_ == 0) return;
  const auto window = static_cast<std::uint64_t>(
      std::max(cwnd_bytes_, static_cast<double>(config_.mss)));
  if (inflight_bytes_ >= window) return;
  const std::uint64_t can_send =
      std::min<std::uint64_t>(window - inflight_bytes_, app_pending_);
  if (can_send == 0) return;

  // The push reaches the eNB queue after half an RTT of wired delay.
  push_scheduled_ = true;
  app_pending_ -= can_send;
  inflight_bytes_ += can_send;
  sim_.After(FromSeconds(config_.rtt_s / 2.0),
             [this, can_send, alive = std::weak_ptr<char>(alive_)] {
               if (alive.expired()) return;  // flow destroyed in flight
               push_scheduled_ = false;
               if (!cell_.HasFlow(flow_)) return;
               cell_.Enqueue(flow_, can_send);  // overflow -> HandleDrop
               TryPush();
             });
}

void TcpFlow::HandleDelivery(std::uint64_t bytes, SimTime now) {
  bytes_delivered_ += bytes;
  if (on_receive_) on_receive_(bytes, now);
  // ACK returns a full RTT after over-the-air transmission.
  sim_.After(FromSeconds(config_.rtt_s),
             [this, bytes, alive = std::weak_ptr<char>(alive_)] {
               if (alive.expired()) return;
               OnAck(bytes, sim_.Now());
             });
}

void TcpFlow::OnAck(std::uint64_t bytes, SimTime now) {
  inflight_bytes_ -= std::min(inflight_bytes_, bytes);

  // Westwood bandwidth estimate from the ACK arrival rate.
  if (last_ack_time_ > 0 && now > last_ack_time_) {
    const double dt = ToSeconds(now - last_ack_time_);
    const double sample = static_cast<double>(bytes) * 8.0 / dt;
    bwe_bps_ = bwe_bps_ <= 0.0 ? sample : 0.9 * bwe_bps_ + 0.1 * sample;
  }
  last_ack_time_ = now;

  if (cwnd_bytes_ < ssthresh_bytes_) {
    cwnd_bytes_ += static_cast<double>(bytes);  // slow start
  } else {
    cwnd_bytes_ += static_cast<double>(config_.mss) *
                   static_cast<double>(bytes) /
                   std::max(cwnd_bytes_, 1.0);  // congestion avoidance
  }
  cwnd_bytes_ = std::min(cwnd_bytes_, config_.max_cwnd_bytes);
  TryPush();
}

void TcpFlow::HandleDrop(std::uint64_t bytes) {
  // Dropped bytes will never be ACKed: take them out of flight and queue a
  // retransmission.
  inflight_bytes_ -= std::min(inflight_bytes_, bytes);
  app_pending_ += bytes;

  const SimTime now = sim_.Now();
  const SimTime min_gap = FromSeconds(config_.loss_reaction_interval_s);
  if (last_loss_reaction_ >= 0 && now - last_loss_reaction_ < min_gap) {
    TryPush();
    return;  // at most one backoff per window
  }
  last_loss_reaction_ = now;

  // Westwood: shrink to the estimated bandwidth-delay product instead of
  // halving, which keeps utilization high on the wireless bottleneck.
  const double bdp = bwe_bps_ / 8.0 * config_.rtt_s;
  const double floor_bytes = 2.0 * config_.mss;
  ssthresh_bytes_ = std::max(bdp, floor_bytes);
  cwnd_bytes_ = ssthresh_bytes_;
  TryPush();
}

}  // namespace flare
