#include "transport/transport_host.h"

#include <stdexcept>

namespace flare {
namespace {
// Greedy sources keep this much application backlog queued at the sender.
constexpr std::uint64_t kGreedyChunkBytes = 1 << 20;
// Check/refill period for greedy sources.
constexpr SimTime kGreedyTopUpPeriod = 100 * kMillisecond;
}  // namespace

TransportHost::TransportHost(Simulator& sim, Cell& cell)
    : sim_(sim), cell_(cell) {
  cell_.SetDeliveryCallback(
      [this](FlowId id, std::uint64_t bytes, SimTime now) {
        const auto it = flows_.find(id);
        if (it != flows_.end()) it->second->HandleDelivery(bytes, now);
      });
  cell_.SetDropCallback([this](FlowId id, std::uint64_t bytes) {
    const auto it = flows_.find(id);
    if (it != flows_.end()) it->second->HandleDrop(bytes);
  });
}

TcpFlow& TransportHost::CreateFlow(UeId ue, FlowType type,
                                   const TcpConfig& config) {
  const FlowId id = cell_.AddFlow(ue, type);
  auto flow = std::make_unique<TcpFlow>(sim_, cell_, id, config);
  TcpFlow& ref = *flow;
  flows_.emplace(id, std::move(flow));
  return ref;
}

void TransportHost::DestroyFlow(FlowId id) {
  flows_.erase(id);
  greedy_.erase(id);
  cell_.RemoveFlow(id);
}

TcpFlow& TransportHost::flow(FlowId id) {
  const auto it = flows_.find(id);
  if (it == flows_.end()) {
    throw std::out_of_range("TransportHost: unknown flow");
  }
  return *it->second;
}

void TransportHost::MakeGreedy(FlowId id) {
  if (greedy_.count(id) > 0) return;
  greedy_.insert(id);
  TopUpGreedy(id);
  ScheduleGreedyTick(id);
}

void TransportHost::ScheduleGreedyTick(FlowId id) {
  // NOT sim_.Every: an Every task is uncancellable and would keep firing
  // (and keep its captured state alive) for the whole run after the flow
  // is destroyed — with session churn that is an unbounded leak of dead
  // timers. The self-rescheduling chain stops at the first tick that
  // finds the flow gone.
  sim_.After(kGreedyTopUpPeriod, [this, id] {
    if (greedy_.count(id) == 0) return;
    TopUpGreedy(id);
    ScheduleGreedyTick(id);
  });
}

void TransportHost::TopUpGreedy(FlowId id) {
  // find(), not operator[]: the old greedy_[id] lookup re-inserted a
  // default-constructed entry for every destroyed flow the stale timer
  // polled, quietly regrowing the map forever.
  const auto it = flows_.find(id);
  if (it == flows_.end() || greedy_.count(id) == 0) return;
  // Keep the sender saturated: refill before the application backlog runs
  // dry so the flow never starves between top-up ticks.
  if (it->second->pending_bytes() < kGreedyChunkBytes / 4) {
    it->second->Send(kGreedyChunkBytes);
  }
}

}  // namespace flare
