#include "transport/http.h"

#include <algorithm>
#include <utility>

namespace flare {

HttpClient::HttpClient(Simulator& sim, TcpFlow& flow)
    : sim_(sim), flow_(flow) {
  // Liveness-guarded: client and flow are torn down separately (in either
  // order, see the churn teardown path), so the callback left behind on a
  // surviving flow must not deliver into a dead client — and the dying
  // client must not reach back into a flow that may already be gone.
  flow_.SetOnReceive([this, alive = std::weak_ptr<char>(alive_)](
                         std::uint64_t bytes, SimTime now) {
    if (alive.expired()) return;
    OnReceive(bytes, now);
  });
}

void HttpClient::Get(std::uint64_t bytes, CompleteFn on_complete) {
  queue_.push_back(Request{bytes, std::move(on_complete)});
  if (!current_) StartNext();
}

void HttpClient::StartNext() {
  if (queue_.empty()) return;
  InFlight in_flight;
  in_flight.request = std::move(queue_.front());
  queue_.pop_front();
  in_flight.result.bytes = in_flight.request.bytes;
  in_flight.result.requested_at = sim_.Now();

  // Zero-byte objects complete immediately (no response body would ever
  // arrive to drive OnReceive).
  if (in_flight.request.bytes == 0) {
    in_flight.result.first_byte_at = sim_.Now();
    in_flight.result.completed_at = sim_.Now();
    CompleteFn on_complete = std::move(in_flight.request.on_complete);
    if (on_complete) on_complete(in_flight.result);
    if (!current_) StartNext();
    return;
  }
  current_ = std::move(in_flight);

  // The GET itself crosses the uplink before the server starts sending.
  // Liveness-guarded: the client may be destroyed (session churn) while
  // the request is still crossing the uplink.
  const std::uint64_t bytes = current_->request.bytes;
  sim_.After(FromSeconds(0.02),
             [this, bytes, alive = std::weak_ptr<char>(alive_)] {
               if (alive.expired()) return;
               flow_.Send(bytes);
             });
}

void HttpClient::OnReceive(std::uint64_t bytes, SimTime now) {
  if (!current_) return;  // stray delivery after cancellation
  InFlight& c = *current_;
  if (c.received == 0) c.result.first_byte_at = now;
  c.received += bytes;
  if (on_progress_) on_progress_(c.received, now);
  if (c.received < c.request.bytes) return;

  c.result.completed_at = now;
  const double elapsed =
      std::max(ToSeconds(now - c.result.requested_at), 1e-9);
  c.result.throughput_bps =
      static_cast<double>(c.request.bytes) * 8.0 / elapsed;
  const double receive_time =
      std::max(ToSeconds(now - c.result.first_byte_at), 1e-9);
  c.result.download_bps =
      static_cast<double>(c.request.bytes) * 8.0 / receive_time;

  // Finish: detach state before invoking the callback, which may issue the
  // next Get synchronously.
  CompleteFn on_complete = std::move(c.request.on_complete);
  const HttpResult result = c.result;
  current_.reset();
  if (on_complete) on_complete(result);
  if (!current_) StartNext();
}

}  // namespace flare
