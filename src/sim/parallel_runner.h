// Sharded parallel simulation runtime.
//
// A multi-cell deployment decomposes into per-cell *event domains*: one
// Simulator per cell plus everything that only that cell touches (flows,
// players, transport hosts, the cell's OneAPI controller). Domains never
// share mutable state mid-epoch; anything cross-cell (the shared PCRF,
// handover bookkeeping) is exchanged as serialized messages that are
// applied only at epoch barriers. That makes the runtime *embarrassingly
// deterministic*: whether the domains advance sequentially on one thread
// (workers = 0) or concurrently on persistent workers, every domain sees
// exactly the same inputs at exactly the same simulated times, so
// parallel execution is bit-identical to serial execution — same BAI
// trace bytes, same metrics JSON, same QoE numbers
// (tests/determinism_test.cpp holds the runtime to this).
//
// Execution model: each worker thread owns a static, id-ordered partition
// of the domains for the whole run. Epochs are released through a
// generation counter — the coordinator publishes the epoch bounds, bumps
// the generation, and every worker advances its own partition; the last
// arrival wakes the coordinator. No per-epoch closures are built, no job
// queue is contended, and the one notify_all per epoch wakes only threads
// that all have work. Steady-state epochs allocate nothing on the hot
// path: mailbox entries (including their payload buffers) are recycled
// through per-domain free lists, and the barrier drain moves whole
// outboxes into reusable scratch vectors instead of copying per message.
//
// Epoch protocol, repeated until the horizon:
//   1. advance every domain's Simulator to the epoch end (each worker
//      runs its partition in domain-id order; workers = 0 runs all
//      domains inline);
//   2. barrier (the coordinator blocks until every worker's partition
//      arrived — the mutex handoff is the happens-before edge);
//   3. drain the domains' outboxes in (domain id, enqueue seq) order and
//      deliver each message on the coordinator thread — to the target
//      domain's handler, or to the coordinator handler for shared state.
// Handlers run between epochs, so they may freely touch their domain's
// simulator (schedule events, mutate model objects) and the coordinator's
// shared state without locks. Aligning the epoch with the BAI keeps the
// synchronization cost at one barrier per control-loop interval.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/span_trace.h"
#include "sim/simulator.h"
#include "util/time.h"

namespace flare {

/// Message target for coordinator-owned shared state (PCRF, global
/// bookkeeping) rather than a peer domain.
inline constexpr int kCoordinatorDomain = -1;

/// One mailbox entry. Payloads are opaque serialized strings (the
/// net/messages key=value codec style); the runner only orders and routes
/// them. Delivered entries (and their payload capacity) are recycled
/// through the sender's free list, so steady-state posting allocates
/// nothing once buffers have warmed up.
struct DomainMessage {
  int from = kCoordinatorDomain;
  int to = kCoordinatorDomain;
  std::uint64_t seq = 0;  // per-sender enqueue order, for determinism
  std::string payload;
};

class ParallelRunner;

/// One isolated event timeline. Created via ParallelRunner::AddDomain();
/// everything scheduled on sim() runs on whichever thread executes this
/// domain's epochs — never concurrently with the domain's own handler.
class EventDomain {
 public:
  using HandlerFn = std::function<void(const DomainMessage&)>;

  int id() const { return id_; }
  Simulator& sim() { return sim_; }

  /// Queue a message for delivery at the next epoch barrier. Safe to call
  /// from this domain's own events mid-epoch (the outbox is domain-local)
  /// and from barrier handlers.
  void Post(int to, std::string payload);

  /// Zero-copy variant: appends a pooled outbox entry addressed to `to`
  /// and returns its payload buffer (cleared, capacity retained from a
  /// previously delivered message) for the caller to build in place.
  /// The reference is invalidated by the next Post/StartPost on this
  /// domain — finish writing the payload before posting again.
  std::string& StartPost(int to);

  /// Handler for messages addressed to this domain, run on the
  /// coordinator thread at barriers.
  void SetHandler(HandlerFn fn) { handler_ = std::move(fn); }

  /// Attach this domain's span-tracer shard (null detaches): each epoch
  /// records an "advance" span (the domain's own wall-clock) and a
  /// "barrier.wait" span (idle time until the slowest domain arrived).
  /// The shard is written by whichever worker advances the domain and by
  /// the coordinator at barriers — never concurrently (the epoch barrier
  /// is the handoff), matching the metrics-shard threading model.
  void SetSpanTracer(SpanTracer* tracer) { tracer_ = tracer; }

 private:
  friend class ParallelRunner;
  explicit EventDomain(int id) : id_(id) {}

  /// Advance sim() to `until`, timing the advance when traced.
  void Advance(SimTime until, SimTime epoch_start);

  int id_;
  Simulator sim_;
  HandlerFn handler_;
  std::vector<DomainMessage> outbox_;
  std::vector<DomainMessage> free_;  // recycled entries, payload capacity kept
  std::uint64_t next_seq_ = 0;
  SpanTracer* tracer_ = nullptr;
  double last_advance_wall_us_ = 0.0;
};

class ParallelRunner {
 public:
  struct Options {
    /// Worker threads; 0 runs every domain inline on the calling thread
    /// (the serial reference execution — same code path, same results).
    int workers = 0;
    /// Barrier period; align with the BAI so cross-cell state is exactly
    /// as fresh as the control loop needs.
    SimTime epoch = kSecond;
  };

  explicit ParallelRunner(const Options& options);
  ~ParallelRunner();

  ParallelRunner(const ParallelRunner&) = delete;
  ParallelRunner& operator=(const ParallelRunner&) = delete;

  /// Create the next domain (ids are dense, starting at 0). Domains live
  /// as long as the runner. Add domains before RunUntil; adding more
  /// between runs re-partitions the existing workers.
  EventDomain& AddDomain();

  /// Handler for messages addressed to kCoordinatorDomain (shared state).
  void SetCoordinatorHandler(EventDomain::HandlerFn fn) {
    coordinator_handler_ = std::move(fn);
  }

  /// Run all domains to `horizon` with an epoch barrier + mailbox
  /// delivery every `options.epoch`. If a domain's events throw, the
  /// epoch still completes on every worker and the first exception (in
  /// domain-id order within a partition) is rethrown here.
  void RunUntil(SimTime horizon);

  std::size_t NumDomains() const { return domains_.size(); }
  EventDomain& domain(std::size_t i) { return *domains_[i]; }

  std::uint64_t epochs() const { return epochs_; }
  std::uint64_t messages_delivered() const { return delivered_; }

  /// Attach coordinator-side observability (either may be null): the
  /// registry gets runner.epoch_ms / runner.barrier_wait_ms /
  /// runner.drain_ms histograms and epoch/message counters; the tracer
  /// gets per-epoch "epoch" / "barrier.drain" spans and a delivered-
  /// messages counter track (pid 0 by convention). With `deterministic`
  /// every wall-clock read is skipped and durations record as 0, keeping
  /// run bytes independent of thread scheduling.
  void SetObservers(MetricsRegistry* registry, SpanTracer* tracer,
                    bool deterministic);

  /// Hook run on the coordinator thread at the end of every epoch, after
  /// the barrier drain — the one moment every domain is quiescent and
  /// the coordinator owns all shard state. The telemetry publisher hangs
  /// here; the hook must be read-only with respect to simulation state
  /// (the determinism suite runs with it attached). Null clears it; when
  /// unset the cost is one predicted branch per epoch.
  void SetBarrierHook(std::function<void(SimTime)> hook) {
    barrier_hook_ = std::move(hook);
  }

 private:
  /// Spawn workers (first parallel run) or re-partition after AddDomain.
  /// Each worker owns the contiguous id range partitions_[w].
  void PreparePartitions();
  /// Release one epoch to the persistent workers and block until every
  /// partition has advanced to `until`. Rethrows the first worker error.
  void RunEpochOnWorkers(SimTime until, SimTime epoch_start);
  void WorkerLoop(std::size_t worker, std::uint64_t seen);
  void StopWorkers();

  /// Drain every outbox in (domain, seq) order; repeat until no handler
  /// posted a follow-up. Runs on the coordinator thread. Moves whole
  /// outboxes into pooled scratch vectors (no per-message push_back) and
  /// recycles delivered entries to their sender's free list.
  void DeliverAtBarrier();
  void Deliver(const DomainMessage& msg);

  Options options_;
  std::vector<std::unique_ptr<EventDomain>> domains_;
  EventDomain::HandlerFn coordinator_handler_;
  std::function<void(SimTime)> barrier_hook_;
  std::uint64_t epochs_ = 0;
  std::uint64_t delivered_ = 0;

  // --- Persistent epoch workers (empty in serial mode). All handshake
  // state is guarded by barrier_mu_; workers idle between generations.
  std::vector<std::thread> workers_;
  std::vector<std::pair<std::size_t, std::size_t>> partitions_;  // [begin,end)
  std::mutex barrier_mu_;
  std::condition_variable epoch_cv_;  // coordinator -> workers: new gen/stop
  std::condition_variable done_cv_;   // last worker -> coordinator
  std::uint64_t generation_ = 0;
  SimTime epoch_until_ = 0;
  SimTime epoch_start_ = 0;
  std::size_t workers_remaining_ = 0;
  std::exception_ptr worker_error_;
  bool stop_workers_ = false;

  // --- Barrier drain scratch, one vector per domain; capacities ping-
  // pong with the outboxes so steady-state drains never reallocate.
  std::vector<std::vector<DomainMessage>> drain_scratch_;

  SpanTracer* tracer_ = nullptr;
  bool deterministic_ = false;
  HistogramHandle epoch_ms_metric_;
  HistogramHandle barrier_wait_ms_metric_;
  HistogramHandle drain_ms_metric_;
  CounterHandle epochs_metric_;
  CounterHandle messages_metric_;
};

}  // namespace flare
