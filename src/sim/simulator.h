// Discrete-event simulator.
//
// All model components (eNodeB TTI loop, HAS players, OneAPI server BAI
// timer) schedule callbacks here. Time never moves backwards; scheduling in
// the past is clamped to "now" so stale timers fire immediately rather than
// corrupting the clock.
#pragma once

#include <cstdint>
#include <memory>

#include "obs/metrics.h"
#include "sim/event_queue.h"
#include "util/time.h"

namespace flare {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  /// Schedule `fn` at absolute simulated time `at` (clamped to >= Now()).
  void At(SimTime at, EventFn fn);

  /// Schedule `fn` after a relative delay (clamped to >= 0).
  void After(SimTime delay, EventFn fn);

  /// Schedule `fn` every `period` starting at `start`, until the run ends.
  /// The callback receives no arguments; use a lambda capture for state.
  void Every(SimTime start, SimTime period, EventFn fn);

  /// Run until the event queue drains or the clock passes `until`
  /// (events exactly at `until` still run).
  void RunUntil(SimTime until);

  /// Stop the current RunUntil after the in-flight event completes.
  void Stop() { stopped_ = true; }

  std::uint64_t events_processed() const { return events_processed_; }
  std::size_t queue_depth() const { return queue_.Size(); }

  /// Attach a metrics registry (null detaches): exports the event rate
  /// ("sim.events") and pending-queue depth ("sim.queue_depth").
  void SetMetrics(MetricsRegistry* registry);

 private:
  /// Reschedules the periodic `task` for `at`. Each queued occurrence owns
  /// the task callable; nothing owns itself, so draining or clearing the
  /// queue releases every recurring task (see sim_test's leak regression).
  void ScheduleTick(SimTime at, SimTime period,
                    std::shared_ptr<EventFn> task);

  EventQueue queue_;
  SimTime now_ = 0;
  bool stopped_ = false;
  std::uint64_t events_processed_ = 0;
  CounterHandle events_metric_;
  GaugeHandle queue_depth_metric_;
};

}  // namespace flare
