#include "sim/parallel_runner.h"

#include <algorithm>
#include <utility>

namespace flare {

void EventDomain::Post(int to, std::string payload) {
  DomainMessage msg;
  msg.from = id_;
  msg.to = to;
  msg.seq = next_seq_++;
  msg.payload = std::move(payload);
  outbox_.push_back(std::move(msg));
}

ParallelRunner::ParallelRunner(const Options& options) : options_(options) {
  options_.epoch = std::max<SimTime>(options_.epoch, kTti);
  if (options_.workers > 0) {
    pool_ = std::make_unique<ThreadPool>(options_.workers);
  }
}

ParallelRunner::~ParallelRunner() = default;

EventDomain& ParallelRunner::AddDomain() {
  const int id = static_cast<int>(domains_.size());
  domains_.emplace_back(new EventDomain(id));
  return *domains_.back();
}

void ParallelRunner::RunUntil(SimTime horizon) {
  SimTime now = 0;
  while (now < horizon) {
    now = std::min<SimTime>(now + options_.epoch, horizon);
    if (pool_ != nullptr) {
      std::vector<std::function<void()>> jobs;
      jobs.reserve(domains_.size());
      for (auto& d : domains_) {
        EventDomain* domain = d.get();
        jobs.push_back([domain, now] { domain->sim().RunUntil(now); });
      }
      pool_->RunAll(std::move(jobs));  // full barrier
    } else {
      for (auto& d : domains_) d->sim().RunUntil(now);
    }
    ++epochs_;
    DeliverAtBarrier();
  }
}

void ParallelRunner::DeliverAtBarrier() {
  // Handlers may post follow-ups; keep draining rounds until quiescent.
  // Each round visits domains in id order and each outbox in seq order,
  // so delivery order is a pure function of what was posted — never of
  // thread scheduling.
  for (;;) {
    std::vector<DomainMessage> batch;
    for (auto& d : domains_) {
      for (DomainMessage& msg : d->outbox_) {
        batch.push_back(std::move(msg));
      }
      d->outbox_.clear();
    }
    if (batch.empty()) return;
    for (const DomainMessage& msg : batch) {
      if (msg.to == kCoordinatorDomain) {
        if (coordinator_handler_) coordinator_handler_(msg);
      } else if (msg.to >= 0 &&
                 msg.to < static_cast<int>(domains_.size())) {
        auto& handler = domains_[static_cast<std::size_t>(msg.to)]->handler_;
        if (handler) handler(msg);
      }
      ++delivered_;
    }
  }
}

}  // namespace flare
